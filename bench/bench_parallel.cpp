// Parallel-frontier reachability scaling: states/s of the
// ParallelReachabilityExplorer at 1, 2, 4 and all hardware threads,
// head-to-head with the sequential compiled engine on the 191k-state
// 3-stage reconfigurable OPE model — the hot path of the verification
// flow — plus the PR-5 head-to-heads: work stealing vs the atomic-cursor
// baseline on a deep-ring narrow-layer fixture, canonical-CAS vs
// re-sweep witness trees on clean and violated passes, and the
// frontier-only enabled-set cache's resident-byte diet.
//
// --json PATH writes the machine-readable summary bench/compare.py
// gates (multi-thread scaling floor on multi-core runners; skipped
// gracefully on 1-core containers).
//
// Exit is non-zero on any cross-engine disagreement, so the harness
// doubles as an end-to-end differential smoke.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "dfs/model.hpp"
#include "dfs/translate.hpp"
#include "ope/dfs_models.hpp"
#include "petri/parallel.hpp"
#include "petri/reachability.hpp"
#include "pipeline/builder.hpp"
#include "util/table.hpp"
#include "verify/verifier.hpp"

namespace {

using namespace rap;

double run_explore(petri::ParallelReachabilityExplorer& explorer,
                   petri::ReachabilityResult& out) {
    bench::Stopwatch watch;
    out = explorer.explore_all();
    return watch.elapsed_s();
}

/// Deep token ring (24 registers, 3 tokens): ~269k states over a long
/// BFS diameter of narrow layers — the workload intra-layer stealing
/// exists for.
petri::Net deep_ring_net() {
    dfs::Graph g("deepring");
    std::vector<dfs::NodeId> regs;
    const int n = 24;
    for (int i = 0; i < n; ++i) {
        regs.push_back(g.add_control("c" + std::to_string(i), i % 8 == 0,
                                     dfs::TokenValue::True));
    }
    for (int i = 0; i < n; ++i) g.connect(regs[i], regs[(i + 1) % n]);
    return dfs::to_petri(g).net;
}

}  // namespace

int main(int argc, char** argv) {
    const char* json_path = nullptr;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
    }
    bench::Stopwatch watch;
    bench::print_header(
        "parallel-frontier reachability scaling",
        "states/s vs the sequential engine, 3-stage reconfigurable OPE");

    const unsigned hw = std::thread::hardware_concurrency();
    std::printf("hardware threads: %u\n\n", hw ? hw : 1);

    const auto p = ope::build_reconfigurable_ope_dfs(3, 3);
    const auto tr = dfs::to_petri(p.graph);
    const petri::CompiledNet compiled(tr.net);

    // Sequential baseline (the PR-2 engine, exactly).
    petri::ReachabilityExplorer sequential(compiled);
    bench::Stopwatch seq_watch;
    const auto baseline = sequential.explore_all();
    const double seq_s = seq_watch.elapsed_s();
    const double seq_rate =
        static_cast<double>(baseline.states_explored) / seq_s;

    util::Table table(
        {"engine", "threads", "states", "edges", "time [ms]", "states/s",
         "speedup"});
    table.add_row({"sequential", "1",
                   std::to_string(baseline.states_explored),
                   std::to_string(baseline.edges_explored),
                   util::Table::num(seq_s * 1e3, 1),
                   util::Table::num(seq_rate, 0), "1.00x"});

    bool ok = true;
    double best_speedup = 0.0;
    std::vector<std::size_t> counts{1, 2, 4};
    if (hw > 4) counts.push_back(hw);
    for (const std::size_t threads : counts) {
        petri::ReachabilityOptions options;
        options.threads = threads;
        petri::ParallelReachabilityExplorer explorer(compiled, options);
        petri::ReachabilityResult result;
        // Two runs, keep the second: the first warms the allocator and
        // page cache so the curve reflects steady-state throughput.
        run_explore(explorer, result);
        const double par_s = run_explore(explorer, result);
        const double rate =
            static_cast<double>(result.states_explored) / par_s;
        const double speedup = rate / seq_rate;
        best_speedup = std::max(best_speedup, speedup);
        table.add_row({"parallel", std::to_string(threads),
                       std::to_string(result.states_explored),
                       std::to_string(result.edges_explored),
                       util::Table::num(par_s * 1e3, 1),
                       util::Table::num(rate, 0),
                       util::Table::num(speedup, 2) + "x"});
        if (result.states_explored != baseline.states_explored ||
            result.edges_explored != baseline.edges_explored) {
            std::printf("ENGINE MISMATCH at %zu threads: %zu/%zu states, "
                        "%zu/%zu edges\n",
                        threads, result.states_explored,
                        baseline.states_explored, result.edges_explored,
                        baseline.edges_explored);
            ok = false;
        }
    }
    std::printf("explore_all scaling:\n%s\n", table.to_ascii().c_str());
    std::printf("best parallel speedup: %.2fx states/s "
                "(target: >=3x at 4+ cores)\n\n",
                best_speedup);

    // The same curve for the full verification workload — deadlock +
    // control-conflict + persistence in one pass through the Verifier
    // facade, i.e. what flow::Design::verify() pays.
    util::Table verify_table({"threads", "states", "time [ms]", "speedup"});
    double verify_seq_s = 0.0;
    for (const std::size_t threads : counts) {
        verify::VerifyOptions options;
        options.threads = threads;
        const verify::Verifier verifier(p.graph, options);
        const auto warm = verifier.verify_all();
        bench::Stopwatch verify_watch;
        const auto report = verifier.verify_all();
        const double s = verify_watch.elapsed_s();
        if (threads == 1) verify_seq_s = s;
        if (!report.clean() || !warm.clean()) {
            std::printf("UNEXPECTED VIOLATION in clean OPE model\n");
            ok = false;
        }
        verify_table.add_row(
            {std::to_string(threads),
             std::to_string(report.findings[0].states_explored),
             util::Table::num(s * 1e3, 1),
             util::Table::num(verify_seq_s / s, 2) + "x"});
    }
    std::printf("verify_all (3 properties, one pass):\n%s\n",
                verify_table.to_ascii().c_str());

    // ---- intra-layer work stealing vs the atomic-cursor baseline ------
    // Narrow layers leave cursor-chunked workers idle at the barrier;
    // the deque scheduler rebalances inside the layer. Multi-core
    // runners should see steal >= cursor here; on one core both are the
    // same serialized walk.
    const petri::Net ring = deep_ring_net();
    const petri::CompiledNet ring_compiled(ring);
    const auto ring_baseline =
        petri::ReachabilityExplorer(ring_compiled).explore_all();
    double steal_vs_cursor = 0.0;
    util::Table steal_table(
        {"threads", "cursor [ms]", "steal [ms]", "steal/cursor"});
    for (const std::size_t threads : counts) {
        if (threads == 1) continue;
        double secs[2] = {0.0, 0.0};
        for (const bool stealing : {false, true}) {
            petri::ReachabilityOptions options;
            options.threads = threads;
            options.work_stealing = stealing;
            petri::ParallelReachabilityExplorer explorer(ring_compiled,
                                                         options);
            petri::ReachabilityResult result;
            run_explore(explorer, result);
            secs[stealing ? 1 : 0] = run_explore(explorer, result);
            if (result.states_explored != ring_baseline.states_explored ||
                result.edges_explored != ring_baseline.edges_explored) {
                std::printf("ENGINE MISMATCH on deep ring (%s, %zu t)\n",
                            stealing ? "steal" : "cursor", threads);
                ok = false;
            }
        }
        const double ratio = secs[0] / secs[1];
        steal_vs_cursor = std::max(steal_vs_cursor, ratio);
        steal_table.add_row({std::to_string(threads),
                             util::Table::num(secs[0] * 1e3, 1),
                             util::Table::num(secs[1] * 1e3, 1),
                             util::Table::num(ratio, 2) + "x"});
    }
    std::printf("deep ring (24 regs, 3 tokens, %zu states), narrow "
                "layers:\n%s\n",
                ring_baseline.states_explored,
                steal_table.to_ascii().c_str());

    // ---- canonical-CAS vs re-sweep witness trees ----------------------
    // Clean pass (goal never matches): CAS pays its same-layer duplicate
    // compares, re-sweep pays nothing. Violated pass (deadlock traces
    // wanted): CAS reconstructs for free, re-sweep pays one extra serial
    // O(edges) walk. The default is canonical-CAS — see README.
    auto gap = ope::build_reconfigurable_ope_dfs(3, 3);
    pipeline::reset_ring(gap.graph, gap.stages[1].global_ring,
                         dfs::TokenValue::False);
    const auto gap_tr = dfs::to_petri(gap.graph);
    const petri::CompiledNet gap_compiled(gap_tr.net);
    util::Table tree_table({"pass", "cas [ms]", "resweep [ms]", "ratio"});
    double tree_secs[2][2];  // [violated][cas]
    for (const bool cas : {true, false}) {
        petri::ReachabilityOptions options;
        options.threads = counts.back();
        options.stop_at_first_match = false;
        options.witness_tree =
            cas ? petri::ReachabilityOptions::WitnessTree::kCanonicalCas
                : petri::ReachabilityOptions::WitnessTree::kResweep;
        {
            // Clean: the OPE model has no deadlock; no trace is built.
            petri::ParallelReachabilityExplorer explorer(compiled,
                                                         options);
            const auto dead = petri::Predicate::deadlock();
            explorer.find(dead);
            bench::Stopwatch w;
            const auto r = explorer.find(dead);
            tree_secs[0][cas ? 1 : 0] = w.elapsed_s();
            if (r.found()) ok = false;
        }
        {
            // Violated: the gap model deadlocks; traces are built.
            petri::ParallelReachabilityExplorer explorer(gap_compiled,
                                                         options);
            explorer.find_deadlocks();
            bench::Stopwatch w;
            const auto r = explorer.find_deadlocks();
            tree_secs[1][cas ? 1 : 0] = w.elapsed_s();
            if (!r.found()) ok = false;
        }
    }
    for (const int violated : {0, 1}) {
        tree_table.add_row(
            {violated ? "violated (traces)" : "clean (no trace)",
             util::Table::num(tree_secs[violated][1] * 1e3, 1),
             util::Table::num(tree_secs[violated][0] * 1e3, 1),
             util::Table::num(
                 tree_secs[violated][1] / tree_secs[violated][0], 2) +
                 "x"});
    }
    std::printf("witness tree, canonical-CAS vs re-sweep (%zu threads):\n%s\n",
                counts.back(), tree_table.to_ascii().c_str());

    // ---- frontier-only enabled-set cache ------------------------------
    util::Table diet_table(
        {"cache", "records", "record MB", "resident MB", "peak MB"});
    std::size_t diet_resident[2] = {0, 0};
    for (const bool cache : {false, true}) {
        petri::ReachabilityOptions options;
        options.threads = counts.back();
        options.frontier_enabled_cache = cache;
        petri::ParallelReachabilityExplorer explorer(compiled, options);
        petri::ReachabilityResult result;
        run_explore(explorer, result);
        diet_resident[cache ? 1 : 0] = result.memory.resident_bytes;
        diet_table.add_row(
            {cache ? "on" : "off", std::to_string(result.memory.records),
             util::Table::num(result.memory.record_bytes / 1e6, 1),
             util::Table::num(result.memory.resident_bytes / 1e6, 1),
             util::Table::num(result.memory.peak_bytes / 1e6, 1)});
    }
    const double diet_reduction =
        1.0 - static_cast<double>(diet_resident[1]) /
                  static_cast<double>(diet_resident[0]);
    std::printf("enabled-set cache (3-stage OPE, %zu threads):\n%s"
                "resident reduction: %.1f%%\n\n",
                counts.back(), diet_table.to_ascii().c_str(),
                100.0 * diet_reduction);

    if (json_path != nullptr) {
        if (FILE* f = std::fopen(json_path, "w")) {
            std::fprintf(
                f,
                "{\n"
                "  \"hardware_threads\": %u,\n"
                "  \"best_speedup\": %.3f,\n"
                "  \"steal_vs_cursor\": %.3f,\n"
                "  \"diet_resident_reduction\": %.3f,\n"
                "  \"ok\": %s\n"
                "}\n",
                hw ? hw : 1, best_speedup, steal_vs_cursor,
                diet_reduction, ok ? "true" : "false");
            std::fclose(f);
        } else {
            std::printf("cannot write %s\n", json_path);
            ok = false;
        }
    }

    bench::print_footer(watch);
    return ok ? 0 : 1;
}
