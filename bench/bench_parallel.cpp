// Parallel-frontier reachability scaling: states/s of the
// ParallelReachabilityExplorer at 1, 2, 4 and all hardware threads,
// head-to-head with the sequential compiled engine on the 191k-state
// 3-stage reconfigurable OPE model — the hot path of the verification
// flow. Reported (uploaded as a bench-regression artifact), not gated:
// absolute scaling depends on the runner's core count.
//
// Exit is non-zero on any cross-engine disagreement, so the harness
// doubles as an end-to-end differential smoke.

#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "dfs/translate.hpp"
#include "ope/dfs_models.hpp"
#include "petri/parallel.hpp"
#include "petri/reachability.hpp"
#include "util/table.hpp"
#include "verify/verifier.hpp"

namespace {

using namespace rap;

double run_explore(petri::ParallelReachabilityExplorer& explorer,
                   petri::ReachabilityResult& out) {
    bench::Stopwatch watch;
    out = explorer.explore_all();
    return watch.elapsed_s();
}

}  // namespace

int main() {
    bench::Stopwatch watch;
    bench::print_header(
        "parallel-frontier reachability scaling",
        "states/s vs the sequential engine, 3-stage reconfigurable OPE");

    const unsigned hw = std::thread::hardware_concurrency();
    std::printf("hardware threads: %u\n\n", hw ? hw : 1);

    const auto p = ope::build_reconfigurable_ope_dfs(3, 3);
    const auto tr = dfs::to_petri(p.graph);
    const petri::CompiledNet compiled(tr.net);

    // Sequential baseline (the PR-2 engine, exactly).
    petri::ReachabilityExplorer sequential(compiled);
    bench::Stopwatch seq_watch;
    const auto baseline = sequential.explore_all();
    const double seq_s = seq_watch.elapsed_s();
    const double seq_rate =
        static_cast<double>(baseline.states_explored) / seq_s;

    util::Table table(
        {"engine", "threads", "states", "edges", "time [ms]", "states/s",
         "speedup"});
    table.add_row({"sequential", "1",
                   std::to_string(baseline.states_explored),
                   std::to_string(baseline.edges_explored),
                   util::Table::num(seq_s * 1e3, 1),
                   util::Table::num(seq_rate, 0), "1.00x"});

    bool ok = true;
    double best_speedup = 0.0;
    std::vector<std::size_t> counts{1, 2, 4};
    if (hw > 4) counts.push_back(hw);
    for (const std::size_t threads : counts) {
        petri::ReachabilityOptions options;
        options.threads = threads;
        petri::ParallelReachabilityExplorer explorer(compiled, options);
        petri::ReachabilityResult result;
        // Two runs, keep the second: the first warms the allocator and
        // page cache so the curve reflects steady-state throughput.
        run_explore(explorer, result);
        const double par_s = run_explore(explorer, result);
        const double rate =
            static_cast<double>(result.states_explored) / par_s;
        const double speedup = rate / seq_rate;
        best_speedup = std::max(best_speedup, speedup);
        table.add_row({"parallel", std::to_string(threads),
                       std::to_string(result.states_explored),
                       std::to_string(result.edges_explored),
                       util::Table::num(par_s * 1e3, 1),
                       util::Table::num(rate, 0),
                       util::Table::num(speedup, 2) + "x"});
        if (result.states_explored != baseline.states_explored ||
            result.edges_explored != baseline.edges_explored) {
            std::printf("ENGINE MISMATCH at %zu threads: %zu/%zu states, "
                        "%zu/%zu edges\n",
                        threads, result.states_explored,
                        baseline.states_explored, result.edges_explored,
                        baseline.edges_explored);
            ok = false;
        }
    }
    std::printf("explore_all scaling:\n%s\n", table.to_ascii().c_str());
    std::printf("best parallel speedup: %.2fx states/s "
                "(target: >=3x at 4+ cores)\n\n",
                best_speedup);

    // The same curve for the full verification workload — deadlock +
    // control-conflict + persistence in one pass through the Verifier
    // facade, i.e. what flow::Design::verify() pays.
    util::Table verify_table({"threads", "states", "time [ms]", "speedup"});
    double verify_seq_s = 0.0;
    for (const std::size_t threads : counts) {
        verify::VerifyOptions options;
        options.threads = threads;
        const verify::Verifier verifier(p.graph, options);
        const auto warm = verifier.verify_all();
        bench::Stopwatch verify_watch;
        const auto report = verifier.verify_all();
        const double s = verify_watch.elapsed_s();
        if (threads == 1) verify_seq_s = s;
        if (!report.clean() || !warm.clean()) {
            std::printf("UNEXPECTED VIOLATION in clean OPE model\n");
            ok = false;
        }
        verify_table.add_row(
            {std::to_string(threads),
             std::to_string(report.findings[0].states_explored),
             util::Table::num(s * 1e3, 1),
             util::Table::num(verify_seq_s / s, 2) + "x"});
    }
    std::printf("verify_all (3 properties, one pass):\n%s\n",
                verify_table.to_ascii().c_str());

    bench::print_footer(watch);
    return ok ? 0 : 1;
}
