// E7 — Section IV ablation: "The high computation time of the
// reconfigurable pipeline (36% overhead) is due to an inefficient
// implementation of the synchronisation between the stages using a
// daisy-chain C-element structure. This can be significantly improved
// (estimated overhead below 10%) using a tree-like C-element structure."
// We build the reconfigurable core with both completion topologies and
// compare against the (tree-synchronised) static core.

#include <cstdio>

#include "bench_util.hpp"
#include "chip/chip.hpp"
#include "util/table.hpp"

int main() {
    using namespace rap;
    bench::Stopwatch watch;
    bench::print_header("E7 / sync-structure ablation",
                        "daisy-chain vs tree C-element synchronisation");

    constexpr std::uint64_t kItems = 1500;
    constexpr int kStages = 18;

    chip::ChipOptions static_options;
    static_options.stages = kStages;
    static_options.depth = kStages;
    static_options.core = chip::Core::Static;
    const chip::Evaluation static_chip(static_options);
    const auto base = static_chip.measure(1.2, kItems);

    util::Table table({"implementation", "sync", "ns/item", "pJ/item",
                       "time overhead", "energy overhead"});
    table.add_row({"static 18-stage", "tree",
                   util::Table::num(base.time_per_item_s() * 1e9, 3),
                   util::Table::num(base.energy_per_item_j() * 1e12, 2),
                   "--", "--"});

    double daisy_overhead = 0, tree_overhead = 0;
    for (const auto sync : {netlist::SyncTopology::DaisyChain,
                            netlist::SyncTopology::Tree}) {
        chip::ChipOptions options = static_options;
        options.core = chip::Core::Reconfigurable;
        options.sync = sync;
        const chip::Evaluation chip_eval(options);
        const auto m = chip_eval.measure(1.2, kItems);
        const double time_ovh =
            m.time_per_item_s() / base.time_per_item_s() - 1.0;
        const double energy_ovh =
            m.energy_per_item_j() / base.energy_per_item_j() - 1.0;
        if (sync == netlist::SyncTopology::DaisyChain) {
            daisy_overhead = time_ovh;
        } else {
            tree_overhead = time_ovh;
        }
        table.add_row({"reconfigurable 18-stage",
                       std::string(netlist::to_string(sync)),
                       util::Table::num(m.time_per_item_s() * 1e9, 3),
                       util::Table::num(m.energy_per_item_j() * 1e12, 2),
                       util::Table::num(time_ovh * 100, 1) + "%",
                       util::Table::num(energy_ovh * 100, 1) + "%"});
    }
    std::printf("%s\n", table.to_ascii().c_str());
    std::printf("paper: daisy-chain measured at +36%%; tree estimated "
                "below +10%%\n");
    std::printf("reproduced: daisy-chain +%.1f%%, tree +%.1f%% -> tree %s "
                "the 10%% target\n",
                daisy_overhead * 100, tree_overhead * 100,
                tree_overhead < 0.10 ? "meets" : "MISSES");
    bench::print_footer(watch);
    return tree_overhead < daisy_overhead ? 0 : 1;
}
