// E8 — Section IV: "All configurations of the reconfigurable pipeline
// (from 3 to 18 stages) were exercised at 0.5-1.6V. The experiments
// showed that both the computation time and the energy consumption
// increase linearly with the pipeline length; the slope of increment is
// reverse-proportional to the supply voltage."

#include <cstdio>

#include "bench_util.hpp"
#include "chip/chip.hpp"
#include "util/linear_fit.hpp"
#include "util/table.hpp"

int main() {
    using namespace rap;
    bench::Stopwatch watch;
    bench::print_header(
        "E8 / depth sweep",
        "time & energy vs configured depth (3..18) across voltages");

    constexpr std::uint64_t kItems = 700;
    constexpr int kStages = 18;
    const std::vector<double> voltages = {0.5, 0.8, 1.2, 1.6};

    util::Table table({"depth", "T@0.5V ns", "T@0.8V ns", "T@1.2V ns",
                       "T@1.6V ns", "E@0.5V pJ", "E@0.8V pJ", "E@1.2V pJ",
                       "E@1.6V pJ"});

    std::vector<double> depths;
    std::vector<std::vector<double>> times(voltages.size());
    std::vector<std::vector<double>> energies(voltages.size());

    for (int depth = 3; depth <= kStages; ++depth) {
        chip::ChipOptions options;
        options.stages = kStages;
        options.depth = depth;
        options.core = chip::Core::Reconfigurable;
        options.sync = netlist::SyncTopology::DaisyChain;
        const chip::Evaluation chip_eval(options);
        depths.push_back(depth);

        std::vector<std::string> row = {std::to_string(depth)};
        std::vector<std::string> energy_cells;
        for (std::size_t vi = 0; vi < voltages.size(); ++vi) {
            const auto m = chip_eval.measure(voltages[vi], kItems);
            times[vi].push_back(m.time_per_item_s());
            energies[vi].push_back(m.energy_per_item_j());
            row.push_back(util::Table::num(m.time_per_item_s() * 1e9, 2));
            energy_cells.push_back(
                util::Table::num(m.energy_per_item_j() * 1e12, 1));
        }
        row.insert(row.end(), energy_cells.begin(), energy_cells.end());
        table.add_row(row);
    }
    std::printf("%s\n", table.to_ascii().c_str());

    util::Table fits({"V", "time slope [ns/stage]", "time R^2",
                      "energy slope [pJ/stage]", "energy R^2"});
    std::vector<double> time_slopes;
    for (std::size_t vi = 0; vi < voltages.size(); ++vi) {
        const auto tf = util::fit_line(depths, times[vi]);
        const auto ef = util::fit_line(depths, energies[vi]);
        time_slopes.push_back(tf.slope);
        fits.add_row({util::Table::num(voltages[vi], 1),
                      util::Table::num(tf.slope * 1e9, 4),
                      util::Table::num(tf.r_squared, 4),
                      util::Table::num(ef.slope * 1e12, 3),
                      util::Table::num(ef.r_squared, 4)});
    }
    std::printf("linear fits per voltage:\n%s\n", fits.to_ascii().c_str());

    bool slopes_shrink = true;
    for (std::size_t i = 1; i < time_slopes.size(); ++i) {
        slopes_shrink &= time_slopes[i] < time_slopes[i - 1];
    }
    std::printf("time/energy grow linearly with depth (R^2 ~ 1): see fits\n");
    std::printf("slope falls as voltage rises (reverse-proportional): %s\n",
                slopes_shrink ? "yes" : "NO");
    bench::print_footer(watch);
    return slopes_shrink ? 0 : 1;
}
