// Partial-order reduction ratios: full vs reduced exhaustive passes on
// the paper-style fixtures (token rings, wagging, static and
// reconfigurable OPE, the deadlocking gap misconfiguration). For each
// fixture the harness runs a deadlock-detection pass — the pass class
// the reduction helps most (no visibility proviso) and the one the
// verification flow leans on — both unreduced and with
// ReachabilityOptions::por, and reports the state-count and
// transition-work ratios.
//
// --json PATH writes the machine-readable summary bench/compare.py
// gates (--por): reduction *ratios* only, never absolute state counts —
// ratios are machine-independent, so the floor holds on any runner.
//
// Exit is non-zero on any verdict disagreement between the full and
// reduced passes or across thread counts, so the harness doubles as an
// end-to-end differential smoke.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "dfs/model.hpp"
#include "dfs/translate.hpp"
#include "ope/dfs_models.hpp"
#include "petri/parallel.hpp"
#include "petri/predicate.hpp"
#include "petri/reachability.hpp"
#include "pipeline/builder.hpp"
#include "pipeline/wagging.hpp"
#include "util/table.hpp"

namespace {

using namespace rap;

struct Fixture {
    std::string name;
    petri::Net net;
    bool ope = false;  ///< counts toward the gated best_ope_ratio
};

petri::Net ring_net(int depth) {
    dfs::Graph g("ring_d" + std::to_string(depth));
    std::vector<dfs::NodeId> regs;
    const int n = depth + 2;
    for (int i = 0; i < n; ++i) {
        regs.push_back(g.add_control("c" + std::to_string(i), i == 0,
                                     dfs::TokenValue::True));
    }
    for (int i = 0; i < n; ++i) g.connect(regs[i], regs[(i + 1) % n]);
    return dfs::to_petri(g).net;
}

petri::Net wagging_net() {
    dfs::Graph g("wagging");
    const auto in = g.add_register("in");
    pipeline::add_wagging_stage(g, "w", in);
    return dfs::to_petri(g).net;
}

petri::Net gap_net() {
    auto p = ope::build_reconfigurable_ope_dfs(3, 3);
    pipeline::reset_ring(p.graph, p.stages[1].global_ring,
                         dfs::TokenValue::False);
    return dfs::to_petri(p.graph).net;
}

std::vector<Fixture> fixtures() {
    std::vector<Fixture> fs;
    fs.push_back({"ring_d4", ring_net(4), false});
    fs.push_back({"wagging", wagging_net(), false});
    fs.push_back({"ope_static_s2",
                  dfs::to_petri(ope::build_static_ope_dfs(2).graph).net,
                  true});
    fs.push_back(
        {"ope_s3_d3",
         dfs::to_petri(ope::build_reconfigurable_ope_dfs(3, 3).graph).net,
         true});
    fs.push_back({"ope_gap", gap_net(), true});
    return fs;
}

std::vector<petri::Marking> sorted(std::vector<petri::Marking> ms) {
    std::sort(ms.begin(), ms.end());
    return ms;
}

struct Pass {
    petri::MultiResult result;
    double seconds = 0.0;
};

/// One exhaustive deadlock-detection pass (goal + full collection).
Pass run_pass(const petri::CompiledNet& compiled, bool por,
              std::size_t threads) {
    petri::ReachabilityOptions options;
    options.stop_at_first_match = false;
    options.por = por;
    options.threads = threads;
    petri::ParallelReachabilityExplorer explorer(compiled, options);
    const petri::Predicate dead = petri::Predicate::deadlock();
    petri::MultiQuery query;
    query.goals = {&dead};
    query.collect_deadlocks = true;
    explorer.run_query(query);  // warm-up
    bench::Stopwatch watch;
    Pass pass;
    pass.result = explorer.run_query(query);
    pass.seconds = watch.elapsed_s();
    return pass;
}

}  // namespace

int main(int argc, char** argv) {
    const char* json_path = nullptr;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
    }
    bench::Stopwatch watch;
    bench::print_header("partial-order reduction ratios",
                        "full vs stubborn-set deadlock passes");

    bool ok = true;
    double best_ope_ratio = 0.0;
    util::Table table({"fixture", "full states", "reduced states",
                       "state ratio", "work ratio", "full [ms]",
                       "reduced [ms]"});
    std::string fixtures_json;
    for (const Fixture& fixture : fixtures()) {
        const petri::CompiledNet compiled(fixture.net);
        const Pass full = run_pass(compiled, /*por=*/false, 1);
        const Pass red = run_pass(compiled, /*por=*/true, 1);

        // Differential smoke: verdict + deadlock sets + thread-count
        // determinism of the reduced graph.
        const Pass red4 = run_pass(compiled, /*por=*/true, 4);
        if (full.result.truncated || red.result.truncated ||
            red.result.goals[0].found() != full.result.goals[0].found() ||
            sorted(red.result.deadlocks) != sorted(full.result.deadlocks)) {
            std::printf("VERDICT MISMATCH on %s\n", fixture.name.c_str());
            ok = false;
        }
        if (red4.result.states_explored != red.result.states_explored ||
            red4.result.edges_explored != red.result.edges_explored) {
            std::printf("REDUCED GRAPH NOT DETERMINISTIC on %s\n",
                        fixture.name.c_str());
            ok = false;
        }

        const double state_ratio =
            static_cast<double>(full.result.states_explored) /
            static_cast<double>(red.result.states_explored);
        const double work_ratio =
            red.result.por.expanded_transitions == 0
                ? 1.0
                : static_cast<double>(red.result.por.enabled_transitions) /
                      static_cast<double>(
                          red.result.por.expanded_transitions);
        if (fixture.ope) best_ope_ratio = std::max(best_ope_ratio,
                                                   state_ratio);
        table.add_row({fixture.name,
                       std::to_string(full.result.states_explored),
                       std::to_string(red.result.states_explored),
                       util::Table::num(state_ratio, 2) + "x",
                       util::Table::num(work_ratio, 2) + "x",
                       util::Table::num(full.seconds * 1e3, 1),
                       util::Table::num(red.seconds * 1e3, 1)});
        fixtures_json +=
            "    {\"name\": \"" + fixture.name + "\", \"state_ratio\": " +
            std::to_string(state_ratio) + ", \"work_ratio\": " +
            std::to_string(work_ratio) + "}";
        fixtures_json += ",\n";
    }
    if (!fixtures_json.empty()) {
        fixtures_json.erase(fixtures_json.size() - 2, 1);  // last comma
    }
    std::printf("%s\n", table.to_ascii().c_str());
    std::printf("best OPE state-count reduction: %.2fx "
                "(CI floor: compare.py --por)\n\n",
                best_ope_ratio);

    if (json_path != nullptr) {
        if (FILE* f = std::fopen(json_path, "w")) {
            std::fprintf(f,
                         "{\n"
                         "  \"fixtures\": [\n%s  ],\n"
                         "  \"best_ope_ratio\": %.3f,\n"
                         "  \"ok\": %s\n"
                         "}\n",
                         fixtures_json.c_str(), best_ope_ratio,
                         ok ? "true" : "false");
            std::fclose(f);
        } else {
            std::printf("cannot write %s\n", json_path);
            ok = false;
        }
    }

    bench::print_footer(watch);
    return ok ? 0 : 1;
}
