// E6 — Fig. 9a: computation time and energy consumption of the static
// and reconfigurable (18-stage) OPE pipelines at supply voltages from
// 0.5V to 1.6V, normalised to the static pipeline at the nominal 1.2V
// (paper reference: 1.22 s and 2.74 mJ for a 16M-item LFSR run).

#include <cstdio>

#include "bench_util.hpp"
#include "chip/chip.hpp"
#include "util/table.hpp"

int main() {
    using namespace rap;
    bench::Stopwatch watch;
    bench::print_header(
        "E6 / Fig. 9a",
        "time & energy vs supply voltage, static vs reconfigurable");

    constexpr std::uint64_t kItems = 1200;
    constexpr int kStages = 18;

    chip::ChipOptions static_options;
    static_options.stages = kStages;
    static_options.depth = kStages;
    static_options.core = chip::Core::Static;
    static_options.sync = netlist::SyncTopology::Tree;
    const chip::Evaluation static_chip(static_options);

    chip::ChipOptions reconfig_options = static_options;
    reconfig_options.core = chip::Core::Reconfigurable;
    reconfig_options.sync = netlist::SyncTopology::DaisyChain;
    const chip::Evaluation reconfig_chip(reconfig_options);

    const auto reference = static_chip.measure(1.2, kItems);
    const auto cal = chip::PaperCalibration::from(reference);
    const double items16m = chip::PaperCalibration::kReferenceItems;

    std::printf("reference: static @1.2V = %.3e s/item, %.3e J/item\n",
                reference.time_per_item_s(), reference.energy_per_item_j());
    std::printf("paper-equivalent 16M-item run: %.2f s, %.2f mJ "
                "(calibrated to the paper's 1.22 s / 2.74 mJ)\n\n",
                reference.time_per_item_s() * items16m * cal.time_scale,
                reference.energy_per_item_j() * items16m * cal.energy_scale *
                    1e3);

    util::Table table({"V", "static T (norm)", "reconf T (norm)",
                       "static E (norm)", "reconf E (norm)",
                       "static T [s@16M]", "static E [mJ@16M]"});
    double overhead_time = 0, overhead_energy = 0;
    for (const double v : {0.5, 0.6, 0.8, 1.0, 1.2, 1.4, 1.6}) {
        const auto ms = static_chip.measure(v, kItems);
        const auto mr = reconfig_chip.measure(v, kItems);
        const double st = ms.time_per_item_s() / reference.time_per_item_s();
        const double rt = mr.time_per_item_s() / reference.time_per_item_s();
        const double se =
            ms.energy_per_item_j() / reference.energy_per_item_j();
        const double re =
            mr.energy_per_item_j() / reference.energy_per_item_j();
        if (v == 1.2) {
            overhead_time = rt / st - 1.0;
            overhead_energy = re / se - 1.0;
        }
        table.add_row(
            {util::Table::num(v, 1), util::Table::num(st, 3),
             util::Table::num(rt, 3), util::Table::num(se, 3),
             util::Table::num(re, 3),
             util::Table::num(
                 ms.time_per_item_s() * items16m * cal.time_scale, 3),
             util::Table::num(ms.energy_per_item_j() * items16m *
                                  cal.energy_scale * 1e3,
                              3)});
    }
    std::printf("%s\n", table.to_ascii().c_str());
    std::printf("reconfigurability cost at nominal 1.2V: %.1f%% time, "
                "%.1f%% energy\n",
                overhead_time * 100, overhead_energy * 100);
    std::printf("(paper: 36%% time via the daisy-chain sync, 5%% energy)\n");
    std::printf(
        "Expected shape: time falls and energy rises monotonically with\n"
        "voltage; the dashed (reconfigurable) curves sit above the solid\n"
        "(static) ones by the overhead percentages.\n");
    bench::print_footer(watch);
    return 0;
}
