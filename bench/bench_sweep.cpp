// Design-space sweep throughput: the flow::Sweep batch driver over the
// real reconfigurable OPE pipeline (stages x depth x voltage schedule),
// measuring dedup-before-compile (distinct models vs grid points, cache
// hit rate out of the sharded artifact cache), aggregate verification
// throughput and the worker-pool scaling of grid-level parallelism —
// the service shape the verification flow runs at in production.
//
// Each exploration is capped (max_states) so the harness finishes in
// seconds while still visiting the 191k-state 3-stage models; rows past
// the cap report truncated findings, which is fine for a throughput
// measurement. --json PATH writes the machine-readable summary
// bench/compare.py prints advisorily (never gated: dedup ratio and hit
// rate are workload facts, not regressions).
//
// Exit is non-zero if the sweep misbehaves: a failed row, a dedup miss
// (artifact builds != distinct models) or a zero cache hit rate.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "flow/metrics.hpp"
#include "flow/sweep.hpp"
#include "tech/voltage.hpp"
#include "util/table.hpp"
#include "verify/artifacts.hpp"
#include "verify/cache.hpp"

namespace {

using namespace rap;

std::vector<tech::VoltageSchedule> schedules(double v_nominal) {
    tech::VoltageSchedule droop;
    droop.add_segment(2e-6, v_nominal);
    droop.add_segment(1e-6, v_nominal * 0.75);
    droop.add_segment(1e-6, v_nominal);
    return {tech::VoltageSchedule::constant(v_nominal), droop};
}

}  // namespace

int main(int argc, char** argv) {
    const char* json_path = nullptr;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
    }
    bench::Stopwatch watch;
    bench::print_header(
        "design-space sweep service",
        "flow::Sweep over the reconfigurable OPE: dedup, cache, workers");

    const unsigned hw = std::thread::hardware_concurrency();
    std::printf("hardware threads: %u\n\n", hw ? hw : 1);

    bool ok = true;

    // Grid: stages {3,4,5} x depth 3..5 x 2 schedules = 18 points.
    // Valid (stages, depth) pairs: s3:d3, s4:d3-4, s5:d3-5 -> 6 distinct
    // models; the schedule axis doubles the rows, the invalid combos
    // (depth > stages) exercise the kInvalid path. Explorations capped
    // at 60k states so the big models stay cheap.
    flow::DesignOptions base;
    base.verify.max_states = 60'000;
    const std::vector<int> stage_axis{3, 4, 5};

    double sweep_seconds = 0.0;
    double states_per_second = 0.0;
    double dedup_ratio = 0.0;
    double cache_hit_rate = 0.0;
    std::size_t grid_points = 0;
    std::size_t distinct = 0;

    const std::size_t builds_before = verify::artifact_builds();
    {
        bench::Stopwatch sweep_watch;
        flow::Sweep::Handle handle = flow::Sweep::ope(base)
                                         .stages(stage_axis)
                                         .depths(3, 5)
                                         .schedules(schedules(1.2))
                                         .workers(hw ? hw : 1)
                                         .launch();
        const std::vector<flow::SweepResult> rows = handle.wait();
        sweep_seconds = sweep_watch.elapsed_s();
        grid_points = rows.size();
        distinct = handle.distinct_models();
        const std::size_t builds =
            verify::artifact_builds() - builds_before;

        util::Table table({"config", "status", "states", "verify [ms]",
                           "finish(1s work)"});
        std::size_t states_total = 0;
        double verify_total_s = 0.0;
        for (const flow::SweepResult& row : rows) {
            states_total += row.states;
            verify_total_s += row.verify_seconds;
            if (row.status != flow::SweepStatus::kOk &&
                row.status != flow::SweepStatus::kInvalid) {
                std::printf("UNEXPECTED STATUS for %s: %s\n",
                            row.point.label.c_str(),
                            std::string(to_string(row.status)).c_str());
                ok = false;
            }
            table.add_row(
                {row.point.label, std::string(to_string(row.status)),
                 std::to_string(row.states),
                 util::Table::num(row.verify_seconds * 1e3, 1),
                 row.status == flow::SweepStatus::kOk
                     ? util::Table::num(row.schedule_finish_s * 1e6, 2) +
                           " us"
                     : "-"});
        }
        std::printf("%s\n", table.to_ascii().c_str());

        const flow::Metrics metrics = handle.metrics();
        cache_hit_rate = metrics.value("rap_cache_hit_rate");
        dedup_ratio = distinct > 0
                          ? static_cast<double>(grid_points) /
                                static_cast<double>(distinct)
                          : 0.0;
        states_per_second =
            verify_total_s > 0.0
                ? static_cast<double>(states_total) / verify_total_s
                : 0.0;

        std::printf("grid points:        %zu\n", grid_points);
        std::printf("distinct models:    %zu\n", distinct);
        std::printf("artifact builds:    %zu\n", builds);
        std::printf("dedup ratio:        %.2fx\n", dedup_ratio);
        std::printf("cache hit rate:     %.1f%%\n",
                    100.0 * cache_hit_rate);
        std::printf("states verified:    %zu (%.0f states/s aggregate)\n",
                    states_total, states_per_second);
        std::printf("sweep wall time:    %.2f s\n\n", sweep_seconds);

        if (builds != distinct) {
            std::printf("DEDUP MISS: %zu builds for %zu distinct models\n",
                        builds, distinct);
            ok = false;
        }
        if (cache_hit_rate <= 0.0) {
            std::printf("NO CACHE HITS across %zu grid points\n",
                        grid_points);
            ok = false;
        }

        std::printf("metrics exposition (scrape surface):\n%s\n",
                    flow::metrics::to_prometheus(metrics).c_str());
    }

    if (json_path != nullptr) {
        if (FILE* f = std::fopen(json_path, "w")) {
            std::fprintf(f,
                         "{\n"
                         "  \"hardware_threads\": %u,\n"
                         "  \"grid_points\": %zu,\n"
                         "  \"distinct_models\": %zu,\n"
                         "  \"dedup_ratio\": %.3f,\n"
                         "  \"cache_hit_rate\": %.3f,\n"
                         "  \"states_per_second\": %.1f,\n"
                         "  \"sweep_seconds\": %.3f,\n"
                         "  \"ok\": %s\n"
                         "}\n",
                         hw ? hw : 1, grid_points, distinct, dedup_ratio,
                         cache_hit_rate, states_per_second, sweep_seconds,
                         ok ? "true" : "false");
            std::fclose(f);
        } else {
            std::printf("cannot write %s\n", json_path);
            ok = false;
        }
    }

    bench::print_footer(watch);
    return ok ? 0 : 1;
}
