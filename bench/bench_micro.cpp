// Micro-benchmarks (google-benchmark) for the engines every experiment
// rests on: Petri-net firing, DFS event evaluation, the timed simulator,
// the OPE encoders and the reachability explorer. These quantify the
// "EDA tool" cost side of the reproduction.

#include <benchmark/benchmark.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "chip/lfsr.hpp"
#include "petri/compiled.hpp"
#include "dfs/dynamics.hpp"
#include "dfs/simulator.hpp"
#include "dfs/translate.hpp"
#include "ope/dfs_models.hpp"
#include "ope/encoder.hpp"
#include "perf/cycles.hpp"
#include "petri/reachability.hpp"
#include "verify/verifier.hpp"

namespace {

using namespace rap;

dfs::Graph fig1b() {
    dfs::Graph g("fig1b");
    const auto in = g.add_register("in");
    const auto cond = g.add_logic("cond");
    const auto ctrl = g.add_control("ctrl", false, dfs::TokenValue::True);
    const auto filt = g.add_push("filt");
    const auto comp = g.add_register("comp");
    const auto out = g.add_pop("out");
    g.connect(in, cond);
    g.connect(cond, ctrl);
    g.connect(in, filt);
    g.connect(ctrl, filt);
    g.connect(filt, comp);
    g.connect(comp, out);
    g.connect(ctrl, out);
    return g;
}

void BM_DfsRandomStep(benchmark::State& state) {
    const dfs::Graph g = fig1b();
    const dfs::Dynamics dyn(g);
    dfs::Simulator sim(dyn, 1);
    dfs::State s = dfs::State::initial(g);
    for (auto _ : state) {
        benchmark::DoNotOptimize(sim.run(s, 1));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DfsRandomStep);

void BM_PetriFire(benchmark::State& state) {
    const dfs::Graph g = fig1b();
    const auto tr = dfs::to_petri(g);
    petri::Marking m = tr.net.initial_marking();
    for (auto _ : state) {
        const auto enabled = tr.net.enabled_transitions(m);
        if (enabled.empty()) {
            m = tr.net.initial_marking();
            continue;
        }
        tr.net.fire(m, enabled.front());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PetriFire);

void BM_CompiledFire(benchmark::State& state) {
    // The compiled counterpart of BM_PetriFire: word-masked enable scan
    // plus in-place masked firing, no per-step allocation.
    const dfs::Graph g = fig1b();
    const auto tr = dfs::to_petri(g);
    const petri::CompiledNet compiled(tr.net);
    const petri::Marking m0 = tr.net.initial_marking();
    petri::Marking m = m0;
    std::vector<std::uint64_t> enabled(compiled.enabled_words());
    for (auto _ : state) {
        compiled.enabled_set(m.word_data(), enabled.data());
        std::uint32_t first = UINT32_MAX;
        for (std::size_t w = 0; w < enabled.size(); ++w) {
            if (enabled[w] != 0) {
                first = static_cast<std::uint32_t>(
                    w * 64 +
                    static_cast<std::size_t>(std::countr_zero(enabled[w])));
                break;
            }
        }
        if (first == UINT32_MAX) {
            m = m0;
            continue;
        }
        compiled.fire(m.word_data(), petri::TransitionId{first});
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CompiledFire);

void BM_Translation(benchmark::State& state) {
    const int stages = static_cast<int>(state.range(0));
    const auto p = ope::build_reconfigurable_ope_dfs(stages, stages);
    for (auto _ : state) {
        benchmark::DoNotOptimize(dfs::to_petri(p.graph));
    }
}
BENCHMARK(BM_Translation)->Arg(3)->Arg(9)->Arg(18);

void BM_ReachabilityFig1b(benchmark::State& state) {
    const dfs::Graph g = fig1b();
    const auto tr = dfs::to_petri(g);
    for (auto _ : state) {
        petri::ReachabilityExplorer explorer(tr.net);
        benchmark::DoNotOptimize(explorer.count_states());
    }
}
BENCHMARK(BM_ReachabilityFig1b);

void BM_VerifyDeadlockOpe(benchmark::State& state) {
    const auto p = ope::build_reconfigurable_ope_dfs(3, 3);
    for (auto _ : state) {
        const verify::Verifier verifier(p.graph);
        benchmark::DoNotOptimize(verifier.check_deadlock());
    }
}
BENCHMARK(BM_VerifyDeadlockOpe)->Unit(benchmark::kMillisecond);

void BM_ReachabilityOpeStates(benchmark::State& state) {
    // Full state-space sweep of the 3-stage reconfigurable OPE (~191k
    // states): the regression-gated states/second figure of the engine.
    const auto p = ope::build_reconfigurable_ope_dfs(3, 3);
    const auto tr = dfs::to_petri(p.graph);
    std::size_t states = 0;
    for (auto _ : state) {
        petri::ReachabilityExplorer explorer(tr.net);
        states = explorer.count_states();
        benchmark::DoNotOptimize(states);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(states));
}
BENCHMARK(BM_ReachabilityOpeStates)->Unit(benchmark::kMillisecond);

void BM_VerifyAllSinglePass(benchmark::State& state) {
    // Deadlock + control-conflict + persistence in ONE exploration.
    const auto p = ope::build_reconfigurable_ope_dfs(3, 3);
    for (auto _ : state) {
        const verify::Verifier verifier(p.graph);
        benchmark::DoNotOptimize(verifier.verify_all());
    }
}
BENCHMARK(BM_VerifyAllSinglePass)->Unit(benchmark::kMillisecond);

void BM_CycleAnalysis(benchmark::State& state) {
    const int stages = static_cast<int>(state.range(0));
    const auto p = ope::build_reconfigurable_ope_dfs(stages, stages);
    for (auto _ : state) {
        benchmark::DoNotOptimize(perf::analyse_cycles(p.graph));
    }
}
BENCHMARK(BM_CycleAnalysis)->Arg(4)->Arg(6);

void BM_OpeEncoderPush(benchmark::State& state) {
    const int window = static_cast<int>(state.range(0));
    ope::PipelineEncoder encoder(window);
    chip::Lfsr lfsr(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(encoder.push(lfsr.next()));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OpeEncoderPush)->Arg(6)->Arg(18);

void BM_ReferenceEncoderPush(benchmark::State& state) {
    const int window = static_cast<int>(state.range(0));
    ope::ReferenceEncoder encoder(window);
    chip::Lfsr lfsr(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(encoder.push(lfsr.next()));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReferenceEncoderPush)->Arg(6)->Arg(18);

}  // namespace

BENCHMARK_MAIN();
