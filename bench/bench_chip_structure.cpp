// E10 — Fig. 8a/8b: the evaluation chip's structure — LFSR stimulus,
// checksum accumulator, the two OPE cores behind the config mux, normal
// vs random mode — and the floorplan-level implementation statistics.
// The random-mode checksum is validated against the behavioural model
// exactly as the paper's bench does.

#include <cstdio>

#include "bench_util.hpp"
#include "chip/chip.hpp"
#include "chip/lfsr.hpp"
#include "ope/encoder.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
    using namespace rap;
    bench::Stopwatch watch;
    bench::print_header("E10 / Fig. 8",
                        "chip structure, modes, and implementation stats");

    // Random-mode checksum validation across seeds and configurations.
    util::Table checks({"core", "depth", "seed", "count", "checksum",
                        "matches behavioural model"});
    bool all_match = true;
    for (const std::uint16_t seed : {std::uint16_t{0x5EED},
                                     std::uint16_t{0x0001},
                                     std::uint16_t{0xBEEF}}) {
        for (const int depth : {3, 10, 18}) {
            chip::ChipOptions options;
            options.core = chip::Core::Reconfigurable;
            options.depth = depth;
            const auto result = chip::run_random_mode(options, seed, 20000);
            const auto golden = chip::reference_checksum(depth, seed, 20000);
            const bool match = result.checksum == golden;
            all_match &= match;
            checks.add_row({"reconfigurable", std::to_string(depth),
                            util::format("0x%04X", seed), "20000",
                            util::format("%016llx",
                                         static_cast<unsigned long long>(
                                             result.checksum)),
                            match ? "yes" : "NO"});
        }
    }
    {
        chip::ChipOptions options;  // static core, depth 18
        const auto result = chip::run_random_mode(options, 0x5EED, 20000);
        const bool match =
            result.checksum == chip::reference_checksum(18, 0x5EED, 20000);
        all_match &= match;
        checks.add_row({"static", "18", "0x5EED", "20000",
                        util::format("%016llx",
                                     static_cast<unsigned long long>(
                                         result.checksum)),
                        match ? "yes" : "NO"});
    }
    std::printf("random mode (LFSR -> OPE -> accumulator):\n%s\n",
                checks.to_ascii().c_str());

    // Normal mode: streamed rank lists agree with random mode's encoder.
    {
        chip::ChipOptions options;
        options.core = chip::Core::Reconfigurable;
        options.depth = 6;
        chip::Lfsr lfsr(0x1234);
        std::vector<std::int64_t> stream;
        for (int i = 0; i < 64; ++i) stream.push_back(lfsr.next());
        const auto outputs = chip::run_normal_mode(options, stream);
        std::uint64_t checksum = 0;
        for (const auto& ranks : outputs) {
            checksum = ope::fold_checksum(checksum, ranks);
        }
        const bool same =
            checksum == chip::reference_checksum(6, 0x1234, 64);
        all_match &= same;
        std::printf("normal mode, 64 items, N=6: %zu rank lists; checksum "
                    "equals random-mode path: %s\n\n",
                    outputs.size(), same ? "yes" : "NO");
    }

    // Floorplan-level statistics (Fig. 8b's components).
    util::Table impl({"block", "instances", "gates", "area [um^2]",
                      "registers", "controls", "push", "pop", "functions"});
    for (const auto core : {chip::Core::Static, chip::Core::Reconfigurable}) {
        chip::ChipOptions options;
        options.core = core;
        options.sync = core == chip::Core::Static
                           ? netlist::SyncTopology::Tree
                           : netlist::SyncTopology::DaisyChain;
        const chip::Evaluation chip_eval(options);
        const auto s = chip_eval.implementation_stats();
        impl.add_row({core == chip::Core::Static ? "static OPE"
                                                 : "reconfig OPE",
                      std::to_string(s.instances),
                      std::to_string(s.total_gates),
                      util::Table::num(s.area_um2, 0),
                      std::to_string(s.registers),
                      std::to_string(s.control_registers),
                      std::to_string(s.pushes), std::to_string(s.pops),
                      std::to_string(s.function_blocks)});
    }
    std::printf("implementation statistics (both cores, as floorplanned "
                "in Fig. 8b):\n%s\n",
                impl.to_ascii().c_str());
    std::printf("all checksums match the behavioural model: %s\n",
                all_match ? "yes" : "NO");
    bench::print_footer(watch);
    return all_match ? 0 : 1;
}
