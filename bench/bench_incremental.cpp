// Incremental re-verification: the d=1..6 reconfiguration sweep of a
// run-time reconfigurable wagging pipeline, run twice — from scratch
// (fresh compile and fresh exploration per configuration) and
// incrementally (delta-compiled nets chained off the previous
// configuration, one petri::ReuseStore carried across every pass). The
// sweep axis is the initial phase of the alternating control rings:
// each d rotates the configuration tokens one position, a marking-only
// change to one shared structure. Because the rings advance at runtime
// (the paper's premise — configurations are revisited while the
// pipeline operates), every configuration's reachable set is almost
// exactly the shared core, so the incremental sweep re-claims resident
// markings instead of re-interning them.
//
// --json PATH writes the machine-readable summary compare.py surfaces
// (--incremental, advisory). Two deterministic contracts gate the exit
// code regardless: every incremental pass must match its scratch twin
// bit-for-bit (states, edges, verdicts, deadlock sets), and the shared
// store must intern at most 1.5x the deepest single run's markings —
// both are facts about the deterministic reduced graph, not timings, so
// they hold on any machine.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "dfs/translate.hpp"
#include "petri/compiled.hpp"
#include "petri/predicate.hpp"
#include "petri/reachability.hpp"
#include "petri/reuse.hpp"
#include "pipeline/wagging.hpp"
#include "util/table.hpp"

namespace {

using namespace rap;

constexpr int kConfigs = 6;  ///< one per alternating-ring phase
constexpr double kInternRatioCeiling = 1.5;

/// The runtime-reconfigurable fixture: a wagging stage whose
/// distributor/collector rings start rotated by `phase` positions —
/// the d-th configuration of one shared structure. The graph name is
/// phase-independent, so every configuration shares one structural
/// digest: the precondition for delta compilation and marking reuse.
petri::Net config_net(int phase) {
    dfs::Graph g("bench_incremental");
    const dfs::NodeId in = g.add_register("in");
    pipeline::WaggingStage w = pipeline::add_wagging_stage(g, "w", in);
    for (pipeline::AlternatingRing* ring : {&w.distributor, &w.collector}) {
        for (int i = 0; i < 6; ++i) {
            // One True and one False token three positions apart, as
            // built — rotated by `phase`.
            const bool marked = i == phase % 6 || i == (phase + 3) % 6;
            g.set_initial(ring->regs[i], marked,
                          i == phase % 6 ? dfs::TokenValue::True
                                         : dfs::TokenValue::False);
        }
    }
    return dfs::to_petri(g).net;
}

struct Pass {
    petri::MultiResult result;
    double seconds = 0.0;  ///< translate + compile + explore
};

/// One exhaustive reduced deadlock pass — the pass class the
/// verification flow runs per reconfiguration. The clock covers the
/// whole per-configuration cost: graph construction, translation, net
/// compilation (full or delta) and the exploration itself.
Pass run_config(int d, const petri::CompiledNet* parent,
                const std::shared_ptr<petri::ReuseStore>& reuse,
                std::unique_ptr<petri::CompiledNet>& compiled_out) {
    bench::Stopwatch watch;
    const petri::Net net = config_net(d - 1);
    compiled_out = parent != nullptr
                       ? std::make_unique<petri::CompiledNet>(net, *parent)
                       : std::make_unique<petri::CompiledNet>(net);
    petri::ReachabilityOptions options;
    options.stop_at_first_match = false;
    options.por = true;
    options.reuse = reuse;
    petri::ReachabilityExplorer explorer(*compiled_out, options);
    const petri::Predicate dead = petri::Predicate::deadlock();
    petri::MultiQuery query;
    query.goals = {&dead};
    query.collect_deadlocks = true;
    Pass pass;
    pass.result = explorer.run_query(query);
    pass.seconds = watch.elapsed_s();
    return pass;
}

std::vector<petri::Marking> sorted(std::vector<petri::Marking> ms) {
    std::sort(ms.begin(), ms.end());
    return ms;
}

}  // namespace

int main(int argc, char** argv) {
    const char* json_path = nullptr;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
    }
    bench::Stopwatch watch;
    bench::print_header(
        "incremental re-verification",
        "scratch vs reused d=1.." + std::to_string(kConfigs) + " sweep");

    bool ok = true;

    // Scratch side: fresh compile and exploration per configuration,
    // three sweep iterations, best total (the compile is part of the
    // cost on both sides — delta compilation is half the incremental
    // story).
    std::vector<Pass> scratch(kConfigs + 1);
    double scratch_total = 1e300;
    for (int iter = 0; iter < 3; ++iter) {
        double total = 0.0;
        std::vector<Pass> passes(kConfigs + 1);
        for (int d = 1; d <= kConfigs; ++d) {
            std::unique_ptr<petri::CompiledNet> compiled;
            passes[d] = run_config(d, nullptr, nullptr, compiled);
            total += passes[d].seconds;
        }
        if (total < scratch_total) {
            scratch_total = total;
            scratch = std::move(passes);
        }
    }

    // Incremental side: configuration d delta-compiles against d-1's net
    // and every pass shares one ReuseStore. A fresh store per iteration
    // keeps the iterations comparable.
    std::vector<Pass> incremental(kConfigs + 1);
    double incremental_total = 1e300;
    std::size_t interned = 0;
    for (int iter = 0; iter < 3; ++iter) {
        const auto reuse = std::make_shared<petri::ReuseStore>();
        double total = 0.0;
        std::vector<Pass> passes(kConfigs + 1);
        std::unique_ptr<petri::CompiledNet> parent;
        for (int d = 1; d <= kConfigs; ++d) {
            std::unique_ptr<petri::CompiledNet> compiled;
            passes[d] = run_config(d, parent.get(), reuse, compiled);
            total += passes[d].seconds;
            parent = std::move(compiled);
        }
        if (total < incremental_total) {
            incremental_total = total;
            incremental = std::move(passes);
            interned = reuse->interned_markings();
        }
    }

    // Differential gate: the store must be invisible in every answer.
    std::size_t deepest_states = 0;
    double deepest_scratch = 0.0;
    util::Table table({"config", "states", "scratch [ms]", "incr [ms]",
                       "speedup"});
    std::string depths_json;
    for (int d = 1; d <= kConfigs; ++d) {
        const petri::MultiResult& a = scratch[d].result;
        const petri::MultiResult& b = incremental[d].result;
        if (a.truncated || b.truncated ||
            a.states_explored != b.states_explored ||
            a.edges_explored != b.edges_explored ||
            a.goals[0].found() != b.goals[0].found() ||
            sorted(a.deadlocks) != sorted(b.deadlocks)) {
            std::printf("SCRATCH/INCREMENTAL MISMATCH at config %d\n", d);
            ok = false;
        }
        deepest_states = std::max(deepest_states, a.states_explored);
        deepest_scratch = std::max(deepest_scratch, scratch[d].seconds);
        table.add_row({std::to_string(d),
                       std::to_string(a.states_explored),
                       util::Table::num(scratch[d].seconds * 1e3, 1),
                       util::Table::num(incremental[d].seconds * 1e3, 1),
                       util::Table::num(scratch[d].seconds /
                                            incremental[d].seconds,
                                        2) +
                           "x"});
        depths_json += "    {\"depth\": " + std::to_string(d) +
                       ", \"states\": " + std::to_string(a.states_explored) +
                       ", \"scratch_s\": " +
                       std::to_string(scratch[d].seconds) +
                       ", \"incremental_s\": " +
                       std::to_string(incremental[d].seconds) + "},\n";
    }
    if (!depths_json.empty()) {
        depths_json.erase(depths_json.size() - 2, 1);  // last comma
    }
    std::printf("%s\n", table.to_ascii().c_str());

    const double speedup = scratch_total / incremental_total;
    const double sweep_vs_deepest = incremental_total / deepest_scratch;
    const double intern_ratio = static_cast<double>(interned) /
                                static_cast<double>(deepest_states);
    std::printf("sweep totals: scratch %.1f ms, incremental %.1f ms "
                "(%.2fx); deepest single run %.1f ms, incremental sweep "
                "= %.2fx of it\n",
                scratch_total * 1e3, incremental_total * 1e3, speedup,
                deepest_scratch * 1e3, sweep_vs_deepest);
    std::printf("shared store interned %zu markings for %zu "
                "deepest-run states: %.2fx (ceiling %.2fx)\n\n",
                interned, deepest_states, intern_ratio,
                kInternRatioCeiling);
    if (intern_ratio > kInternRatioCeiling) {
        std::printf("INTERN RATIO ABOVE CEILING\n");
        ok = false;
    }

    if (json_path != nullptr) {
        if (FILE* f = std::fopen(json_path, "w")) {
            std::fprintf(f,
                         "{\n"
                         "  \"depths\": [\n%s  ],\n"
                         "  \"scratch_total_s\": %.6f,\n"
                         "  \"incremental_total_s\": %.6f,\n"
                         "  \"speedup\": %.3f,\n"
                         "  \"deepest_scratch_s\": %.6f,\n"
                         "  \"sweep_vs_deepest\": %.3f,\n"
                         "  \"deepest_states\": %zu,\n"
                         "  \"interned_markings\": %zu,\n"
                         "  \"intern_ratio\": %.3f,\n"
                         "  \"ok\": %s\n"
                         "}\n",
                         depths_json.c_str(), scratch_total,
                         incremental_total, speedup, deepest_scratch,
                         sweep_vs_deepest, deepest_states, interned,
                         intern_ratio, ok ? "true" : "false");
            std::fclose(f);
        } else {
            std::printf("cannot write %s\n", json_path);
            ok = false;
        }
    }

    bench::print_footer(watch);
    return ok ? 0 : 1;
}
