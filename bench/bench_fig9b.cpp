// E9 — Fig. 9b: power consumption of the reconfigurable OPE pipeline
// (all 18 stages active) during a single LFSR-generated experiment while
// the supply voltage is stepped down from 0.5V to 0.34V — where the chip
// freezes with no progress (leakage only) — and then raised again, after
// which the circuit recovers and completes the computation correctly.

#include <cstdio>

#include "bench_util.hpp"
#include "chip/chip.hpp"
#include "util/table.hpp"

int main() {
    using namespace rap;
    bench::Stopwatch watch;
    bench::print_header(
        "E9 / Fig. 9b",
        "power trace under a falling supply: freeze at 0.34V and recovery");

    constexpr std::uint64_t kItems = 3000;
    chip::ChipOptions options;
    options.stages = 18;
    options.depth = 18;
    options.core = chip::Core::Reconfigurable;
    options.sync = netlist::SyncTopology::DaisyChain;
    const chip::Evaluation chip_eval(options);

    // Budget the schedule from the expected runtime at 0.5V: the voltage
    // steps down every ~12% of it, reaching the freeze point well before
    // the computation can finish, holds there, then recovers to 0.5V.
    const auto probe = chip_eval.measure(0.5, kItems);
    const double unit = probe.time_s / 8.0;

    tech::VoltageSchedule schedule;
    const std::vector<double> downward = {0.50, 0.49, 0.48, 0.47,
                                          0.46, 0.45, 0.44, 0.34};
    for (const double v : downward) schedule.add_segment(unit, v);
    schedule.add_segment(4 * unit, 0.34);  // frozen plateau
    schedule.add_segment(unit, 0.50);      // recovery, holds forever

    const auto stats = chip_eval.measure_with_schedule(
        schedule, kItems, /*trace_bin_s=*/unit / 2.0, /*max_time_s=*/1e9);

    // The paper's time axis is seconds on the bench; ours is simulator
    // time — report both the raw trace and paper-scaled time using the
    // nominal calibration of the static core.
    chip::ChipOptions static_options;
    static_options.core = chip::Core::Static;
    const chip::Evaluation static_chip(static_options);
    const auto cal =
        chip::PaperCalibration::from(static_chip.measure(1.2, 800));
    const double items_ratio =
        chip::PaperCalibration::kReferenceItems / static_cast<double>(kItems);

    // Idle prefix: before the computation starts the chip only leaks at
    // 0.5V (the flat left side of Fig. 9b).
    const tech::VoltageModel model(options.process);
    const double idle_power =
        model.leakage_power(0.5, chip_eval.netlist().total_gates());

    util::Table table({"t [s, paper scale]", "V", "power [uW, paper scale]",
                       "phase"});
    const double tscale = cal.time_scale * items_ratio;
    const double pscale = cal.energy_scale / cal.time_scale;
    table.add_row({"0.00", "0.50",
                   util::Table::num(idle_power * pscale * 1e6, 4), "idle"});
    const double idle_span = stats.time_s * 0.1;
    std::size_t printed = 0;
    for (const auto& sample : stats.trace) {
        if (printed++ % 2) continue;  // thin the table
        const char* phase = "computing";
        if (sample.voltage_v <= 0.34) {
            phase = sample.power_w < 2 * idle_power ? "FROZEN (leakage)"
                                                    : "slowing";
        } else if (sample.t_start_s > stats.time_s * 0.8) {
            phase = "recovered";
        }
        table.add_row(
            {util::Table::num((idle_span + sample.t_start_s) * tscale, 2),
             util::Table::num(sample.voltage_v, 2),
             util::Table::num(sample.power_w * pscale * 1e6, 4), phase});
    }
    std::printf("%s\n", table.to_ascii().c_str());

    const bool completed = stats.marks_at(chip_eval.model().out) >= kItems;
    std::printf("items completed after recovery: %llu / %llu -> %s\n",
                static_cast<unsigned long long>(
                    stats.marks_at(chip_eval.model().out)),
                static_cast<unsigned long long>(kItems),
                completed ? "run completed correctly" : "RUN INCOMPLETE");
    std::printf("frozen forever: %s (expected no — the supply recovers)\n",
                stats.frozen ? "yes" : "no");
    std::printf(
        "Expected shape: up-spike at computation start, stepwise power\n"
        "decrease as the supply falls, a leakage-only plateau at 0.34V\n"
        "(no progress for arbitrarily long), and a final down-spike when\n"
        "the supply recovers and the remaining items complete.\n");
    bench::print_footer(watch);
    return completed ? 0 : 1;
}
