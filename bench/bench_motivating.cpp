// E2 — Fig. 1a vs Fig. 1b: conditional application of an expensive
// function. The SDFS model (static registers/logic only) must evaluate
// `comp` for every item; the DFS model bypasses it via the control/push/
// pop trio when `cond` is False. We sweep the probability of cond=True
// and report throughput and energy per item for both models — the
// "performance and power degrade to the worst case" claim of Section II.

#include <cstdio>

#include "asim/timed_sim.hpp"
#include "bench_util.hpp"
#include "dfs/dynamics.hpp"
#include "dfs/model.hpp"
#include "tech/voltage.hpp"
#include "util/table.hpp"

namespace {

using namespace rap;

struct Model {
    dfs::Graph graph;
    dfs::NodeId out;
    dfs::NodeId comp;
};

/// Fig. 1a: both cond and comp always execute; filt (logic) merges them.
Model make_sdfs() {
    Model m{dfs::Graph("fig1a"), {}, {}};
    auto& g = m.graph;
    const auto in = g.add_register("in");
    const auto cond = g.add_logic("cond");
    const auto flag = g.add_register("flag");
    m.comp = g.add_register("comp");  // the shaded comp pipeline
    const auto filt = g.add_logic("filt");
    const auto out = g.add_register("out");
    g.connect(in, cond);
    g.connect(cond, flag);
    g.connect(in, m.comp);
    g.connect(flag, filt);
    g.connect(m.comp, filt);
    g.connect(filt, out);
    m.out = out;
    return m;
}

/// Fig. 1b: the DFS model with ctrl / push filt / pop out.
Model make_dfs() {
    Model m{dfs::Graph("fig1b"), {}, {}};
    auto& g = m.graph;
    const auto in = g.add_register("in");
    const auto cond = g.add_logic("cond");
    const auto ctrl = g.add_control("ctrl", false, dfs::TokenValue::True);
    const auto filt = g.add_push("filt");
    m.comp = g.add_register("comp");
    const auto out = g.add_pop("out");
    g.connect(in, cond);
    g.connect(cond, ctrl);
    g.connect(in, filt);
    g.connect(ctrl, filt);
    g.connect(filt, m.comp);
    g.connect(m.comp, out);
    g.connect(ctrl, out);
    m.out = out;
    return m;
}

struct Point {
    double time_per_item;
    double energy_per_item;
    double comp_activity;
};

Point measure(const Model& m, double true_bias, std::uint64_t items) {
    const dfs::Dynamics dynamics(m.graph);
    // comp is the expensive pipelined function: 20x the delay and 50x
    // the energy of the plumbing around it.
    asim::TimingMap timing = asim::uniform_timing(m.graph, 1e-9, 1e-12);
    timing[m.comp.value] = {20e-9, 50e-12};
    asim::TimedSimulator sim(dynamics, timing, tech::VoltageModel{},
                             tech::VoltageSchedule::constant(1.2), 0.0);
    sim.set_seed(7);
    sim.set_true_bias(true_bias);
    dfs::State state = dfs::State::initial(m.graph);
    asim::RunLimits limits;
    limits.target_marks = items;
    limits.observe = m.out;
    const auto stats = sim.run(state, limits);
    const auto outputs = stats.marks_at(m.out);
    return {stats.time_s / static_cast<double>(outputs),
            stats.dynamic_energy_j / static_cast<double>(outputs),
            static_cast<double>(stats.marks_at(m.comp)) /
                static_cast<double>(outputs)};
}

}  // namespace

int main() {
    bench::Stopwatch watch;
    bench::print_header("E2 / Fig. 1a vs 1b",
                        "conditional comp: SDFS worst-case vs DFS bypass");

    const Model sdfs = make_sdfs();
    const Model dfs_model = make_dfs();
    constexpr std::uint64_t kItems = 2000;

    util::Table table({"P(cond=True)", "SDFS ns/item", "DFS ns/item",
                       "speedup", "SDFS pJ/item", "DFS pJ/item",
                       "energy ratio", "DFS comp activity"});
    for (const double p : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
        const Point s = measure(sdfs, p, kItems);
        const Point d = measure(dfs_model, p, kItems);
        table.add_row({util::Table::num(p, 2),
                       util::Table::num(s.time_per_item * 1e9, 2),
                       util::Table::num(d.time_per_item * 1e9, 2),
                       util::Table::num(s.time_per_item / d.time_per_item, 2),
                       util::Table::num(s.energy_per_item * 1e12, 2),
                       util::Table::num(d.energy_per_item * 1e12, 2),
                       util::Table::num(
                           d.energy_per_item / s.energy_per_item, 3),
                       util::Table::num(d.comp_activity, 3)});
    }
    std::printf("%s\n", table.to_ascii().c_str());
    std::printf(
        "Expected shape: the SDFS columns are flat at the worst case;\n"
        "the DFS columns improve towards P=0 (full bypass), converging\n"
        "to the SDFS cost at P=1.\n");
    bench::print_footer(watch);
    return 0;
}
