// Capacity-tier harness: bytes/state of the marking store under the
// legacy (hash + dense-id index) and compact (id-less, arena
// back-reference) interning layouts, on the fixtures the capacity story
// rests on — the reconfigurable OPE model sequentially and at 4 threads,
// plus the deep token ring. The byte counts come from the engines' own
// StoreStats (table + arena geometry), so they are deterministic and
// machine-independent: bench/compare.py --capacity gates an aggregate
// compact/legacy ratio ceiling and per-row bytes/state ceilings on them.
//
// --json PATH   machine-readable summary for the compare.py gate
// --stages N    OPE fixture size (default 3 = s3/d3 tier-1 scale;
//               the nightly soak passes 4 = the 19M-state s4/d4 pin,
//               sequential rows only, to keep the runtime bounded)
//
// Exit is non-zero if the two layouts disagree on (states, edges) for
// any fixture — the harness doubles as a differential smoke.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "dfs/model.hpp"
#include "dfs/translate.hpp"
#include "ope/dfs_models.hpp"
#include "petri/parallel.hpp"
#include "petri/reachability.hpp"
#include "util/table.hpp"

namespace {

using namespace rap;

struct Row {
    std::string name;
    std::size_t states = 0;
    std::size_t edges = 0;
    std::size_t legacy_bytes = 0;   ///< table + arena, legacy layout
    std::size_t compact_bytes = 0;  ///< table + arena, compact layout
    double seconds[2] = {0.0, 0.0};
    bool ok = true;

    double bytes_per_state(bool compact) const {
        return static_cast<double>(compact ? compact_bytes : legacy_bytes) /
               static_cast<double>(states);
    }
    double ratio() const {
        return static_cast<double>(compact_bytes) /
               static_cast<double>(legacy_bytes);
    }
};

std::size_t store_bytes(const petri::MemoryStats& memory) {
    return memory.store.table_bytes + memory.store.arena_bytes;
}

/// One fixture under both layouts; threads == 0 means the sequential
/// engine (the parallel explorer at 1 thread delegates there anyway, but
/// naming it keeps the row labels honest).
Row measure(const std::string& name, const petri::CompiledNet& compiled,
            std::size_t threads, std::size_t max_states) {
    Row row;
    row.name = name;
    for (const bool compact : {false, true}) {
        petri::ReachabilityOptions options;
        options.max_states = max_states;
        options.compact_store = compact;
        options.stop_at_first_match = false;
        petri::ReachabilityResult result;
        bench::Stopwatch watch;
        if (threads == 0) {
            petri::ReachabilityExplorer explorer(compiled, options);
            result = explorer.explore_all();
        } else {
            options.threads = threads;
            petri::ParallelReachabilityExplorer explorer(compiled, options);
            result = explorer.explore_all();
        }
        row.seconds[compact ? 1 : 0] = watch.elapsed_s();
        (compact ? row.compact_bytes : row.legacy_bytes) =
            store_bytes(result.memory);
        if (compact) {
            row.ok = result.states_explored == row.states &&
                     result.edges_explored == row.edges;
        } else {
            row.states = result.states_explored;
            row.edges = result.edges_explored;
        }
        if (result.truncated) row.ok = false;
    }
    return row;
}

/// Deep token ring (24 registers, 3 tokens): ~269k states of a narrow
/// marking — the small-record end of the capacity spectrum, where table
/// overhead dominates and the compact layout helps most.
petri::Net deep_ring_net() {
    dfs::Graph g("deepring");
    std::vector<dfs::NodeId> regs;
    const int n = 24;
    for (int i = 0; i < n; ++i) {
        regs.push_back(g.add_control("c" + std::to_string(i), i % 8 == 0,
                                     dfs::TokenValue::True));
    }
    for (int i = 0; i < n; ++i) g.connect(regs[i], regs[(i + 1) % n]);
    return dfs::to_petri(g).net;
}

}  // namespace

int main(int argc, char** argv) {
    const char* json_path = nullptr;
    int stages = 3;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
        if (std::strcmp(argv[i], "--stages") == 0) {
            stages = std::atoi(argv[i + 1]);
        }
    }
    bench::Stopwatch watch;
    bench::print_header(
        "marking-store capacity tier",
        "bytes/state, legacy vs compact interning layout");

    const bool soak_pin = stages >= 4;
    const std::size_t cap = soak_pin ? 25'000'000 : 2'000'000;
    const auto p = ope::build_reconfigurable_ope_dfs(stages, stages);
    const auto tr = dfs::to_petri(p.graph);
    const petri::CompiledNet compiled(tr.net);
    char ope_label[32];
    std::snprintf(ope_label, sizeof(ope_label), "ope_s%d_d%d", stages,
                  stages);

    std::vector<Row> rows;
    rows.push_back(
        measure(std::string(ope_label) + "/seq", compiled, 0, cap));
    if (!soak_pin) {
        // Tier-1 scale: add the narrow-marking ring and the parallel
        // engine's layout (per-record concurrent blocks instead of the
        // sequential arena). The soak pin skips these — two extra
        // 19M-state explorations buy no new gate.
        const petri::Net ring = deep_ring_net();
        const petri::CompiledNet ring_compiled(ring);
        rows.push_back(measure("deepring/seq", ring_compiled, 0, cap));
        rows.push_back(
            measure(std::string(ope_label) + "/par4", compiled, 4, cap));
    }

    bool ok = true;
    std::size_t legacy_total = 0;
    std::size_t compact_total = 0;
    util::Table table({"fixture", "states", "legacy B/state",
                       "compact B/state", "compact/legacy"});
    for (const Row& row : rows) {
        legacy_total += row.legacy_bytes;
        compact_total += row.compact_bytes;
        table.add_row({row.name, std::to_string(row.states),
                       util::Table::num(row.bytes_per_state(false), 1),
                       util::Table::num(row.bytes_per_state(true), 1),
                       util::Table::num(row.ratio(), 3)});
        if (!row.ok) {
            std::printf("LAYOUT MISMATCH on %s: the compact pass "
                        "disagreed on (states, edges) or truncated\n",
                        row.name.c_str());
            ok = false;
        }
    }
    const double aggregate =
        static_cast<double>(compact_total) /
        static_cast<double>(legacy_total);
    std::printf("%s\naggregate compact/legacy store bytes: %.3f "
                "(gate: <= 0.80 via compare.py --capacity)\n\n",
                table.to_ascii().c_str(), aggregate);

    if (json_path != nullptr) {
        if (FILE* f = std::fopen(json_path, "w")) {
            std::fprintf(f, "{\n  \"rows\": [\n");
            for (std::size_t i = 0; i < rows.size(); ++i) {
                const Row& row = rows[i];
                std::fprintf(
                    f,
                    "    {\"name\": \"%s\", \"states\": %zu, "
                    "\"edges\": %zu, "
                    "\"legacy_bytes_per_state\": %.3f, "
                    "\"compact_bytes_per_state\": %.3f, "
                    "\"ratio\": %.4f}%s\n",
                    row.name.c_str(), row.states, row.edges,
                    row.bytes_per_state(false), row.bytes_per_state(true),
                    row.ratio(), i + 1 < rows.size() ? "," : "");
            }
            std::fprintf(f,
                         "  ],\n"
                         "  \"aggregate_ratio\": %.4f,\n"
                         "  \"ok\": %s\n"
                         "}\n",
                         aggregate, ok ? "true" : "false");
            std::fclose(f);
        } else {
            std::printf("cannot write %s\n", json_path);
            ok = false;
        }
    }

    bench::print_footer(watch);
    return ok ? 0 : 1;
}
