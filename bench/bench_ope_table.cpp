// E1 — Section III-A table: OPE windows and rank lists for the stream
// (3,1,4,1,5,9,2,6) with window size N=6, plus the footnote rank example.
// Regenerated from both the golden reference encoder and the incremental
// pipeline encoder (which models the accelerator architecture).

#include <array>
#include <cstdio>

#include "bench_util.hpp"
#include "ope/encoder.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

std::string ranks_to_string(const std::vector<int>& ranks) {
    std::vector<std::string> parts;
    for (const int r : ranks) parts.push_back(std::to_string(r));
    return "(" + rap::util::join(parts, ", ") + ")";
}

}  // namespace

int main() {
    using namespace rap;
    bench::Stopwatch watch;
    bench::print_header(
        "E1 / Section III-A table",
        "OPE rank lists, stream (3,1,4,1,5,9,2,6), window N=6");

    const std::array<std::int64_t, 8> stream = {3, 1, 4, 1, 5, 9, 2, 6};

    ope::ReferenceEncoder reference(6);
    ope::PipelineEncoder pipeline(6);

    util::Table table({"Index", "Window", "Rank list (reference)",
                       "Rank list (pipeline)", "match"});
    int index = 1;
    std::vector<std::int64_t> window;
    bool all_match = true;
    for (std::size_t i = 0; i < stream.size(); ++i) {
        window.push_back(stream[i]);
        if (window.size() > 6) window.erase(window.begin());
        const auto ref = reference.push(stream[i]);
        const auto pipe = pipeline.push(stream[i]);
        if (!ref) continue;
        const bool match = *ref == *pipe;
        all_match &= match;
        std::vector<std::string> witems;
        for (const auto w : window) witems.push_back(std::to_string(w));
        table.add_row({std::to_string(index++),
                       "(" + util::join(witems, ", ") + ")",
                       ranks_to_string(*ref), ranks_to_string(*pipe),
                       match ? "yes" : "NO"});
    }
    std::printf("%s\n", table.to_ascii().c_str());

    std::printf("Paper footnote: ranks of (2, 0, 1, 7) = %s (expected "
                "(3, 1, 2, 4))\n",
                ranks_to_string(
                    ope::rank_window(std::array<std::int64_t, 4>{2, 0, 1, 7}))
                    .c_str());
    std::printf("All pipeline outputs match the behavioural model: %s\n",
                all_match ? "yes" : "NO");
    bench::print_footer(watch);
    return all_match ? 0 : 1;
}
