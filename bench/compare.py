#!/usr/bin/env python3
"""Benchmark regression gate for CI.

Compares a google-benchmark JSON result against the committed
bench/baseline.json. Benchmarks listed in GATED are enforced: a
regression above --warn prints a warning, above --fail the script exits
non-zero and fails the CI job. Everything else is informational.

Because CI runners and developer machines differ in absolute speed, each
benchmark is compared through its ratio to a calibration benchmark
(CALIBRATION) measured in the same run: machine-speed differences cancel
while regressions *relative to the rest of the code base* remain
visible. Pass --absolute to compare raw numbers instead (useful when
baseline and current come from the same machine).

Refresh the baseline (after intentional performance changes, on the
reference machine):

    ./build/bench/bench_micro --benchmark_repetitions=5 \
        --benchmark_report_aggregates_only=true \
        --benchmark_format=json --benchmark_out=bench/baseline.json
"""

import argparse
import json
import sys

# Multi-thread scaling floor for bench_parallel's JSON summary
# (--parallel): calibrated conservatively from the 4-core CI runner's
# first gated runs (explore_all best speedup has been >= 2x there; the
# design target is >= 3x). Raise after a few more runs establish the
# floor — 1-core containers skip the gate entirely.
PARALLEL_MIN_SPEEDUP = 1.8
PARALLEL_MIN_THREADS = 4

# Capacity gate for bench_capacity's JSON summary (--capacity). The
# numbers are store geometry (table + arena bytes over deterministic
# state counts), not timings, so they are machine-independent and gate
# on any runner. The aggregate compact/legacy ratio ceiling is the
# tentpole claim (the compact layout saves >= 20% of store bytes across
# the fixture mix); the per-row bytes/state ceilings catch either layout
# silently growing records or slot head-room. Ceilings sit ~10% above
# the measured values so allocator-rounding changes don't flap the gate.
CAPACITY_MAX_AGGREGATE_RATIO = 0.80
CAPACITY_MAX_BYTES_PER_STATE = {
    # fixture           (legacy, compact) bytes/state ceilings, ~15%
    # above the measured 79.6/35.7, 79.9/48.7 and 64.2/43.2
    "ope_s3_d3/seq": (92.0, 42.0),
    "deepring/seq": (92.0, 56.0),
    "ope_s3_d3/par4": (75.0, 50.0),
    # the nightly soak pin (19M states, sequential row only; measured
    # 74.2/46.1 — a 37.9% drop against the >= 20% acceptance bar)
    "ope_s4_d4/seq": (86.0, 54.0),
}

# Partial-order reduction floor for bench_por's JSON summary (--por).
# Unlike timings, these are state-count ratios of a deterministic
# reduced graph — machine-independent, so the gate holds on any runner
# (1-core containers included). Measured on the first gated runs:
# ope_s3_d3 202x, wagging 87x, ope_gap 32x, ope_static_s2 4.7x. The
# floor is deliberately conservative — it exists to catch the reduction
# silently degrading to (near-)full exploration, not to pin today's
# heuristic: at least one OPE fixture must keep a >= 2x state-count
# reduction, and no fixture may explore more states reduced than full.
POR_MIN_OPE_RATIO = 2.0

# Benchmarks that gate the build: the reachability/verification engine
# hot paths this repo's performance story rests on.
GATED = (
    "BM_PetriFire",
    "BM_CompiledFire",
    "BM_ReachabilityFig1b",
    "BM_ReachabilityOpeStates",
    "BM_VerifyAllSinglePass",
)

# Machine-speed anchor: an engine-independent, allocation-free hot loop.
CALIBRATION = "BM_DfsRandomStep"

TIME_UNITS = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}


def load_times(path):
    """name -> real_time in seconds, preferring median aggregates."""
    with open(path) as f:
        data = json.load(f)
    plain = {}
    medians = {}
    for entry in data.get("benchmarks", []):
        seconds = entry["real_time"] * TIME_UNITS[entry.get("time_unit",
                                                           "ns")]
        if entry.get("run_type") == "aggregate":
            if entry.get("aggregate_name") == "median":
                medians[entry["run_name"]] = seconds
        else:
            plain[entry.get("run_name", entry["name"])] = seconds
    return {**plain, **medians}


def load_section(path, name, gated, failures):
    """Load one summary-JSON section, loudly.

    A flag that asks for a section must never silently pass when the
    file is absent or unreadable: a gated section records a failure (the
    gate cannot be skipped by deleting its input), an advisory section
    prints an explicit skip line so the job log shows the gap.
    """
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        if gated:
            failures.append(f"{name} section missing — gated input "
                            f"{path} unreadable ({e})")
        else:
            print(f"{name}: section missing — advisory skipped "
                  f"({path}: {e})")
        return None


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument("--warn", type=float, default=0.10,
                        help="warn above this regression fraction")
    parser.add_argument("--fail", type=float, default=0.35,
                        help="fail gated benchmarks above this fraction")
    parser.add_argument("--absolute", action="store_true",
                        help="compare raw times, skip calibration")
    parser.add_argument("--parallel",
                        help="bench_parallel JSON summary to gate")
    parser.add_argument("--por",
                        help="bench_por JSON summary to gate "
                             "(reduction-ratio floor)")
    parser.add_argument("--capacity",
                        help="bench_capacity JSON summary to gate "
                             "(compact/legacy store-byte ratio ceiling "
                             "and per-fixture bytes/state ceilings)")
    parser.add_argument("--max-capacity-ratio", type=float,
                        default=CAPACITY_MAX_AGGREGATE_RATIO,
                        help="aggregate compact/legacy store-byte "
                             "ceiling")
    parser.add_argument("--min-ope-ratio", type=float,
                        default=POR_MIN_OPE_RATIO,
                        help="state-count reduction floor on the best "
                             "OPE fixture")
    parser.add_argument("--sweep",
                        help="bench_sweep JSON summary to report "
                             "(advisory only, never gated)")
    parser.add_argument("--mc",
                        help="bench_mc JSON summary to report "
                             "(advisory only; reproducibility gates in "
                             "bench_mc itself via its exit code)")
    parser.add_argument("--incremental",
                        help="bench_incremental JSON summary to report "
                             "(advisory only; the scratch/incremental "
                             "differential and the intern-ratio ceiling "
                             "gate in bench_incremental itself via its "
                             "exit code)")
    parser.add_argument("--min-parallel-speedup", type=float,
                        default=PARALLEL_MIN_SPEEDUP,
                        help="multi-thread scaling floor (gated only on "
                             f">= {PARALLEL_MIN_THREADS}-thread runners)")
    args = parser.parse_args()

    baseline = load_times(args.baseline)
    current = load_times(args.current)

    scale = 1.0
    if not args.absolute:
        if CALIBRATION not in baseline or CALIBRATION not in current:
            print(f"calibration benchmark {CALIBRATION} missing; "
                  "falling back to absolute comparison")
        else:
            scale = baseline[CALIBRATION] / current[CALIBRATION]
            print(f"calibration ({CALIBRATION}): current machine runs "
                  f"{scale:.2f}x the baseline machine's speed")

    failures = []
    warnings = []
    print(f"{'benchmark':40} {'baseline':>12} {'current':>12} {'delta':>8}")
    for name in sorted(set(baseline) | set(current)):
        if name == CALIBRATION and not args.absolute:
            continue
        gated = any(name == g or name.startswith(g + "/") for g in GATED)
        tag = "gate" if gated else "    "
        if name not in current:
            line = f"{name:40} {'':>12} {'MISSING':>12}"
            (failures if gated else warnings).append(name + " missing")
            print(f"{line} [{tag}]")
            continue
        if name not in baseline:
            print(f"{name:40} {'NEW':>12} "
                  f"{current[name] * 1e9:11.0f}ns {'':>8} [{tag}]")
            if gated:
                # A gated benchmark without a baseline entry is an
                # ungated hot path: refresh bench/baseline.json.
                failures.append(name + " has no baseline entry")
            continue
        base = baseline[name]
        cur = current[name] * scale
        delta = (cur - base) / base
        marker = ""
        if delta > args.fail and gated:
            failures.append(f"{name} regressed {delta:+.0%}")
            marker = " FAIL"
        elif delta > args.warn:
            warnings.append(f"{name} regressed {delta:+.0%}")
            marker = " WARN"
        print(f"{name:40} {base * 1e9:11.0f}n {cur * 1e9:11.0f}n "
              f"{delta:+7.1%} [{tag}]{marker}")

    par = (load_section(args.parallel, "parallel", True, failures)
           if args.parallel else None)
    if par is not None:
        threads = par.get("hardware_threads", 1)
        speedup = par.get("best_speedup", 0.0)
        steal = par.get("steal_vs_cursor")
        diet = par.get("diet_resident_reduction")
        print(f"parallel scaling: {threads} hardware threads, best "
              f"speedup {speedup:.2f}x, steal/cursor {steal}, "
              f"diet reduction {diet}")
        if not par.get("ok", False):
            failures.append("bench_parallel reported a cross-engine "
                            "mismatch")
        if threads < PARALLEL_MIN_THREADS:
            print(f"parallel scaling floor skipped: {threads} hardware "
                  f"thread(s) < {PARALLEL_MIN_THREADS} (1-core container)")
        elif speedup < args.min_parallel_speedup:
            failures.append(
                f"parallel speedup {speedup:.2f}x below the "
                f"{args.min_parallel_speedup:.2f}x floor on a "
                f"{threads}-thread runner")

    por = (load_section(args.por, "por", True, failures)
           if args.por else None)
    if por is not None:
        # Ratios only, never absolute state counts: the reduced graph is
        # deterministic, so the ratios transfer across machines while
        # counts would pin fixture sizes into CI.
        best = por.get("best_ope_ratio", 0.0)
        for fx in por.get("fixtures", []):
            print(f"por {fx.get('name'):24} state ratio "
                  f"{fx.get('state_ratio', 0.0):8.2f}x   work ratio "
                  f"{fx.get('work_ratio', 0.0):6.2f}x")
            if fx.get("state_ratio", 0.0) < 1.0 - 1e-9:
                failures.append(
                    f"por: {fx.get('name')} explored MORE states reduced "
                    f"than full ({fx.get('state_ratio', 0.0):.2f}x)")
        print(f"por best OPE reduction: {best:.2f}x "
              f"(floor {args.min_ope_ratio:.2f}x)")
        if not por.get("ok", False):
            failures.append("bench_por reported a verdict mismatch "
                            "between full and reduced passes")
        if best < args.min_ope_ratio:
            failures.append(
                f"por: best OPE reduction {best:.2f}x fell below the "
                f"{args.min_ope_ratio:.2f}x floor")

    cap = (load_section(args.capacity, "capacity", True, failures)
           if args.capacity else None)
    if cap is not None:
        # Store geometry over deterministic state counts —
        # machine-independent, so both ceilings gate on any runner.
        rows = cap.get("rows", [])
        if not rows:
            failures.append("capacity: summary has no fixture rows")
        for row in rows:
            name = row.get("name", "?")
            legacy = row.get("legacy_bytes_per_state", 0.0)
            compact = row.get("compact_bytes_per_state", 0.0)
            print(f"capacity {name:18} {row.get('states', 0):>10} states"
                  f"   legacy {legacy:6.1f} B/state   compact "
                  f"{compact:6.1f} B/state   ratio "
                  f"{row.get('ratio', 0.0):.3f}")
            ceilings = CAPACITY_MAX_BYTES_PER_STATE.get(name)
            if ceilings is None:
                print(f"capacity: no bytes/state ceiling pinned for "
                      f"{name} (informational row)")
                continue
            if legacy > ceilings[0]:
                failures.append(
                    f"capacity: {name} legacy layout grew to "
                    f"{legacy:.1f} B/state (ceiling {ceilings[0]:.1f})")
            if compact > ceilings[1]:
                failures.append(
                    f"capacity: {name} compact layout grew to "
                    f"{compact:.1f} B/state (ceiling {ceilings[1]:.1f})")
        ratio = cap.get("aggregate_ratio", 1.0)
        print(f"capacity aggregate compact/legacy store bytes: "
              f"{ratio:.3f} (ceiling {args.max_capacity_ratio:.2f})")
        if not cap.get("ok", False):
            failures.append("bench_capacity reported a layout mismatch "
                            "or truncated fixture")
        if ratio > args.max_capacity_ratio:
            failures.append(
                f"capacity: compact/legacy store-byte ratio {ratio:.3f} "
                f"above the {args.max_capacity_ratio:.2f} ceiling — the "
                "compact layout stopped paying for itself")

    sweep = (load_section(args.sweep, "sweep", False, failures)
             if args.sweep else None)
    if sweep is not None:
        # Advisory only: dedup ratio and cache hit rate are facts about
        # the sweep workload, not regressions — surface them in the job
        # log (and as warnings if they look off) without gating.
        dedup = sweep.get("dedup_ratio", 0.0)
        hit_rate = sweep.get("cache_hit_rate", 0.0)
        print(f"sweep service (advisory): {sweep.get('grid_points')} grid "
              f"points, {sweep.get('distinct_models')} distinct models "
              f"(dedup {dedup:.2f}x), cache hit rate {hit_rate:.1%}, "
              f"{sweep.get('states_per_second', 0.0):.0f} states/s in "
              f"{sweep.get('sweep_seconds', 0.0):.2f}s")
        if not sweep.get("ok", False):
            warnings.append("bench_sweep reported a problem (see its "
                            "own job step for the gate)")
        elif hit_rate <= 0.0:
            warnings.append("sweep cache hit rate is zero — dedup "
                            "before compile is not engaging")

    mc = (load_section(args.mc, "mc", False, failures)
          if args.mc else None)
    if mc is not None:
        # Advisory only: survival and hazard counts are facts about the
        # fault model, not regressions. The one hard contract — fixed-seed
        # reproducibility of the aggregate row — is checked inside
        # bench_mc, whose exit code gates its own CI step; here we just
        # surface the summary (and a warning if that run flagged trouble).
        ffv = mc.get("first_failure_voltage")
        print(f"mc campaign (advisory): {mc.get('runs_total')} runs over "
              f"{mc.get('grid_points')} grid points, "
              f"survival {mc.get('survival', 0.0):.1%}, "
              f"{mc.get('hazards_total', 0)} hazards, "
              f"first failure at "
              f"{f'{ffv:.2f} V' if ffv is not None else 'none'}, "
              f"{mc.get('runs_per_second', 0.0):.0f} runs/s in "
              f"{mc.get('campaign_seconds', 0.0):.2f}s, "
              f"checksum {mc.get('checksum', '?')}")
        if not mc.get("reproducible", False):
            warnings.append("bench_mc: seeded campaign was NOT "
                            "bit-reproducible (its own job step gates)")
        elif not mc.get("ok", False):
            warnings.append("bench_mc reported a problem (see its own "
                            "job step for the gate)")

    inc = (load_section(args.incremental, "incremental", False, failures)
           if args.incremental else None)
    if inc is not None:
        # Advisory only: the timings are machine facts, and the two hard
        # contracts (scratch/incremental bit-equality, intern-ratio
        # ceiling) already gate bench_incremental's own CI step. Here we
        # surface the summary and flag anything that looks off.
        ratio = inc.get("intern_ratio", 0.0)
        print(f"incremental re-verification (advisory): "
              f"{len(inc.get('depths', []))} configurations, "
              f"scratch sweep {inc.get('scratch_total_s', 0.0) * 1e3:.1f}ms "
              f"vs incremental {inc.get('incremental_total_s', 0.0) * 1e3:.1f}ms "
              f"({inc.get('speedup', 0.0):.2f}x), "
              f"interned {inc.get('interned_markings')} markings for "
              f"{inc.get('deepest_states')} deepest-run states "
              f"({ratio:.2f}x)")
        if not inc.get("ok", False):
            warnings.append("bench_incremental reported a problem (its "
                            "own job step gates)")
        elif ratio > 1.5:
            warnings.append(f"incremental sweep interned {ratio:.2f}x the "
                            "deepest run's markings — store reuse is not "
                            "engaging")
        elif inc.get("speedup", 0.0) < 0.9:
            warnings.append("incremental sweep ran slower than scratch — "
                            "reuse overhead exceeds its savings")

    for w in warnings:
        print(f"::warning::bench: {w}")
    if failures:
        for f in failures:
            print(f"::error::bench: {f}")
        return 1
    print("benchmark regression gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
