// E5 — Section III-A: "Several cases of deadlock and non-persistent
// behaviour (mostly due to incorrect initialisation of control registers)
// were identified, analysed and corrected during the design process."
// This harness verifies the corrected OPE models at every depth and then
// seeds the classes of initialisation bugs the paper describes, showing
// the checker finds each one with a witness trace.
//
// It also races the compiled reachability engine (CompiledNet + interned
// arena marking store, single-pass multi-property verification) against
// the seed's naive explicit-state BFS on the largest pipeline model, in
// states/second.

#include <cstdio>
#include <deque>
#include <unordered_map>

#include "bench_util.hpp"
#include "dfs/translate.hpp"
#include "ope/dfs_models.hpp"
#include "pipeline/builder.hpp"
#include "util/table.hpp"
#include "verify/verifier.hpp"

namespace {

using namespace rap;

const char* verdict(const verify::Finding& f) {
    if (f.truncated) return "inconclusive";
    return f.violated ? "VIOLATED" : "ok";
}

/// The seed engine, verbatim in spirit: full transition rescan per state
/// via enabled_transitions() (a fresh vector each call), one heap-backed
/// Marking copy per edge, std::unordered_map interning.
struct NaiveStats {
    std::size_t states = 0;
    std::size_t edges = 0;
};

NaiveStats naive_explore(const petri::Net& net) {
    // Mirrors the seed's ReachabilityExplorer::run() exploration loop:
    // markings stored in both the visit-order vector and the hash map,
    // a contains() probe before every emplace, and a full Marking copy
    // per expanded state.
    NaiveStats stats;
    std::vector<petri::Marking> order;
    std::unordered_map<petri::Marking, std::size_t, util::BitVecHash> seen;
    std::deque<std::size_t> frontier;
    const petri::Marking m0 = net.initial_marking();
    order.push_back(m0);
    seen.emplace(m0, 0);
    frontier.push_back(0);
    while (!frontier.empty()) {
        const std::size_t index = frontier.front();
        frontier.pop_front();
        const petri::Marking current = order[index];
        for (petri::TransitionId t : net.enabled_transitions(current)) {
            petri::Marking next = current;
            net.fire(next, t);
            ++stats.edges;
            if (seen.contains(next)) continue;
            seen.emplace(next, order.size());
            order.push_back(std::move(next));
            frontier.push_back(order.size() - 1);
        }
    }
    stats.states = order.size();
    return stats;
}

}  // namespace

int main() {
    bench::Stopwatch watch;
    bench::print_header(
        "E5 / Section III-A verification",
        "deadlock / control-conflict / persistence on OPE models");

    // Correct models: the 3-stage reconfigurable OPE (the 18-stage state
    // space is beyond explicit exploration; the per-stage structure
    // repeats, so the small instance carries the argument), plus the
    // static pipeline and the Fig. 6c building block. Every model runs
    // all three properties in ONE shared exploration (verify_all).
    util::Table clean({"model", "deadlock", "conflict", "persistence",
                       "states", "passes", "time [ms]"});
    auto check_clean = [&clean](const dfs::Graph& graph) {
        verify::VerifyOptions options;
        options.max_states = 5'000'000;
        const verify::Verifier verifier(graph, options);
        bench::Stopwatch t;
        const auto report = verifier.verify_all();
        const auto& deadlock = report.findings[0];
        const auto& conflict = report.findings[1];
        const auto& persistence = report.findings[2];
        clean.add_row({graph.name(), verdict(deadlock), verdict(conflict),
                       verdict(persistence),
                       std::to_string(deadlock.states_explored),
                       std::to_string(verifier.explorations_run()),
                       util::Table::num(t.elapsed_s() * 1e3, 1)});
    };
    check_clean(ope::build_static_ope_dfs(3).graph);
    check_clean(ope::build_reconfigurable_ope_dfs(3, 3).graph);
    std::printf("corrected models (single-pass verify_all):\n%s\n",
                clean.to_ascii().c_str());

    // Engine head-to-head on the largest pipeline model we explore
    // explicitly: seed-style naive BFS vs the compiled engine.
    std::printf("reachability engine head-to-head:\n");
    util::Table race({"model", "engine", "states", "edges", "time [ms]",
                      "states/s"});
    double naive_rate = 0.0;
    double compiled_rate = 0.0;
    {
        // The largest pipeline model explored explicitly here: the full
        // 3-stage reconfigurable OPE (~191k states; 4 stages is already
        // ~19M and naive BFS needs minutes on it).
        const auto p = ope::build_reconfigurable_ope_dfs(3, 3);
        const auto tr = dfs::to_petri(p.graph);

        bench::Stopwatch naive_watch;
        const auto naive = naive_explore(tr.net);
        const double naive_s = naive_watch.elapsed_s();
        naive_rate = static_cast<double>(naive.states) / naive_s;
        race.add_row({p.graph.name(), "naive BFS (seed)",
                      std::to_string(naive.states),
                      std::to_string(naive.edges),
                      util::Table::num(naive_s * 1e3, 1),
                      util::Table::num(naive_rate, 0)});

        petri::ReachabilityExplorer explorer(tr.net);
        bench::Stopwatch compiled_watch;
        const auto result = explorer.explore_all();
        const double compiled_s = compiled_watch.elapsed_s();
        compiled_rate =
            static_cast<double>(result.states_explored) / compiled_s;
        race.add_row({p.graph.name(), "compiled",
                      std::to_string(result.states_explored),
                      std::to_string(result.edges_explored),
                      util::Table::num(compiled_s * 1e3, 1),
                      util::Table::num(compiled_rate, 0)});

        if (naive.states != result.states_explored) {
            std::printf("ENGINE MISMATCH: %zu vs %zu states\n",
                        naive.states, result.states_explored);
            return 1;
        }
    }
    std::printf("%s\n", race.to_ascii().c_str());
    std::printf("compiled engine speedup: %.1fx states/s\n\n",
                compiled_rate / naive_rate);

    // Seeded initialisation bugs.
    util::Table bugs({"seeded bug", "property", "found", "witness trace "
                      "(prefix)"});
    auto add_bug = [&bugs](const char* name, const dfs::Graph& graph,
                           bool expect_conflict = false) {
        const verify::Verifier verifier(graph);
        const auto finding = expect_conflict
                                 ? verifier.check_control_conflict()
                                 : verifier.check_deadlock();
        std::string trace;
        for (std::size_t i = 0; i < finding.trace.size() && i < 5; ++i) {
            if (i) trace += " -> ";
            trace += finding.trace[i];
        }
        if (finding.trace.size() > 5) trace += " -> ...";
        if (trace.empty()) trace = "(at initial state)";
        bugs.add_row({name,
                      std::string(to_string(finding.property)),
                      finding.violated ? "yes" : "NO", trace});
        return finding.violated;
    };

    bool all_found = true;

    {
        // Bug 1: a gap configuration — stage 2 bypassed under an active
        // stage 3 (invalid control-register initialisation).
        auto p = ope::build_reconfigurable_ope_dfs(3, 3);
        pipeline::reset_ring(p.graph, p.stages[1].global_ring,
                             dfs::TokenValue::False);
        all_found &= add_bug("gap configuration (s2 off, s3 on)", p.graph);
    }
    {
        // Bug 2: a control loop initialised with no token at all.
        auto p = ope::build_reconfigurable_ope_dfs(3, 3);
        const auto& ring = p.stages[2].global_ring;
        p.graph.set_initial(ring.head, false);
        all_found &= add_bug("token-free control loop", p.graph);
    }
    {
        // Bug 3: a control loop initialised fully marked (no bubbles).
        auto p = ope::build_reconfigurable_ope_dfs(3, 3);
        const auto& ring = p.stages[2].local_ring;
        p.graph.set_initial(ring.head, true, dfs::TokenValue::True);
        p.graph.set_initial(ring.mid, true, dfs::TokenValue::True);
        p.graph.set_initial(ring.tail, true, dfs::TokenValue::True);
        all_found &= add_bug("fully-marked control loop", p.graph);
    }
    {
        // Bug 4: mixed-polarity rings driving one push (control conflict).
        dfs::Graph g("mixed_controls");
        const auto in = g.add_register("in");
        const auto a = pipeline::add_control_ring(g, "a",
                                                  dfs::TokenValue::True);
        const auto b = pipeline::add_control_ring(g, "b",
                                                  dfs::TokenValue::False);
        const auto push = g.add_push("p");
        const auto sink = g.add_register("sink");
        g.connect(in, push);
        g.connect(a.head, push);
        g.connect(b.head, push);
        g.connect(push, sink);
        all_found &= add_bug("mixed-polarity controls on one push", g,
                             /*expect_conflict=*/true);
    }

    std::printf("seeded control-register initialisation bugs:\n%s\n",
                bugs.to_ascii().c_str());
    std::printf("all seeded bugs caught: %s\n", all_found ? "yes" : "NO");
    bench::print_footer(watch);
    return all_found ? 0 : 1;
}
