// E5 — Section III-A: "Several cases of deadlock and non-persistent
// behaviour (mostly due to incorrect initialisation of control registers)
// were identified, analysed and corrected during the design process."
// This harness verifies the corrected OPE models at every depth and then
// seeds the classes of initialisation bugs the paper describes, showing
// the checker finds each one with a witness trace.

#include <cstdio>

#include "bench_util.hpp"
#include "ope/dfs_models.hpp"
#include "pipeline/builder.hpp"
#include "util/table.hpp"
#include "verify/verifier.hpp"

namespace {

using namespace rap;

const char* verdict(const verify::Finding& f) {
    if (f.truncated) return "inconclusive";
    return f.violated ? "VIOLATED" : "ok";
}

}  // namespace

int main() {
    bench::Stopwatch watch;
    bench::print_header(
        "E5 / Section III-A verification",
        "deadlock / control-conflict / persistence on OPE models");

    // Correct models: the 3-stage reconfigurable OPE (the 18-stage state
    // space is beyond explicit exploration; the per-stage structure
    // repeats, so the small instance carries the argument), plus the
    // static pipeline and the Fig. 6c building block.
    util::Table clean({"model", "deadlock", "conflict", "persistence",
                       "states", "time [ms]"});
    auto check_clean = [&clean](const dfs::Graph& graph) {
        verify::VerifyOptions options;
        options.max_states = 5'000'000;
        const verify::Verifier verifier(graph, options);
        bench::Stopwatch t;
        const auto deadlock = verifier.check_deadlock();
        const auto conflict = verifier.check_control_conflict();
        const auto persistence = verifier.check_persistence();
        clean.add_row({graph.name(), verdict(deadlock), verdict(conflict),
                       verdict(persistence),
                       std::to_string(deadlock.states_explored),
                       util::Table::num(t.elapsed_s() * 1e3, 1)});
    };
    check_clean(ope::build_static_ope_dfs(3).graph);
    check_clean(ope::build_reconfigurable_ope_dfs(3, 3).graph);
    std::printf("corrected models:\n%s\n", clean.to_ascii().c_str());

    // Seeded initialisation bugs.
    util::Table bugs({"seeded bug", "property", "found", "witness trace "
                      "(prefix)"});
    auto add_bug = [&bugs](const char* name, const dfs::Graph& graph,
                           bool expect_conflict = false) {
        const verify::Verifier verifier(graph);
        const auto finding = expect_conflict
                                 ? verifier.check_control_conflict()
                                 : verifier.check_deadlock();
        std::string trace;
        for (std::size_t i = 0; i < finding.trace.size() && i < 5; ++i) {
            if (i) trace += " -> ";
            trace += finding.trace[i];
        }
        if (finding.trace.size() > 5) trace += " -> ...";
        if (trace.empty()) trace = "(at initial state)";
        bugs.add_row({name,
                      std::string(to_string(finding.property)),
                      finding.violated ? "yes" : "NO", trace});
        return finding.violated;
    };

    bool all_found = true;

    {
        // Bug 1: a gap configuration — stage 2 bypassed under an active
        // stage 3 (invalid control-register initialisation).
        auto p = ope::build_reconfigurable_ope_dfs(3, 3);
        pipeline::reset_ring(p.graph, p.stages[1].global_ring,
                             dfs::TokenValue::False);
        all_found &= add_bug("gap configuration (s2 off, s3 on)", p.graph);
    }
    {
        // Bug 2: a control loop initialised with no token at all.
        auto p = ope::build_reconfigurable_ope_dfs(3, 3);
        const auto& ring = p.stages[2].global_ring;
        p.graph.set_initial(ring.head, false);
        all_found &= add_bug("token-free control loop", p.graph);
    }
    {
        // Bug 3: a control loop initialised fully marked (no bubbles).
        auto p = ope::build_reconfigurable_ope_dfs(3, 3);
        const auto& ring = p.stages[2].local_ring;
        p.graph.set_initial(ring.head, true, dfs::TokenValue::True);
        p.graph.set_initial(ring.mid, true, dfs::TokenValue::True);
        p.graph.set_initial(ring.tail, true, dfs::TokenValue::True);
        all_found &= add_bug("fully-marked control loop", p.graph);
    }
    {
        // Bug 4: mixed-polarity rings driving one push (control conflict).
        dfs::Graph g("mixed_controls");
        const auto in = g.add_register("in");
        const auto a = pipeline::add_control_ring(g, "a",
                                                  dfs::TokenValue::True);
        const auto b = pipeline::add_control_ring(g, "b",
                                                  dfs::TokenValue::False);
        const auto push = g.add_push("p");
        const auto sink = g.add_register("sink");
        g.connect(in, push);
        g.connect(a.head, push);
        g.connect(b.head, push);
        g.connect(push, sink);
        all_found &= add_bug("mixed-polarity controls on one push", g,
                             /*expect_conflict=*/true);
    }

    std::printf("seeded control-register initialisation bugs:\n%s\n",
                bugs.to_ascii().c_str());
    std::printf("all seeded bugs caught: %s\n", all_found ? "yes" : "NO");
    bench::print_footer(watch);
    return all_found ? 0 : 1;
}
