#pragma once

// Shared helpers for the experiment-regeneration harnesses. Each bench
// binary reproduces one table/figure of the paper (see DESIGN.md §3) and
// prints it in the same rows/series the paper reports.

#include <chrono>
#include <cstdio>
#include <string>

namespace rap::bench {

/// Wall-clock stopwatch for reporting harness runtimes.
class Stopwatch {
public:
    Stopwatch() : start_(std::chrono::steady_clock::now()) {}
    double elapsed_s() const {
        const auto now = std::chrono::steady_clock::now();
        return std::chrono::duration<double>(now - start_).count();
    }

private:
    std::chrono::steady_clock::time_point start_;
};

inline void print_header(const std::string& experiment,
                         const std::string& what) {
    std::printf("==========================================================\n");
    std::printf("%s\n", experiment.c_str());
    std::printf("%s\n", what.c_str());
    std::printf("==========================================================\n");
}

inline void print_footer(const Stopwatch& watch) {
    std::printf("[harness runtime: %.2f s]\n\n", watch.elapsed_s());
}

}  // namespace rap::bench
