// E3 — Fig. 4: the Petri-net semantics of the Fig. 1b DFS model. Reports
// the translated net's size, the signature non-deterministic choice
// (Mt_ctrl+ / Mf_ctrl+ simultaneously enabled), the reachable state
// space, and the DFS<->PN state-count agreement that backs the semantics.

#include <cstdio>
#include <deque>
#include <unordered_set>

#include "bench_util.hpp"
#include "dfs/dynamics.hpp"
#include "dfs/model.hpp"
#include "dfs/translate.hpp"
#include "petri/reachability.hpp"
#include "util/table.hpp"

namespace {

using namespace rap;

dfs::Graph make_fig1b() {
    dfs::Graph g("fig1b");
    const auto in = g.add_register("in");
    const auto cond = g.add_logic("cond");
    const auto ctrl = g.add_control("ctrl", false, dfs::TokenValue::True);
    const auto filt = g.add_push("filt");
    const auto comp = g.add_register("comp");
    const auto out = g.add_pop("out");
    g.connect(in, cond);
    g.connect(cond, ctrl);
    g.connect(in, filt);
    g.connect(ctrl, filt);
    g.connect(filt, comp);
    g.connect(comp, out);
    g.connect(ctrl, out);
    return g;
}

std::size_t dfs_states(const dfs::Dynamics& dyn) {
    std::unordered_set<dfs::State, dfs::StateHash> seen;
    std::deque<dfs::State> frontier;
    const auto s0 = dfs::State::initial(dyn.graph());
    seen.insert(s0);
    frontier.push_back(s0);
    while (!frontier.empty()) {
        const auto s = frontier.front();
        frontier.pop_front();
        for (const auto& e : dyn.enabled_events(s)) {
            auto next = s;
            dyn.apply(next, e);
            if (seen.insert(next).second) frontier.push_back(next);
        }
    }
    return seen.size();
}

}  // namespace

int main() {
    bench::Stopwatch watch;
    bench::print_header("E3 / Fig. 4",
                        "Petri-net translation of the Fig. 1b DFS model");

    const dfs::Graph g = make_fig1b();
    const dfs::Translation tr = dfs::to_petri(g);

    util::Table size({"metric", "value"});
    size.add_row({"DFS nodes", std::to_string(g.node_count())});
    size.add_row({"DFS edges", std::to_string(g.edge_count())});
    size.add_row({"PN places", std::to_string(tr.net.place_count())});
    size.add_row({"PN transitions",
                  std::to_string(tr.net.transition_count())});
    size.add_row({"PN arcs (incl. read arcs)",
                  std::to_string(tr.net.arc_count())});
    std::printf("%s\n", size.to_ascii().c_str());

    // The Fig. 4 observation: after M_in+ and C_cond+, the control
    // register's True/False markings are simultaneously enabled.
    const dfs::Dynamics dyn(g);
    dfs::State s = dfs::State::initial(g);
    dyn.apply(s, {*g.find("in"), dfs::EventKind::Mark});
    dyn.apply(s, {*g.find("cond"), dfs::EventKind::LogicEvaluate});
    const auto marking = tr.encode(g, s);
    const bool mt = tr.net.is_enabled(marking,
                                      *tr.net.find_transition("Mt_ctrl+"));
    const bool mf = tr.net.is_enabled(marking,
                                      *tr.net.find_transition("Mf_ctrl+"));
    std::printf("Mt_ctrl+ and Mf_ctrl+ simultaneously enabled after "
                "M_in+, C_cond+: %s\n",
                (mt && mf) ? "yes (non-deterministic cond outcome)" : "NO");

    // State-space agreement between the direct semantics and the net.
    // The PN side runs on the compiled engine; its net->CompiledNet
    // build cost is reported separately from the exploration itself.
    bench::Stopwatch explore_watch;
    const std::size_t direct = dfs_states(dyn);
    const double t_direct = explore_watch.elapsed_s();
    bench::Stopwatch compile_watch;
    petri::ReachabilityExplorer explorer(tr.net);
    const double t_compile = compile_watch.elapsed_s();
    bench::Stopwatch pn_watch;
    const std::size_t via_pn = explorer.count_states();
    const double t_pn = pn_watch.elapsed_s();

    util::Table states({"semantics", "reachable states", "time [ms]"});
    states.add_row({"DFS token game", std::to_string(direct),
                    util::Table::num(t_direct * 1e3, 2)});
    states.add_row({"Petri net (compiled engine)", std::to_string(via_pn),
                    util::Table::num(t_pn * 1e3, 2)});
    std::printf("%s\n", states.to_ascii().c_str());
    std::printf("CompiledNet build: %.3f ms (%zu places, %zu transitions"
                ")\n",
                t_compile * 1e3, explorer.compiled().place_count(),
                explorer.compiled().transition_count());
    std::printf("State spaces agree: %s\n",
                direct == via_pn ? "yes" : "NO");
    bench::print_footer(watch);
    return (mt && mf && direct == via_pn) ? 0 : 1;
}
