// Monte-Carlo campaign smoke: flow::Campaign over the real 3-stage
// reconfigurable OPE pipeline — voltage x fault-scale survival curves
// from >= 1000 seeded timed-sim runs, with the reproducibility contract
// checked in-harness: the campaign runs twice with the same master seed
// and the aggregate checksums must match bit-for-bit (that checksum
// folds every run's raw time/energy/fault bits, so one diverging run
// anywhere fails the comparison).
//
// --json PATH writes the machine-readable summary bench/compare.py
// prints advisorily (--mc; survival and hazard counts are workload
// facts, not regressions — only the reproducibility bit is a gate, and
// it gates HERE via the exit code).
//
// Exit is non-zero if the campaign misbehaves: reproducibility broken,
// fault-free nominal-voltage runs failing, or the checksum blind to the
// master seed (a different seed producing the same aggregate).

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "flow/campaign.hpp"
#include "flow/metrics.hpp"
#include "util/table.hpp"

namespace {

using namespace rap;

flow::Campaign make_campaign(std::uint64_t seed) {
    asim::FaultSpec faults;
    faults.delay_sigma = 0.15;
    faults.drop_rate = 0.01;
    faults.duplicate_rate = 0.005;
    faults.stuck_rate = 2e-4;
    faults.glitch.rate_hz = 2e5;  // a few droops per microsecond-run
    faults.glitch.droop_v = 0.5;
    faults.glitch.min_duration_s = 2e-7;
    faults.glitch.max_duration_s = 1e-6;

    const unsigned hw = std::thread::hardware_concurrency();
    return flow::Campaign::ope(3)
        .depths({3})
        .voltages({1.2, 0.9, 0.7, 0.55, 0.45})
        .fault_scales({0.0, 1.0, 4.0})
        .base_faults(faults)
        .runs(70)  // 5 voltages x 3 scales x 70 = 1050 runs
        .items(24)
        .seed(seed)
        .workers(hw ? hw : 1);
}

}  // namespace

int main(int argc, char** argv) {
    const char* json_path = nullptr;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
    }
    bench::Stopwatch watch;
    bench::print_header(
        "fault-injection Monte-Carlo campaign",
        "flow::Campaign over the 3-stage OPE: survival curves + "
        "seed reproducibility");

    bool ok = true;
    constexpr std::uint64_t kSeed = 20240612;

    bench::Stopwatch campaign_watch;
    const flow::CampaignSummary summary = make_campaign(kSeed).run();
    const double campaign_seconds = campaign_watch.elapsed_s();

    util::Table table({"point", "survival", "frozen", "deadlock",
                       "hazards", "faults", "glitches", "E/item [pJ]"});
    for (const flow::CampaignAggregate& row : summary.rows) {
        table.add_row(
            {row.point.label, util::Table::num(row.survival, 2),
             std::to_string(row.frozen), std::to_string(row.deadlocks),
             std::to_string(row.hazards),
             std::to_string(row.faults_injected),
             std::to_string(row.glitch_windows),
             row.completed > 0
                 ? util::Table::num(row.mean_energy_per_item_j * 1e12, 2)
                 : "-"});
    }
    std::printf("%s\n", table.to_ascii().c_str());

    std::printf("runs:               %zu (%.0f runs/s)\n",
                summary.runs_total,
                campaign_seconds > 0.0
                    ? summary.runs_total / campaign_seconds
                    : 0.0);
    std::printf("overall survival:   %.1f%%\n", 100.0 * summary.survival());
    std::printf("first failure at:   %s\n",
                summary.first_failure_voltage
                    ? (std::to_string(*summary.first_failure_voltage) + " V")
                          .c_str()
                    : "none");
    std::printf("aggregate checksum: %016" PRIx64 "\n", summary.checksum);
    std::printf("campaign wall time: %.2f s\n\n", campaign_seconds);

    // Gate 1: fault-free nominal-voltage runs must all complete.
    for (const flow::CampaignAggregate& row : summary.rows) {
        if (row.point.fault_scale == 0.0 && row.point.voltage >= 1.2 &&
            row.survival < 1.0) {
            std::printf("FAULT-FREE NOMINAL FAILURES at %s\n",
                        row.point.label.c_str());
            ok = false;
        }
    }

    // Gate 2: the reproducibility contract — the same master seed must
    // reproduce the aggregate row bit-for-bit on a second pass.
    bench::Stopwatch repro_watch;
    const flow::CampaignSummary rerun = make_campaign(kSeed).run();
    const bool reproducible = rerun.checksum == summary.checksum;
    std::printf("reproducibility:    %s (rerun %016" PRIx64 " in %.2f s)\n",
                reproducible ? "OK" : "BROKEN", rerun.checksum,
                repro_watch.elapsed_s());
    if (!reproducible) {
        std::printf("SEEDED CAMPAIGN IS NOT REPRODUCIBLE\n");
        ok = false;
    }

    // A different seed must realise a different campaign (sanity check
    // that the checksum actually covers the stochastic surface).
    const flow::CampaignSummary other = make_campaign(kSeed + 1).run();
    if (other.checksum == summary.checksum) {
        std::printf("CHECKSUM BLIND: different seed, same checksum\n");
        ok = false;
    }

    if (json_path != nullptr) {
        if (FILE* f = std::fopen(json_path, "w")) {
            std::fprintf(
                f,
                "{\n"
                "  \"runs_total\": %zu,\n"
                "  \"grid_points\": %zu,\n"
                "  \"survival\": %.4f,\n"
                "  \"hazards_total\": %zu,\n"
                "  \"first_failure_voltage\": %s,\n"
                "  \"checksum\": \"%016" PRIx64 "\",\n"
                "  \"reproducible\": %s,\n"
                "  \"campaign_seconds\": %.3f,\n"
                "  \"runs_per_second\": %.1f,\n"
                "  \"ok\": %s\n"
                "}\n",
                summary.runs_total, summary.rows.size(),
                summary.survival(), summary.hazards_total,
                summary.first_failure_voltage
                    ? std::to_string(*summary.first_failure_voltage).c_str()
                    : "null",
                summary.checksum, reproducible ? "true" : "false",
                campaign_seconds,
                campaign_seconds > 0.0
                    ? summary.runs_total / campaign_seconds
                    : 0.0,
                ok ? "true" : "false");
            std::fclose(f);
        } else {
            std::printf("cannot write %s\n", json_path);
            ok = false;
        }
    }

    bench::print_footer(watch);
    return ok ? 0 : 1;
}
