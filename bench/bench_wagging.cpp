// E11 (extension) — wagging ablation. Section II-D lists wagging among
// the "advanced performance optimisation techniques" the tool-chain's
// analysis supports, and Section II-B sketches the inverting-arc algebra
// this library implements to express it. We quantify what the transform
// buys: throughput of a pipeline dominated by a slow function, plain vs
// 2-way wagged, across a range of function/plumbing delay ratios.

#include <cstdio>

#include "asim/timed_sim.hpp"
#include "bench_util.hpp"
#include "dfs/dynamics.hpp"
#include "pipeline/wagging.hpp"
#include "util/table.hpp"

namespace {

using namespace rap;

double run_rate(const dfs::Graph& g, dfs::NodeId observe,
                const std::vector<dfs::NodeId>& slow_nodes,
                double slow_delay) {
    const dfs::Dynamics dyn(g);
    asim::TimingMap timing = asim::uniform_timing(g, 1.0);
    for (const auto n : slow_nodes) timing[n.value].delay_s = slow_delay;
    asim::TimedSimulator sim(dyn, timing, tech::VoltageModel{},
                             tech::VoltageSchedule::constant(1.2), 0.0);
    dfs::State s = dfs::State::initial(g);
    asim::RunLimits limits;
    limits.target_marks = 120;
    limits.observe = observe;
    const auto stats = sim.run(s, limits);
    return static_cast<double>(stats.marks_at(observe)) / stats.time_s;
}

}  // namespace

int main() {
    bench::Stopwatch watch;
    bench::print_header(
        "E11 / wagging ablation (paper extension)",
        "2-way wagging of a slow function via inverting control arcs");

    util::Table table({"f delay / plumbing delay", "plain tok/s",
                       "wagged tok/s", "speedup"});
    for (const double slow : {1.0, 2.0, 5.0, 10.0, 40.0, 100.0}) {
        dfs::Graph plain("plain");
        const auto pin = plain.add_register("in");
        const auto pf = plain.add_logic("f");
        const auto preg = plain.add_register("reg");
        plain.connect(pin, pf);
        plain.connect(pf, preg);
        const double base = run_rate(plain, preg, {pf}, slow);

        dfs::Graph wagged("wagged");
        const auto win = wagged.add_register("in");
        const auto stage = pipeline::add_wagging_stage(wagged, "w", win);
        const double improved =
            run_rate(wagged, stage.out, {stage.f_a, stage.f_b}, slow);

        table.add_row({util::Table::num(slow, 0),
                       util::Table::num(base, 4),
                       util::Table::num(improved, 4),
                       util::Table::num(improved / base, 2)});
    }
    std::printf("%s\n", table.to_ascii().c_str());
    std::printf(
        "Expected shape: no benefit (even a small control tax) while the\n"
        "plumbing dominates; the speedup approaches 2x as the duplicated\n"
        "function becomes the bottleneck (Brej's wagging bound for two\n"
        "ways).\n");
    bench::print_footer(watch);
    return 0;
}
