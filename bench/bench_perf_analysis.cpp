// E4 — Fig. 5: performance analysis of a reconfigurable pipeline in the
// Workcraft plugin: "reports the throughput of the slowest cycles and
// highlights the bottleneck nodes in each cycle". We run the cycle
// analyser on the reconfigurable OPE model, list the slowest cycles, and
// cross-check with the measured (timed-simulation) throughput, including
// the token/buffering experiment the tool supports (adding registers to
// balance a slow loop).

#include <cstdio>

#include "bench_util.hpp"
#include "ope/dfs_models.hpp"
#include "perf/cycles.hpp"
#include "perf/throughput.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace rap;

std::string cycle_names(const dfs::Graph& g,
                        const std::vector<dfs::NodeId>& nodes,
                        std::size_t max_names) {
    std::vector<std::string> names;
    for (std::size_t i = 0; i < nodes.size() && i < max_names; ++i) {
        names.push_back(g.node_name(nodes[i]));
    }
    std::string text = util::join(names, " -> ");
    if (nodes.size() > max_names) text += " -> ...";
    return text;
}

}  // namespace

int main() {
    bench::Stopwatch watch;
    bench::print_header("E4 / Fig. 5",
                        "cycle throughput analysis of the OPE pipeline");

    const auto p = ope::build_reconfigurable_ope_dfs(6, 6);
    perf::CycleAnalysisOptions options;
    options.max_cycles = 50000;
    const auto report = perf::analyse_cycles(p.graph, options);

    std::printf("model: %s — %zu nodes, %zu edges; %zu simple cycles%s\n\n",
                p.graph.name().c_str(), p.graph.node_count(),
                p.graph.edge_count(), report.cycles.size(),
                report.truncated ? " (capped)" : "");

    util::Table slowest({"#", "regs", "tokens", "bound", "cycle"});
    for (std::size_t i = 0; i < report.cycles.size() && i < 8; ++i) {
        const auto& c = report.cycles[i];
        slowest.add_row({std::to_string(i + 1), std::to_string(c.registers),
                         std::to_string(c.tokens),
                         util::Table::num(c.throughput_bound, 4),
                         cycle_names(p.graph, c.nodes, 6)});
    }
    std::printf("slowest cycles (the tool's report, slowest first):\n%s\n",
                slowest.to_ascii().c_str());

    std::printf("bottleneck nodes (highlighted in the GUI): %s\n\n",
                cycle_names(p.graph, report.bottleneck_nodes(), 10).c_str());

    // Balancing experiment — the tool's "add registers to buffer the
    // flow of tokens" knob. The analytic bound is in tokens per register
    // cycle (an upper bound ignoring the two-phase handshake); the
    // measured rate is wall-clock under unit event delays. Note the
    // 4-register loop *beats* the minimal 3-register one: the extra
    // buffer lets the return-to-zero phase pipeline — exactly the kind
    // of insight the Fig. 5 analysis surfaces.
    util::Table balance(
        {"control-loop registers", "tokens", "analytic bound [tok/cycle]",
         "measured [tok/s, unit delays]"});
    for (const int regs : {3, 4, 6, 9}) {
        dfs::Graph ring("ring");
        std::vector<dfs::NodeId> nodes;
        for (int i = 0; i < regs; ++i) {
            nodes.push_back(ring.add_control(
                "c" + std::to_string(i), i == 0, dfs::TokenValue::True));
        }
        for (int i = 0; i < regs; ++i) {
            ring.connect(nodes[i], nodes[(i + 1) % regs]);
        }
        const auto rep = perf::analyse_cycles(ring);
        perf::ThroughputOptions topt;
        topt.tokens = 120;
        const auto measured =
            perf::measure_throughput(ring, nodes[0], topt);
        balance.add_row({std::to_string(regs), "1",
                         util::Table::num(rep.throughput_bound(), 4),
                         util::Table::num(measured.tokens_per_s, 4)});
    }
    std::printf("loop balancing (longer loop, same one token):\n%s\n",
                balance.to_ascii().c_str());

    // Whole-pipeline measured throughput per depth.
    util::Table depths({"depth", "measured items/s (unit delays)"});
    for (const int depth : {3, 4, 5, 6}) {
        auto model = ope::build_reconfigurable_ope_dfs(6, depth);
        perf::ThroughputOptions topt;
        topt.tokens = 150;
        const auto r = perf::measure_throughput(model.graph, model.out, topt);
        depths.add_row({std::to_string(depth),
                        util::Table::num(r.tokens_per_s, 4)});
    }
    std::printf("measured pipeline throughput vs configured depth:\n%s\n",
                depths.to_ascii().c_str());
    bench::print_footer(watch);
    return 0;
}
