// flow::Design artifact caching: what one design session saves compared
// to per-call artifact rebuilding. Reported, not yet gated in
// bench/baseline.json.
//
// Three comparisons on the 3-stage reconfigurable OPE model:
//   1. fresh CompiledModel build (translation + CompiledNet) vs a cached
//      compiled_model() access,
//   2. first Verifier construction vs sequential constructions sharing
//      the artifact through the process cache (the verify_pipeline.cpp
//      double-construction),
//   3. a reconfigure-verify sweep through one session vs rebuilding the
//      pipeline per depth.
//
//   $ ./bench/bench_flow

#include <cstdio>

#include "bench_util.hpp"
#include "rap/rap.hpp"

namespace {

using rap::bench::Stopwatch;

constexpr int kStages = 3;
constexpr int kFreshBuilds = 25;
constexpr int kCachedAccesses = 25;

double time_fresh_builds(const rap::dfs::Graph& graph, int n) {
    const Stopwatch watch;
    for (int i = 0; i < n; ++i) {
        const rap::verify::CompiledModel model(graph);
        if (model.compiled().transition_count() == 0) std::abort();
    }
    return watch.elapsed_s() / n;
}

}  // namespace

int main() {
    using namespace rap;
    const Stopwatch total;
    bench::print_header(
        "flow::Design artifact reuse",
        "cached-vs-fresh artifact cost on the 3-stage reconfigurable OPE");

    flow::Design design(ope::build_reconfigurable_ope_dfs(kStages, kStages));

    // 1. Fresh artifact builds vs cached accesses.
    const double fresh_s = time_fresh_builds(design.graph(), kFreshBuilds);
    design.compiled_model();  // prime the session cache
    const Stopwatch cached_watch;
    for (int i = 0; i < kCachedAccesses; ++i) {
        if (design.compiled_model()->compiled().transition_count() == 0) {
            std::abort();
        }
    }
    const double cached_s = cached_watch.elapsed_s() / kCachedAccesses;
    std::printf("PN artifact (translation + CompiledNet):\n");
    std::printf("  fresh build   %10.3f us\n", fresh_s * 1e6);
    std::printf("  cached access %10.3f us  (%.0fx)\n", cached_s * 1e6,
                cached_s > 0 ? fresh_s / cached_s : 0.0);
    std::printf("  session PN builds so far: %zu\n\n", design.pn_builds());

    // 2. Verifier construction: first pays the compile (unless the
    //    process cache already holds the content), later ones share it.
    {
        const auto p = ope::build_reconfigurable_ope_dfs(kStages + 1, 3);
        const Stopwatch first_watch;
        const verify::Verifier first(p.graph);
        const double first_s = first_watch.elapsed_s();
        const Stopwatch rest_watch;
        for (int i = 0; i < kCachedAccesses; ++i) {
            const verify::Verifier again(p.graph);
            if (again.model() != first.model()) std::abort();
        }
        const double rest_s = rest_watch.elapsed_s() / kCachedAccesses;
        std::printf("Verifier(graph) construction:\n");
        std::printf("  first (compiles)  %10.3f us\n", first_s * 1e6);
        std::printf("  sequential shared %10.3f us  (%.0fx)\n", rest_s * 1e6,
                    rest_s > 0 ? first_s / rest_s : 0.0);
        std::printf("  process artifact builds: %zu\n\n",
                    verify::artifact_builds());
    }

    // 3. Reconfigure-verify sweep: one session vs one pipeline per depth.
    {
        const Stopwatch session_watch;
        std::size_t session_states = 0;
        for (int depth = kStages; depth >= 2; --depth) {
            design.set_depth(depth);
            const auto report = design.verify();
            session_states +=
                report.findings.front().states_explored;
        }
        const double session_s = session_watch.elapsed_s();

        const Stopwatch rebuild_watch;
        std::size_t rebuild_states = 0;
        for (int depth = kStages; depth >= 2; --depth) {
            auto p = ope::build_reconfigurable_ope_dfs(kStages, kStages);
            pipeline::set_depth(p, depth);
            // One fresh compile per depth — exactly what the pre-facade
            // flow paid — injected so the process cache cannot help.
            const verify::Verifier verifier(
                p.graph,
                std::make_shared<const verify::CompiledModel>(p.graph));
            const auto report = verifier.verify_all();
            rebuild_states += report.findings.front().states_explored;
        }
        const double rebuild_s = rebuild_watch.elapsed_s();
        if (session_states != rebuild_states) {
            std::printf("WARNING: state counts differ (%zu vs %zu)\n",
                        session_states, rebuild_states);
        }
        std::printf("depth sweep (%d..2), verify_all per depth:\n", kStages);
        std::printf("  one session       %10.1f ms\n", session_s * 1e3);
        std::printf("  rebuild per depth %10.1f ms\n", rebuild_s * 1e3);
        std::printf("  (exploration dominates; the session saves the "
                    "per-depth translation+compile+mapping)\n");
    }

    bench::print_footer(total);
    return 0;
}
