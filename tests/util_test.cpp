#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <unordered_set>

#include "util/bitvec.hpp"
#include "util/linear_fit.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace rap::util {
namespace {

// ---------------------------------------------------------------- Rng --

TEST(Rng, DeterministicForSameSeed) {
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) same += (a() == b());
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange) {
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(rng.below(13), 13u);
    }
}

TEST(Rng, BelowCoversAllResidues) {
    Rng rng(3);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) seen.insert(rng.below(7));
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RangeInclusiveBounds) {
    Rng rng(11);
    bool hit_lo = false, hit_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        hit_lo |= (v == -3);
        hit_hi |= (v == 3);
    }
    EXPECT_TRUE(hit_lo);
    EXPECT_TRUE(hit_hi);
}

TEST(Rng, UniformWithinUnitInterval) {
    Rng rng(5);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceEdgeCases) {
    Rng rng(9);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceApproximatesProbability) {
    Rng rng(13);
    int hits = 0;
    for (int i = 0; i < 10000; ++i) hits += rng.chance(0.25);
    EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

TEST(Rng, SplitProducesIndependentStream) {
    Rng parent(21);
    Rng child = parent.split();
    int same = 0;
    for (int i = 0; i < 100; ++i) same += (parent() == child());
    EXPECT_LT(same, 3);
}

// ------------------------------------------------------------- BitVec --

TEST(BitVec, StartsAllZero) {
    BitVec v(130);
    EXPECT_EQ(v.size(), 130u);
    EXPECT_TRUE(v.none());
    EXPECT_EQ(v.count(), 0u);
}

TEST(BitVec, SetGetAcrossWordBoundary) {
    BitVec v(130);
    v.set(0, true);
    v.set(63, true);
    v.set(64, true);
    v.set(129, true);
    EXPECT_TRUE(v.get(0));
    EXPECT_TRUE(v.get(63));
    EXPECT_TRUE(v.get(64));
    EXPECT_TRUE(v.get(129));
    EXPECT_FALSE(v.get(1));
    EXPECT_EQ(v.count(), 4u);
    EXPECT_EQ(v.ones(), (std::vector<std::size_t>{0, 63, 64, 129}));
}

TEST(BitVec, FlipTogglesBit) {
    BitVec v(10);
    v.flip(3);
    EXPECT_TRUE(v.get(3));
    v.flip(3);
    EXPECT_FALSE(v.get(3));
}

TEST(BitVec, ClearResetsKeepingSize) {
    BitVec v(70);
    v.set(69, true);
    v.clear();
    EXPECT_EQ(v.size(), 70u);
    EXPECT_TRUE(v.none());
}

TEST(BitVec, EqualityAndOrdering) {
    BitVec a(8), b(8);
    EXPECT_EQ(a, b);
    a.set(2, true);
    EXPECT_NE(a, b);
    EXPECT_TRUE(b < a || a < b);
}

TEST(BitVec, HashDistinguishesNearbyStates) {
    std::unordered_set<std::size_t> hashes;
    for (std::size_t i = 0; i < 64; ++i) {
        BitVec v(64);
        v.set(i, true);
        hashes.insert(v.hash());
    }
    EXPECT_EQ(hashes.size(), 64u);
}

TEST(BitVec, ToStringRendersIndexZeroFirst) {
    BitVec v(4);
    v.set(0, true);
    v.set(2, true);
    EXPECT_EQ(v.to_string(), "1010");
}

// ------------------------------------------------------------ strings --

TEST(Strings, FormatBasic) {
    EXPECT_EQ(format("%d-%s", 7, "x"), "7-x");
    EXPECT_EQ(format("%.2f", 1.5), "1.50");
}

TEST(Strings, JoinAndSplitRoundTrip) {
    const std::vector<std::string> items = {"a", "b", "c"};
    EXPECT_EQ(join(items, ","), "a,b,c");
    EXPECT_EQ(split("a,b,c", ','), items);
    EXPECT_EQ(split(",x,", ','),
              (std::vector<std::string>{"", "x", ""}));
}

TEST(Strings, TrimRemovesWhitespaceOnly) {
    EXPECT_EQ(trim("  a b \t\n"), "a b");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
}

TEST(Strings, StartsWith) {
    EXPECT_TRUE(starts_with("hello", "he"));
    EXPECT_FALSE(starts_with("he", "hello"));
}

TEST(Strings, IdentifierSanitises) {
    EXPECT_EQ(identifier("a-b.c"), "a_b_c");
    EXPECT_EQ(identifier("2x"), "n2x");
    EXPECT_EQ(identifier(""), "n");
}

// -------------------------------------------------------------- Table --

TEST(Table, AsciiAlignsColumns) {
    Table t({"name", "v"});
    t.add_row({"long-name", "1"});
    t.add_row({"x", "22"});
    const std::string ascii = t.to_ascii();
    EXPECT_NE(ascii.find("name"), std::string::npos);
    EXPECT_NE(ascii.find("long-name  1"), std::string::npos);
}

TEST(Table, CsvQuotesSpecialCells) {
    Table t({"a", "b"});
    t.add_row({"x,y", "he said \"hi\""});
    const std::string csv = t.to_csv();
    EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
    EXPECT_NE(csv.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, NumFormatsPrecision) {
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
}

// ---------------------------------------------------------- LinearFit --

TEST(LinearFit, ExactLine) {
    const auto fit = fit_line({1, 2, 3, 4}, {3, 5, 7, 9});
    EXPECT_NEAR(fit.slope, 2.0, 1e-9);
    EXPECT_NEAR(fit.intercept, 1.0, 1e-9);
    EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
}

TEST(LinearFit, NoisyLineStillHighR2) {
    std::vector<double> xs, ys;
    Rng rng(2);
    for (int i = 0; i < 50; ++i) {
        xs.push_back(i);
        ys.push_back(4.0 * i + 10 + (rng.uniform() - 0.5));
    }
    const auto fit = fit_line(xs, ys);
    EXPECT_NEAR(fit.slope, 4.0, 0.05);
    EXPECT_GT(fit.r_squared, 0.999);
}

TEST(LinearFit, DegenerateInputsGiveZeroFit) {
    EXPECT_EQ(fit_line({1}, {2}).points, 0u);
    EXPECT_EQ(fit_line({1, 1}, {2, 3}).points, 0u);
    EXPECT_EQ(fit_line({1, 2}, {2}).points, 0u);
}

TEST(LinearFit, ConstantYHasUnitR2) {
    const auto fit = fit_line({1, 2, 3}, {5, 5, 5});
    EXPECT_NEAR(fit.slope, 0.0, 1e-12);
    EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

}  // namespace
}  // namespace rap::util
