// Tests for the flow::Sweep batch driver and the flow::Metrics
// exposition: 3-axis grid expansion, dedup-before-compile proven by the
// artifact-build counters, differential equality against serial Design
// runs, mid-sweep cancellation, per-configuration timeouts, and the
// Prometheus text format.

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cmath>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <future>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "dfs_helpers.hpp"
#include "rap/flow/metrics.hpp"
#include "rap/flow/sweep.hpp"
#include "rap/verify/cache.hpp"

namespace rap::flow {
namespace {

/// OPE-style factory over the generic pipeline builder: small enough for
/// tier-1 runs (the real 3-stage reconfigurable OPE is ~191k states),
/// with the chip's validity rule expressed by throwing.
pipeline::Pipeline ope_style_factory(int stages, int depth) {
    if (depth < 1 || depth > stages) {
        throw std::invalid_argument(
            "depth " + std::to_string(depth) + " out of range for " +
            std::to_string(stages) + " stages");
    }
    return pipeline::build_pipeline(
        "sweep_s" + std::to_string(stages) + "_d" + std::to_string(depth),
        dfs::testing::ope_style_stages(stages, depth));
}

std::vector<tech::VoltageSchedule> two_schedules() {
    tech::VoltageSchedule droop;
    droop.add_segment(1e-6, 1.2);
    droop.add_segment(1e-6, 0.9);
    droop.add_segment(1e-6, 1.2);
    return {tech::VoltageSchedule::constant(1.2), droop};
}

TEST(Sweep, GridExpandsInStableOrder) {
    Sweep sweep(&ope_style_factory);
    const auto grid = sweep.stages({2, 3})
                          .depths(1, 3)
                          .schedules(two_schedules())
                          .grid();
    ASSERT_EQ(grid.size(), 2u * 3u * 2u);
    // stages outermost, then depth, then schedule
    EXPECT_EQ(grid[0].label, "s2/d1/v0");
    EXPECT_EQ(grid[1].label, "s2/d1/v1");
    EXPECT_EQ(grid[2].label, "s2/d2/v0");
    EXPECT_EQ(grid[6].label, "s3/d1/v0");
    for (std::size_t i = 0; i < grid.size(); ++i) {
        EXPECT_EQ(grid[i].index, i);
    }
}

TEST(Sweep, RejectsEmptyAxesAndNullFactory) {
    EXPECT_THROW(Sweep(Sweep::Factory{}), std::invalid_argument);
    Sweep sweep(&ope_style_factory);
    EXPECT_THROW(sweep.stages({}), std::invalid_argument);
    EXPECT_THROW(sweep.depths({}), std::invalid_argument);
    EXPECT_THROW(sweep.depths(3, 2), std::invalid_argument);
    EXPECT_THROW(sweep.schedules({}), std::invalid_argument);
}

// The acceptance sweep: 3 axes, dedup-before-compile proven by the
// global artifact-build counter, results identical to running each
// configuration's Design serially.
TEST(Sweep, ThreeAxisSweepDedupsBeforeCompileAndMatchesSerialRuns) {
    const auto schedules = two_schedules();
    DesignOptions base;

    // Valid (stages, depth) pairs with stages in {1,2,3}, depth 1..6:
    // s1:d1, s2:d1-2, s3:d1-3 -> 6 distinct model contents. The
    // schedule axis doubles the grid without changing model content.
    const std::size_t kDistinct = 6;
    const std::size_t kGrid = 3 * 6 * 2;

    const std::size_t builds_before = verify::artifact_builds();
    const verify::CacheStats cache_before = verify::cache_stats();

    std::atomic<std::size_t> streamed{0};
    Sweep sweep(&ope_style_factory, base);
    Sweep::Handle handle =
        sweep.stages({1, 2, 3})
            .depths(1, 6)
            .schedules(schedules)
            .workers(4)
            .on_result([&](const SweepResult&) { ++streamed; })
            .launch();
    const std::vector<SweepResult> rows = handle.wait();

    ASSERT_EQ(rows.size(), kGrid);
    EXPECT_EQ(streamed.load(), kGrid);
    EXPECT_EQ(handle.done(), kGrid);
    EXPECT_EQ(handle.total(), kGrid);
    EXPECT_FALSE(handle.cancelled());

    // Dedup before compile: 36 grid points, 6 distinct model contents,
    // exactly 6 artifact builds — every other lookup was a cache hit.
    EXPECT_EQ(handle.distinct_models(), kDistinct);
    EXPECT_EQ(verify::artifact_builds() - builds_before, kDistinct);
    const verify::CacheStats cache_after = verify::cache_stats();
    EXPECT_EQ(cache_after.misses - cache_before.misses, kDistinct);
    EXPECT_GT(cache_after.hits, cache_before.hits);

    std::size_t ok = 0;
    std::size_t invalid = 0;
    for (const SweepResult& row : rows) {
        EXPECT_EQ(row.point.index,
                  static_cast<std::size_t>(&row - rows.data()));
        if (row.status == SweepStatus::kInvalid) {
            ++invalid;
            EXPECT_GT(row.point.depth, row.point.stages);
            EXPECT_NE(row.error.find("out of range"), std::string::npos);
            continue;
        }
        ASSERT_EQ(row.status, SweepStatus::kOk) << row.point.label;
        ++ok;
        EXPECT_TRUE(row.clean) << row.point.label;
        EXPECT_GT(row.states, 0u);
        EXPECT_GE(row.verify_seconds, 0.0);
        ASSERT_TRUE(row.memory.has_value());
        EXPECT_GT(row.memory->records, 0u);
        EXPECT_GT(row.schedule_finish_s, 0.0);

        // Sweeps verify with partial-order reduction on by default; the
        // pass over these nets carries persistence, so reduction must
        // at least have been attempted (active), whatever it saved.
        ASSERT_TRUE(row.por.has_value()) << row.point.label;
        EXPECT_TRUE(row.por->active) << row.point.label;
        EXPECT_GT(row.por->expansions, 0u) << row.point.label;
        EXPECT_GE(row.por->enabled_transitions,
                  row.por->expanded_transitions)
            << row.point.label;

        // Differential: a serial Design session over the same factory
        // output, same options shape (sequential engine, same reduction
        // default as the sweep), must agree verdict-for-verdict and
        // state-for-state.
        DesignOptions serial_options = base;
        serial_options.verify.threads = 1;
        serial_options.verify.por = true;
        const auto design = make_design(
            ope_style_factory(row.point.stages, row.point.depth),
            serial_options);
        const verify::Report serial = design->verify();
        ASSERT_EQ(row.report.findings.size(), serial.findings.size());
        for (std::size_t i = 0; i < serial.findings.size(); ++i) {
            EXPECT_EQ(row.report.findings[i].violated,
                      serial.findings[i].violated);
            EXPECT_EQ(row.report.findings[i].states_explored,
                      serial.findings[i].states_explored);
            EXPECT_EQ(row.report.findings[i].trace,
                      serial.findings[i].trace);
        }
    }
    EXPECT_EQ(ok, kDistinct * 2);
    EXPECT_EQ(invalid, kGrid - kDistinct * 2);

    // The metrics snapshot agrees with the counters and reports the
    // sweep's cache traffic (hit rate strictly positive).
    const Metrics m = handle.metrics();
    EXPECT_EQ(m.value("rap_sweep_configs_total"),
              static_cast<double>(kGrid));
    EXPECT_EQ(m.value("rap_sweep_configs_done"),
              static_cast<double>(kGrid));
    EXPECT_EQ(m.value("rap_sweep_distinct_models"),
              static_cast<double>(kDistinct));
    EXPECT_EQ(m.value("rap_sweep_in_flight"), 0.0);
    EXPECT_EQ(m.value("rap_sweep_queue_depth"), 0.0);
    EXPECT_GT(m.value("rap_sweep_states_total"), 0.0);
    EXPECT_GT(m.value("rap_cache_hit_rate"), 0.0);
    EXPECT_LE(m.value("rap_cache_hit_rate"), 1.0);
}

// Cancellation honoured mid-sweep: after cancel() returns no further
// callbacks fire, in-flight work stops through the engines' stop hook,
// and wait() drains the pool with the tail rows marked kCancelled.
TEST(Sweep, CancelStopsCallbacksAndDrainsPool) {
    std::promise<void> first_row;
    auto first_row_seen = first_row.get_future();
    std::promise<void> gate;
    auto gate_open = gate.get_future().share();
    std::atomic<int> factory_calls{0};

    // The factory blocks from the second configuration on until the
    // test opens the gate *after* cancelling — deterministic mid-sweep
    // cancellation without timing assumptions.
    auto factory = [&](int stages, int depth) {
        if (factory_calls.fetch_add(1) > 0) gate_open.wait();
        return ope_style_factory(stages, depth);
    };

    std::atomic<std::size_t> callbacks{0};
    bool first_signalled = false;
    Sweep sweep{Sweep::Factory(factory)};
    Sweep::Handle handle =
        sweep.stages({2, 3})
            .depths(1, 2)  // 4 configurations, all valid
            .workers(1)
            .on_result([&](const SweepResult&) {
                ++callbacks;
                if (!first_signalled) {
                    first_signalled = true;
                    first_row.set_value();
                }
            })
            .launch();

    first_row_seen.wait();
    handle.cancel();
    EXPECT_TRUE(handle.cancelled());
    const std::size_t callbacks_at_cancel = callbacks.load();
    gate.set_value();

    const std::vector<SweepResult> rows = handle.wait();
    // The pool drained: every slot reports, but no callback fired after
    // cancel() returned.
    ASSERT_EQ(rows.size(), 4u);
    EXPECT_EQ(handle.done(), 4u);
    EXPECT_EQ(callbacks.load(), callbacks_at_cancel);

    EXPECT_EQ(rows[0].status, SweepStatus::kOk);
    std::size_t cancelled = 0;
    for (const SweepResult& row : rows) {
        if (row.status == SweepStatus::kCancelled) ++cancelled;
    }
    EXPECT_GE(cancelled, 3u);
    EXPECT_EQ(handle.metrics().value("rap_sweep_cancelled"), 1.0);
}

// A per-configuration wall-clock budget interrupts the exploration
// through the same stop hook: the row reports kTimedOut and its
// findings are truncated (inconclusive), while the sweep carries on.
TEST(Sweep, PerConfigTimeoutMarksRowTimedOut) {
    // The real 3-stage reconfigurable OPE (~191k states) cannot finish
    // in a millisecond; the sequential engine polls the stop hook every
    // 2048 expansions.
    DesignOptions base;
    base.verify.threads = 1;
    const std::vector<SweepResult> rows = Sweep::ope(base)
                                              .stages({3})
                                              .depths({3})
                                              .per_config_timeout(0.001)
                                              .run();
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].status, SweepStatus::kTimedOut);
    ASSERT_FALSE(rows[0].report.findings.empty());
    bool any_truncated = false;
    for (const auto& finding : rows[0].report.findings) {
        any_truncated |= finding.truncated;
    }
    EXPECT_TRUE(any_truncated);
    EXPECT_LT(rows[0].states, 191000u);
}

// A pass that dies mid-exploration must not vanish from the memory
// accounting: petri::ExplorationAborted carries the interned footprint at
// the moment of death through the Verifier into the row and the sweep's
// peak-resident aggregate. An unwritable checkpoint directory kills the
// pass deterministically at the first save boundary (head 64).
TEST(Sweep, AbortedPassStillSalvagesPartialMemory) {
    DesignOptions base;
    base.verify.checkpoint_every = 64;
    Sweep sweep = Sweep::ope(base);
    Sweep::Handle handle = sweep.stages({3})
                               .depths({3})
                               .workers(1)
                               .checkpoint_dir("/nonexistent-rap-ckpt-dir")
                               .launch();
    const std::vector<SweepResult> rows = handle.wait();
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].status, SweepStatus::kInvalid);
    EXPECT_NE(rows[0].error.find("cannot be opened for writing"),
              std::string::npos)
        << rows[0].error;
    // The partial pass interned at least the 64 expanded states before
    // the save threw — that footprint survives into the row...
    ASSERT_TRUE(rows[0].memory.has_value());
    EXPECT_GT(rows[0].memory->records, 64u);
    EXPECT_GT(rows[0].memory->resident_bytes, 0u);
    // ...and into the sweep-wide aggregate (this used to report 0).
    EXPECT_GT(handle.metrics().value("rap_sweep_peak_resident_bytes"),
              0.0);
}

// checkpoint_dir happy path: each grid point periodically serializes to
// `<dir>/<flattened-label>.ckpt`, and the finished handle exposes the
// peak configuration's store geometry gauges.
TEST(Sweep, CheckpointDirWritesPerPointFiles) {
    std::string dir = testing::TempDir();
    while (!dir.empty() && dir.back() == '/') dir.pop_back();
    const std::string path = dir + "/s3_d3_v0.ckpt";
    std::remove(path.c_str());

    DesignOptions base;
    base.verify.checkpoint_every = 4096;
    Sweep sweep = Sweep::ope(base);
    Sweep::Handle handle =
        sweep.stages({3}).depths({3}).workers(1).checkpoint_dir(dir).launch();
    const std::vector<SweepResult> rows = handle.wait();
    ASSERT_EQ(rows.size(), 1u);
    ASSERT_EQ(rows[0].status, SweepStatus::kOk) << rows[0].error;

    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "no checkpoint written at " << path;

    const Metrics m = handle.metrics();
    EXPECT_GT(m.value("rap_store_slots"), 0.0);
    EXPECT_GT(m.value("rap_store_table_bytes"), 0.0);
    EXPECT_GT(m.value("rap_store_arena_bytes"), 0.0);
    EXPECT_GT(m.value("rap_store_load_factor"), 0.0);
    EXPECT_LE(m.value("rap_store_load_factor"), 1.0);
}

// The engines refuse reuse + checkpoint, so the grid driver rejects the
// shared_store + checkpoint_dir combination before any worker starts.
TEST(Sweep, CheckpointDirRefusesSharedStoreChains) {
    Sweep sweep = Sweep::ope();
    sweep.stages({2}).depths(1, 2).shared_store(true).checkpoint_dir("/tmp");
    EXPECT_THROW(sweep.launch(), std::invalid_argument);
}

TEST(Metrics, PrometheusExpositionFormat) {
    Metrics m;
    m.set("rap_demo_total", "A counter", Metrics::Type::kCounter, 42.0);
    m.set("rap_demo_gauge", "A labelled gauge", Metrics::Type::kGauge,
          0.5, {{"shard", "3"}, {"mode", "a\"b\\c\nd"}});
    m.add("rap_demo_total", "A counter", Metrics::Type::kCounter, 1.0);

    const std::string text = metrics::to_prometheus(m);
    EXPECT_NE(text.find("# HELP rap_demo_total A counter\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE rap_demo_total counter\n"),
              std::string::npos);
    EXPECT_NE(text.find("\nrap_demo_total 43\n"), std::string::npos);
    EXPECT_NE(text.find("# TYPE rap_demo_gauge gauge\n"),
              std::string::npos);
    // Label values escape backslash, double-quote and newline.
    EXPECT_NE(
        text.find(
            "rap_demo_gauge{shard=\"3\",mode=\"a\\\"b\\\\c\\nd\"} 0.5\n"),
        std::string::npos);
}

// The exposition of a finished sweep parses line by line: every line is
// a HELP/TYPE comment or `name{labels} value` with a finite value, and
// the families the dashboard needs are all present.
TEST(Metrics, SweepExpositionParses) {
    Sweep sweep(&ope_style_factory);
    Sweep::Handle handle =
        sweep.stages({2}).depths(1, 2).workers(2).launch();
    handle.wait();
    const std::string text = metrics::to_prometheus(handle.metrics());

    std::set<std::string> names;
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
        ASSERT_FALSE(line.empty());
        if (line.rfind("# HELP ", 0) == 0 ||
            line.rfind("# TYPE ", 0) == 0) {
            continue;
        }
        // name{...} value  |  name value
        const std::size_t space = line.rfind(' ');
        ASSERT_NE(space, std::string::npos) << line;
        const std::string value_str = line.substr(space + 1);
        std::size_t parsed = 0;
        const double value = std::stod(value_str, &parsed);
        EXPECT_EQ(parsed, value_str.size()) << line;
        EXPECT_TRUE(std::isfinite(value)) << line;
        std::string name = line.substr(0, space);
        const std::size_t brace = name.find('{');
        if (brace != std::string::npos) name.resize(brace);
        ASSERT_FALSE(name.empty());
        for (const char c : name) {
            EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)) ||
                        c == '_')
                << line;
        }
        names.insert(name);
    }
    for (const char* required :
         {"rap_sweep_configs_total", "rap_sweep_configs_done",
          "rap_sweep_queue_depth", "rap_sweep_in_flight",
          "rap_sweep_distinct_models", "rap_sweep_states_total",
          "rap_sweep_states_per_second", "rap_sweep_peak_resident_bytes",
          "rap_por_active_configs", "rap_por_enabled_transitions_total",
          "rap_por_expanded_transitions_total",
          "rap_por_ignored_transitions_total", "rap_por_reduction_ratio",
          "rap_cache_hits_total", "rap_cache_misses_total",
          "rap_cache_hit_rate", "rap_cache_entries"}) {
        EXPECT_TRUE(names.count(required)) << required;
    }
}

}  // namespace
}  // namespace rap::flow
