// Link-coverage sanity check for librap: every module contributes at
// least one out-of-line symbol referenced here, so a module silently
// dropped from the build graph fails this test's link, not a downstream
// consumer. Includes go through the public `rap/...` facade to keep the
// installed header layout honest too.

#include <gtest/gtest.h>

#include "rap/asim/timed_sim.hpp"
#include "rap/chip/lfsr.hpp"
#include "rap/dfs/model.hpp"
#include "rap/flow/design.hpp"
#include "rap/netlist/netlist.hpp"
#include "rap/ope/encoder.hpp"
#include "rap/perf/cycles.hpp"
#include "rap/petri/net.hpp"
#include "rap/pipeline/builder.hpp"
#include "rap/tech/voltage.hpp"
#include "rap/util/bitvec.hpp"
#include "rap/verify/verifier.hpp"

namespace {

using namespace rap;

TEST(BuildSanity, EveryModuleLinks) {
    // util
    util::BitVec bits(8);
    bits.set(3, true);
    EXPECT_EQ(bits.count(), 1u);

    // tech
    const tech::VoltageModel voltage;
    EXPECT_DOUBLE_EQ(voltage.speed_factor(voltage.params().v_nominal), 1.0);

    // petri
    petri::Net net("sanity");
    const auto place = net.add_place("p0", true);
    EXPECT_TRUE(net.initial_marking().get(place.value));

    // dfs
    dfs::Graph graph("sanity");
    const auto src = graph.add_register("src", true);
    const auto dst = graph.add_register("dst");
    graph.connect(src, dst);
    EXPECT_EQ(graph.node_count(), 2u);

    // pipeline
    const auto pipe = pipeline::build_pipeline(
        "sanity_pipe", {pipeline::StageOptions{}, pipeline::StageOptions{}});
    EXPECT_EQ(pipe.active_depth(), 2);

    // ope
    ope::ReferenceEncoder encoder(3);
    encoder.push(1);

    // asim
    const auto timing = asim::uniform_timing(graph, 1e-9);
    EXPECT_EQ(timing.size(), graph.node_count());

    // netlist
    const netlist::Netlist mapped(graph, netlist::Library{});
    EXPECT_EQ(mapped.instances().size(), graph.node_count());

    // perf
    const auto cycles = perf::analyse_cycles(pipe.graph);
    EXPECT_FALSE(cycles.truncated);
    EXPECT_GT(cycles.throughput_bound(), 0.0);

    // verify
    const verify::Verifier verifier(graph);
    const auto deadlock = verifier.check_deadlock();
    EXPECT_FALSE(deadlock.truncated);
    EXPECT_GT(deadlock.states_explored, 0u);

    // flow
    const flow::Design design(graph);
    EXPECT_EQ(design.graph().node_count(), graph.node_count());
    EXPECT_EQ(design.verify(verify::Spec{}.deadlock()).findings.size(), 1u);
    EXPECT_EQ(design.pn_builds(), 1u);

    // chip
    chip::Lfsr lfsr(1);
    EXPECT_NE(lfsr.next(), 0u);
}

}  // namespace
