// Randomised property suite: generates structurally valid DFS models and
// checks the load-bearing invariants of the semantics stack on each —
// the DFS token game and its Petri-net translation must be inseparable,
// and the translation must stay 1-safe with one-hot variable encodings.

#include <gtest/gtest.h>

#include <deque>
#include <unordered_set>

#include "dfs/dynamics.hpp"
#include "dfs/model.hpp"
#include "dfs/serialize.hpp"
#include "dfs/translate.hpp"
#include "petri/reachability.hpp"
#include "util/rng.hpp"

namespace rap::dfs {
namespace {

/// Generates a random valid model: a data chain of random register kinds
/// (with logic between them) fed by a source register, plus 1-2 control
/// rings whose heads guard the dynamic nodes, occasionally through
/// inverting arcs.
Graph random_model(std::uint64_t seed) {
    util::Rng rng(seed);
    Graph g("fuzz_" + std::to_string(seed));

    // Control rings.
    const int rings = 1 + static_cast<int>(rng.below(2));
    std::vector<NodeId> heads;
    for (int r = 0; r < rings; ++r) {
        const auto polarity =
            rng.chance(0.5) ? TokenValue::True : TokenValue::False;
        const std::string prefix = "ring" + std::to_string(r);
        const auto c1 = g.add_control(prefix + "_c1", true, polarity);
        const auto c2 = g.add_control(prefix + "_c2", false, polarity);
        const auto c3 = g.add_control(prefix + "_c3", false, polarity);
        g.connect(c1, c2);
        g.connect(c2, c3);
        g.connect(c3, c1);
        heads.push_back(c1);
    }

    // Data chain.
    NodeId prev = g.add_register("src", rng.chance(0.3));
    const int stages = 2 + static_cast<int>(rng.below(3));
    for (int i = 0; i < stages; ++i) {
        const std::string suffix = std::to_string(i);
        if (rng.chance(0.6)) {
            const auto f = g.add_logic("f" + suffix);
            g.connect(prev, f);
            prev = f;
        }
        NodeId reg;
        switch (rng.below(4)) {
            case 0:
            case 1:
                reg = g.add_register("r" + suffix);
                break;
            case 2: {
                reg = g.add_push("p" + suffix);
                const auto head = heads[rng.below(heads.size())];
                if (rng.chance(0.25)) {
                    g.connect_inverted(head, reg);
                } else {
                    g.connect(head, reg);
                }
                break;
            }
            default: {
                reg = g.add_pop("q" + suffix);
                const auto head = heads[rng.below(heads.size())];
                if (rng.chance(0.25)) {
                    g.connect_inverted(head, reg);
                } else {
                    g.connect(head, reg);
                }
                break;
            }
        }
        g.connect(prev, reg);
        prev = reg;
    }
    return g;
}

class RandomModel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomModel, StructurallyValid) {
    const Graph g = random_model(GetParam());
    EXPECT_TRUE(g.validate().empty());
}

TEST_P(RandomModel, SerialisationRoundTrips) {
    const Graph g = random_model(GetParam());
    const Graph loaded = from_text(to_text(g));
    EXPECT_EQ(to_text(loaded), to_text(g));
}

TEST_P(RandomModel, LockstepWithTranslation) {
    const Graph g = random_model(GetParam());
    const Dynamics dyn(g);
    const Translation tr = to_petri(g);
    State s = State::initial(g);
    petri::Marking pm = tr.net.initial_marking();
    ASSERT_EQ(pm, tr.encode(g, s));
    util::Rng rng(GetParam() * 977 + 13);
    for (int i = 0; i < 800; ++i) {
        const auto enabled = dyn.enabled_events(s);
        // Deadlock equivalence: the PN must agree exactly.
        if (enabled.empty()) {
            EXPECT_TRUE(tr.net.is_deadlocked(pm));
            break;
        }
        // Enabled-set equivalence, both directions.
        for (const auto& e : enabled) {
            const bool token = g.is_dynamic(e.node) && s.token_true(e.node);
            EXPECT_TRUE(
                tr.net.is_enabled(pm, tr.transition_for(g, e, token)));
        }
        const auto e = enabled[rng.below(enabled.size())];
        const bool token = g.is_dynamic(e.node) && s.token_true(e.node);
        const auto t = tr.transition_for(g, e, token);
        dyn.apply(s, e);
        tr.net.fire(pm, t);
        ASSERT_EQ(pm, tr.encode(g, s)) << "diverged at step " << i;
    }
}

TEST_P(RandomModel, StateSpacesAgree) {
    const Graph g = random_model(GetParam());
    const Dynamics dyn(g);

    std::unordered_set<State, StateHash> seen;
    std::deque<State> frontier;
    const State s0 = State::initial(g);
    seen.insert(s0);
    frontier.push_back(s0);
    bool truncated = false;
    while (!frontier.empty()) {
        if (seen.size() > 60000) {
            truncated = true;
            break;
        }
        const State s = frontier.front();
        frontier.pop_front();
        for (const auto& e : dyn.enabled_events(s)) {
            State next = s;
            dyn.apply(next, e);
            if (seen.insert(next).second) frontier.push_back(next);
        }
    }
    if (truncated) GTEST_SKIP() << "state space above the fuzz cap";

    const Translation tr = to_petri(g);
    petri::ReachabilityExplorer explorer(tr.net);
    EXPECT_EQ(explorer.count_states(), seen.size());
}

TEST_P(RandomModel, TranslationStaysOneHotSafe) {
    const Graph g = random_model(GetParam());
    const Translation tr = to_petri(g);

    petri::ReachabilityOptions options;
    options.max_states = 60000;
    options.stop_at_first_match = true;
    petri::ReachabilityExplorer explorer(tr.net);

    // A marking violating any variable's one-hot encoding would mean the
    // translation lost 1-safety.
    auto violates = [&g, &tr](const petri::Net&, const petri::Marking& m) {
        for (const NodeId n : g.nodes()) {
            const auto& slots = tr.places[n.value];
            if (g.is_logic(n)) {
                if (m.get(slots.c0.value) == m.get(slots.c1.value)) {
                    return true;
                }
                continue;
            }
            if (m.get(slots.m0.value) == m.get(slots.m1.value)) return true;
            if (g.is_dynamic(n)) {
                if (m.get(slots.mt0.value) == m.get(slots.mt1.value)) {
                    return true;
                }
                if (m.get(slots.mf0.value) == m.get(slots.mf1.value)) {
                    return true;
                }
                // Mt and Mf are mutually exclusive.
                if (m.get(slots.mt1.value) && m.get(slots.mf1.value)) {
                    return true;
                }
            }
        }
        return false;
    };
    const auto result = explorer.find(
        petri::Predicate::custom("one-hot violation", violates));
    EXPECT_FALSE(result.found())
        << tr.net.describe_marking(*result.witness);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomModel,
                         ::testing::Range<std::uint64_t>(0, 24));

}  // namespace
}  // namespace rap::dfs
