#include <gtest/gtest.h>

#include <array>

#include "dfs/dynamics.hpp"
#include "dfs/simulator.hpp"
#include "ope/dfs_models.hpp"
#include "ope/encoder.hpp"
#include "util/rng.hpp"
#include "verify/verifier.hpp"

namespace rap::ope {
namespace {

// ----------------------------------------------------- paper examples --

TEST(RankWindow, FootnoteExample) {
    // "ranks of items in the list (2, 0, 1, 7) are (3, 1, 2, 4)"
    const std::array<std::int64_t, 4> list = {2, 0, 1, 7};
    EXPECT_EQ(rank_window(list), (std::vector<int>{3, 1, 2, 4}));
}

TEST(RankWindow, PaperTableWindows) {
    // Section III-A: stream (3,1,4,1,5,9,2,6), N=6.
    const std::array<std::int64_t, 6> w1 = {3, 1, 4, 1, 5, 9};
    const std::array<std::int64_t, 6> w2 = {1, 4, 1, 5, 9, 2};
    const std::array<std::int64_t, 6> w3 = {4, 1, 5, 9, 2, 6};
    EXPECT_EQ(rank_window(w1), (std::vector<int>{3, 1, 4, 2, 5, 6}));
    EXPECT_EQ(rank_window(w2), (std::vector<int>{1, 4, 2, 5, 6, 3}));
    EXPECT_EQ(rank_window(w3), (std::vector<int>{3, 1, 4, 6, 2, 5}));
}

TEST(RankWindow, EdgeCases) {
    EXPECT_EQ(rank_window(std::array<std::int64_t, 1>{42}),
              (std::vector<int>{1}));
    EXPECT_EQ(rank_window(std::array<std::int64_t, 3>{5, 5, 5}),
              (std::vector<int>{1, 2, 3}));  // ties by appearance
    EXPECT_EQ(rank_window(std::array<std::int64_t, 3>{3, 2, 1}),
              (std::vector<int>{3, 2, 1}));
    EXPECT_EQ(rank_window(std::array<std::int64_t, 0>{}),
              (std::vector<int>{}));
}

TEST(RankWindow, NegativeValues) {
    EXPECT_EQ(rank_window(std::array<std::int64_t, 4>{-1, -5, 0, -5}),
              (std::vector<int>{3, 1, 4, 2}));
}

// --------------------------------------------------- ReferenceEncoder --

TEST(ReferenceEncoder, WarmupThenSlides) {
    ReferenceEncoder enc(6);
    const std::array<std::int64_t, 8> stream = {3, 1, 4, 1, 5, 9, 2, 6};
    std::vector<std::vector<int>> outputs;
    for (const auto x : stream) {
        if (auto ranks = enc.push(x)) outputs.push_back(*ranks);
    }
    ASSERT_EQ(outputs.size(), 3u);
    EXPECT_EQ(outputs[0], (std::vector<int>{3, 1, 4, 2, 5, 6}));
    EXPECT_EQ(outputs[1], (std::vector<int>{1, 4, 2, 5, 6, 3}));
    EXPECT_EQ(outputs[2], (std::vector<int>{3, 1, 4, 6, 2, 5}));
}

TEST(ReferenceEncoder, RejectsBadWindow) {
    EXPECT_THROW(ReferenceEncoder(0), std::invalid_argument);
    EXPECT_THROW(ReferenceEncoder(-3), std::invalid_argument);
}

TEST(ReferenceEncoder, ReconfigureClearsState) {
    ReferenceEncoder enc(2);
    enc.push(1);
    enc.reconfigure(3);
    EXPECT_EQ(enc.window_size(), 3);
    EXPECT_FALSE(enc.push(5).has_value());  // warmup restarted
    EXPECT_FALSE(enc.push(6).has_value());
    EXPECT_TRUE(enc.push(7).has_value());
}

// ---------------------------------------------------- PipelineEncoder --

TEST(PipelineEncoder, MatchesPaperTable) {
    PipelineEncoder enc(6);
    const std::array<std::int64_t, 8> stream = {3, 1, 4, 1, 5, 9, 2, 6};
    std::vector<std::vector<int>> outputs;
    for (const auto x : stream) {
        if (auto ranks = enc.push(x)) outputs.push_back(*ranks);
    }
    ASSERT_EQ(outputs.size(), 3u);
    EXPECT_EQ(outputs[0], (std::vector<int>{3, 1, 4, 2, 5, 6}));
    EXPECT_EQ(outputs[1], (std::vector<int>{1, 4, 2, 5, 6, 3}));
    EXPECT_EQ(outputs[2], (std::vector<int>{3, 1, 4, 6, 2, 5}));
}

class EncoderEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(EncoderEquivalence, IncrementalMatchesReference) {
    const int window = GetParam();
    ReferenceEncoder ref(window);
    PipelineEncoder pipe(window);
    util::Rng rng(1000 + static_cast<std::uint64_t>(window));
    for (int i = 0; i < 500; ++i) {
        // Small value range provokes plenty of ties.
        const std::int64_t x = rng.range(0, 15);
        const auto a = ref.push(x);
        const auto b = pipe.push(x);
        ASSERT_EQ(a.has_value(), b.has_value()) << "item " << i;
        if (a) {
            EXPECT_EQ(*a, *b) << "item " << i;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Windows, EncoderEquivalence,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 12, 18));

TEST(PipelineEncoder, CompareOpsScaleWithWindow) {
    // Per item in steady state: (N-1) rank adjustments + (N-1) compares.
    PipelineEncoder enc(8);
    for (int i = 0; i < 100; ++i) enc.push(i % 7);
    const auto ops_small = enc.compare_ops();
    PipelineEncoder big(16);
    for (int i = 0; i < 100; ++i) big.push(i % 7);
    EXPECT_GT(big.compare_ops(), ops_small);
}

TEST(PipelineEncoder, ReconfigureMatchesFreshEncoder) {
    PipelineEncoder enc(4);
    for (int i = 0; i < 10; ++i) enc.push(i);
    enc.reconfigure(6);
    PipelineEncoder fresh(6);
    util::Rng rng(77);
    for (int i = 0; i < 200; ++i) {
        const std::int64_t x = rng.range(0, 9);
        EXPECT_EQ(enc.push(x), fresh.push(x));
    }
}

// ----------------------------------------------------------- checksum --

TEST(Checksum, DeterministicAndOrderSensitive) {
    const std::vector<int> a = {1, 2, 3};
    const std::vector<int> b = {3, 2, 1};
    EXPECT_EQ(fold_checksum(0, a), fold_checksum(0, a));
    EXPECT_NE(fold_checksum(0, a), fold_checksum(0, b));
    EXPECT_NE(fold_checksum(0, a), 0u);
}

TEST(Checksum, FoldsAcrossLists) {
    const std::vector<int> a = {1, 2};
    const std::vector<int> b = {5};
    const auto acc = fold_checksum(fold_checksum(0, a), b);
    const std::vector<int> combined = {1, 2, 5};
    EXPECT_EQ(acc, fold_checksum(0, combined));
}

// ----------------------------------------------------------- DFS models --

TEST(OpeDfs, StaticModelValidates) {
    const auto p = build_static_ope_dfs(4);
    EXPECT_TRUE(p.graph.validate().empty());
    EXPECT_EQ(p.stages.size(), 4u);
    EXPECT_EQ(p.active_depth(), 4);
    EXPECT_THROW(build_static_ope_dfs(0), std::invalid_argument);
}

TEST(OpeDfs, ReconfigurableModelShape) {
    const auto p = build_reconfigurable_ope_dfs(5, 4);
    EXPECT_TRUE(p.graph.validate().empty());
    EXPECT_FALSE(p.stages[0].reconfigurable);        // s1 static
    EXPECT_EQ(p.stages[1].rings.size(), 1u);          // s2 optimised
    EXPECT_EQ(p.stages[2].rings.size(), 2u);          // s3 full
    EXPECT_EQ(p.active_depth(), 4);
}

TEST(OpeDfs, DepthBoundsEnforced) {
    EXPECT_THROW(build_reconfigurable_ope_dfs(2, 2), std::invalid_argument);
    EXPECT_THROW(build_reconfigurable_ope_dfs(5, 2), std::invalid_argument);
    EXPECT_THROW(build_reconfigurable_ope_dfs(5, 6), std::invalid_argument);
    EXPECT_NO_THROW(build_reconfigurable_ope_dfs(5, 5));
}

TEST(OpeDfs, ReconfigurableStreamsAtReducedDepth) {
    auto p = build_reconfigurable_ope_dfs(5, 3);
    const dfs::Dynamics dyn(p.graph);
    dfs::Simulator sim(dyn, 3);
    dfs::State s = dfs::State::initial(p.graph);
    const auto stats = sim.run(s, 200000);
    EXPECT_FALSE(stats.deadlocked);
    EXPECT_GT(stats.marks_at(p.out), 10u);
    // Bypassed stages 4,5 produce only empty tokens.
    EXPECT_EQ(stats.marks_at(p.stages[3].global_out),
              stats.false_marks_at(p.stages[3].global_out));
    EXPECT_EQ(stats.marks_at(p.stages[4].global_out),
              stats.false_marks_at(p.stages[4].global_out));
}

TEST(OpeDfs, FullDepthVerifiedDeadlockFree) {
    const auto p = build_reconfigurable_ope_dfs(3, 3);
    verify::VerifyOptions options;
    options.max_states = 3'000'000;
    const verify::Verifier verifier(p.graph, options);
    const auto finding = verifier.check_deadlock();
    EXPECT_FALSE(finding.violated) << finding.to_string();
    EXPECT_FALSE(finding.truncated);
}

}  // namespace
}  // namespace rap::ope
