#pragma once

// Shared DFS model builders for the test suite: the paper's motivating
// example (Fig. 1b) and the canonical 3-register control loop of the
// reconfigurable stage methodology (Fig. 6c).

#include <string>
#include <vector>

#include "dfs/model.hpp"
#include "pipeline/builder.hpp"

namespace rap::dfs::testing {

struct Fig1b {
    Graph graph{"fig1b"};
    NodeId in, cond, ctrl, filt, comp, out;
};

/// Conditional application of `comp` (Fig. 1b): `cond` evaluates the data
/// item in `in`, its True/False outcome lands in the control register
/// `ctrl`, which guards the push `filt` (destroying bypassed tokens) and
/// the pop `out` (producing the matching empty output).
inline Fig1b make_fig1b() {
    Fig1b m;
    Graph& g = m.graph;
    m.in = g.add_register("in");
    m.cond = g.add_logic("cond");
    m.ctrl = g.add_control("ctrl", false, TokenValue::True);
    m.filt = g.add_push("filt");
    m.comp = g.add_register("comp");
    m.out = g.add_pop("out");
    g.connect(m.in, m.cond);
    g.connect(m.cond, m.ctrl);
    g.connect(m.in, m.filt);
    g.connect(m.ctrl, m.filt);
    g.connect(m.filt, m.comp);
    g.connect(m.comp, m.out);
    g.connect(m.ctrl, m.out);
    return m;
}

struct ControlRing {
    NodeId c1, c2, c3;
};

/// Adds a 3-register control loop (the minimum for token oscillation,
/// Section III) carrying one token of the given polarity, with `c1`
/// initially marked.
inline ControlRing add_control_ring(Graph& g, const std::string& prefix,
                                    TokenValue token) {
    ControlRing ring;
    ring.c1 = g.add_control(prefix + "_c1", true, token);
    ring.c2 = g.add_control(prefix + "_c2", false, token);
    ring.c3 = g.add_control(prefix + "_c3", false, token);
    g.connect(ring.c1, ring.c2);
    g.connect(ring.c2, ring.c3);
    g.connect(ring.c3, ring.c1);
    return ring;
}

/// Per-stage options of the Fig. 7 reconfigurable OPE shape: stage 1
/// static, stage 2 reconfigurable but reusing its global ring for the
/// local interface (the s2 optimisation), stages 3..n fully ringed;
/// the first `depth` stages start active.
inline std::vector<pipeline::StageOptions> ope_style_stages(int n,
                                                            int depth) {
    std::vector<pipeline::StageOptions> options;
    for (int i = 0; i < n; ++i) {
        pipeline::StageOptions opt;
        opt.reconfigurable = i > 0;
        opt.reuse_global_ring_for_local = (i == 1);
        opt.active = i < depth;
        options.push_back(opt);
    }
    return options;
}

/// A linear static pipeline: in -> f1 -> r1 -> f2 -> r2 -> ... -> fN -> rN.
inline std::vector<NodeId> add_linear_pipeline(Graph& g,
                                               const std::string& prefix,
                                               int stages) {
    std::vector<NodeId> regs;
    NodeId prev = g.add_register(prefix + "_in");
    regs.push_back(prev);
    for (int i = 1; i <= stages; ++i) {
        const NodeId f = g.add_logic(prefix + "_f" + std::to_string(i));
        const NodeId r = g.add_register(prefix + "_r" + std::to_string(i));
        g.connect(prev, f);
        g.connect(f, r);
        regs.push_back(r);
        prev = r;
    }
    return regs;
}

}  // namespace rap::dfs::testing
