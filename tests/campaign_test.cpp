// Tests for the flow::Campaign Monte-Carlo harness: grid expansion,
// bit-reproducibility across worker counts (the seeding contract),
// survival-curve aggregation, streaming per-run rows, hazard
// confirmation plumbing, and the rap_mc_* metrics exposition.

#include <gtest/gtest.h>

#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "dfs_helpers.hpp"
#include "rap/flow/campaign.hpp"
#include "rap/flow/metrics.hpp"

namespace rap::flow {
namespace {

/// Small OPE-style pipeline factory (the real reconfigurable OPE is too
/// heavy for a tier-1 Monte-Carlo grid), with the chip's validity rule
/// expressed by throwing.
Campaign::Factory small_factory(int stages) {
    return [stages](int depth) {
        if (depth < 1 || depth > stages) {
            throw std::invalid_argument(
                "depth " + std::to_string(depth) + " out of range for " +
                std::to_string(stages) + " stages");
        }
        return pipeline::build_pipeline(
            "mc_s" + std::to_string(stages) + "_d" + std::to_string(depth),
            dfs::testing::ope_style_stages(stages, depth));
    };
}

TEST(Campaign, GridExpandsInStableOrder) {
    Campaign campaign(small_factory(2));
    const auto grid = campaign.depths({1, 2})
                          .fault_scales({0.0, 1.0})
                          .voltages({1.2, 0.6})
                          .grid();
    ASSERT_EQ(grid.size(), 2u * 2u * 2u);
    // depth outermost, then fault scale, then voltage
    EXPECT_EQ(grid[0].label, "d1/f0.00/v1.20");
    EXPECT_EQ(grid[1].label, "d1/f0.00/v0.60");
    EXPECT_EQ(grid[2].label, "d1/f1.00/v1.20");
    EXPECT_EQ(grid[4].label, "d2/f0.00/v1.20");
    for (std::size_t i = 0; i < grid.size(); ++i) {
        EXPECT_EQ(grid[i].index, i);
    }
}

TEST(Campaign, RejectsBadConfiguration) {
    EXPECT_THROW(Campaign(Campaign::Factory{}), std::invalid_argument);
    Campaign campaign(small_factory(2));
    EXPECT_THROW(campaign.voltages({}), std::invalid_argument);
    EXPECT_THROW(campaign.fault_scales({}), std::invalid_argument);
    EXPECT_THROW(campaign.depths({}), std::invalid_argument);
    EXPECT_THROW(campaign.runs(0), std::invalid_argument);
    EXPECT_THROW(campaign.items(0), std::invalid_argument);
    EXPECT_THROW(campaign.time_budget_factor(0.0), std::invalid_argument);
}

// The seeding contract: the full result set — every per-point checksum
// and the campaign checksum — is bit-identical at any worker count.
TEST(Campaign, BitReproducibleAcrossWorkerCounts) {
    asim::FaultSpec faults;
    faults.delay_sigma = 0.2;
    faults.drop_rate = 0.02;
    faults.glitch.rate_hz = 1e6;  // a few droops per microsecond-scale run
    faults.glitch.droop_v = 0.4;
    faults.glitch.min_duration_s = 1e-8;
    faults.glitch.max_duration_s = 5e-8;

    auto summary_at = [&](std::size_t workers) {
        return Campaign(small_factory(2))
            .depths({1, 2})
            .fault_scales({0.0, 1.0})
            .voltages({1.2, 0.7})
            .base_faults(faults)
            .runs(6)
            .items(6)
            .seed(99)
            .workers(workers)
            .run();
    };

    const CampaignSummary serial = summary_at(1);
    const CampaignSummary pooled = summary_at(4);
    ASSERT_EQ(serial.rows.size(), pooled.rows.size());
    EXPECT_EQ(serial.checksum, pooled.checksum);
    for (std::size_t i = 0; i < serial.rows.size(); ++i) {
        EXPECT_EQ(serial.rows[i].checksum, pooled.rows[i].checksum)
            << serial.rows[i].point.label;
        EXPECT_EQ(serial.rows[i].completed, pooled.rows[i].completed);
        EXPECT_EQ(serial.rows[i].mean_time_s, pooled.rows[i].mean_time_s);
    }

    // A different master seed realises a different campaign.
    const CampaignSummary other = summary_at(1);
    EXPECT_EQ(other.checksum, serial.checksum) << "same seed reruns match";
    const CampaignSummary reseeded = Campaign(small_factory(2))
                                         .depths({1, 2})
                                         .fault_scales({0.0, 1.0})
                                         .voltages({1.2, 0.7})
                                         .base_faults(faults)
                                         .runs(6)
                                         .items(6)
                                         .seed(100)
                                         .run();
    EXPECT_NE(reseeded.checksum, serial.checksum);
}

TEST(Campaign, CleanNominalCampaignSurvivesEverywhere) {
    const CampaignSummary summary = Campaign(small_factory(2))
                                        .depths({2})
                                        .runs(4)
                                        .items(8)
                                        .seed(7)
                                        .run();
    ASSERT_EQ(summary.rows.size(), 1u);
    EXPECT_EQ(summary.survival(), 1.0);
    EXPECT_FALSE(summary.first_failure_voltage.has_value());
    EXPECT_EQ(summary.hazards_total, 0u);
    EXPECT_GT(summary.rows[0].mean_energy_per_item_j, 0.0);
    EXPECT_GT(summary.rows[0].mean_time_s, 0.0);
}

TEST(Campaign, SubFreezeVoltageShowsUpInTheSurvivalCurve) {
    const CampaignSummary summary = Campaign(small_factory(2))
                                        .depths({2})
                                        .voltages({1.2, 0.3})  // < v_freeze
                                        .runs(3)
                                        .items(4)
                                        .seed(7)
                                        .run();
    ASSERT_EQ(summary.rows.size(), 2u);
    EXPECT_EQ(summary.rows[0].survival, 1.0);  // nominal
    EXPECT_EQ(summary.rows[1].survival, 0.0);  // frozen supply
    EXPECT_EQ(summary.rows[1].frozen, 3u);
    ASSERT_TRUE(summary.first_failure_voltage.has_value());
    EXPECT_NEAR(*summary.first_failure_voltage, 0.3, 1e-12);
}

// The knee-detection bugfix: a statistical blip at nominal voltage (a
// few flaky runs out of many) must not drag first_failure_voltage to
// the top of the axis. With the minimum-failure-fraction knob the knee
// lands on the decisively failing band and the blip is reported
// separately; the knob never perturbs the reproducibility checksums.
TEST(Campaign, KneeRequiresMinimumFailureFraction) {
    asim::FaultSpec faults;
    faults.stuck_rate = 0.002;  // rare stuck-ats: flaky, not broken

    auto run_with = [&](double knee) {
        return Campaign(small_factory(2))
            .depths({2})
            .voltages({1.2, 0.3})  // nominal + sub-freeze
            .base_faults(faults)
            .runs(8)
            .items(6)
            .seed(99)
            .knee_min_failure_fraction(knee)
            .run();
    };

    // Legacy behaviour (threshold 0): ANY failing run moves the knee.
    const CampaignSummary strict = run_with(0.0);
    ASSERT_EQ(strict.rows.size(), 2u);
    const CampaignAggregate& nominal = strict.rows[0];
    const CampaignAggregate& frozen = strict.rows[1];
    ASSERT_EQ(frozen.completed, 0u);  // sub-freeze: every run fails
    // The seed must realise a partial failure at nominal — the blip.
    ASSERT_GT(nominal.completed, 0u);
    ASSERT_LT(nominal.completed, nominal.runs);
    ASSERT_TRUE(strict.first_failure_voltage.has_value());
    EXPECT_NEAR(*strict.first_failure_voltage, 1.2, 1e-12);  // the bug
    EXPECT_EQ(strict.blip_points, 0u);

    // With the threshold above the blip's fraction the knee lands on
    // the decisively failing band and the blip is reported separately.
    const double blip_fraction =
        static_cast<double>(nominal.runs - nominal.completed) /
        static_cast<double>(nominal.runs);
    const CampaignSummary tolerant = run_with(blip_fraction + 0.01);
    ASSERT_TRUE(tolerant.first_failure_voltage.has_value());
    EXPECT_NEAR(*tolerant.first_failure_voltage, 0.3, 1e-12);
    EXPECT_EQ(tolerant.blip_points, 1u);
    ASSERT_TRUE(tolerant.highest_blip_voltage.has_value());
    EXPECT_NEAR(*tolerant.highest_blip_voltage, 1.2, 1e-12);
    EXPECT_EQ(tolerant.checksum, strict.checksum)
        << "knee classification must not perturb result checksums";

    EXPECT_THROW(Campaign(small_factory(2)).knee_min_failure_fraction(-0.1),
                 std::invalid_argument);
    EXPECT_THROW(Campaign(small_factory(2)).knee_min_failure_fraction(1.5),
                 std::invalid_argument);
}

TEST(Campaign, StuckFaultsDegradeSurvival) {
    asim::FaultSpec faults;
    faults.stuck_rate = 0.05;
    const CampaignSummary summary = Campaign(small_factory(2))
                                        .depths({2})
                                        .fault_scales({0.0, 20.0})
                                        .base_faults(faults)
                                        .runs(4)
                                        .items(8)
                                        .seed(13)
                                        .confirm_hazards(true)
                                        .run();
    ASSERT_EQ(summary.rows.size(), 2u);
    EXPECT_EQ(summary.rows[0].survival, 1.0);  // scale 0 disarms
    EXPECT_EQ(summary.rows[1].survival, 0.0);  // stuck_rate 1.0
    EXPECT_GT(summary.rows[1].faults_injected, 0u);
}

TEST(Campaign, InvalidDepthPointsReportAsDeterministicFailures) {
    const CampaignSummary a = Campaign(small_factory(2))
                                  .depths({3})  // factory throws
                                  .runs(3)
                                  .seed(5)
                                  .run();
    const CampaignSummary b = Campaign(small_factory(2))
                                  .depths({3})
                                  .runs(3)
                                  .seed(5)
                                  .run();
    ASSERT_EQ(a.rows.size(), 1u);
    EXPECT_EQ(a.rows[0].completed, 0u);
    EXPECT_EQ(a.runs_total, 3u);
    EXPECT_EQ(a.checksum, b.checksum);
}

TEST(Campaign, StreamsRowsInRunOrderPerPoint) {
    std::map<std::size_t, std::vector<std::size_t>> seen;
    std::size_t rows = 0;
    const CampaignSummary summary =
        Campaign(small_factory(2))
            .depths({1, 2})
            .runs(4)
            .items(4)
            .seed(3)
            .on_run([&](const CampaignRun& run) {
                seen[run.point].push_back(run.run);
                ++rows;
            })
            .run();
    EXPECT_EQ(rows, summary.runs_total);
    for (const auto& [point, runs] : seen) {
        ASSERT_EQ(runs.size(), 4u) << "point " << point;
        for (std::size_t r = 0; r < runs.size(); ++r) {
            EXPECT_EQ(runs[r], r) << "rows of one point arrive in order";
        }
    }
}

TEST(Campaign, MetricsExposeMonteCarloCounters) {
    auto handle = Campaign(small_factory(2))
                      .depths({1, 2})
                      .runs(2)
                      .items(4)
                      .seed(21)
                      .launch();
    const CampaignSummary summary = handle.wait();
    const Metrics snapshot = handle.metrics();
    const std::string text = metrics::to_prometheus(snapshot);
    EXPECT_NE(text.find("rap_mc_points_total 2"), std::string::npos);
    EXPECT_NE(text.find("rap_mc_points_done 2"), std::string::npos);
    EXPECT_NE(text.find("rap_mc_runs_done 4"), std::string::npos);
    EXPECT_NE(text.find("rap_mc_failures_total 0"), std::string::npos);
    EXPECT_NE(text.find("rap_mc_survival 1"), std::string::npos);
    EXPECT_EQ(summary.runs_total, 4u);
}

}  // namespace
}  // namespace rap::flow
