#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "tech/voltage.hpp"

namespace rap::tech {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(VoltageModel, SpeedNormalisedAtNominal) {
    const VoltageModel m;
    EXPECT_NEAR(m.speed_factor(1.2), 1.0, 1e-12);
}

TEST(VoltageModel, SpeedMonotoneInVoltage) {
    const VoltageModel m;
    double prev = 0;
    for (double v = 0.35; v <= 1.6; v += 0.05) {
        const double s = m.speed_factor(v);
        EXPECT_GT(s, prev) << "at " << v;
        prev = s;
    }
}

TEST(VoltageModel, FreezesAtAndBelowThreshold) {
    const VoltageModel m;
    EXPECT_EQ(m.speed_factor(0.34), 0.0);
    EXPECT_EQ(m.speed_factor(0.30), 0.0);
    EXPECT_EQ(m.speed_factor(0.0), 0.0);
    EXPECT_GT(m.speed_factor(0.35), 0.0);
}

TEST(VoltageModel, NearThresholdSlowdownIsSteep) {
    // The paper's Fig. 9a spans roughly two decades of computation time
    // between 0.5V and 1.6V.
    const VoltageModel m;
    const double slow = 1.0 / m.speed_factor(0.5);
    const double fast = 1.0 / m.speed_factor(1.6);
    EXPECT_GT(slow / fast, 10.0);
    EXPECT_LT(slow / fast, 200.0);
}

TEST(VoltageModel, EnergySquareLaw) {
    const VoltageModel m;
    EXPECT_NEAR(m.energy_factor(1.2), 1.0, 1e-12);
    EXPECT_NEAR(m.energy_factor(0.6), 0.25, 1e-12);
    EXPECT_NEAR(m.energy_factor(2.4), 4.0, 1e-12);
}

TEST(VoltageModel, LeakageScalesWithGatesAndVoltage) {
    const VoltageModel m;
    const double p1 = m.leakage_power(1.2, 1000);
    const double p2 = m.leakage_power(1.2, 2000);
    EXPECT_NEAR(p2 / p1, 2.0, 1e-9);
    EXPECT_LT(m.leakage_power(0.5, 1000), p1);
    EXPECT_EQ(m.leakage_power(0.0, 1000), 0.0);
    EXPECT_EQ(m.leakage_power(-1.0, 1000), 0.0);
}

TEST(VoltageModel, RejectsDegenerateParams) {
    ProcessParams p;
    p.v_nominal = 0.3;
    p.v_freeze = 0.34;
    EXPECT_THROW(VoltageModel{p}, std::invalid_argument);
}

// ------------------------------------------------------------ schedule --

TEST(VoltageSchedule, ConstantHoldsForever) {
    const auto s = VoltageSchedule::constant(0.9);
    EXPECT_EQ(s.voltage_at(0.0), 0.9);
    EXPECT_EQ(s.voltage_at(1e9), 0.9);
}

TEST(VoltageSchedule, EmptyScheduleIsFrozen) {
    const VoltageSchedule s;
    const VoltageModel m;
    EXPECT_EQ(s.voltage_at(5.0), 0.0);
    EXPECT_EQ(s.finish_time(m, 0.0, 1.0), kInf);
}

TEST(VoltageSchedule, SegmentsApplyInOrder) {
    VoltageSchedule s;
    s.add_segment(10.0, 1.2);
    s.add_segment(5.0, 0.5);
    s.add_segment(1.0, 1.0);  // holds forever
    EXPECT_EQ(s.voltage_at(0.0), 1.2);
    EXPECT_EQ(s.voltage_at(9.999), 1.2);
    EXPECT_EQ(s.voltage_at(10.0), 0.5);
    EXPECT_EQ(s.voltage_at(14.9), 0.5);
    EXPECT_EQ(s.voltage_at(15.0), 1.0);
    EXPECT_EQ(s.voltage_at(1e6), 1.0);
    EXPECT_THROW(s.add_segment(0.0, 1.2), std::invalid_argument);
}

TEST(VoltageSchedule, FinishTimeAtNominalIsIdentity) {
    const auto s = VoltageSchedule::constant(1.2);
    const VoltageModel m;
    EXPECT_NEAR(s.finish_time(m, 2.0, 3.0), 5.0, 1e-12);
    EXPECT_EQ(s.finish_time(m, 2.0, 0.0), 2.0);
}

TEST(VoltageSchedule, FinishTimeScalesWithSpeed) {
    const VoltageModel m;
    const auto s = VoltageSchedule::constant(0.5);
    const double rate = m.speed_factor(0.5);
    EXPECT_NEAR(s.finish_time(m, 0.0, 1.0), 1.0 / rate, 1e-9);
}

TEST(VoltageSchedule, WorkSpansSegmentBoundary) {
    // 1s of work, but the first segment only supplies half of it.
    VoltageSchedule s;
    s.add_segment(0.5, 1.2);   // rate 1 for 0.5s -> 0.5 work done
    s.add_segment(1.0, 1.2);   // remaining 0.5 work at rate 1
    const VoltageModel m;
    EXPECT_NEAR(s.finish_time(m, 0.0, 1.0), 1.0, 1e-9);
}

TEST(VoltageSchedule, FreezeThenRecoverCompletesAfterRecovery) {
    VoltageSchedule s;
    s.add_segment(1.0, 1.2);    // 1 work unit possible
    s.add_segment(10.0, 0.30);  // frozen decade
    s.add_segment(1.0, 1.2);    // recovery
    const VoltageModel m;
    // 2 units of work: 1 before the freeze, then wait out the freeze.
    EXPECT_NEAR(s.finish_time(m, 0.0, 2.0), 12.0, 1e-9);
}

TEST(VoltageSchedule, FrozenForeverNeverFinishes) {
    VoltageSchedule s;
    s.add_segment(1.0, 1.2);
    s.add_segment(1.0, 0.2);  // trailing freeze holds forever
    const VoltageModel m;
    EXPECT_EQ(s.finish_time(m, 0.0, 2.0), kInf);
}

TEST(VoltageSchedule, LeakageEnergyIntegratesSegments) {
    VoltageSchedule s;
    s.add_segment(2.0, 1.2);
    s.add_segment(2.0, 0.6);
    const VoltageModel m;
    const double gates = 1e6;
    const double expected = m.leakage_power(1.2, gates) * 2.0 +
                            m.leakage_power(0.6, gates) * 1.0;
    EXPECT_NEAR(s.leakage_energy(m, gates, 0.0, 3.0), expected, 1e-15);
    EXPECT_EQ(s.leakage_energy(m, gates, 3.0, 3.0), 0.0);
    EXPECT_EQ(s.leakage_energy(m, gates, 5.0, 3.0), 0.0);
}

}  // namespace
}  // namespace rap::tech
