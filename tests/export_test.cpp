// Tests for the interchange exporters: VCD waveforms from timed runs and
// the ASTG/.g Petri-net format.

#include <gtest/gtest.h>

#include <map>

#include "asim/timed_sim.hpp"
#include "asim/vcd.hpp"
#include "dfs/dynamics.hpp"
#include "dfs/translate.hpp"
#include "dfs_helpers.hpp"
#include "petri/astg.hpp"
#include "util/strings.hpp"

namespace rap {
namespace {

using dfs::testing::make_fig1b;

asim::TimedStats traced_run(const dfs::Graph& g, dfs::NodeId observe,
                            std::uint64_t marks,
                            std::size_t cap = 1'000'000) {
    const dfs::Dynamics dyn(g);
    asim::TimedSimulator sim(dyn, asim::uniform_timing(g, 1.0),
                             tech::VoltageModel{},
                             tech::VoltageSchedule::constant(1.2), 0.0);
    sim.enable_event_trace(cap);
    dfs::State s = dfs::State::initial(g);
    asim::RunLimits limits;
    limits.target_marks = marks;
    limits.observe = observe;
    return sim.run(s, limits);
}

TEST(EventTrace, RecordsEveryEventInOrder) {
    const auto m = make_fig1b();
    const auto stats = traced_run(m.graph, m.out, 20);
    ASSERT_EQ(stats.events_log.size(), stats.events);
    double prev = 0;
    for (const auto& te : stats.events_log) {
        EXPECT_GE(te.t_s, prev);
        prev = te.t_s;
    }
}

TEST(EventTrace, CapBoundsMemory) {
    const auto m = make_fig1b();
    const auto stats = traced_run(m.graph, m.out, 50, /*cap=*/10);
    EXPECT_EQ(stats.events_log.size(), 10u);
    EXPECT_GT(stats.events, 10u);
}

TEST(Vcd, HeaderDeclaresAllSignals) {
    const auto m = make_fig1b();
    const auto stats = traced_run(m.graph, m.out, 10);
    const std::string vcd =
        asim::to_vcd(m.graph, stats.events_log, 1e-12);
    EXPECT_NE(vcd.find("$timescale 1 ps $end"), std::string::npos);
    EXPECT_NE(vcd.find("$scope module fig1b $end"), std::string::npos);
    for (const char* signal :
         {"C_cond", "M_in", "M_ctrl", "T_ctrl", "M_filt", "T_filt",
          "M_comp", "M_out", "T_out"}) {
        EXPECT_NE(vcd.find(std::string(" ") + signal + " $end"),
                  std::string::npos)
            << signal;
    }
    // No T_ wire for static registers.
    EXPECT_EQ(vcd.find("T_comp"), std::string::npos);
    EXPECT_EQ(vcd.find("T_in"), std::string::npos);
}

TEST(Vcd, InitialDumpMatchesInitialMarking) {
    auto m = make_fig1b();
    m.graph.set_initial(m.comp, true);
    const auto stats = traced_run(m.graph, m.out, 5);
    const std::string vcd = asim::to_vcd(m.graph, stats.events_log);
    // Within $dumpvars, comp's code must be set to 1.
    const auto dump_at = vcd.find("$dumpvars");
    const auto end_at = vcd.find("$end", dump_at);
    ASSERT_NE(dump_at, std::string::npos);
    // Find comp's identifier code from its $var line.
    const auto var_at = vcd.find(" M_comp $end");
    ASSERT_NE(var_at, std::string::npos);
    const auto line_start = vcd.rfind('\n', var_at) + 1;
    const auto fields = util::split(
        vcd.substr(line_start, var_at - line_start), ' ');
    ASSERT_GE(fields.size(), 4u);  // $var wire 1 <code>
    const std::string code = fields[3];
    EXPECT_NE(vcd.substr(dump_at, end_at - dump_at).find("1" + code),
              std::string::npos);
}

TEST(Vcd, ValueChangesFollowEvents) {
    const auto m = make_fig1b();
    const auto stats = traced_run(m.graph, m.out, 10);
    const std::string vcd =
        asim::to_vcd(m.graph, stats.events_log, 1e-12);
    // Timestamps appear as monotonically increasing #ticks.
    long long prev = -1;
    for (const auto& line : util::split(vcd, '\n')) {
        if (line.empty() || line[0] != '#') continue;
        const long long tick = std::stoll(line.substr(1));
        EXPECT_GT(tick, prev);
        prev = tick;
    }
    EXPECT_GT(prev, 0);
}

TEST(Vcd, NanosecondTimescale) {
    const auto m = make_fig1b();
    const auto stats = traced_run(m.graph, m.out, 5);
    const std::string vcd = asim::to_vcd(m.graph, stats.events_log, 1e-9);
    EXPECT_NE(vcd.find("$timescale 1 ns $end"), std::string::npos);
}

// ---------------------------------------------------------------- astg --

TEST(Astg, StructureOfFig1bNet) {
    const auto m = make_fig1b();
    const auto tr = dfs::to_petri(m.graph);
    const std::string g = petri::to_astg(tr.net);
    EXPECT_NE(g.find(".model fig1b_pn"), std::string::npos);
    EXPECT_NE(g.find(".graph"), std::string::npos);
    EXPECT_NE(g.find(".end"), std::string::npos);
    // Every transition listed as dummy.
    const auto dummy_at = g.find(".dummy");
    ASSERT_NE(dummy_at, std::string::npos);
    const auto dummy_line = g.substr(dummy_at, g.find('\n', dummy_at) -
                                                   dummy_at);
    EXPECT_NE(dummy_line.find("Mt_ctrl_p"), std::string::npos);
    EXPECT_NE(dummy_line.find("Mt_ctrl_m"), std::string::npos);
    EXPECT_NE(dummy_line.find("C_cond_p"), std::string::npos);
    // All dummy names are distinct (the +/- polarity must survive the
    // identifier sanitisation).
    std::map<std::string, int> counts;
    for (const auto& word : util::split(dummy_line, ' ')) ++counts[word];
    for (const auto& [word, count] : counts) {
        EXPECT_EQ(count, 1) << word;
    }
}

TEST(Astg, MarkingListsInitialPlaces) {
    const auto m = make_fig1b();
    const auto tr = dfs::to_petri(m.graph);
    const std::string g = petri::to_astg(tr.net);
    const auto marking_at = g.find(".marking {");
    ASSERT_NE(marking_at, std::string::npos);
    const auto marking_line =
        g.substr(marking_at, g.find('\n', marking_at) - marking_at);
    // Empty places of unmarked variables are the *_0 places.
    EXPECT_NE(marking_line.find("M_in_0"), std::string::npos);
    EXPECT_NE(marking_line.find("C_cond_0"), std::string::npos);
    EXPECT_EQ(marking_line.find("M_in_1"), std::string::npos);
}

TEST(Astg, ReadArcsExpandToSelfLoops) {
    petri::Net net("rw");
    const auto g1 = net.add_place("guard", true);
    const auto s = net.add_place("s", true);
    const auto d = net.add_place("d", false);
    const auto t = net.add_transition("go");
    net.add_input_arc(s, t);
    net.add_output_arc(t, d);
    net.add_read_arc(g1, t);
    const std::string text = petri::to_astg(net);
    // Both directions present for the read place.
    EXPECT_NE(text.find("guard go"), std::string::npos);
    EXPECT_NE(text.find("go guard"), std::string::npos);
    // Plain arcs only once in their direction.
    EXPECT_NE(text.find("s go"), std::string::npos);
    EXPECT_EQ(text.find("go s"), std::string::npos);
}

TEST(Astg, ArcCountMatchesNet) {
    const auto m = make_fig1b();
    const auto tr = dfs::to_petri(m.graph);
    const std::string text = petri::to_astg(tr.net);
    // Count arc lines between .graph and .marking.
    const auto begin = text.find(".graph\n") + 7;
    const auto end = text.find(".marking");
    std::size_t lines = 0;
    for (std::size_t i = begin; i < end; ++i) {
        if (text[i] == '\n') ++lines;
    }
    std::size_t reads = 0;
    for (std::uint32_t i = 0; i < tr.net.transition_count(); ++i) {
        reads += tr.net.readset(petri::TransitionId{i}).size();
    }
    // Every read arc contributes two lines.
    EXPECT_EQ(lines, tr.net.arc_count() + reads);
}

}  // namespace
}  // namespace rap
