// Shared Petri-net test fixtures and differential-harness plumbing:
// the model zoo (paper-style rings/wagging/OPE plus seeded random
// topologies) and the query/replay helpers used by the parallel-engine
// differential harness (parallel_reachability_test.cpp) and the
// partial-order-reduction harness (por_test.cpp). Header-only, test-only.

#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "dfs/model.hpp"
#include "dfs/translate.hpp"
#include "ope/dfs_models.hpp"
#include "petri/net.hpp"
#include "petri/predicate.hpp"
#include "petri/reachability.hpp"
#include "pipeline/builder.hpp"
#include "pipeline/wagging.hpp"
#include "util/rng.hpp"

namespace rap::petri::testfx {

struct Fixture {
    std::string name;
    Net net;
};

/// A depth-`d` token-ring pipeline: d+2 control registers in a loop with
/// one True token — the smallest live models of the paper's control
/// style, one per depth 1..6.
inline Fixture ring_fixture(int depth) {
    dfs::Graph g("ring_d" + std::to_string(depth));
    std::vector<dfs::NodeId> regs;
    const int n = depth + 2;
    for (int i = 0; i < n; ++i) {
        regs.push_back(g.add_control("c" + std::to_string(i), i == 0,
                                     dfs::TokenValue::True));
    }
    for (int i = 0; i < n; ++i) g.connect(regs[i], regs[(i + 1) % n]);
    return {g.name(), dfs::to_petri(g).net};
}

inline Fixture wagging_fixture() {
    dfs::Graph g("wagging");
    const auto in = g.add_register("in");
    pipeline::add_wagging_stage(g, "w", in);
    return {"wagging", dfs::to_petri(g).net};
}

inline Fixture static_ope_fixture(int stages) {
    auto p = ope::build_static_ope_dfs(stages);
    return {"ope_static_s" + std::to_string(stages),
            dfs::to_petri(p.graph).net};
}

inline Fixture ope_fixture(int stages, int depth) {
    auto p = ope::build_reconfigurable_ope_dfs(stages, depth);
    return {"ope_s" + std::to_string(stages) + "_d" + std::to_string(depth),
            dfs::to_petri(p.graph).net};
}

/// The gap misconfiguration of Section III-A: stage 2 bypassed under an
/// active stage 3 — deadlock reachable, so witness paths get exercised.
inline Fixture gap_fixture() {
    auto p = ope::build_reconfigurable_ope_dfs(3, 3);
    pipeline::reset_ring(p.graph, p.stages[1].global_ring,
                         dfs::TokenValue::False);
    return {"ope_gap", dfs::to_petri(p.graph).net};
}

/// Random nets straight from util::Rng: a few token rings (each live on
/// its own) joined by random bridge transitions that move tokens across
/// rings — real choice structure, so random persistence violations and
/// deadlocks, without degenerating into an instantly-stuck net. Read
/// arcs sprinkle in level-sensitive enabling. Not necessarily live or
/// deadlock-free — the safe-enabling semantics is total either way, and
/// every engine must agree on it exactly.
inline Fixture random_fixture(std::uint64_t seed) {
    util::Rng rng(seed);
    Net net("rand_" + std::to_string(seed));
    std::vector<PlaceId> ps;
    const int rings = 2 + static_cast<int>(rng.below(3));
    for (int r = 0; r < rings; ++r) {
        const int len = 2 + static_cast<int>(rng.below(3));
        std::vector<PlaceId> ring;
        for (int i = 0; i < len; ++i) {
            ring.push_back(net.add_place(
                "r" + std::to_string(r) + "_p" + std::to_string(i),
                i == 0));
        }
        for (int i = 0; i < len; ++i) {
            const auto t = net.add_transition(
                "r" + std::to_string(r) + "_t" + std::to_string(i));
            net.add_input_arc(ring[i], t);
            net.add_output_arc(t, ring[(i + 1) % len]);
        }
        ps.insert(ps.end(), ring.begin(), ring.end());
    }
    const int bridges = 2 + static_cast<int>(rng.below(4));
    for (int b = 0; b < bridges; ++b) {
        const auto t = net.add_transition("b" + std::to_string(b));
        const PlaceId from = ps[rng.below(ps.size())];
        PlaceId to = ps[rng.below(ps.size())];
        while (to == from) to = ps[rng.below(ps.size())];
        net.add_input_arc(from, t);
        net.add_output_arc(t, to);
        if (rng.chance(0.4)) {
            PlaceId guard = ps[rng.below(ps.size())];
            while (guard == from) guard = ps[rng.below(ps.size())];
            net.add_read_arc(guard, t);
        }
    }
    return {net.name(), std::move(net)};
}

/// A deep token ring at the Petri level: `n` places in a cycle with
/// `tokens` evenly spaced tokens. BFS diameter grows with n while layers
/// stay narrow — the steal-heavy workload the work-stealing scheduler
/// exists for.
inline Fixture deep_ring_fixture(int n, int spacing) {
    dfs::Graph g("deepring_n" + std::to_string(n) + "_s" +
                 std::to_string(spacing));
    std::vector<dfs::NodeId> regs;
    for (int i = 0; i < n; ++i) {
        regs.push_back(g.add_control("c" + std::to_string(i),
                                     i % spacing == 0,
                                     dfs::TokenValue::True));
    }
    for (int i = 0; i < n; ++i) g.connect(regs[i], regs[(i + 1) % n]);
    return {g.name(), dfs::to_petri(g).net};
}

/// Fork/join topology: a live backbone ring plus random blocks where one
/// transition forks a token into 2-3 parallel branch chains and a join
/// transition synchronises them back — real concurrency (wide layers)
/// and synchronisation (joins starve until every branch arrives).
inline Fixture fork_join_fixture(std::uint64_t seed) {
    util::Rng rng(seed ^ 0xF04BULL);
    Net net("fuzz_forkjoin_" + std::to_string(seed));
    const int len = 3 + static_cast<int>(rng.below(3));
    std::vector<PlaceId> ring;
    for (int i = 0; i < len; ++i) {
        ring.push_back(net.add_place("r_p" + std::to_string(i), i == 0));
    }
    for (int i = 0; i < len; ++i) {
        const auto t = net.add_transition("r_t" + std::to_string(i));
        net.add_input_arc(ring[i], t);
        net.add_output_arc(t, ring[(i + 1) % len]);
    }
    const int blocks = 1 + static_cast<int>(rng.below(2));
    for (int b = 0; b < blocks; ++b) {
        const std::string tag = "b" + std::to_string(b);
        const auto fork = net.add_transition(tag + "_fork");
        net.add_input_arc(ring[rng.below(ring.size())], fork);
        const auto join = net.add_transition(tag + "_join");
        const int branches = 2 + static_cast<int>(rng.below(2));
        for (int k = 0; k < branches; ++k) {
            const int hops = 1 + static_cast<int>(rng.below(2));
            PlaceId prev = net.add_place(
                tag + "_k" + std::to_string(k) + "_p0", false);
            net.add_output_arc(fork, prev);
            for (int h = 1; h <= hops; ++h) {
                const auto step = net.add_transition(
                    tag + "_k" + std::to_string(k) + "_t" +
                    std::to_string(h));
                const auto next = net.add_place(
                    tag + "_k" + std::to_string(k) + "_p" +
                    std::to_string(h), false);
                net.add_input_arc(prev, step);
                net.add_output_arc(step, next);
                prev = next;
            }
            net.add_input_arc(prev, join);
        }
        net.add_output_arc(join, ring[rng.below(ring.size())]);
    }
    return {net.name(), std::move(net)};
}

/// Bridged mesh topology: a g x g torus of places with a few tokens,
/// transitions shifting a token right/down, read-arc guards sprinkled
/// in, plus long-range bridge transitions — dense duplicate edges (many
/// paths to the same marking), the canonical-min CAS hot case.
inline Fixture mesh_fixture(std::uint64_t seed) {
    util::Rng rng(seed ^ 0x3E5AULL);
    Net net("fuzz_mesh_" + std::to_string(seed));
    const int g = 3 + static_cast<int>(rng.below(2));
    const int tokens = 2 + static_cast<int>(rng.below(2));
    std::vector<PlaceId> cell;
    for (int i = 0; i < g * g; ++i) {
        cell.push_back(
            net.add_place("m_p" + std::to_string(i), i < tokens));
    }
    auto shift = [&](int from, int to, const std::string& name) {
        const auto t = net.add_transition(name);
        net.add_input_arc(cell[from], t);
        net.add_output_arc(t, cell[to]);
        if (rng.chance(0.2)) {
            int guard = static_cast<int>(rng.below(cell.size()));
            while (guard == from) {
                guard = static_cast<int>(rng.below(cell.size()));
            }
            net.add_read_arc(cell[guard], t);
        }
    };
    for (int r = 0; r < g; ++r) {
        for (int c = 0; c < g; ++c) {
            const int i = r * g + c;
            shift(i, r * g + (c + 1) % g, "m_r" + std::to_string(i));
            shift(i, ((r + 1) % g) * g + c, "m_d" + std::to_string(i));
        }
    }
    const int bridges = static_cast<int>(rng.below(3));
    for (int b = 0; b < bridges; ++b) {
        const int from = static_cast<int>(rng.below(cell.size()));
        int to = static_cast<int>(rng.below(cell.size()));
        while (to == from) to = static_cast<int>(rng.below(cell.size()));
        shift(from, to, "m_b" + std::to_string(b));
    }
    return {net.name(), std::move(net)};
}

/// Seeded random model generator cycling through the three topology
/// classes. Every fixture name embeds the seed, so a differential
/// mismatch prints exactly what to replay.
inline Fixture fuzz_fixture(std::uint64_t seed) {
    switch (seed % 3) {
        case 0: return fork_join_fixture(seed);
        case 1: return mesh_fixture(seed);
        default: return random_fixture(seed);
    }
}

inline std::vector<Fixture> all_fixtures() {
    std::vector<Fixture> fixtures;
    for (int d = 1; d <= 6; ++d) fixtures.push_back(ring_fixture(d));
    fixtures.push_back(wagging_fixture());
    fixtures.push_back(static_ope_fixture(2));
    fixtures.push_back(ope_fixture(3, 3));
    fixtures.push_back(gap_fixture());
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        fixtures.push_back(random_fixture(seed));
    }
    return fixtures;
}

// ----------------------------------------------------------- plumbing --

/// Exhaustive multi-property query over `net`: a deadlock goal, a
/// marked-place goal, full deadlock collection and persistence checking.
/// Exhaustive passes are where the differential contracts promise exact
/// equality on verdicts and sets.
struct QueryBundle {
    Predicate dead = Predicate::deadlock();
    Predicate marked;
    MultiQuery query;

    explicit QueryBundle(const Net& net)
        : marked(Predicate::marked(net, net.place_name(PlaceId{0}))) {
        query.goals = {&dead, &marked};
        query.collect_deadlocks = true;
        query.check_persistence = true;
    }
};

inline std::vector<Marking> sorted(std::vector<Marking> markings) {
    std::sort(markings.begin(), markings.end());
    return markings;
}

using ViolationKey = std::tuple<Marking, std::uint32_t, std::uint32_t>;

inline std::vector<ViolationKey> violation_set(
    const std::vector<PersistenceViolation>& violations) {
    std::vector<ViolationKey> keys;
    keys.reserve(violations.size());
    for (const auto& v : violations) {
        keys.emplace_back(v.marking, v.fired.value, v.disabled.value);
    }
    std::sort(keys.begin(), keys.end());
    return keys;
}

/// Replays `trace` from the initial marking; the result must be `end`.
/// Guards witness reconstruction: a wrong predecessor step produces a
/// disabled firing or lands on the wrong marking.
inline void expect_replays(const Net& net, const Trace& trace,
                           const Marking& end, const std::string& context) {
    Marking m = net.initial_marking();
    for (const TransitionId t : trace.firings) {
        ASSERT_TRUE(net.is_enabled(m, t))
            << context << ": witness trace fires disabled "
            << net.transition_name(t);
        net.fire(m, t);
    }
    EXPECT_EQ(m, end) << context << ": witness trace misses its witness";
}

}  // namespace rap::petri::testfx
