#include <gtest/gtest.h>

#include <deque>
#include <unordered_set>

#include "dfs/dynamics.hpp"
#include "dfs/simulator.hpp"
#include "dfs/translate.hpp"
#include "dfs_helpers.hpp"
#include "petri/reachability.hpp"
#include "util/rng.hpp"

namespace rap::dfs {
namespace {

using testing::add_control_ring;
using testing::make_fig1b;

TEST(Translate, Fig1bNetSize) {
    const auto m = make_fig1b();
    const Translation tr = to_petri(m.graph);
    // logic: 2 places/2 transitions; static register: 2/2;
    // dynamic register (Fig. 3c): 6 places / 4 transitions.
    // fig1b = 1 logic + 2 static + 3 dynamic.
    EXPECT_EQ(tr.net.place_count(), 2u + 2 * 2 + 3 * 6);
    EXPECT_EQ(tr.net.transition_count(), 2u + 2 * 2 + 3 * 4);
    EXPECT_EQ(tr.net.name(), "fig1b_pn");
}

TEST(Translate, InitialMarkingAgreesWithInitialState) {
    auto m = make_fig1b();
    m.graph.set_initial(m.ctrl, true, TokenValue::False);
    const Translation tr = to_petri(m.graph);
    const State s0 = State::initial(m.graph);
    EXPECT_EQ(tr.net.initial_marking(), tr.encode(m.graph, s0));
}

TEST(Translate, VariablePlacePairsAreOneHot) {
    const auto m = make_fig1b();
    const Translation tr = to_petri(m.graph);
    const petri::Marking m0 = tr.net.initial_marking();
    for (NodeId n : m.graph.nodes()) {
        const auto& slots = tr.places[n.value];
        if (m.graph.is_logic(n)) {
            EXPECT_NE(m0.get(slots.c0.value), m0.get(slots.c1.value));
        } else {
            EXPECT_NE(m0.get(slots.m0.value), m0.get(slots.m1.value));
            if (m.graph.is_dynamic(n)) {
                EXPECT_NE(m0.get(slots.mt0.value), m0.get(slots.mt1.value));
                EXPECT_NE(m0.get(slots.mf0.value), m0.get(slots.mf1.value));
            }
        }
    }
}

TEST(Translate, TransitionNamingConvention) {
    const auto m = make_fig1b();
    const Translation tr = to_petri(m.graph);
    EXPECT_TRUE(tr.net.find_transition("C_cond+").has_value());
    EXPECT_TRUE(tr.net.find_transition("M_in-").has_value());
    EXPECT_TRUE(tr.net.find_transition("Mt_ctrl+").has_value());
    EXPECT_TRUE(tr.net.find_transition("Mf_filt-").has_value());
    EXPECT_FALSE(tr.net.find_transition("M_ctrl+").has_value());
}

TEST(Translate, SimultaneousChoiceEnablingMatchesFig4) {
    const auto m = make_fig1b();
    const Dynamics dyn(m.graph);
    const Translation tr = to_petri(m.graph);

    State s = State::initial(m.graph);
    dyn.apply(s, {m.in, EventKind::Mark});
    dyn.apply(s, {m.cond, EventKind::LogicEvaluate});
    const petri::Marking pm = tr.encode(m.graph, s);
    // "transitions Mt_ctrl+ and Mf_ctrl+ can be enabled simultaneously"
    EXPECT_TRUE(tr.net.is_enabled(pm, *tr.net.find_transition("Mt_ctrl+")));
    EXPECT_TRUE(tr.net.is_enabled(pm, *tr.net.find_transition("Mf_ctrl+")));
}

TEST(Translate, TransitionForMapsEveryEventKind) {
    const auto m = make_fig1b();
    const Translation tr = to_petri(m.graph);
    EXPECT_NO_THROW(
        tr.transition_for(m.graph, {m.cond, EventKind::LogicEvaluate}, false));
    EXPECT_NO_THROW(
        tr.transition_for(m.graph, {m.in, EventKind::Unmark}, false));
    const auto mt = tr.transition_for(m.graph, {m.ctrl, EventKind::Unmark},
                                      /*token_true=*/true);
    EXPECT_EQ(tr.net.transition_name(mt), "Mt_ctrl-");
    const auto mf = tr.transition_for(m.graph, {m.ctrl, EventKind::Unmark},
                                      /*token_true=*/false);
    EXPECT_EQ(tr.net.transition_name(mf), "Mf_ctrl-");
}

// --------------------------------------------------------- lockstep --

/// Runs a long random walk on the DFS semantics while firing the mapped
/// transition on the PN side, checking the markings stay identical. This
/// is the strong form of "the PN captures the DFS execution semantics".
void lockstep_walk(const Graph& graph, std::uint64_t seed,
                   std::uint64_t steps) {
    const Dynamics dyn(graph);
    const Translation tr = to_petri(graph);
    State s = State::initial(graph);
    petri::Marking pm = tr.net.initial_marking();
    util::Rng rng(seed);

    for (std::uint64_t i = 0; i < steps; ++i) {
        const auto enabled = dyn.enabled_events(s);
        if (enabled.empty()) break;
        const Event e = enabled[rng.below(enabled.size())];
        const bool token = graph.is_dynamic(e.node) && s.token_true(e.node);
        const auto t = tr.transition_for(graph, e, token);
        ASSERT_TRUE(tr.net.is_enabled(pm, t))
            << "PN lags DFS: " << tr.net.transition_name(t)
            << " disabled at DFS state " << s.describe(graph);
        dyn.apply(s, e);
        tr.net.fire(pm, t);
        ASSERT_EQ(pm, tr.encode(graph, s))
            << "marking diverged after " << tr.net.transition_name(t);
    }
}

TEST(Translate, LockstepFig1b) {
    const auto m = make_fig1b();
    lockstep_walk(m.graph, 17, 5000);
}

TEST(Translate, LockstepControlRing) {
    Graph g("ring3");
    add_control_ring(g, "loop", TokenValue::False);
    lockstep_walk(g, 23, 1000);
}

TEST(Translate, LockstepControlledPipeline) {
    // A pipeline where a control ring gates a push/pop pair around a
    // middle register — the Fig. 6c building block in miniature.
    Graph g("mini");
    const auto in = g.add_register("in");
    const auto ring = add_control_ring(g, "cfg", TokenValue::False);
    const auto push = g.add_push("push");
    const auto mid = g.add_register("mid");
    const auto pop = g.add_pop("pop");
    const auto sink = g.add_register("sink");
    g.connect(in, push);
    g.connect(ring.c1, push);
    g.connect(push, mid);
    g.connect(mid, pop);
    g.connect(ring.c1, pop);
    g.connect(pop, sink);
    lockstep_walk(g, 29, 5000);
}

// ------------------------------------------------- state-space match --

std::size_t dfs_state_count(const Dynamics& dyn) {
    std::unordered_set<State, StateHash> seen;
    std::deque<State> frontier;
    const State s0 = State::initial(dyn.graph());
    seen.insert(s0);
    frontier.push_back(s0);
    while (!frontier.empty()) {
        const State s = frontier.front();
        frontier.pop_front();
        for (const Event& e : dyn.enabled_events(s)) {
            State next = s;
            dyn.apply(next, e);
            if (seen.insert(next).second) frontier.push_back(next);
        }
    }
    return seen.size();
}

void expect_equal_state_spaces(const Graph& graph) {
    const Dynamics dyn(graph);
    const Translation tr = to_petri(graph);
    petri::ReachabilityExplorer explorer(tr.net);
    EXPECT_EQ(dfs_state_count(dyn), explorer.count_states());
}

TEST(Translate, StateSpaceBisimulationFig1b) {
    expect_equal_state_spaces(make_fig1b().graph);
}

TEST(Translate, StateSpaceBisimulationControlRing) {
    Graph g("ring3");
    add_control_ring(g, "loop", TokenValue::True);
    expect_equal_state_spaces(g);
}

TEST(Translate, PnDeadlockFreeForFig1b) {
    const auto m = make_fig1b();
    const Translation tr = to_petri(m.graph);
    petri::ReachabilityExplorer explorer(tr.net);
    EXPECT_TRUE(explorer.find_deadlocks().deadlocks.empty());
}

TEST(Translate, PnFindsSeededDeadlock) {
    // Incorrect initialisation (Section III-A): marking filt initially
    // without its upstream token cannot return to a live cycle — the
    // verifier must find *some* deadlock.
    Graph g("mini_bad");
    const auto in = g.add_register("in");
    const auto c1 = g.add_control("c1", true, TokenValue::True);
    const auto c2 = g.add_control("c2", true, TokenValue::True);
    const auto c3 = g.add_control("c3", true, TokenValue::True);
    g.connect(c1, c2);
    g.connect(c2, c3);
    g.connect(c3, c1);
    const auto push = g.add_push("push");
    const auto sink = g.add_register("sink");
    g.connect(in, push);
    g.connect(c1, push);
    g.connect(push, sink);
    // A fully marked control ring can never advance: every register's
    // R-postset is occupied.
    const Translation tr = to_petri(g);
    petri::ReachabilityExplorer explorer(tr.net);
    const auto result = explorer.find_deadlocks();
    EXPECT_FALSE(result.deadlocks.empty());
}

}  // namespace
}  // namespace rap::dfs
