// End-to-end integration: the full Section II-D / III flow on one model —
// build, serialise, verify, analyse, map to the NCL-D netlist, export
// Verilog, run the timed chip simulation, and cross-check the functional
// checksum against the behavioural model. Each step's output feeds the
// next, so any cross-layer inconsistency breaks here.

#include <gtest/gtest.h>

#include "chip/chip.hpp"
#include "dfs/serialize.hpp"
#include "dfs/simulator.hpp"
#include "flow/design.hpp"
#include "netlist/netlist.hpp"
#include "netlist/verilog.hpp"
#include "ope/dfs_models.hpp"
#include "perf/cycles.hpp"
#include "verify/verifier.hpp"

namespace rap {
namespace {

TEST(Integration, FullFlowOnReconfigurableOpe) {
    // 1. Model (Fig. 7 shape, 3 stages for tractable verification),
    //    opened as ONE design session carrying every later step.
    flow::DesignOptions options;
    options.verify.max_states = 3'000'000;
    const flow::Design design(ope::build_reconfigurable_ope_dfs(3, 3),
                              options);
    ASSERT_TRUE(design.graph().validate().empty());

    // 2. Serialisation survives the full structure.
    const auto reloaded = dfs::from_text(dfs::to_text(design.graph()));
    EXPECT_EQ(reloaded.node_count(), design.graph().node_count());
    EXPECT_EQ(reloaded.edge_count(), design.graph().edge_count());

    // 3. Formal verification is clean.
    const auto report = design.verify();
    EXPECT_TRUE(report.clean()) << report.to_string();

    // 4. Performance analysis sees live cycles only.
    const auto cycles = perf::analyse_cycles(design.graph());
    EXPECT_FALSE(cycles.cycles.empty());
    EXPECT_GT(cycles.throughput_bound(), 0.0);

    // 5. Netlist mapping and Verilog export off the same session; the
    //    PN artifact from step 3 was not rebuilt along the way.
    EXPECT_EQ(design.netlist().instances().size(),
              design.graph().node_count());
    const std::string verilog = design.to_verilog();
    EXPECT_NE(verilog.find("module ope_reconfig_3"), std::string::npos);
    EXPECT_EQ(design.pn_builds(), 1u);
    EXPECT_EQ(design.netlist_builds(), 1u);

    // 6. Timed simulation of the mapped design completes and the
    //    mapped timing covers every node.
    chip::ChipOptions coptions;
    coptions.stages = 3;
    coptions.depth = 3;
    coptions.core = chip::Core::Reconfigurable;
    const chip::Evaluation chip_eval(coptions);
    const auto measurement = chip_eval.measure(1.2, 100);
    EXPECT_EQ(measurement.items, 100u);
    EXPECT_FALSE(measurement.deadlocked);
    EXPECT_GT(measurement.energy_j(), 0.0);

    // 7. Functional equivalence with the behavioural model.
    const auto functional = chip::run_random_mode(coptions, 0xAB, 4000);
    EXPECT_EQ(functional.checksum, chip::reference_checksum(3, 0xAB, 4000));
}

TEST(Integration, StaticAndReconfigurableAgreeFunctionally) {
    // Same stream through the static core and through every depth of the
    // reconfigurable core set to full depth must agree (the chip's two
    // cores compute the same function when depth == stages).
    for (const int stages : {3, 6, 10}) {
        chip::ChipOptions st;
        st.stages = stages;
        st.depth = stages;
        st.core = chip::Core::Static;
        chip::ChipOptions rc = st;
        rc.core = chip::Core::Reconfigurable;
        EXPECT_EQ(chip::run_random_mode(st, 0x11, 2000).checksum,
                  chip::run_random_mode(rc, 0x11, 2000).checksum)
            << stages << " stages";
    }
}

TEST(Integration, TimedAndUntimedSemanticsAgreeOnTokenCounts) {
    // The timed simulator and the untimed random walk must agree on the
    // conservation structure: one output token per input token.
    const auto model = ope::build_reconfigurable_ope_dfs(4, 3);
    const dfs::Dynamics dyn(model.graph);

    dfs::Simulator untimed(dyn, 3);
    dfs::State s1 = dfs::State::initial(model.graph);
    const auto ustats = untimed.run(s1, 100000);
    ASSERT_FALSE(ustats.deadlocked);
    EXPECT_NEAR(static_cast<double>(ustats.marks_at(model.in)),
                static_cast<double>(ustats.marks_at(model.out)), 6.0);

    asim::TimedSimulator timed(
        dyn, asim::uniform_timing(model.graph, 1.0), tech::VoltageModel{},
        tech::VoltageSchedule::constant(1.2), 0.0);
    dfs::State s2 = dfs::State::initial(model.graph);
    asim::RunLimits limits;
    limits.target_marks = 200;
    limits.observe = model.out;
    const auto tstats = timed.run(s2, limits);
    EXPECT_NEAR(static_cast<double>(tstats.marks_at(model.in)),
                static_cast<double>(tstats.marks_at(model.out)), 6.0);
}

TEST(Integration, VerilogExportScalesTo18Stages) {
    const auto model = ope::build_reconfigurable_ope_dfs(18, 18);
    netlist::Library::Options options;
    options.sync = netlist::SyncTopology::DaisyChain;
    const netlist::Netlist mapped(model.graph, netlist::Library(options));
    const std::string verilog = netlist::to_verilog(mapped);
    // Every stage instantiated; chain topology selected.
    for (int i = 1; i <= 18; ++i) {
        EXPECT_NE(verilog.find("u_s" + std::to_string(i) + "_global_in"),
                  std::string::npos)
            << i;
    }
    EXPECT_NE(verilog.find(".TOPOLOGY(1)"), std::string::npos);
    EXPECT_GT(verilog.size(), 50000u);
}

}  // namespace
}  // namespace rap
