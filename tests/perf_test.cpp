#include <gtest/gtest.h>

#include "dfs_helpers.hpp"
#include "ope/dfs_models.hpp"
#include "perf/cycles.hpp"
#include "perf/throughput.hpp"
#include "pipeline/builder.hpp"

namespace rap::perf {
namespace {

using dfs::Graph;
using dfs::TokenValue;
using dfs::testing::add_control_ring;
using dfs::testing::add_linear_pipeline;

TEST(Cycles, AcyclicGraphHasNoCycles) {
    Graph g("lin");
    add_linear_pipeline(g, "p", 3);
    const auto report = analyse_cycles(g);
    EXPECT_TRUE(report.cycles.empty());
    EXPECT_EQ(report.throughput_bound(), 1.0);
    EXPECT_EQ(report.bottleneck(), nullptr);
    EXPECT_TRUE(report.bottleneck_nodes().empty());
}

TEST(Cycles, ThreeRingBound) {
    Graph g("ring3");
    add_control_ring(g, "r", TokenValue::True);
    const auto report = analyse_cycles(g);
    ASSERT_EQ(report.cycles.size(), 1u);
    const Cycle& c = report.cycles[0];
    EXPECT_EQ(c.registers, 3u);
    EXPECT_EQ(c.tokens, 1u);
    // min(1, floor(2/2)) / 3 = 1/3.
    EXPECT_NEAR(c.throughput_bound, 1.0 / 3.0, 1e-12);
    EXPECT_FALSE(report.truncated);
}

TEST(Cycles, TwoRingIsDead) {
    Graph g("ring2");
    const auto a = g.add_register("a", true);
    const auto b = g.add_register("b");
    g.connect(a, b);
    g.connect(b, a);
    const auto report = analyse_cycles(g);
    ASSERT_EQ(report.cycles.size(), 1u);
    // One bubble is not enough for a token to advance.
    EXPECT_EQ(report.cycles[0].throughput_bound, 0.0);
    EXPECT_EQ(report.throughput_bound(), 0.0);
}

TEST(Cycles, TokenFreeRingIsDead) {
    Graph g("ring0");
    const auto a = g.add_register("a");
    const auto b = g.add_register("b");
    const auto c = g.add_register("c");
    g.connect(a, b);
    g.connect(b, c);
    g.connect(c, a);
    const auto report = analyse_cycles(g);
    ASSERT_EQ(report.cycles.size(), 1u);
    EXPECT_EQ(report.cycles[0].tokens, 0u);
    EXPECT_EQ(report.cycles[0].throughput_bound, 0.0);
}

TEST(Cycles, BiggerRingsAreSlowerWithOneToken) {
    auto bound_of_ring = [](int n) {
        Graph g("ring");
        std::vector<dfs::NodeId> regs;
        for (int i = 0; i < n; ++i) {
            regs.push_back(
                g.add_register("r" + std::to_string(i), i == 0));
        }
        for (int i = 0; i < n; ++i) g.connect(regs[i], regs[(i + 1) % n]);
        return analyse_cycles(g).throughput_bound();
    };
    EXPECT_GT(bound_of_ring(3), bound_of_ring(5));
    EXPECT_GT(bound_of_ring(5), bound_of_ring(9));
}

TEST(Cycles, MoreTokensHelpUntilCongestion) {
    auto bound_with_tokens = [](int tokens) {
        Graph g("ring");
        const int n = 9;
        std::vector<dfs::NodeId> regs;
        for (int i = 0; i < n; ++i) {
            regs.push_back(
                g.add_register("r" + std::to_string(i), i < tokens));
        }
        for (int i = 0; i < n; ++i) g.connect(regs[i], regs[(i + 1) % n]);
        return analyse_cycles(g).throughput_bound();
    };
    EXPECT_GT(bound_with_tokens(2), bound_with_tokens(1));
    EXPECT_GT(bound_with_tokens(3), bound_with_tokens(2));
    // Congestion: too many tokens starve the bubbles.
    EXPECT_GT(bound_with_tokens(3), bound_with_tokens(7));
    EXPECT_EQ(bound_with_tokens(9), 0.0);
}

TEST(Cycles, LogicNodesCountedButHoldNoTokens) {
    Graph g("mixed");
    const auto a = g.add_register("a", true);
    const auto f = g.add_logic("f");
    const auto b = g.add_register("b");
    g.connect(a, f);
    g.connect(f, b);
    g.connect(b, a);
    const auto report = analyse_cycles(g);
    ASSERT_EQ(report.cycles.size(), 1u);
    EXPECT_EQ(report.cycles[0].registers, 2u);
    EXPECT_EQ(report.cycles[0].logics, 1u);
}

TEST(Cycles, SlowestCycleFirstAndBottleneckIdentified) {
    Graph g("two_rings");
    const auto fast = add_control_ring(g, "fast", TokenValue::True);
    // A slower 6-ring with one token.
    std::vector<dfs::NodeId> regs;
    for (int i = 0; i < 6; ++i) {
        regs.push_back(g.add_register("s" + std::to_string(i), i == 0));
    }
    for (int i = 0; i < 6; ++i) g.connect(regs[i], regs[(i + 1) % 6]);
    (void)fast;
    const auto report = analyse_cycles(g);
    ASSERT_EQ(report.cycles.size(), 2u);
    EXPECT_EQ(report.cycles[0].registers, 6u);  // slowest first
    const auto bottleneck = report.bottleneck_nodes();
    EXPECT_EQ(bottleneck.size(), 6u);
}

TEST(Cycles, CapTruncatesEnumeration) {
    // Complete-ish digraph: lots of simple cycles.
    Graph g("dense");
    std::vector<dfs::NodeId> regs;
    for (int i = 0; i < 8; ++i) {
        regs.push_back(g.add_register("r" + std::to_string(i), i % 2 == 0));
    }
    for (int i = 0; i < 8; ++i) {
        for (int j = 0; j < 8; ++j) {
            if (i != j) g.connect(regs[i], regs[j]);
        }
    }
    CycleAnalysisOptions options;
    options.max_cycles = 50;
    const auto report = analyse_cycles(g, options);
    EXPECT_TRUE(report.truncated);
    EXPECT_EQ(report.cycles.size(), 50u);
}

TEST(Cycles, OpeReconfigurableModelAnalysable) {
    const auto p = ope::build_reconfigurable_ope_dfs(4, 4);
    CycleAnalysisOptions options;
    options.max_cycles = 5000;
    const auto report = analyse_cycles(p.graph, options);
    ASSERT_FALSE(report.cycles.empty());
    // Every control ring shows up as a 1/3-throughput cycle; nothing is
    // dead in a valid configuration.
    EXPECT_GT(report.throughput_bound(), 0.0);
    EXPECT_LE(report.throughput_bound(), 1.0 / 3.0 + 1e-12);
}

TEST(Cycles, DescribeMentionsRegistersAndBound) {
    Graph g("ring3");
    add_control_ring(g, "r", TokenValue::True);
    const auto report = analyse_cycles(g);
    const std::string text = report.cycles[0].describe(g);
    EXPECT_NE(text.find("3 regs"), std::string::npos);
    EXPECT_NE(text.find("r_c1"), std::string::npos);
}

// ----------------------------------------------------------- throughput --

TEST(Throughput, LinearPipelineMeasurable) {
    Graph g("lin");
    const auto regs = add_linear_pipeline(g, "p", 3);
    ThroughputOptions options;
    options.tokens = 100;
    const auto result = measure_throughput(g, regs.back(), options);
    EXPECT_FALSE(result.deadlocked);
    EXPECT_GT(result.tokens_per_s, 0.0);
    EXPECT_EQ(result.tokens, 100u);
}

TEST(Throughput, DeadModelReportsDeadlock) {
    Graph g("ring2");
    const auto a = g.add_register("a", true);
    const auto b = g.add_register("b");
    g.connect(a, b);
    g.connect(b, a);
    const auto result = measure_throughput(g, b);
    EXPECT_TRUE(result.deadlocked);
    EXPECT_EQ(result.tokens_per_s, 0.0);
}

TEST(Throughput, SlowerRingMeasuresSlower) {
    auto rate_of_ring = [](int n) {
        Graph g("ring");
        std::vector<dfs::NodeId> regs;
        for (int i = 0; i < n; ++i) {
            regs.push_back(g.add_register("r" + std::to_string(i), i == 0));
        }
        for (int i = 0; i < n; ++i) g.connect(regs[i], regs[(i + 1) % n]);
        ThroughputOptions options;
        options.tokens = 60;
        return measure_throughput(g, regs[0], options).tokens_per_s;
    };
    // With one token the mark wave pipelines: small rings are limited by
    // the 2-events-per-register serialisation (period 6 for the 3-ring),
    // large ones by the revolution length n.
    EXPECT_GE(rate_of_ring(3), rate_of_ring(6) * 0.999);
    EXPECT_GT(rate_of_ring(6), rate_of_ring(12) * 1.5);
}

TEST(Throughput, MeasurementTracksCycleBoundOrdering) {
    // The analytic bound and the measured rate must order rings the same
    // way — the property the Fig. 5 analysis relies on.
    auto both = [](int n, int tokens) {
        Graph g("ring");
        std::vector<dfs::NodeId> regs;
        const int spacing = n / tokens;
        for (int i = 0; i < n; ++i) {
            // Evenly spaced tokens: the placement the bound assumes.
            regs.push_back(g.add_register("r" + std::to_string(i),
                                          i % spacing == 0 &&
                                              i / spacing < tokens));
        }
        for (int i = 0; i < n; ++i) g.connect(regs[i], regs[(i + 1) % n]);
        ThroughputOptions options;
        options.tokens = 60;
        return std::make_pair(
            analyse_cycles(g).throughput_bound(),
            measure_throughput(g, regs[0], options).tokens_per_s);
    };
    const auto [bound_a, rate_a] = both(9, 1);
    const auto [bound_b, rate_b] = both(9, 3);
    EXPECT_LT(bound_a, bound_b);
    EXPECT_LT(rate_a, rate_b);
}

}  // namespace
}  // namespace rap::perf
