#include <gtest/gtest.h>

#include "asim/timed_sim.hpp"
#include "dfs/dynamics.hpp"
#include "dfs_helpers.hpp"
#include "pipeline/builder.hpp"

namespace rap::asim {
namespace {

using dfs::Dynamics;
using dfs::State;
using dfs::testing::add_linear_pipeline;
using dfs::testing::make_fig1b;

TimedSimulator make_sim(const Dynamics& dyn, const TimingMap& timing,
                        double voltage = 1.2, double leakage_gates = 0.0) {
    return TimedSimulator(dyn, timing, tech::VoltageModel{},
                          tech::VoltageSchedule::constant(voltage),
                          leakage_gates);
}

TEST(TimedSim, LinearPipelineAdvancesTime) {
    dfs::Graph g("lin");
    const auto regs = add_linear_pipeline(g, "p", 3);
    const Dynamics dyn(g);
    auto sim = make_sim(dyn, uniform_timing(g, 1.0, 1.0));
    State s = State::initial(g);
    RunLimits limits;
    limits.target_marks = 10;
    limits.observe = regs.back();
    const auto stats = sim.run(s, limits);
    EXPECT_EQ(stats.marks_at(regs.back()), 10u);
    EXPECT_GT(stats.time_s, 10.0);      // at least the sink's own events
    EXPECT_FALSE(stats.deadlocked);
    EXPECT_FALSE(stats.frozen);
    EXPECT_EQ(stats.dynamic_energy_j, static_cast<double>(stats.events));
}

TEST(TimedSim, ThroughputHalvesAtHalfSpeedVoltage) {
    dfs::Graph g("lin");
    const auto regs = add_linear_pipeline(g, "p", 2);
    const Dynamics dyn(g);
    const tech::VoltageModel model;

    auto run_at = [&](double v) {
        auto sim = make_sim(dyn, uniform_timing(g, 1.0), v);
        State s = State::initial(g);
        RunLimits limits;
        limits.target_marks = 50;
        limits.observe = regs.back();
        return sim.run(s, limits).time_s;
    };
    const double t_nominal = run_at(1.2);
    const double t_low = run_at(0.6);
    const double expected_ratio =
        model.speed_factor(1.2) / model.speed_factor(0.6);
    EXPECT_NEAR(t_low / t_nominal, expected_ratio, expected_ratio * 0.01);
}

TEST(TimedSim, EnergyScalesWithVoltageSquared) {
    dfs::Graph g("lin");
    const auto regs = add_linear_pipeline(g, "p", 2);
    const Dynamics dyn(g);
    auto run_at = [&](double v) {
        auto sim = make_sim(dyn, uniform_timing(g, 1.0, 1.0), v);
        State s = State::initial(g);
        RunLimits limits;
        limits.target_marks = 50;
        limits.observe = regs.back();
        const auto stats = sim.run(s, limits);
        return stats.dynamic_energy_j / static_cast<double>(stats.events);
    };
    EXPECT_NEAR(run_at(0.6) / run_at(1.2), 0.25, 1e-6);
}

TEST(TimedSim, DeadlockReported) {
    dfs::Graph g("dead");
    const auto c1 = g.add_control("c1", true, dfs::TokenValue::True);
    const auto c2 = g.add_control("c2", false, dfs::TokenValue::True);
    g.connect(c1, c2);
    g.connect(c2, c1);
    const Dynamics dyn(g);
    auto sim = make_sim(dyn, uniform_timing(g, 1.0));
    State s = State::initial(g);
    RunLimits limits;
    limits.max_events = 100;
    const auto stats = sim.run(s, limits);
    EXPECT_TRUE(stats.deadlocked);
    EXPECT_EQ(stats.events, 0u);
}

TEST(TimedSim, FrozenSupplyReported) {
    dfs::Graph g("lin");
    const auto regs = add_linear_pipeline(g, "p", 2);
    const Dynamics dyn(g);
    TimedSimulator sim(dyn, uniform_timing(g, 1.0), tech::VoltageModel{},
                       tech::VoltageSchedule::constant(0.2), 0.0);
    State s = State::initial(g);
    RunLimits limits;
    limits.target_marks = 5;
    limits.observe = regs.back();
    const auto stats = sim.run(s, limits);
    EXPECT_TRUE(stats.frozen);
    EXPECT_EQ(stats.events, 0u);
}

TEST(TimedSim, FreezeThenRecoveryCompletesWork) {
    dfs::Graph g("lin");
    const auto regs = add_linear_pipeline(g, "p", 2);
    const Dynamics dyn(g);
    tech::VoltageSchedule schedule;
    schedule.add_segment(5.0, 1.2);
    schedule.add_segment(100.0, 0.30);  // freeze
    schedule.add_segment(1.0, 1.2);     // recover, hold forever
    TimedSimulator sim(dyn, uniform_timing(g, 1.0), tech::VoltageModel{},
                       schedule, 0.0);
    State s = State::initial(g);
    RunLimits limits;
    limits.target_marks = 20;
    limits.observe = regs.back();
    const auto stats = sim.run(s, limits);
    EXPECT_FALSE(stats.frozen);
    EXPECT_EQ(stats.marks_at(regs.back()), 20u);
    // The run must have waited out the frozen decade.
    EXPECT_GT(stats.time_s, 105.0);
}

TEST(TimedSim, MaxTimeLimitStopsRun) {
    dfs::Graph g("lin");
    const auto regs = add_linear_pipeline(g, "p", 2);
    const Dynamics dyn(g);
    auto sim = make_sim(dyn, uniform_timing(g, 1.0));
    State s = State::initial(g);
    RunLimits limits;
    limits.target_marks = 1000000;
    limits.observe = regs.back();
    limits.max_time_s = 50.0;
    const auto stats = sim.run(s, limits);
    EXPECT_LE(stats.time_s, 50.0 + 1e-9);
    EXPECT_FALSE(stats.frozen);
}

TEST(TimedSim, LeakageAccruesOverTime) {
    dfs::Graph g("lin");
    const auto regs = add_linear_pipeline(g, "p", 2);
    const Dynamics dyn(g);
    auto sim = make_sim(dyn, uniform_timing(g, 1.0), 1.2, 1e6);
    State s = State::initial(g);
    RunLimits limits;
    limits.target_marks = 20;
    limits.observe = regs.back();
    const auto stats = sim.run(s, limits);
    const tech::VoltageModel model;
    EXPECT_NEAR(stats.leakage_energy_j,
                model.leakage_power(1.2, 1e6) * stats.time_s,
                stats.leakage_energy_j * 1e-9);
}

TEST(TimedSim, PowerTraceCoversRunAndSumsToEnergy) {
    dfs::Graph g("lin");
    const auto regs = add_linear_pipeline(g, "p", 2);
    const Dynamics dyn(g);
    auto sim = make_sim(dyn, uniform_timing(g, 1.0, 2.0), 1.2, 1e5);
    sim.enable_power_trace(5.0);
    State s = State::initial(g);
    RunLimits limits;
    limits.target_marks = 30;
    limits.observe = regs.back();
    const auto stats = sim.run(s, limits);
    ASSERT_FALSE(stats.trace.empty());
    double traced = 0;
    for (const auto& sample : stats.trace) {
        EXPECT_EQ(sample.voltage_v, 1.2);
        traced += sample.power_w * (sample.t_end_s - sample.t_start_s);
    }
    // Trace bins cover at least the whole run (the last bin may extend
    // past it, adding its leakage).
    EXPECT_GE(traced, stats.total_energy_j() * 0.99);
    EXPECT_LE(traced, stats.total_energy_j() * 1.2);
}

TEST(TimedSim, TrueBiasSteersBypassFraction) {
    const auto m = make_fig1b();
    const Dynamics dyn(m.graph);
    auto sim = make_sim(dyn, uniform_timing(m.graph, 1.0));
    sim.set_seed(42);
    sim.set_true_bias(0.2);
    State s = State::initial(m.graph);
    RunLimits limits;
    limits.target_marks = 400;
    limits.observe = m.out;
    const auto stats = sim.run(s, limits);
    const double false_fraction =
        static_cast<double>(stats.marks_at(m.out) -
                            (stats.marks_at(m.comp))) /
        static_cast<double>(stats.marks_at(m.out));
    EXPECT_GT(false_fraction, 0.6);
}

TEST(TimedSim, SlowNodeDominatesThroughput) {
    dfs::Graph g("lin");
    const auto regs = add_linear_pipeline(g, "p", 3);
    const Dynamics dyn(g);
    TimingMap timing = uniform_timing(g, 1.0);
    // Make the middle function block 10x slower.
    const auto f2 = *g.find("p_f2");
    timing[f2.value].delay_s = 10.0;

    auto fast_sim = make_sim(dyn, uniform_timing(g, 1.0));
    auto slow_sim = make_sim(dyn, timing);
    State s1 = State::initial(g), s2 = State::initial(g);
    RunLimits limits;
    limits.target_marks = 30;
    limits.observe = regs.back();
    const double t_fast = fast_sim.run(s1, limits).time_s;
    const double t_slow = slow_sim.run(s2, limits).time_s;
    EXPECT_GT(t_slow, t_fast * 3.0);
}

TEST(TimedSim, DaisyPenaltyGrowsWithRealTokens) {
    // Two sources joined by a logic node into a sink: with a per-true-
    // input penalty on the join, the cycle slows proportionally.
    dfs::Graph g("join");
    const auto a = g.add_register("a");
    const auto b = g.add_register("b");
    const auto j = g.add_logic("j");
    const auto sink = g.add_register("sink");
    g.connect(a, j);
    g.connect(b, j);
    g.connect(j, sink);
    const Dynamics dyn(g);

    TimingMap plain = uniform_timing(g, 1.0);
    TimingMap daisy = uniform_timing(g, 1.0);
    daisy[j.value].delay_per_true_input_s = 5.0;

    RunLimits limits;
    limits.target_marks = 20;
    limits.observe = sink;
    State s1 = State::initial(g), s2 = State::initial(g);
    auto sim1 = make_sim(dyn, plain);
    auto sim2 = make_sim(dyn, daisy);
    const double t_plain = sim1.run(s1, limits).time_s;
    const double t_daisy = sim2.run(s2, limits).time_s;
    EXPECT_GT(t_daisy, t_plain * 1.5);
}

}  // namespace
}  // namespace rap::asim
