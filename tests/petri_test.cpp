#include <gtest/gtest.h>

#include "petri/dot.hpp"
#include "petri/net.hpp"
#include "petri/persistence.hpp"
#include "petri/predicate.hpp"
#include "petri/reachability.hpp"

namespace rap::petri {
namespace {

/// p0 -> t0 -> p1 -> t1 -> p0 : a two-place ring with one token.
Net make_ring() {
    Net net("ring");
    const auto p0 = net.add_place("p0", true);
    const auto p1 = net.add_place("p1", false);
    const auto t0 = net.add_transition("t0");
    const auto t1 = net.add_transition("t1");
    net.add_input_arc(p0, t0);
    net.add_output_arc(t0, p1);
    net.add_input_arc(p1, t1);
    net.add_output_arc(t1, p0);
    return net;
}

TEST(Net, InitialMarkingReflectsConstruction) {
    const Net net = make_ring();
    const Marking m = net.initial_marking();
    EXPECT_TRUE(m.get(0));
    EXPECT_FALSE(m.get(1));
}

TEST(Net, EnablingAndFiring) {
    const Net net = make_ring();
    Marking m = net.initial_marking();
    const auto t0 = *net.find_transition("t0");
    const auto t1 = *net.find_transition("t1");
    EXPECT_TRUE(net.is_enabled(m, t0));
    EXPECT_FALSE(net.is_enabled(m, t1));
    net.fire(m, t0);
    EXPECT_FALSE(m.get(0));
    EXPECT_TRUE(m.get(1));
    EXPECT_TRUE(net.is_enabled(m, t1));
}

TEST(Net, ReadArcTestsWithoutConsuming) {
    Net net("read");
    const auto guard = net.add_place("guard", true);
    const auto src = net.add_place("src", true);
    const auto dst = net.add_place("dst", false);
    const auto t = net.add_transition("t");
    net.add_input_arc(src, t);
    net.add_output_arc(t, dst);
    net.add_read_arc(guard, t);

    Marking m = net.initial_marking();
    EXPECT_TRUE(net.is_enabled(m, t));
    net.fire(m, t);
    EXPECT_TRUE(m.get(guard.value));  // still there
    EXPECT_TRUE(m.get(dst.value));

    // Without the guard token the transition is disabled.
    Marking m2 = net.initial_marking();
    m2.set(guard.value, false);
    EXPECT_FALSE(net.is_enabled(m2, t));
}

TEST(Net, ContactFreenessBlocksMarkedPostset) {
    Net net("contact");
    const auto a = net.add_place("a", true);
    const auto b = net.add_place("b", true);  // already full
    const auto t = net.add_transition("t");
    net.add_input_arc(a, t);
    net.add_output_arc(t, b);
    EXPECT_FALSE(net.is_enabled(net.initial_marking(), t));
}

TEST(Net, SelfLoopPlaceAllowed) {
    // a transition that consumes and re-produces the same place.
    Net net("selfloop");
    const auto a = net.add_place("a", true);
    const auto t = net.add_transition("t");
    net.add_input_arc(a, t);
    net.add_output_arc(t, a);
    Marking m = net.initial_marking();
    EXPECT_TRUE(net.is_enabled(m, t));
    net.fire(m, t);
    EXPECT_TRUE(m.get(a.value));
}

TEST(Net, DuplicateArcRejected) {
    Net net("dup");
    const auto a = net.add_place("a", true);
    const auto t = net.add_transition("t");
    net.add_input_arc(a, t);
    EXPECT_THROW(net.add_input_arc(a, t), std::invalid_argument);
}

TEST(Net, FindByName) {
    const Net net = make_ring();
    EXPECT_TRUE(net.find_place("p1").has_value());
    EXPECT_FALSE(net.find_place("nope").has_value());
    EXPECT_TRUE(net.find_transition("t1").has_value());
    EXPECT_FALSE(net.find_transition("nope").has_value());
}

TEST(Net, DescribeMarkingListsNames) {
    const Net net = make_ring();
    EXPECT_EQ(net.describe_marking(net.initial_marking()), "{p0}");
}

TEST(Net, DeadlockDetection) {
    Net net("dead");
    const auto a = net.add_place("a", false);
    const auto t = net.add_transition("t");
    net.add_input_arc(a, t);
    EXPECT_TRUE(net.is_deadlocked(net.initial_marking()));
}

// ------------------------------------------------------- reachability --

TEST(Reachability, RingHasTwoStates) {
    const Net net = make_ring();
    ReachabilityExplorer explorer(net);
    EXPECT_EQ(explorer.count_states(), 2u);
}

TEST(Reachability, FindsMarkedPlaceWithShortestTrace) {
    const Net net = make_ring();
    ReachabilityExplorer explorer(net);
    const auto result = explorer.find(Predicate::marked(net, "p1"));
    ASSERT_TRUE(result.found());
    ASSERT_TRUE(result.witness_trace.has_value());
    EXPECT_EQ(result.witness_trace->firings.size(), 1u);
    EXPECT_EQ(result.witness_trace->to_string(net), "t0");
}

TEST(Reachability, GoalAtInitialStateHasEmptyTrace) {
    const Net net = make_ring();
    ReachabilityExplorer explorer(net);
    const auto result = explorer.find(Predicate::marked(net, "p0"));
    ASSERT_TRUE(result.found());
    EXPECT_TRUE(result.witness_trace->firings.empty());
}

TEST(Reachability, UnreachableGoalExploresEverything) {
    const Net net = make_ring();
    ReachabilityExplorer explorer(net);
    const auto result = explorer.find(Predicate::marked(net, "p0") &&
                                      Predicate::marked(net, "p1"));
    EXPECT_FALSE(result.found());
    EXPECT_EQ(result.states_explored, 2u);
}

TEST(Reachability, DeadlockFoundInLinearChain) {
    Net net("chain");
    const auto a = net.add_place("a", true);
    const auto b = net.add_place("b", false);
    const auto t = net.add_transition("t");
    net.add_input_arc(a, t);
    net.add_output_arc(t, b);
    ReachabilityExplorer explorer(net);
    const auto result = explorer.find_deadlocks();
    ASSERT_EQ(result.deadlocks.size(), 1u);
    EXPECT_TRUE(result.deadlocks[0].get(b.value));
    EXPECT_EQ(result.witness_trace->firings.size(), 1u);
}

TEST(Reachability, LiveRingHasNoDeadlock) {
    const Net net = make_ring();
    ReachabilityExplorer explorer(net);
    EXPECT_TRUE(explorer.find_deadlocks().deadlocks.empty());
}

TEST(Reachability, MaxStatesTruncates) {
    // A 12-bit binary counter-ish net with 12 independent toggles has
    // 2^12 states; cap below that.
    Net net("big");
    for (int i = 0; i < 12; ++i) {
        const auto p0 = net.add_place("b" + std::to_string(i) + "_0", true);
        const auto p1 = net.add_place("b" + std::to_string(i) + "_1", false);
        const auto up = net.add_transition("u" + std::to_string(i));
        const auto dn = net.add_transition("d" + std::to_string(i));
        net.add_input_arc(p0, up);
        net.add_output_arc(up, p1);
        net.add_input_arc(p1, dn);
        net.add_output_arc(dn, p0);
    }
    ReachabilityOptions options;
    options.max_states = 100;
    ReachabilityExplorer explorer(net, options);
    const auto result = explorer.explore_all();
    EXPECT_TRUE(result.truncated);
    EXPECT_LE(result.states_explored, 102u);
}

// ---------------------------------------------------------- predicate --

TEST(Predicate, ConnectivesEvaluate) {
    const Net net = make_ring();
    const Marking m = net.initial_marking();
    const auto p0 = Predicate::marked(net, "p0");
    const auto p1 = Predicate::marked(net, "p1");
    EXPECT_TRUE(p0(net, m));
    EXPECT_FALSE(p1(net, m));
    EXPECT_TRUE((p0 || p1)(net, m));
    EXPECT_FALSE((p0 && p1)(net, m));
    EXPECT_TRUE((!p1)(net, m));
}

TEST(Predicate, EnabledAtom) {
    const Net net = make_ring();
    const Marking m = net.initial_marking();
    EXPECT_TRUE(Predicate::enabled(net, "t0")(net, m));
    EXPECT_FALSE(Predicate::enabled(net, "t1")(net, m));
}

TEST(Predicate, UnknownNamesThrow) {
    const Net net = make_ring();
    EXPECT_THROW(Predicate::marked(net, "zz"), std::invalid_argument);
    EXPECT_THROW(Predicate::enabled(net, "zz"), std::invalid_argument);
}

TEST(Predicate, DescriptionComposes) {
    const Net net = make_ring();
    const auto pred =
        Predicate::marked(net, "p0") && !Predicate::marked(net, "p1");
    EXPECT_EQ(pred.description(), "($P\"p0\" & ~$P\"p1\")");
}

// -------------------------------------------------------- persistence --

TEST(Persistence, RingIsPersistent) {
    const Net net = make_ring();
    const auto result = check_persistence(net);
    EXPECT_TRUE(result.persistent());
}

TEST(Persistence, ChoiceIsNotPersistent) {
    // Two transitions compete for one token: firing either disables the
    // other.
    Net net("choice");
    const auto a = net.add_place("a", true);
    const auto b = net.add_place("b", false);
    const auto c = net.add_place("c", false);
    const auto t1 = net.add_transition("t1");
    const auto t2 = net.add_transition("t2");
    net.add_input_arc(a, t1);
    net.add_output_arc(t1, b);
    net.add_input_arc(a, t2);
    net.add_output_arc(t2, c);
    const auto result = check_persistence(net);
    ASSERT_FALSE(result.persistent());
    const auto& v = result.violations[0];
    EXPECT_NE(v.fired, v.disabled);
    EXPECT_TRUE(v.trace_to_marking.firings.empty());
    EXPECT_NE(v.to_string(net).find("disables"), std::string::npos);
}

TEST(Persistence, ExemptionSuppressesIntendedChoice) {
    Net net("choice");
    const auto a = net.add_place("a", true);
    const auto b = net.add_place("b", false);
    const auto t1 = net.add_transition("t1");
    const auto t2 = net.add_transition("t2");
    net.add_input_arc(a, t1);
    net.add_output_arc(t1, b);
    net.add_input_arc(a, t2);
    net.add_output_arc(t2, b);
    PersistenceOptions options;
    options.exempt = [](const Net&, TransitionId, TransitionId) {
        return true;
    };
    EXPECT_TRUE(check_persistence(net, options).persistent());
}

TEST(Persistence, ReadArcDisablingDetected) {
    // t_consume removes the token that t_guarded only reads.
    Net net("readhazard");
    const auto g = net.add_place("g", true);
    const auto s = net.add_place("s", true);
    const auto d = net.add_place("d", false);
    const auto sink = net.add_place("sink", false);
    const auto guarded = net.add_transition("guarded");
    net.add_input_arc(s, guarded);
    net.add_output_arc(guarded, d);
    net.add_read_arc(g, guarded);
    const auto consume = net.add_transition("consume");
    net.add_input_arc(g, consume);
    net.add_output_arc(consume, sink);
    const auto result = check_persistence(net);
    ASSERT_FALSE(result.persistent());
    EXPECT_EQ(net.transition_name(result.violations[0].fired), "consume");
    EXPECT_EQ(net.transition_name(result.violations[0].disabled), "guarded");
}

// ---------------------------------------------------------------- dot --

TEST(Dot, RendersPlacesTransitionsAndReadArcs) {
    Net net("d");
    const auto a = net.add_place("a", true);
    const auto b = net.add_place("b", false);
    const auto t = net.add_transition("go");
    net.add_input_arc(a, t);
    net.add_output_arc(t, b);
    net.add_read_arc(b, t);
    const std::string dot = to_dot(net);
    EXPECT_NE(dot.find("digraph"), std::string::npos);
    EXPECT_NE(dot.find("p_a"), std::string::npos);
    EXPECT_NE(dot.find("t_go"), std::string::npos);
    EXPECT_NE(dot.find("style=dashed"), std::string::npos);
    EXPECT_NE(dot.find("peripheries=2"), std::string::npos);
}

}  // namespace
}  // namespace rap::petri
