#include <gtest/gtest.h>

#include <deque>
#include <unordered_set>

#include "dfs/dynamics.hpp"
#include "dfs/simulator.hpp"
#include "dfs_helpers.hpp"

namespace rap::dfs {
namespace {

using testing::add_control_ring;
using testing::add_linear_pipeline;
using testing::make_fig1b;

/// Asserts the event is enabled, then applies it.
void step(const Dynamics& dyn, State& s, NodeId n, EventKind k) {
    const Event e{n, k};
    ASSERT_TRUE(dyn.is_enabled(s, e))
        << "event " << to_string(k) << " on node "
        << dyn.graph().node_name(n) << " not enabled at "
        << s.describe(dyn.graph());
    dyn.apply(s, e);
}

// ----------------------------------------------------- basic enabling --

TEST(Dynamics, SourceRegisterSelfMarks) {
    const auto m = make_fig1b();
    const Dynamics dyn(m.graph);
    const State s = State::initial(m.graph);
    // `in` has no preset: the environment can always supply a token while
    // the R-postset has space.
    EXPECT_TRUE(dyn.is_enabled(s, {m.in, EventKind::Mark}));
    // Nothing else can move yet.
    EXPECT_EQ(dyn.enabled_events(s).size(), 1u);
}

TEST(Dynamics, LogicWaitsForPresetRegisters) {
    const auto m = make_fig1b();
    const Dynamics dyn(m.graph);
    State s = State::initial(m.graph);
    EXPECT_FALSE(dyn.is_enabled(s, {m.cond, EventKind::LogicEvaluate}));
    step(dyn, s, m.in, EventKind::Mark);
    EXPECT_TRUE(dyn.is_enabled(s, {m.cond, EventKind::LogicEvaluate}));
}

TEST(Dynamics, FreeControlChoiceIsNonDeterministic) {
    const auto m = make_fig1b();
    const Dynamics dyn(m.graph);
    State s = State::initial(m.graph);
    step(dyn, s, m.in, EventKind::Mark);
    step(dyn, s, m.cond, EventKind::LogicEvaluate);
    // Fig. 4: Mt_ctrl+ and Mf_ctrl+ are simultaneously enabled.
    EXPECT_TRUE(dyn.is_enabled(s, {m.ctrl, EventKind::MarkTrue}));
    EXPECT_TRUE(dyn.is_enabled(s, {m.ctrl, EventKind::MarkFalse}));
}

TEST(Dynamics, PushFollowsControlPolarity) {
    const auto m = make_fig1b();
    const Dynamics dyn(m.graph);
    State s = State::initial(m.graph);
    step(dyn, s, m.in, EventKind::Mark);
    step(dyn, s, m.cond, EventKind::LogicEvaluate);
    step(dyn, s, m.ctrl, EventKind::MarkTrue);
    EXPECT_TRUE(dyn.is_enabled(s, {m.filt, EventKind::MarkTrue}));
    EXPECT_FALSE(dyn.is_enabled(s, {m.filt, EventKind::MarkFalse}));
}

// ------------------------------------- full True-path (compute) cycle --

TEST(Dynamics, TruePathPropagatesThroughComp) {
    const auto m = make_fig1b();
    const Dynamics dyn(m.graph);
    State s = State::initial(m.graph);

    step(dyn, s, m.in, EventKind::Mark);
    step(dyn, s, m.cond, EventKind::LogicEvaluate);
    step(dyn, s, m.ctrl, EventKind::MarkTrue);
    step(dyn, s, m.filt, EventKind::MarkTrue);
    // comp accepts the real token from the true-marked push.
    step(dyn, s, m.comp, EventKind::Mark);
    // out (pop, true-controlled) behaves like a static register.
    EXPECT_FALSE(dyn.is_enabled(s, {m.out, EventKind::MarkFalse}));
    step(dyn, s, m.out, EventKind::MarkTrue);

    // Return-to-zero wave.
    step(dyn, s, m.in, EventKind::Unmark);
    step(dyn, s, m.cond, EventKind::LogicReset);
    step(dyn, s, m.ctrl, EventKind::Unmark);
    step(dyn, s, m.filt, EventKind::Unmark);
    step(dyn, s, m.comp, EventKind::Unmark);
    step(dyn, s, m.out, EventKind::Unmark);

    EXPECT_EQ(s, State::initial(m.graph));
}

// ------------------------------------- full False-path (bypass) cycle --

TEST(Dynamics, FalsePathBypassesComp) {
    const auto m = make_fig1b();
    const Dynamics dyn(m.graph);
    State s = State::initial(m.graph);

    step(dyn, s, m.in, EventKind::Mark);
    step(dyn, s, m.cond, EventKind::LogicEvaluate);
    step(dyn, s, m.ctrl, EventKind::MarkFalse);

    // filt consumes-and-destroys; out self-produces the empty token.
    EXPECT_FALSE(dyn.is_enabled(s, {m.filt, EventKind::MarkTrue}));
    step(dyn, s, m.filt, EventKind::MarkFalse);
    step(dyn, s, m.out, EventKind::MarkFalse);

    // comp never sees the destroyed token.
    EXPECT_FALSE(dyn.is_enabled(s, {m.comp, EventKind::Mark}));

    step(dyn, s, m.in, EventKind::Unmark);
    step(dyn, s, m.cond, EventKind::LogicReset);
    // ctrl unmarks even though its postset pop is Mf-marked: the pop
    // latching a False configuration token acknowledges it.
    step(dyn, s, m.ctrl, EventKind::Unmark);
    step(dyn, s, m.filt, EventKind::Unmark);
    step(dyn, s, m.out, EventKind::Unmark);

    EXPECT_EQ(s, State::initial(m.graph));
    EXPECT_FALSE(s.marked(m.comp));
}

TEST(Dynamics, DestroyedTokenDoesNotReleaseDownstreamWait) {
    const auto m = make_fig1b();
    const Dynamics dyn(m.graph);
    State s = State::initial(m.graph);
    step(dyn, s, m.in, EventKind::Mark);
    step(dyn, s, m.cond, EventKind::LogicEvaluate);
    step(dyn, s, m.ctrl, EventKind::MarkFalse);
    step(dyn, s, m.filt, EventKind::MarkFalse);
    // The false push unmarks without comp ever marking, but only after
    // its whole R-preset (in and ctrl) has unmarked.
    EXPECT_FALSE(dyn.is_enabled(s, {m.filt, EventKind::Unmark}));
    step(dyn, s, m.out, EventKind::MarkFalse);
    step(dyn, s, m.in, EventKind::Unmark);
    step(dyn, s, m.cond, EventKind::LogicReset);
    EXPECT_FALSE(dyn.is_enabled(s, {m.filt, EventKind::Unmark}));
    step(dyn, s, m.ctrl, EventKind::Unmark);
    EXPECT_TRUE(dyn.is_enabled(s, {m.filt, EventKind::Unmark}));
}

TEST(Dynamics, SpacerDisciplinePreventsOverrun) {
    const auto m = make_fig1b();
    const Dynamics dyn(m.graph);
    State s = State::initial(m.graph);
    step(dyn, s, m.in, EventKind::Mark);
    step(dyn, s, m.cond, EventKind::LogicEvaluate);
    step(dyn, s, m.ctrl, EventKind::MarkFalse);
    step(dyn, s, m.filt, EventKind::MarkFalse);
    step(dyn, s, m.out, EventKind::MarkFalse);
    step(dyn, s, m.in, EventKind::Unmark);
    // `in` cannot re-mark while ctrl/filt still hold the previous token.
    EXPECT_FALSE(dyn.is_enabled(s, {m.in, EventKind::Mark}));
}

// -------------------------------------------------- 3-register loops --

TEST(Dynamics, ThreeRegisterControlLoopOscillates) {
    Graph g("ring3");
    const auto ring = add_control_ring(g, "loop", TokenValue::True);
    const Dynamics dyn(g);
    State s = State::initial(g);

    // One full oscillation: the token visits every register and the state
    // returns to a rotation; 6 events bring it back to the start.
    step(dyn, s, ring.c2, EventKind::MarkTrue);
    step(dyn, s, ring.c1, EventKind::Unmark);
    step(dyn, s, ring.c3, EventKind::MarkTrue);
    step(dyn, s, ring.c2, EventKind::Unmark);
    step(dyn, s, ring.c1, EventKind::MarkTrue);
    step(dyn, s, ring.c3, EventKind::Unmark);
    EXPECT_EQ(s, State::initial(g));
}

TEST(Dynamics, ControlLoopPreservesTokenPolarity) {
    Graph g("ring3f");
    const auto ring = add_control_ring(g, "loop", TokenValue::False);
    const Dynamics dyn(g);
    State s = State::initial(g);
    // Only the False polarity can propagate.
    EXPECT_FALSE(dyn.is_enabled(s, {ring.c2, EventKind::MarkTrue}));
    step(dyn, s, ring.c2, EventKind::MarkFalse);
    EXPECT_TRUE(s.marked_false(g, ring.c2));
}

TEST(Dynamics, TwoRegisterLoopDeadlocks) {
    Graph g("ring2");
    const auto c1 = g.add_control("c1", true, TokenValue::True);
    const auto c2 = g.add_control("c2", false, TokenValue::True);
    g.connect(c1, c2);
    g.connect(c2, c1);
    const Dynamics dyn(g);
    const State s = State::initial(g);
    // Section III: a token needs at least 3 registers to oscillate —
    // with 2 the R-postset of the empty register is the marked one.
    EXPECT_TRUE(dyn.is_deadlocked(s));
}

TEST(Dynamics, EmptyControlLoopDeadlocks) {
    Graph g("ring3e");
    const auto c1 = g.add_control("c1", false, TokenValue::True);
    const auto c2 = g.add_control("c2", false, TokenValue::True);
    const auto c3 = g.add_control("c3", false, TokenValue::True);
    g.connect(c1, c2);
    g.connect(c2, c3);
    g.connect(c3, c1);
    const Dynamics dyn(g);
    // No token can ever appear: each register needs its control-loop
    // predecessor marked.
    EXPECT_TRUE(dyn.is_deadlocked(State::initial(g)));
}

// -------------------------------------------------- control conflicts --

TEST(Dynamics, MixedControlsDisableNode) {
    Graph g("conflict");
    const auto in = g.add_register("in", true);
    const auto ca = g.add_control("ca", true, TokenValue::True);
    const auto cb = g.add_control("cb", true, TokenValue::False);
    const auto p = g.add_push("p");
    const auto sink = g.add_register("sink");
    g.connect(in, p);
    g.connect(ca, p);
    g.connect(cb, p);
    g.connect(p, sink);
    const Dynamics dyn(g);
    const State s = State::initial(g);
    EXPECT_FALSE(dyn.is_enabled(s, {p, EventKind::MarkTrue}));
    EXPECT_FALSE(dyn.is_enabled(s, {p, EventKind::MarkFalse}));
    const auto conflict = dyn.control_conflict(s);
    ASSERT_TRUE(conflict.has_value());
    EXPECT_EQ(*conflict, p);
}

TEST(Dynamics, NoConflictWhenControlsAgree) {
    Graph g("agree");
    const auto in = g.add_register("in", true);
    const auto ca = g.add_control("ca", true, TokenValue::True);
    const auto cb = g.add_control("cb", true, TokenValue::True);
    const auto p = g.add_push("p");
    const auto sink = g.add_register("sink");
    g.connect(in, p);
    g.connect(ca, p);
    g.connect(cb, p);
    g.connect(p, sink);
    const Dynamics dyn(g);
    const State s = State::initial(g);
    EXPECT_FALSE(dyn.control_conflict(s).has_value());
    EXPECT_TRUE(dyn.is_enabled(s, {p, EventKind::MarkTrue}));
}

// ------------------------------------------------- linear pipelines --

TEST(Dynamics, LinearPipelineStreamsTokens) {
    Graph g("linear");
    const auto regs = add_linear_pipeline(g, "p", 4);
    const Dynamics dyn(g);
    Simulator sim(dyn, 99);
    State s = State::initial(g);
    const auto stats = sim.run(s, 4000);
    EXPECT_FALSE(stats.deadlocked);
    // Every register should have passed a healthy number of tokens, and
    // conservation holds: counts are non-increasing along the pipeline
    // and differ by at most the pipeline occupancy.
    const auto first = stats.marks_at(regs.front());
    const auto last = stats.marks_at(regs.back());
    EXPECT_GT(last, 50u);
    EXPECT_GE(first, last);
    EXPECT_LE(first - last, regs.size());
}

// --------------------------------------------- equations introspection --

TEST(Dynamics, EquationAccessorsMatchEnabling) {
    const auto m = make_fig1b();
    const Dynamics dyn(m.graph);
    State s = State::initial(m.graph);
    EXPECT_TRUE(dyn.mark_set(s, m.in));
    EXPECT_FALSE(dyn.eval_set(s, m.cond));
    step(dyn, s, m.in, EventKind::Mark);
    EXPECT_TRUE(dyn.eval_set(s, m.cond));
    EXPECT_FALSE(dyn.eval_reset(s, m.cond));
}

TEST(Dynamics, ControlledPredicates) {
    const auto m = make_fig1b();
    const Dynamics dyn(m.graph);
    State s = State::initial(m.graph);
    // ctrl unmarked: neither polarity is established...
    EXPECT_FALSE(dyn.true_controlled(s, m.filt));
    EXPECT_FALSE(dyn.false_controlled(s, m.filt));
    // ...but a node with no controls is vacuously true-controlled.
    EXPECT_TRUE(dyn.true_controlled(s, m.comp));
    EXPECT_FALSE(dyn.false_controlled(s, m.comp));
    s.set_marked(m.ctrl, true, false);
    EXPECT_TRUE(dyn.false_controlled(s, m.filt));
}

// ----------------------------------------------------- random walks --

TEST(Dynamics, RandomWalkNeverDeadlocksInFig1b) {
    const auto m = make_fig1b();
    const Dynamics dyn(m.graph);
    Simulator sim(dyn, 7);
    State s = State::initial(m.graph);
    const auto stats = sim.run(s, 20000);
    EXPECT_FALSE(stats.deadlocked);
    EXPECT_FALSE(stats.conflict.has_value());
    EXPECT_GT(stats.marks_at(m.out), 100u);
}

TEST(Dynamics, TrueBiasControlsBypassFraction) {
    const auto m = make_fig1b();
    const Dynamics dyn(m.graph);
    Simulator sim(dyn, 11);
    sim.set_true_bias(0.1);  // 90% of items bypass comp
    State s = State::initial(m.graph);
    const auto stats = sim.run(s, 30000);
    const double comp_tokens = static_cast<double>(stats.marks_at(m.comp));
    const double out_tokens = static_cast<double>(stats.marks_at(m.out));
    ASSERT_GT(out_tokens, 100.0);
    EXPECT_LT(comp_tokens / out_tokens, 0.25);
    // And the False fraction at the pop is correspondingly high.
    EXPECT_GT(static_cast<double>(stats.false_marks_at(m.out)) / out_tokens,
              0.75);
}

TEST(Dynamics, TokenConservationBetweenFiltAndOut) {
    const auto m = make_fig1b();
    const Dynamics dyn(m.graph);
    Simulator sim(dyn, 13);
    State s = State::initial(m.graph);
    const auto stats = sim.run(s, 20000);
    // Every input token results in exactly one output token (real or
    // empty): counts can differ only by in-flight occupancy.
    const auto filt_tokens = stats.marks_at(m.filt);
    const auto out_tokens = stats.marks_at(m.out);
    EXPECT_NEAR(static_cast<double>(filt_tokens),
                static_cast<double>(out_tokens), 3.0);
}

// ------------------------------------------- exhaustive state search --

/// BFS over the DFS state graph (direct semantics).
std::size_t count_reachable_states(const Dynamics& dyn) {
    std::unordered_set<State, StateHash> seen;
    std::deque<State> frontier;
    const State s0 = State::initial(dyn.graph());
    seen.insert(s0);
    frontier.push_back(s0);
    while (!frontier.empty()) {
        const State s = frontier.front();
        frontier.pop_front();
        for (const Event& e : dyn.enabled_events(s)) {
            State next = s;
            dyn.apply(next, e);
            if (seen.insert(next).second) frontier.push_back(next);
        }
    }
    return seen.size();
}

TEST(Dynamics, Fig1bStateSpaceIsFiniteAndDeadlockFree) {
    const auto m = make_fig1b();
    const Dynamics dyn(m.graph);
    std::unordered_set<State, StateHash> seen;
    std::deque<State> frontier;
    const State s0 = State::initial(m.graph);
    seen.insert(s0);
    frontier.push_back(s0);
    while (!frontier.empty()) {
        const State s = frontier.front();
        frontier.pop_front();
        const auto enabled = dyn.enabled_events(s);
        EXPECT_FALSE(enabled.empty())
            << "deadlock at " << s.describe(m.graph);
        for (const Event& e : enabled) {
            State next = s;
            dyn.apply(next, e);
            if (seen.insert(next).second) frontier.push_back(next);
        }
    }
    // Sanity bound: small model, small state space.
    EXPECT_GT(seen.size(), 10u);
    EXPECT_LT(seen.size(), 500u);
}

TEST(Dynamics, ControlRingStateCountMatchesRotations) {
    Graph g("ring3");
    add_control_ring(g, "loop", TokenValue::True);
    const Dynamics dyn(g);
    // Token in one of 3 places, or transferring (two adjacent marked):
    // exactly 6 reachable states.
    EXPECT_EQ(count_reachable_states(dyn), 6u);
}

}  // namespace
}  // namespace rap::dfs
