// Tests for the compiled reachability engine: CompiledNet agreement with
// the interpreted Net semantics, the single-pass multi-goal API,
// truncation semantics, witness determinism, and the first-match witness
// guarantee.

#include <gtest/gtest.h>

#include <deque>
#include <unordered_map>

#include "petri/compiled.hpp"
#include "petri/net.hpp"
#include "petri/persistence.hpp"
#include "petri/predicate.hpp"
#include "petri/reachability.hpp"

namespace rap::petri {
namespace {

/// p0 -> t0 -> p1 -> t1 -> p0 : a two-place ring with one token.
Net make_ring() {
    Net net("ring");
    const auto p0 = net.add_place("p0", true);
    const auto p1 = net.add_place("p1", false);
    const auto t0 = net.add_transition("t0");
    const auto t1 = net.add_transition("t1");
    net.add_input_arc(p0, t0);
    net.add_output_arc(t0, p1);
    net.add_input_arc(p1, t1);
    net.add_output_arc(t1, p0);
    return net;
}

/// `n` independent two-place toggles: 2^n reachable states.
Net make_toggles(int n) {
    Net net("toggles");
    for (int i = 0; i < n; ++i) {
        const auto p0 = net.add_place("b" + std::to_string(i) + "_0", true);
        const auto p1 = net.add_place("b" + std::to_string(i) + "_1", false);
        const auto up = net.add_transition("u" + std::to_string(i));
        const auto dn = net.add_transition("d" + std::to_string(i));
        net.add_input_arc(p0, up);
        net.add_output_arc(up, p1);
        net.add_input_arc(p1, dn);
        net.add_output_arc(dn, p0);
    }
    return net;
}

/// A net exercising read arcs, contact-freeness and shared places: the
/// compiled term arrays must reproduce every enabling nuance.
Net make_mixed() {
    Net net("mixed");
    const auto guard = net.add_place("guard", true);
    const auto src = net.add_place("src", true);
    const auto mid = net.add_place("mid", false);
    const auto dst = net.add_place("dst", false);
    const auto t_move = net.add_transition("move");
    net.add_input_arc(src, t_move);
    net.add_output_arc(t_move, mid);
    net.add_read_arc(guard, t_move);
    const auto t_fwd = net.add_transition("fwd");
    net.add_input_arc(mid, t_fwd);
    net.add_output_arc(t_fwd, dst);
    const auto t_drop = net.add_transition("drop");
    net.add_input_arc(guard, t_drop);
    net.add_output_arc(t_drop, dst);
    const auto t_self = net.add_transition("self");
    net.add_input_arc(dst, t_self);
    net.add_output_arc(t_self, dst);
    return net;
}

/// Seed-style naive BFS (full rescan per state, unordered_map interning)
/// — the reference the compiled engine must agree with exactly.
std::size_t naive_count_states(const Net& net) {
    std::unordered_map<Marking, std::size_t, util::BitVecHash> seen;
    std::deque<Marking> frontier;
    const Marking m0 = net.initial_marking();
    seen.emplace(m0, 0);
    frontier.push_back(m0);
    while (!frontier.empty()) {
        const Marking current = frontier.front();
        frontier.pop_front();
        for (TransitionId t : net.enabled_transitions(current)) {
            Marking next = current;
            net.fire(next, t);
            if (seen.emplace(next, seen.size()).second) {
                frontier.push_back(next);
            }
        }
    }
    return seen.size();
}

// ------------------------------------------------------- CompiledNet --

TEST(CompiledNet, AgreesWithNetOnEveryReachableMarking) {
    for (const Net& net : {make_ring(), make_toggles(4), make_mixed()}) {
        const CompiledNet compiled(net);
        // Walk the full reachable set with the *interpreted* semantics
        // and cross-check enabledness and firing word-for-word.
        std::unordered_map<Marking, std::size_t, util::BitVecHash> seen;
        std::deque<Marking> frontier;
        const Marking m0 = net.initial_marking();
        seen.emplace(m0, 0);
        frontier.push_back(m0);
        while (!frontier.empty()) {
            const Marking current = frontier.front();
            frontier.pop_front();
            for (std::uint32_t ti = 0; ti < net.transition_count(); ++ti) {
                const TransitionId t{ti};
                ASSERT_EQ(compiled.is_enabled(current.word_data(), t),
                          net.is_enabled(current, t))
                    << net.name() << " " << net.transition_name(t) << " at "
                    << net.describe_marking(current);
                if (!net.is_enabled(current, t)) continue;
                Marking via_net = current;
                net.fire(via_net, t);
                Marking via_compiled = current;
                compiled.fire(via_compiled.word_data(), t);
                ASSERT_EQ(via_net, via_compiled);
                if (seen.emplace(via_net, seen.size()).second) {
                    frontier.push_back(via_net);
                }
            }
        }
    }
}

TEST(CompiledNet, IncrementalEnabledSetMatchesFullScan) {
    const Net net = make_mixed();
    const CompiledNet compiled(net);
    std::deque<Marking> frontier;
    std::unordered_map<Marking, std::size_t, util::BitVecHash> seen;
    const Marking m0 = net.initial_marking();
    seen.emplace(m0, 0);
    frontier.push_back(m0);
    std::vector<std::uint64_t> parent_enabled(compiled.enabled_words());
    std::vector<std::uint64_t> incremental(compiled.enabled_words());
    std::vector<std::uint64_t> full(compiled.enabled_words());
    while (!frontier.empty()) {
        const Marking current = frontier.front();
        frontier.pop_front();
        compiled.enabled_set(current.word_data(), parent_enabled.data());
        for (std::uint32_t ti = 0; ti < net.transition_count(); ++ti) {
            const TransitionId t{ti};
            if (!net.is_enabled(current, t)) continue;
            Marking next = current;
            net.fire(next, t);
            incremental = parent_enabled;
            compiled.update_enabled(next.word_data(), t, incremental.data());
            compiled.enabled_set(next.word_data(), full.data());
            EXPECT_EQ(incremental, full)
                << "after " << net.transition_name(t);
            if (seen.emplace(next, seen.size()).second) {
                frontier.push_back(next);
            }
        }
    }
}

TEST(CompiledNet, StateCountsMatchNaiveExploration) {
    for (const Net& net : {make_ring(), make_toggles(6), make_mixed()}) {
        ReachabilityExplorer explorer(net);
        EXPECT_EQ(explorer.count_states(), naive_count_states(net))
            << net.name();
    }
}

// ------------------------------------------------------ MarkingStore --

TEST(MarkingStore, InternsDedupesAndEnforcesCapacity) {
    MarkingStore store(2);
    const std::uint64_t a[2] = {1, 2};
    const std::uint64_t b[2] = {3, 4};
    const auto ra = store.intern(a, 2);
    EXPECT_TRUE(ra.inserted);
    EXPECT_EQ(ra.id, 0u);
    const auto ra2 = store.intern(a, 2);
    EXPECT_FALSE(ra2.inserted);
    EXPECT_EQ(ra2.id, 0u);
    const auto rb = store.intern(b, 2);
    EXPECT_TRUE(rb.inserted);
    EXPECT_EQ(rb.id, 1u);
    const std::uint64_t c[2] = {5, 6};
    const auto rc = store.intern(c, 2);  // over capacity
    EXPECT_FALSE(rc.inserted);
    EXPECT_EQ(rc.id, MarkingStore::kNone);
    EXPECT_EQ(store.size(), 2u);
    EXPECT_EQ(store[1][0], 3u);
}

TEST(MarkingStore, SurvivesGrowthRehash) {
    MarkingStore store(1);
    for (std::uint64_t i = 0; i < 5000; ++i) {
        const auto r = store.intern(&i, SIZE_MAX);
        ASSERT_TRUE(r.inserted);
        ASSERT_EQ(r.id, i);
    }
    for (std::uint64_t i = 0; i < 5000; ++i) {
        const auto r = store.intern(&i, SIZE_MAX);
        ASSERT_FALSE(r.inserted);
        ASSERT_EQ(r.id, i);
    }
}

TEST(MarkingStore, MetaWordsLiveInTheRecord) {
    // Records carry caller-owned meta words after the marking payload:
    // zeroed on intern, untouched by dedup hits, stable across table
    // growth (the arena never moves records). The reachability engines
    // keep predecessor links here, so trace rebuilding must not depend on
    // any side array staying aligned with insertion order.
    MarkingStore store(1, /*meta_words=*/2);
    ASSERT_EQ(store.meta_words(), 2u);
    for (std::uint64_t i = 0; i < 3000; ++i) {
        const auto r = store.intern(&i, SIZE_MAX);
        ASSERT_TRUE(r.inserted);
        EXPECT_EQ(store.meta(r.id)[0], 0u);
        store.meta(r.id)[0] = i * 2 + 1;
        store.meta(r.id)[1] = ~i;
    }
    for (std::uint64_t i = 0; i < 3000; ++i) {
        const auto r = store.intern(&i, SIZE_MAX);  // dedup after rehashes
        ASSERT_FALSE(r.inserted);
        EXPECT_EQ(store[r.id][0], i);              // payload intact
        EXPECT_EQ(store.meta(r.id)[0], i * 2 + 1);  // meta intact
        EXPECT_EQ(store.meta(r.id)[1], ~i);
    }
}

// -------------------------------------------------------- truncation --

TEST(Reachability, TruncationMidExpansionReportsExactStateCount) {
    // 2^12 states, capped at 100: the cap lands mid-expansion of some
    // frontier state. The engine must report truncated with
    // states_explored == max_states exactly (discovered states, no
    // overshoot, no undershoot).
    const Net net = make_toggles(12);
    ReachabilityOptions options;
    options.max_states = 100;
    ReachabilityExplorer explorer(net, options);
    const auto result = explorer.explore_all();
    EXPECT_TRUE(result.truncated);
    EXPECT_EQ(result.states_explored, 100u);
}

TEST(Reachability, TruncationConsistentAcrossQueryShapes) {
    const Net net = make_toggles(12);
    ReachabilityOptions options;
    options.max_states = 64;
    for (int shape = 0; shape < 3; ++shape) {
        ReachabilityExplorer explorer(net, options);
        ReachabilityResult result;
        switch (shape) {
            case 0: result = explorer.explore_all(); break;
            case 1: result = explorer.find_deadlocks(); break;
            default: {
                // An unreachable goal: all toggles simultaneously "up"
                // is reachable, so use an impossible conjunction.
                const auto goal = Predicate::marked(net, "b0_0") &&
                                  Predicate::marked(net, "b0_1");
                result = explorer.find(goal);
                break;
            }
        }
        EXPECT_TRUE(result.truncated) << shape;
        EXPECT_EQ(result.states_explored, 64u) << shape;
        EXPECT_FALSE(result.found()) << shape;
    }
}

TEST(Reachability, NoTruncationAtExactFit) {
    const Net net = make_toggles(5);  // exactly 32 states
    ReachabilityOptions options;
    options.max_states = 32;
    ReachabilityExplorer explorer(net, options);
    const auto result = explorer.explore_all();
    EXPECT_FALSE(result.truncated);
    EXPECT_EQ(result.states_explored, 32u);
}

// ---------------------------------------------------------- find_all --

TEST(Reachability, FindAllAnswersEveryGoalInOnePass) {
    const Net net = make_mixed();
    const auto g_dst = Predicate::marked(net, "dst");
    const auto g_mid = Predicate::marked(net, "mid");
    const auto g_dead = Predicate::deadlock();
    const auto g_never =
        Predicate::marked(net, "src") && Predicate::marked(net, "mid");
    const Predicate* goals[] = {&g_dst, &g_mid, &g_dead, &g_never};

    ReachabilityExplorer explorer(net);
    const auto results = explorer.find_all(goals);
    ASSERT_EQ(results.size(), 4u);

    EXPECT_TRUE(results[0].found());
    EXPECT_TRUE(results[1].found());
    // The self-loop on dst keeps every dst-holding state live, and the
    // remaining states always offer move/fwd/drop: no deadlock.
    EXPECT_FALSE(results[2].found());
    EXPECT_FALSE(results[3].found());  // move consumes src before mid fills

    // Witnesses are BFS-shortest per goal.
    EXPECT_EQ(results[1].witness_trace->to_string(net), "move");

    // Every result reports the same shared pass counters.
    for (const auto& r : results) {
        EXPECT_EQ(r.states_explored, results[0].states_explored);
        EXPECT_EQ(r.edges_explored, results[0].edges_explored);
        EXPECT_FALSE(r.truncated);
    }
}

TEST(Reachability, FindAllMatchesIndividualFinds) {
    const Net net = make_toggles(5);
    const auto g1 = Predicate::marked(net, "b3_1");
    const auto g2 = Predicate::marked(net, "b0_1") &&
                    Predicate::marked(net, "b4_1");
    const Predicate* goals[] = {&g1, &g2};

    ReachabilityExplorer multi(net);
    const auto together = multi.find_all(goals);

    ReachabilityExplorer single(net);
    const auto alone1 = single.find(g1);
    const auto alone2 = single.find(g2);

    ASSERT_TRUE(together[0].found());
    ASSERT_TRUE(together[1].found());
    EXPECT_EQ(together[0].witness_trace->firings.size(),
              alone1.witness_trace->firings.size());
    EXPECT_EQ(together[1].witness_trace->firings.size(),
              alone2.witness_trace->firings.size());
    EXPECT_EQ(*together[0].witness, *alone1.witness);
}

TEST(Reachability, RunQueryCombinesGoalsDeadlocksAndPersistence) {
    // Choice net: firing either competitor disables the other, and the
    // sink state is a deadlock.
    Net net("choice");
    const auto a = net.add_place("a", true);
    const auto b = net.add_place("b", false);
    const auto c = net.add_place("c", false);
    const auto t1 = net.add_transition("t1");
    const auto t2 = net.add_transition("t2");
    net.add_input_arc(a, t1);
    net.add_output_arc(t1, b);
    net.add_input_arc(a, t2);
    net.add_output_arc(t2, c);

    const auto goal = Predicate::marked(net, "c");
    MultiQuery query;
    query.goals = {&goal};
    query.collect_deadlocks = true;
    query.check_persistence = true;

    ReachabilityExplorer explorer(net);
    const auto multi = explorer.run_query(query);
    EXPECT_EQ(multi.states_explored, 3u);
    ASSERT_EQ(multi.goals.size(), 1u);
    EXPECT_TRUE(multi.goals[0].witness.has_value());
    EXPECT_EQ(multi.deadlocks.size(), 2u);  // {b} and {c}
    ASSERT_FALSE(multi.persistence_violations.empty());
    EXPECT_NE(multi.persistence_violations[0].fired,
              multi.persistence_violations[0].disabled);
}

TEST(Reachability, SharedPassPersistenceMatchesStandalone) {
    const Net net = make_mixed();
    const auto standalone = check_persistence(net);

    MultiQuery query;
    query.check_persistence = true;
    query.persistence_stop_at_first = true;
    ReachabilityExplorer explorer(net);
    const auto multi = explorer.run_query(query);

    ASSERT_EQ(standalone.violations.empty(),
              multi.persistence_violations.empty());
    if (!standalone.violations.empty()) {
        EXPECT_EQ(standalone.violations[0].fired,
                  multi.persistence_violations[0].fired);
        EXPECT_EQ(standalone.violations[0].disabled,
                  multi.persistence_violations[0].disabled);
    }
}

// ------------------------------------------------- first-match witness --

TEST(Reachability, ExhaustiveSearchKeepsFirstWitness) {
    // dst is first reachable via the one-step "drop" firing; deeper
    // matches (via move -> fwd) must NOT overwrite the witness when the
    // exploration continues past the first match.
    const Net net = make_mixed();
    ReachabilityOptions options;
    options.stop_at_first_match = false;
    ReachabilityExplorer explorer(net, options);
    const auto result = explorer.find(Predicate::marked(net, "dst"));
    ASSERT_TRUE(result.found());
    ASSERT_TRUE(result.witness_trace.has_value());
    EXPECT_EQ(result.witness_trace->firings.size(), 1u);
    EXPECT_EQ(result.witness_trace->to_string(net), "drop");
    // The pass itself ran to exhaustion.
    EXPECT_EQ(result.states_explored, naive_count_states(net));
}

// ------------------------------------------------------- determinism --

TEST(Reachability, TracesDeterministicAcrossRuns) {
    const Net net = make_toggles(6);
    const auto goal = Predicate::marked(net, "b2_1") &&
                      Predicate::marked(net, "b5_1");
    std::vector<TransitionId> first_firings;
    std::size_t first_states = 0;
    for (int run = 0; run < 3; ++run) {
        ReachabilityExplorer explorer(net);
        const auto result = explorer.find(goal);
        ASSERT_TRUE(result.found());
        if (run == 0) {
            first_firings = result.witness_trace->firings;
            first_states = result.states_explored;
        } else {
            EXPECT_EQ(result.witness_trace->firings, first_firings);
            EXPECT_EQ(result.states_explored, first_states);
        }
    }
}

TEST(Reachability, WitnessTracesReplayFromPredecessorRecords) {
    // Regression for the in-record predecessor links: every reported
    // witness trace must replay firing-by-firing from the initial
    // marking and land exactly on its witness. A predecessor link that
    // silently depended on store insertion order (the old side-array
    // scheme) breaks this the moment records are visited out of order.
    for (const Net& net : {make_ring(), make_toggles(6), make_mixed()}) {
        ReachabilityOptions options;
        options.stop_at_first_match = false;  // witnesses kept, pass runs on
        ReachabilityExplorer explorer(net, options);
        for (std::uint32_t pi = 0; pi < net.place_count(); ++pi) {
            const auto goal =
                Predicate::marked(net, net.place_name(PlaceId{pi}));
            const auto result = explorer.find(goal);
            if (!result.found()) continue;
            ASSERT_TRUE(result.witness_trace.has_value());
            Marking m = net.initial_marking();
            for (const TransitionId t : result.witness_trace->firings) {
                ASSERT_TRUE(net.is_enabled(m, t))
                    << net.name() << ": trace fires disabled "
                    << net.transition_name(t);
                net.fire(m, t);
            }
            EXPECT_EQ(m, *result.witness)
                << net.name() << " goal " << net.place_name(PlaceId{pi});
        }
    }
}

TEST(Reachability, ExplorerInstanceIsReusable) {
    const Net net = make_ring();
    ReachabilityExplorer explorer(net);
    EXPECT_EQ(explorer.count_states(), 2u);
    const auto found = explorer.find(Predicate::marked(net, "p1"));
    EXPECT_TRUE(found.found());
    EXPECT_EQ(explorer.count_states(), 2u);
}

// --------------------------------------------------- memory accounting --

/// `n` toggles plus `dead` permanently disabled transitions. The dead
/// transitions all consume one never-marked place, so they never fire and
/// change nothing about the reachable set — but they widen every
/// enabled-set row, making the frontier cache's transient rows the
/// dominant memory term instead of the interned store.
Net make_wide_toggles(int n, int dead) {
    Net net = make_toggles(n);
    const auto never = net.add_place("never", false);
    for (int i = 0; i < dead; ++i) {
        const auto t = net.add_transition("dead" + std::to_string(i));
        net.add_input_arc(never, t);
    }
    return net;
}

TEST(Reachability, PeakMemoryCapturesMidPassFrontierSpike) {
    // Regression: the sequential engine used to sample peak memory only
    // at frontier-release boundaries, so enabled-row blocks allocated
    // and given back *between* two boundaries never showed up in
    // peak_bytes and the reported peak collapsed to the end-of-pass
    // resident footprint. 15 toggles give 2^15 states in a binomial
    // layer profile whose widest live window holds ~12k rows; 4066 dead
    // transitions fatten each row to 64 words, so the transient rows
    // dwarf both the interned store and the single row block still
    // resident after the last layer drains. A correct sampler must
    // therefore report a peak strictly above the final resident bytes.
    const Net net = make_wide_toggles(15, 4066);
    ReachabilityOptions options;
    options.max_states = std::size_t{1} << 16;
    options.frontier_enabled_cache = true;
    ReachabilityExplorer explorer(net, options);
    const auto result = explorer.explore_all();
    ASSERT_EQ(result.states_explored, std::size_t{1} << 15);
    ASSERT_FALSE(result.truncated);
    EXPECT_GT(result.memory.peak_bytes, result.memory.resident_bytes);

    // The same pass without the diet keeps every row resident, which
    // bounds the dieted peak from above: the spike the sampler reports
    // is a genuine intermediate, not the whole undieted cache.
    ReachabilityOptions no_diet = options;
    no_diet.frontier_enabled_cache = false;
    ReachabilityExplorer reference(net, no_diet);
    const auto full = reference.explore_all();
    ASSERT_EQ(full.states_explored, result.states_explored);
    EXPECT_LT(result.memory.peak_bytes, full.memory.resident_bytes);
}

}  // namespace
}  // namespace rap::petri
