#include <gtest/gtest.h>

#include <set>

#include "chip/chip.hpp"
#include "chip/lfsr.hpp"

namespace rap::chip {
namespace {

// --------------------------------------------------------------- LFSR --

TEST(Lfsr, ZeroSeedMappedToDefault) {
    Lfsr a(0), b(0xACE1);
    for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Lfsr, DeterministicPerSeed) {
    Lfsr a(123), b(123), c(124);
    bool diverged = false;
    for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(a.next(), b.next());
        diverged |= (a.state() != c.state());
        c.next();
    }
    EXPECT_TRUE(diverged);
}

TEST(Lfsr, MaximalPeriod) {
    Lfsr lfsr(1);
    const std::uint16_t start = lfsr.state();
    std::uint32_t period = 0;
    do {
        lfsr.next();
        ++period;
    } while (lfsr.state() != start && period <= 70000);
    EXPECT_EQ(period, Lfsr::period());
}

TEST(Lfsr, NeverReachesZero) {
    Lfsr lfsr(42);
    for (int i = 0; i < 70000; ++i) {
        EXPECT_NE(lfsr.next(), 0u);
    }
}

// ------------------------------------------------------ functional mode --

TEST(Chip, RandomModeChecksumMatchesBehaviouralModel) {
    // Section IV: "the produced checksum is validated against the output
    // of the OPE behavioural model initialised with the same seed and
    // count parameters".
    for (const int depth : {3, 7, 18}) {
        ChipOptions options;
        options.core = Core::Reconfigurable;
        options.depth = depth;
        const auto result = run_random_mode(options, 0x5EED, 5000);
        EXPECT_EQ(result.checksum, reference_checksum(depth, 0x5EED, 5000))
            << "depth " << depth;
        EXPECT_EQ(result.items, 5000u);
        EXPECT_EQ(result.rank_lists, 5000u - depth + 1);
    }
}

TEST(Chip, StaticCoreChecksumMatchesReconfigurableAtFullDepth) {
    ChipOptions st;
    st.core = Core::Static;
    ChipOptions rc;
    rc.core = Core::Reconfigurable;
    rc.depth = 18;
    EXPECT_EQ(run_random_mode(st, 7, 3000).checksum,
              run_random_mode(rc, 7, 3000).checksum);
}

TEST(Chip, ChecksumDependsOnSeedAndCount) {
    ChipOptions options;
    std::set<std::uint64_t> checksums;
    checksums.insert(run_random_mode(options, 1, 1000).checksum);
    checksums.insert(run_random_mode(options, 2, 1000).checksum);
    checksums.insert(run_random_mode(options, 1, 1001).checksum);
    EXPECT_EQ(checksums.size(), 3u);
}

TEST(Chip, NormalModeStreamsRankLists) {
    ChipOptions options;
    options.core = Core::Reconfigurable;
    options.depth = 6;
    const std::vector<std::int64_t> stream = {3, 1, 4, 1, 5, 9, 2, 6};
    const auto outputs = run_normal_mode(options, stream);
    ASSERT_EQ(outputs.size(), 3u);
    EXPECT_EQ(outputs[0], (std::vector<int>{3, 1, 4, 2, 5, 6}));
    EXPECT_EQ(outputs[2], (std::vector<int>{3, 1, 4, 6, 2, 5}));
}

TEST(Chip, OptionValidation) {
    ChipOptions bad_static;
    bad_static.core = Core::Static;
    bad_static.depth = 10;
    EXPECT_THROW(run_random_mode(bad_static, 1, 10), std::invalid_argument);
    ChipOptions bad_depth;
    bad_depth.core = Core::Reconfigurable;
    bad_depth.depth = 2;
    EXPECT_THROW(run_random_mode(bad_depth, 1, 10), std::invalid_argument);
}

// ---------------------------------------------------------- evaluation --

ChipOptions small_static() {
    ChipOptions options;
    options.stages = 6;
    options.depth = 6;
    options.core = Core::Static;
    return options;
}

ChipOptions small_reconfig(int depth,
                           netlist::SyncTopology sync =
                               netlist::SyncTopology::DaisyChain) {
    ChipOptions options;
    options.stages = 6;
    options.depth = depth;
    options.core = Core::Reconfigurable;
    options.sync = sync;
    return options;
}

TEST(Evaluation, MeasurementProducesPlausibleNumbers) {
    const Evaluation chip(small_static());
    const auto m = chip.measure(1.2, 200);
    EXPECT_EQ(m.items, 200u);
    EXPECT_FALSE(m.frozen);
    EXPECT_FALSE(m.deadlocked);
    EXPECT_GT(m.time_s, 0.0);
    EXPECT_GT(m.dynamic_j, 0.0);
    EXPECT_GT(m.leakage_j, 0.0);
    EXPECT_GT(m.time_per_item_s(), 0.0);
    EXPECT_GT(m.energy_per_item_j(), 0.0);
}

TEST(Evaluation, LowerVoltageSlowerButThriftier) {
    const Evaluation chip(small_static());
    const auto nominal = chip.measure(1.2, 150);
    const auto low = chip.measure(0.6, 150);
    EXPECT_GT(low.time_s, nominal.time_s * 2);
    EXPECT_LT(low.dynamic_j, nominal.dynamic_j);
}

TEST(Evaluation, ReconfigurableCostsTimeAndEnergy) {
    const Evaluation st(small_static());
    const Evaluation rc(small_reconfig(6));
    const auto ms = st.measure(1.2, 300);
    const auto mr = rc.measure(1.2, 300);
    // Fig. 9a: the daisy-chained reconfigurable core pays in time and a
    // little in energy at equal depth.
    EXPECT_GT(mr.time_per_item_s(), ms.time_per_item_s() * 1.05);
    EXPECT_GT(mr.energy_per_item_j(), ms.energy_per_item_j());
}

TEST(Evaluation, TreeSyncCutsTheOverhead) {
    const Evaluation daisy(small_reconfig(6));
    const Evaluation tree(
        small_reconfig(6, netlist::SyncTopology::Tree));
    const auto md = daisy.measure(1.2, 300);
    const auto mt = tree.measure(1.2, 300);
    EXPECT_LT(mt.time_per_item_s(), md.time_per_item_s());
}

TEST(Evaluation, DeeperConfigurationTakesLongerAndMoreEnergy) {
    const Evaluation shallow(small_reconfig(3));
    const Evaluation deep(small_reconfig(6));
    const auto m3 = shallow.measure(1.2, 300);
    const auto m6 = deep.measure(1.2, 300);
    EXPECT_GT(m6.time_per_item_s(), m3.time_per_item_s());
    EXPECT_GT(m6.energy_per_item_j(), m3.energy_per_item_j());
}

TEST(Evaluation, FreezeAndRecoverCompletesTheRun) {
    const Evaluation chip(small_static());
    // Budget the schedule from a nominal calibration run.
    const auto nominal = chip.measure(1.2, 100);
    tech::VoltageSchedule schedule;
    schedule.add_segment(nominal.time_s * 0.2, 1.2);
    schedule.add_segment(nominal.time_s * 5.0, 0.30);  // frozen
    schedule.add_segment(1.0, 1.2);                    // recover
    const auto stats = chip.measure_with_schedule(
        schedule, 100, /*trace_bin_s=*/0.0, /*max_time_s=*/1e9);
    EXPECT_FALSE(stats.frozen);
    EXPECT_EQ(stats.marks_at(chip.model().out), 100u);
    EXPECT_GT(stats.time_s, nominal.time_s * 5.0);
}

TEST(Evaluation, ImplementationStatsReflectCore) {
    const Evaluation st(small_static());
    const Evaluation rc(small_reconfig(6));
    EXPECT_EQ(st.implementation_stats().pushes, 0);
    EXPECT_GT(rc.implementation_stats().pushes, 0);
    EXPECT_GT(rc.implementation_stats().total_gates,
              st.implementation_stats().total_gates);
}

TEST(Evaluation, PaperCalibrationMapsReference) {
    const Evaluation chip(small_static());
    const auto nominal = chip.measure(1.2, 200);
    const auto cal = PaperCalibration::from(nominal);
    // Applying the calibration to the calibrating measurement itself must
    // land exactly on the paper's reference values.
    const double items_ratio =
        PaperCalibration::kReferenceItems /
        static_cast<double>(nominal.items);
    EXPECT_NEAR(nominal.time_s * items_ratio * cal.time_scale,
                PaperCalibration::kReferenceTimeS, 1e-9);
    EXPECT_NEAR(nominal.energy_j() * items_ratio * cal.energy_scale,
                PaperCalibration::kReferenceEnergyJ, 1e-12);
}

TEST(Evaluation, CalibrationDegenerateInputsSafe) {
    const auto cal = PaperCalibration::from(Measurement{});
    EXPECT_EQ(cal.time_scale, 1.0);
    EXPECT_EQ(cal.energy_scale, 1.0);
}

}  // namespace
}  // namespace rap::chip
