// Soak target for the deep OPE configurations — the ~19M-state 4-stage
// reconfigurable pipeline the ROADMAP names as the explicit-state
// ceiling. Registered under the ctest label `soak` and gated on
// RAP_SOAK=1 so tier-1 `ctest -j` runs skip it in milliseconds while the
// nightly/manual CI job (`RAP_SOAK=1 ctest -L soak`) exercises the full
// exploration: exact state count, clean verdicts, and the memory diet's
// >= 35% record-byte reduction against the pre-diet layout.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>

#include "dfs/translate.hpp"
#include "ope/dfs_models.hpp"
#include "petri/checkpoint.hpp"
#include "petri/compiled.hpp"
#include "petri/parallel.hpp"
#include "petri/predicate.hpp"
#include "petri/reachability.hpp"

namespace rap::petri {
namespace {

/// Reachable markings of build_reconfigurable_ope_dfs(4, 4), measured by
/// the sequential engine and pinned here: the parallel pass must
/// reproduce it exactly, making the soak a differential test at a scale
/// the tier-1 fixtures cannot afford.
constexpr std::size_t kFourStageOpeStates = 19'095'912;
constexpr std::size_t kFourStageOpeEdges = 137'589'840;

TEST(Soak, FourStageOpeExploresNineteenMillionStates) {
    if (std::getenv("RAP_SOAK") == nullptr) {
        GTEST_SKIP() << "set RAP_SOAK=1 to run the 19M-state soak "
                        "(nightly/manual CI, ctest -L soak)";
    }

    const auto p = ope::build_reconfigurable_ope_dfs(4, 4);
    const auto tr = dfs::to_petri(p.graph);
    const CompiledNet compiled(tr.net);

    ReachabilityOptions options;
    options.max_states = 25'000'000;
    options.stop_at_first_match = false;
    options.threads = 4;  // pinned: the parallel engine even on 1 core

    // RAP_SOAK_CHECKPOINT=<path>: serialize a StoreCheckpoint there every
    // BFS layer and, when the previous nightly left one behind (the CI
    // job restores it from the artifact store), resume from it — the
    // continued pass must land on exactly the same pinned counts, which
    // makes every nightly a checkpoint/resume differential at full scale.
    const char* ckpt_path = std::getenv("RAP_SOAK_CHECKPOINT");
    if (ckpt_path != nullptr) {
        options.checkpoint_path = ckpt_path;
        if (std::ifstream(ckpt_path, std::ios::binary).good()) {
            options.resume = std::make_shared<const StoreCheckpoint>(
                StoreCheckpoint::load(ckpt_path));
            std::printf("soak: resuming from checkpoint '%s' (%llu of "
                        "%llu records expanded)\n",
                        ckpt_path,
                        static_cast<unsigned long long>(
                            options.resume->head),
                        static_cast<unsigned long long>(
                            options.resume->record_count));
        }
    }
    ParallelReachabilityExplorer explorer(compiled, options);

    // Deadlock goal + collection keeps the canonical-min witness
    // maintenance on the hot path at full scale (a bare explore would
    // skip it).
    const Predicate dead = Predicate::deadlock();
    MultiQuery query;
    query.goals = {&dead};
    query.collect_deadlocks = true;
    const auto result = explorer.run_query(query);

    EXPECT_FALSE(result.truncated);
    EXPECT_EQ(result.states_explored, kFourStageOpeStates);
    EXPECT_EQ(result.edges_explored, kFourStageOpeEdges);
    EXPECT_FALSE(result.goals[0].found()) << "4-stage OPE deadlocked";
    EXPECT_TRUE(result.deadlocks.empty());

    // Memory diet acceptance: records carry marking + 2 witness meta
    // words; the pre-diet layout kept the enabled bitset in every record
    // too. Resident record bytes must be >= 35% below that layout.
    const std::size_t record_words = compiled.marking_words() + 2;
    const std::size_t pre_diet_bytes =
        result.memory.records *
        (record_words + compiled.enabled_words()) * sizeof(std::uint64_t);
    EXPECT_EQ(result.memory.records, kFourStageOpeStates);
    EXPECT_LE(result.memory.record_bytes,
              (pre_diet_bytes * 65) / 100)
        << "memory diet regressed below the 35% reduction target";
    std::printf(
        "soak: %zu states, %zu edges; record bytes %zu (pre-diet layout "
        "%zu, -%.1f%%), resident %zu, peak %zu\n",
        result.states_explored, result.edges_explored,
        result.memory.record_bytes, pre_diet_bytes,
        100.0 * (1.0 - static_cast<double>(result.memory.record_bytes) /
                           static_cast<double>(pre_diet_bytes)),
        result.memory.resident_bytes, result.memory.peak_bytes);

    // The same pass under partial-order reduction: verdicts must hold at
    // full scale, and the reduced state count is recorded next to the
    // 19M-state pin so nightly logs track the reduction as the stubborn
    // heuristic evolves (no pinned count — the ratio is the bench_por /
    // compare.py --por gate's job).
    options.por = true;
    // The reduced pass explores a different (smaller) state set: its
    // checkpoint must never overwrite — or resume from — the full pass's.
    options.checkpoint_path.clear();
    options.resume = nullptr;
    ParallelReachabilityExplorer reduced_explorer(compiled, options);
    const auto reduced = reduced_explorer.run_query(query);
    EXPECT_FALSE(reduced.truncated);
    EXPECT_FALSE(reduced.goals[0].found());
    EXPECT_TRUE(reduced.deadlocks.empty());
    EXPECT_TRUE(reduced.por.active);
    EXPECT_LE(reduced.states_explored, kFourStageOpeStates);
    std::printf(
        "soak (por): %zu states (%.2fx reduction), %zu edges, %zu of %zu "
        "transition firings ignored\n",
        reduced.states_explored,
        static_cast<double>(kFourStageOpeStates) /
            static_cast<double>(reduced.states_explored),
        reduced.edges_explored, reduced.por.ignored(),
        reduced.por.enabled_transitions);
}

}  // namespace
}  // namespace rap::petri
