// Edge-case suite for the dynamic-extension equations (Eq. 3/4/5) in
// compound topologies: push gating across logic, multi-pop release rules,
// polarity propagation through logic paths, and destroyed-token
// containment invariants checked over whole reachable state spaces.

#include <gtest/gtest.h>

#include <deque>
#include <unordered_set>

#include "dfs/dynamics.hpp"
#include "dfs/model.hpp"

namespace rap::dfs {
namespace {

void apply_named(const Dynamics& dyn, State& s, const Graph& g,
                 const char* node, EventKind kind) {
    const Event e{*g.find(node), kind};
    ASSERT_TRUE(dyn.is_enabled(s, e))
        << node << " " << to_string(kind) << " at " << s.describe(g);
    dyn.apply(s, e);
}

/// Exhaustive BFS asserting an invariant at every reachable state.
template <typename Invariant>
void for_all_reachable(const Dynamics& dyn, Invariant&& check) {
    std::unordered_set<State, StateHash> seen;
    std::deque<State> frontier;
    const State s0 = State::initial(dyn.graph());
    seen.insert(s0);
    frontier.push_back(s0);
    while (!frontier.empty()) {
        const State s = frontier.front();
        frontier.pop_front();
        check(s);
        for (const Event& e : dyn.enabled_events(s)) {
            State next = s;
            dyn.apply(next, e);
            if (seen.insert(next).second) frontier.push_back(next);
        }
    }
}

// Eq. 3: a false-marked push upstream of *logic* must block evaluation.
TEST(SemanticsEdge, DestroyedTokenNeverEvaluatesLogic) {
    Graph g("push_logic");
    const auto in = g.add_register("in");
    // Polarity-preserving ring keeps the stage bypassed forever.
    const auto c = g.add_control("c", true, TokenValue::False);
    const auto c2 = g.add_control("c2", false, TokenValue::False);
    const auto c3 = g.add_control("c3", false, TokenValue::False);
    g.connect(c, c2);
    g.connect(c2, c3);
    g.connect(c3, c);
    const auto p = g.add_push("p");
    const auto f = g.add_logic("f");
    const auto r = g.add_register("r");
    g.connect(in, p);
    g.connect(c, p);
    g.connect(p, f);
    g.connect(f, r);
    const Dynamics dyn(g);
    for_all_reachable(dyn, [&](const State& s) {
        if (s.marked_false(g, *g.find("p"))) {
            EXPECT_FALSE(s.logic_evaluated(*g.find("f")))
                << s.describe(g);
        }
        // Nothing ever reaches r while the stage is bypassed.
        EXPECT_FALSE(s.marked(*g.find("r"))) << s.describe(g);
    });
}

// Eq. 4: a register with two pops in its R-postset releases its token
// only when *both* latched it as real.
TEST(SemanticsEdge, MultiPopReleaseNeedsAllTrue) {
    Graph g("two_pops");
    const auto src = g.add_register("src", true);
    const auto ct = g.add_control("ct", true, TokenValue::True);
    const auto cf = g.add_control("cf", true, TokenValue::False);
    const auto qa = g.add_pop("qa");
    const auto qb = g.add_pop("qb");
    g.connect(src, qa);
    g.connect(src, qb);
    g.connect(ct, qa);
    g.connect(cf, qb);
    const Dynamics dyn(g);
    State s = State::initial(g);
    apply_named(dyn, s, g, "qa", EventKind::MarkTrue);   // takes the token
    apply_named(dyn, s, g, "qb", EventKind::MarkFalse);  // self-produces
    // Both pops marked, but qb holds an empty token: src must keep its
    // token.
    EXPECT_FALSE(dyn.is_enabled(s, {src, EventKind::Unmark}));
    (void)qa;
    (void)qb;
}

// Eq. 5 polarity copy works through a logic path, not just direct arcs.
TEST(SemanticsEdge, PolarityPropagatesThroughLogicPath) {
    Graph g("ctrl_logic_ctrl");
    const auto c1 = g.add_control("c1", true, TokenValue::False);
    const auto f = g.add_logic("f");
    const auto c2 = g.add_control("c2", false, TokenValue::True);
    const auto sink = g.add_register("sink");
    g.connect(c1, f);
    g.connect(f, c2);
    g.connect(c2, sink);
    const Dynamics dyn(g);
    State s = State::initial(g);
    apply_named(dyn, s, g, "f", EventKind::LogicEvaluate);
    // c2's control preset is {c1} via the logic path: only the False
    // polarity can latch.
    EXPECT_FALSE(dyn.is_enabled(s, {c2, EventKind::MarkTrue}));
    EXPECT_TRUE(dyn.is_enabled(s, {c2, EventKind::MarkFalse}));
}

// A pop's empty token *does* evaluate downstream logic (only pushes gate
// logic in Eq. 3) — that is how bypassed stages complete the aggregation.
TEST(SemanticsEdge, EmptyTokenEvaluatesDownstreamLogic) {
    Graph g("pop_logic");
    const auto src = g.add_register("src");
    const auto c = g.add_control("c", true, TokenValue::False);
    const auto q = g.add_pop("q");
    const auto f = g.add_logic("f");
    const auto r = g.add_register("r");
    g.connect(src, q);
    g.connect(c, q);
    g.connect(q, f);
    g.connect(f, r);
    const Dynamics dyn(g);
    State s = State::initial(g);
    apply_named(dyn, s, g, "q", EventKind::MarkFalse);
    EXPECT_TRUE(dyn.is_enabled(s, {f, EventKind::LogicEvaluate}));
    apply_named(dyn, s, g, "f", EventKind::LogicEvaluate);
    EXPECT_TRUE(dyn.is_enabled(s, {r, EventKind::Mark}));
}

// A push directly feeding a control register gates it like any register
// (Eq. 4 applied to control marking).
TEST(SemanticsEdge, FalsePushBlocksControlRegister) {
    Graph g("push_ctrl");
    const auto in = g.add_register("in");
    // Polarity-preserving guard ring (a free-standing control register
    // would re-mark with an arbitrary polarity).
    const auto guard = g.add_control("guard", true, TokenValue::False);
    const auto g2 = g.add_control("g2", false, TokenValue::False);
    const auto g3 = g.add_control("g3", false, TokenValue::False);
    g.connect(guard, g2);
    g.connect(g2, g3);
    g.connect(g3, guard);
    const auto p = g.add_push("p");
    const auto c = g.add_control("c", false, TokenValue::True);
    const auto sink = g.add_register("sink");
    g.connect(in, p);
    g.connect(guard, p);
    g.connect(p, c);
    g.connect(c, sink);
    const Dynamics dyn(g);
    for_all_reachable(dyn, [&](const State& s) {
        // The control can never latch: its only source is destroyed.
        EXPECT_FALSE(s.marked(*g.find("c"))) << s.describe(g);
    });
}

// Tokens cannot be duplicated or lost across a push/pop pair operating
// statically: input and output counts stay balanced in every state.
TEST(SemanticsEdge, TokenBalanceThroughActivePushPop) {
    Graph g("balance");
    const auto in = g.add_register("in");
    const auto ring_c1 = g.add_control("c1", true, TokenValue::True);
    const auto ring_c2 = g.add_control("c2", false, TokenValue::True);
    const auto ring_c3 = g.add_control("c3", false, TokenValue::True);
    g.connect(ring_c1, ring_c2);
    g.connect(ring_c2, ring_c3);
    g.connect(ring_c3, ring_c1);
    const auto p = g.add_push("p");
    const auto mid = g.add_register("mid");
    const auto q = g.add_pop("q");
    const auto sink = g.add_register("sink");
    g.connect(in, p);
    g.connect(ring_c1, p);
    g.connect(p, mid);
    g.connect(mid, q);
    g.connect(ring_c1, q);
    g.connect(q, sink);
    const Dynamics dyn(g);
    for_all_reachable(dyn, [&](const State& s) {
        // With the ring fixed at True no empty/destroyed token can exist.
        EXPECT_FALSE(s.marked_false(g, *g.find("p"))) << s.describe(g);
        EXPECT_FALSE(s.marked_false(g, *g.find("q"))) << s.describe(g);
        // Pipeline occupancy is bounded by its register count.
        int occupancy = 0;
        for (const char* name : {"p", "mid", "q", "sink"}) {
            occupancy += s.marked(*g.find(name));
        }
        EXPECT_LE(occupancy, 4);
    });
}

// Inverting arcs through a logic path are not a thing: the inversion
// applies to direct arcs only, and polarity copied through logic keeps
// the source's value.
TEST(SemanticsEdge, InversionAppliesToDirectArcOnly) {
    Graph g("inv_path");
    const auto c1 = g.add_control("c1", true, TokenValue::True);
    const auto f = g.add_logic("f");
    const auto c2 = g.add_control("c2", false, TokenValue::True);
    const auto sink = g.add_register("sink");
    g.connect(c1, f);
    g.connect(f, c2);
    g.connect(c2, sink);
    const auto& inversion = g.control_preset_inversion(c2);
    ASSERT_EQ(inversion.size(), 1u);
    EXPECT_FALSE(inversion[0]);
    (void)c1;
}

// Sources and sinks: a register with no preset marks freely (environment
// supplies tokens), one with no postset drains freely.
TEST(SemanticsEdge, OpenBoundaryBehaviour) {
    Graph g("open");
    const auto src = g.add_register("src");
    const auto dst = g.add_register("dst");
    g.connect(src, dst);
    const Dynamics dyn(g);
    State s = State::initial(g);
    apply_named(dyn, s, g, "src", EventKind::Mark);
    apply_named(dyn, s, g, "dst", EventKind::Mark);
    apply_named(dyn, s, g, "src", EventKind::Unmark);
    apply_named(dyn, s, g, "dst", EventKind::Unmark);
    EXPECT_EQ(s, State::initial(g));
}

// The spacer discipline also holds for dynamic registers: no two
// consecutive registers of the active chain ever hold tokens while the
// one between them is being bypassed... i.e. M↑ requires the R-postset
// empty even when a pop would self-produce.
TEST(SemanticsEdge, PopRespectsOutputSpace) {
    Graph g("pop_space");
    const auto src = g.add_register("src");
    const auto c = g.add_control("c", true, TokenValue::False);
    const auto q = g.add_pop("q");
    const auto sink = g.add_register("sink", true);  // already full
    g.connect(src, q);
    g.connect(c, q);
    g.connect(q, sink);
    const Dynamics dyn(g);
    const State s = State::initial(g);
    // sink occupied: the empty token cannot be produced yet.
    EXPECT_FALSE(dyn.is_enabled(s, {q, EventKind::MarkFalse}));
}

}  // namespace
}  // namespace rap::dfs
