#include <gtest/gtest.h>

#include <algorithm>

#include "dfs/dot.hpp"
#include "dfs/model.hpp"
#include "dfs_helpers.hpp"

namespace rap::dfs {
namespace {

using testing::make_fig1b;

TEST(Model, NodeKindsAndNames) {
    const auto m = make_fig1b();
    const Graph& g = m.graph;
    EXPECT_EQ(g.kind(m.in), NodeKind::Register);
    EXPECT_EQ(g.kind(m.cond), NodeKind::Logic);
    EXPECT_EQ(g.kind(m.ctrl), NodeKind::Control);
    EXPECT_EQ(g.kind(m.filt), NodeKind::Push);
    EXPECT_EQ(g.kind(m.out), NodeKind::Pop);
    EXPECT_EQ(g.node_name(m.filt), "filt");
    EXPECT_EQ(g.node_count(), 6u);
    EXPECT_EQ(g.edge_count(), 7u);
}

TEST(Model, FindByName) {
    const auto m = make_fig1b();
    EXPECT_EQ(m.graph.find("comp"), m.comp);
    EXPECT_FALSE(m.graph.find("nope").has_value());
}

TEST(Model, DuplicateNameRejected) {
    Graph g;
    g.add_register("r");
    EXPECT_THROW(g.add_logic("r"), std::invalid_argument);
}

TEST(Model, SelfLoopRejected) {
    Graph g;
    const auto r = g.add_register("r");
    EXPECT_THROW(g.connect(r, r), std::invalid_argument);
}

TEST(Model, DuplicateEdgeRejected) {
    Graph g;
    const auto a = g.add_register("a");
    const auto b = g.add_register("b");
    g.connect(a, b);
    EXPECT_THROW(g.connect(a, b), std::invalid_argument);
}

TEST(Model, PresetPostset) {
    const auto m = make_fig1b();
    const Graph& g = m.graph;
    const auto in_post = g.postset(m.in);
    EXPECT_EQ(in_post.size(), 2u);
    EXPECT_NE(std::find(in_post.begin(), in_post.end(), m.cond),
              in_post.end());
    EXPECT_NE(std::find(in_post.begin(), in_post.end(), m.filt),
              in_post.end());
    EXPECT_EQ(g.preset(m.comp), std::vector<NodeId>{m.filt});
}

TEST(Model, RPresetSeesThroughLogic) {
    const auto m = make_fig1b();
    const Graph& g = m.graph;
    // ?ctrl = {in} via the logic path in -> cond -> ctrl.
    EXPECT_EQ(g.r_preset(m.ctrl), std::vector<NodeId>{m.in});
    // in? = {ctrl, filt}.
    const auto in_rpost = g.r_postset(m.in);
    EXPECT_EQ(in_rpost.size(), 2u);
    EXPECT_TRUE(std::binary_search(in_rpost.begin(), in_rpost.end(), m.ctrl));
    EXPECT_TRUE(std::binary_search(in_rpost.begin(), in_rpost.end(), m.filt));
}

TEST(Model, RPresetIncludesDirectRegisterNeighbours) {
    const auto m = make_fig1b();
    const auto rpre = m.graph.r_preset(m.filt);
    EXPECT_EQ(rpre.size(), 2u);
    EXPECT_TRUE(std::binary_search(rpre.begin(), rpre.end(), m.in));
    EXPECT_TRUE(std::binary_search(rpre.begin(), rpre.end(), m.ctrl));
}

TEST(Model, RPresetTraversesChainedLogic) {
    Graph g;
    const auto a = g.add_register("a");
    const auto l1 = g.add_logic("l1");
    const auto l2 = g.add_logic("l2");
    const auto b = g.add_register("b");
    g.connect(a, l1);
    g.connect(l1, l2);
    g.connect(l2, b);
    EXPECT_EQ(g.r_preset(b), std::vector<NodeId>{a});
    EXPECT_EQ(g.r_postset(a), std::vector<NodeId>{b});
}

TEST(Model, ControlPresetFiltersControls) {
    const auto m = make_fig1b();
    EXPECT_EQ(m.graph.control_preset(m.filt), std::vector<NodeId>{m.ctrl});
    EXPECT_EQ(m.graph.control_preset(m.out), std::vector<NodeId>{m.ctrl});
    EXPECT_TRUE(m.graph.control_preset(m.ctrl).empty());
    EXPECT_TRUE(m.graph.control_preset(m.comp).empty());
}

TEST(Model, ValidateAcceptsFig1b) {
    const auto m = make_fig1b();
    EXPECT_TRUE(m.graph.validate().empty());
    EXPECT_NO_THROW(m.graph.ensure_valid());
}

TEST(Model, ValidateRejectsCombinationalLoop) {
    Graph g;
    const auto r = g.add_register("r");
    const auto l1 = g.add_logic("l1");
    const auto l2 = g.add_logic("l2");
    g.connect(r, l1);
    g.connect(l1, l2);
    g.connect(l2, l1);
    g.connect(l2, r);  // close through register so presets are non-empty
    const auto issues = g.validate();
    ASSERT_FALSE(issues.empty());
    EXPECT_NE(issues[0].find("combinational loop"), std::string::npos);
    EXPECT_THROW(g.ensure_valid(), std::invalid_argument);
}

TEST(Model, ValidateRejectsUncontrolledPush) {
    Graph g;
    const auto a = g.add_register("a");
    const auto p = g.add_push("p");
    const auto b = g.add_register("b");
    g.connect(a, p);
    g.connect(p, b);
    const auto issues = g.validate();
    ASSERT_EQ(issues.size(), 1u);
    EXPECT_NE(issues[0].find("no control register"), std::string::npos);
}

TEST(Model, ValidateRejectsDanglingLogic) {
    Graph g;
    const auto r = g.add_register("r");
    const auto l = g.add_logic("l");
    g.connect(r, l);  // no postset
    const auto issues = g.validate();
    ASSERT_EQ(issues.size(), 1u);
    EXPECT_NE(issues[0].find("empty postset"), std::string::npos);
}

TEST(Model, SetInitialUpdatesMarking) {
    auto m = make_fig1b();
    m.graph.set_initial(m.ctrl, true, TokenValue::False);
    EXPECT_TRUE(m.graph.initial(m.ctrl).marked);
    EXPECT_EQ(m.graph.initial(m.ctrl).token, TokenValue::False);
    EXPECT_THROW(m.graph.set_initial(m.cond, true), std::invalid_argument);
}

TEST(Model, RegistersAndLogicsPartitionNodes) {
    const auto m = make_fig1b();
    EXPECT_EQ(m.graph.registers().size(), 5u);
    EXPECT_EQ(m.graph.logics().size(), 1u);
    EXPECT_EQ(m.graph.nodes().size(), 6u);
}

TEST(Model, KindToString) {
    EXPECT_EQ(to_string(NodeKind::Logic), "logic");
    EXPECT_EQ(to_string(NodeKind::Pop), "pop");
}

TEST(Dot, RendersAllNodeFlavours) {
    auto m = make_fig1b();
    m.graph.set_initial(m.ctrl, true, TokenValue::False);
    const std::string dot = to_dot(m.graph);
    EXPECT_NE(dot.find("digraph"), std::string::npos);
    EXPECT_NE(dot.find("lightblue"), std::string::npos);   // control
    EXPECT_NE(dot.find("lightsalmon"), std::string::npos); // push
    EXPECT_NE(dot.find("lightgreen"), std::string::npos);  // pop
    EXPECT_NE(dot.find("[F]"), std::string::npos);         // initial token
}

}  // namespace
}  // namespace rap::dfs
