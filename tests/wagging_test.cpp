#include <gtest/gtest.h>

#include "asim/timed_sim.hpp"
#include "dfs/dynamics.hpp"
#include "dfs/simulator.hpp"
#include "dfs/translate.hpp"
#include "flow/design.hpp"
#include "pipeline/wagging.hpp"
#include "verify/verifier.hpp"

namespace rap::pipeline {
namespace {

using dfs::Dynamics;
using dfs::EventKind;
using dfs::State;
using dfs::TokenValue;

// -------------------------------------------------- inverting arcs --

TEST(InvertingArcs, OnlyControlsMayDriveThem) {
    dfs::Graph g("inv");
    const auto r = g.add_register("r");
    const auto c = g.add_control("c", true, TokenValue::True);
    const auto sink = g.add_register("sink");
    EXPECT_THROW(g.connect_inverted(r, sink), std::invalid_argument);
    EXPECT_NO_THROW(g.connect_inverted(c, sink));
    EXPECT_TRUE(g.is_inverted(c, sink));
    EXPECT_FALSE(g.is_inverted(r, sink));
}

TEST(InvertingArcs, PushSeesComplementOfControlToken) {
    dfs::Graph g("inv");
    const auto in = g.add_register("in", true);
    const auto c = g.add_control("c", true, TokenValue::False);
    const auto p = g.add_push("p");
    const auto sink = g.add_register("sink");
    g.connect(in, p);
    g.connect_inverted(c, p);
    g.connect(p, sink);
    const Dynamics dyn(g);
    const State s = State::initial(g);
    // The control holds False, the inverted consumer is true-controlled.
    EXPECT_TRUE(dyn.true_controlled(s, p));
    EXPECT_FALSE(dyn.false_controlled(s, p));
    EXPECT_TRUE(dyn.is_enabled(s, {p, EventKind::MarkTrue}));
    EXPECT_FALSE(dyn.is_enabled(s, {p, EventKind::MarkFalse}));
}

TEST(InvertingArcs, ComplementaryPairIsAConflictOnAgreement) {
    // One control driving a push normally AND inverted makes the node
    // permanently disabled — the checker must flag it.
    dfs::Graph g("inv_conflict");
    const auto in = g.add_register("in", true);
    const auto c1 = g.add_control("c1", true, TokenValue::True);
    const auto c2 = g.add_control("c2", true, TokenValue::True);
    const auto p = g.add_push("p");
    const auto sink = g.add_register("sink");
    g.connect(in, p);
    g.connect(c1, p);
    g.connect_inverted(c2, p);
    g.connect(p, sink);
    const Dynamics dyn(g);
    const State s = State::initial(g);
    EXPECT_FALSE(dyn.is_enabled(s, {p, EventKind::MarkTrue}));
    EXPECT_FALSE(dyn.is_enabled(s, {p, EventKind::MarkFalse}));
    ASSERT_TRUE(dyn.control_conflict(s).has_value());
    EXPECT_EQ(*dyn.control_conflict(s), p);
    // And via the verifier on the Petri-net side.
    const verify::Verifier verifier(g);
    EXPECT_TRUE(verifier.check_control_conflict().violated);
}

TEST(InvertingArcs, TranslationMatchesDynamics) {
    dfs::Graph g("inv_pn");
    const auto in = g.add_register("in", true);
    const auto c = g.add_control("c", true, TokenValue::False);
    const auto p = g.add_push("p");
    const auto sink = g.add_register("sink");
    g.connect(in, p);
    g.connect_inverted(c, p);
    g.connect(p, sink);
    const auto tr = dfs::to_petri(g);
    const auto m0 = tr.net.initial_marking();
    // The push's Mt+ must read the control's *Mf* place (inverted).
    EXPECT_TRUE(tr.net.is_enabled(m0, *tr.net.find_transition("Mt_p+")));
    EXPECT_FALSE(tr.net.is_enabled(m0, *tr.net.find_transition("Mf_p+")));
}

// ------------------------------------------------ alternating ring --

TEST(AlternatingRing, CarriesOppositeTokens) {
    dfs::Graph g("alt");
    const auto ring = add_alternating_ring(g, "w");
    EXPECT_TRUE(g.initial(ring.regs[0]).marked);
    EXPECT_EQ(g.initial(ring.regs[0]).token, TokenValue::True);
    EXPECT_TRUE(g.initial(ring.regs[3]).marked);
    EXPECT_EQ(g.initial(ring.regs[3]).token, TokenValue::False);
    for (const int i : {1, 2, 4, 5}) {
        EXPECT_FALSE(g.initial(ring.regs[i]).marked);
    }
    // Standalone, the ring oscillates forever preserving both tokens.
    const Dynamics dyn(g);
    dfs::Simulator sim(dyn, 5);
    State s = State::initial(g);
    const auto stats = sim.run(s, 5000);
    EXPECT_FALSE(stats.deadlocked);
    // Head registers alternate True and False markings evenly.
    const auto head_marks = stats.marks_at(ring.head());
    const auto head_false = stats.false_marks_at(ring.head());
    EXPECT_GT(head_marks, 100u);
    EXPECT_NEAR(static_cast<double>(head_false),
                static_cast<double>(head_marks) / 2, 2.0);
}

// ------------------------------------------------------ wagging --

struct WaggingModel {
    dfs::Graph graph{"wagging"};
    dfs::NodeId in;
    WaggingStage stage;
};

WaggingModel make_wagging() {
    WaggingModel m;
    m.in = m.graph.add_register("in");
    m.stage = add_wagging_stage(m.graph, "w", m.in);
    return m;
}

TEST(Wagging, ModelValidates) {
    const auto m = make_wagging();
    EXPECT_TRUE(m.graph.validate().empty()) << m.graph.validate()[0];
}

TEST(Wagging, BranchesAlternateAndMergeKeepsRate) {
    const auto m = make_wagging();
    const Dynamics dyn(m.graph);
    dfs::Simulator sim(dyn, 17);
    State s = State::initial(m.graph);
    const auto stats = sim.run(s, 150000);
    EXPECT_FALSE(stats.deadlocked);
    EXPECT_FALSE(stats.conflict.has_value());

    const auto outputs = stats.marks_at(m.stage.out);
    ASSERT_GT(outputs, 50u);
    // Each branch processes half the items...
    EXPECT_NEAR(static_cast<double>(stats.marks_at(m.stage.reg_a)),
                static_cast<double>(stats.marks_at(m.stage.reg_b)), 2.0);
    // ...and exactly one output per input item emerges.
    EXPECT_NEAR(static_cast<double>(stats.marks_at(m.in)),
                static_cast<double>(outputs), 4.0);
    // Pops alternate real/empty one-for-one.
    EXPECT_NEAR(static_cast<double>(stats.false_marks_at(m.stage.pop_a)),
                static_cast<double>(stats.marks_at(m.stage.pop_a)) / 2,
                2.0);
}

TEST(Wagging, VerifiedDeadlockFree) {
    // Through the design session: one Spec, one exploration, both
    // properties answered off the session's cached compiled artifact.
    auto m = make_wagging();
    flow::DesignOptions options;
    options.verify.max_states = 3'000'000;
    const flow::Design design(std::move(m.graph), options);
    const auto report = design.verify(
        verify::Spec{}.deadlock().control_conflict());
    EXPECT_TRUE(report.clean()) << report.to_string();
    const auto* deadlock = report.find(verify::Property::Deadlock);
    ASSERT_NE(deadlock, nullptr);
    EXPECT_FALSE(deadlock->truncated);
    EXPECT_EQ(design.verifier().explorations_run(), 1u);
}

TEST(Wagging, DoublesThroughputOfSlowFunction) {
    // Baseline: in -> f -> reg with a slow f.
    dfs::Graph base("base");
    const auto bin = base.add_register("in");
    const auto bf = base.add_logic("f");
    const auto breg = base.add_register("reg");
    base.connect(bin, bf);
    base.connect(bf, breg);

    const double slow = 40.0;
    auto run = [&](const dfs::Graph& g, dfs::NodeId observe,
                   const std::vector<dfs::NodeId>& slow_nodes) {
        const Dynamics dyn(g);
        asim::TimingMap timing = asim::uniform_timing(g, 1.0);
        for (const auto n : slow_nodes) timing[n.value].delay_s = slow;
        asim::TimedSimulator sim(dyn, timing, tech::VoltageModel{},
                                 tech::VoltageSchedule::constant(1.2), 0.0);
        State s = State::initial(g);
        asim::RunLimits limits;
        limits.target_marks = 60;
        limits.observe = observe;
        const auto stats = sim.run(s, limits);
        return static_cast<double>(stats.marks_at(observe)) / stats.time_s;
    };

    const double base_rate = run(base, breg, {bf});

    const auto m = make_wagging();
    const double wagged_rate =
        run(m.graph, m.stage.out, {m.stage.f_a, m.stage.f_b});

    // Brej's wagging promise: close to 2x when the function dominates.
    EXPECT_GT(wagged_rate, base_rate * 1.6);
    EXPECT_LT(wagged_rate, base_rate * 2.2);
}

TEST(Wagging, LockstepWithPetriNet) {
    // The PN translation must track the wagging structure exactly —
    // inverting arcs included.
    const auto m = make_wagging();
    const Dynamics dyn(m.graph);
    const auto tr = dfs::to_petri(m.graph);
    State s = State::initial(m.graph);
    petri::Marking pm = tr.net.initial_marking();
    util::Rng rng(31);
    for (int i = 0; i < 3000; ++i) {
        const auto enabled = dyn.enabled_events(s);
        ASSERT_FALSE(enabled.empty());
        const auto e = enabled[rng.below(enabled.size())];
        const bool token =
            m.graph.is_dynamic(e.node) && s.token_true(e.node);
        const auto t = tr.transition_for(m.graph, e, token);
        ASSERT_TRUE(tr.net.is_enabled(pm, t))
            << tr.net.transition_name(t) << " at " << s.describe(m.graph);
        dyn.apply(s, e);
        tr.net.fire(pm, t);
        ASSERT_EQ(pm, tr.encode(m.graph, s));
    }
}

}  // namespace
}  // namespace rap::pipeline
