#include <gtest/gtest.h>

#include "dfs_helpers.hpp"
#include "verify/verifier.hpp"

namespace rap::verify {
namespace {

using dfs::Graph;
using dfs::NodeId;
using dfs::TokenValue;
using dfs::testing::add_control_ring;
using dfs::testing::make_fig1b;

TEST(Verifier, Fig1bIsClean) {
    const auto m = make_fig1b();
    const Verifier verifier(m.graph);
    const Report report = verifier.verify_all();
    EXPECT_TRUE(report.clean()) << report.to_string();
    for (const auto& finding : report.findings) {
        EXPECT_FALSE(finding.truncated);
        // The control-conflict check short-circuits without exploring when
        // no node has multiple controls.
        if (finding.property != Property::ControlConflict) {
            EXPECT_GT(finding.states_explored, 0u);
        }
    }
}

TEST(Verifier, DeadlockFoundInTwoRegisterRing) {
    Graph g("ring2");
    const auto c1 = g.add_control("c1", true, TokenValue::True);
    const auto c2 = g.add_control("c2", false, TokenValue::True);
    g.connect(c1, c2);
    g.connect(c2, c1);
    const Verifier verifier(g);
    const Finding finding = verifier.check_deadlock();
    EXPECT_TRUE(finding.violated);
    // Deadlocked from the start: empty witness trace.
    EXPECT_TRUE(finding.trace.empty());
    EXPECT_NE(finding.to_string().find("VIOLATED"), std::string::npos);
}

TEST(Verifier, HealthyRingHasNoDeadlock) {
    Graph g("ring3");
    add_control_ring(g, "loop", TokenValue::True);
    const Verifier verifier(g);
    EXPECT_FALSE(verifier.check_deadlock().violated);
}

TEST(Verifier, ControlConflictDetectedWithMixedRings) {
    // Two rings with opposite polarities control the same push: the
    // incorrect initialisation scenario of Section III-A.
    Graph g("mixed");
    const auto in = g.add_register("in");
    const auto a = add_control_ring(g, "a", TokenValue::True);
    const auto b = add_control_ring(g, "b", TokenValue::False);
    const auto p = g.add_push("p");
    const auto sink = g.add_register("sink");
    g.connect(in, p);
    g.connect(a.c1, p);
    g.connect(b.c1, p);
    g.connect(p, sink);
    const Verifier verifier(g);
    const Finding finding = verifier.check_control_conflict();
    EXPECT_TRUE(finding.violated);
    EXPECT_NE(finding.detail.find("mixed"), std::string::npos);
}

TEST(Verifier, ControlConflictTriviallySafeWithSingleControl) {
    const auto m = make_fig1b();
    const Verifier verifier(m.graph);
    const Finding finding = verifier.check_control_conflict();
    EXPECT_FALSE(finding.violated);
    EXPECT_NE(finding.detail.find("trivially safe"), std::string::npos);
}

TEST(Verifier, ControlConflictAbsentWithAgreeingRings) {
    Graph g("agree");
    const auto in = g.add_register("in");
    const auto a = add_control_ring(g, "a", TokenValue::True);
    const auto b = add_control_ring(g, "b", TokenValue::True);
    const auto p = g.add_push("p");
    const auto sink = g.add_register("sink");
    g.connect(in, p);
    g.connect(a.c1, p);
    g.connect(b.c1, p);
    g.connect(p, sink);
    const Verifier verifier(g);
    EXPECT_FALSE(verifier.check_control_conflict().violated);
}

TEST(Verifier, PersistenceHoldsForFig1b) {
    // The Mt/Mf choice at ctrl is exempt (intended data-dependent
    // choice); everything else must be persistent.
    const auto m = make_fig1b();
    const Verifier verifier(m.graph);
    const Finding finding = verifier.check_persistence();
    EXPECT_FALSE(finding.violated) << finding.to_string();
}

TEST(Verifier, CustomPredicateReachable) {
    const auto m = make_fig1b();
    const Verifier verifier(m.graph);
    const auto& net = verifier.translation().net;
    const Finding finding = verifier.check_custom(
        petri::Predicate::marked(net, "Mf_out_1"),
        "empty token at the output");
    EXPECT_TRUE(finding.violated);  // reachable by design
    EXPECT_FALSE(finding.trace.empty());
}

TEST(Verifier, CustomPredicateUnreachable) {
    const auto m = make_fig1b();
    const Verifier verifier(m.graph);
    const auto& net = verifier.translation().net;
    // comp can never hold a token while filt carries a destroyed one.
    const Finding finding = verifier.check_custom(
        petri::Predicate::marked(net, "M_comp_1") &&
            petri::Predicate::marked(net, "Mf_filt_1"),
        "destroyed token alongside comp data");
    EXPECT_FALSE(finding.violated);
    EXPECT_NE(finding.detail.find("unreachable"), std::string::npos);
}

TEST(Verifier, TruncationReportedAsInconclusive) {
    const auto m = make_fig1b();
    VerifyOptions options;
    options.max_states = 3;
    const Verifier verifier(m.graph, options);
    const Finding finding = verifier.check_deadlock();
    EXPECT_TRUE(finding.truncated);
}

TEST(Verifier, ReportAggregatesAndPrints) {
    Graph g("ring2");
    const auto c1 = g.add_control("c1", true, TokenValue::True);
    const auto c2 = g.add_control("c2", false, TokenValue::True);
    g.connect(c1, c2);
    g.connect(c2, c1);
    const Verifier verifier(g);
    const Report report = verifier.verify_all();
    EXPECT_FALSE(report.clean());
    EXPECT_EQ(report.findings.size(), 3u);
    EXPECT_NE(report.to_string().find("deadlock"), std::string::npos);
}

TEST(Verifier, VerifyAllRunsExactlyOneExploration) {
    const auto m = make_fig1b();
    const Verifier verifier(m.graph);
    const Report report = verifier.verify_all();
    // Deadlock, control-conflict and persistence share ONE state-space
    // exploration, so they all report the same (full) state count.
    EXPECT_EQ(verifier.explorations_run(), 1u);
    EXPECT_EQ(report.findings.size(), 3u);
    const std::size_t states = report.findings[0].states_explored;
    EXPECT_GT(states, 0u);
    for (const auto& finding : report.findings) {
        if (finding.property == Property::ControlConflict &&
            finding.detail.find("trivially safe") != std::string::npos) {
            continue;
        }
        EXPECT_EQ(finding.states_explored, states)
            << verify::to_string(finding.property);
    }
}

TEST(Verifier, SpecEvaluatesCustomPredicatesInSharedPass) {
    const auto m = make_fig1b();
    const Verifier verifier(m.graph);
    const auto& net = verifier.translation().net;
    auto reachable = petri::Predicate::marked(net, "Mf_out_1");
    auto unreachable = petri::Predicate::marked(net, "M_comp_1") &&
                       petri::Predicate::marked(net, "Mf_filt_1");
    const Report report = verifier.verify(
        verify::Spec::standard()
            .custom("empty token at the output", std::move(reachable))
            .custom("destroyed token alongside comp data",
                    std::move(unreachable)));
    EXPECT_EQ(verifier.explorations_run(), 1u);
    ASSERT_EQ(report.findings.size(), 5u);
    EXPECT_TRUE(report.findings[3].violated);
    EXPECT_FALSE(report.findings[3].trace.empty());
    EXPECT_NE(report.findings[3].detail.find("empty token"),
              std::string::npos);
    EXPECT_FALSE(report.findings[4].violated);
    EXPECT_NE(report.findings[4].detail.find("unreachable"),
              std::string::npos);
}

TEST(Verifier, VerifyAllMatchesIndividualChecks) {
    Graph g("ring2");
    const auto c1 = g.add_control("c1", true, TokenValue::True);
    const auto c2 = g.add_control("c2", false, TokenValue::True);
    g.connect(c1, c2);
    g.connect(c2, c1);
    const Verifier verifier(g);
    const Report report = verifier.verify_all();
    const Finding alone = verifier.check_deadlock();
    EXPECT_EQ(report.findings[0].violated, alone.violated);
    EXPECT_EQ(report.findings[0].trace, alone.trace);
}

TEST(Verifier, VerifyAllDeterministicAcrossRuns) {
    const auto m = make_fig1b();
    const Verifier verifier(m.graph);
    const auto& net = verifier.translation().net;
    const auto goal = petri::Predicate::marked(net, "Mf_out_1");
    const auto spec = verify::Spec::standard().custom("witnessed", goal);
    const Report first = verifier.verify(spec);
    const Report second = verifier.verify(spec);
    ASSERT_EQ(first.findings.size(), second.findings.size());
    for (std::size_t i = 0; i < first.findings.size(); ++i) {
        EXPECT_EQ(first.findings[i].violated, second.findings[i].violated);
        EXPECT_EQ(first.findings[i].states_explored,
                  second.findings[i].states_explored);
        EXPECT_EQ(first.findings[i].trace, second.findings[i].trace);
    }
}

TEST(Verifier, WitnessTraceTranslatedToDfsEvents) {
    const auto m = make_fig1b();
    const Verifier verifier(m.graph);
    const auto& net = verifier.translation().net;
    const Finding finding = verifier.check_custom(
        petri::Predicate::marked(net, "Mf_out_1"), "empty output");
    ASSERT_TRUE(finding.violated);
    // Every PN firing of the witness has a DFS-level rendering, aligned
    // entry-for-entry; the final step is the pop emitting the empty
    // token — the event the predicate watches — in DFS vocabulary.
    ASSERT_EQ(finding.dfs_trace.size(), finding.trace.size());
    ASSERT_FALSE(finding.dfs_trace.empty());
    EXPECT_EQ(finding.dfs_trace.back(), "pop out produces an empty token");
    EXPECT_EQ(finding.trace.back(), "Mf_out+");
    // Finding::to_string carries both vocabularies.
    EXPECT_NE(finding.to_string().find("events: "), std::string::npos);
}

TEST(Verifier, SequentialConstructionsShareCompiledArtifact) {
    // Two verifiers over the same (unmutated) model content pay for ONE
    // translation + CompiledNet build — the artifact is shared through
    // the process-wide cache.
    Graph g("artifact_sharing_model");
    const auto c1 = g.add_control("s1", true, TokenValue::True);
    const auto c2 = g.add_control("s2", false, TokenValue::True);
    const auto c3 = g.add_control("s3", false, TokenValue::True);
    g.connect(c1, c2);
    g.connect(c2, c3);
    g.connect(c3, c1);
    const std::size_t before = artifact_builds();
    const Verifier first(g);
    const Verifier second(g);
    EXPECT_EQ(artifact_builds(), before + 1);
    EXPECT_EQ(first.model().get(), second.model().get());
    // Both verifiers still answer independently.
    EXPECT_FALSE(first.check_deadlock().violated);
    EXPECT_FALSE(second.check_deadlock().violated);
}

TEST(Verifier, MutatedModelRecompiles) {
    Graph g("artifact_mutation_model");
    const auto c1 = g.add_control("m1", true, TokenValue::True);
    const auto c2 = g.add_control("m2", false, TokenValue::True);
    const auto c3 = g.add_control("m3", false, TokenValue::True);
    g.connect(c1, c2);
    g.connect(c2, c3);
    g.connect(c3, c1);
    const Verifier before_mutation(g);
    // Changing the initial marking changes the PN, so a fresh verifier
    // must see a fresh artifact...
    g.set_initial(c1, true, TokenValue::False);
    const Verifier after_mutation(g);
    EXPECT_NE(before_mutation.model().get(), after_mutation.model().get());
    // ...and restoring the content brings the cached artifact back.
    g.set_initial(c1, true, TokenValue::True);
    const Verifier restored(g);
    EXPECT_EQ(before_mutation.model().get(), restored.model().get());
}

TEST(Verifier, ArtifactCacheKeyNotForgeableThroughNames) {
    // Separator characters inside node names must not collide two
    // different models onto one cache key (names are length-prefixed in
    // the fingerprint).
    Graph a("fp_collision");
    a.add_register("x:1:1:1;y", true);
    Graph b("fp_collision");
    b.add_register("x", true);
    b.add_register("y", true);
    const Verifier va(a);
    const Verifier vb(b);
    EXPECT_NE(va.model().get(), vb.model().get());
    EXPECT_EQ(va.translation().net.place_count(), 2u);
    EXPECT_EQ(vb.translation().net.place_count(), 4u);
}

TEST(Spec, CanonicalFindingOrderRegardlessOfRegistration) {
    const auto m = make_fig1b();
    const Verifier verifier(m.graph);
    // Registered persistence-first; reported Deadlock, Persistence.
    const Report report =
        verifier.verify(Spec{}.persistence().deadlock());
    ASSERT_EQ(report.findings.size(), 2u);
    EXPECT_EQ(report.findings[0].property, Property::Deadlock);
    EXPECT_EQ(report.findings[1].property, Property::Persistence);
}

TEST(Spec, OwnsItsPredicates) {
    // The spec owns predicate storage, so it can be assembled from
    // temporaries and outlive the expressions that built it (the legacy
    // CustomCheck span required caller-owned predicates).
    const auto m = make_fig1b();
    const Verifier verifier(m.graph);
    Spec spec;
    {
        const auto& net = verifier.translation().net;
        spec.custom("empty token at the output",
                    petri::Predicate::marked(net, "Mf_out_1"));
        spec.custom("destroyed token alongside comp data",
                    petri::Predicate::marked(net, "M_comp_1") &&
                        petri::Predicate::marked(net, "Mf_filt_1"));
    }
    const Report report = verifier.verify(spec);
    ASSERT_EQ(report.findings.size(), 2u);
    EXPECT_TRUE(report.findings[0].violated);
    EXPECT_FALSE(report.findings[1].violated);
    EXPECT_NE(report.findings[1].detail.find("unreachable"),
              std::string::npos);
}

TEST(Spec, StandardMatchesVerifyAll) {
    const auto m = make_fig1b();
    const Verifier verifier(m.graph);
    const Report via_spec = verifier.verify(Spec::standard());
    const Report via_all = verifier.verify_all();
    ASSERT_EQ(via_spec.findings.size(), via_all.findings.size());
    for (std::size_t i = 0; i < via_spec.findings.size(); ++i) {
        EXPECT_EQ(via_spec.findings[i].property,
                  via_all.findings[i].property);
        EXPECT_EQ(via_spec.findings[i].violated,
                  via_all.findings[i].violated);
    }
}

TEST(Spec, SinglePropertySpecStillExploresOnce) {
    const auto m = make_fig1b();
    const Verifier verifier(m.graph);
    verifier.verify(Spec{}.deadlock());
    EXPECT_EQ(verifier.explorations_run(), 1u);
}

TEST(Verifier, PropertyNames) {
    EXPECT_EQ(to_string(Property::Deadlock), "deadlock");
    EXPECT_EQ(to_string(Property::ControlConflict), "control-conflict");
    EXPECT_EQ(to_string(Property::Persistence), "persistence");
    EXPECT_EQ(to_string(Property::Custom), "custom");
}

}  // namespace
}  // namespace rap::verify
