#include <gtest/gtest.h>

#include "dfs_helpers.hpp"
#include "netlist/library.hpp"
#include "netlist/netlist.hpp"
#include "netlist/verilog.hpp"
#include "ope/dfs_models.hpp"

namespace rap::netlist {
namespace {

using dfs::testing::make_fig1b;

TEST(Library, SyncDepthTopologies) {
    Library::Options daisy_opts;
    daisy_opts.sync = SyncTopology::DaisyChain;
    const Library daisy(daisy_opts);
    const Library tree;  // default Tree
    EXPECT_EQ(daisy.sync_depth(18), 18);
    EXPECT_EQ(tree.sync_depth(18), 6);  // ceil(log2 18) + 1
    EXPECT_EQ(daisy.sync_depth(1), 1);
    EXPECT_EQ(tree.sync_depth(1), 1);
    EXPECT_EQ(tree.sync_gates(18), 17);
    EXPECT_EQ(daisy.sync_gates(18), 17);  // same C-element count
}

TEST(Library, SpecsCoverAllKinds) {
    const auto m = make_fig1b();
    const Library lib;
    const auto reg = lib.spec_for(m.graph, m.comp);
    const auto ctrl = lib.spec_for(m.graph, m.ctrl);
    const auto push = lib.spec_for(m.graph, m.filt);
    const auto pop = lib.spec_for(m.graph, m.out);
    const auto fn = lib.spec_for(m.graph, m.cond);
    EXPECT_EQ(reg.type, "ncld_register");
    EXPECT_EQ(ctrl.type, "ncld_control");
    EXPECT_EQ(push.type, "ncld_push");
    EXPECT_EQ(pop.type, "ncld_pop");
    EXPECT_EQ(fn.type, "ncld_function");
    // Dynamic registers cost more than plain ones; control is tiny.
    EXPECT_GT(push.gate_count, reg.gate_count);
    EXPECT_LT(ctrl.gate_count, reg.gate_count);
    for (const auto& spec : {reg, ctrl, push, pop, fn}) {
        EXPECT_GT(spec.gate_count, 0);
        EXPECT_GT(spec.crit_path_gates, 0);
        EXPECT_GT(spec.switched_gates, 0);
    }
}

TEST(Library, DelayAndEnergyDeriveFromSpec) {
    const Library lib;
    ComponentSpec spec;
    spec.crit_path_gates = 10;
    spec.switched_gates = 100;
    EXPECT_NEAR(lib.delay_of(spec), 10 * lib.options().gate_delay_s, 1e-20);
    EXPECT_NEAR(lib.energy_of(spec), 100 * lib.options().energy_per_gate_j,
                1e-20);
}

TEST(Netlist, MapsEveryNode) {
    const auto m = make_fig1b();
    const Netlist netlist(m.graph, Library{});
    EXPECT_EQ(netlist.instances().size(), m.graph.node_count());
    const auto stats = netlist.stats();
    EXPECT_EQ(stats.instances, 6);
    EXPECT_EQ(stats.registers, 2);
    EXPECT_EQ(stats.control_registers, 1);
    EXPECT_EQ(stats.pushes, 1);
    EXPECT_EQ(stats.pops, 1);
    EXPECT_EQ(stats.function_blocks, 1);
    EXPECT_GT(stats.total_gates, 0);
    EXPECT_GT(stats.area_um2, 0);
    EXPECT_NEAR(netlist.total_gates(), stats.total_gates, 1e-9);
}

TEST(Netlist, TimingAnnotationCoversAllNodes) {
    const auto m = make_fig1b();
    const Netlist netlist(m.graph, Library{});
    const auto timing = netlist.timing();
    ASSERT_EQ(timing.size(), m.graph.node_count());
    for (const auto& t : timing) {
        EXPECT_GT(t.delay_s, 0.0);
        EXPECT_GT(t.energy_j, 0.0);
    }
}

TEST(Netlist, ReconfigurableOpeCostsMoreThanStatic) {
    const auto st = ope::build_static_ope_dfs(18);
    const auto rc = ope::build_reconfigurable_ope_dfs(18, 18);
    const Netlist sn(st.graph, Library{});
    const Netlist rn(rc.graph, Library{});
    const auto ss = sn.stats();
    const auto rs = rn.stats();
    // Reconfigurability costs area (rings, pushes, pops)...
    EXPECT_GT(rs.total_gates, ss.total_gates);
    // ...but the control overhead is a modest fraction of the datapath.
    EXPECT_LT(rs.total_gates, static_cast<int>(ss.total_gates * 1.35));
    EXPECT_EQ(rs.pushes, 17 + 17);  // local_in + global_in per reconfig stage
    EXPECT_EQ(rs.pops, 17);
    EXPECT_EQ(rs.control_registers, 3 * (1 + 16 * 2));
}

TEST(Verilog, ContainsPrimitivesAndComponents) {
    const auto m = make_fig1b();
    const Netlist netlist(m.graph, Library{});
    const std::string v = to_verilog(netlist);
    for (const char* needle :
         {"module th22", "module c_element", "module ack_join",
          "module ncld_register", "module ncld_push", "module ncld_pop",
          "module ncld_control", "module ncld_function",
          "module fig1b"}) {
        EXPECT_NE(v.find(needle), std::string::npos) << needle;
    }
}

TEST(Verilog, InstantiatesEveryNodeAndWiresConfig) {
    const auto m = make_fig1b();
    const Netlist netlist(m.graph, Library{});
    const std::string v = to_verilog(netlist);
    for (const char* inst :
         {"u_in", "u_cond", "u_ctrl", "u_filt", "u_comp", "u_out"}) {
        EXPECT_NE(v.find(inst), std::string::npos) << inst;
    }
    // The control register drives the push/pop cfg channels.
    EXPECT_NE(v.find(".cfg_d(ctrl_d)"), std::string::npos);
    // Boundary ports for the environment-facing registers.
    EXPECT_NE(v.find("env_in_d"), std::string::npos);
    EXPECT_NE(v.find("out_out_d"), std::string::npos);
}

TEST(Verilog, TopologyParameterFollowsLibrary) {
    const auto m = make_fig1b();
    Library::Options daisy;
    daisy.sync = SyncTopology::DaisyChain;
    const std::string v_daisy = to_verilog(Netlist(m.graph, Library{daisy}));
    const std::string v_tree = to_verilog(Netlist(m.graph, Library{}));
    EXPECT_NE(v_daisy.find(".TOPOLOGY(1)"), std::string::npos);
    EXPECT_EQ(v_daisy.find(".TOPOLOGY(0)"), std::string::npos);
    EXPECT_NE(v_tree.find(".TOPOLOGY(0)"), std::string::npos);
}

TEST(Verilog, BalancedParenthesesAndModules) {
    const auto p = ope::build_reconfigurable_ope_dfs(4, 4);
    const Netlist netlist(p.graph, Library{});
    const std::string v = to_verilog(netlist);
    std::size_t modules = 0, endmodules = 0, pos = 0;
    while ((pos = v.find("\nmodule ", pos)) != std::string::npos) {
        ++modules;
        pos += 8;
    }
    pos = 0;
    while ((pos = v.find("endmodule", pos)) != std::string::npos) {
        ++endmodules;
        pos += 9;
    }
    EXPECT_EQ(modules, endmodules);
    int depth = 0;
    for (char c : v) {
        if (c == '(') ++depth;
        if (c == ')') --depth;
        EXPECT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
}

TEST(Verilog, SyncTopologyNames) {
    EXPECT_EQ(to_string(SyncTopology::DaisyChain), "daisy-chain");
    EXPECT_EQ(to_string(SyncTopology::Tree), "tree");
}

}  // namespace
}  // namespace rap::netlist
