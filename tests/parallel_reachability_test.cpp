// Differential harness for the parallel-frontier reachability engine:
// every fixture model runs through the sequential ReachabilityExplorer
// and the ParallelReachabilityExplorer at several thread counts, and the
// answers must agree exactly — states/edges explored, deadlock sets,
// persistence-violation sets, goal verdicts, witness lengths — plus a
// repeated-run determinism check, the parallel truncation contract, the
// concurrent interning table's own invariants, and the facade adoption
// (verify::Verifier / flow::Design behind VerifyOptions::threads).

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "dfs/model.hpp"
#include "dfs/translate.hpp"
#include "flow/design.hpp"
#include "ope/dfs_models.hpp"
#include "petri/parallel.hpp"
#include "petri/predicate.hpp"
#include "petri/reachability.hpp"
#include "pipeline/builder.hpp"
#include "pipeline/wagging.hpp"
#include "util/rng.hpp"

namespace rap::petri {
namespace {

constexpr std::size_t kThreadCounts[] = {2, 4, 8};

// ------------------------------------------------------------ fixtures --

struct Fixture {
    std::string name;
    Net net;
};

/// A depth-`d` token-ring pipeline: d+2 control registers in a loop with
/// one True token — the smallest live models of the paper's control
/// style, one per depth 1..6.
Fixture ring_fixture(int depth) {
    dfs::Graph g("ring_d" + std::to_string(depth));
    std::vector<dfs::NodeId> regs;
    const int n = depth + 2;
    for (int i = 0; i < n; ++i) {
        regs.push_back(g.add_control("c" + std::to_string(i), i == 0,
                                     dfs::TokenValue::True));
    }
    for (int i = 0; i < n; ++i) g.connect(regs[i], regs[(i + 1) % n]);
    return {g.name(), dfs::to_petri(g).net};
}

Fixture wagging_fixture() {
    dfs::Graph g("wagging");
    const auto in = g.add_register("in");
    pipeline::add_wagging_stage(g, "w", in);
    return {"wagging", dfs::to_petri(g).net};
}

Fixture static_ope_fixture(int stages) {
    auto p = ope::build_static_ope_dfs(stages);
    return {"ope_static_s" + std::to_string(stages),
            dfs::to_petri(p.graph).net};
}

Fixture ope_fixture(int stages, int depth) {
    auto p = ope::build_reconfigurable_ope_dfs(stages, depth);
    return {"ope_s" + std::to_string(stages) + "_d" + std::to_string(depth),
            dfs::to_petri(p.graph).net};
}

/// The gap misconfiguration of Section III-A: stage 2 bypassed under an
/// active stage 3 — deadlock reachable, so witness paths get exercised.
Fixture gap_fixture() {
    auto p = ope::build_reconfigurable_ope_dfs(3, 3);
    pipeline::reset_ring(p.graph, p.stages[1].global_ring,
                         dfs::TokenValue::False);
    return {"ope_gap", dfs::to_petri(p.graph).net};
}

/// Random nets straight from util::Rng: a few token rings (each live on
/// its own) joined by random bridge transitions that move tokens across
/// rings — real choice structure, so random persistence violations and
/// deadlocks, without degenerating into an instantly-stuck net. Read
/// arcs sprinkle in level-sensitive enabling. Not necessarily live or
/// deadlock-free — the safe-enabling semantics is total either way, and
/// both engines must agree on it exactly.
Fixture random_fixture(std::uint64_t seed) {
    util::Rng rng(seed);
    Net net("rand_" + std::to_string(seed));
    std::vector<PlaceId> ps;
    const int rings = 2 + static_cast<int>(rng.below(3));
    for (int r = 0; r < rings; ++r) {
        const int len = 2 + static_cast<int>(rng.below(3));
        std::vector<PlaceId> ring;
        for (int i = 0; i < len; ++i) {
            ring.push_back(net.add_place(
                "r" + std::to_string(r) + "_p" + std::to_string(i),
                i == 0));
        }
        for (int i = 0; i < len; ++i) {
            const auto t = net.add_transition(
                "r" + std::to_string(r) + "_t" + std::to_string(i));
            net.add_input_arc(ring[i], t);
            net.add_output_arc(t, ring[(i + 1) % len]);
        }
        ps.insert(ps.end(), ring.begin(), ring.end());
    }
    const int bridges = 2 + static_cast<int>(rng.below(4));
    for (int b = 0; b < bridges; ++b) {
        const auto t = net.add_transition("b" + std::to_string(b));
        const PlaceId from = ps[rng.below(ps.size())];
        PlaceId to = ps[rng.below(ps.size())];
        while (to == from) to = ps[rng.below(ps.size())];
        net.add_input_arc(from, t);
        net.add_output_arc(t, to);
        if (rng.chance(0.4)) {
            PlaceId guard = ps[rng.below(ps.size())];
            while (guard == from) guard = ps[rng.below(ps.size())];
            net.add_read_arc(guard, t);
        }
    }
    return {net.name(), std::move(net)};
}

std::vector<Fixture> all_fixtures() {
    std::vector<Fixture> fixtures;
    for (int d = 1; d <= 6; ++d) fixtures.push_back(ring_fixture(d));
    fixtures.push_back(wagging_fixture());
    fixtures.push_back(static_ope_fixture(2));
    fixtures.push_back(ope_fixture(3, 3));
    fixtures.push_back(gap_fixture());
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        fixtures.push_back(random_fixture(seed));
    }
    return fixtures;
}

// ----------------------------------------------------------- plumbing --

/// Exhaustive multi-property query over `net`: a deadlock goal, a
/// marked-place goal, full deadlock collection and persistence checking.
/// Exhaustive passes are where the differential contract promises exact
/// equality on every counter and set.
struct QueryBundle {
    Predicate dead = Predicate::deadlock();
    Predicate marked;
    MultiQuery query;

    explicit QueryBundle(const Net& net)
        : marked(Predicate::marked(net, net.place_name(PlaceId{0}))) {
        query.goals = {&dead, &marked};
        query.collect_deadlocks = true;
        query.check_persistence = true;
    }
};

std::vector<Marking> sorted(std::vector<Marking> markings) {
    std::sort(markings.begin(), markings.end());
    return markings;
}

using ViolationKey = std::tuple<Marking, std::uint32_t, std::uint32_t>;

std::vector<ViolationKey> violation_set(
    const std::vector<PersistenceViolation>& violations) {
    std::vector<ViolationKey> keys;
    keys.reserve(violations.size());
    for (const auto& v : violations) {
        keys.emplace_back(v.marking, v.fired.value, v.disabled.value);
    }
    std::sort(keys.begin(), keys.end());
    return keys;
}

/// Replays `trace` from the initial marking; the result must be `end`.
/// Guards witness reconstruction: a wrong predecessor step produces a
/// disabled firing or lands on the wrong marking.
void expect_replays(const Net& net, const Trace& trace, const Marking& end,
                    const std::string& context) {
    Marking m = net.initial_marking();
    for (const TransitionId t : trace.firings) {
        ASSERT_TRUE(net.is_enabled(m, t))
            << context << ": witness trace fires disabled "
            << net.transition_name(t);
        net.fire(m, t);
    }
    EXPECT_EQ(m, end) << context << ": witness trace misses its witness";
}

void expect_equivalent(const Net& net, const MultiResult& seq,
                       const MultiResult& par, const std::string& context) {
    EXPECT_EQ(par.states_explored, seq.states_explored) << context;
    EXPECT_EQ(par.edges_explored, seq.edges_explored) << context;
    EXPECT_FALSE(par.truncated) << context;
    EXPECT_FALSE(seq.truncated) << context;

    EXPECT_EQ(sorted(par.deadlocks), sorted(seq.deadlocks)) << context;
    EXPECT_EQ(violation_set(par.persistence_violations),
              violation_set(seq.persistence_violations))
        << context;

    ASSERT_EQ(par.goals.size(), seq.goals.size()) << context;
    for (std::size_t g = 0; g < seq.goals.size(); ++g) {
        const auto& sg = seq.goals[g];
        const auto& pg = par.goals[g];
        ASSERT_EQ(pg.found(), sg.found()) << context << " goal " << g;
        if (!sg.found()) continue;
        // BFS-shortest witnesses: equal depth, though the parallel
        // engine may pick a different (canonical) marking of that depth.
        ASSERT_TRUE(sg.witness_trace.has_value()) << context;
        ASSERT_TRUE(pg.witness_trace.has_value()) << context;
        EXPECT_EQ(pg.witness_trace->firings.size(),
                  sg.witness_trace->firings.size())
            << context << " goal " << g;
        expect_replays(net, *pg.witness_trace, *pg.witness,
                       context + " goal " + std::to_string(g));
    }
}

// -------------------------------------------------------- differential --

TEST(ParallelReachability, DifferentialAgainstSequentialOnEveryFixture) {
    for (const Fixture& fixture : all_fixtures()) {
        const CompiledNet compiled(fixture.net);
        const QueryBundle bundle(fixture.net);

        ReachabilityOptions seq_options;
        seq_options.stop_at_first_match = false;
        ReachabilityExplorer seq(compiled, seq_options);
        const auto reference = seq.run_query(bundle.query);

        for (const std::size_t threads : kThreadCounts) {
            ReachabilityOptions options;
            options.stop_at_first_match = false;
            options.threads = threads;
            ParallelReachabilityExplorer par(compiled, options);
            const auto result = par.run_query(bundle.query);
            expect_equivalent(fixture.net, reference, result,
                              fixture.name + " @" +
                                  std::to_string(threads) + "t");
        }
    }
}

TEST(ParallelReachability, FinderSurfaceMatchesSequential) {
    // The convenience entry points (find / find_all / find_deadlocks /
    // explore_all / count_states) answer like the sequential engine's.
    const Fixture fixture = gap_fixture();
    const Net& net = fixture.net;
    const CompiledNet compiled(net);

    ReachabilityExplorer seq(compiled);
    ReachabilityOptions options;
    options.threads = 4;
    ParallelReachabilityExplorer par(compiled, options);

    EXPECT_EQ(par.count_states(), seq.count_states());

    const auto seq_dead = seq.find_deadlocks();
    const auto par_dead = par.find_deadlocks();
    EXPECT_EQ(par_dead.states_explored, seq_dead.states_explored);
    EXPECT_EQ(sorted(par_dead.deadlocks), sorted(seq_dead.deadlocks));
    ASSERT_TRUE(par_dead.found());
    EXPECT_EQ(par_dead.witness_trace->firings.size(),
              seq_dead.witness_trace->firings.size());

    // Early-stop single-goal search: same verdict and witness depth (the
    // parallel engine finishes the resolving layer, so state counters may
    // legitimately exceed the sequential mid-layer stop).
    const auto goal = Predicate::deadlock();
    const auto seq_hit = ReachabilityExplorer(compiled).find(goal);
    const auto par_hit =
        ParallelReachabilityExplorer(compiled, options).find(goal);
    ASSERT_TRUE(seq_hit.found());
    ASSERT_TRUE(par_hit.found());
    EXPECT_EQ(par_hit.witness_trace->firings.size(),
              seq_hit.witness_trace->firings.size());
}

TEST(ParallelReachability, SingleThreadIsTheSequentialCodePath) {
    // threads == 1 must reproduce the sequential engine bit for bit,
    // including its discovery-order witness (not the canonical one).
    const Fixture fixture = gap_fixture();
    const CompiledNet compiled(fixture.net);
    const QueryBundle bundle(fixture.net);

    ReachabilityOptions options;
    options.stop_at_first_match = false;
    ReachabilityExplorer seq(compiled, options);
    const auto reference = seq.run_query(bundle.query);

    options.threads = 1;
    ParallelReachabilityExplorer par(compiled, options);
    const auto result = par.run_query(bundle.query);

    EXPECT_EQ(result.states_explored, reference.states_explored);
    EXPECT_EQ(result.edges_explored, reference.edges_explored);
    ASSERT_EQ(result.goals.size(), reference.goals.size());
    for (std::size_t g = 0; g < reference.goals.size(); ++g) {
        ASSERT_EQ(result.goals[g].found(), reference.goals[g].found());
        if (!reference.goals[g].found()) continue;
        EXPECT_EQ(result.goals[g].witness, reference.goals[g].witness);
        EXPECT_EQ(result.goals[g].witness_trace->firings,
                  reference.goals[g].witness_trace->firings);
    }
}

// --------------------------------------------------------- determinism --

TEST(ParallelReachability, RepeatedRunsAreDeterministic) {
    // Ten runs per thread count: verdicts, counters, deadlock sets and
    // full witness traces must be identical run over run (the canonical
    // witness selection makes them identical across thread counts too).
    const Fixture fixture = gap_fixture();
    const CompiledNet compiled(fixture.net);
    const QueryBundle bundle(fixture.net);

    std::optional<MultiResult> baseline;
    for (const std::size_t threads : kThreadCounts) {
        ReachabilityOptions options;
        options.stop_at_first_match = false;
        options.threads = threads;
        for (int run = 0; run < 10; ++run) {
            ParallelReachabilityExplorer par(compiled, options);
            const auto result = par.run_query(bundle.query);
            if (!baseline) {
                baseline = result;
                ASSERT_TRUE(result.goals[0].found());
                continue;
            }
            const std::string context = "run " + std::to_string(run) +
                                        " @" + std::to_string(threads) +
                                        "t";
            EXPECT_EQ(result.states_explored, baseline->states_explored)
                << context;
            EXPECT_EQ(result.edges_explored, baseline->edges_explored)
                << context;
            EXPECT_EQ(sorted(result.deadlocks), sorted(baseline->deadlocks))
                << context;
            ASSERT_EQ(result.goals.size(), baseline->goals.size());
            for (std::size_t g = 0; g < result.goals.size(); ++g) {
                ASSERT_EQ(result.goals[g].found(),
                          baseline->goals[g].found())
                    << context;
                if (!baseline->goals[g].found()) continue;
                EXPECT_EQ(result.goals[g].witness,
                          baseline->goals[g].witness)
                    << context;
                EXPECT_EQ(result.goals[g].witness_trace->firings,
                          baseline->goals[g].witness_trace->firings)
                    << context;
            }
        }
    }
}

// ---------------------------------------------------------- truncation --

TEST(ParallelReachability, TruncationContract) {
    // With max_states below the true count the pass must stop truncated.
    // Contract: never above max_states, and — because ids are allocated
    // densely below the cap — exactly max_states, at every thread count
    // (threads == 1 inherits the sequential engine's exact guarantee).
    const Fixture fixture = ope_fixture(3, 3);  // 191k true states
    const CompiledNet compiled(fixture.net);
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                      std::size_t{4}, std::size_t{8}}) {
        ReachabilityOptions options;
        options.max_states = 4096;
        options.threads = threads;
        ParallelReachabilityExplorer par(compiled, options);
        const auto result = par.explore_all();
        EXPECT_TRUE(result.truncated) << threads;
        EXPECT_EQ(result.states_explored, 4096u) << threads;
    }
}

TEST(ParallelReachability, NoTruncationAtExactFit) {
    const Fixture fixture = gap_fixture();
    const CompiledNet compiled(fixture.net);
    const std::size_t exact =
        ParallelReachabilityExplorer(compiled).count_states();
    ReachabilityOptions options;
    options.max_states = exact;
    options.threads = 4;
    ParallelReachabilityExplorer par(compiled, options);
    const auto result = par.explore_all();
    EXPECT_FALSE(result.truncated);
    EXPECT_EQ(result.states_explored, exact);
}

// ------------------------------------------- concurrent interning table --

TEST(ConcurrentMarkingStore, InternsDedupesAndEnforcesCapacity) {
    ConcurrentMarkingStore store(2, 1, 1);
    store.reserve(2);
    const std::uint64_t a[2] = {1, 2};
    const std::uint64_t b[2] = {3, 4};
    const auto ra = store.intern(a, 0, 2);
    EXPECT_TRUE(ra.inserted);
    EXPECT_EQ(ra.id, 0u);
    const auto ra2 = store.intern(a, 0, 2);
    EXPECT_FALSE(ra2.inserted);
    EXPECT_EQ(ra2.id, 0u);
    const auto rb = store.intern(b, 0, 2);
    EXPECT_TRUE(rb.inserted);
    EXPECT_EQ(rb.id, 1u);
    const std::uint64_t c[2] = {5, 6};
    const auto rc = store.intern(c, 0, 2);  // over capacity
    EXPECT_FALSE(rc.inserted);
    EXPECT_EQ(rc.id, ConcurrentMarkingStore::kNone);
    EXPECT_EQ(store.size(), 2u);
    EXPECT_EQ(store[1][0], 3u);
    // Meta words start zeroed and belong to the caller.
    EXPECT_EQ(store.meta_offset(), 2u);
    EXPECT_EQ(store[0][store.meta_offset()], 0u);
    store.record_mut(0)[store.meta_offset()] = 77;
    EXPECT_EQ(store[0][store.meta_offset()], 77u);
}

TEST(ConcurrentMarkingStore, ConcurrentInterningIsConsistent) {
    // All workers intern overlapping slices of the same key universe;
    // every key must get exactly one dense id, agreed on by all workers.
    constexpr std::size_t kKeys = 20000;
    constexpr std::size_t kWorkers = 8;
    ConcurrentMarkingStore store(1, 0, kWorkers);
    store.reserve(kKeys);

    std::vector<std::vector<std::uint32_t>> ids(
        kWorkers, std::vector<std::uint32_t>(kKeys));
    std::vector<std::thread> pool;
    for (std::size_t w = 0; w < kWorkers; ++w) {
        pool.emplace_back([&store, &ids, w]() {
            // Distinct per-worker visit order so claims genuinely race.
            // (No gtest assertions in here: kNone sentinels are checked
            // on the main thread after the join.)
            util::Rng rng(0x9000 + w);
            std::vector<std::uint64_t> keys(kKeys);
            for (std::size_t i = 0; i < kKeys; ++i) keys[i] = i;
            for (std::size_t i = kKeys; i > 1; --i) {
                std::swap(keys[i - 1], keys[rng.below(i)]);
            }
            for (const std::uint64_t key : keys) {
                ids[w][key] = store.intern(&key, w, kKeys).id;
            }
        });
    }
    for (auto& t : pool) t.join();

    EXPECT_EQ(store.size(), kKeys);
    for (std::size_t key = 0; key < kKeys; ++key) {
        ASSERT_NE(ids[0][key], ConcurrentMarkingStore::kNone) << key;
    }
    for (std::size_t w = 1; w < kWorkers; ++w) {
        ASSERT_EQ(ids[w], ids[0]) << "worker " << w;
    }
    for (std::size_t key = 0; key < kKeys; ++key) {
        EXPECT_EQ(store[ids[0][key]][0], key);
    }
}

// ------------------------------------------------------ facade adoption --

TEST(ParallelVerify, VerifierThreadsKnobKeepsReportsEquivalent) {
    auto p = ope::build_reconfigurable_ope_dfs(3, 3);
    pipeline::reset_ring(p.graph, p.stages[1].global_ring,
                         dfs::TokenValue::False);

    verify::VerifyOptions sequential;
    sequential.threads = 1;
    const verify::Verifier seq(p.graph, sequential);
    const auto seq_report = seq.verify_all();

    for (const std::size_t threads : kThreadCounts) {
        verify::VerifyOptions options;
        options.threads = threads;
        const verify::Verifier par(p.graph, options);
        const auto par_report = par.verify_all();
        ASSERT_EQ(par_report.findings.size(), seq_report.findings.size());
        for (std::size_t i = 0; i < seq_report.findings.size(); ++i) {
            const auto& sf = seq_report.findings[i];
            const auto& pf = par_report.findings[i];
            EXPECT_EQ(pf.property, sf.property);
            EXPECT_EQ(pf.violated, sf.violated) << i;
            EXPECT_EQ(pf.truncated, sf.truncated) << i;
            EXPECT_EQ(pf.states_explored, sf.states_explored) << i;
            EXPECT_EQ(pf.trace.size(), sf.trace.size()) << i;
        }
        EXPECT_EQ(par.explorations_run(), 1u);
    }
}

TEST(ParallelVerify, DesignAdoptsThreadsThroughOptions) {
    flow::DesignOptions options;
    options.verify.threads = 2;
    flow::Design design(ope::build_reconfigurable_ope_dfs(3, 3), options);
    const auto report = design.verify();
    EXPECT_TRUE(report.clean());
    EXPECT_EQ(design.verifier().explorations_run(), 1u);

    flow::DesignOptions sequential_options;
    sequential_options.verify.threads = 1;  // pin: default 0 = all cores
    flow::Design sequential(ope::build_reconfigurable_ope_dfs(3, 3),
                            sequential_options);
    const auto seq_report = sequential.verify();
    ASSERT_EQ(report.findings.size(), seq_report.findings.size());
    for (std::size_t i = 0; i < report.findings.size(); ++i) {
        EXPECT_EQ(report.findings[i].violated,
                  seq_report.findings[i].violated);
        EXPECT_EQ(report.findings[i].states_explored,
                  seq_report.findings[i].states_explored);
    }
}

}  // namespace
}  // namespace rap::petri
