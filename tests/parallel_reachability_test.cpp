// Differential harness for the parallel-frontier reachability engine:
// every fixture model runs through the sequential ReachabilityExplorer
// and the ParallelReachabilityExplorer at several thread counts, and the
// answers must agree exactly — states/edges explored, deadlock sets,
// persistence-violation sets, goal verdicts, witness lengths — plus a
// repeated-run determinism check, the parallel truncation contract, the
// concurrent interning table's own invariants, and the facade adoption
// (verify::Verifier / flow::Design behind VerifyOptions::threads).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "dfs/model.hpp"
#include "flow/design.hpp"
#include "ope/dfs_models.hpp"
#include "petri/parallel.hpp"
#include "petri/predicate.hpp"
#include "petri/reachability.hpp"
#include "petri_fixtures.hpp"
#include "pipeline/builder.hpp"
#include "util/rng.hpp"
#include "util/steal_deque.hpp"

namespace rap::petri {
namespace {

using namespace testfx;  // model zoo + differential plumbing

constexpr std::size_t kThreadCounts[] = {2, 4, 8};

// ------------------------------------------------------ differential --

void expect_equivalent(const Net& net, const MultiResult& seq,
                       const MultiResult& par, const std::string& context) {
    EXPECT_EQ(par.states_explored, seq.states_explored) << context;
    EXPECT_EQ(par.edges_explored, seq.edges_explored) << context;
    EXPECT_FALSE(par.truncated) << context;
    EXPECT_FALSE(seq.truncated) << context;

    EXPECT_EQ(sorted(par.deadlocks), sorted(seq.deadlocks)) << context;
    EXPECT_EQ(violation_set(par.persistence_violations),
              violation_set(seq.persistence_violations))
        << context;

    ASSERT_EQ(par.goals.size(), seq.goals.size()) << context;
    for (std::size_t g = 0; g < seq.goals.size(); ++g) {
        const auto& sg = seq.goals[g];
        const auto& pg = par.goals[g];
        ASSERT_EQ(pg.found(), sg.found()) << context << " goal " << g;
        if (!sg.found()) continue;
        // BFS-shortest witnesses: equal depth, though the parallel
        // engine may pick a different (canonical) marking of that depth.
        ASSERT_TRUE(sg.witness_trace.has_value()) << context;
        ASSERT_TRUE(pg.witness_trace.has_value()) << context;
        EXPECT_EQ(pg.witness_trace->firings.size(),
                  sg.witness_trace->firings.size())
            << context << " goal " << g;
        expect_replays(net, *pg.witness_trace, *pg.witness,
                       context + " goal " + std::to_string(g));
    }
}

// -------------------------------------------------------- differential --

TEST(ParallelReachability, DifferentialAgainstSequentialOnEveryFixture) {
    for (const Fixture& fixture : all_fixtures()) {
        const CompiledNet compiled(fixture.net);
        const QueryBundle bundle(fixture.net);

        ReachabilityOptions seq_options;
        seq_options.stop_at_first_match = false;
        ReachabilityExplorer seq(compiled, seq_options);
        const auto reference = seq.run_query(bundle.query);

        for (const std::size_t threads : kThreadCounts) {
            ReachabilityOptions options;
            options.stop_at_first_match = false;
            options.threads = threads;
            ParallelReachabilityExplorer par(compiled, options);
            const auto result = par.run_query(bundle.query);
            expect_equivalent(fixture.net, reference, result,
                              fixture.name + " @" +
                                  std::to_string(threads) + "t");
        }
    }
}

TEST(CompactStore, DifferentialZooAcrossThreadCounts) {
    // The capacity-tier layout: id-less interning slots carrying arena
    // back-references. Results must be bit-identical to the legacy
    // layout on the whole zoo at 1 (sequential) and 2/4/8 threads — the
    // layout changes where records live, never what gets explored.
    for (const Fixture& fixture : all_fixtures()) {
        const CompiledNet compiled(fixture.net);
        const QueryBundle bundle(fixture.net);

        ReachabilityOptions seq_options;
        seq_options.stop_at_first_match = false;
        ReachabilityExplorer seq(compiled, seq_options);
        const auto reference = seq.run_query(bundle.query);

        ReachabilityOptions compact_seq = seq_options;
        compact_seq.compact_store = true;
        ReachabilityExplorer cseq(compiled, compact_seq);
        const auto compact_reference = cseq.run_query(bundle.query);
        expect_equivalent(fixture.net, reference, compact_reference,
                          fixture.name + " compact @1t");
        EXPECT_TRUE(compact_reference.memory.store.compact)
            << fixture.name;
        EXPECT_FALSE(reference.memory.store.compact) << fixture.name;

        for (const std::size_t threads : kThreadCounts) {
            ReachabilityOptions options;
            options.stop_at_first_match = false;
            options.threads = threads;
            options.compact_store = true;
            ParallelReachabilityExplorer par(compiled, options);
            const auto result = par.run_query(bundle.query);
            expect_equivalent(fixture.net, reference, result,
                              fixture.name + " compact @" +
                                  std::to_string(threads) + "t");
            EXPECT_TRUE(result.memory.store.compact)
                << fixture.name << " @" << threads << "t";
        }
    }
}

TEST(ParallelReachability, RandomizedDifferentialFuzzer) {
    // >= 20 seeded random models across three topology classes (rings
    // with bridges, fork/join blocks, bridged meshes), each cross-checked
    // sequential vs 2/4/8 threads on every counter and set the
    // differential contract covers. On mismatch the context names the
    // seed and topology to replay.
    for (std::uint64_t seed = 1; seed <= 24; ++seed) {
        const Fixture fixture = fuzz_fixture(seed);
        SCOPED_TRACE("fuzz seed=" + std::to_string(seed) + " model=" +
                     fixture.name);
        const CompiledNet compiled(fixture.net);
        const QueryBundle bundle(fixture.net);

        ReachabilityOptions seq_options;
        seq_options.stop_at_first_match = false;
        ReachabilityExplorer seq(compiled, seq_options);
        const auto reference = seq.run_query(bundle.query);
        ASSERT_FALSE(reference.truncated) << fixture.name;

        for (const std::size_t threads : kThreadCounts) {
            ReachabilityOptions options;
            options.stop_at_first_match = false;
            options.threads = threads;
            ParallelReachabilityExplorer par(compiled, options);
            const auto result = par.run_query(bundle.query);
            expect_equivalent(fixture.net, reference, result,
                              "fuzz seed=" + std::to_string(seed) +
                                  " model=" + fixture.name + " @" +
                                  std::to_string(threads) + "t");
        }
    }
}

TEST(ParallelReachability, WorkStealingMatchesCursorOnNarrowLayers) {
    // The steal-heavy workload: deep rings whose BFS layers stay narrow,
    // where deque scheduling actually redistributes work. Both
    // schedulers must produce the canonical results at every thread
    // count.
    for (const Fixture& fixture :
         {deep_ring_fixture(16, 8), deep_ring_fixture(16, 4)}) {
        const CompiledNet compiled(fixture.net);
        const QueryBundle bundle(fixture.net);

        ReachabilityOptions seq_options;
        seq_options.stop_at_first_match = false;
        ReachabilityExplorer seq(compiled, seq_options);
        const auto reference = seq.run_query(bundle.query);

        for (const std::size_t threads : kThreadCounts) {
            for (const bool stealing : {true, false}) {
                ReachabilityOptions options;
                options.stop_at_first_match = false;
                options.threads = threads;
                options.work_stealing = stealing;
                ParallelReachabilityExplorer par(compiled, options);
                const auto result = par.run_query(bundle.query);
                expect_equivalent(
                    fixture.net, reference, result,
                    fixture.name + (stealing ? " steal" : " cursor") +
                        " @" + std::to_string(threads) + "t");
            }
        }
    }
}

TEST(ParallelReachability, FinderSurfaceMatchesSequential) {
    // The convenience entry points (find / find_all / find_deadlocks /
    // explore_all / count_states) answer like the sequential engine's.
    const Fixture fixture = gap_fixture();
    const Net& net = fixture.net;
    const CompiledNet compiled(net);

    ReachabilityExplorer seq(compiled);
    ReachabilityOptions options;
    options.threads = 4;
    ParallelReachabilityExplorer par(compiled, options);

    EXPECT_EQ(par.count_states(), seq.count_states());

    const auto seq_dead = seq.find_deadlocks();
    const auto par_dead = par.find_deadlocks();
    EXPECT_EQ(par_dead.states_explored, seq_dead.states_explored);
    EXPECT_EQ(sorted(par_dead.deadlocks), sorted(seq_dead.deadlocks));
    ASSERT_TRUE(par_dead.found());
    EXPECT_EQ(par_dead.witness_trace->firings.size(),
              seq_dead.witness_trace->firings.size());

    // Early-stop single-goal search: same verdict and witness depth (the
    // parallel engine finishes the resolving layer, so state counters may
    // legitimately exceed the sequential mid-layer stop).
    const auto goal = Predicate::deadlock();
    const auto seq_hit = ReachabilityExplorer(compiled).find(goal);
    const auto par_hit =
        ParallelReachabilityExplorer(compiled, options).find(goal);
    ASSERT_TRUE(seq_hit.found());
    ASSERT_TRUE(par_hit.found());
    EXPECT_EQ(par_hit.witness_trace->firings.size(),
              seq_hit.witness_trace->firings.size());
}

TEST(ParallelReachability, SingleThreadIsTheSequentialCodePath) {
    // threads == 1 must reproduce the sequential engine bit for bit,
    // including its discovery-order witness (not the canonical one).
    const Fixture fixture = gap_fixture();
    const CompiledNet compiled(fixture.net);
    const QueryBundle bundle(fixture.net);

    ReachabilityOptions options;
    options.stop_at_first_match = false;
    ReachabilityExplorer seq(compiled, options);
    const auto reference = seq.run_query(bundle.query);

    options.threads = 1;
    ParallelReachabilityExplorer par(compiled, options);
    const auto result = par.run_query(bundle.query);

    EXPECT_EQ(result.states_explored, reference.states_explored);
    EXPECT_EQ(result.edges_explored, reference.edges_explored);
    ASSERT_EQ(result.goals.size(), reference.goals.size());
    for (std::size_t g = 0; g < reference.goals.size(); ++g) {
        ASSERT_EQ(result.goals[g].found(), reference.goals[g].found());
        if (!reference.goals[g].found()) continue;
        EXPECT_EQ(result.goals[g].witness, reference.goals[g].witness);
        EXPECT_EQ(result.goals[g].witness_trace->firings,
                  reference.goals[g].witness_trace->firings);
    }
}

// --------------------------------------------------------- determinism --

TEST(ParallelReachability, RepeatedRunsAreDeterministic) {
    // Ten runs per thread count: verdicts, counters, deadlock sets and
    // full witness traces must be identical run over run (the canonical
    // witness selection makes them identical across thread counts too).
    const Fixture fixture = gap_fixture();
    const CompiledNet compiled(fixture.net);
    const QueryBundle bundle(fixture.net);

    std::optional<MultiResult> baseline;
    for (const std::size_t threads : kThreadCounts) {
        ReachabilityOptions options;
        options.stop_at_first_match = false;
        options.threads = threads;
        for (int run = 0; run < 10; ++run) {
            ParallelReachabilityExplorer par(compiled, options);
            const auto result = par.run_query(bundle.query);
            if (!baseline) {
                baseline = result;
                ASSERT_TRUE(result.goals[0].found());
                continue;
            }
            const std::string context = "run " + std::to_string(run) +
                                        " @" + std::to_string(threads) +
                                        "t";
            EXPECT_EQ(result.states_explored, baseline->states_explored)
                << context;
            EXPECT_EQ(result.edges_explored, baseline->edges_explored)
                << context;
            EXPECT_EQ(sorted(result.deadlocks), sorted(baseline->deadlocks))
                << context;
            ASSERT_EQ(result.goals.size(), baseline->goals.size());
            for (std::size_t g = 0; g < result.goals.size(); ++g) {
                ASSERT_EQ(result.goals[g].found(),
                          baseline->goals[g].found())
                    << context;
                if (!baseline->goals[g].found()) continue;
                EXPECT_EQ(result.goals[g].witness,
                          baseline->goals[g].witness)
                    << context;
                EXPECT_EQ(result.goals[g].witness_trace->firings,
                          baseline->goals[g].witness_trace->firings)
                    << context;
            }
        }
    }
}

// ---------------------------------------------------------- truncation --

TEST(ParallelReachability, TruncationContract) {
    // With max_states below the true count the pass must stop truncated.
    // Contract: never above max_states, and — because ids are allocated
    // densely below the cap — exactly max_states, at every thread count
    // (threads == 1 inherits the sequential engine's exact guarantee).
    const Fixture fixture = ope_fixture(3, 3);  // 191k true states
    const CompiledNet compiled(fixture.net);
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                      std::size_t{4}, std::size_t{8}}) {
        ReachabilityOptions options;
        options.max_states = 4096;
        options.threads = threads;
        ParallelReachabilityExplorer par(compiled, options);
        const auto result = par.explore_all();
        EXPECT_TRUE(result.truncated) << threads;
        EXPECT_EQ(result.states_explored, 4096u) << threads;
    }
}

TEST(ParallelReachability, NoTruncationAtExactFit) {
    const Fixture fixture = gap_fixture();
    const CompiledNet compiled(fixture.net);
    const std::size_t exact =
        ParallelReachabilityExplorer(compiled).count_states();
    ReachabilityOptions options;
    options.max_states = exact;
    options.threads = 4;
    ParallelReachabilityExplorer par(compiled, options);
    const auto result = par.explore_all();
    EXPECT_FALSE(result.truncated);
    EXPECT_EQ(result.states_explored, exact);
}

// ------------------------------------------------------- stop hook ------

TEST(StopHook, FiresWithinEdgeBoundOnReducedPasses) {
    // Regression: the stop hook used to be polled on interned *states*
    // only (every 2048 in the sequential engine, per layer in the
    // parallel one), so a heavily POR-reduced pass — few fresh states,
    // many edges — could run far past its deadline. Both engines now
    // also poll every 256 expanded edges; with a hook that trips right
    // after its first call the pass must stop within a small edge
    // budget, nowhere near the fixture's full reduced exploration.
    const Fixture fixture = ope_fixture(3, 3);
    const CompiledNet compiled(fixture.net);
    MultiQuery query;
    query.collect_deadlocks = true;

    // Sequential engine: polls at head & 2047 == 0 states AND every 256
    // edges, so after the hook trips at most 256 edges can pass.
    {
        std::atomic<std::size_t> calls{0};
        ReachabilityOptions options;
        options.stop_at_first_match = false;
        options.por = true;
        options.stop = [&calls] {
            return calls.fetch_add(1, std::memory_order_relaxed) >= 1;
        };
        ReachabilityExplorer seq(compiled, options);
        const auto result = seq.run_query(query);
        EXPECT_TRUE(result.truncated);
        EXPECT_LE(result.edges_explored, 512u)
            << "sequential edge poll missed its bound";
    }

    // Parallel engine: per-layer serial poll plus a per-worker poll
    // every 256 edges, so the bound scales with the worker count.
    for (const std::size_t threads : kThreadCounts) {
        std::atomic<std::size_t> calls{0};
        ReachabilityOptions options;
        options.stop_at_first_match = false;
        options.por = true;
        options.threads = threads;
        options.stop = [&calls] {
            return calls.fetch_add(1, std::memory_order_relaxed) >= 1;
        };
        ParallelReachabilityExplorer par(compiled, options);
        const auto result = par.run_query(query);
        EXPECT_TRUE(result.truncated) << threads;
        EXPECT_LE(result.edges_explored, 512u * threads + 512u)
            << "parallel edge poll missed its bound @" << threads << "t";
    }
}

// ----------------------------------------------------- memory contract --

/// Full results of two passes must be indistinguishable: counters, sets,
/// witness markings AND traces (both configurations pick the canonical
/// witness, so full equality is the contract, not just equal depths).
void expect_identical(const MultiResult& a, const MultiResult& b,
                      const std::string& context) {
    EXPECT_EQ(a.states_explored, b.states_explored) << context;
    EXPECT_EQ(a.edges_explored, b.edges_explored) << context;
    EXPECT_EQ(a.truncated, b.truncated) << context;
    EXPECT_EQ(sorted(a.deadlocks), sorted(b.deadlocks)) << context;
    EXPECT_EQ(violation_set(a.persistence_violations),
              violation_set(b.persistence_violations))
        << context;
    ASSERT_EQ(a.goals.size(), b.goals.size()) << context;
    for (std::size_t g = 0; g < a.goals.size(); ++g) {
        ASSERT_EQ(a.goals[g].found(), b.goals[g].found())
            << context << " goal " << g;
        if (!a.goals[g].found()) continue;
        EXPECT_EQ(a.goals[g].witness, b.goals[g].witness)
            << context << " goal " << g;
        EXPECT_EQ(a.goals[g].witness_trace->firings,
                  b.goals[g].witness_trace->firings)
            << context << " goal " << g;
    }
    ASSERT_EQ(a.persistence_violations.size(),
              b.persistence_violations.size())
        << context;
    for (std::size_t v = 0; v < a.persistence_violations.size(); ++v) {
        EXPECT_EQ(a.persistence_violations[v].trace_to_marking.firings,
                  b.persistence_violations[v].trace_to_marking.firings)
            << context << " violation " << v;
    }
}

TEST(MemoryDiet, CacheDropsEnabledShareAndKeepsResultsBitIdentical) {
    // The frontier-only enabled-set cache must (a) change no answer bit
    // and (b) shrink record bytes by the enabled-word share of the
    // record — the diet that fits the ~19M-state OPE models in memory.
    const Fixture fixture = ope_fixture(3, 3);
    const CompiledNet compiled(fixture.net);
    const QueryBundle bundle(fixture.net);

    MultiResult with_cache;
    MultiResult without_cache;
    for (const bool cache : {true, false}) {
        ReachabilityOptions options;
        options.stop_at_first_match = false;
        options.threads = 4;
        options.frontier_enabled_cache = cache;
        ParallelReachabilityExplorer par(compiled, options);
        (cache ? with_cache : without_cache) = par.run_query(bundle.query);
    }
    expect_identical(with_cache, without_cache, "ope_s3_d3 cache on/off");

    // Record layout: marking + 2 witness meta words, plus the enabled
    // words only when the cache is off. Arena block granularity makes
    // the measured byte counts approximate; 5% covers it at 191k states.
    const std::size_t mwords = compiled.marking_words();
    const std::size_t twords = compiled.enabled_words();
    const double expected_drop =
        static_cast<double>(twords) /
        static_cast<double>(mwords + 2 + twords);
    EXPECT_EQ(with_cache.memory.records, with_cache.states_explored);
    ASSERT_GT(without_cache.memory.record_bytes, 0u);
    const double drop =
        1.0 - static_cast<double>(with_cache.memory.record_bytes) /
                  static_cast<double>(without_cache.memory.record_bytes);
    EXPECT_NEAR(drop, expected_drop, 0.05)
        << "record diet off-target: " << with_cache.memory.record_bytes
        << " vs " << without_cache.memory.record_bytes << " bytes";
    EXPECT_LT(with_cache.memory.resident_bytes,
              without_cache.memory.resident_bytes);
    EXPECT_GE(with_cache.memory.peak_bytes,
              with_cache.memory.resident_bytes);

    // The sequential engine's variant of the cache (block release behind
    // the implicit frontier) obeys the same result contract.
    ReachabilityOptions seq_options;
    seq_options.stop_at_first_match = false;
    MultiResult seq_with;
    MultiResult seq_without;
    for (const bool cache : {true, false}) {
        seq_options.frontier_enabled_cache = cache;
        ReachabilityExplorer seq(compiled, seq_options);
        (cache ? seq_with : seq_without) = seq.run_query(bundle.query);
    }
    expect_identical(seq_with, seq_without, "ope_s3_d3 sequential on/off");
    EXPECT_LT(seq_with.memory.resident_bytes,
              seq_without.memory.resident_bytes);
    EXPECT_GT(seq_without.memory.peak_bytes, 0u);
}

TEST(MemoryDiet, EvictionPathStressUnderEveryScheduler) {
    // Many-layer model, every scheduler/witness-tree combination: the
    // arena recycling (parallel) and block release (sequential) paths
    // the ASan job must walk. Witness traces are materialised to force
    // reconstruction after eviction.
    const Fixture fixture = gap_fixture();
    const CompiledNet compiled(fixture.net);
    const QueryBundle bundle(fixture.net);

    ReachabilityOptions seq_options;
    seq_options.stop_at_first_match = false;
    ReachabilityExplorer seq(compiled, seq_options);
    const auto reference = seq.run_query(bundle.query);

    for (const bool stealing : {true, false}) {
        for (const bool cas :
             {true, false}) {
            ReachabilityOptions options;
            options.stop_at_first_match = false;
            options.threads = 4;
            options.work_stealing = stealing;
            options.witness_tree =
                cas ? ReachabilityOptions::WitnessTree::kCanonicalCas
                    : ReachabilityOptions::WitnessTree::kResweep;
            ParallelReachabilityExplorer par(compiled, options);
            const auto result = par.run_query(bundle.query);
            expect_equivalent(fixture.net, reference, result,
                              std::string("gap eviction ") +
                                  (stealing ? "steal" : "cursor") +
                                  (cas ? " cas" : " resweep"));
        }
    }
}

TEST(MemoryDiet, ReducedPassAccountsRowsAtAmpleWidth) {
    // ROADMAP follow-up (a): a reduced pass that never widens (no
    // persistence check, no proviso — deadlock collection only) stores
    // frontier rows as [full | ample] with the ample set computed at
    // discovery, and accounts out-edge provisioning at ample width. The
    // contract: answers and reduction statistics are bit-identical to
    // the expansion-time reduction path (diet off), while records still
    // shed their enabled words.
    const Fixture fixture = ope_fixture(3, 3);
    const CompiledNet compiled(fixture.net);
    MultiQuery query;
    query.collect_deadlocks = true;

    ReachabilityOptions seq_options;
    seq_options.stop_at_first_match = false;
    seq_options.por = true;
    ReachabilityExplorer seq(compiled, seq_options);
    const auto reference = seq.run_query(query);
    ASSERT_TRUE(reference.por.active);
    ASSERT_GT(reference.por.ignored(), 0u) << "fixture must actually reduce";

    MultiResult with_cache;
    MultiResult without_cache;
    for (const bool cache : {true, false}) {
        ReachabilityOptions options;
        options.stop_at_first_match = false;
        options.threads = 4;
        options.por = true;
        options.frontier_enabled_cache = cache;
        ParallelReachabilityExplorer par(compiled, options);
        (cache ? with_cache : without_cache) = par.run_query(query);
    }
    expect_identical(with_cache, without_cache, "reduced diet on/off");
    EXPECT_EQ(with_cache.states_explored, reference.states_explored);
    EXPECT_EQ(sorted(with_cache.deadlocks), sorted(reference.deadlocks));

    // Discovery-time and expansion-time ample computation must agree on
    // every reduction statistic, not just the verdicts.
    EXPECT_TRUE(with_cache.por.active);
    EXPECT_EQ(with_cache.por.expansions, without_cache.por.expansions);
    EXPECT_EQ(with_cache.por.reduced_expansions,
              without_cache.por.reduced_expansions);
    EXPECT_EQ(with_cache.por.proviso_expansions,
              without_cache.por.proviso_expansions);
    EXPECT_EQ(with_cache.por.enabled_transitions,
              without_cache.por.enabled_transitions);
    EXPECT_EQ(with_cache.por.expanded_transitions,
              without_cache.por.expanded_transitions);

    // Arena-block granularity dominates record_bytes at POR-reduced
    // sizes (a few thousand states), so the enabled-word byte ratio is
    // not measurable here — the full-pass diet test covers it. What
    // must hold on the reduced pass: every record is accounted, and the
    // per-worker [full | ample] row arenas show up in the resident
    // accounting (diet off has no row arenas — its enabled words live
    // inside the store records).
    EXPECT_EQ(with_cache.memory.records, with_cache.states_explored);
    ASSERT_GT(without_cache.memory.record_bytes, 0u);
    ASSERT_GE(with_cache.memory.resident_bytes,
              with_cache.memory.record_bytes);
    const std::size_t with_overhead =
        with_cache.memory.resident_bytes - with_cache.memory.record_bytes;
    const std::size_t without_overhead =
        without_cache.memory.resident_bytes -
        without_cache.memory.record_bytes;
    EXPECT_GT(with_overhead, without_overhead)
        << "ample-width row arenas must be part of the resident accounting";
    EXPECT_GE(with_cache.memory.peak_bytes,
              with_cache.memory.resident_bytes);
}

// --------------------------------------------------------- witness tree --

TEST(WitnessTree, CasAndResweepProduceIdenticalCanonicalTraces) {
    // The canonical-min CAS maintained during exploration and the serial
    // re-sweep must build the SAME deterministic tree: identical witness
    // markings and identical traces, with the cache on and off.
    const Fixture fixture = gap_fixture();
    const CompiledNet compiled(fixture.net);
    const QueryBundle bundle(fixture.net);

    std::optional<MultiResult> baseline;
    for (const bool cache : {true, false}) {
        for (const bool cas : {true, false}) {
            ReachabilityOptions options;
            options.stop_at_first_match = false;
            options.threads = 4;
            options.frontier_enabled_cache = cache;
            options.witness_tree =
                cas ? ReachabilityOptions::WitnessTree::kCanonicalCas
                    : ReachabilityOptions::WitnessTree::kResweep;
            ParallelReachabilityExplorer par(compiled, options);
            auto result = par.run_query(bundle.query);
            if (!baseline) {
                ASSERT_TRUE(result.goals[0].found());
                baseline = std::move(result);
                continue;
            }
            expect_identical(*baseline, result,
                             std::string("witness tree ") +
                                 (cas ? "cas" : "resweep") +
                                 (cache ? " cache" : " nocache"));
        }
    }
}

// ------------------------------------------- concurrent interning table --

TEST(ConcurrentMarkingStore, InternsDedupesAndEnforcesCapacity) {
    ConcurrentMarkingStore store(2, 1, 1);
    store.reserve(2);
    const std::uint64_t a[2] = {1, 2};
    const std::uint64_t b[2] = {3, 4};
    const auto ra = store.intern(a, 0, 2);
    EXPECT_TRUE(ra.inserted);
    EXPECT_EQ(ra.id, 0u);
    const auto ra2 = store.intern(a, 0, 2);
    EXPECT_FALSE(ra2.inserted);
    EXPECT_EQ(ra2.id, 0u);
    const auto rb = store.intern(b, 0, 2);
    EXPECT_TRUE(rb.inserted);
    EXPECT_EQ(rb.id, 1u);
    const std::uint64_t c[2] = {5, 6};
    const auto rc = store.intern(c, 0, 2);  // over capacity
    EXPECT_FALSE(rc.inserted);
    EXPECT_EQ(rc.id, ConcurrentMarkingStore::kNone);
    EXPECT_EQ(store.size(), 2u);
    EXPECT_EQ(store[1][0], 3u);
    // Meta words start zeroed and belong to the caller.
    EXPECT_EQ(store.meta_offset(), 2u);
    EXPECT_EQ(store[0][store.meta_offset()], 0u);
    store.record_mut(0)[store.meta_offset()] = 77;
    EXPECT_EQ(store[0][store.meta_offset()], 77u);
}

TEST(ConcurrentMarkingStore, ConcurrentInterningIsConsistent) {
    // All workers intern overlapping slices of the same key universe;
    // every key must get exactly one dense id, agreed on by all workers.
    constexpr std::size_t kKeys = 20000;
    constexpr std::size_t kWorkers = 8;
    ConcurrentMarkingStore store(1, 0, kWorkers);
    store.reserve(kKeys);

    std::vector<std::vector<std::uint32_t>> ids(
        kWorkers, std::vector<std::uint32_t>(kKeys));
    std::vector<std::thread> pool;
    for (std::size_t w = 0; w < kWorkers; ++w) {
        pool.emplace_back([&store, &ids, w]() {
            // Distinct per-worker visit order so claims genuinely race.
            // (No gtest assertions in here: kNone sentinels are checked
            // on the main thread after the join.)
            util::Rng rng(0x9000 + w);
            std::vector<std::uint64_t> keys(kKeys);
            for (std::size_t i = 0; i < kKeys; ++i) keys[i] = i;
            for (std::size_t i = kKeys; i > 1; --i) {
                std::swap(keys[i - 1], keys[rng.below(i)]);
            }
            for (const std::uint64_t key : keys) {
                ids[w][key] = store.intern(&key, w, kKeys).id;
            }
        });
    }
    for (auto& t : pool) t.join();

    EXPECT_EQ(store.size(), kKeys);
    for (std::size_t key = 0; key < kKeys; ++key) {
        ASSERT_NE(ids[0][key], ConcurrentMarkingStore::kNone) << key;
    }
    for (std::size_t w = 1; w < kWorkers; ++w) {
        ASSERT_EQ(ids[w], ids[0]) << "worker " << w;
    }
    for (std::size_t key = 0; key < kKeys; ++key) {
        EXPECT_EQ(store[ids[0][key]][0], key);
    }
}

// ------------------------------------------------- work-stealing deque --

TEST(StealDeque, OwnerAndThievesClaimEveryTaskExactlyOnce) {
    // Steal-heavy hammering: one owner pops while 7 thieves strip the
    // deque from the other end; every task must be claimed exactly once.
    // This is the stress profile of a narrow BFS layer, and the TSan CI
    // job runs it to keep the deque's memory ordering honest.
    constexpr std::size_t kTasks = 100000;
    constexpr std::size_t kThieves = 7;
    util::StealDeque deque;
    deque.reset_and_reserve(kTasks);
    for (std::size_t i = 0; i < kTasks; ++i) deque.push(i);

    std::vector<std::atomic<std::uint32_t>> claimed(kTasks);
    std::atomic<bool> go{false};
    std::atomic<std::size_t> total{0};
    auto thief = [&deque, &claimed, &go, &total]() {
        while (!go.load(std::memory_order_acquire)) {}
        std::uint64_t task;
        std::size_t mine = 0;
        for (;;) {
            if (deque.steal(task)) {
                claimed[task].fetch_add(1, std::memory_order_relaxed);
                ++mine;
            } else if (deque.empty()) {
                break;
            }
        }
        total.fetch_add(mine, std::memory_order_relaxed);
    };
    std::vector<std::thread> pool;
    for (std::size_t k = 0; k < kThieves; ++k) pool.emplace_back(thief);
    go.store(true, std::memory_order_release);
    {
        std::uint64_t task;
        std::size_t mine = 0;
        while (deque.pop(task)) {
            claimed[task].fetch_add(1, std::memory_order_relaxed);
            ++mine;
        }
        // The owner's pop can fail while thieves still drain; sweep like
        // the engine does until the deque reads empty.
        for (;;) {
            if (deque.steal(task)) {
                claimed[task].fetch_add(1, std::memory_order_relaxed);
                ++mine;
            } else if (deque.empty()) {
                break;
            }
        }
        total.fetch_add(mine, std::memory_order_relaxed);
    }
    for (auto& t : pool) t.join();

    EXPECT_EQ(total.load(), kTasks);
    for (std::size_t i = 0; i < kTasks; ++i) {
        ASSERT_EQ(claimed[i].load(), 1u) << "task " << i;
    }
}

// ------------------------------------------------------ facade adoption --

TEST(ParallelVerify, VerifierThreadsKnobKeepsReportsEquivalent) {
    auto p = ope::build_reconfigurable_ope_dfs(3, 3);
    pipeline::reset_ring(p.graph, p.stages[1].global_ring,
                         dfs::TokenValue::False);

    verify::VerifyOptions sequential;
    sequential.threads = 1;
    const verify::Verifier seq(p.graph, sequential);
    const auto seq_report = seq.verify_all();

    for (const std::size_t threads : kThreadCounts) {
        verify::VerifyOptions options;
        options.threads = threads;
        const verify::Verifier par(p.graph, options);
        const auto par_report = par.verify_all();
        ASSERT_EQ(par_report.findings.size(), seq_report.findings.size());
        for (std::size_t i = 0; i < seq_report.findings.size(); ++i) {
            const auto& sf = seq_report.findings[i];
            const auto& pf = par_report.findings[i];
            EXPECT_EQ(pf.property, sf.property);
            EXPECT_EQ(pf.violated, sf.violated) << i;
            EXPECT_EQ(pf.truncated, sf.truncated) << i;
            EXPECT_EQ(pf.states_explored, sf.states_explored) << i;
            EXPECT_EQ(pf.trace.size(), sf.trace.size()) << i;
        }
        EXPECT_EQ(par.explorations_run(), 1u);
    }
}

TEST(ParallelVerify, DesignAdoptsThreadsThroughOptions) {
    flow::DesignOptions options;
    options.verify.threads = 2;
    flow::Design design(ope::build_reconfigurable_ope_dfs(3, 3), options);
    const auto report = design.verify();
    EXPECT_TRUE(report.clean());
    EXPECT_EQ(design.verifier().explorations_run(), 1u);

    flow::DesignOptions sequential_options;
    sequential_options.verify.threads = 1;  // pin: default 0 = all cores
    flow::Design sequential(ope::build_reconfigurable_ope_dfs(3, 3),
                            sequential_options);
    const auto seq_report = sequential.verify();
    ASSERT_EQ(report.findings.size(), seq_report.findings.size());
    for (std::size_t i = 0; i < report.findings.size(); ++i) {
        EXPECT_EQ(report.findings[i].violated,
                  seq_report.findings[i].violated);
        EXPECT_EQ(report.findings[i].states_explored,
                  seq_report.findings[i].states_explored);
    }
}

TEST(ParallelVerify, MemoryStatsSurfaceThroughVerifierAndDesign) {
    // memory_stats() rides the facades: std::nullopt before any
    // exploration, populated by verify(), and the enabled-set cache knob
    // reaches the engine through VerifyOptions with verdicts unchanged.
    flow::DesignOptions options;
    options.verify.threads = 2;
    flow::Design design(ope::build_reconfigurable_ope_dfs(3, 3), options);
    EXPECT_FALSE(design.memory_stats().has_value());
    const auto report = design.verify();
    ASSERT_TRUE(report.clean());
    ASSERT_TRUE(design.memory_stats().has_value());
    const auto stats = *design.memory_stats();
    EXPECT_EQ(stats.records, report.findings[0].states_explored);
    EXPECT_GT(stats.record_bytes, 0u);
    EXPECT_GT(stats.resident_bytes, stats.record_bytes);
    EXPECT_GE(stats.peak_bytes, stats.resident_bytes);

    flow::DesignOptions fat_options;
    fat_options.verify.threads = 2;
    fat_options.verify.frontier_enabled_cache = false;
    flow::Design fat(ope::build_reconfigurable_ope_dfs(3, 3), fat_options);
    const auto fat_report = fat.verify();
    ASSERT_TRUE(fat_report.clean());
    EXPECT_EQ(fat_report.findings[0].states_explored,
              report.findings[0].states_explored);
    ASSERT_TRUE(fat.memory_stats().has_value());
    EXPECT_GT(fat.memory_stats()->record_bytes, stats.record_bytes);
}

}  // namespace
}  // namespace rap::petri
