// flow::Design session tests: the cached-artifact contract (lazy build,
// at most one PN compile per model mutation, structure-only artifacts
// surviving reconfiguration), the fluent Spec single-pass guarantee, and
// DFS-level witnesses at the facade boundary.

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "dfs_helpers.hpp"
#include "flow/design.hpp"
#include "ope/dfs_models.hpp"

namespace rap::flow {
namespace {

using dfs::TokenValue;
using dfs::testing::make_fig1b;
using dfs::testing::ope_style_stages;

TEST(Design, ArtifactsAreLazyAndCached) {
    const Design design(make_fig1b().graph);
    EXPECT_EQ(design.pn_builds(), 0u);
    EXPECT_EQ(design.netlist_builds(), 0u);

    // First access builds; repeated access reuses the same object.
    const auto* translation = &design.translation();
    EXPECT_EQ(design.pn_builds(), 1u);
    EXPECT_EQ(&design.translation(), translation);
    EXPECT_EQ(&design.compiled_net(), &design.compiled_model()->compiled());
    EXPECT_EQ(design.pn_builds(), 1u);

    const auto* mapped = &design.netlist();
    EXPECT_EQ(design.netlist_builds(), 1u);
    EXPECT_EQ(&design.netlist(), mapped);
    EXPECT_EQ(design.netlist_builds(), 1u);
}

TEST(Design, RoundTripReconfigureInvalidatesOnlyPnArtifacts) {
    // The ISSUE round trip: verify clean -> reconfigure via set_depth ->
    // artifact invalidation observed -> re-verify. The netlist mapping
    // (structure-only) must survive the reconfiguration.
    Design design(pipeline::build_pipeline("p", ope_style_stages(3, 3)));

    const auto first = design.verify();
    EXPECT_TRUE(first.clean()) << first.to_string();
    EXPECT_EQ(design.pn_builds(), 1u);
    design.netlist();
    EXPECT_EQ(design.netlist_builds(), 1u);
    EXPECT_EQ(design.revision(), 0u);

    design.set_depth(2);
    EXPECT_EQ(design.revision(), 1u);
    // Invalidation is lazy: nothing rebuilt until asked for.
    EXPECT_EQ(design.pn_builds(), 1u);

    const auto second = design.verify();
    EXPECT_TRUE(second.clean()) << second.to_string();
    EXPECT_EQ(design.pn_builds(), 2u);

    // A second verify at the same configuration shares the rebuilt
    // artifact: at most ONE PN build per model mutation.
    const auto third = design.verify();
    EXPECT_TRUE(third.clean());
    EXPECT_EQ(design.pn_builds(), 2u);

    // The netlist never noticed: the mapping only depends on structure.
    design.netlist();
    EXPECT_EQ(design.netlist_builds(), 1u);
}

TEST(Design, SpecServesManyCustomPredicatesInOneExploration) {
    const Design design(make_fig1b().graph);
    const auto& net = design.translation().net;
    const auto report = design.verify(
        verify::Spec{}
            .deadlock()
            .custom("empty output",
                    petri::Predicate::marked(net, "Mf_out_1"))
            .custom("comp busy", petri::Predicate::marked(net, "M_comp_1"))
            .custom("impossible",
                    petri::Predicate::marked(net, "M_comp_1") &&
                        petri::Predicate::marked(net, "Mf_filt_1")));
    // One exploration answered all four properties.
    EXPECT_EQ(design.verifier().explorations_run(), 1u);
    ASSERT_EQ(report.findings.size(), 4u);
    EXPECT_EQ(report.findings[0].property, verify::Property::Deadlock);
    EXPECT_FALSE(report.findings[0].violated);
    EXPECT_TRUE(report.findings[1].violated);
    EXPECT_TRUE(report.findings[2].violated);
    EXPECT_FALSE(report.findings[3].violated);
}

TEST(Design, DeadlockWitnessSpeaksDfs) {
    // The gap configuration of the Section III-A workflow, driven
    // entirely through the facade: the witness the session reports is in
    // DFS event terms, not PN firing names.
    Design design(ope::build_reconfigurable_ope_dfs(3, 3));
    design.reset_ring(design.pipeline().stages[1].global_ring,
                      TokenValue::False);
    const auto finding = design.verifier().check_deadlock();
    ASSERT_TRUE(finding.violated);
    ASSERT_FALSE(finding.dfs_trace.empty());
    for (const auto& step : finding.dfs_trace) {
        EXPECT_EQ(step.find("_0"), std::string::npos) << step;
        EXPECT_EQ(step.find("+"), std::string::npos) << step;
    }
}

TEST(Design, VerifyThreadsOptionShardsTheSameExploration) {
    // The ReachabilityOptions::threads knob, adopted at the facade: a
    // session configured for parallel verification answers exactly what
    // the sequential session answers — same verdicts, same exhaustive
    // state counts, same witness depths — from the same shared compiled
    // artifact, still in one exploration per report.
    DesignOptions parallel_options;
    parallel_options.verify.threads = 4;
    Design parallel(ope::build_reconfigurable_ope_dfs(3, 3),
                    parallel_options);
    parallel.reset_ring(parallel.pipeline().stages[1].global_ring,
                        TokenValue::False);
    DesignOptions sequential_options;
    sequential_options.verify.threads = 1;  // pin: default 0 = all cores
    Design sequential(ope::build_reconfigurable_ope_dfs(3, 3),
                      sequential_options);
    sequential.reset_ring(sequential.pipeline().stages[1].global_ring,
                          TokenValue::False);

    const auto par = parallel.verify();
    const auto seq = sequential.verify();
    EXPECT_EQ(parallel.verifier().explorations_run(), 1u);
    ASSERT_EQ(par.findings.size(), seq.findings.size());
    for (std::size_t i = 0; i < seq.findings.size(); ++i) {
        EXPECT_EQ(par.findings[i].property, seq.findings[i].property);
        EXPECT_EQ(par.findings[i].violated, seq.findings[i].violated) << i;
        EXPECT_EQ(par.findings[i].states_explored,
                  seq.findings[i].states_explored)
            << i;
        EXPECT_EQ(par.findings[i].trace.size(), seq.findings[i].trace.size())
            << i;
    }
}

TEST(Design, SequentialVerifierSessionsShareOneCompile) {
    // Two design sessions (and their verifiers) over identical model
    // content share the artifact through the process cache — the
    // verify_pipeline.cpp double-construction scenario.
    const auto stages = ope_style_stages(3, 2);
    const Design first(pipeline::build_pipeline("shared", stages));
    const std::size_t builds_before = verify::artifact_builds();
    first.verifier();
    const std::size_t after_first = verify::artifact_builds();
    const Design second(pipeline::build_pipeline("shared", stages));
    second.verifier();
    EXPECT_EQ(verify::artifact_builds(), after_first);
    EXPECT_GE(after_first, builds_before);
    EXPECT_EQ(first.compiled_model().get(), second.compiled_model().get());
}

TEST(Design, EditInvalidatesEveryArtifact) {
    Design design(make_fig1b().graph);
    design.verify();
    design.netlist();
    EXPECT_EQ(design.pn_builds(), 1u);
    EXPECT_EQ(design.netlist_builds(), 1u);

    // A structural edit: tap the output with one more register.
    auto& g = design.edit();
    const auto tap = g.add_register("tap");
    g.connect(g.find("out").value(), tap);
    EXPECT_EQ(design.revision(), 1u);

    EXPECT_TRUE(design.verify().clean());
    design.netlist();
    EXPECT_EQ(design.pn_builds(), 2u);
    EXPECT_EQ(design.netlist_builds(), 2u);
    EXPECT_EQ(design.netlist().instances().size(),
              design.graph().node_count());
}

TEST(Design, GraphBackedSessionRejectsPipelineOps) {
    Design design(make_fig1b().graph);
    EXPECT_FALSE(design.has_pipeline());
    EXPECT_THROW(design.pipeline(), std::logic_error);
    EXPECT_THROW(design.set_depth(2), std::logic_error);
}

TEST(Design, SetInitialInvalidatesLikeReconfiguration) {
    const auto m = make_fig1b();
    Design design(m.graph);
    EXPECT_TRUE(design.verify().clean());
    design.netlist();
    // Seed a buggy initialisation through the session API.
    design.set_initial(m.comp, true);
    EXPECT_EQ(design.revision(), 1u);
    design.verify();
    EXPECT_EQ(design.pn_builds(), 2u);
    EXPECT_EQ(design.netlist_builds(), 1u);
}

TEST(Design, TimedSimulatorComesFromSessionArtifacts) {
    const Design design(make_fig1b().graph);
    auto sim = design.timed_sim();
    auto state = design.initial_state();
    asim::RunLimits limits;
    limits.max_events = 2000;
    const auto stats = sim.run(state, limits);
    EXPECT_GT(stats.events, 0u);
    EXPECT_FALSE(stats.deadlocked);
    // The timing annotation came from the netlist mapping: both built.
    EXPECT_EQ(design.netlist_builds(), 1u);
}

TEST(Design, ExportsComeFromTheSameCache) {
    const Design design(make_fig1b().graph);
    EXPECT_NE(design.to_dot().find("digraph"), std::string::npos);
    EXPECT_NE(design.to_astg().find(".model"), std::string::npos);
    EXPECT_NE(design.to_verilog().find("module"), std::string::npos);
    EXPECT_EQ(design.pn_builds(), 1u);
    EXPECT_EQ(design.netlist_builds(), 1u);
}

TEST(Design, MakeDesignReturnsMovableOwnerOfAPinnedSession) {
    // Design itself is non-movable (artifacts point into the owned
    // graph); make_design is the documented way to store or pool
    // sessions — the unique_ptr moves, the session stays pinned.
    std::unique_ptr<Design> design = make_design(make_fig1b().graph);
    const Design* address = design.get();
    const auto* translation = &design->translation();

    std::vector<std::unique_ptr<Design>> pool;
    pool.push_back(std::move(design));
    EXPECT_EQ(pool.back().get(), address);
    EXPECT_EQ(&pool.back()->translation(), translation);
    EXPECT_TRUE(pool.back()->verify().clean());

    // The pipeline overload keeps stage handles available.
    auto piped = make_design(
        pipeline::build_pipeline("mk", ope_style_stages(2, 2)));
    EXPECT_TRUE(piped->has_pipeline());
}

TEST(Design, ConstructorRejectsInconsistentOptionsWithClearMessage) {
    DesignOptions zero_cap;
    zero_cap.verify.max_states = 0;
    try {
        const Design design(make_fig1b().graph, zero_cap);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("max_states"),
                  std::string::npos);
    }

    DesignOptions frozen;
    frozen.process.v_nominal = frozen.process.v_freeze;
    try {
        make_design(make_fig1b().graph, frozen);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("v_nominal"),
                  std::string::npos);
    }

    DesignOptions bad_alpha;
    bad_alpha.process.alpha = 0.0;
    EXPECT_THROW(Design(make_fig1b().graph, bad_alpha),
                 std::invalid_argument);
}

}  // namespace
}  // namespace rap::flow
