#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "dfs/serialize.hpp"
#include "dfs_helpers.hpp"

namespace rap::dfs {
namespace {

using testing::make_fig1b;

bool graphs_equivalent(const Graph& a, const Graph& b) {
    if (a.name() != b.name() || a.node_count() != b.node_count() ||
        a.edge_count() != b.edge_count()) {
        return false;
    }
    for (const NodeId n : a.nodes()) {
        const auto other = b.find(a.node_name(n));
        if (!other || b.kind(*other) != a.kind(n)) return false;
        if (!a.is_logic(n)) {
            const auto& ia = a.initial(n);
            const auto& ib = b.initial(*other);
            if (ia.marked != ib.marked) return false;
            if (a.is_dynamic(n) && ia.marked && ia.token != ib.token) {
                return false;
            }
        }
        for (const NodeId succ : a.postset(n)) {
            const auto bsucc = b.find(a.node_name(succ));
            if (!bsucc) return false;
            const auto& post = b.postset(*other);
            if (std::find(post.begin(), post.end(), *bsucc) == post.end()) {
                return false;
            }
            if (a.is_inverted(n, succ) != b.is_inverted(*other, *bsucc)) {
                return false;
            }
        }
    }
    return true;
}

TEST(Serialize, RoundTripFig1b) {
    auto m = make_fig1b();
    m.graph.set_initial(m.ctrl, true, TokenValue::False);
    const std::string text = to_text(m.graph);
    const Graph loaded = from_text(text);
    EXPECT_TRUE(graphs_equivalent(m.graph, loaded));
    // Stable: serialising again yields identical text.
    EXPECT_EQ(to_text(loaded), text);
}

TEST(Serialize, RoundTripWithInvertedArcs) {
    Graph g("inv");
    const auto in = g.add_register("in", true);
    const auto c = g.add_control("c", true, TokenValue::False);
    const auto p = g.add_push("p");
    const auto sink = g.add_register("sink");
    g.connect(in, p);
    g.connect_inverted(c, p);
    g.connect(p, sink);
    const Graph loaded = from_text(to_text(g));
    EXPECT_TRUE(graphs_equivalent(g, loaded));
    EXPECT_TRUE(loaded.is_inverted(*loaded.find("c"), *loaded.find("p")));
}

TEST(Serialize, ParsesHandWrittenModel) {
    const char* text = R"(# the paper's motivating example
dfs fig1b
register in
logic cond
control ctrl
push filt
register comp *
pop out F

edge in cond
edge cond ctrl
edge in filt
edge ctrl filt
edge filt comp
edge comp out
edge ctrl out
)";
    const Graph g = from_text(text);
    EXPECT_EQ(g.name(), "fig1b");
    EXPECT_EQ(g.node_count(), 6u);
    EXPECT_EQ(g.edge_count(), 7u);
    EXPECT_TRUE(g.initial(*g.find("comp")).marked);
    EXPECT_TRUE(g.initial(*g.find("out")).marked);
    EXPECT_EQ(g.initial(*g.find("out")).token, TokenValue::False);
    EXPECT_FALSE(g.initial(*g.find("ctrl")).marked);
}

TEST(Serialize, ErrorsCarryLineNumbers) {
    auto expect_error = [](const char* text, const char* needle) {
        try {
            from_text(text);
            FAIL() << "expected parse error for: " << text;
        } catch (const std::invalid_argument& e) {
            EXPECT_NE(std::string(e.what()).find(needle),
                      std::string::npos)
                << e.what();
        }
    };
    expect_error("register r\n", "header");
    expect_error("dfs a\ndfs b\n", "duplicate");
    expect_error("dfs a\nwidget w\n", "unknown keyword 'widget'");
    expect_error("dfs a\nregister r X\n", "must be '*'");
    expect_error("dfs a\ncontrol c *\n", "'T' or 'F'");
    expect_error("dfs a\nedge x y\n", "unknown node 'x'");
    expect_error("dfs a\nregister r\nregister s\nedge r s wat\n",
                 "unknown edge flag");
    expect_error("dfs a\nlogic l *\n", "no marking");
    expect_error("dfs\n", "missing model name");
    expect_error("dfs a\nedge r\n", "two node names");
    EXPECT_THROW(from_text(""), std::invalid_argument);
    EXPECT_THROW(from_text("# only a comment\n"), std::invalid_argument);
}

TEST(Serialize, FileRoundTrip) {
    const auto m = make_fig1b();
    const auto path =
        std::filesystem::temp_directory_path() / "rap_serialize_test.dfs";
    save_file(m.graph, path.string());
    const Graph loaded = load_file(path.string());
    EXPECT_TRUE(graphs_equivalent(m.graph, loaded));
    std::filesystem::remove(path);
    EXPECT_THROW(load_file("/nonexistent/nope.dfs"), std::runtime_error);
}

}  // namespace
}  // namespace rap::dfs
