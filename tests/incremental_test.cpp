// Differential harness for incremental re-verification: a cross-pass
// petri::ReuseStore must be invisible in every answer — scratch and
// reused passes agree bit-for-bit at 1/2/4/8 threads over a depth sweep
// — while the delta-compiled nets, the artifact cache's parent+delta
// path, the flow::Design store lifecycle (reconfiguration keeps it,
// edit() drops it) and flow::Sweep's shared-store mode ride on top.

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "dfs/dot.hpp"
#include "dfs/model.hpp"
#include "dfs/translate.hpp"
#include "dfs_helpers.hpp"
#include "flow/design.hpp"
#include "flow/sweep.hpp"
#include "petri/compiled.hpp"
#include "petri/parallel.hpp"
#include "petri/reachability.hpp"
#include "petri/reuse.hpp"
#include "petri_fixtures.hpp"
#include "pipeline/builder.hpp"
#include "verify/artifacts.hpp"
#include "verify/verifier.hpp"

namespace rap::petri {
namespace {

using namespace testfx;

/// Same structure at every depth: the model name is depth-independent
/// and ope_style_stages only flips the configuration tokens, so the
/// nets of one `stages` value differ in initial marking alone — the
/// reuse precondition a reconfigurable chip satisfies by construction.
Net depth_net(int stages, int depth) {
    auto p = pipeline::build_pipeline(
        "inc_s" + std::to_string(stages),
        dfs::testing::ope_style_stages(stages, depth));
    return dfs::to_petri(p.graph).net;
}

/// Full bit-equality of two passes: counters, sets, witness markings
/// AND traces, plus every witness replaying onto the net.
void expect_identical(const Net& net, const MultiResult& a,
                      const MultiResult& b, const std::string& context) {
    EXPECT_EQ(a.states_explored, b.states_explored) << context;
    EXPECT_EQ(a.edges_explored, b.edges_explored) << context;
    EXPECT_EQ(a.truncated, b.truncated) << context;
    EXPECT_EQ(sorted(a.deadlocks), sorted(b.deadlocks)) << context;
    EXPECT_EQ(violation_set(a.persistence_violations),
              violation_set(b.persistence_violations))
        << context;
    ASSERT_EQ(a.goals.size(), b.goals.size()) << context;
    for (std::size_t g = 0; g < a.goals.size(); ++g) {
        ASSERT_EQ(a.goals[g].found(), b.goals[g].found())
            << context << " goal " << g;
        if (!a.goals[g].found()) continue;
        EXPECT_EQ(a.goals[g].witness, b.goals[g].witness)
            << context << " goal " << g;
        EXPECT_EQ(a.goals[g].witness_trace->firings,
                  b.goals[g].witness_trace->firings)
            << context << " goal " << g;
        expect_replays(net, *b.goals[g].witness_trace, *b.goals[g].witness,
                       context + " goal " + std::to_string(g));
    }
    ASSERT_EQ(a.persistence_violations.size(),
              b.persistence_violations.size())
        << context;
    for (std::size_t v = 0; v < a.persistence_violations.size(); ++v) {
        EXPECT_EQ(a.persistence_violations[v].trace_to_marking.firings,
                  b.persistence_violations[v].trace_to_marking.firings)
            << context << " violation " << v;
    }
}

// ------------------------------------------------- engine differential --

TEST(Incremental, SequentialReuseMatchesScratchAcrossDepths) {
    const auto reuse = std::make_shared<ReuseStore>();
    std::size_t warm_interned = 0;
    for (int sweep = 0; sweep < 2; ++sweep) {  // cold sweep, then warm
        for (int depth = 1; depth <= 3; ++depth) {
            const Net net = depth_net(3, depth);
            const CompiledNet compiled(net);
            const QueryBundle bundle(net);
            const std::string context = "seq d" + std::to_string(depth) +
                                        " sweep " + std::to_string(sweep);

            ReachabilityOptions scratch;
            scratch.stop_at_first_match = false;
            ReachabilityExplorer seq(compiled, scratch);
            const auto reference = seq.run_query(bundle.query);
            ASSERT_FALSE(reference.truncated) << context;

            ReachabilityOptions incremental = scratch;
            incremental.reuse = reuse;
            ReachabilityExplorer inc(compiled, incremental);
            const auto result = inc.run_query(bundle.query);
            expect_identical(net, reference, result, context);
        }
        if (sweep == 0) {
            warm_interned = reuse->interned_markings();
            ASSERT_GT(warm_interned, 0u);
        }
    }
    // The warm sweep re-claimed resident markings instead of interning:
    // the store did not grow at all the second time around.
    EXPECT_EQ(reuse->interned_markings(), warm_interned);
    EXPECT_EQ(reuse->row_invalidations(), 0u)
        << "marking-only reconfigurations must not invalidate rows";
}

TEST(Incremental, ParallelReuseMatchesScratchAtEveryThreadCount) {
    for (const std::size_t threads :
         {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
        const auto reuse = std::make_shared<ReuseStore>();
        for (int sweep = 0; sweep < 2; ++sweep) {
            for (int depth = 1; depth <= 3; ++depth) {
                const Net net = depth_net(3, depth);
                const CompiledNet compiled(net);
                const QueryBundle bundle(net);
                const std::string context =
                    "par d" + std::to_string(depth) + " sweep " +
                    std::to_string(sweep) + " @" +
                    std::to_string(threads) + "t";

                ReachabilityOptions scratch;
                scratch.stop_at_first_match = false;
                scratch.threads = threads;
                ParallelReachabilityExplorer par(compiled, scratch);
                const auto reference = par.run_query(bundle.query);
                ASSERT_FALSE(reference.truncated) << context;

                ReachabilityOptions incremental = scratch;
                incremental.reuse = reuse;
                ParallelReachabilityExplorer inc(compiled, incremental);
                const auto result = inc.run_query(bundle.query);
                expect_identical(net, reference, result, context);
            }
        }
    }
}

TEST(Incremental, TruncationStaysExactOnWarmStores) {
    // A warm store far bigger than the pass budget: the truncation
    // contract (exactly max_states, truncated = true) must survive
    // claiming from residency, and a later uncapped pass over the same
    // store must still answer like scratch.
    const Net net = depth_net(3, 3);
    const CompiledNet compiled(net);
    const QueryBundle bundle(net);

    const auto reuse = std::make_shared<ReuseStore>();
    ReachabilityOptions warm;
    warm.stop_at_first_match = false;
    warm.reuse = reuse;
    ReachabilityExplorer(compiled, warm).run_query(bundle.query);
    ASSERT_GT(reuse->interned_markings(), 64u);

    for (const std::size_t threads :
         {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
        ReachabilityOptions capped;
        capped.stop_at_first_match = false;
        capped.max_states = 64;
        capped.threads = threads;
        capped.reuse = reuse;
        ParallelReachabilityExplorer par(compiled, capped);
        const auto result = par.explore_all();
        EXPECT_TRUE(result.truncated) << threads;
        EXPECT_EQ(result.states_explored, 64u) << threads;
    }

    ReachabilityOptions scratch;
    scratch.stop_at_first_match = false;
    ReachabilityExplorer seq(compiled, scratch);
    const auto reference = seq.run_query(bundle.query);
    ReachabilityOptions incremental = scratch;
    incremental.reuse = reuse;
    ReachabilityExplorer inc(compiled, incremental);
    expect_identical(net, reference, inc.run_query(bundle.query),
                     "full pass after truncated passes");
}

// ----------------------------------------------------- attach contract --

TEST(Incremental, AttachInvalidatesRowsOnStructureChangeOnly) {
    // Two nets with identical record dimensions but different arcs: the
    // store keeps its markings, bumps the geometry revision, and lazily
    // recomputes enabled rows — answers still match scratch.
    Net a("inc_attach");
    const PlaceId p0 = a.add_place("p0", true);
    const PlaceId p1 = a.add_place("p1");
    const TransitionId t0 = a.add_transition("t0");
    const TransitionId t1 = a.add_transition("t1");
    a.add_input_arc(p0, t0);
    a.add_output_arc(t0, p1);
    a.add_input_arc(p1, t1);
    a.add_output_arc(t1, p0);

    Net b = a;
    b.add_read_arc(p0, t1);  // structure change, same dimensions

    const CompiledNet ca(a);
    const CompiledNet cb(b);
    ASSERT_EQ(ca.marking_words(), cb.marking_words());
    ASSERT_EQ(ca.enabled_words(), cb.enabled_words());
    ASSERT_NE(CompiledNet::digest_structure(a),
              CompiledNet::digest_structure(b));

    const auto reuse = std::make_shared<ReuseStore>();
    ASSERT_TRUE(reuse->attach(ca, 1));
    const std::uint64_t rev = reuse->geometry_rev();
    EXPECT_TRUE(reuse->attach(ca, 1));
    EXPECT_EQ(reuse->geometry_rev(), rev) << "same digest: no bump";
    EXPECT_EQ(reuse->row_invalidations(), 0u);

    // Warm the store on `a`, then re-attach and run on `b`: stale rows
    // must never leak into b's pass.
    ReachabilityOptions incremental;
    incremental.stop_at_first_match = false;
    incremental.reuse = reuse;
    ReachabilityExplorer(ca, incremental).run_query(QueryBundle(a).query);

    EXPECT_TRUE(reuse->attach(cb, 1));
    EXPECT_GT(reuse->geometry_rev(), rev);
    EXPECT_EQ(reuse->row_invalidations(), 1u);

    ReachabilityOptions scratch;
    scratch.stop_at_first_match = false;
    const auto reference =
        ReachabilityExplorer(cb, scratch).run_query(QueryBundle(b).query);
    const auto result =
        ReachabilityExplorer(cb, incremental).run_query(QueryBundle(b).query);
    expect_identical(b, reference, result, "reattached structure b");
}

TEST(Incremental, DimensionMismatchFallsBackToScratch) {
    // A store sized for one net silently steps aside for a net with
    // different record dimensions — the pass runs scratch and correct.
    const Net small = depth_net(2, 2);
    const auto reuse = std::make_shared<ReuseStore>();
    {
        const CompiledNet compiled(small);
        ReachabilityOptions options;
        options.stop_at_first_match = false;
        options.reuse = reuse;
        ReachabilityExplorer(compiled, options).run_query(
            QueryBundle(small).query);
    }
    const std::size_t interned = reuse->interned_markings();
    const std::size_t mwords = reuse->marking_words();

    Net wide("inc_wide");
    std::vector<PlaceId> places;
    for (int i = 0; i < 70; ++i) {
        places.push_back(wide.add_place("p" + std::to_string(i), i == 0));
    }
    for (int i = 0; i + 1 < 70; ++i) {
        const TransitionId t = wide.add_transition("t" + std::to_string(i));
        wide.add_input_arc(places[i], t);
        wide.add_output_arc(t, places[i + 1]);
    }
    const CompiledNet cwide(wide);
    ASSERT_NE(cwide.marking_words(), mwords);
    EXPECT_FALSE(reuse->attach(cwide, 1));

    ReachabilityOptions options;
    options.stop_at_first_match = false;
    options.reuse = reuse;
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        options.threads = threads;
        ParallelReachabilityExplorer par(cwide, options);
        const auto result = par.explore_all();
        EXPECT_EQ(result.states_explored, 70u) << threads;
        EXPECT_FALSE(result.truncated) << threads;
    }
    // The mismatched pass never touched the store.
    EXPECT_EQ(reuse->interned_markings(), interned);
    EXPECT_EQ(reuse->marking_words(), mwords);
}

// ---------------------------------------------------- delta compilation --

TEST(Incremental, DeltaCompiledNetMatchesFullBuild) {
    const Net parent_net = depth_net(3, 3);
    const Net child_net = depth_net(3, 2);
    ASSERT_EQ(CompiledNet::digest_structure(parent_net),
              CompiledNet::digest_structure(child_net))
        << "reconfiguration must be a marking-only change";

    const CompiledNet parent(parent_net);
    const CompiledNet full(child_net);
    const CompiledNet delta(child_net, parent);
    EXPECT_EQ(delta.marking_words(), full.marking_words());
    EXPECT_EQ(delta.enabled_words(), full.enabled_words());

    const QueryBundle bundle(child_net);
    ReachabilityOptions options;
    options.stop_at_first_match = false;
    const auto reference =
        ReachabilityExplorer(full, options).run_query(bundle.query);
    const auto result =
        ReachabilityExplorer(delta, options).run_query(bundle.query);
    expect_identical(child_net, reference, result, "delta vs full, seq");

    options.threads = 4;
    const auto par_result =
        ParallelReachabilityExplorer(delta, options).run_query(bundle.query);
    expect_identical(child_net, reference, par_result, "delta vs full, par");

    // A parent of a different structure falls back to a full rebuild.
    const Net other = depth_net(2, 2);
    const CompiledNet unrelated(other);
    const CompiledNet fallback(child_net, unrelated);
    options.threads = 0;
    const auto fb_result =
        ReachabilityExplorer(fallback, options).run_query(bundle.query);
    expect_identical(child_net, reference, fb_result,
                     "unrelated parent falls back to full build");
}

TEST(Incremental, ArtifactCacheServesReconfigurationsAsDeltas) {
    // Two compiles of the same structure under different initial
    // markings: the second is a cache miss (the fingerprint covers the
    // marking) but must be built as parent+delta via the structural
    // index, and answer exactly like a from-scratch compile.
    auto p3 = pipeline::build_pipeline(
        "inc_cache", dfs::testing::ope_style_stages(3, 3));
    auto p2 = pipeline::build_pipeline(
        "inc_cache", dfs::testing::ope_style_stages(3, 2));

    const std::size_t deltas_before = verify::artifact_delta_builds();
    const auto parent = verify::compile_model(p3.graph);
    ASSERT_NE(parent, nullptr);
    const auto child = verify::compile_model(p2.graph);
    ASSERT_NE(child, nullptr);
    EXPECT_EQ(verify::artifact_delta_builds() - deltas_before, 1u)
        << "the reconfigured compile must take the delta path";

    const Net fresh_net = dfs::to_petri(p2.graph).net;
    const CompiledNet fresh(fresh_net);
    const QueryBundle bundle(fresh_net);
    ReachabilityOptions options;
    options.stop_at_first_match = false;
    const auto reference =
        ReachabilityExplorer(fresh, options).run_query(bundle.query);
    const auto result = ReachabilityExplorer(child->compiled(), options)
                            .run_query(bundle.query);
    expect_identical(fresh_net, reference, result, "cache delta model");
}

// -------------------------------------------------- flow::Design surface --

void expect_same_report(const verify::Report& a, const verify::Report& b,
                        const std::string& context) {
    ASSERT_EQ(a.findings.size(), b.findings.size()) << context;
    for (std::size_t i = 0; i < a.findings.size(); ++i) {
        const auto& fa = a.findings[i];
        const auto& fb = b.findings[i];
        EXPECT_EQ(fa.property, fb.property) << context << " finding " << i;
        EXPECT_EQ(fa.violated, fb.violated) << context << " finding " << i;
        EXPECT_EQ(fa.truncated, fb.truncated) << context << " finding " << i;
        EXPECT_EQ(fa.states_explored, fb.states_explored)
            << context << " finding " << i;
        EXPECT_EQ(fa.trace, fb.trace) << context << " finding " << i;
    }
}

TEST(Incremental, DesignKeepsStoreAcrossReconfigurationAndDropsOnEdit) {
    flow::DesignOptions options;
    options.incremental = true;
    options.verify.threads = 1;
    flow::Design design(
        pipeline::build_pipeline("inc_design",
                                 dfs::testing::ope_style_stages(3, 3)),
        options);
    EXPECT_EQ(design.reuse_store(), nullptr) << "lazy until first verify";

    const auto r3 = design.verify();
    const auto store = design.reuse_store();
    ASSERT_NE(store, nullptr);
    EXPECT_GT(store->interned_markings(), 0u);

    design.set_depth(2);
    const auto r2 = design.verify();
    EXPECT_EQ(design.reuse_store(), store)
        << "reconfiguration keeps the session store";

    flow::DesignOptions scratch_options;
    scratch_options.verify.threads = 1;
    flow::Design scratch2(
        pipeline::build_pipeline("inc_design",
                                 dfs::testing::ope_style_stages(3, 2)),
        scratch_options);
    expect_same_report(scratch2.verify(), r2, "incremental d2 vs scratch");
    flow::Design scratch3(
        pipeline::build_pipeline("inc_design",
                                 dfs::testing::ope_style_stages(3, 3)),
        scratch_options);
    expect_same_report(scratch3.verify(), r3, "incremental d3 vs scratch");

    // The poisoning check: a structural edit() must drop the store, and
    // the next verify starts clean — and still answers like scratch.
    design.edit();
    EXPECT_EQ(design.reuse_store(), nullptr);
    const auto r2b = design.verify();
    expect_same_report(scratch2.verify(), r2b, "post-edit verify");
    EXPECT_NE(design.reuse_store(), nullptr);
    EXPECT_NE(design.reuse_store(), store) << "edit() must not resurrect";
}

TEST(Incremental, ExplicitReuseOptionOverridesDesignStore) {
    // When the caller supplies verify.reuse, DesignOptions::incremental
    // must not shadow it with a session store.
    const auto mine = std::make_shared<ReuseStore>();
    flow::DesignOptions options;
    options.incremental = true;
    options.verify.threads = 1;
    options.verify.reuse = mine;
    flow::Design design(
        pipeline::build_pipeline("inc_explicit",
                                 dfs::testing::ope_style_stages(2, 2)),
        options);
    const auto report = design.verify();
    EXPECT_TRUE(report.clean());
    EXPECT_EQ(design.reuse_store(), nullptr)
        << "caller-owned store: the session must not create its own";
    EXPECT_GT(mine->interned_markings(), 0u)
        << "the exploration must have used the caller's store";
}

pipeline::Pipeline inc_sweep_factory(int stages, int depth) {
    if (depth < 1 || depth > stages) {
        throw std::invalid_argument(
            "depth " + std::to_string(depth) + " out of range for " +
            std::to_string(stages) + " stages");
    }
    // Depth-independent name: every (stages, schedule) chain shares one
    // structure, so the shared store actually re-claims across depths.
    return pipeline::build_pipeline(
        "inc_sweep_s" + std::to_string(stages),
        dfs::testing::ope_style_stages(stages, depth));
}

TEST(Incremental, ReuseFallbacksCountedAndSurfacedAtEveryLayer) {
    // A store sized for one record geometry refuses the next net and the
    // pass runs scratch — correct, but no longer incremental. That
    // degradation must be countable at every layer instead of inferred
    // from wall-clock drift: ReuseStore::fallbacks(), the per-pass
    // MultiResult::reuse_fallback flag, the Design session aggregate and
    // the sweep's rap_reuse_fallbacks_total metric.
    const Net small = depth_net(2, 2);
    const auto reuse = std::make_shared<ReuseStore>();
    {
        const CompiledNet compiled(small);
        ReachabilityOptions options;
        options.stop_at_first_match = false;
        options.reuse = reuse;
        const auto warm = ReachabilityExplorer(compiled, options)
                              .run_query(QueryBundle(small).query);
        EXPECT_FALSE(warm.reuse_fallback) << "matched pass is no fallback";
    }
    EXPECT_EQ(reuse->fallbacks(), 0u);

    Net wide("inc_fallback_wide");
    std::vector<PlaceId> places;
    for (int i = 0; i < 70; ++i) {
        places.push_back(wide.add_place("p" + std::to_string(i), i == 0));
    }
    for (int i = 0; i + 1 < 70; ++i) {
        const TransitionId t = wide.add_transition("t" + std::to_string(i));
        wide.add_input_arc(places[i], t);
        wide.add_output_arc(t, places[i + 1]);
    }
    const CompiledNet cwide(wide);
    ASSERT_NE(cwide.marking_words(), reuse->marking_words());

    const QueryBundle bundle(wide);
    ReachabilityOptions options;
    options.stop_at_first_match = false;
    options.reuse = reuse;
    const auto seq =
        ReachabilityExplorer(cwide, options).run_query(bundle.query);
    EXPECT_TRUE(seq.reuse_fallback);
    EXPECT_EQ(reuse->fallbacks(), 1u);

    options.threads = 4;
    const auto par =
        ParallelReachabilityExplorer(cwide, options).run_query(bundle.query);
    EXPECT_TRUE(par.reuse_fallback);
    EXPECT_EQ(reuse->fallbacks(), 2u);
    expect_identical(wide, seq, par, "fallback passes stay exact");

    // Design level: a caller-supplied store warmed on the wide net
    // mismatches the small OPE model, so the session aggregate (the
    // number flow::Sweep folds into rap_reuse_fallbacks_total) goes
    // nonzero while the verdicts stay clean.
    const auto wide_store = std::make_shared<ReuseStore>();
    {
        ReachabilityOptions wopts;
        wopts.stop_at_first_match = false;
        wopts.reuse = wide_store;
        ReachabilityExplorer(cwide, wopts).run_query(bundle.query);
    }
    ASSERT_EQ(wide_store->marking_words(), cwide.marking_words());
    flow::DesignOptions dopts;
    dopts.verify.threads = 1;
    dopts.verify.reuse = wide_store;
    flow::Design design(
        pipeline::build_pipeline("inc_fallback_design",
                                 dfs::testing::ope_style_stages(2, 2)),
        dopts);
    EXPECT_TRUE(design.verify().clean());
    EXPECT_GE(design.reuse_fallbacks(), 1u);

    // Sweep level: every row of a cold chain reports its fallbacks and
    // the handle's metric is their exact sum.
    flow::DesignOptions sbase;
    sbase.verify.threads = 1;
    sbase.verify.reuse = wide_store;
    flow::Sweep sweep(&inc_sweep_factory, sbase);
    flow::Sweep::Handle handle =
        sweep.stages({2}).depths(1, 2).workers(1).launch();
    const std::vector<flow::SweepResult> rows = handle.wait();
    ASSERT_EQ(rows.size(), 2u);
    std::size_t total = 0;
    for (const flow::SweepResult& row : rows) {
        EXPECT_GE(row.reuse_fallbacks, 1u) << row.point.label;
        total += row.reuse_fallbacks;
    }
    EXPECT_EQ(handle.metrics().value("rap_reuse_fallbacks_total"),
              static_cast<double>(total));
}

// ------------------------------------------------------ set_depth guard --

TEST(Incremental, SetDepthValidatesTheWholeRequestBeforeApplying) {
    // Builder level: a static stage past the requested depth rejects the
    // request before ANY ring is touched — no partial application.
    std::vector<pipeline::StageOptions> stages(3);
    stages[1].reconfigurable = false;  // static mid-stage
    stages[2].reconfigurable = true;
    auto p = pipeline::build_pipeline("inc_depth", stages);
    const std::string before = dfs::to_dot(p.graph);

    EXPECT_THROW(pipeline::set_depth(p, 0), std::invalid_argument);
    EXPECT_THROW(pipeline::set_depth(p, 4), std::invalid_argument);
    EXPECT_THROW(pipeline::set_depth(p, 1), std::invalid_argument);
    EXPECT_EQ(dfs::to_dot(p.graph), before) << "no partial application";
    try {
        pipeline::set_depth(p, 1);
        FAIL() << "bypassing a static stage must throw";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("static"), std::string::npos)
            << e.what();
    }

    // Design level: the failed call leaves revision(), the build
    // counters and every cached artifact untouched.
    flow::DesignOptions options;
    options.verify.threads = 1;
    flow::Design design(
        pipeline::build_pipeline("inc_depth2",
                                 dfs::testing::ope_style_stages(3, 3)),
        options);
    const auto baseline = design.verify();
    const std::size_t revision = design.revision();
    const std::size_t builds = design.pn_builds();

    EXPECT_THROW(design.set_depth(99), std::invalid_argument);
    EXPECT_THROW(design.set_depth(0), std::invalid_argument);
    EXPECT_EQ(design.revision(), revision);
    EXPECT_EQ(design.pn_builds(), builds);
    expect_same_report(design.verify(), baseline,
                       "artifacts survive the failed reconfiguration");
    EXPECT_EQ(design.pn_builds(), builds) << "no rebuild after the throw";

    // Graph-backed designs refuse with a distinct type and message.
    flow::Design graph_backed(dfs::Graph("inc_graph_backed"), options);
    EXPECT_THROW(graph_backed.set_depth(2), std::logic_error);
}

// --------------------------------------------------- flow::Sweep surface --

TEST(Incremental, SweepSharedStoreMatchesIndependentSessions) {
    auto rows_with = [](bool shared) {
        return flow::Sweep(&inc_sweep_factory)
            .stages({2, 3})
            .depths(1, 4)  // d4 invalid for both stage counts
            .workers(4)
            .shared_store(shared)
            .run();
    };
    const auto independent = rows_with(false);
    const auto shared = rows_with(true);
    ASSERT_EQ(independent.size(), shared.size());

    std::size_t invalid = 0;
    for (std::size_t i = 0; i < independent.size(); ++i) {
        const auto& a = independent[i];
        const auto& b = shared[i];
        const std::string context = "row " + a.point.label;
        EXPECT_EQ(b.status, a.status) << context;
        EXPECT_EQ(b.clean, a.clean) << context;
        EXPECT_EQ(b.states, a.states) << context;
        EXPECT_EQ(b.error, a.error) << context;
        expect_same_report(b.report, a.report, context);
        if (a.status == flow::SweepStatus::kInvalid) ++invalid;
    }
    // s2/d3, s2/d4 and s3/d4 are out of range for their stage counts.
    EXPECT_EQ(invalid, 3u) << "invalid points exercise the chain error path";
}

}  // namespace
}  // namespace rap::petri
