#include <gtest/gtest.h>

#include "dfs/dynamics.hpp"
#include "dfs/simulator.hpp"
#include "dfs_helpers.hpp"
#include "flow/design.hpp"
#include "pipeline/builder.hpp"
#include "verify/verifier.hpp"

namespace rap::pipeline {
namespace {

using dfs::Dynamics;
using dfs::Simulator;
using dfs::State;
using dfs::TokenValue;

using dfs::testing::ope_style_stages;

std::vector<StageOptions> static_stages(int n) {
    return std::vector<StageOptions>(static_cast<std::size_t>(n));
}

TEST(ControlRingBuilder, OscillatesAndResets) {
    dfs::Graph g("ring");
    const ControlRing ring = add_control_ring(g, "r", TokenValue::True);
    EXPECT_TRUE(g.initial(ring.head).marked);
    EXPECT_FALSE(g.initial(ring.mid).marked);
    reset_ring(g, ring, TokenValue::False);
    EXPECT_EQ(g.initial(ring.head).token, TokenValue::False);
    EXPECT_TRUE(g.initial(ring.head).marked);
}

TEST(Builder, RejectsEmptyPipeline) {
    EXPECT_THROW(build_pipeline("p", {}), std::invalid_argument);
}

TEST(Builder, StaticPipelineStructure) {
    const Pipeline p = build_pipeline("p", static_stages(3));
    EXPECT_TRUE(p.graph.validate().empty());
    EXPECT_EQ(p.stages.size(), 3u);
    for (const Stage& s : p.stages) {
        EXPECT_FALSE(s.reconfigurable);
        EXPECT_EQ(p.graph.kind(s.local_in), dfs::NodeKind::Register);
        EXPECT_EQ(p.graph.kind(s.global_out), dfs::NodeKind::Register);
    }
    // in + 3*(6 nodes) + agg + out
    EXPECT_EQ(p.graph.node_count(), 1u + 3 * 6 + 2);
    EXPECT_EQ(p.active_depth(), 3);
}

TEST(Builder, ReconfigurableStageStructure) {
    const Pipeline p = build_pipeline("p", ope_style_stages(3, 3));
    EXPECT_TRUE(p.graph.validate().empty());
    const Stage& s2 = p.stages[1];
    EXPECT_TRUE(s2.reconfigurable);
    EXPECT_EQ(s2.rings.size(), 1u);  // reused ring
    EXPECT_EQ(s2.local_ring.head, s2.global_ring.head);
    const Stage& s3 = p.stages[2];
    EXPECT_EQ(s3.rings.size(), 2u);
    EXPECT_NE(s3.local_ring.head, s3.global_ring.head);
    EXPECT_EQ(p.graph.kind(s3.local_in), dfs::NodeKind::Push);
    EXPECT_EQ(p.graph.kind(s3.global_out), dfs::NodeKind::Pop);
    // The ring head controls the push/pop pair.
    EXPECT_EQ(p.graph.control_preset(s3.global_in),
              std::vector<dfs::NodeId>{s3.global_ring.head});
}

TEST(Builder, SetDepthReconfigures) {
    Pipeline p = build_pipeline("p", ope_style_stages(4, 4));
    EXPECT_EQ(p.active_depth(), 4);
    set_depth(p, 2);
    EXPECT_EQ(p.active_depth(), 2);
    const auto& init = p.graph.initial(p.stages[2].global_ring.head);
    EXPECT_EQ(init.token, TokenValue::False);
    set_depth(p, 4);
    EXPECT_EQ(p.active_depth(), 4);
}

TEST(Builder, SetDepthValidation) {
    Pipeline p = build_pipeline("p", ope_style_stages(3, 3));
    EXPECT_THROW(set_depth(p, 0), std::invalid_argument);
    EXPECT_THROW(set_depth(p, 4), std::invalid_argument);
    // Stage 1 is static: cannot be bypassed.
    EXPECT_THROW(set_depth(p, 0), std::invalid_argument);
}

TEST(Pipeline, StaticPipelineStreams) {
    const Pipeline p = build_pipeline("p", static_stages(3));
    const Dynamics dyn(p.graph);
    Simulator sim(dyn, 5);
    State s = State::initial(p.graph);
    const auto stats = sim.run(s, 60000);
    EXPECT_FALSE(stats.deadlocked);
    EXPECT_GT(stats.marks_at(p.out), 20u);
    // Each stage's global_out fires once per output token.
    for (const Stage& stage : p.stages) {
        EXPECT_NEAR(
            static_cast<double>(stats.marks_at(stage.global_out)),
            static_cast<double>(stats.marks_at(p.out)), 3.0);
    }
}

TEST(Pipeline, FullyActiveReconfigurableStreams) {
    const Pipeline p = build_pipeline("p", ope_style_stages(3, 3));
    const Dynamics dyn(p.graph);
    Simulator sim(dyn, 7);
    State s = State::initial(p.graph);
    const auto stats = sim.run(s, 120000);
    EXPECT_FALSE(stats.deadlocked);
    EXPECT_FALSE(stats.conflict.has_value());
    EXPECT_GT(stats.marks_at(p.out), 20u);
    // Active stages pass real tokens: no false marks at their pops.
    for (const Stage& stage : p.stages) {
        if (stage.reconfigurable) {
            EXPECT_EQ(stats.false_marks_at(stage.global_out), 0u);
        }
    }
}

TEST(Pipeline, BypassedStagesEmitEmptyTokens) {
    Pipeline p = build_pipeline("p", ope_style_stages(4, 4));
    set_depth(p, 2);
    const Dynamics dyn(p.graph);
    Simulator sim(dyn, 9);
    State s = State::initial(p.graph);
    const auto stats = sim.run(s, 150000);
    EXPECT_FALSE(stats.deadlocked);
    EXPECT_GT(stats.marks_at(p.out), 10u);
    // Stages 3 and 4 are bypassed: all their global_out tokens are empty,
    // and their f logic never runs (no local tokens reach them as real).
    for (std::size_t i = 2; i < 4; ++i) {
        const Stage& stage = p.stages[i];
        EXPECT_EQ(stats.marks_at(stage.global_out),
                  stats.false_marks_at(stage.global_out));
        EXPECT_EQ(stats.marks_at(stage.local_out), 0u);
    }
    // Active stages still deliver real tokens.
    EXPECT_EQ(stats.false_marks_at(p.stages[1].global_out), 0u);
}

TEST(Pipeline, FirstBypassedStageDestroysLocalTokens) {
    Pipeline p = build_pipeline("p", ope_style_stages(4, 4));
    set_depth(p, 2);
    const Dynamics dyn(p.graph);
    Simulator sim(dyn, 11);
    State s = State::initial(p.graph);
    const auto stats = sim.run(s, 150000);
    // Stage 3 (first bypassed) keeps consuming-and-destroying the local
    // stream from stage 2 so the active prefix never backs up.
    const Stage& s3 = p.stages[2];
    EXPECT_GT(stats.marks_at(s3.local_in), 10u);
    EXPECT_EQ(stats.marks_at(s3.local_in), stats.false_marks_at(s3.local_in));
    // Stage 4's local interface parks (no data ever arrives).
    EXPECT_EQ(stats.marks_at(p.stages[3].local_in), 0u);
}

TEST(Pipeline, OutputRateIndependentOfDepth) {
    // The aggregated output produces exactly one token per input item
    // regardless of configuration (bypassed stages contribute empties).
    for (int depth : {2, 3, 4}) {
        Pipeline p = build_pipeline("p", ope_style_stages(4, 4));
        set_depth(p, depth);
        const Dynamics dyn(p.graph);
        Simulator sim(dyn, 13);
        State s = State::initial(p.graph);
        const auto stats = sim.run(s, 100000);
        EXPECT_FALSE(stats.deadlocked);
        EXPECT_NEAR(static_cast<double>(stats.marks_at(p.in)),
                    static_cast<double>(stats.marks_at(p.out)),
                    6.0)
            << "depth " << depth;
    }
}

TEST(Pipeline, VerifiedDeadlockFreeAtEveryDepth) {
    // One design session, reconfigured between verifications: set_depth
    // invalidates the PN artifact, so each depth is checked against its
    // own initial marking.
    flow::DesignOptions options;
    options.verify.max_states = 3'000'000;
    flow::Design design(build_pipeline("p", ope_style_stages(3, 3)),
                        options);
    for (int depth : {2, 3}) {
        design.set_depth(depth);
        const auto finding = design.verifier().check_deadlock();
        EXPECT_FALSE(finding.violated)
            << "depth " << depth << ": " << finding.to_string();
        EXPECT_FALSE(finding.truncated);
    }
}

TEST(Pipeline, GapConfigurationDeadlocks) {
    // Invalid configuration — an active stage after a bypassed one — is
    // exactly the "incorrect initialisation of control registers" class
    // of bugs the paper reports catching by verification.
    flow::Design design(build_pipeline("p", ope_style_stages(3, 3)));
    // stage 3 stays active while stage 2 is bypassed.
    design.reset_ring(design.pipeline().stages[1].global_ring,
                      TokenValue::False);
    const auto finding = design.verifier().check_deadlock();
    EXPECT_TRUE(finding.violated);
    // The witness is reported both as PN firings and translated back to
    // DFS-level events (the paper's debugging vocabulary): token moves of
    // registers and control rings, not raw "Mt_..+" firing names.
    ASSERT_FALSE(finding.dfs_trace.empty());
    ASSERT_EQ(finding.dfs_trace.size(), finding.trace.size());
    bool mentions_dfs_vocabulary = false;
    for (const auto& step : finding.dfs_trace) {
        EXPECT_EQ(step.find("Mt_"), std::string::npos) << step;
        EXPECT_EQ(step.find("Mf_"), std::string::npos) << step;
        if (step.find("control ") != std::string::npos ||
            step.find("register ") != std::string::npos ||
            step.find("push ") != std::string::npos ||
            step.find("pop ") != std::string::npos) {
            mentions_dfs_vocabulary = true;
        }
    }
    EXPECT_TRUE(mentions_dfs_vocabulary);
}

}  // namespace
}  // namespace rap::pipeline
