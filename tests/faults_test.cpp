#include <gtest/gtest.h>

#include <vector>

#include "asim/faults.hpp"
#include "asim/timed_sim.hpp"
#include "asim/vcd.hpp"
#include "dfs/dynamics.hpp"
#include "dfs_helpers.hpp"
#include "verify/verifier.hpp"
#include "verify/witness.hpp"

namespace rap::asim {
namespace {

using dfs::Dynamics;
using dfs::State;
using dfs::TokenValue;
using dfs::testing::add_control_ring;
using dfs::testing::add_linear_pipeline;
using dfs::testing::make_fig1b;

TimedSimulator make_sim(const Dynamics& dyn, const TimingMap& timing,
                        tech::VoltageSchedule schedule =
                            tech::VoltageSchedule::constant(1.2)) {
    return TimedSimulator(dyn, timing, tech::VoltageModel{},
                          std::move(schedule), 0.0);
}

// -- glitch splicing -----------------------------------------------------

TEST(Faults, SpliceGlitchesIsSeedDeterministic) {
    const auto base = tech::VoltageSchedule::constant(1.2);
    GlitchSpec spec;
    spec.rate_hz = 0.05;
    spec.droop_v = 0.9;
    spec.min_duration_s = 1.0;
    spec.max_duration_s = 4.0;

    const auto a = splice_glitches(base, spec, 7, 1000.0);
    const auto b = splice_glitches(base, spec, 7, 1000.0);
    ASSERT_GT(a.glitches(), 0u);
    ASSERT_EQ(a.glitches(), b.glitches());
    for (std::size_t i = 0; i < a.windows.size(); ++i) {
        EXPECT_EQ(a.windows[i].start_s, b.windows[i].start_s);
        EXPECT_EQ(a.windows[i].end_s, b.windows[i].end_s);
    }
    // A different seed realises a different droop pattern.
    const auto c = splice_glitches(base, spec, 8, 1000.0);
    bool differs = c.glitches() != a.glitches();
    for (std::size_t i = 0; !differs && i < a.windows.size(); ++i) {
        differs = a.windows[i].start_s != c.windows[i].start_s;
    }
    EXPECT_TRUE(differs);
}

TEST(Faults, SplicedScheduleDroopsInsideWindowsOnly) {
    const auto base = tech::VoltageSchedule::constant(1.2);
    GlitchSpec spec;
    spec.rate_hz = 0.02;
    spec.droop_v = 0.5;
    spec.min_duration_s = 2.0;
    spec.max_duration_s = 2.0;

    const auto spliced = splice_glitches(base, spec, 11, 500.0);
    ASSERT_GT(spliced.glitches(), 0u);
    for (const auto& w : spliced.windows) {
        const double mid = (w.start_s + w.end_s) / 2;
        EXPECT_NEAR(spliced.schedule.voltage_at(mid), 0.7, 1e-12);
        EXPECT_NEAR(spliced.schedule.voltage_at(w.end_s + 1e-9), 1.2,
                    1e-12);
    }
    EXPECT_NEAR(spliced.schedule.voltage_at(0.0), 1.2, 1e-12)
        << "first droop arrives strictly after t=0";
    // Inactive spec: the base schedule passes through untouched.
    const auto off = splice_glitches(base, GlitchSpec{}, 11, 500.0);
    EXPECT_EQ(off.glitches(), 0u);
    EXPECT_EQ(off.schedule.voltage_at(123.0), 1.2);
}

TEST(Faults, ScaledMultipliesIntensitiesAndClamps) {
    FaultSpec spec;
    spec.delay_sigma = 0.1;
    spec.drop_rate = 0.3;
    spec.duplicate_rate = 0.2;
    spec.stuck_rate = 1e-3;
    spec.glitch.rate_hz = 2.0;

    const FaultSpec twice = spec.scaled(2.0);
    EXPECT_NEAR(twice.delay_sigma, 0.2, 1e-12);
    EXPECT_NEAR(twice.drop_rate, 0.6, 1e-12);
    EXPECT_NEAR(twice.stuck_rate, 2e-3, 1e-12);
    EXPECT_NEAR(twice.glitch.rate_hz, 4.0, 1e-12);
    EXPECT_EQ(spec.scaled(100.0).drop_rate, 1.0);  // clamped
    const FaultSpec off = spec.scaled(0.0);
    EXPECT_FALSE(off.any());
    EXPECT_THROW((void)spec.scaled(-1.0), std::invalid_argument);
}

// -- injected event faults ----------------------------------------------

TEST(Faults, SameSeedReproducesIdenticalStats) {
    const auto m = make_fig1b();
    const Dynamics dyn(m.graph);
    FaultSpec spec;
    spec.delay_sigma = 0.3;
    spec.drop_rate = 0.05;
    spec.duplicate_rate = 0.05;

    auto run_with = [&](std::uint64_t seed) {
        auto sim = make_sim(dyn, uniform_timing(m.graph, 1.0, 1.0));
        sim.set_seed(seed);
        sim.set_true_bias(0.5);
        sim.set_faults(spec);
        State s = State::initial(m.graph);
        RunLimits limits;
        limits.target_marks = 100;
        limits.observe = m.out;
        return sim.run(s, limits);
    };

    const auto a = run_with(2024);
    const auto b = run_with(2024);
    EXPECT_EQ(a.time_s, b.time_s);  // bit-exact, not approximate
    EXPECT_EQ(a.dynamic_energy_j, b.dynamic_energy_j);
    EXPECT_EQ(a.events, b.events);
    EXPECT_EQ(a.marks, b.marks);
    EXPECT_EQ(a.faults.drops, b.faults.drops);
    EXPECT_EQ(a.faults.duplicates, b.faults.duplicates);
    EXPECT_EQ(a.faults.jittered_enables, b.faults.jittered_enables);

    const auto c = run_with(2025);
    EXPECT_NE(a.time_s, c.time_s);  // jitter makes seeds distinguishable
}

TEST(Faults, DropsSpendTimeAndEnergyWithoutProgress) {
    dfs::Graph g("lin");
    const auto regs = add_linear_pipeline(g, "p", 2);
    const Dynamics dyn(g);
    FaultSpec spec;
    spec.drop_rate = 0.2;

    auto sim = make_sim(dyn, uniform_timing(g, 1.0, 1.0));
    sim.set_seed(5);
    sim.set_faults(spec);
    State s = State::initial(g);
    RunLimits limits;
    limits.target_marks = 50;
    limits.observe = regs.back();
    const auto stats = sim.run(s, limits);

    EXPECT_EQ(stats.marks_at(regs.back()), 50u);  // retries still deliver
    EXPECT_GT(stats.faults.drops, 0u);
    // Each event costs 1 J at nominal; dropped firings burn energy
    // without counting as events.
    EXPECT_NEAR(stats.dynamic_energy_j,
                static_cast<double>(stats.events + stats.faults.drops),
                1e-9);
}

TEST(Faults, DuplicatesDoubleTheDynamicEnergy) {
    dfs::Graph g("lin");
    const auto regs = add_linear_pipeline(g, "p", 2);
    const Dynamics dyn(g);
    FaultSpec spec;
    spec.duplicate_rate = 1.0;  // every firing double-pulses

    auto sim = make_sim(dyn, uniform_timing(g, 1.0, 1.0));
    sim.set_seed(5);
    sim.set_faults(spec);
    State s = State::initial(g);
    RunLimits limits;
    limits.target_marks = 20;
    limits.observe = regs.back();
    const auto stats = sim.run(s, limits);
    EXPECT_EQ(stats.faults.duplicates, stats.events);
    EXPECT_NEAR(stats.dynamic_energy_j, 2.0 * stats.events, 1e-9);
}

TEST(Faults, StuckNodeStallsThePipeline) {
    dfs::Graph g("lin");
    const auto regs = add_linear_pipeline(g, "p", 3);
    const Dynamics dyn(g);
    FaultSpec spec;
    spec.stuck_rate = 1.0;  // the very first firing freezes its node

    auto sim = make_sim(dyn, uniform_timing(g, 1.0, 1.0));
    sim.set_seed(5);
    sim.set_faults(spec);
    State s = State::initial(g);
    RunLimits limits;
    limits.target_marks = 50;
    limits.observe = regs.back();
    limits.max_events = 10'000;
    const auto stats = sim.run(s, limits);
    EXPECT_GE(stats.faults.stuck_nodes, 1u);
    EXPECT_LT(stats.marks_at(regs.back()), 50u);
    EXPECT_TRUE(stats.deadlocked);
}

// -- event-trace cap + VCD of faulty runs --------------------------------

TEST(Faults, EventTraceCapSetsTruncationFlag) {
    dfs::Graph g("lin");
    const auto regs = add_linear_pipeline(g, "p", 2);
    const Dynamics dyn(g);

    auto run_with_cap = [&](std::size_t cap) {
        auto sim = make_sim(dyn, uniform_timing(g, 1.0));
        sim.enable_event_trace(cap);
        State s = State::initial(g);
        RunLimits limits;
        limits.target_marks = 10;
        limits.observe = regs.back();
        return sim.run(s, limits);
    };

    const auto clipped = run_with_cap(5);
    EXPECT_EQ(clipped.events_log.size(), 5u);
    EXPECT_TRUE(clipped.events_log_truncated);
    EXPECT_GT(clipped.events, 5u) << "the run itself is not truncated";

    const auto full = run_with_cap(1'000'000);
    EXPECT_EQ(full.events_log.size(), full.events);
    EXPECT_FALSE(full.events_log_truncated);
}

TEST(Faults, VcdOfGlitchedRunShowsTheStallWindow) {
    dfs::Graph g("lin");
    const auto regs = add_linear_pipeline(g, "p", 2);
    const Dynamics dyn(g);

    // One deep droop at a seeded offset: below the freeze voltage the
    // pipeline makes no progress, so the VCD timeline must show a gap
    // covering the window.
    GlitchSpec glitch;
    glitch.rate_hz = 0.005;
    glitch.droop_v = 1.0;  // 1.2 - 1.0 = 0.2V < v_freeze: full stall
    glitch.min_duration_s = 40.0;
    glitch.max_duration_s = 40.0;
    const auto spliced = splice_glitches(
        tech::VoltageSchedule::constant(1.2), glitch, 3, 400.0);
    ASSERT_GT(spliced.glitches(), 0u);

    auto sim = make_sim(dyn, uniform_timing(g, 1.0), spliced.schedule);
    sim.enable_event_trace();
    State s = State::initial(g);
    RunLimits limits;
    limits.target_marks = 200;
    limits.observe = regs.back();
    limits.max_time_s = 400.0;
    const auto stats = sim.run(s, limits);
    ASSERT_FALSE(stats.events_log.empty());
    ASSERT_FALSE(stats.events_log_truncated);

    const auto& w = spliced.windows.front();
    for (const auto& te : stats.events_log) {
        // No event completes strictly inside a full-stall window.
        EXPECT_FALSE(te.t_s > w.start_s && te.t_s < w.end_s)
            << "event at " << te.t_s << " inside stall [" << w.start_s
            << ", " << w.end_s << ")";
    }

    const std::string vcd = to_vcd(g, stats.events_log, 1.0);
    EXPECT_NE(vcd.find("$timescale"), std::string::npos);
    EXPECT_NE(vcd.find("M_p_in"), std::string::npos);
}

// -- witness replay, both directions -------------------------------------

TEST(Witness, VerifierCounterexampleDrivesTheTimedSim) {
    // The mixed-polarity double-ring hazard of Section III-A, with ring
    // b's initial token rotated back to c3 so the conflict is reached
    // only after the ring advances: the verifier finds the control
    // conflict, and its typed witness replays on the timed simulator
    // into the same conflicted state.
    dfs::Graph g("mixed");
    const auto in = g.add_register("in");
    const auto a = add_control_ring(g, "a", TokenValue::True);
    const auto b1 = g.add_control("b_c1", false, TokenValue::False);
    const auto b2 = g.add_control("b_c2", false, TokenValue::False);
    const auto b3 = g.add_control("b_c3", true, TokenValue::False);
    g.connect(b1, b2);
    g.connect(b2, b3);
    g.connect(b3, b1);
    const auto p = g.add_push("p");
    const auto sink = g.add_register("sink");
    g.connect(in, p);
    g.connect(a.c1, p);
    g.connect(b1, p);
    g.connect(p, sink);

    const verify::Verifier verifier(g);
    const verify::Finding finding = verifier.check_control_conflict();
    ASSERT_TRUE(finding.violated);
    ASSERT_EQ(finding.event_trace.size(), finding.trace.size());
    ASSERT_FALSE(finding.event_trace.empty());

    const Dynamics dyn(g);
    auto sim = make_sim(dyn, uniform_timing(g, 1.0));
    sim.set_stimulus(finding.event_trace);
    State s = State::initial(g);
    RunLimits limits;
    limits.max_events = finding.event_trace.size();
    const auto stats = sim.run(s, limits);

    EXPECT_FALSE(stats.stimulus_stalled);
    EXPECT_EQ(stats.stimulus_fired, finding.event_trace.size());
    EXPECT_TRUE(dyn.control_conflict(s).has_value())
        << "replaying the witness must reach the hazardous state";
}

TEST(Witness, TimedSimTraceIsPnReachable) {
    // The converse bridge: a timed-sim event log (free choices and all)
    // replays transition-for-transition on the translated Petri net and
    // lands on the encoding of the final simulator state.
    const auto m = make_fig1b();
    const Dynamics dyn(m.graph);
    auto sim = make_sim(dyn, uniform_timing(m.graph, 1.0));
    sim.set_seed(9);
    sim.set_true_bias(0.3);
    sim.enable_event_trace();
    State s = State::initial(m.graph);
    RunLimits limits;
    limits.target_marks = 40;
    limits.observe = m.out;
    const auto stats = sim.run(s, limits);
    ASSERT_FALSE(stats.events_log_truncated);

    std::vector<dfs::Event> events;
    events.reserve(stats.events_log.size());
    for (const TimedEvent& te : stats.events_log) {
        events.push_back(te.event);
    }
    const auto translation = dfs::to_petri(m.graph);
    const auto replay =
        verify::replay_events_on_net(dyn, translation, events);
    EXPECT_TRUE(replay.ok) << replay.detail;
    EXPECT_EQ(replay.fired, events.size());
    EXPECT_TRUE(replay.marking_agrees);
    EXPECT_TRUE(replay.final_state == s);
}

TEST(Witness, DivergentTraceIsRejectedWithDetail)
{
    const auto m = make_fig1b();
    const Dynamics dyn(m.graph);
    const auto translation = dfs::to_petri(m.graph);
    // An event that is never enabled initially: unmarking the output.
    const std::vector<dfs::Event> bogus{
        {m.out, dfs::EventKind::Unmark}};
    const auto replay =
        verify::replay_events_on_net(dyn, translation, bogus);
    EXPECT_FALSE(replay.ok);
    EXPECT_EQ(replay.fired, 0u);
    EXPECT_NE(replay.detail.find("not enabled"), std::string::npos);
}

}  // namespace
}  // namespace rap::asim
