// Checkpoint/resume contract tests: a killed exploration resumed from
// its last on-disk StoreCheckpoint must reproduce the uninterrupted
// pass's (states, edges, verdicts, witnesses) exactly — on both engine
// kinds — while corrupted files, foreign structures, reconfigured
// initial markings and engine-kind mismatches are all refused loudly
// instead of resuming as a silently wrong exploration.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "petri/checkpoint.hpp"
#include "petri/parallel.hpp"
#include "petri/reachability.hpp"
#include "petri/reuse.hpp"
#include "petri_fixtures.hpp"

namespace rap::petri {
namespace {

using namespace testfx;

/// Exact-match comparison (tighter than the cross-engine differential):
/// a resumed pass continues the same engine's deterministic walk, so
/// even witness markings and traces must be identical.
void expect_identical(const Net& net, const MultiResult& full,
                      const MultiResult& resumed,
                      const std::string& context) {
    EXPECT_EQ(resumed.states_explored, full.states_explored) << context;
    EXPECT_EQ(resumed.edges_explored, full.edges_explored) << context;
    EXPECT_FALSE(resumed.truncated) << context;
    EXPECT_EQ(sorted(resumed.deadlocks), sorted(full.deadlocks))
        << context;
    EXPECT_EQ(violation_set(resumed.persistence_violations),
              violation_set(full.persistence_violations))
        << context;
    ASSERT_EQ(resumed.goals.size(), full.goals.size()) << context;
    for (std::size_t g = 0; g < full.goals.size(); ++g) {
        const auto& fg = full.goals[g];
        const auto& rg = resumed.goals[g];
        ASSERT_EQ(rg.found(), fg.found()) << context << " goal " << g;
        if (!fg.found()) continue;
        EXPECT_EQ(*rg.witness, *fg.witness) << context << " goal " << g;
        ASSERT_TRUE(rg.witness_trace.has_value()) << context;
        ASSERT_TRUE(fg.witness_trace.has_value()) << context;
        EXPECT_EQ(rg.witness_trace->firings.size(),
                  fg.witness_trace->firings.size())
            << context << " goal " << g;
        expect_replays(net, *rg.witness_trace, *rg.witness,
                       context + " goal " + std::to_string(g));
    }
}

std::string temp_path(const std::string& name) {
    return testing::TempDir() + name;
}

/// Runs `query` with checkpointing on and a stop hook that kills the
/// pass after `polls` cooperative-stop polls, leaving the last periodic
/// checkpoint on disk. Returns the partial (truncated) result.
MultiResult killed_run(const CompiledNet& compiled, const MultiQuery& query,
                       const std::string& path, std::size_t threads,
                       int polls, std::size_t every) {
    ReachabilityOptions options;
    options.stop_at_first_match = false;
    options.checkpoint_path = path;
    options.checkpoint_every = every;
    auto count = std::make_shared<std::atomic<int>>(0);
    options.stop = [count, polls] { return ++*count > polls; };
    if (threads <= 1) {
        ReachabilityExplorer explorer(compiled, options);
        return explorer.run_query(query);
    }
    options.threads = threads;
    ParallelReachabilityExplorer explorer(compiled, options);
    return explorer.run_query(query);
}

TEST(Checkpoint, SequentialKillAndResumeMatchesUninterrupted) {
    const Fixture fixture = gap_fixture();  // deadlocks -> witness paths
    const CompiledNet compiled(fixture.net);
    const QueryBundle bundle(fixture.net);

    ReachabilityOptions base;
    base.stop_at_first_match = false;
    ReachabilityExplorer uninterrupted(compiled, base);
    const auto reference = uninterrupted.run_query(bundle.query);
    ASSERT_FALSE(reference.truncated);

    // The gap model is 1904 states / 7808 edges; the sequential engine
    // polls the stop hook every 256 edges, so 12 polls kill the pass
    // about 40% in — after the head crossed the 256-state save cadence.
    const std::string path = temp_path("ckpt_seq_kill.ckpt");
    std::remove(path.c_str());
    const auto partial =
        killed_run(compiled, bundle.query, path, 1, 12, 256);
    ASSERT_TRUE(partial.truncated) << "kill did not interrupt the pass";
    ASSERT_LT(partial.states_explored, reference.states_explored)
        << "kill landed after exhaustion; nothing left to resume";

    const auto ckpt = std::make_shared<const StoreCheckpoint>(
        StoreCheckpoint::load(path));
    ASSERT_GT(ckpt->record_count, 0u);
    ASSERT_LT(ckpt->record_count, reference.states_explored);

    // Resume under both table layouts: dense discovery-order ids make
    // the checkpoint layout-independent, so a legacy-layout checkpoint
    // must continue identically in a compact-store pass and vice versa.
    for (const bool compact : {false, true}) {
        ReachabilityOptions resume = base;
        resume.resume = ckpt;
        resume.compact_store = compact;
        ReachabilityExplorer resumed(compiled, resume);
        const auto result = resumed.run_query(bundle.query);
        expect_identical(fixture.net, reference, result,
                         std::string("sequential resume, ") +
                             (compact ? "compact" : "legacy") + " layout");
    }
}

TEST(Checkpoint, ParallelKillAndResumeMatchesUninterrupted) {
    // Large enough (~191k states) that 60 cooperative-stop polls always
    // land mid-pass, whatever the 4 workers' schedule looks like.
    const Fixture fixture = ope_fixture(3, 3);
    const CompiledNet compiled(fixture.net);
    const QueryBundle bundle(fixture.net);

    ReachabilityOptions base;
    base.stop_at_first_match = false;
    base.threads = 4;
    ParallelReachabilityExplorer uninterrupted(compiled, base);
    const auto reference = uninterrupted.run_query(bundle.query);
    ASSERT_FALSE(reference.truncated);

    const std::string path = temp_path("ckpt_par_kill.ckpt");
    std::remove(path.c_str());
    const auto partial =
        killed_run(compiled, bundle.query, path, 4, 60, 1);
    ASSERT_TRUE(partial.truncated) << "kill did not interrupt the pass";
    ASSERT_LT(partial.states_explored, reference.states_explored)
        << "kill landed after exhaustion; nothing left to resume";

    const auto ckpt = std::make_shared<const StoreCheckpoint>(
        StoreCheckpoint::load(path));
    ASSERT_EQ(ckpt->engine, StoreCheckpoint::Engine::kParallel);
    ASSERT_GT(ckpt->record_count, 0u);

    for (const bool compact : {false, true}) {
        ReachabilityOptions resume = base;
        resume.resume = ckpt;
        resume.compact_store = compact;
        ParallelReachabilityExplorer resumed(compiled, resume);
        const auto result = resumed.run_query(bundle.query);
        expect_identical(fixture.net, reference, result,
                         std::string("parallel resume, ") +
                             (compact ? "compact" : "legacy") + " layout");
    }
}

TEST(Checkpoint, ResumedPassKeepsCheckpointingToTheNextFile) {
    // The nightly soak's shape: resume from one night's checkpoint while
    // writing the next night's. The resumed pass must both reproduce the
    // uninterrupted result and leave a fresh loadable checkpoint behind.
    const Fixture fixture = ope_fixture(3, 3);
    const CompiledNet compiled(fixture.net);
    const QueryBundle bundle(fixture.net);

    ReachabilityOptions base;
    base.stop_at_first_match = false;
    ReachabilityExplorer uninterrupted(compiled, base);
    const auto reference = uninterrupted.run_query(bundle.query);

    const std::string first = temp_path("ckpt_chain_first.ckpt");
    const std::string second = temp_path("ckpt_chain_second.ckpt");
    std::remove(first.c_str());
    std::remove(second.c_str());
    const auto partial =
        killed_run(compiled, bundle.query, first, 1, 80, 1024);
    ASSERT_TRUE(partial.truncated);

    ReachabilityOptions resume = base;
    resume.resume = std::make_shared<const StoreCheckpoint>(
        StoreCheckpoint::load(first));
    resume.checkpoint_path = second;
    resume.checkpoint_every = 4096;
    ReachabilityExplorer resumed(compiled, resume);
    const auto result = resumed.run_query(bundle.query);
    expect_identical(fixture.net, reference, result, "chained resume");

    const auto next = StoreCheckpoint::load(second);
    EXPECT_GT(next.record_count, resume.resume->record_count);
}

TEST(Checkpoint, CorruptedOrTruncatedFileRejectedLoudly) {
    const Fixture fixture = ring_fixture(6);  // 8 states, tiny + fast
    const CompiledNet compiled(fixture.net);
    const QueryBundle bundle(fixture.net);

    const std::string path = temp_path("ckpt_corrupt.ckpt");
    std::remove(path.c_str());
    ReachabilityOptions options;
    options.stop_at_first_match = false;
    options.checkpoint_path = path;
    options.checkpoint_every = 4;
    ReachabilityExplorer explorer(compiled, options);
    explorer.run_query(bundle.query);
    ASSERT_NO_THROW(StoreCheckpoint::load(path)) << "pristine file";

    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good());
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    in.close();
    ASSERT_GT(bytes.size(), 64u);

    const std::string truncated = temp_path("ckpt_truncated.ckpt");
    {
        std::ofstream out(truncated, std::ios::binary);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size() / 2));
    }
    EXPECT_THROW(StoreCheckpoint::load(truncated), std::runtime_error);

    const std::string flipped = temp_path("ckpt_flipped.ckpt");
    {
        std::vector<char> bad = bytes;
        bad[bad.size() / 2] ^= 0x40;  // payload bit flip -> checksum
        std::ofstream out(flipped, std::ios::binary);
        out.write(bad.data(), static_cast<std::streamsize>(bad.size()));
    }
    EXPECT_THROW(StoreCheckpoint::load(flipped), std::runtime_error);

    const std::string garbage = temp_path("ckpt_garbage.ckpt");
    {
        std::ofstream out(garbage, std::ios::binary);
        out << "this is not a checkpoint";
    }
    EXPECT_THROW(StoreCheckpoint::load(garbage), std::runtime_error);

    EXPECT_THROW(StoreCheckpoint::load(temp_path("ckpt_missing.ckpt")),
                 std::runtime_error);
}

TEST(Checkpoint, StructuralOrMarkingChangeRefusedOnResume) {
    const std::string path = temp_path("ckpt_structure.ckpt");
    std::remove(path.c_str());
    const Fixture source = ope_fixture(3, 3);
    const CompiledNet compiled(source.net);
    const QueryBundle bundle(source.net);
    killed_run(compiled, bundle.query, path, 1, 30, 512);
    const auto ckpt = std::make_shared<const StoreCheckpoint>(
        StoreCheckpoint::load(path));

    // Different structure: the digest mismatch must refuse the resume.
    const Fixture other = ring_fixture(4);
    const CompiledNet other_compiled(other.net);
    const QueryBundle other_bundle(other.net);
    ReachabilityOptions options;
    options.stop_at_first_match = false;
    options.resume = ckpt;
    ReachabilityExplorer foreign(other_compiled, options);
    EXPECT_THROW(foreign.run_query(other_bundle.query),
                 std::runtime_error);

    // Same structure, reconfigured initial marking (the gap model flips
    // one ring's token): record 0 no longer matches, refused separately.
    const Fixture gap = gap_fixture();
    const CompiledNet gap_compiled(gap.net);
    if (gap_compiled.structure_digest() == compiled.structure_digest()) {
        const QueryBundle gap_bundle(gap.net);
        ReachabilityExplorer reconfigured(gap_compiled, options);
        EXPECT_THROW(reconfigured.run_query(gap_bundle.query),
                     std::runtime_error);
    }
}

TEST(Checkpoint, EngineKindMismatchRefused) {
    const Fixture fixture = ope_fixture(3, 3);
    const CompiledNet compiled(fixture.net);
    const QueryBundle bundle(fixture.net);

    const std::string seq_path = temp_path("ckpt_kind_seq.ckpt");
    const std::string par_path = temp_path("ckpt_kind_par.ckpt");
    std::remove(seq_path.c_str());
    std::remove(par_path.c_str());
    killed_run(compiled, bundle.query, seq_path, 1, 30, 512);
    killed_run(compiled, bundle.query, par_path, 4, 60, 1);
    const auto seq_ckpt = std::make_shared<const StoreCheckpoint>(
        StoreCheckpoint::load(seq_path));
    const auto par_ckpt = std::make_shared<const StoreCheckpoint>(
        StoreCheckpoint::load(par_path));
    ASSERT_EQ(seq_ckpt->engine, StoreCheckpoint::Engine::kSequential);
    ASSERT_EQ(par_ckpt->engine, StoreCheckpoint::Engine::kParallel);

    ReachabilityOptions options;
    options.stop_at_first_match = false;
    options.resume = par_ckpt;
    ReachabilityExplorer sequential(compiled, options);
    EXPECT_THROW(sequential.run_query(bundle.query), std::runtime_error);

    options.resume = seq_ckpt;
    options.threads = 4;
    ParallelReachabilityExplorer parallel(compiled, options);
    EXPECT_THROW(parallel.run_query(bundle.query), std::runtime_error);

    // A 1-thread "parallel" pass IS the sequential code path, so it
    // accepts the sequential checkpoint and refuses the parallel one.
    options.threads = 1;
    ParallelReachabilityExplorer delegated(compiled, options);
    EXPECT_NO_THROW(delegated.run_query(bundle.query));
    options.resume = par_ckpt;
    ParallelReachabilityExplorer delegated_par(compiled, options);
    EXPECT_THROW(delegated_par.run_query(bundle.query),
                 std::runtime_error);
}

TEST(Checkpoint, ReuseStoreAndCheckpointingRefusedTogether) {
    // A cross-pass ReuseStore retains rows the checkpoint cannot carry;
    // both engines must refuse the combination up front rather than
    // write checkpoints that cannot faithfully resume.
    const Fixture fixture = ring_fixture(3);
    const CompiledNet compiled(fixture.net);
    const QueryBundle bundle(fixture.net);

    ReachabilityOptions options;
    options.stop_at_first_match = false;
    options.reuse = std::make_shared<ReuseStore>();
    options.checkpoint_path = temp_path("ckpt_reuse.ckpt");
    ReachabilityExplorer sequential(compiled, options);
    EXPECT_THROW(sequential.run_query(bundle.query), std::runtime_error);

    options.threads = 4;
    ParallelReachabilityExplorer parallel(compiled, options);
    EXPECT_THROW(parallel.run_query(bundle.query), std::runtime_error);
}

}  // namespace
}  // namespace rap::petri
