// Tests for the concurrent sharded LRU artifact cache: counter
// reconciliation under a multi-threaded hammer, build coalescing (no
// double-build when callers race on one key), byte-capacity LRU
// eviction, and pin semantics. Each TEST() runs as its own ctest
// process, so deltas of the global artifact_builds() counter are safe.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "dfs_helpers.hpp"
#include "rap/verify/cache.hpp"

namespace rap::verify {
namespace {

using dfs::Graph;
using dfs::TokenValue;

/// A small distinct model: a 3-control ring whose name prefix makes the
/// content unique. Same node/arc counts for every id, so every variant
/// has the same approx_bytes() — convenient for capacity math.
///
/// Concurrent tests build their models INSIDE each thread: a Graph's
/// lazy adjacency cache is not thread-safe, so sharing one instance
/// across racing lookups is outside the library contract (the sweep
/// service likewise builds one model per grid point). Identical content
/// still dedups — the cache keys on the content hash, not the object.
Graph make_model(int id) {
    Graph g("cache_model_" + std::to_string(id));
    dfs::testing::add_control_ring(g, "r" + std::to_string(id),
                                   TokenValue::True);
    return g;
}

TEST(ArtifactCache, ConcurrentHammerCountersReconcile) {
    constexpr int kThreads = 8;
    constexpr int kRounds = 25;
    constexpr int kModels = 6;

    ArtifactCache cache;  // default: 8 shards, plenty of capacity
    const std::size_t builds_before = artifact_builds();

    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            std::vector<Graph> models;
            for (int m = 0; m < kModels; ++m)
                models.push_back(make_model(m));
            while (!go.load()) {
            }
            for (int r = 0; r < kRounds; ++r) {
                for (const Graph& g : models) {
                    const auto model = cache.get(g);
                    ASSERT_NE(model, nullptr);
                    ASSERT_GT(model->approx_bytes(), 0u);
                }
            }
        });
    }
    go.store(true);
    for (auto& t : threads) t.join();

    const CacheStats stats = cache.stats();
    // Every lookup is exactly one hit or one miss (waiters on an
    // in-flight build count as hits)...
    EXPECT_EQ(stats.hits + stats.misses,
              static_cast<std::size_t>(kThreads) * kRounds * kModels);
    // ...and a miss is exactly one build: build coalescing means the
    // cache compiled each distinct model once, no matter how the 8
    // threads raced.
    EXPECT_EQ(stats.misses, static_cast<std::size_t>(kModels));
    EXPECT_EQ(artifact_builds() - builds_before,
              static_cast<std::size_t>(kModels));
    EXPECT_EQ(stats.entries, static_cast<std::size_t>(kModels));
    EXPECT_EQ(stats.evictions, 0u);
    EXPECT_EQ(stats.pinned, 0u);
}

TEST(ArtifactCache, RacingMissesOnOneKeyBuildOnce) {
    constexpr int kThreads = 8;

    ArtifactCache cache;
    const std::size_t builds_before = artifact_builds();

    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            const Graph g = make_model(0);
            while (!go.load()) {
            }
            const auto model = cache.get(g);
            ASSERT_NE(model, nullptr);
        });
    }
    go.store(true);
    for (auto& t : threads) t.join();

    const CacheStats stats = cache.stats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits, static_cast<std::size_t>(kThreads) - 1);
    EXPECT_EQ(artifact_builds() - builds_before, 1u);
}

TEST(ArtifactCache, EvictsLeastRecentlyUsedUnderCapacity) {
    // Size the capacity from a real artifact so the cache holds exactly
    // two of the (equally sized) models.
    std::size_t model_bytes = 0;
    {
        ArtifactCache probe;
        probe.get(make_model(0));
        model_bytes = probe.stats().bytes;
    }
    ASSERT_GT(model_bytes, 0u);

    ArtifactCache::Options options;
    options.shard_count = 1;  // one shard: deterministic LRU order
    options.capacity_bytes = 2 * model_bytes + model_bytes / 2;
    ArtifactCache cache(options);

    const Graph g0 = make_model(0);
    const Graph g1 = make_model(1);
    const Graph g2 = make_model(2);

    cache.get(g0);
    cache.get(g1);
    EXPECT_EQ(cache.stats().entries, 2u);
    EXPECT_EQ(cache.stats().evictions, 0u);

    // Third insert overflows the shard: the least recently used (g0)
    // goes, the newcomer and g1 stay resident.
    cache.get(g2);
    EXPECT_EQ(cache.stats().entries, 2u);
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_LE(cache.stats().bytes, options.capacity_bytes);

    const std::size_t misses_before = cache.stats().misses;
    cache.get(g1);  // still resident -> hit
    cache.get(g2);  // still resident -> hit
    EXPECT_EQ(cache.stats().misses, misses_before);
    cache.get(g0);  // was evicted -> miss, rebuilt
    EXPECT_EQ(cache.stats().misses, misses_before + 1);
}

TEST(ArtifactCache, PinnedEntrySurvivesEvictionPressure) {
    std::size_t model_bytes = 0;
    {
        ArtifactCache probe;
        probe.get(make_model(0));
        model_bytes = probe.stats().bytes;
    }

    ArtifactCache::Options options;
    options.shard_count = 1;
    options.capacity_bytes = model_bytes;  // room for exactly one model
    ArtifactCache cache(options);

    const Graph g0 = make_model(0);
    const Graph g1 = make_model(1);

    ArtifactCache::Pin pin = cache.get_pinned(g0);
    ASSERT_TRUE(pin);
    EXPECT_EQ(cache.stats().pinned, 1u);

    // g1 overflows the shard, but the pinned g0 cannot be dropped — the
    // unpinned newcomer is reclaimed instead.
    cache.get(g1);
    {
        const CacheStats stats = cache.stats();
        EXPECT_EQ(stats.entries, 1u);
        EXPECT_EQ(stats.evictions, 1u);
    }
    const std::size_t misses_before = cache.stats().misses;
    EXPECT_NE(cache.get(g0), nullptr);  // hit: still resident
    EXPECT_EQ(cache.stats().misses, misses_before);

    // Once the pin drops, g0 is ordinary LRU prey again.
    pin.release();
    EXPECT_EQ(cache.stats().pinned, 0u);
    cache.get(g1);  // insert overflows -> evicts the now-unpinned g0
    const CacheStats stats = cache.stats();
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_EQ(stats.evictions, 2u);
}

TEST(ArtifactCache, ClearDropsUnpinnedEntriesWithoutCountingEvictions) {
    ArtifactCache cache;
    cache.get(make_model(0));
    const Graph pinned_model = make_model(1);
    ArtifactCache::Pin pin = cache.get_pinned(pinned_model);

    cache.clear();
    const CacheStats stats = cache.stats();
    EXPECT_EQ(stats.entries, 1u);  // the pinned one survives
    EXPECT_EQ(stats.pinned, 1u);
    EXPECT_EQ(stats.evictions, 0u);
    EXPECT_EQ(stats.misses, 2u);  // counters survive clear()
}

}  // namespace
}  // namespace rap::verify
