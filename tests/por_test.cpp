// Differential harness for partial-order (stubborn-set) reduction:
// every fixture model and 24 fuzzer seeds run reduced
// (ReachabilityOptions::por) against the full exploration, across the
// sequential engine and the parallel engine at 2/4/8 threads. The
// contract checked here is exactly the one the option documents —
// verdicts preserved (deadlock sets EXACTLY equal, goal reachability
// and the persistence verdict unchanged), reduced witnesses genuine
// (replayed firing by firing, goal re-evaluated at the end marking),
// reduced violation sets a subset of the full pass's, reduced counters
// deterministic across engines and thread counts — plus the PorStats
// surface, the unknown-support fallback, and actual state-count
// reduction on the OPE models the CI ratio floor gates.

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <string>
#include <vector>

#include "petri/parallel.hpp"
#include "petri/por.hpp"
#include "petri/predicate.hpp"
#include "petri/reachability.hpp"
#include "petri_fixtures.hpp"

namespace rap::petri {
namespace {

using namespace testfx;  // model zoo + differential plumbing

constexpr std::size_t kThreadCounts[] = {1, 2, 4, 8};

/// Full (unreduced) exhaustive reference pass, sequential engine.
MultiResult full_reference(const CompiledNet& compiled,
                           const MultiQuery& query) {
    ReachabilityOptions options;
    options.stop_at_first_match = false;
    ReachabilityExplorer seq(compiled, options);
    return seq.run_query(query);
}

/// Reduced exhaustive pass; threads == 1 is the sequential engine's
/// code path (via the parallel facade's delegation contract).
MultiResult reduced_run(const CompiledNet& compiled,
                        const MultiQuery& query, std::size_t threads) {
    ReachabilityOptions options;
    options.stop_at_first_match = false;
    options.por = true;
    options.threads = threads;
    ParallelReachabilityExplorer par(compiled, options);
    return par.run_query(query);
}

/// Re-evaluates a goal at a witness marking (Deadlock goals through the
/// net, predicate goals directly) — reduced witnesses need not match the
/// full pass's marking, so satisfaction is re-checked semantically.
bool satisfies(const Net& net, const Predicate& goal, const Marking& m) {
    if (goal.kind() == Predicate::Kind::Deadlock) {
        return net.is_deadlocked(m);
    }
    return goal(net, m);
}

/// The reduction contract between one full pass and one reduced pass
/// over the same query.
void expect_preserves(const Net& net, const QueryBundle& bundle,
                      const MultiResult& full, const MultiResult& red,
                      const std::string& context) {
    ASSERT_FALSE(full.truncated) << context;
    ASSERT_FALSE(red.truncated) << context;
    EXPECT_LE(red.states_explored, full.states_explored) << context;
    EXPECT_LE(red.edges_explored, full.edges_explored) << context;

    // Deadlock sets are EXACTLY preserved (stubbornness alone keeps
    // every deadlock reachable, and reduction never invents states).
    EXPECT_EQ(sorted(red.deadlocks), sorted(full.deadlocks)) << context;

    // Goal verdicts match; reduced witnesses are genuine firing
    // sequences whose end marking satisfies the goal (they need not be
    // shortest, and the marking may differ from the full pass's).
    ASSERT_EQ(red.goals.size(), full.goals.size()) << context;
    const Predicate* goal_preds[] = {&bundle.dead, &bundle.marked};
    for (std::size_t g = 0; g < full.goals.size(); ++g) {
        ASSERT_EQ(red.goals[g].found(), full.goals[g].found())
            << context << " goal " << g;
        if (!red.goals[g].found()) continue;
        ASSERT_TRUE(red.goals[g].witness_trace.has_value())
            << context << " goal " << g;
        expect_replays(net, *red.goals[g].witness_trace,
                       *red.goals[g].witness,
                       context + " goal " + std::to_string(g));
        EXPECT_TRUE(satisfies(net, *goal_preds[g], *red.goals[g].witness))
            << context << " goal " << g;
    }

    // Persistence: same verdict, and every reduced violation is one the
    // full pass found too (the prepass checks full-graph edges at
    // reduced-reachable states, so red ⊆ full).
    EXPECT_EQ(red.persistence_violations.empty(),
              full.persistence_violations.empty())
        << context;
    const auto full_keys = violation_set(full.persistence_violations);
    const auto red_keys = violation_set(red.persistence_violations);
    EXPECT_TRUE(std::includes(full_keys.begin(), full_keys.end(),
                              red_keys.begin(), red_keys.end()))
        << context << ": reduced violations are not a subset";
    for (const auto& v : red.persistence_violations) {
        expect_replays(net, v.trace_to_marking, v.marking,
                       context + " violation");
        ASSERT_TRUE(net.is_enabled(v.marking, v.fired)) << context;
        ASSERT_TRUE(net.is_enabled(v.marking, v.disabled)) << context;
        Marking after = v.marking;
        net.fire(after, v.fired);
        EXPECT_FALSE(net.is_enabled(after, v.disabled))
            << context << ": reported violation does not disable";
    }

    // Stats surface: the pass ran with reduction and the counters are
    // internally consistent.
    EXPECT_TRUE(red.por.active) << context;
    EXPECT_GT(red.por.expansions, 0u) << context;
    EXPECT_GE(red.por.enabled_transitions, red.por.expanded_transitions)
        << context;
    EXPECT_GE(red.por.expansions, red.por.reduced_expansions) << context;
    EXPECT_GE(red.por.reduced_expansions, red.por.proviso_expansions)
        << context;
    EXPECT_FALSE(full.por.active) << context;
}

/// The reduced graph is one deterministic object: counters, sets and
/// stats must be identical whichever engine / thread count explored it.
void expect_same_reduced_graph(const MultiResult& a, const MultiResult& b,
                               const std::string& context) {
    EXPECT_EQ(a.states_explored, b.states_explored) << context;
    EXPECT_EQ(a.edges_explored, b.edges_explored) << context;
    EXPECT_EQ(sorted(a.deadlocks), sorted(b.deadlocks)) << context;
    EXPECT_EQ(violation_set(a.persistence_violations),
              violation_set(b.persistence_violations))
        << context;
    EXPECT_EQ(a.por.expansions, b.por.expansions) << context;
    EXPECT_EQ(a.por.reduced_expansions, b.por.reduced_expansions)
        << context;
    EXPECT_EQ(a.por.proviso_expansions, b.por.proviso_expansions)
        << context;
    EXPECT_EQ(a.por.enabled_transitions, b.por.enabled_transitions)
        << context;
    EXPECT_EQ(a.por.expanded_transitions, b.por.expanded_transitions)
        << context;
}

// -------------------------------------------------------- differential --

TEST(PorDifferential, VerdictsPreservedOnEveryFixture) {
    for (const Fixture& fixture : all_fixtures()) {
        const CompiledNet compiled(fixture.net);
        const QueryBundle bundle(fixture.net);
        const auto full = full_reference(compiled, bundle.query);

        std::optional<MultiResult> baseline;
        for (const std::size_t threads : kThreadCounts) {
            const std::string context =
                fixture.name + " reduced @" + std::to_string(threads) + "t";
            const auto red = reduced_run(compiled, bundle.query, threads);
            expect_preserves(fixture.net, bundle, full, red, context);
            if (baseline) {
                expect_same_reduced_graph(*baseline, red, context);
            } else {
                baseline = red;
            }
        }
    }
}

TEST(PorDifferential, RandomizedFuzzer24Seeds) {
    // 24 seeded random models across the three topology classes, reduced
    // vs full at every thread count. On mismatch the scoped trace names
    // the failing seed and topology to replay.
    for (std::uint64_t seed = 1; seed <= 24; ++seed) {
        const Fixture fixture = fuzz_fixture(seed);
        SCOPED_TRACE("fuzz seed=" + std::to_string(seed) +
                     " model=" + fixture.name);
        const CompiledNet compiled(fixture.net);
        const QueryBundle bundle(fixture.net);
        const auto full = full_reference(compiled, bundle.query);
        ASSERT_FALSE(full.truncated) << fixture.name;

        std::optional<MultiResult> baseline;
        for (const std::size_t threads : kThreadCounts) {
            const std::string context =
                "fuzz seed=" + std::to_string(seed) + " model=" +
                fixture.name + " reduced @" + std::to_string(threads) + "t";
            const auto red = reduced_run(compiled, bundle.query, threads);
            expect_preserves(fixture.net, bundle, full, red, context);
            if (baseline) {
                expect_same_reduced_graph(*baseline, red, context);
            } else {
                baseline = red;
            }
        }
    }
}

// ---------------------------------------------------- actual reduction --

TEST(PorReduction, DeadlockPassShrinksTheOpeModels) {
    // The quantity the CI ratio floor gates (bench_por + compare.py
    // --por): on the highly concurrent OPE models, a pass that needs no
    // proviso (deadlock detection / plain exploration) must actually
    // explore fewer states, with identical deadlock verdicts.
    for (const Fixture& fixture :
         {static_ope_fixture(2), ope_fixture(3, 3)}) {
        const CompiledNet compiled(fixture.net);
        MultiQuery query;
        const Predicate dead = Predicate::deadlock();
        query.goals = {&dead};
        query.collect_deadlocks = true;

        const auto full = full_reference(compiled, query);
        const auto red = reduced_run(compiled, query, 1);
        ASSERT_FALSE(full.truncated) << fixture.name;
        ASSERT_FALSE(red.truncated) << fixture.name;
        EXPECT_EQ(sorted(red.deadlocks), sorted(full.deadlocks))
            << fixture.name;
        EXPECT_EQ(red.goals[0].found(), full.goals[0].found())
            << fixture.name;
        EXPECT_LT(red.states_explored, full.states_explored)
            << fixture.name;
        EXPECT_GT(red.por.ignored(), 0u) << fixture.name;

        // The parallel engine explores the same reduced graph.
        const auto red4 = reduced_run(compiled, query, 4);
        expect_same_reduced_graph(red, red4, fixture.name + " @4t");
    }
}

TEST(PorReduction, FiveStageOpeReducedPassFitsTierOne) {
    // Promoted from the soak tier (ROADMAP follow-up (e)): the FULL
    // 5-stage reconfigurable OPE is far beyond the 19M-state 4-stage
    // soak, but its reduced deadlock pass explores ~11k states in
    // milliseconds — so the deepest configuration's liveness verdict now
    // runs on every tier-1 ctest instead of once a night. The bound
    // below is a regression tripwire for the stubborn heuristic, ~10x
    // above the measured count without letting the pass grow soak-sized.
    const Fixture fixture = ope_fixture(5, 5);
    const CompiledNet compiled(fixture.net);
    MultiQuery query;
    const Predicate dead = Predicate::deadlock();
    query.goals = {&dead};
    query.collect_deadlocks = true;

    const auto red = reduced_run(compiled, query, 1);
    ASSERT_FALSE(red.truncated);
    EXPECT_FALSE(red.goals[0].found()) << "5-stage OPE deadlocked";
    EXPECT_TRUE(red.deadlocks.empty());
    EXPECT_TRUE(red.por.active);
    EXPECT_GT(red.por.ignored(), 0u);
    EXPECT_LT(red.states_explored, 120'000u)
        << "reduced 5-stage graph grew an order of magnitude — the "
           "stubborn heuristic regressed";

    // Deterministic reduced graph across engines and thread counts.
    const auto red4 = reduced_run(compiled, query, 4);
    expect_same_reduced_graph(red, red4, fixture.name + " @4t");
}

// ------------------------------------------------------- stats surface --

TEST(PorStats, InactiveWhenOff) {
    const Fixture fixture = ring_fixture(2);
    const CompiledNet compiled(fixture.net);
    ReachabilityExplorer seq(compiled);
    const auto result = seq.explore_all();
    EXPECT_FALSE(result.por.active);
    EXPECT_EQ(result.por.expansions, 0u);
    EXPECT_EQ(result.por.enabled_transitions, 0u);
    EXPECT_EQ(result.por.ignored(), 0u);
}

TEST(PorStats, UnknownSupportGoalFallsBackToFullExploration) {
    // A custom predicate without declared support places makes the
    // visibility condition unbounded: the pass must fall back to full
    // exploration (active == false) and still answer correctly.
    const Fixture fixture = ring_fixture(2);
    const CompiledNet compiled(fixture.net);
    const Predicate opaque = Predicate::custom(
        "opaque", [](const Net&, const Marking& m) { return m.get(0); });

    MultiQuery query;
    query.goals = {&opaque};
    const auto full = full_reference(compiled, query);

    for (const std::size_t threads : kThreadCounts) {
        const auto red = reduced_run(compiled, query, threads);
        EXPECT_FALSE(red.por.active) << threads;
        EXPECT_EQ(red.states_explored, full.states_explored) << threads;
        EXPECT_EQ(red.edges_explored, full.edges_explored) << threads;
        EXPECT_EQ(red.goals[0].found(), full.goals[0].found()) << threads;
    }
}

TEST(PorStats, SupportedCustomGoalKeepsReductionActive) {
    // The same predicate with declared support reduces like any other
    // pass — the fallback is per-support, not per-kind.
    const Fixture fixture = static_ope_fixture(2);
    const CompiledNet compiled(fixture.net);
    const Predicate scoped = Predicate::custom(
        "scoped", [](const Net&, const Marking& m) { return m.get(0); },
        {PlaceId{0}});

    MultiQuery query;
    query.goals = {&scoped};
    const auto full = full_reference(compiled, query);
    const auto red = reduced_run(compiled, query, 1);
    EXPECT_TRUE(red.por.active);
    EXPECT_EQ(red.goals[0].found(), full.goals[0].found());
    if (red.goals[0].found()) {
        expect_replays(fixture.net, *red.goals[0].witness_trace,
                       *red.goals[0].witness, "scoped custom goal");
        EXPECT_TRUE(red.goals[0].witness->get(0));
    }
}

}  // namespace
}  // namespace rap::petri
