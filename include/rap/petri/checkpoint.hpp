#pragma once

// Public facade for librap: forwards to the internal source layout.
#include "petri/checkpoint.hpp"
