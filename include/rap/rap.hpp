#pragma once

// Umbrella header for librap: the whole paper flow behind one include.
//
//     #include "rap/rap.hpp"
//
//     rap::flow::Design design(rap::ope::build_reconfigurable_ope_dfs(3, 3));
//     auto report = design.verify();           // PN model checking
//     auto verilog = design.to_verilog();      // NCL-D netlist export
//
// flow::Design is the session entry point (one cached artifact graph from
// DFS model to netlist); the per-module headers below remain the public
// surface for callers that want a single layer.

// model
#include "rap/dfs/dot.hpp"
#include "rap/dfs/dynamics.hpp"
#include "rap/dfs/model.hpp"
#include "rap/dfs/serialize.hpp"
#include "rap/dfs/simulator.hpp"
#include "rap/dfs/state.hpp"
#include "rap/dfs/translate.hpp"

// petri-net semantics + model checking
#include "rap/petri/astg.hpp"
#include "rap/petri/compiled.hpp"
#include "rap/petri/dot.hpp"
#include "rap/petri/net.hpp"
#include "rap/petri/parallel.hpp"
#include "rap/petri/persistence.hpp"
#include "rap/petri/predicate.hpp"
#include "rap/petri/reachability.hpp"
#include "rap/verify/artifacts.hpp"
#include "rap/verify/cache.hpp"
#include "rap/verify/spec.hpp"
#include "rap/verify/verifier.hpp"
#include "rap/verify/witness.hpp"

// structure builders + workloads
#include "rap/ope/dfs_models.hpp"
#include "rap/ope/encoder.hpp"
#include "rap/pipeline/builder.hpp"
#include "rap/pipeline/wagging.hpp"

// implementation + measurement
#include "rap/asim/faults.hpp"
#include "rap/asim/timed_sim.hpp"
#include "rap/asim/vcd.hpp"
#include "rap/chip/chip.hpp"
#include "rap/chip/lfsr.hpp"
#include "rap/netlist/library.hpp"
#include "rap/netlist/netlist.hpp"
#include "rap/netlist/verilog.hpp"
#include "rap/perf/cycles.hpp"
#include "rap/perf/throughput.hpp"
#include "rap/tech/voltage.hpp"

// the session facade + batch sweep/campaign services
#include "rap/flow/campaign.hpp"
#include "rap/flow/design.hpp"
#include "rap/flow/metrics.hpp"
#include "rap/flow/sweep.hpp"
