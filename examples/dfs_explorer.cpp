// DFS model explorer: load a .dfs text file (or fall back to a built-in
// demo), open it as a flow::Design session, then validate, verify,
// analyse and simulate it — the batch equivalent of opening a model in
// the Workcraft GUI.
//
//   $ ./examples/dfs_explorer [model.dfs]

#include <cstdio>

#include "rap/rap.hpp"

namespace {

const char* kDemoModel = R"(# conditional-comp demo (Fig. 1b of the paper)
dfs demo
register in
logic cond
control ctrl
push filt
register comp
pop out
edge in cond
edge cond ctrl
edge in filt
edge ctrl filt
edge filt comp
edge comp out
edge ctrl out
)";

}  // namespace

int main(int argc, char** argv) {
    using namespace rap;

    dfs::Graph graph = argc > 1 ? dfs::load_file(argv[1])
                                : dfs::from_text(kDemoModel);
    std::printf("loaded model '%s': %zu nodes, %zu edges\n",
                graph.name().c_str(), graph.node_count(),
                graph.edge_count());

    const auto issues = graph.validate();
    if (!issues.empty()) {
        std::printf("structural problems:\n");
        for (const auto& issue : issues) {
            std::printf("  - %s\n", issue.c_str());
        }
        return 1;
    }
    std::printf("structure: ok\n\n");

    const flow::Design design(std::move(graph));

    // Formal verification on the session's cached Petri-net artifact.
    const auto report = design.verify();
    std::printf("verification:\n%s\n\n", report.to_string().c_str());

    // Cycle/bottleneck analysis (the Fig. 5 panel).
    const auto cycles = perf::analyse_cycles(design.graph());
    std::printf("cycles: %zu; model throughput bound %.4f\n",
                cycles.cycles.size(), cycles.throughput_bound());
    if (const auto* bottleneck = cycles.bottleneck()) {
        std::printf("slowest cycle: %s\n\n",
                    bottleneck->describe(design.graph()).c_str());
    } else {
        std::printf("acyclic model\n\n");
    }

    // A short random simulation with per-node token counts.
    auto sim = design.simulator(7);
    auto state = design.initial_state();
    const auto stats = sim.run(state, 5000);
    std::printf("simulated %llu events%s\n",
                static_cast<unsigned long long>(stats.steps),
                stats.deadlocked ? " — DEADLOCKED" : "");
    std::printf("tokens passed per register:\n");
    for (const auto n : design.graph().registers()) {
        std::printf("  %-16s %llu\n", design.graph().node_name(n).c_str(),
                    static_cast<unsigned long long>(stats.marks_at(n)));
    }
    std::printf("\nfinal state: %s\n", state.describe(design.graph()).c_str());
    return report.clean() && !stats.deadlocked ? 0 : 1;
}
