// Quickstart: the paper's motivating example (Fig. 1b) through the
// flow::Design session API — build the model, open a design session, and
// let it hand out every derived artifact (simulator, verifier, Petri
// net, netlist) from one shared cache. The 5-minute tour of the library.
//
//   $ ./examples/quickstart

#include <cstdio>

#include "rap/rap.hpp"

int main() {
    using namespace rap;

    // 1. Model: conditional application of an expensive function comp.
    //    cond's outcome lands in the control register ctrl, which guards
    //    the push `filt` (destroys bypassed tokens) and the pop `out`
    //    (produces the matching empty outputs).
    dfs::Graph g("quickstart");
    const auto in = g.add_register("in");
    const auto cond = g.add_logic("cond");
    const auto ctrl = g.add_control("ctrl", false, dfs::TokenValue::True);
    const auto filt = g.add_push("filt");
    const auto comp = g.add_register("comp");
    const auto out = g.add_pop("out");
    g.connect(in, cond);
    g.connect(cond, ctrl);
    g.connect(in, filt);
    g.connect(ctrl, filt);
    g.connect(filt, comp);
    g.connect(comp, out);
    g.connect(ctrl, out);

    // 2. Session: one Design owns the model and every derived artifact.
    const flow::Design design(std::move(g));
    std::printf("design '%s': %zu nodes, %zu edges — structurally %s\n",
                design.name().c_str(), design.graph().node_count(),
                design.graph().edge_count(),
                design.graph().validate().empty() ? "valid" : "INVALID");

    // 3. Simulate: random token game; with a 30% True bias most tokens
    //    bypass comp.
    auto sim = design.simulator(/*seed=*/2024);
    sim.set_true_bias(0.3);
    auto state = design.initial_state();
    const auto stats = sim.run(state, 20000);
    std::printf("simulated %llu events: %llu outputs, %llu went through "
                "comp (expected ~30%%)\n",
                static_cast<unsigned long long>(stats.steps),
                static_cast<unsigned long long>(stats.marks_at(out)),
                static_cast<unsigned long long>(stats.marks_at(comp)));

    // 4. Verify: a fluent property spec, answered by ONE state-space
    //    exploration on the session's cached Petri-net artifact. The
    //    custom Reach predicate rides the same pass.
    const auto report = design.verify(
        verify::Spec::standard().custom(
            "empty token reaches the output",
            petri::Predicate::marked(design.translation().net,
                                     "Mf_out_1")));
    std::printf("verification (%zu properties, one exploration):\n%s\n",
                report.findings.size(), report.to_string().c_str());
    // The standard checks must hold; the custom predicate is *expected*
    // reachable (bypassed items produce empty outputs by design) and its
    // witness above is already in DFS event terms.
    const auto* witnessed = report.find(verify::Property::Custom);
    bool standard_clean = true;
    for (const auto& f : report.findings) {
        if (f.property != verify::Property::Custom && f.violated) {
            standard_clean = false;
        }
    }

    // 5. Inspect the cached Fig. 3/4 Petri net — no retranslation.
    std::printf("Petri-net semantics: %zu places, %zu transitions "
                "(translated %zu time(s))\n",
                design.translation().net.place_count(),
                design.translation().net.transition_count(),
                design.pn_builds());

    // 6. Map to the NCL-D component netlist and export artifacts.
    const auto nstats = design.netlist().stats();
    std::printf("netlist: %d instances, %d equivalent gates, %.0f um^2\n",
                nstats.instances, nstats.total_gates, nstats.area_um2);
    std::printf("\nGraphviz rendering of the model:\n%s\n",
                design.to_dot().c_str());
    return standard_clean && witnessed && witnessed->violated ? 0 : 1;
}
