// Quickstart: build the paper's motivating example (Fig. 1b), simulate
// it, verify it, and inspect its Petri-net semantics — the 5-minute tour
// of the library's public API.
//
//   $ ./examples/quickstart

#include <cstdio>

#include "dfs/dot.hpp"
#include "dfs/dynamics.hpp"
#include "dfs/model.hpp"
#include "dfs/simulator.hpp"
#include "dfs/translate.hpp"
#include "verify/verifier.hpp"

int main() {
    using namespace rap;

    // 1. Model: conditional application of an expensive function comp.
    //    cond's outcome lands in the control register ctrl, which guards
    //    the push `filt` (destroys bypassed tokens) and the pop `out`
    //    (produces the matching empty outputs).
    dfs::Graph g("quickstart");
    const auto in = g.add_register("in");
    const auto cond = g.add_logic("cond");
    const auto ctrl = g.add_control("ctrl", false, dfs::TokenValue::True);
    const auto filt = g.add_push("filt");
    const auto comp = g.add_register("comp");
    const auto out = g.add_pop("out");
    g.connect(in, cond);
    g.connect(cond, ctrl);
    g.connect(in, filt);
    g.connect(ctrl, filt);
    g.connect(filt, comp);
    g.connect(comp, out);
    g.connect(ctrl, out);

    std::printf("model '%s': %zu nodes, %zu edges — structurally %s\n",
                g.name().c_str(), g.node_count(), g.edge_count(),
                g.validate().empty() ? "valid" : "INVALID");

    // 2. Simulate: random token game; with a 30% True bias most tokens
    //    bypass comp.
    const dfs::Dynamics dynamics(g);
    dfs::Simulator sim(dynamics, /*seed=*/2024);
    sim.set_true_bias(0.3);
    dfs::State state = dfs::State::initial(g);
    const auto stats = sim.run(state, 20000);
    std::printf("simulated %llu events: %llu outputs, %llu went through "
                "comp (expected ~30%%)\n",
                static_cast<unsigned long long>(stats.steps),
                static_cast<unsigned long long>(stats.marks_at(out)),
                static_cast<unsigned long long>(stats.marks_at(comp)));

    // 3. Verify: deadlock, control conflicts and persistence on the
    //    Petri-net semantics (what Workcraft hands to MPSAT).
    const verify::Verifier verifier(g);
    const auto report = verifier.verify_all();
    std::printf("verification:\n%s\n", report.to_string().c_str());

    // 4. Translate: inspect the Fig. 3/4 Petri net.
    const auto tr = dfs::to_petri(g);
    std::printf("Petri-net semantics: %zu places, %zu transitions\n",
                tr.net.place_count(), tr.net.transition_count());

    // 5. Export DOT for documentation.
    std::printf("\nGraphviz rendering of the model:\n%s\n",
                dfs::to_dot(g).c_str());
    return report.clean() ? 0 : 1;
}
