// Design-space sweep demo: explore the reconfigurable OPE's
// configuration space (pipeline depth x stage count x supply schedule)
// through the flow::Sweep batch service, streaming verified rows as
// they complete and finishing with the Prometheus-style metrics scrape
// a dashboard would poll.
//
//   $ ./examples/sweep_demo

#include <cstdio>

#include "rap/rap.hpp"

int main() {
    using namespace rap;

    // Keep each exploration modest so the demo runs in seconds: the
    // deepest configurations here would otherwise visit millions of
    // states (that's what the max_states cap and the soak job are for).
    flow::DesignOptions base;
    base.verify.max_states = 50'000;

    // Two supply stories for the schedule axis: a steady nominal rail
    // and a brown-out that dips three-quarters of the way down.
    tech::VoltageSchedule droop;
    droop.add_segment(2e-6, base.process.v_nominal);
    droop.add_segment(1e-6, base.process.v_nominal * 0.75);
    droop.add_segment(1e-6, base.process.v_nominal);

    std::printf("%-10s %-9s %9s %12s %14s\n", "config", "status",
                "states", "verify [ms]", "finish 1s work");
    flow::Sweep::Handle handle =
        flow::Sweep::ope(base)
            .stages({3, 4})
            .depths(2, 4)  // depth 2 is below the chip's minimum -> invalid
            .schedules({tech::VoltageSchedule::constant(
                            base.process.v_nominal),
                        droop})
            .workers(4)
            .on_result([](const flow::SweepResult& row) {
                if (row.status == flow::SweepStatus::kOk) {
                    std::printf("%-10s %-9s %9zu %12.1f %11.2f us\n",
                                row.point.label.c_str(),
                                std::string(to_string(row.status)).c_str(),
                                row.states, row.verify_seconds * 1e3,
                                row.schedule_finish_s * 1e6);
                } else {
                    std::printf("%-10s %-9s  (%s)\n",
                                row.point.label.c_str(),
                                std::string(to_string(row.status)).c_str(),
                                row.error.c_str());
                }
            })
            .launch();
    const auto rows = handle.wait();

    // The dedup story: identical model contents (the schedule axis does
    // not change the model) compiled exactly once, everything else came
    // out of the sharded artifact cache.
    std::printf("\n%zu grid points, %zu distinct models\n", rows.size(),
                handle.distinct_models());

    std::printf("\nmetrics scrape (Prometheus text format):\n%s",
                flow::metrics::to_prometheus(handle.metrics()).c_str());
    return 0;
}
