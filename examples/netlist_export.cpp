// Netlist backend demo: map a verified DFS model onto the NCL-D dual-rail
// component library and export the Verilog for a conventional backend
// flow (Section II-D / III-A). The flow::Design session carries the model
// from verification to mapping without rebuilding anything in between.
// Writes cond_comp.v next to the binary.
//
//   $ ./examples/netlist_export [output.v]

#include <cstdio>
#include <fstream>

#include "rap/rap.hpp"

int main(int argc, char** argv) {
    using namespace rap;

    dfs::Graph g("cond_comp");
    const auto in = g.add_register("in");
    const auto cond = g.add_logic("cond");
    const auto ctrl = g.add_control("ctrl", false, dfs::TokenValue::True);
    const auto filt = g.add_push("filt");
    const auto comp = g.add_register("comp");
    const auto out = g.add_pop("out");
    g.connect(in, cond);
    g.connect(cond, ctrl);
    g.connect(in, filt);
    g.connect(ctrl, filt);
    g.connect(filt, comp);
    g.connect(comp, out);
    g.connect(ctrl, out);

    flow::DesignOptions options;
    options.library.data_width = 16;
    options.library.sync = netlist::SyncTopology::Tree;
    const flow::Design design(std::move(g), options);

    // Verify before committing to silicon — the paper's ordering.
    if (!design.verify().clean()) {
        std::printf("model failed verification; not exporting\n");
        return 1;
    }

    const auto& mapped = design.netlist();
    const auto stats = mapped.stats();
    std::printf("mapped '%s' onto the NCL-D library:\n",
                design.name().c_str());
    std::printf("  %d instances, %d equivalent gates, %.0f um^2\n",
                stats.instances, stats.total_gates, stats.area_um2);
    std::printf("  registers=%d controls=%d push=%d pop=%d functions=%d\n",
                stats.registers, stats.control_registers, stats.pushes,
                stats.pops, stats.function_blocks);

    std::printf("\nper-node timing annotation (feeds the timed simulator):\n");
    const auto& timing = design.timing();
    for (const auto& inst : mapped.instances()) {
        std::printf("  %-6s %-14s %2d gates deep, %5.0f ps, %6.1f fJ\n",
                    design.graph().node_name(inst.node).c_str(),
                    inst.spec.type.c_str(), inst.spec.crit_path_gates,
                    timing[inst.node.value].delay_s * 1e12,
                    timing[inst.node.value].energy_j * 1e15);
    }

    const std::string path = argc > 1 ? argv[1] : "cond_comp.v";
    const std::string verilog = design.to_verilog();
    std::ofstream(path) << verilog;
    std::printf("\nwrote %zu bytes of Verilog to %s\n", verilog.size(),
                path.c_str());
    std::printf("(library modules: TH gates, C-elements, ack_join "
                "completion, ncld_* components; top module wires the DFS "
                "arcs)\n");
    return 0;
}
