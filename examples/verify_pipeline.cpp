// Designing a reconfigurable pipeline with the verifier in the loop: the
// Section III-A workflow on a flow::Design session. We first
// mis-initialise the control registers (one of the real bugs the paper
// reports finding), watch the checker produce a witness trace *in DFS
// event terms*, fix the initialisation through the session's
// reconfiguration API — which invalidates exactly the PN-derived
// artifacts — and re-verify.
//
//   $ ./examples/verify_pipeline

#include <cstdio>

#include "rap/rap.hpp"

int main() {
    using namespace rap;

    // A 3-stage reconfigurable OPE pipeline, intended depth 3, opened as
    // one design session...
    flow::Design design(ope::build_reconfigurable_ope_dfs(3, 3));

    // ...but the designer initialises stage 2's ring with False while
    // stage 3 stays active — a gap configuration.
    design.reset_ring(design.pipeline().stages[1].global_ring,
                      dfs::TokenValue::False);

    std::printf("verifying the mis-initialised pipeline...\n");
    const auto finding = design.verifier().check_deadlock();
    std::printf("%s\n\n", finding.to_string().c_str());
    if (!finding.violated) {
        std::printf("expected a deadlock — model changed?\n");
        return 1;
    }
    std::printf("the `events:` line above replays the witness in DFS\n"
                "terms (token moves of pushes, pops and control rings) —\n"
                "the debugging aid the paper used to analyse and correct\n"
                "its OPE models.\n\n");

    // Fix: restore a contiguous active prefix via the configuration API,
    // which refuses invalid shapes by construction. Reconfiguration
    // invalidates only the marking-derived artifacts; a second verifier
    // construction over the same content would share the same compile.
    std::printf("fixing the configuration (depth=2 via set_depth)...\n");
    design.set_depth(2);
    const auto report = design.verify();
    std::printf("%s\n\n", report.to_string().c_str());
    std::printf("PN artifact builds this session: %zu "
                "(one per configuration, none redundant)\n",
                design.pn_builds());
    std::printf("pipeline is %s\n",
                report.clean() ? "clean — ready for netlist export"
                               : "still broken");
    return report.clean() ? 0 : 1;
}
