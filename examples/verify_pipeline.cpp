// Designing a reconfigurable pipeline with the verifier in the loop: the
// Section III-A workflow. We first mis-initialise the control registers
// (one of the real bugs the paper reports finding), watch the checker
// produce a witness trace, fix the initialisation, and re-verify.
//
//   $ ./examples/verify_pipeline

#include <cstdio>

#include "ope/dfs_models.hpp"
#include "pipeline/builder.hpp"
#include "verify/verifier.hpp"

int main() {
    using namespace rap;

    // A 3-stage reconfigurable OPE pipeline, intended depth 3...
    auto p = ope::build_reconfigurable_ope_dfs(3, 3);

    // ...but the designer initialises stage 2's ring with False while
    // stage 3 stays active — a gap configuration.
    pipeline::reset_ring(p.graph, p.stages[1].global_ring,
                         dfs::TokenValue::False);

    std::printf("verifying the mis-initialised pipeline...\n");
    {
        const verify::Verifier verifier(p.graph);
        const auto finding = verifier.check_deadlock();
        std::printf("%s\n\n", finding.to_string().c_str());
        if (!finding.violated) {
            std::printf("expected a deadlock — model changed?\n");
            return 1;
        }
        std::printf("the witness trace above replays the exact event\n"
                    "sequence into the dead state — the debugging aid the\n"
                    "paper used to analyse and correct its OPE models.\n\n");
    }

    // Fix: restore a contiguous active prefix via the configuration API,
    // which refuses invalid shapes by construction.
    std::printf("fixing the configuration (depth=2 via set_depth)...\n");
    pipeline::set_depth(p, 2);
    {
        const verify::Verifier verifier(p.graph);
        const auto report = verifier.verify_all();
        std::printf("%s\n\n", report.to_string().c_str());
        std::printf("pipeline is %s\n",
                    report.clean() ? "clean — ready for netlist export"
                                   : "still broken");
        return report.clean() ? 0 : 1;
    }
}
