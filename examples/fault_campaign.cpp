// Fault-injection Monte-Carlo demo: a seeded flow::Campaign over the
// 3-stage reconfigurable OPE pipeline, sweeping supply voltage against
// fault intensity and printing the resulting survival curve — the
// paper's sub-nominal-voltage robustness story (the chip that keeps
// working down toward 0.34V) measured statistically instead of by a
// single run.
//
//   $ ./examples/fault_campaign [master_seed]
//
// Rerun with the same seed: every number reprints bit-for-bit (the
// reproducibility contract the campaign checksum certifies). Change the
// seed: a different realisation of the same curves.

#include <cstdio>
#include <cstdlib>

#include "rap/rap.hpp"

int main(int argc, char** argv) {
    using namespace rap;

    const std::uint64_t seed =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

    // Fault model: mild delay jitter everywhere, occasional handshake
    // drops/double-pulses, rare stuck-ats, plus supply droops arriving
    // as a Poisson process. fault_scales() sweeps the whole spec.
    asim::FaultSpec faults;
    faults.delay_sigma = 0.15;
    faults.drop_rate = 0.01;
    faults.duplicate_rate = 0.005;
    faults.stuck_rate = 5e-4;
    faults.glitch.rate_hz = 2e5;
    faults.glitch.droop_v = 0.45;
    faults.glitch.min_duration_s = 2e-7;
    faults.glitch.max_duration_s = 1e-6;

    std::printf("campaign: 3-stage OPE, seed %llu\n",
                static_cast<unsigned long long>(seed));
    const flow::CampaignSummary summary =
        flow::Campaign::ope(3)
            .depths({3})
            .voltages({1.2, 0.9, 0.7, 0.55, 0.45})
            .fault_scales({0.0, 1.0, 4.0})
            .base_faults(faults)
            .runs(40)
            .items(16)
            .seed(seed)
            .run();

    std::printf("\n%-16s %9s %8s %9s %8s %12s\n", "point", "survival",
                "frozen", "deadlock", "faults", "E/item [pJ]");
    for (const flow::CampaignAggregate& row : summary.rows) {
        std::printf("%-16s %8.0f%% %8zu %9zu %8llu %12.2f\n",
                    row.point.label.c_str(), 100.0 * row.survival,
                    row.frozen, row.deadlocks,
                    static_cast<unsigned long long>(row.faults_injected),
                    row.completed > 0 ? row.mean_energy_per_item_j * 1e12
                                      : 0.0);
    }

    std::printf("\n%zu runs, %.1f%% overall survival\n",
                summary.runs_total, 100.0 * summary.survival());
    if (summary.first_failure_voltage) {
        std::printf("survival curve knee: first failures at %.2f V\n",
                    *summary.first_failure_voltage);
    } else {
        std::printf("no failures anywhere in the grid\n");
    }
    std::printf("campaign checksum: %016llx (same seed => same number)\n",
                static_cast<unsigned long long>(summary.checksum));
    return 0;
}
