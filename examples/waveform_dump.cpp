// Waveform + ASTG export: run the Fig. 1b model on the design session's
// timed simulator, dump a GTKWave-compatible VCD of every node's
// marking/evaluation signals, and export the cached Petri-net semantics
// in the .g format consumed by petrify / punf / Workcraft.
//
//   $ ./examples/waveform_dump [basename]     # writes <basename>.vcd/.g

#include <cstdio>
#include <fstream>

#include "rap/rap.hpp"

int main(int argc, char** argv) {
    using namespace rap;

    dfs::Graph g("fig1b");
    const auto in = g.add_register("in");
    const auto cond = g.add_logic("cond");
    const auto ctrl = g.add_control("ctrl", false, dfs::TokenValue::True);
    const auto filt = g.add_push("filt");
    const auto comp = g.add_register("comp");
    const auto out = g.add_pop("out");
    g.connect(in, cond);
    g.connect(cond, ctrl);
    g.connect(in, filt);
    g.connect(ctrl, filt);
    g.connect(filt, comp);
    g.connect(comp, out);
    g.connect(ctrl, out);

    const flow::Design design(std::move(g));

    // Timed run at a constant healthy supply. The simulator comes
    // annotated straight from the session's netlist mapping, so the
    // waveform shows the mapped components' real skews.
    auto sim = design.timed_sim(tech::VoltageSchedule::constant(1.2));
    sim.set_seed(99);
    sim.set_true_bias(0.5);
    sim.enable_event_trace();
    auto state = design.initial_state();
    asim::RunLimits limits;
    limits.target_marks = 12;
    limits.observe = out;
    const auto stats = sim.run(state, limits);
    std::printf("simulated %llu events over %.1f ns (12 output tokens)\n",
                static_cast<unsigned long long>(stats.events),
                stats.time_s * 1e9);

    const std::string base = argc > 1 ? argv[1] : "fig1b";
    const std::string vcd_path = base + ".vcd";
    const std::string astg_path = base + ".g";

    std::ofstream(vcd_path) << asim::to_vcd(design.graph(),
                                            stats.events_log, 1e-12);
    std::printf("wrote %s — open with `gtkwave %s` to see the 4-phase\n"
                "handshake waves and the bypass cycles (T_filt low)\n",
                vcd_path.c_str(), vcd_path.c_str());

    std::ofstream(astg_path) << design.to_astg();
    std::printf("wrote %s — the Fig. 4 net in .g format for petrify / "
                "punf / Workcraft (translated %zu time(s) this session)\n",
                astg_path.c_str(), design.pn_builds());
    return 0;
}
