// Waveform + ASTG export: run the Fig. 1b model on the timed simulator,
// dump a GTKWave-compatible VCD of every node's marking/evaluation
// signals, and export the Petri-net semantics in the .g format consumed
// by petrify / punf / Workcraft.
//
//   $ ./examples/waveform_dump [basename]     # writes <basename>.vcd/.g

#include <cstdio>
#include <fstream>

#include "asim/timed_sim.hpp"
#include "asim/vcd.hpp"
#include "dfs/dynamics.hpp"
#include "dfs/model.hpp"
#include "dfs/translate.hpp"
#include "petri/astg.hpp"

int main(int argc, char** argv) {
    using namespace rap;

    dfs::Graph g("fig1b");
    const auto in = g.add_register("in");
    const auto cond = g.add_logic("cond");
    const auto ctrl = g.add_control("ctrl", false, dfs::TokenValue::True);
    const auto filt = g.add_push("filt");
    const auto comp = g.add_register("comp");
    const auto out = g.add_pop("out");
    g.connect(in, cond);
    g.connect(cond, ctrl);
    g.connect(in, filt);
    g.connect(ctrl, filt);
    g.connect(filt, comp);
    g.connect(comp, out);
    g.connect(ctrl, out);

    // Timed run with distinct node delays so the waveform shows realistic
    // skews; comp is the slow pipelined function.
    const dfs::Dynamics dyn(g);
    asim::TimingMap timing = asim::uniform_timing(g, 1e-9);
    timing[comp.value].delay_s = 8e-9;
    asim::TimedSimulator sim(dyn, timing, tech::VoltageModel{},
                             tech::VoltageSchedule::constant(1.2), 0.0);
    sim.set_true_bias(0.5, 99);
    sim.enable_event_trace();
    dfs::State state = dfs::State::initial(g);
    asim::RunLimits limits;
    limits.target_marks = 12;
    limits.observe = out;
    const auto stats = sim.run(state, limits);
    std::printf("simulated %llu events over %.1f ns (12 output tokens)\n",
                static_cast<unsigned long long>(stats.events),
                stats.time_s * 1e9);

    const std::string base = argc > 1 ? argv[1] : "fig1b";
    const std::string vcd_path = base + ".vcd";
    const std::string astg_path = base + ".g";

    std::ofstream(vcd_path) << asim::to_vcd(g, stats.events_log, 1e-12);
    std::printf("wrote %s — open with `gtkwave %s` to see the 4-phase\n"
                "handshake waves and the bypass cycles (T_filt low)\n",
                vcd_path.c_str(), vcd_path.c_str());

    const auto tr = dfs::to_petri(g);
    std::ofstream(astg_path) << petri::to_astg(tr.net);
    std::printf("wrote %s — the Fig. 4 net in .g format for petrify / "
                "punf / Workcraft\n",
                astg_path.c_str());
    return 0;
}
