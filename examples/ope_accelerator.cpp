// OPE accelerator walkthrough: the chip's two operating modes and its
// reconfigurability, at the functional level. Mirrors how a user of the
// fabricated part would drive it: stream data in normal mode, switch
// window sizes, and run checksummed LFSR batches in random mode.
//
//   $ ./examples/ope_accelerator

#include <cstdio>
#include <vector>

#include "rap/rap.hpp"
#include "rap/util/strings.hpp"

namespace {

std::string ranks_to_string(const std::vector<int>& ranks) {
    std::vector<std::string> parts;
    for (const int r : ranks) parts.push_back(std::to_string(r));
    return "(" + rap::util::join(parts, ", ") + ")";
}

}  // namespace

int main() {
    using namespace rap;

    // Normal mode: the paper's own example stream, window size 6.
    chip::ChipOptions options;
    options.core = chip::Core::Reconfigurable;
    options.depth = 6;
    const std::vector<std::int64_t> stream = {3, 1, 4, 1, 5, 9, 2, 6};
    std::printf("normal mode, window N=6, stream (3,1,4,1,5,9,2,6):\n");
    for (const auto& ranks : chip::run_normal_mode(options, stream)) {
        std::printf("  rank list %s\n", ranks_to_string(ranks).c_str());
    }

    // Reconfigure: users "try multiple window sizes via reconfiguration
    // to discover hidden patterns" — sweep the depth on the same stream.
    chip::Lfsr lfsr(0xC0DE);
    std::vector<std::int64_t> data;
    for (int i = 0; i < 32; ++i) data.push_back(lfsr.next() % 100);
    std::printf("\nreconfiguration sweep on one 32-item stream:\n");
    for (const int window : {3, 6, 12, 18}) {
        options.depth = window;
        const auto outputs = chip::run_normal_mode(options, data);
        std::printf("  N=%2d -> %zu rank lists, first %s\n", window,
                    outputs.size(),
                    outputs.empty()
                        ? "(none)"
                        : ranks_to_string(outputs.front()).c_str());
    }

    // Random mode: LFSR batch + checksum, validated against the golden
    // behavioural model — the measurement configuration of Section IV.
    std::printf("\nrandom mode (seed 0x5EED, 100000 items):\n");
    options.depth = 18;
    const auto result = chip::run_random_mode(options, 0x5EED, 100000);
    const auto golden = chip::reference_checksum(18, 0x5EED, 100000);
    std::printf("  chip checksum:   %016llx\n",
                static_cast<unsigned long long>(result.checksum));
    std::printf("  model checksum:  %016llx -> %s\n",
                static_cast<unsigned long long>(golden),
                result.checksum == golden ? "VALID" : "MISMATCH");
    return result.checksum == golden ? 0 : 1;
}
