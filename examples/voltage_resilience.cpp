// Voltage resilience demo (the Fig. 9b experiment in miniature): run the
// reconfigurable OPE core while the supply collapses below the freeze
// point, observe the leakage-only plateau, then recover and finish.
//
//   $ ./examples/voltage_resilience

#include <cstdio>

#include "rap/rap.hpp"

int main() {
    using namespace rap;

    chip::ChipOptions options;
    options.stages = 18;
    options.depth = 18;
    options.core = chip::Core::Reconfigurable;
    options.sync = netlist::SyncTopology::DaisyChain;
    const chip::Evaluation chip_eval(options);

    constexpr std::uint64_t kItems = 800;

    // How long would the run take at a healthy 0.5V?
    const auto healthy = chip_eval.measure(0.5, kItems);
    std::printf("at 0.5V the run takes %.3f us\n", healthy.time_s * 1e6);

    // Now collapse the supply a third of the way in, hold below the
    // freeze voltage for 10x the healthy runtime, then restore it.
    tech::VoltageSchedule schedule;
    schedule.add_segment(healthy.time_s / 3, 0.50);
    schedule.add_segment(healthy.time_s * 10, 0.30);  // frozen
    schedule.add_segment(1.0, 0.50);                  // recovery
    const auto stats = chip_eval.measure_with_schedule(
        schedule, kItems, /*trace_bin_s=*/healthy.time_s / 10,
        /*max_time_s=*/1e9);

    std::printf("with the brown-out the same run takes %.3f us\n",
                stats.time_s * 1e6);
    std::printf("items completed: %llu/%llu — %s\n",
                static_cast<unsigned long long>(
                    stats.marks_at(chip_eval.model().out)),
                static_cast<unsigned long long>(kItems),
                stats.marks_at(chip_eval.model().out) == kItems
                    ? "no data lost, no re-run needed"
                    : "INCOMPLETE");

    std::printf("\npower trace (note the leakage-only plateau while "
                "frozen):\n");
    std::printf("  %-12s %-8s %s\n", "t [us]", "V", "P [uW]");
    for (std::size_t i = 0; i < stats.trace.size(); i += 12) {
        const auto& s = stats.trace[i];
        std::printf("  %-12.3f %-8.2f %.4f\n", s.t_start_s * 1e6,
                    s.voltage_v, s.power_w * 1e6);
    }
    std::printf(
        "\nBecause the pipeline is asynchronous there is no clock to\n"
        "violate: computation simply stalls below ~0.34V and resumes\n"
        "when the supply returns — 'it can be left at this voltage for\n"
        "hours with no progress being made' (Section IV).\n");
    return stats.marks_at(chip_eval.model().out) == kItems ? 0 : 1;
}
