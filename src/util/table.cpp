#include "util/table.hpp"

#include <cassert>
#include <fstream>
#include <ostream>

#include "util/strings.hpp"

namespace rap::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
    assert(cells.size() == headers_.size());
    rows_.push_back(std::move(cells));
}

std::string Table::num(double value, int precision) {
    return format("%.*f", precision, value);
}

std::string Table::to_ascii() const {
    std::vector<std::size_t> widths(headers_.size(), 0);
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        widths[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }
    auto render_row = [&](const std::vector<std::string>& row) {
        std::string line;
        for (std::size_t c = 0; c < row.size(); ++c) {
            line += row[c];
            line.append(widths[c] - row[c].size(), ' ');
            if (c + 1 < row.size()) line += "  ";
        }
        while (!line.empty() && line.back() == ' ') line.pop_back();
        line += '\n';
        return line;
    };
    std::string out = render_row(headers_);
    std::string rule;
    for (std::size_t c = 0; c < widths.size(); ++c) {
        rule.append(widths[c], '-');
        if (c + 1 < widths.size()) rule += "  ";
    }
    out += rule + '\n';
    for (const auto& row : rows_) out += render_row(row);
    return out;
}

namespace {

std::string csv_cell(const std::string& cell) {
    const bool needs_quotes =
        cell.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quotes) return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"') out += '"';
        out += c;
    }
    out += '"';
    return out;
}

}  // namespace

std::string Table::to_csv() const {
    std::string out;
    auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c) out += ',';
            out += csv_cell(row[c]);
        }
        out += '\n';
    };
    emit(headers_);
    for (const auto& row : rows_) emit(row);
    return out;
}

bool Table::write_csv(const std::string& path) const {
    std::ofstream os(path);
    if (!os) return false;
    os << to_csv();
    return static_cast<bool>(os);
}

std::ostream& operator<<(std::ostream& os, const Table& table) {
    return os << table.to_ascii();
}

}  // namespace rap::util
