#include "util/dot.hpp"

#include "util/strings.hpp"

namespace rap::util {

DotWriter::DotWriter(std::string_view graph_name, bool directed) {
    header_ = std::string(directed ? "digraph " : "graph ") +
              identifier(graph_name) + " {";
}

void DotWriter::add_node(std::string_view id,
                         const std::vector<std::string>& attrs) {
    std::string line = "  " + identifier(id);
    if (!attrs.empty()) line += " [" + join(attrs, ", ") + "]";
    line += ";";
    lines_.push_back(std::move(line));
}

void DotWriter::add_edge(std::string_view from, std::string_view to,
                         const std::vector<std::string>& attrs) {
    std::string line = "  " + identifier(from) + " -> " + identifier(to);
    if (!attrs.empty()) line += " [" + join(attrs, ", ") + "]";
    line += ";";
    lines_.push_back(std::move(line));
}

std::string DotWriter::quote(std::string_view value) {
    std::string out = "\"";
    for (char c : value) {
        if (c == '"' || c == '\\') out += '\\';
        out += c;
    }
    out += '"';
    return out;
}

std::string DotWriter::str() const {
    std::string out = header_ + "\n";
    for (const auto& line : lines_) out += line + "\n";
    out += "}\n";
    return out;
}

}  // namespace rap::util
