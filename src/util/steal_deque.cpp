#include "util/steal_deque.hpp"

#include <algorithm>
#include <bit>

namespace rap::util {

void StealDeque::reset_and_reserve(std::size_t tasks) {
    top_.store(0, std::memory_order_relaxed);
    bottom_.store(0, std::memory_order_relaxed);
    const std::size_t want =
        std::bit_ceil(std::max<std::size_t>(tasks, 64));
    if (want > capacity()) {
        buffer_ = std::make_unique<std::atomic<std::uint64_t>[]>(want);
        mask_ = want - 1;
    }
}

}  // namespace rap::util
