#include "util/rng.hpp"

namespace rap::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t v, int k) noexcept {
    return (v << k) | (v >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
    std::uint64_t x = seed;
    for (auto& lane : s_) lane = splitmix64(x);
    // A state of all zeros is the one invalid state for xoshiro; the
    // splitmix expansion cannot produce it for any seed, but guard anyway.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng::result_type Rng::operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
    // Lemire-style rejection-free-in-practice reduction with a retry loop
    // to remove modulo bias entirely.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        const std::uint64_t r = (*this)();
        if (r >= threshold) return r % bound;
    }
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) noexcept {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
}

std::uint64_t stream_seed(std::uint64_t master, std::uint64_t stream) noexcept {
    // Mix the stream tag through the master so that nearby (master,
    // stream) pairs land in well-separated splitmix sequences.
    std::uint64_t x = master ^ (stream * 0x9e3779b97f4a7c15ULL);
    (void)splitmix64(x);
    return splitmix64(x);
}

Rng Rng::split() noexcept {
    Rng child(0);
    for (auto& lane : child.s_) lane = (*this)();
    if ((child.s_[0] | child.s_[1] | child.s_[2] | child.s_[3]) == 0) {
        child.s_[0] = 1;
    }
    return child;
}

}  // namespace rap::util
