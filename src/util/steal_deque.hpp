#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace rap::util {

/// Chase-Lev work-stealing deque over 64-bit task words, specialised for
/// the parallel reachability engine's layer-synchronous shape: all tasks
/// of a batch are pushed by one thread while no worker runs (the engine's
/// serial barrier step), then the owner pops from the bottom while any
/// number of thieves steal from the top. Because nothing is pushed while
/// workers run, capacity is fixed per batch and the deque never grows
/// mid-flight — `reset_and_reserve` provisions it between batches.
///
/// The synchronisation is the classic Chase-Lev top/bottom protocol kept
/// on seq_cst operations (no standalone fences: ThreadSanitizer models
/// atomic operations precisely but not fence-based publication, and the
/// TSan CI job gates this code).
class StealDeque {
public:
    StealDeque() = default;

    bool empty() const noexcept {
        return top_.load(std::memory_order_seq_cst) >=
               bottom_.load(std::memory_order_seq_cst);
    }

    /// Serial (between batches): drops any leftovers and guarantees room
    /// for `tasks` pushes. Must not run concurrently with pop/steal.
    void reset_and_reserve(std::size_t tasks);

    /// Serial (between batches): appends a task at the bottom.
    void push(std::uint64_t task) noexcept {
        const std::int64_t b = bottom_.load(std::memory_order_relaxed);
        buffer_[static_cast<std::size_t>(b) & mask_].store(
            task, std::memory_order_relaxed);
        bottom_.store(b + 1, std::memory_order_release);
    }

    /// Owner-only: takes the most recently pushed remaining task.
    bool pop(std::uint64_t& out) noexcept {
        const std::int64_t b =
            bottom_.fetch_sub(1, std::memory_order_seq_cst) - 1;
        std::int64_t t = top_.load(std::memory_order_seq_cst);
        if (t > b) {  // already empty: undo the reservation
            bottom_.store(b + 1, std::memory_order_relaxed);
            return false;
        }
        out = buffer_[static_cast<std::size_t>(b) & mask_].load(
            std::memory_order_relaxed);
        if (t != b) return true;  // more than one task remained
        // Last task: race the thieves for it through top.
        const bool won = top_.compare_exchange_strong(
            t, t + 1, std::memory_order_seq_cst, std::memory_order_seq_cst);
        bottom_.store(b + 1, std::memory_order_relaxed);
        return won;
    }

    /// Any thread: takes the oldest remaining task. A false return means
    /// empty OR a lost race — callers sweep victims until every deque
    /// reports empty(), which is exact here because nothing pushes while
    /// workers run.
    bool steal(std::uint64_t& out) noexcept {
        std::int64_t t = top_.load(std::memory_order_seq_cst);
        const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
        if (t >= b) return false;
        out = buffer_[static_cast<std::size_t>(t) & mask_].load(
            std::memory_order_relaxed);
        return top_.compare_exchange_strong(t, t + 1,
                                            std::memory_order_seq_cst,
                                            std::memory_order_seq_cst);
    }

    std::size_t capacity() const noexcept { return mask_ ? mask_ + 1 : 0; }

private:
    std::size_t mask_ = 0;
    std::unique_ptr<std::atomic<std::uint64_t>[]> buffer_;
    /// Thieves advance top, the owner advances bottom; separate cache
    /// lines so steals do not bounce the owner's line.
    alignas(64) std::atomic<std::int64_t> top_{0};
    alignas(64) std::atomic<std::int64_t> bottom_{0};
};

}  // namespace rap::util
