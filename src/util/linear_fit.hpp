#pragma once

#include <cstddef>
#include <vector>

namespace rap::util {

/// Ordinary least-squares line fit, used by the depth-sweep experiment to
/// quantify the paper's "time and energy increase linearly with pipeline
/// length" claim (slope, intercept and R² of the fit).
struct LinearFit {
    double slope = 0.0;
    double intercept = 0.0;
    double r_squared = 0.0;
    std::size_t points = 0;
};

/// Fits y = slope*x + intercept. Requires xs.size() == ys.size() >= 2 and
/// at least two distinct x values; returns a zero fit otherwise.
LinearFit fit_line(const std::vector<double>& xs,
                   const std::vector<double>& ys);

}  // namespace rap::util
