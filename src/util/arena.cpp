#include "util/arena.hpp"

#include <algorithm>
#include <cstring>

namespace rap::util {

WordArena::WordArena(std::size_t record_words)
    : record_words_(std::max<std::size_t>(record_words, 1)),
      records_per_block_(
          std::max<std::size_t>(kTargetBlockWords / record_words_, 1)) {}

std::uint64_t* WordArena::grow_to(std::size_t index) {
    if (index == blocks_.size() * records_per_block_) {
        blocks_.push_back(std::make_unique<std::uint64_t[]>(
            records_per_block_ * record_words_));
    }
    return (*this)[index];
}

std::size_t WordArena::push_zero() {
    std::uint64_t* slot = grow_to(size_);
    std::memset(slot, 0, record_words_ * sizeof(std::uint64_t));
    return size_++;
}

std::size_t WordArena::push(const std::uint64_t* src) {
    std::uint64_t* slot = grow_to(size_);
    std::memcpy(slot, src, record_words_ * sizeof(std::uint64_t));
    return size_++;
}

}  // namespace rap::util
