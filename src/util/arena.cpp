#include "util/arena.hpp"

#include <algorithm>
#include <cstring>

namespace rap::util {

WordArena::WordArena(std::size_t record_words,
                     std::size_t target_block_words)
    : record_words_(std::max<std::size_t>(record_words, 1)),
      records_per_block_(
          std::max<std::size_t>(target_block_words / record_words_, 1)) {}

std::uint64_t* WordArena::grow_to(std::size_t index) {
    if (index == blocks_.size() * records_per_block_) {
        blocks_.push_back(std::make_unique<std::uint64_t[]>(
            records_per_block_ * record_words_));
    }
    return (*this)[index];
}

std::size_t WordArena::push_zero() {
    std::uint64_t* slot = grow_to(size_);
    std::memset(slot, 0, record_words_ * sizeof(std::uint64_t));
    return size_++;
}

std::size_t WordArena::push(const std::uint64_t* src) {
    std::uint64_t* slot = grow_to(size_);
    std::memcpy(slot, src, record_words_ * sizeof(std::uint64_t));
    return size_++;
}

void WordArena::skip_to(std::size_t index) {
    // A null-block prefix marked released: operator[] must never be asked
    // for a skipped record, exactly as after release_before(index).
    const std::size_t full_blocks = index / records_per_block_;
    blocks_.clear();
    blocks_.resize(full_blocks);
    released_blocks_ = full_blocks;
    size_ = full_blocks * records_per_block_;
    while (size_ < index) push_zero();
}

void WordArena::release_before(std::size_t index) noexcept {
    const std::size_t full_blocks =
        std::min(index / records_per_block_, blocks_.size());
    for (std::size_t b = released_blocks_; b < full_blocks; ++b) {
        blocks_[b].reset();
    }
    released_blocks_ = std::max(released_blocks_, full_blocks);
}

}  // namespace rap::util
