#include "util/strings.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace rap::util {

std::string format(const char* fmt, ...) {
    va_list args;
    va_start(args, fmt);
    va_list copy;
    va_copy(copy, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    std::string out;
    if (needed > 0) {
        out.resize(static_cast<std::size_t>(needed));
        std::vsnprintf(out.data(), out.size() + 1, fmt, args);
    }
    va_end(args);
    return out;
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
    std::string out;
    for (std::size_t i = 0; i < items.size(); ++i) {
        if (i) out.append(sep);
        out.append(items[i]);
    }
    return out;
}

std::vector<std::string> split(std::string_view text, char sep) {
    std::vector<std::string> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= text.size(); ++i) {
        if (i == text.size() || text[i] == sep) {
            out.emplace_back(text.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::string_view trim(std::string_view text) {
    std::size_t b = 0;
    std::size_t e = text.size();
    while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
    return text.substr(b, e - b);
}

bool starts_with(std::string_view text, std::string_view prefix) {
    return text.size() >= prefix.size() &&
           text.substr(0, prefix.size()) == prefix;
}

std::string identifier(std::string_view name) {
    std::string out;
    out.reserve(name.size());
    for (char c : name) {
        const bool ok = std::isalnum(static_cast<unsigned char>(c)) != 0;
        out.push_back(ok ? c : '_');
    }
    if (out.empty() || std::isdigit(static_cast<unsigned char>(out.front()))) {
        out.insert(out.begin(), 'n');
    }
    return out;
}

}  // namespace rap::util
