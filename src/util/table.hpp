#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace rap::util {

/// Row/column result collector with two render targets:
///  * aligned ASCII tables for human-readable bench output (the rows the
///    paper's tables/figures report), and
///  * CSV for plotting the regenerated figures externally.
class Table {
public:
    explicit Table(std::vector<std::string> headers);

    /// Appends a row; must have exactly as many cells as there are headers.
    void add_row(std::vector<std::string> cells);

    /// Convenience: formats doubles with the given precision.
    static std::string num(double value, int precision = 4);

    std::size_t rows() const noexcept { return rows_.size(); }
    const std::vector<std::string>& row(std::size_t i) const {
        return rows_[i];
    }
    const std::vector<std::string>& headers() const noexcept {
        return headers_;
    }

    /// Renders an aligned ASCII table with a header separator.
    std::string to_ascii() const;

    /// Renders RFC-4180-ish CSV (cells containing comma/quote/newline are
    /// quoted, quotes doubled).
    std::string to_csv() const;

    /// Writes the CSV rendering to a file; returns false on I/O failure.
    bool write_csv(const std::string& path) const;

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& os, const Table& table);

}  // namespace rap::util
