#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace rap::util {

/// Minimal Graphviz DOT emitter. The DFS and Petri-net layers render their
/// structure through this for documentation and debugging — the textual
/// counterpart of the Workcraft canvas.
class DotWriter {
public:
    explicit DotWriter(std::string_view graph_name, bool directed = true);

    /// Adds a node; attrs are raw `key=value` strings (value pre-quoted by
    /// the caller when needed via quote()).
    void add_node(std::string_view id, const std::vector<std::string>& attrs);

    void add_edge(std::string_view from, std::string_view to,
                  const std::vector<std::string>& attrs = {});

    /// Quotes and escapes an attribute value.
    static std::string quote(std::string_view value);

    std::string str() const;

private:
    std::string header_;
    std::vector<std::string> lines_;
};

}  // namespace rap::util
