#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace rap::util {

/// printf-style formatting into a std::string (used for report lines;
/// avoids pulling a full formatting library into the public headers).
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Joins items with a separator: join({"a","b"}, ", ") == "a, b".
std::string join(const std::vector<std::string>& items, std::string_view sep);

/// Splits on a single character, keeping empty fields.
std::vector<std::string> split(std::string_view text, char sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// True iff `text` starts with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// Sanitises an arbitrary model name into a Verilog/DOT-safe identifier:
/// alphanumerics kept, everything else mapped to '_', prefixed if needed.
std::string identifier(std::string_view name);

}  // namespace rap::util
