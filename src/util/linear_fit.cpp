#include "util/linear_fit.hpp"

#include <cmath>

namespace rap::util {

LinearFit fit_line(const std::vector<double>& xs,
                   const std::vector<double>& ys) {
    LinearFit fit;
    if (xs.size() != ys.size() || xs.size() < 2) return fit;
    const auto n = static_cast<double>(xs.size());
    double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        sx += xs[i];
        sy += ys[i];
        sxx += xs[i] * xs[i];
        sxy += xs[i] * ys[i];
        syy += ys[i] * ys[i];
    }
    const double denom = n * sxx - sx * sx;
    if (std::abs(denom) < 1e-12) return fit;
    fit.slope = (n * sxy - sx * sy) / denom;
    fit.intercept = (sy - fit.slope * sx) / n;
    fit.points = xs.size();
    const double ss_tot = syy - sy * sy / n;
    if (ss_tot < 1e-12) {
        fit.r_squared = 1.0;
        return fit;
    }
    double ss_res = 0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const double e = ys[i] - (fit.slope * xs[i] + fit.intercept);
        ss_res += e * e;
    }
    fit.r_squared = 1.0 - ss_res / ss_tot;
    return fit;
}

}  // namespace rap::util
