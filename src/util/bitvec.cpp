#include "util/bitvec.hpp"

#include <bit>

namespace rap::util {

BitVec::BitVec(std::size_t bits)
    : bits_(bits), words_((bits + kWordBits - 1) / kWordBits, 0) {}

bool BitVec::get(std::size_t i) const noexcept {
    return (words_[i / kWordBits] >> (i % kWordBits)) & 1u;
}

void BitVec::set(std::size_t i, bool value) noexcept {
    const std::uint64_t mask = std::uint64_t{1} << (i % kWordBits);
    if (value) {
        words_[i / kWordBits] |= mask;
    } else {
        words_[i / kWordBits] &= ~mask;
    }
}

void BitVec::flip(std::size_t i) noexcept {
    words_[i / kWordBits] ^= std::uint64_t{1} << (i % kWordBits);
}

std::size_t BitVec::count() const noexcept {
    std::size_t n = 0;
    for (auto w : words_) n += static_cast<std::size_t>(std::popcount(w));
    return n;
}

bool BitVec::none() const noexcept {
    for (auto w : words_) {
        if (w != 0) return false;
    }
    return true;
}

void BitVec::clear() noexcept {
    for (auto& w : words_) w = 0;
}

std::vector<std::size_t> BitVec::ones() const {
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < bits_; ++i) {
        if (get(i)) out.push_back(i);
    }
    return out;
}

std::size_t BitVec::hash() const noexcept {
    std::size_t h = 1469598103934665603ULL;
    for (auto w : words_) {
        h ^= static_cast<std::size_t>(w);
        h *= 1099511628211ULL;
    }
    h ^= bits_;
    h *= 1099511628211ULL;
    return h;
}

std::string BitVec::to_string() const {
    std::string s;
    s.reserve(bits_);
    for (std::size_t i = 0; i < bits_; ++i) s.push_back(get(i) ? '1' : '0');
    return s;
}

}  // namespace rap::util
