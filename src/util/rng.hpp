#pragma once

#include <cstdint>
#include <limits>

namespace rap::util {

/// Deterministic, fast pseudo-random generator (xoshiro256**).
///
/// Every stochastic component in the library (random token-game walks,
/// workload generators, Monte-Carlo property sweeps) draws from this
/// generator so that all experiments are reproducible from a single seed.
/// Satisfies the C++ UniformRandomBitGenerator requirements.
class Rng {
public:
    using result_type = std::uint64_t;

    /// Seeds the four 64-bit lanes from one seed via splitmix64, so that
    /// nearby seeds still give well-separated streams.
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept {
        return std::numeric_limits<result_type>::max();
    }

    /// Next raw 64-bit value.
    result_type operator()() noexcept;

    /// Uniform integer in [0, bound). bound must be > 0.
    std::uint64_t below(std::uint64_t bound) noexcept;

    /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
    std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept;

    /// Uniform double in [0, 1).
    double uniform() noexcept;

    /// Bernoulli draw with probability p of returning true.
    bool chance(double p) noexcept;

    /// Splits off an independent child stream (for parallel workloads).
    Rng split() noexcept;

private:
    std::uint64_t s_[4];
};

/// Derives the seed of a named sub-stream from a master seed — the
/// campaign -> run -> purpose fan-out of the Monte-Carlo harness. A pure
/// function of its arguments (two rounds of splitmix64 mixing), so any
/// worker can reconstruct any stream without shared RNG state and the
/// result never depends on scheduling order.
std::uint64_t stream_seed(std::uint64_t master, std::uint64_t stream) noexcept;

}  // namespace rap::util
