#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace rap::util {

/// Compact dynamically-sized bit vector used as the canonical encoding of
/// model states (Petri-net markings, DFS node states) inside reachability
/// sets. Provides hashing and total ordering so it can key hash maps.
class BitVec {
public:
    static constexpr std::size_t kWordBits = 64;

    /// Number of 64-bit payload words backing `bits` bits.
    static constexpr std::size_t words_for_bits(std::size_t bits) noexcept {
        return (bits + kWordBits - 1) / kWordBits;
    }

    BitVec() = default;
    explicit BitVec(std::size_t bits);

    std::size_t size() const noexcept { return bits_; }
    bool empty() const noexcept { return bits_ == 0; }

    // -- word-level access -------------------------------------------------
    // The compiled reachability core operates on markings a word at a time
    // (masked enable tests, memcpy into the interned store). Bits beyond
    // size() are zero and every writer must keep them zero: hashing and
    // equality read whole words.
    std::size_t word_count() const noexcept { return words_.size(); }
    std::uint64_t word(std::size_t w) const noexcept { return words_[w]; }
    std::uint64_t* word_data() noexcept { return words_.data(); }
    const std::uint64_t* word_data() const noexcept { return words_.data(); }

    bool get(std::size_t i) const noexcept;
    void set(std::size_t i, bool value) noexcept;
    void flip(std::size_t i) noexcept;

    /// Number of set bits.
    std::size_t count() const noexcept;

    /// True iff no bit is set.
    bool none() const noexcept;

    /// Resets all bits to zero, keeping the size.
    void clear() noexcept;

    /// Indices of all set bits, ascending.
    std::vector<std::size_t> ones() const;

    /// FNV-1a over the payload words; stable across runs.
    std::size_t hash() const noexcept;

    /// "0101…" rendering, index 0 first — handy in failure messages.
    std::string to_string() const;

    friend bool operator==(const BitVec& a, const BitVec& b) noexcept {
        return a.bits_ == b.bits_ && a.words_ == b.words_;
    }
    friend bool operator!=(const BitVec& a, const BitVec& b) noexcept {
        return !(a == b);
    }
    friend bool operator<(const BitVec& a, const BitVec& b) noexcept {
        if (a.bits_ != b.bits_) return a.bits_ < b.bits_;
        return a.words_ < b.words_;
    }

private:
    std::size_t bits_ = 0;
    std::vector<std::uint64_t> words_;
};

struct BitVecHash {
    std::size_t operator()(const BitVec& v) const noexcept { return v.hash(); }
};

}  // namespace rap::util
