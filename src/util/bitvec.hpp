#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace rap::util {

/// Compact dynamically-sized bit vector used as the canonical encoding of
/// model states (Petri-net markings, DFS node states) inside reachability
/// sets. Provides hashing and total ordering so it can key hash maps.
class BitVec {
public:
    BitVec() = default;
    explicit BitVec(std::size_t bits);

    std::size_t size() const noexcept { return bits_; }
    bool empty() const noexcept { return bits_ == 0; }

    bool get(std::size_t i) const noexcept;
    void set(std::size_t i, bool value) noexcept;
    void flip(std::size_t i) noexcept;

    /// Number of set bits.
    std::size_t count() const noexcept;

    /// True iff no bit is set.
    bool none() const noexcept;

    /// Resets all bits to zero, keeping the size.
    void clear() noexcept;

    /// Indices of all set bits, ascending.
    std::vector<std::size_t> ones() const;

    /// FNV-1a over the payload words; stable across runs.
    std::size_t hash() const noexcept;

    /// "0101…" rendering, index 0 first — handy in failure messages.
    std::string to_string() const;

    friend bool operator==(const BitVec& a, const BitVec& b) noexcept {
        return a.bits_ == b.bits_ && a.words_ == b.words_;
    }
    friend bool operator!=(const BitVec& a, const BitVec& b) noexcept {
        return !(a == b);
    }
    friend bool operator<(const BitVec& a, const BitVec& b) noexcept {
        if (a.bits_ != b.bits_) return a.bits_ < b.bits_;
        return a.words_ < b.words_;
    }

private:
    static constexpr std::size_t kWordBits = 64;
    std::size_t bits_ = 0;
    std::vector<std::uint64_t> words_;
};

struct BitVecHash {
    std::size_t operator()(const BitVec& v) const noexcept { return v.hash(); }
};

}  // namespace rap::util
