#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace rap::util {

/// Bump allocator for fixed-size records of 64-bit words. Records live in
/// chunked blocks, so the pointers it hands out stay stable while the
/// arena grows and growth never copies existing payload — the properties
/// the reachability engine's interned marking store depends on. There is
/// no per-record heap allocation: one block allocation amortises over
/// thousands of records.
class WordArena {
public:
    /// Every record is exactly `record_words` 64-bit words.
    explicit WordArena(std::size_t record_words);

    std::size_t record_words() const noexcept { return record_words_; }
    std::size_t size() const noexcept { return size_; }

    /// Appends a zero-filled record; returns its dense index.
    std::size_t push_zero();

    /// Appends a copy of `src[0 .. record_words)`; returns its index.
    std::size_t push(const std::uint64_t* src);

    std::uint64_t* operator[](std::size_t index) noexcept {
        return blocks_[index / records_per_block_].get() +
               (index % records_per_block_) * record_words_;
    }
    const std::uint64_t* operator[](std::size_t index) const noexcept {
        return blocks_[index / records_per_block_].get() +
               (index % records_per_block_) * record_words_;
    }

    /// Drops every record but keeps the blocks for reuse.
    void clear() noexcept { size_ = 0; }

private:
    std::uint64_t* grow_to(std::size_t index);

    static constexpr std::size_t kTargetBlockWords = std::size_t{1} << 16;

    std::size_t record_words_;
    std::size_t records_per_block_;
    std::size_t size_ = 0;
    std::vector<std::unique_ptr<std::uint64_t[]>> blocks_;
};

}  // namespace rap::util
