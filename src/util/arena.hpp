#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace rap::util {

/// Bump allocator for fixed-size records of 64-bit words. Records live in
/// chunked blocks, so the pointers it hands out stay stable while the
/// arena grows and growth never copies existing payload — the properties
/// the reachability engine's interned marking store depends on. There is
/// no per-record heap allocation: one block allocation amortises over
/// thousands of records.
class WordArena {
public:
    /// Every record is exactly `record_words` 64-bit words. Blocks hold
    /// ~`target_block_words` words each: the default amortises well for
    /// stores that grow monotonically; per-layer scratch arenas (the
    /// enabled-row cache) pass something small so a fleet of them does
    /// not pin half-empty blocks.
    explicit WordArena(std::size_t record_words,
                       std::size_t target_block_words = std::size_t{1}
                                                        << 16);

    std::size_t record_words() const noexcept { return record_words_; }
    std::size_t size() const noexcept { return size_; }

    /// Appends a zero-filled record; returns its dense index.
    std::size_t push_zero();

    /// Appends a copy of `src[0 .. record_words)`; returns its index.
    std::size_t push(const std::uint64_t* src);

    std::size_t records_per_block() const noexcept {
        return records_per_block_;
    }

    /// Heap bytes currently held by live blocks (released blocks do not
    /// count). The arena's contribution to an engine's memory_stats().
    std::size_t resident_bytes() const noexcept {
        return (blocks_.size() - released_blocks_) * records_per_block_ *
               record_words_ * sizeof(std::uint64_t);
    }

    /// Blocks ever allocated (released ones still count). Monotonic over
    /// an arena's life, so it serves as a cheap geometry signature: the
    /// resident footprint can only change when this (or a sibling
    /// container's capacity) does — the peak-memory sampling hook.
    std::size_t allocated_blocks() const noexcept { return blocks_.size(); }

    /// Fast-forwards an EMPTY arena so the next push lands at `index`,
    /// without materialising the skipped records: whole skipped blocks
    /// are left unallocated (recorded as already released), and only the
    /// partial block containing `index` is backed by real zeroed memory.
    /// The checkpoint-resume hook for frontier-only caches, where every
    /// record below the resume cursor was released before the checkpoint
    /// was taken and will never be read again. Precondition: size() == 0.
    void skip_to(std::size_t index);

    /// Frees every block whose records all have index < `index` — the
    /// frontier-only cache hook: once a BFS layer is fully expanded, its
    /// records are never read again and their blocks can go back to the
    /// allocator. Released records must not be accessed again; indices
    /// >= `index` (and future push results) stay valid.
    void release_before(std::size_t index) noexcept;

    std::uint64_t* operator[](std::size_t index) noexcept {
        return blocks_[index / records_per_block_].get() +
               (index % records_per_block_) * record_words_;
    }
    const std::uint64_t* operator[](std::size_t index) const noexcept {
        return blocks_[index / records_per_block_].get() +
               (index % records_per_block_) * record_words_;
    }

    /// Drops every record. Keeps the blocks for reuse — unless some were
    /// released, in which case the block list is discarded wholesale so
    /// the arena never hands out an index backed by a freed block.
    void clear() noexcept {
        size_ = 0;
        if (released_blocks_ != 0) {
            blocks_.clear();
            released_blocks_ = 0;
        }
    }

private:
    std::uint64_t* grow_to(std::size_t index);

    std::size_t record_words_;
    std::size_t records_per_block_;
    std::size_t size_ = 0;
    std::size_t released_blocks_ = 0;
    std::vector<std::unique_ptr<std::uint64_t[]>> blocks_;
};

}  // namespace rap::util
