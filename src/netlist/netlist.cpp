#include "netlist/netlist.hpp"

namespace rap::netlist {

Netlist::Netlist(const dfs::Graph& graph, Library library)
    : graph_(&graph), library_(library) {
    graph.ensure_valid();
    instances_.reserve(graph.node_count());
    for (const dfs::NodeId n : graph.nodes()) {
        instances_.push_back({n, library_.spec_for(graph, n)});
    }
}

NetlistStats Netlist::stats() const {
    NetlistStats s;
    for (const Instance& inst : instances_) {
        ++s.instances;
        s.total_gates += inst.spec.gate_count;
        switch (graph_->kind(inst.node)) {
            case dfs::NodeKind::Register: ++s.registers; break;
            case dfs::NodeKind::Control: ++s.control_registers; break;
            case dfs::NodeKind::Push: ++s.pushes; break;
            case dfs::NodeKind::Pop: ++s.pops; break;
            case dfs::NodeKind::Logic: ++s.function_blocks; break;
        }
    }
    s.area_um2 = s.total_gates * library_.options().area_per_gate_um2;
    return s;
}

asim::TimingMap Netlist::timing() const {
    asim::TimingMap map(graph_->node_count());
    for (const Instance& inst : instances_) {
        map[inst.node.value] = {library_.delay_of(inst.spec),
                                library_.energy_of(inst.spec)};
    }
    return map;
}

double Netlist::total_gates() const {
    double gates = 0;
    for (const Instance& inst : instances_) gates += inst.spec.gate_count;
    return gates;
}

}  // namespace rap::netlist
