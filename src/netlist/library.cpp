#include "netlist/library.hpp"

#include <cmath>

namespace rap::netlist {

std::string_view to_string(SyncTopology topology) {
    switch (topology) {
        case SyncTopology::DaisyChain: return "daisy-chain";
        case SyncTopology::Tree: return "tree";
    }
    return "?";
}

Library::Library() : options_(Options{}) {}

Library::Library(Options options) : options_(options) {}

int Library::sync_depth(int n) const {
    if (n <= 1) return 1;
    if (options_.sync == SyncTopology::DaisyChain) return n;
    return static_cast<int>(std::ceil(std::log2(static_cast<double>(n)))) + 1;
}

int Library::sync_gates(int n) const {
    // n-1 two-input C-elements in either topology (shape differs, count
    // does not).
    return n <= 1 ? 1 : n - 1;
}

ComponentSpec Library::spec_for(const dfs::Graph& graph,
                                dfs::NodeId node) const {
    const int w = options_.data_width;
    // Register-level fan-in/out determines the completion structure the
    // component needs to synchronise with its neighbours.
    const int fan_in =
        std::max<int>(1, static_cast<int>(graph.r_preset(node).size()));
    const int fan_out =
        std::max<int>(1, static_cast<int>(graph.r_postset(node).size()));
    const int join = sync_depth(fan_in);
    const int fork = sync_depth(fan_out);

    ComponentSpec spec;
    switch (graph.kind(node)) {
        case dfs::NodeKind::Register:
            // 2 C-elements per dual-rail bit + per-bit OR completion +
            // completion tree + the join/fork sync for its channels.
            spec.type = "ncld_register";
            spec.width = w;
            spec.gate_count = 3 * w + (w - 1) + sync_gates(fan_in) +
                              sync_gates(fan_out);
            spec.crit_path_gates = 2 +
                                   static_cast<int>(std::ceil(
                                       std::log2(static_cast<double>(w)))) +
                                   join + fork;
            spec.switched_gates = 2 * w + w / 2;
            break;
        case dfs::NodeKind::Control:
            // 1-bit dual-rail latch with completion.
            spec.type = "ncld_control";
            spec.width = 1;
            spec.gate_count = 8 + sync_gates(fan_in) + sync_gates(fan_out);
            spec.crit_path_gates = 2 + join + fork;
            spec.switched_gates = 2;
            break;
        case dfs::NodeKind::Push:
            // Register + per-bit guard (token destruction) + control latch.
            spec.type = "ncld_push";
            spec.width = w;
            spec.gate_count = 3 * w + (w - 1) + 2 * w + 6 +
                              sync_gates(fan_in) + sync_gates(fan_out);
            spec.crit_path_gates = 3 +
                                   static_cast<int>(std::ceil(
                                       std::log2(static_cast<double>(w)))) +
                                   join + fork;
            spec.switched_gates = 2 * w + w / 2 + 2;
            break;
        case dfs::NodeKind::Pop:
            // Register + empty-token generator + control latch.
            spec.type = "ncld_pop";
            spec.width = w;
            spec.gate_count = 3 * w + (w - 1) + w + 8 + sync_gates(fan_in) +
                              sync_gates(fan_out);
            spec.crit_path_gates = 3 +
                                   static_cast<int>(std::ceil(
                                       std::log2(static_cast<double>(w)))) +
                                   join + fork;
            spec.switched_gates = 2 * w + w / 2 + 2;
            break;
        case dfs::NodeKind::Logic: {
            // Dual-rail function block. Sized as the OPE datapath mix of
            // comparator + rank-increment (adder) logic: deeper than a
            // register, dominating the stage critical path.
            spec.type = "ncld_function";
            spec.width = w;
            const int inputs =
                std::max<int>(1, static_cast<int>(graph.preset(node).size()));
            spec.gate_count = 6 * w * inputs;
            spec.crit_path_gates =
                2 * static_cast<int>(std::ceil(
                        std::log2(static_cast<double>(w)))) +
                4 + sync_depth(inputs);
            spec.switched_gates = 3 * w * inputs;
            break;
        }
    }
    return spec;
}

}  // namespace rap::netlist
