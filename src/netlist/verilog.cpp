#include "netlist/verilog.hpp"

#include "util/strings.hpp"

namespace rap::netlist {
namespace {

const char* kPrimitives = R"(// ---------------------------------------------------------------------
// NCL threshold-gate primitives (hysteresis set/reset behaviour) and the
// Muller C-element used by completion structures. Null Convention Logic
// gates assert when their threshold of inputs is high and deassert only
// when all inputs return to NULL (RTZ 4-phase discipline) [Fant/Brandt].
// ---------------------------------------------------------------------
module th12 (input wire a, input wire b, output wire y);
  assign y = a | b;
endmodule

module th22 (input wire a, input wire b, output reg y);
  always @(a or b) begin
    if (a & b) y <= 1'b1;
    else if (!a & !b) y <= 1'b0;
  end
endmodule

module th33 (input wire a, input wire b, input wire c, output reg y);
  always @(a or b or c) begin
    if (a & b & c) y <= 1'b1;
    else if (!a & !b & !c) y <= 1'b0;
  end
endmodule

module c_element (input wire a, input wire b, output wire y);
  th22 u (.a(a), .b(b), .y(y));
endmodule

// Completion join over N acknowledge wires. TOPOLOGY 0 = balanced tree,
// 1 = daisy chain (the structure measured at +36% latency on silicon).
module ack_join #(parameter N = 2, parameter TOPOLOGY = 0)
                 (input wire [N-1:0] in, output wire out);
  generate
    if (N == 1) begin : g_wire
      assign out = in[0];
    end else begin : g_join
      wire [N-2:0] stage;
      genvar i;
      if (TOPOLOGY == 1) begin : g_daisy
        c_element c0 (.a(in[0]), .b(in[1]), .y(stage[0]));
        for (i = 2; i < N; i = i + 1) begin : g_chain
          c_element ci (.a(stage[i-2]), .b(in[i]), .y(stage[i-1]));
        end
      end else begin : g_tree
        for (i = 0; i < N-1; i = i + 1) begin : g_level
          wire a_in = (2*i   < N) ? in[2*i]   : stage[2*i   - N];
          wire b_in = (2*i+1 < N) ? in[2*i+1] : stage[2*i+1 - N];
          c_element ci (.a(a_in), .b(b_in), .y(stage[i]));
        end
      end
      assign out = stage[N-2];
    end
  endgenerate
endmodule

// ---------------------------------------------------------------------
// Dual-rail 4-phase pipeline components. A channel is 2*W data rails
// (rail pairs {d1,d0} per bit; all-NULL is the spacer) plus one ack.
// ---------------------------------------------------------------------
module ncld_register #(parameter W = 16, parameter N_IN = 1)
                      (input  wire [N_IN*2*W-1:0] in_d,
                       output wire [N_IN-1:0]     in_a,
                       output reg  [2*W-1:0]      out_d,
                       input  wire                out_a);
  // Latch a complete input wave when the consumer has acknowledged the
  // previous one; propagate NULL symmetrically (per-bit TH22 latches
  // with completion detection in the physical mapping).
  wire all_valid, all_null;
  genvar i;
  wire [N_IN*W-1:0] bit_valid;
  generate
    for (i = 0; i < N_IN*W; i = i + 1) begin : g_cd
      assign bit_valid[i] = in_d[2*i] | in_d[2*i+1];
    end
  endgenerate
  assign all_valid = &bit_valid;
  assign all_null  = ~|bit_valid;
  always @(*) begin
    if (all_valid & ~out_a) out_d <= in_d[2*W-1:0];
    else if (all_null & out_a) out_d <= {2*W{1'b0}};
  end
  assign in_a = {N_IN{|out_d}};
endmodule

module ncld_control #(parameter N_IN = 1)
                     (input  wire [N_IN*2-1:0] in_d,
                      output wire [N_IN-1:0]   in_a,
                      output reg  [1:0]        out_d,
                      input  wire              out_a);
  wire valid = |in_d;
  always @(*) begin
    if (valid & ~out_a) out_d <= in_d[1:0];
    else if (~valid & out_a) out_d <= 2'b00;
  end
  assign in_a = {N_IN{|out_d}};
endmodule

// Push register: a False configuration token consumes and destroys the
// incoming data wave (acknowledged upstream, never emitted downstream).
module ncld_push #(parameter W = 16, parameter N_IN = 1)
                  (input  wire [N_IN*2*W-1:0] in_d,
                   output wire [N_IN-1:0]     in_a,
                   input  wire [1:0]          cfg_d,
                   output wire                cfg_a,
                   output reg  [2*W-1:0]      out_d,
                   input  wire                out_a);
  wire cfg_true  = cfg_d[1];
  wire cfg_false = cfg_d[0];
  reg  consumed;
  always @(*) begin
    if (cfg_true & ~out_a) out_d <= in_d[2*W-1:0];
    else if (out_a) out_d <= {2*W{1'b0}};
    if (cfg_false) consumed <= |in_d;
    else consumed <= 1'b0;
  end
  assign in_a = {N_IN{(|out_d) | consumed}};
  assign cfg_a = (|out_d) | consumed;
endmodule

// Pop register: a False configuration token emits an 'empty' wave
// (all-rails-zero encoded as the reserved empty codeword) without
// consuming the data input.
module ncld_pop #(parameter W = 16, parameter N_IN = 1)
                 (input  wire [N_IN*2*W-1:0] in_d,
                  output wire [N_IN-1:0]     in_a,
                  input  wire [1:0]          cfg_d,
                  output wire                cfg_a,
                  output reg  [2*W-1:0]      out_d,
                  input  wire                out_a);
  wire cfg_true  = cfg_d[1];
  wire cfg_false = cfg_d[0];
  localparam [2*W-1:0] EMPTY = { {(2*W-2){1'b0}}, 2'b01 };
  always @(*) begin
    if (cfg_true & ~out_a) out_d <= in_d[2*W-1:0];
    else if (cfg_false & ~out_a) out_d <= EMPTY;
    else if (out_a) out_d <= {2*W{1'b0}};
  end
  assign in_a = {N_IN{cfg_true & (|out_d)}};
  assign cfg_a = |out_d;
endmodule

// Combinational dual-rail function block (comparator / rank-update
// datapath in the OPE mapping); strongly indicating, completion by
// construction.
module ncld_function #(parameter W = 16, parameter N_IN = 1)
                      (input  wire [N_IN*2*W-1:0] in_d,
                       output wire [2*W-1:0]      out_d);
  // Placeholder datapath: the physical mapping substitutes the stage
  // function; behaviourally we pass the first operand through.
  assign out_d = in_d[2*W-1:0];
endmodule
)";

std::string wire_name(const dfs::Graph& g, dfs::NodeId n) {
    return util::identifier(g.node_name(n));
}

}  // namespace

std::string to_verilog(const Netlist& netlist) {
    const dfs::Graph& g = netlist.graph();
    const Library& lib = netlist.library();
    const int w = lib.options().data_width;
    const int topology =
        lib.options().sync == SyncTopology::DaisyChain ? 1 : 0;

    std::string out;
    out += "// Generated by rap::netlist — DFS model '" + g.name() + "'\n";
    out += util::format(
        "// style: NCL-D dual-rail 4-phase, W=%d, completion: %s\n\n", w,
        std::string(to_string(lib.options().sync)).c_str());
    out += kPrimitives;

    // ---- top module -----------------------------------------------------
    std::vector<std::string> ports;
    for (const dfs::NodeId n : g.nodes()) {
        if (g.is_logic(n)) continue;
        if (g.preset(n).empty()) {
            ports.push_back("env_" + wire_name(g, n) + "_d");
            ports.push_back("env_" + wire_name(g, n) + "_a");
        }
        if (g.postset(n).empty()) {
            ports.push_back(wire_name(g, n) + "_out_d");
            ports.push_back(wire_name(g, n) + "_out_a");
        }
    }
    out += "module " + util::identifier(g.name()) + " (";
    out += util::join(ports, ", ");
    out += ");\n";

    auto width_of = [&](dfs::NodeId n) {
        return g.kind(n) == dfs::NodeKind::Control ? 2 : 2 * w;
    };

    // Port declarations.
    for (const dfs::NodeId n : g.nodes()) {
        if (g.is_logic(n)) continue;
        const std::string base = wire_name(g, n);
        if (g.preset(n).empty()) {
            out += util::format("  input  wire [%d:0] env_%s_d;\n",
                                width_of(n) - 1, base.c_str());
            out += "  output wire env_" + base + "_a;\n";
        }
        if (g.postset(n).empty()) {
            out += util::format("  output wire [%d:0] %s_out_d;\n",
                                width_of(n) - 1, base.c_str());
            out += "  input  wire " + base + "_out_a;\n";
        }
    }

    // Data wires per node, ack wires per edge.
    for (const dfs::NodeId n : g.nodes()) {
        out += util::format("  wire [%d:0] %s_d;\n", width_of(n) - 1,
                            wire_name(g, n).c_str());
        out += "  wire " + wire_name(g, n) + "_a;\n";
    }
    for (const dfs::NodeId n : g.nodes()) {
        for (const dfs::NodeId succ : g.postset(n)) {
            out += "  wire " + wire_name(g, n) + "_to_" +
                   wire_name(g, succ) + "_a;\n";
        }
    }
    out += "\n";

    // Instances.
    for (const Instance& inst : netlist.instances()) {
        const dfs::NodeId n = inst.node;
        const std::string base = wire_name(g, n);
        const auto& preds = g.preset(n);

        // Control (cfg) channel for push/pop: the control register in the
        // R-preset; data inputs are all other predecessors.
        std::vector<dfs::NodeId> data_preds;
        std::string cfg;
        for (const dfs::NodeId p : preds) {
            if ((g.kind(n) == dfs::NodeKind::Push ||
                 g.kind(n) == dfs::NodeKind::Pop) &&
                g.kind(p) == dfs::NodeKind::Control) {
                cfg = wire_name(g, p);
            } else {
                data_preds.push_back(p);
            }
        }

        std::vector<std::string> in_d, in_a;
        for (auto it = data_preds.rbegin(); it != data_preds.rend(); ++it) {
            in_d.push_back(wire_name(g, *it) + "_d");
            in_a.push_back(wire_name(g, *it) + "_to_" + base + "_a");
        }
        if (in_d.empty() && !g.is_logic(n)) {
            in_d.push_back("env_" + base + "_d");
            in_a.push_back("env_" + base + "_a");
        }

        const int n_in = static_cast<int>(in_d.size());
        out += util::format("  %s #(", inst.spec.type.c_str());
        if (g.kind(n) != dfs::NodeKind::Control) {
            out += util::format(".W(%d), ", w);
        }
        out += util::format(".N_IN(%d)) u_%s (\n", n_in, base.c_str());
        out += "    .in_d({" + util::join(in_d, ", ") + "}),\n";
        if (g.is_logic(n)) {
            out += "    .out_d(" + base + "_d));\n";
            continue;
        }
        out += "    .in_a({" + util::join(in_a, ", ") + "}),\n";
        if (!cfg.empty()) {
            out += "    .cfg_d(" + cfg + "_d),\n";
            out += "    .cfg_a(" + cfg + "_to_" + base + "_a),\n";
        }
        out += "    .out_d(" + base + "_d),\n";
        out += "    .out_a(" + base + "_a));\n";
    }
    out += "\n";

    // Completion through function blocks: a logic node's producers are
    // acknowledged by the completion of the logic node's own consumers
    // (strong indication propagates backwards through the datapath).
    for (const dfs::NodeId n : g.nodes()) {
        if (!g.is_logic(n)) continue;
        for (const dfs::NodeId p : g.preset(n)) {
            out += "  assign " + wire_name(g, p) + "_to_" + wire_name(g, n) +
                   "_a = " + wire_name(g, n) + "_a;\n";
        }
    }

    // Acknowledge joins (completion in the configured topology).
    for (const dfs::NodeId n : g.nodes()) {
        const std::string base = wire_name(g, n);
        const auto& succs = g.postset(n);
        if (succs.empty()) {
            if (!g.is_logic(n)) {
                out += "  assign " + base + "_out_d = " + base + "_d;\n";
                out += "  assign " + base + "_a = " + base + "_out_a;\n";
            }
            continue;
        }
        std::vector<std::string> acks;
        for (auto it = succs.rbegin(); it != succs.rend(); ++it) {
            acks.push_back(base + "_to_" + wire_name(g, *it) + "_a");
        }
        out += util::format(
            "  ack_join #(.N(%d), .TOPOLOGY(%d)) j_%s (.in({%s}), "
            ".out(%s_a));\n",
            static_cast<int>(acks.size()), topology, base.c_str(),
            util::join(acks, ", ").c_str(), base.c_str());
    }
    out += "endmodule\n";
    return out;
}

}  // namespace rap::netlist
