#pragma once

#include <string>

#include "netlist/netlist.hpp"

namespace rap::netlist {

/// Exports the mapped netlist as a Verilog file for the conventional
/// backend flow (Section II-D: "exported as a Verilog netlist to be used
/// in a conventional backend flow").
///
/// The output contains:
///  * NCL threshold-gate primitives (TH12/TH22/TH33) and a C-element,
///  * behavioural dual-rail 4-phase component modules for each library
///    type (register, control, push, pop, function block),
///  * completion ("ack") joins in the configured topology, and
///  * a structural top module instantiating one component per DFS node,
///    wired along the dataflow arcs; boundary registers (no producers /
///    no consumers) become top-level ports.
std::string to_verilog(const Netlist& netlist);

}  // namespace rap::netlist
