#pragma once

#include <string>
#include <vector>

#include "asim/timed_sim.hpp"
#include "dfs/model.hpp"
#include "netlist/library.hpp"

namespace rap::netlist {

/// One mapped component instance.
struct Instance {
    dfs::NodeId node;
    ComponentSpec spec;
};

/// Aggregate implementation statistics (the floorplan-level numbers of
/// Fig. 8b).
struct NetlistStats {
    int instances = 0;
    int total_gates = 0;
    double area_um2 = 0;
    int registers = 0;
    int control_registers = 0;
    int pushes = 0;
    int pops = 0;
    int function_blocks = 0;
};

/// Direct mapping of a DFS model onto the pre-built component library
/// (Section II-D: "directly mapping its nodes into pre-built components
/// and connecting them according to the dataflow arcs").
class Netlist {
public:
    Netlist(const dfs::Graph& graph, Library library);

    const dfs::Graph& graph() const noexcept { return *graph_; }
    const Library& library() const noexcept { return library_; }
    const std::vector<Instance>& instances() const noexcept {
        return instances_;
    }

    NetlistStats stats() const;

    /// Timing/energy annotation for the timed simulator: each node's
    /// per-phase delay and switching energy at nominal voltage.
    asim::TimingMap timing() const;

    /// Total equivalent gate count (for the leakage model).
    double total_gates() const;

private:
    const dfs::Graph* graph_;
    Library library_;
    std::vector<Instance> instances_;
};

}  // namespace rap::netlist
