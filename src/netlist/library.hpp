#pragma once

#include <string>

#include "dfs/model.hpp"

namespace rap::netlist {

/// Completion-detection topology for wide joins/forks (the chip's global
/// channels). The fabricated reconfigurable core used a daisy-chain
/// C-element structure — the source of its 36% performance overhead; the
/// static core (and the paper's proposed fix) uses a tree.
enum class SyncTopology { DaisyChain, Tree };

std::string_view to_string(SyncTopology topology);

/// Physical characterisation of one mapped component in the NCL-D
/// dual-rail, 4-phase style [16]. Numbers are in "equivalent 2-input
/// gates"; timing/energy derive from them via the library's technology
/// constants.
struct ComponentSpec {
    std::string type;          ///< Verilog module name
    int width = 1;             ///< datapath bits
    int gate_count = 0;        ///< total equivalent gates (area)
    int crit_path_gates = 0;   ///< gate levels per handshake phase
    int switched_gates = 0;    ///< average gates toggling per phase
};

/// The pre-built component library of Section III-A ("comparator, adder,
/// and a set of registers" in NCL-D style). spec_for() maps a DFS node to
/// its implementation, sizing completion logic by the node's register
/// fan-in/fan-out and the chosen sync topology.
class Library {
public:
    struct Options {
        int data_width = 16;        ///< dual-rail datapath width
        SyncTopology sync = SyncTopology::Tree;
        double gate_delay_s = 35e-12;    ///< 90nm 2-input gate @1.2V
        double energy_per_gate_j = 2e-15;///< per gate toggle @1.2V
        double area_per_gate_um2 = 5.0;  ///< 90nm std-cell average
    };

    Library();  // default options
    explicit Library(Options options);
    const Options& options() const noexcept { return options_; }

    /// Depth (gate levels) of a completion structure joining `n` inputs.
    int sync_depth(int n) const;

    /// Gate count of a completion structure joining `n` inputs.
    int sync_gates(int n) const;

    ComponentSpec spec_for(const dfs::Graph& graph, dfs::NodeId node) const;

    double delay_of(const ComponentSpec& spec) const {
        return spec.crit_path_gates * options_.gate_delay_s;
    }
    double energy_of(const ComponentSpec& spec) const {
        return spec.switched_gates * options_.energy_per_gate_j;
    }

private:
    Options options_;
};

}  // namespace rap::netlist
