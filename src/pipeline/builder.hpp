#pragma once

#include <string>
#include <vector>

#include "dfs/model.hpp"

namespace rap::pipeline {

/// A 3-register control loop — the minimum number of registers for a
/// token oscillation (Section III). The loop register `head` is the one
/// wired to the controlled push/pop nodes.
struct ControlRing {
    dfs::NodeId head, mid, tail;
};

/// Adds a control ring carrying one token of the given polarity (True =
/// stage included, False = stage bypassed), with `head` initially marked.
ControlRing add_control_ring(dfs::Graph& graph, const std::string& prefix,
                             dfs::TokenValue polarity);

/// Re-initialises a ring to carry a single token of the given polarity in
/// its head register (used by set_depth and by tests that seed buggy
/// initialisations).
void reset_ring(dfs::Graph& graph, const ControlRing& ring,
                dfs::TokenValue polarity);

/// Handles to one pipeline stage (Fig. 6b/6c).
struct Stage {
    bool reconfigurable = false;
    dfs::NodeId local_in;    ///< register (static) or push (reconfigurable)
    dfs::NodeId f;           ///< stage function on the local channel
    dfs::NodeId local_out;   ///< static register
    dfs::NodeId global_in;   ///< register (static) or push (reconfigurable)
    dfs::NodeId g;           ///< pairing function on the global channel
    dfs::NodeId global_out;  ///< register (static) or pop (reconfigurable)
    /// Control rings; absent for static stages. When the stage reuses the
    /// global ring for its local interface (the s2 optimisation of
    /// Fig. 7), local_ring == global_ring.
    std::vector<ControlRing> rings;
    ControlRing local_ring{};
    ControlRing global_ring{};
};

/// Per-stage build options.
struct StageOptions {
    bool reconfigurable = false;
    /// Initial configuration token for reconfigurable stages.
    bool active = true;
    /// Fig. 7 s2 optimisation: drive the local interface from the global
    /// control ring instead of a dedicated local ring. Only sound when
    /// the *previous* stage is always included (static).
    bool reuse_global_ring_for_local = false;
};

/// A generic N-stage pipeline with local and global channels (Fig. 6a):
/// stage-to-stage local channels plus a common input `in` broadcast to
/// every stage and an aggregated output `out`.
struct Pipeline {
    dfs::Graph graph;
    dfs::NodeId in;   ///< common input register
    dfs::NodeId agg;  ///< output aggregation logic
    dfs::NodeId out;  ///< aggregated output register
    std::vector<Stage> stages;

    /// Number of stages whose configuration token is currently True
    /// (static stages always count).
    int active_depth() const;
};

/// Builds the pipeline. `options[i]` describes stage i (0-based in code,
/// stage s{i+1} in names).
Pipeline build_pipeline(const std::string& name,
                        const std::vector<StageOptions>& options);

/// Reconfigures the pipeline to use the first `depth` stages: rings of
/// stages < depth get True tokens, the rest False. Throws
/// std::invalid_argument if `depth` exceeds the stage count (or is < 1)
/// or asks a static (always-on) stage to be bypassed — in either case
/// the whole request is validated *before* any ring is touched, so a
/// throw leaves the pipeline exactly as it was (no partially applied
/// configuration). This models writing the chip's `config` input between
/// runs — reconfiguration happens at the model's initialisation boundary.
void set_depth(Pipeline& pipeline, int depth);

}  // namespace rap::pipeline
