#include "pipeline/wagging.hpp"

namespace rap::pipeline {

using dfs::Graph;
using dfs::NodeId;
using dfs::TokenValue;

AlternatingRing add_alternating_ring(Graph& graph,
                                     const std::string& prefix) {
    AlternatingRing ring;
    for (int i = 0; i < 6; ++i) {
        // Tokens at positions 0 (True) and 3 (False): each is trailed by
        // two bubbles, the spacing a token needs to advance.
        const bool marked = (i == 0) || (i == 3);
        const TokenValue polarity =
            i == 0 ? TokenValue::True : TokenValue::False;
        ring.regs[i] = graph.add_control(
            prefix + "_c" + std::to_string(i + 1), marked, polarity);
    }
    for (int i = 0; i < 6; ++i) {
        graph.connect(ring.regs[i], ring.regs[(i + 1) % 6]);
    }
    return ring;
}

WaggingStage add_wagging_stage(Graph& graph, const std::string& prefix,
                               NodeId input) {
    WaggingStage w;
    w.distributor = add_alternating_ring(graph, prefix + "_dist");
    w.collector = add_alternating_ring(graph, prefix + "_coll");

    w.push_a = graph.add_push(prefix + "_push_a");
    w.push_b = graph.add_push(prefix + "_push_b");
    w.f_a = graph.add_logic(prefix + "_f_a");
    w.f_b = graph.add_logic(prefix + "_f_b");
    w.reg_a = graph.add_register(prefix + "_reg_a");
    w.reg_b = graph.add_register(prefix + "_reg_b");
    w.pop_a = graph.add_pop(prefix + "_pop_a");
    w.pop_b = graph.add_pop(prefix + "_pop_b");
    w.merge = graph.add_logic(prefix + "_merge");
    w.out = graph.add_register(prefix + "_out");

    // Distribution: both branches see every input token; the branch whose
    // effective control is False consumes-and-destroys its copy, so the
    // two function copies process alternating items.
    graph.connect(input, w.push_a);
    graph.connect(input, w.push_b);
    graph.connect(w.distributor.head(), w.push_a);
    graph.connect_inverted(w.distributor.head(), w.push_b);

    graph.connect(w.push_a, w.f_a);
    graph.connect(w.f_a, w.reg_a);
    graph.connect(w.push_b, w.f_b);
    graph.connect(w.f_b, w.reg_b);

    // Collection: the on-turn branch's pop forwards the real result; the
    // off-turn one emits the empty placeholder, and the merge joins them
    // into one output token per input token, in order.
    graph.connect(w.reg_a, w.pop_a);
    graph.connect(w.reg_b, w.pop_b);
    graph.connect(w.collector.head(), w.pop_a);
    graph.connect_inverted(w.collector.head(), w.pop_b);

    graph.connect(w.pop_a, w.merge);
    graph.connect(w.pop_b, w.merge);
    graph.connect(w.merge, w.out);
    return w;
}

}  // namespace rap::pipeline
