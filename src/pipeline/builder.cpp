#include "pipeline/builder.hpp"

#include <stdexcept>

namespace rap::pipeline {

using dfs::Graph;
using dfs::NodeId;
using dfs::TokenValue;

ControlRing add_control_ring(Graph& graph, const std::string& prefix,
                             TokenValue polarity) {
    ControlRing ring;
    ring.head = graph.add_control(prefix + "_c1", true, polarity);
    ring.mid = graph.add_control(prefix + "_c2", false, polarity);
    ring.tail = graph.add_control(prefix + "_c3", false, polarity);
    graph.connect(ring.head, ring.mid);
    graph.connect(ring.mid, ring.tail);
    graph.connect(ring.tail, ring.head);
    return ring;
}

void reset_ring(Graph& graph, const ControlRing& ring, TokenValue polarity) {
    graph.set_initial(ring.head, true, polarity);
    graph.set_initial(ring.mid, false, polarity);
    graph.set_initial(ring.tail, false, polarity);
}

int Pipeline::active_depth() const {
    int depth = 0;
    for (const auto& stage : stages) {
        if (!stage.reconfigurable) {
            ++depth;
            continue;
        }
        const auto& init = graph.initial(stage.global_ring.head);
        if (init.marked && init.token == TokenValue::True) {
            ++depth;
        } else {
            break;
        }
    }
    return depth;
}

Pipeline build_pipeline(const std::string& name,
                        const std::vector<StageOptions>& options) {
    if (options.empty()) {
        throw std::invalid_argument("pipeline needs at least one stage");
    }
    Pipeline p{Graph(name), {}, {}, {}, {}};
    Graph& g = p.graph;
    p.in = g.add_register("in");

    NodeId prev_local = p.in;
    for (std::size_t i = 0; i < options.size(); ++i) {
        const StageOptions& opt = options[i];
        const std::string s = "s" + std::to_string(i + 1);
        Stage stage;
        stage.reconfigurable = opt.reconfigurable;
        const TokenValue polarity =
            opt.active ? TokenValue::True : TokenValue::False;

        if (opt.reconfigurable) {
            stage.global_ring = add_control_ring(g, s + "_gctrl", polarity);
            stage.rings.push_back(stage.global_ring);
            if (opt.reuse_global_ring_for_local) {
                stage.local_ring = stage.global_ring;
            } else {
                stage.local_ring = add_control_ring(g, s + "_lctrl", polarity);
                stage.rings.push_back(stage.local_ring);
            }
            stage.local_in = g.add_push(s + "_local_in");
            stage.global_in = g.add_push(s + "_global_in");
            stage.global_out = g.add_pop(s + "_global_out");
            g.connect(stage.local_ring.head, stage.local_in);
            g.connect(stage.global_ring.head, stage.global_in);
            g.connect(stage.global_ring.head, stage.global_out);
        } else {
            stage.local_in = g.add_register(s + "_local_in");
            stage.global_in = g.add_register(s + "_global_in");
            stage.global_out = g.add_register(s + "_global_out");
        }
        stage.f = g.add_logic(s + "_f");
        stage.local_out = g.add_register(s + "_local_out");
        stage.g = g.add_logic(s + "_g");

        // Local channel: previous stage (or the common input) feeds the
        // stage function f, whose result is held in local_out.
        g.connect(prev_local, stage.local_in);
        g.connect(stage.local_in, stage.f);
        g.connect(stage.f, stage.local_out);

        // Global channel: the broadcast input pairs with local_out in g.
        g.connect(p.in, stage.global_in);
        g.connect(stage.local_out, stage.g);
        g.connect(stage.global_in, stage.g);
        g.connect(stage.g, stage.global_out);

        prev_local = stage.local_out;
        p.stages.push_back(stage);
    }

    // Output aggregation: one logic node joining every stage's global_out
    // into the common output register (bypassed stages contribute the
    // empty tokens their pops produce).
    p.agg = g.add_logic("agg");
    for (const Stage& stage : p.stages) {
        g.connect(stage.global_out, p.agg);
    }
    p.out = g.add_register("out");
    g.connect(p.agg, p.out);
    return p;
}

void set_depth(Pipeline& pipeline, int depth) {
    if (depth < 1 || depth > static_cast<int>(pipeline.stages.size())) {
        throw std::invalid_argument(
            "set_depth: depth " + std::to_string(depth) +
            " out of range [1, " + std::to_string(pipeline.stages.size()) +
            "]");
    }
    // Validate everything before touching the graph: rejecting the
    // request mid-loop used to leave the rings of earlier stages already
    // reset — a partially applied configuration whose caller-side
    // artifacts (flow::Design caches) were never invalidated. A throw
    // now guarantees the pipeline is exactly as it was.
    for (std::size_t i = 0; i < pipeline.stages.size(); ++i) {
        if (!pipeline.stages[i].reconfigurable &&
            static_cast<int>(i) >= depth) {
            throw std::invalid_argument(
                "set_depth: stage s" + std::to_string(i + 1) +
                " is static and cannot be bypassed");
        }
    }
    for (std::size_t i = 0; i < pipeline.stages.size(); ++i) {
        Stage& stage = pipeline.stages[i];
        if (!stage.reconfigurable) continue;
        const TokenValue polarity = static_cast<int>(i) < depth
                                        ? TokenValue::True
                                        : TokenValue::False;
        for (const ControlRing& ring : stage.rings) {
            reset_ring(pipeline.graph, ring, polarity);
        }
    }
}

}  // namespace rap::pipeline
