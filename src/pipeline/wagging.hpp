#pragma once

#include <string>

#include "pipeline/builder.hpp"

namespace rap::pipeline {

/// An alternating control ring: six control registers carrying one True
/// and one False token three positions apart, so the head register
/// presents alternating polarities to its consumers — the token-level
/// "phase generator" behind wagging.
struct AlternatingRing {
    dfs::NodeId regs[6];
    dfs::NodeId head() const { return regs[0]; }
};

AlternatingRing add_alternating_ring(dfs::Graph& graph,
                                     const std::string& prefix);

/// Handles to a 2-way wagging stage [Brej, ACSD'10; mentioned as an
/// advanced optimisation in Section II-D]. The slow function `f` is
/// duplicated; a distributor steers odd/even tokens into the two copies
/// (the off branch's push destroys its broadcast copy) and a collector
/// merges them back in order (the off branch's pop emits the empty
/// placeholder). Built entirely from DFS primitives plus inverting arcs.
struct WaggingStage {
    AlternatingRing distributor;
    AlternatingRing collector;
    dfs::NodeId push_a, push_b;  ///< branch entries
    dfs::NodeId f_a, f_b;        ///< the duplicated function
    dfs::NodeId reg_a, reg_b;    ///< branch result registers
    dfs::NodeId pop_a, pop_b;    ///< branch exits
    dfs::NodeId merge;           ///< merging logic
    dfs::NodeId out;             ///< merged output register
};

/// Appends a 2-way wagging stage consuming tokens from `input`.
WaggingStage add_wagging_stage(dfs::Graph& graph, const std::string& prefix,
                               dfs::NodeId input);

}  // namespace rap::pipeline
