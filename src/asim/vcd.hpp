#pragma once

#include <span>
#include <string>

#include "asim/timed_sim.hpp"
#include "dfs/model.hpp"

namespace rap::asim {

/// Renders a timed event log as a Value Change Dump (IEEE 1364 §18) for
/// waveform viewers such as GTKWave — the netlist-level counterpart of
/// Workcraft's interactive token animation. Signals:
///  * logic node `l`     -> wire `C_l`   (evaluation state)
///  * register `r`       -> wire `M_r`   (marking)
///  * dynamic register   -> additional wire `T_r` (token polarity while
///    marked; returns to 0 on unmarking)
///
/// `timescale_s` selects the dump's time unit (default 1 ps); event
/// timestamps are rounded to it.
std::string to_vcd(const dfs::Graph& graph,
                   std::span<const TimedEvent> events,
                   double timescale_s = 1e-12);

}  // namespace rap::asim
