#include "asim/timed_sim.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "util/rng.hpp"

namespace rap::asim {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
/// Sub-stream tag of the free-choice bias coin (see util::stream_seed);
/// the fault streams have their own tags inside asim/faults.cpp.
constexpr std::uint64_t kStreamBias = 0x62696173ULL;  // "bias"
}  // namespace

TimingMap uniform_timing(const dfs::Graph& graph, double delay_s,
                         double energy_j) {
    return TimingMap(graph.node_count(), NodeTiming{delay_s, energy_j});
}

TimedSimulator::TimedSimulator(const dfs::Dynamics& dynamics,
                               TimingMap timing, tech::VoltageModel model,
                               tech::VoltageSchedule schedule,
                               double leakage_gates)
    : dynamics_(&dynamics),
      timing_(std::move(timing)),
      model_(model),
      schedule_(std::move(schedule)),
      leakage_gates_(leakage_gates) {
    const dfs::Graph& graph = dynamics.graph();
    assert(timing_.size() == graph.node_count());

    // Dense event enumeration.
    node_event_begin_.resize(graph.node_count() + 1, 0);
    for (dfs::NodeId n : graph.nodes()) {
        node_event_begin_[n.value] =
            static_cast<std::uint32_t>(events_.size());
        for (const dfs::Event& e : dynamics.node_events(n)) {
            events_.push_back(e);
        }
    }
    node_event_begin_[graph.node_count()] =
        static_cast<std::uint32_t>(events_.size());

    // Affected-set: nodes whose event enabledness can change when `n`
    // changes state — n itself plus its direct and register-level
    // neighbourhood (all the sets the enabling equations quantify over).
    affected_.resize(graph.node_count());
    for (dfs::NodeId n : graph.nodes()) {
        std::unordered_set<std::uint32_t> set;
        set.insert(n.value);
        for (const auto& neighbours :
             {graph.preset(n), graph.postset(n), graph.r_preset(n),
              graph.r_postset(n)}) {
            for (dfs::NodeId m : neighbours) set.insert(m.value);
        }
        affected_[n.value].assign(set.begin(), set.end());
        std::sort(affected_[n.value].begin(), affected_[n.value].end());
    }
}

void TimedSimulator::set_seed(std::uint64_t seed) { seed_ = seed; }

void TimedSimulator::set_true_bias(double bias) { true_bias_ = bias; }

void TimedSimulator::set_faults(FaultSpec spec) { faults_ = spec; }

void TimedSimulator::set_stimulus(std::vector<dfs::Event> forced) {
    stimulus_ = std::move(forced);
}

void TimedSimulator::enable_power_trace(double bin_s) {
    trace_bin_s_ = bin_s;
}

void TimedSimulator::enable_event_trace(std::size_t max_events) {
    event_trace_cap_ = max_events;
}

TimedStats TimedSimulator::run(dfs::State& state, const RunLimits& limits) {
    const dfs::Graph& graph = dynamics_->graph();
    TimedStats stats;
    stats.marks.assign(graph.node_count(), 0);
    util::Rng bias_rng(util::stream_seed(seed_, kStreamBias));
    FaultRealization faults(faults_, seed_, graph.node_count());

    // enabled_since per event (kInf = disabled), plus a compact list of
    // candidate indices with lazy deletion so the arbitration scan only
    // touches currently-enabled events. work_scale holds the jitter
    // factor drawn when the event last became enabled.
    std::vector<double> enabled_since(events_.size(), kInf);
    std::vector<double> work_scale(events_.size(), 1.0);
    std::vector<char> in_list(events_.size(), 0);
    std::vector<std::uint32_t> candidates;
    double now = 0.0;

    auto refresh_node = [&](std::uint32_t node) {
        const bool is_stuck = faults.stuck(node);
        for (std::uint32_t i = node_event_begin_[node];
             i < node_event_begin_[node + 1]; ++i) {
            const bool enabled =
                !is_stuck && dynamics_->is_enabled(state, events_[i]);
            if (enabled && enabled_since[i] == kInf) {
                enabled_since[i] = now;
                work_scale[i] = faults.draw_work_scale();
                if (!in_list[i]) {
                    in_list[i] = 1;
                    candidates.push_back(i);
                }
            } else if (!enabled) {
                enabled_since[i] = kInf;  // inertial cancel
            }
        }
    };
    for (std::uint32_t n = 0; n < graph.node_count(); ++n) refresh_node(n);

    /// Nominal-speed work of event i as currently enabled (completion
    /// daisy-chain cost is read off the live state, jitter off the
    /// factor drawn at enabling).
    auto event_work = [&](std::uint32_t i) {
        const NodeTiming& t = timing_[events_[i].node.value];
        double work = t.delay_s;
        if (t.delay_per_true_input_s > 0) {
            int real_inputs = 0;
            for (const dfs::NodeId p : graph.preset(events_[i].node)) {
                if (!graph.is_logic(p) && state.marked_true(graph, p)) {
                    ++real_inputs;
                }
            }
            work += t.delay_per_true_input_s * real_inputs;
        }
        return work * work_scale[i];
    };

    /// Event index of a forced stimulus event (UINT32_MAX when the node
    /// has no such phase — a malformed stimulus).
    auto find_event = [&](const dfs::Event& e) -> std::uint32_t {
        for (std::uint32_t i = node_event_begin_[e.node.value];
             i < node_event_begin_[e.node.value + 1]; ++i) {
            if (events_[i].kind == e.kind) return i;
        }
        return UINT32_MAX;
    };

    // Power-trace accumulation.
    std::vector<double> bin_dynamic;  // dynamic energy per bin
    auto record_energy = [&](double t, double joules) {
        if (!trace_bin_s_) return;
        const auto bin = static_cast<std::size_t>(t / *trace_bin_s_);
        if (bin_dynamic.size() <= bin) bin_dynamic.resize(bin + 1, 0.0);
        bin_dynamic[bin] += joules;
    };

    std::size_t next_forced = 0;
    while (stats.events < limits.max_events) {
        if (limits.target_marks > 0 &&
            stats.marks[limits.observe.value] >= limits.target_marks) {
            break;
        }

        const bool forcing = next_forced < stimulus_.size();
        double best_time = kInf;
        std::uint32_t best = UINT32_MAX;
        if (forcing) {
            // Witness replay: the next stimulus event fires next, at the
            // time it would normally complete, regardless of races.
            const std::uint32_t i = find_event(stimulus_[next_forced]);
            if (i == UINT32_MAX || enabled_since[i] == kInf) {
                stats.stimulus_stalled = true;
                break;
            }
            best = i;
            best_time = schedule_.finish_time(model_, enabled_since[i],
                                              event_work(i));
            if (best_time == kInf) {
                stats.frozen = true;
                break;
            }
            if (best_time > limits.max_time_s) {
                now = limits.max_time_s;
                break;
            }
        } else {
            // Earliest completion among enabled events (compacting the
            // candidate list as we go).
            bool any_enabled = false;
            for (std::size_t c = 0; c < candidates.size();) {
                const std::uint32_t i = candidates[c];
                if (enabled_since[i] == kInf) {
                    in_list[i] = 0;
                    candidates[c] = candidates.back();
                    candidates.pop_back();
                    continue;
                }
                any_enabled = true;
                const double done = schedule_.finish_time(
                    model_, enabled_since[i], event_work(i));
                if (done < best_time) {
                    best_time = done;
                    best = i;
                }
                ++c;
            }
            if (!any_enabled) {
                stats.deadlocked = true;
                break;
            }
            if (best == UINT32_MAX || best_time > limits.max_time_s) {
                // All pending work is frozen (or exceeds the budget).
                stats.frozen = (best == UINT32_MAX);
                now = std::min(limits.max_time_s, now);
                if (!stats.frozen) now = limits.max_time_s;
                break;
            }
        }

        // Resolve the free-choice polarity race with the configured bias:
        // when both polarities of one control register finish together
        // conceptually, pick by coin flip instead of timing noise. A
        // forced stimulus scripts the polarity, so its race is not
        // re-drawn.
        dfs::Event event = events_[best];
        if (!forcing && (event.kind == dfs::EventKind::MarkTrue ||
                         event.kind == dfs::EventKind::MarkFalse)) {
            const bool is_free_choice =
                graph.kind(event.node) == dfs::NodeKind::Control &&
                graph.control_preset(event.node).empty();
            if (is_free_choice) {
                event.kind = bias_rng.chance(true_bias_)
                                 ? dfs::EventKind::MarkTrue
                                 : dfs::EventKind::MarkFalse;
            }
        }

        now = best_time;
        const double joules =
            timing_[event.node.value].energy_j *
            model_.energy_factor(schedule_.voltage_at(now));

        const FaultRealization::Action action =
            faults.on_fire(event.node.value);
        if (action == FaultRealization::Action::kDrop) {
            // Glitched handshake: the phase's time and energy are spent
            // but the state change is lost; the event restarts its timer
            // (and redraws its jitter) to retry.
            stats.dynamic_energy_j += joules;
            record_energy(now, joules);
            enabled_since[best] = now;
            work_scale[best] = faults.draw_work_scale();
            continue;
        }

        dynamics_->apply(state, event);
        ++stats.events;
        if (forcing) {
            ++next_forced;
            ++stats.stimulus_fired;
        }
        if (event_trace_cap_) {
            if (stats.events_log.size() < *event_trace_cap_) {
                stats.events_log.push_back({now, event});
            } else {
                stats.events_log_truncated = true;
            }
        }

        // A duplicated phase dissipates the spurious edge's energy too.
        const double spent =
            action == FaultRealization::Action::kDuplicate ? 2 * joules
                                                           : joules;
        stats.dynamic_energy_j += spent;
        record_energy(now, spent);

        if (event.kind == dfs::EventKind::Mark ||
            event.kind == dfs::EventKind::MarkTrue ||
            event.kind == dfs::EventKind::MarkFalse) {
            ++stats.marks[event.node.value];
        }

        // A kStuck action froze the node; refresh_node sees it via
        // faults.stuck() and retires its pending phases with the rest.
        for (const std::uint32_t node : affected_[event.node.value]) {
            refresh_node(node);
        }
    }

    stats.time_s = now;
    stats.faults = faults.counts();
    stats.leakage_energy_j =
        schedule_.leakage_energy(model_, leakage_gates_, 0.0, now);

    if (trace_bin_s_) {
        const double bin = *trace_bin_s_;
        const auto bins = static_cast<std::size_t>(
            std::ceil(now / bin));
        bin_dynamic.resize(std::max(bin_dynamic.size(), bins), 0.0);
        for (std::size_t i = 0; i < bin_dynamic.size(); ++i) {
            PowerSample sample;
            sample.t_start_s = static_cast<double>(i) * bin;
            sample.t_end_s = sample.t_start_s + bin;
            const double leak = schedule_.leakage_energy(
                model_, leakage_gates_, sample.t_start_s, sample.t_end_s);
            sample.power_w = (bin_dynamic[i] + leak) / bin;
            sample.voltage_v = schedule_.voltage_at(sample.t_start_s);
            stats.trace.push_back(sample);
        }
    }
    return stats;
}

}  // namespace rap::asim
