#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "asim/faults.hpp"
#include "dfs/dynamics.hpp"
#include "tech/voltage.hpp"

namespace rap::asim {

/// Per-node timing/energy annotation at the nominal voltage. Every event
/// of the node (each phase of the 4-phase handshake: data wave = mark /
/// evaluate, spacer wave = unmark / reset) takes `delay_s` of
/// nominal-speed work and dissipates `energy_j` scaled by the square-law
/// energy factor at the supply voltage in effect when the event fires.
struct NodeTiming {
    double delay_s = 1e-9;
    double energy_j = 1e-12;
    /// Extra work per *real* (Mt) token among the node's direct register
    /// preset at the moment the event is scheduled. This models
    /// daisy-chained completion structures whose traversal cost grows
    /// with the number of active participants (the chip's stage
    /// synchronisation, Section IV) — empty tokens from bypassed stages
    /// ripple through quickly.
    double delay_per_true_input_s = 0;
};

/// Timing annotation for a whole graph, indexed by NodeId::value.
using TimingMap = std::vector<NodeTiming>;

/// Uniform annotation helper (used by abstract performance analysis).
TimingMap uniform_timing(const dfs::Graph& graph, double delay_s,
                         double energy_j = 0.0);

/// Stop conditions for a timed run; the first one reached wins.
struct RunLimits {
    std::uint64_t max_events = UINT64_MAX;
    double max_time_s = 1e30;
    /// Stop once `observe` has latched this many tokens (0 = disabled).
    std::uint64_t target_marks = 0;
    dfs::NodeId observe{};
};

/// One bin of the sampled power trace (Fig. 9b's instrument).
struct PowerSample {
    double t_start_s = 0;
    double t_end_s = 0;
    double power_w = 0;    ///< average total power over the bin
    double voltage_v = 0;  ///< supply voltage at bin start
};

/// One fired event with its completion timestamp (for waveform export).
struct TimedEvent {
    double t_s = 0;
    dfs::Event event;
};

struct TimedStats {
    double time_s = 0;
    std::uint64_t events = 0;
    bool deadlocked = false;
    /// The supply froze (all pending work needs a voltage that never
    /// comes) — the Fig. 9b "stuck at 0.34V forever" condition.
    bool frozen = false;
    double dynamic_energy_j = 0;
    double leakage_energy_j = 0;
    std::vector<std::uint64_t> marks;  ///< tokens latched per node
    std::vector<PowerSample> trace;    ///< filled when tracing enabled
    std::vector<TimedEvent> events_log;  ///< filled when event tracing on
    /// The event trace hit its cap and later events were not recorded —
    /// set so consumers (VCD export, witness confirmation) can tell a
    /// complete log from a silently clipped one.
    bool events_log_truncated = false;
    /// Faults the run actually injected (all zero without set_faults).
    FaultCounts faults;
    /// Forced-order stimulus progress (see set_stimulus): events of the
    /// stimulus fired, and whether replay stalled on a never-enabled one.
    std::uint64_t stimulus_fired = 0;
    bool stimulus_stalled = false;

    double total_energy_j() const {
        return dynamic_energy_j + leakage_energy_j;
    }
    std::uint64_t marks_at(dfs::NodeId n) const { return marks.at(n.value); }
};

/// Event-driven timed token-game simulator — the stand-in for the
/// fabricated chip plus its measurement bench. Each enabled DFS event
/// completes after its node's nominal work integrated against the supply
/// schedule (alpha-power-law speed scaling, freeze below 0.34V); firing
/// dissipates the node's dynamic energy at the instantaneous voltage, and
/// leakage accrues continuously over the gate count.
///
/// Races are inertial: an event disabled before completion is cancelled
/// and restarts its timer on re-enabling.
class TimedSimulator {
public:
    TimedSimulator(const dfs::Dynamics& dynamics, TimingMap timing,
                   tech::VoltageModel model, tech::VoltageSchedule schedule,
                   double leakage_gates);

    /// Master seed of the run's every stochastic stream: free-choice
    /// bias arbitration and each fault-injection dice derive their own
    /// sub-stream from it via util::stream_seed, so one seed makes a
    /// whole run — biases, jitter, drops, stuck-ats — bit-reproducible.
    void set_seed(std::uint64_t seed);

    /// Biases free-choice control registers (no upstream controls): the
    /// probability that the True polarity wins the race. Implemented as a
    /// per-arrival random pick, modelling the data distribution at a
    /// `cond` predicate. The pick stream derives from set_seed.
    void set_true_bias(double bias);

    /// Arms fault injection: each run realises `spec` from the master
    /// seed (fresh dice per run). Pass a default-constructed spec to
    /// disarm. Supply glitches are NOT realised here — splice them into
    /// the voltage schedule with asim::splice_glitches.
    void set_faults(FaultSpec spec);

    /// Forces the next run to fire exactly this event order while the
    /// list lasts (witness replay: a verifier counterexample as a timed
    /// stimulus). Each forced event fires at the time it would normally
    /// complete; free-choice races obey the scripted polarity instead of
    /// the bias coin. If a forced event is not enabled when its turn
    /// comes the run stops with TimedStats::stimulus_stalled. After the
    /// list is exhausted the run continues under normal arbitration.
    void set_stimulus(std::vector<dfs::Event> forced);

    /// Enables power-trace sampling with the given bin width.
    void enable_power_trace(double bin_s);

    /// Records every fired event with its timestamp into
    /// TimedStats::events_log (feeds the VCD waveform exporter). Capped
    /// at `max_events` entries to bound memory; when the cap clips the
    /// log, TimedStats::events_log_truncated says so.
    void enable_event_trace(std::size_t max_events = 1'000'000);

    TimedStats run(dfs::State& state, const RunLimits& limits);

private:
    struct Pending {
        std::uint32_t event_index;
        double enabled_since;
    };

    const dfs::Dynamics* dynamics_;
    TimingMap timing_;
    tech::VoltageModel model_;
    tech::VoltageSchedule schedule_;
    double leakage_gates_;
    double true_bias_ = 0.5;
    std::uint64_t seed_ = 1;
    FaultSpec faults_;
    std::vector<dfs::Event> stimulus_;
    std::optional<double> trace_bin_s_;
    std::optional<std::size_t> event_trace_cap_;

    // Dense event table: all potential events of all nodes.
    std::vector<dfs::Event> events_;
    std::vector<std::uint32_t> node_event_begin_;  // per node, into events_
    std::vector<std::vector<std::uint32_t>> affected_;  // node -> node ids
};

}  // namespace rap::asim
