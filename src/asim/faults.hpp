#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tech/voltage.hpp"
#include "util/rng.hpp"

namespace rap::asim {

/// Supply-noise model: voltage droops arriving as a Poisson process,
/// spliced into a base tech::VoltageSchedule by splice_glitches(). Each
/// droop subtracts `droop_v` from the scheduled supply (clamped at 0V)
/// for a uniform duration in [min_duration_s, max_duration_s] — deep
/// droops push the supply below the freeze voltage and stall the
/// pipeline for their duration, the Fig. 9b brown-out in miniature.
struct GlitchSpec {
    double rate_hz = 0.0;  ///< mean droop arrivals per second (0 = off)
    double droop_v = 0.0;  ///< voltage subtracted while a droop is active
    double min_duration_s = 0.0;
    double max_duration_s = 0.0;

    bool active() const noexcept { return rate_hz > 0.0 && droop_v > 0.0; }
};

/// Fault-injection intensities for one timed-simulator run. All rates
/// are per *firing* Bernoulli probabilities drawn from streams derived
/// from the run's master seed (TimedSimulator::set_seed), so a run is
/// bit-reproducible from (model, schedule, spec, seed).
struct FaultSpec {
    /// Lognormal sigma of the multiplicative work-scale drawn each time
    /// an event becomes enabled — per-node delay variation around
    /// NodeTiming::delay_s (0 = deterministic nominal delays).
    double delay_sigma = 0.0;
    /// Transient handshake loss: the phase completes (time passes,
    /// energy dissipates) but the state change is discarded and the
    /// event restarts its timer — a glitched handshake that retries.
    double drop_rate = 0.0;
    /// Spurious extra pulse: the phase fires normally but dissipates
    /// twice the dynamic energy (the duplicate edge is absorbed by the
    /// completion logic and never corrupts state).
    double duplicate_rate = 0.0;
    /// Stuck-at: after this firing the node freezes forever — none of
    /// its phases ever enable again. Upstream/downstream handshakes
    /// starve, typically deadlocking the pipeline.
    double stuck_rate = 0.0;
    /// Supply droops spliced into the voltage schedule (realised by
    /// splice_glitches, not by the simulator loop).
    GlitchSpec glitch;

    bool any_event_faults() const noexcept {
        return drop_rate > 0.0 || duplicate_rate > 0.0 || stuck_rate > 0.0;
    }
    bool any() const noexcept {
        return delay_sigma > 0.0 || any_event_faults() || glitch.active();
    }

    /// The spec with every intensity multiplied by `factor` — the
    /// campaign's fault-rate axis (probabilities clamped to [0, 1]).
    FaultSpec scaled(double factor) const;
};

/// Tally of the faults one run actually injected.
struct FaultCounts {
    std::uint64_t jittered_enables = 0;  ///< work-scale draws applied
    std::uint64_t drops = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t stuck_nodes = 0;

    std::uint64_t injected() const noexcept {
        return drops + duplicates + stuck_nodes;
    }
};

/// One seeded realisation of a FaultSpec: the per-run dice. Owned by
/// TimedSimulator::run (one fresh realisation per run, derived from the
/// master seed), exposed here so tests can drive the streams directly.
/// Every draw comes from a purpose-named sub-stream of the master seed
/// (util::stream_seed), so realisations are independent of each other
/// and of the free-choice bias stream.
class FaultRealization {
public:
    FaultRealization(const FaultSpec& spec, std::uint64_t master_seed,
                     std::size_t node_count);

    /// Multiplicative work scale for an event that just became enabled
    /// (1.0 when jitter is off; no stream consumed in that case).
    double draw_work_scale();

    /// What happens to the firing that just completed on `node`.
    enum class Action { kNone, kDrop, kDuplicate, kStuck };
    Action on_fire(std::uint32_t node);

    /// Node froze via a kStuck action; its events must never re-enable.
    bool stuck(std::uint32_t node) const {
        return stuck_[node] != 0;
    }
    bool any_stuck() const noexcept { return counts_.stuck_nodes > 0; }

    const FaultCounts& counts() const noexcept { return counts_; }

private:
    FaultSpec spec_;
    util::Rng delay_rng_;
    util::Rng event_rng_;
    std::vector<char> stuck_;
    FaultCounts counts_;
};

/// A glitch-spliced schedule plus the realised droop windows (sorted,
/// non-overlapping) so callers can assert waveform visibility.
struct GlitchedSchedule {
    tech::VoltageSchedule schedule;
    struct Window {
        double start_s = 0.0;
        double end_s = 0.0;
    };
    std::vector<Window> windows;

    std::size_t glitches() const noexcept { return windows.size(); }
};

/// Splices seeded voltage droops into `base` over [0, horizon_s):
/// Poisson arrivals at spec.rate_hz, uniform durations, each window
/// subtracting spec.droop_v from whatever `base` schedules there
/// (clamped at 0V; base breakpoints inside a window are preserved).
/// Past the horizon the base schedule continues unmodified. The result
/// is a pure function of (base, spec, seed).
GlitchedSchedule splice_glitches(const tech::VoltageSchedule& base,
                                 const GlitchSpec& spec, std::uint64_t seed,
                                 double horizon_s);

}  // namespace rap::asim
