#include "asim/faults.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rap::asim {

namespace {

/// Stream tags: the fixed fan-out from a run's master seed. Values are
/// arbitrary but frozen — changing them changes every seeded campaign.
constexpr std::uint64_t kStreamDelay = 0x64656c6179ULL;    // "delay"
constexpr std::uint64_t kStreamEvents = 0x6576656e74ULL;   // "event"
constexpr std::uint64_t kStreamGlitch = 0x676c697463ULL;   // "glitc"

double clamp_probability(double p) {
    return std::clamp(p, 0.0, 1.0);
}

/// Standard normal via Box-Muller; consumes exactly two uniforms, so
/// the stream advance per draw is fixed.
double standard_normal(util::Rng& rng) {
    const double u1 = std::max(rng.uniform(), 1e-12);
    const double u2 = rng.uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * 3.14159265358979323846 * u2);
}

}  // namespace

FaultSpec FaultSpec::scaled(double factor) const {
    if (factor < 0.0) {
        throw std::invalid_argument(
            "FaultSpec::scaled: factor must be non-negative");
    }
    FaultSpec out = *this;
    out.delay_sigma = delay_sigma * factor;
    out.drop_rate = clamp_probability(drop_rate * factor);
    out.duplicate_rate = clamp_probability(duplicate_rate * factor);
    out.stuck_rate = clamp_probability(stuck_rate * factor);
    out.glitch.rate_hz = glitch.rate_hz * factor;
    return out;
}

FaultRealization::FaultRealization(const FaultSpec& spec,
                                   std::uint64_t master_seed,
                                   std::size_t node_count)
    : spec_(spec),
      delay_rng_(util::stream_seed(master_seed, kStreamDelay)),
      event_rng_(util::stream_seed(master_seed, kStreamEvents)),
      stuck_(node_count, 0) {}

double FaultRealization::draw_work_scale() {
    if (spec_.delay_sigma <= 0.0) return 1.0;
    ++counts_.jittered_enables;
    const double scale =
        std::exp(spec_.delay_sigma * standard_normal(delay_rng_));
    // Clamp the lognormal tails: a 20x outlier is a fault in its own
    // right, an unbounded one would just stall the run unmeasurably.
    return std::clamp(scale, 0.05, 20.0);
}

FaultRealization::Action FaultRealization::on_fire(std::uint32_t node) {
    if (!spec_.any_event_faults()) return Action::kNone;
    // One uniform per firing decides among the fault classes by stacked
    // thresholds, so enabling one class never shifts another's stream.
    const double u = event_rng_.uniform();
    double threshold = spec_.drop_rate;
    if (u < threshold) {
        ++counts_.drops;
        return Action::kDrop;
    }
    threshold += spec_.duplicate_rate;
    if (u < threshold) {
        ++counts_.duplicates;
        return Action::kDuplicate;
    }
    threshold += spec_.stuck_rate;
    if (u < threshold) {
        stuck_[node] = 1;
        ++counts_.stuck_nodes;
        return Action::kStuck;
    }
    return Action::kNone;
}

GlitchedSchedule splice_glitches(const tech::VoltageSchedule& base,
                                 const GlitchSpec& spec, std::uint64_t seed,
                                 double horizon_s) {
    GlitchedSchedule out;
    if (!spec.active() || horizon_s <= 0.0) {
        out.schedule = base;
        return out;
    }
    if (spec.max_duration_s < spec.min_duration_s ||
        spec.min_duration_s < 0.0) {
        throw std::invalid_argument(
            "GlitchSpec: need 0 <= min_duration_s <= max_duration_s");
    }

    // Poisson arrivals: exponential inter-arrival times at rate_hz.
    // Windows are merged when a droop arrives inside the previous one.
    util::Rng rng(util::stream_seed(seed, kStreamGlitch));
    double t = 0.0;
    for (;;) {
        const double u = std::max(rng.uniform(), 1e-12);
        t += -std::log(u) / spec.rate_hz;
        if (t >= horizon_s) break;
        const double duration =
            spec.min_duration_s +
            (spec.max_duration_s - spec.min_duration_s) * rng.uniform();
        const double end = std::min(t + duration, horizon_s);
        if (!out.windows.empty() && t <= out.windows.back().end_s) {
            out.windows.back().end_s =
                std::max(out.windows.back().end_s, end);
        } else {
            out.windows.push_back({t, end});
        }
        t = std::max(t, end);
    }

    if (out.windows.empty()) {
        out.schedule = base;
        return out;
    }

    // Rebuild the schedule from the union of base breakpoints and window
    // edges; inside a window the base voltage is drooped (clamped >= 0).
    std::vector<double> edges{0.0};
    for (const auto& [start, voltage] : base.breakpoints()) {
        (void)voltage;
        edges.push_back(start);
    }
    for (const auto& w : out.windows) {
        edges.push_back(w.start_s);
        edges.push_back(w.end_s);
    }
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

    const auto drooped = [&](double at) {
        double v = base.voltage_at(at);
        for (const auto& w : out.windows) {
            if (at >= w.start_s && at < w.end_s) {
                v = std::max(0.0, v - spec.droop_v);
                break;
            }
        }
        return v;
    };

    tech::VoltageSchedule spliced;
    for (std::size_t i = 0; i < edges.size(); ++i) {
        const double start = edges[i];
        const double end =
            (i + 1 < edges.size()) ? edges[i + 1] : start + 1.0;
        if (end <= start) continue;
        spliced.add_segment(end - start, drooped(start));
    }
    out.schedule = std::move(spliced);
    return out;
}

}  // namespace rap::asim
