#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "petri/compiled.hpp"
#include "petri/parallel.hpp"

namespace rap::petri {

/// Cross-pass marking-store retention — the substrate of incremental
/// re-verification. A ReuseStore owns a ConcurrentMarkingStore whose
/// records outlive any single exploration: interned markings, witness
/// links and enabled-set rows are kept across passes over nets that share
/// the same record dimensions, so re-verifying after a run-time
/// reconfiguration (the set_depth case: identical structure, different
/// initial marking) revisits mostly warm records instead of re-interning
/// the state space from scratch.
///
/// Record layout is fixed at mwords + 2 + twords words: the marking
/// payload, two witness meta words (canonical-min link + scratch depth
/// word, matching the parallel engine's canonical-CAS layout), and the
/// full enabled-set row. Rows are cached per *structure*: markings are
/// content-addressed bit patterns and stay valid across any
/// same-dimension net, but a row is a function of (marking, arcs) — when
/// `attach` sees a different structure digest it bumps the geometry
/// revision, lazily invalidating every cached row while keeping the
/// markings and the interning table intact.
///
/// Per-pass state is epoch-tagged instead of bulk-cleared: each pass
/// calls `begin_pass()` and treats a record as reached only when its
/// claim word carries the current epoch. Claim words pack
/// (epoch << 32 | depth-or-order), with two sentinels in the low half
/// for a claim mid-publication and for a claim that lost the state-budget
/// race; stale claims from earlier epochs are simply never current, so a
/// pass starts in O(1) no matter how many records are resident.
///
/// Concurrency contract: `attach`, `begin_pass` and `ensure_capacity`
/// are serial (between passes / between layers at the engine's barrier);
/// `claim` words are accessed atomically by workers mid-layer; row
/// validity is read and written only by the record's claim winner.
/// Passes themselves must be externally sequenced — one exploration at a
/// time per ReuseStore.
class ReuseStore {
public:
    /// Claim-word low-half sentinel: claim won, record mid-publication.
    static constexpr std::uint32_t kPendingDepth = UINT32_MAX;
    /// Claim-word low-half sentinel: claim won after the pass's state
    /// budget was exhausted — the pass truncates (every prober treats
    /// the state as unreachable-this-pass).
    static constexpr std::uint32_t kOverflowDepth = UINT32_MAX - 1;

    ReuseStore() = default;

    /// Binds the store to a compiled net before a pass. The first call
    /// fixes the record dimensions; later calls return false when the
    /// net's marking/enabled word counts differ (callers fall back to a
    /// scratch exploration — the store is never silently corrupted). A
    /// changed structure digest invalidates cached enabled rows only.
    /// Grows the per-worker arena set to `workers` when needed. Serial.
    bool attach(const CompiledNet& compiled, std::size_t workers);

    bool attached() const noexcept { return store_.has_value(); }
    ConcurrentMarkingStore& store() noexcept { return *store_; }
    const ConcurrentMarkingStore& store() const noexcept { return *store_; }

    /// Starts a pass: returns the fresh epoch whose claims are current.
    /// Serial.
    std::uint32_t begin_pass() noexcept { return ++epoch_; }
    std::uint32_t epoch() const noexcept { return epoch_; }

    /// Bumped by attach() on a structure change; rows whose revision
    /// lags are stale.
    std::uint32_t geometry_rev() const noexcept { return geometry_rev_; }
    /// Row invalidations seen so far (attach calls that changed the
    /// structure digest) — observability for tests and benches.
    std::size_t row_invalidations() const noexcept { return invalidations_; }

    /// Attach refusals so far (record-dimension mismatches): each one is
    /// a pass that silently went scratch despite reuse being requested.
    /// Surfaced through MultiResult::reuse_fallback and the flow layer's
    /// rap_reuse_fallbacks_total metric, so an incremental sweep that
    /// quietly stopped being incremental is visible, not inferred from
    /// wall-clock drift.
    std::size_t fallbacks() const noexcept { return fallbacks_; }

    /// The record's per-pass claim word: epoch << 32 | depth (parallel
    /// passes) or epoch << 32 | discovery-order index (sequential
    /// passes). Callers must have ensured capacity past `id`.
    std::atomic<std::uint64_t>& claim(std::uint32_t id) noexcept {
        return claims_[id];
    }

    /// Whether the record's cached enabled row matches the attached
    /// structure. Claim-winner-only mid-pass.
    bool row_valid(std::uint32_t id) const noexcept {
        return row_rev_[id] == geometry_rev_;
    }
    void set_row_valid(std::uint32_t id) noexcept {
        row_rev_[id] = geometry_rev_;
    }

    /// Grows the claim/row-revision arrays to cover ids below `n`.
    /// Serial (engines call it where they provision the store).
    void ensure_capacity(std::size_t n);

    std::size_t marking_words() const noexcept { return mwords_; }
    std::size_t enabled_words() const noexcept { return twords_; }

    /// Distinct markings resident across all passes so far — the
    /// incremental-sweep headline number (bench_incremental compares it
    /// against the deepest single run's state count).
    std::size_t interned_markings() const noexcept {
        return store_ ? store_->size() : 0;
    }

private:
    std::optional<ConcurrentMarkingStore> store_;
    std::uint64_t digest_ = 0;
    std::size_t mwords_ = 0;
    std::size_t twords_ = 0;
    std::uint32_t epoch_ = 0;         ///< claims at epoch 0 never match
    std::uint32_t geometry_rev_ = 1;  ///< row_rev_ entries start stale
    std::size_t invalidations_ = 0;
    std::size_t fallbacks_ = 0;  ///< attach refusals (scratch fallbacks)
    std::size_t claim_cap_ = 0;
    std::unique_ptr<std::atomic<std::uint64_t>[]> claims_;
    std::vector<std::uint32_t> row_rev_;
};

}  // namespace rap::petri
