#include "petri/persistence.hpp"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <unordered_map>

#include "util/strings.hpp"

namespace rap::petri {

std::string PersistenceViolation::to_string(const Net& net) const {
    return util::format(
        "firing '%s' disables '%s' at %s",
        net.transition_name(fired).c_str(),
        net.transition_name(disabled).c_str(),
        net.describe_marking(marking).c_str());
}

PersistenceResult check_persistence(const Net& net,
                                    PersistenceOptions options) {
    PersistenceResult result;

    struct Visit {
        std::int64_t parent;
        TransitionId via;
    };
    std::vector<Marking> order;
    std::vector<Visit> meta;
    std::unordered_map<Marking, std::size_t, util::BitVecHash> seen;
    std::deque<std::size_t> frontier;

    const Marking m0 = net.initial_marking();
    order.push_back(m0);
    meta.push_back({-1, TransitionId{}});
    seen.emplace(m0, 0);
    frontier.push_back(0);

    auto rebuild = [&](std::size_t index) {
        Trace trace;
        std::int64_t cursor = static_cast<std::int64_t>(index);
        while (cursor > 0) {
            const auto& v = meta[static_cast<std::size_t>(cursor)];
            trace.firings.push_back(v.via);
            cursor = v.parent;
        }
        std::reverse(trace.firings.begin(), trace.firings.end());
        return trace;
    };

    while (!frontier.empty()) {
        if (order.size() > options.max_states) {
            result.truncated = true;
            break;
        }
        const std::size_t index = frontier.front();
        frontier.pop_front();
        const Marking current = order[index];
        const auto enabled = net.enabled_transitions(current);

        for (TransitionId t : enabled) {
            Marking next = current;
            net.fire(next, t);

            // Persistence: every *other* transition enabled at `current`
            // must still be enabled at `next`.
            for (TransitionId u : enabled) {
                if (u == t) continue;
                if (net.is_enabled(next, u)) continue;
                if (options.exempt && options.exempt(net, t, u)) continue;
                result.violations.push_back(
                    {current, t, u, rebuild(index)});
                if (options.stop_at_first) {
                    result.states_explored = order.size();
                    return result;
                }
            }

            auto [it, inserted] = seen.emplace(next, order.size());
            if (!inserted) continue;
            order.push_back(std::move(next));
            meta.push_back({static_cast<std::int64_t>(index), t});
            frontier.push_back(order.size() - 1);
        }
    }

    result.states_explored = order.size();
    return result;
}

}  // namespace rap::petri
