#include "petri/persistence.hpp"

#include <utility>

namespace rap::petri {

PersistenceResult check_persistence(const Net& net,
                                    PersistenceOptions options) {
    ReachabilityOptions ropts;
    ropts.max_states = options.max_states;
    ReachabilityExplorer explorer(net, ropts);

    MultiQuery query;
    query.check_persistence = true;
    query.persistence_exempt = std::move(options.exempt);
    query.persistence_stop_at_first = options.stop_at_first;
    auto multi = explorer.run_query(query);

    PersistenceResult result;
    result.states_explored = multi.states_explored;
    result.truncated = multi.truncated;
    result.violations = std::move(multi.persistence_violations);
    return result;
}

}  // namespace rap::petri
