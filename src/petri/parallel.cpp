#include "petri/parallel.hpp"

#include <algorithm>
#include <barrier>
#include <bit>
#include <cstring>
#include <exception>
#include <mutex>
#include <thread>

namespace rap::petri {

namespace {

constexpr std::size_t kWordBits = util::BitVec::kWordBits;

void copy_words(std::uint64_t* dst, const std::uint64_t* src,
                std::size_t n) {
    if (n != 0) std::memcpy(dst, src, n * sizeof(std::uint64_t));
}

/// Deterministic total order on fixed-width word payloads — the
/// canonical tie-break the parallel engine uses wherever the sequential
/// engine would have used discovery order.
bool words_less(const std::uint64_t* a, const std::uint64_t* b,
                std::size_t n) noexcept {
    for (std::size_t i = 0; i < n; ++i) {
        if (a[i] != b[i]) return a[i] < b[i];
    }
    return false;
}

void spin_pause(unsigned round) noexcept {
    if (round < 64) {
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#endif
    } else {
        std::this_thread::yield();
    }
}

}  // namespace

// ------------------------------------------- ConcurrentMarkingStore --

ConcurrentMarkingStore::ConcurrentMarkingStore(std::size_t marking_words,
                                               std::size_t meta_words,
                                               std::size_t workers)
    : words_(std::max<std::size_t>(marking_words, 1)),
      record_words_(words_ + meta_words),
      table_size_(std::size_t{1} << 12),
      table_(std::make_unique<std::atomic<std::uint64_t>[]>(table_size_)) {
    for (std::size_t i = 0; i < table_size_; ++i) {
        table_[i].store(kEmptySlot, std::memory_order_relaxed);
    }
    arenas_.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
        arenas_.emplace_back(record_words_);
    }
}

std::size_t ConcurrentMarkingStore::size() const noexcept {
    // Between layers (the only place this is read) capacity losers have
    // repaired the counter, so it equals the number of owned records.
    return count_.load(std::memory_order_acquire);
}

std::uint64_t ConcurrentMarkingStore::hash(const std::uint64_t* words)
    const noexcept {
    return hash_marking_words(words, words_);
}

ConcurrentMarkingStore::InternResult ConcurrentMarkingStore::intern(
    const std::uint64_t* words, std::size_t worker,
    std::size_t capacity_limit) {
    const std::size_t mask = table_size_ - 1;
    const std::uint64_t h = hash(words);
    const std::uint64_t fragment = h & 0xFFFFFFFF00000000ULL;
    std::size_t slot = static_cast<std::size_t>(h) & mask;
    unsigned spins = 0;
    for (;;) {
        std::uint64_t entry = table_[slot].load(std::memory_order_acquire);
        if (entry == kEmptySlot) {
            if (!table_[slot].compare_exchange_weak(
                    entry, pack(h, kPendingId), std::memory_order_acq_rel,
                    std::memory_order_acquire)) {
                continue;  // lost the claim; re-examine the same slot
            }
            const std::uint32_t id =
                count_.fetch_add(1, std::memory_order_acq_rel);
            if (id >= capacity_limit) {
                // Repair the counter (so size() == capacity exactly) and
                // resolve the claim: the store is full for everyone.
                count_.fetch_sub(1, std::memory_order_acq_rel);
                table_[slot].store(pack(h, kCapacityId),
                                   std::memory_order_release);
                return {kNone, false};
            }
            util::WordArena& arena = arenas_[worker];
            std::uint64_t* record = arena[arena.push_zero()];
            copy_words(record, words, words_);
            records_[id] = record;
            hashes_[id] = h;
            table_[slot].store(pack(h, id), std::memory_order_release);
            return {id, true};
        }
        const auto entry_id = static_cast<std::uint32_t>(entry);
        if (entry_id == kCapacityId) return {kNone, false};
        if ((entry & 0xFFFFFFFF00000000ULL) == fragment) {
            if (entry_id == kPendingId) {
                // Same fragment, record mid-publication: it may be our
                // marking, so wait for the claimant to resolve the slot.
                spin_pause(spins++);
                continue;
            }
            if (std::memcmp(records_[entry_id], words,
                            words_ * sizeof(std::uint64_t)) == 0) {
                return {entry_id, false};
            }
        }
        slot = (slot + 1) & mask;
    }
}

std::uint32_t ConcurrentMarkingStore::find(
    const std::uint64_t* words) const noexcept {
    const std::size_t mask = table_size_ - 1;
    const std::uint64_t h = hash(words);
    const std::uint64_t fragment = h & 0xFFFFFFFF00000000ULL;
    std::size_t slot = static_cast<std::size_t>(h) & mask;
    for (;;) {
        const std::uint64_t entry =
            table_[slot].load(std::memory_order_acquire);
        if (entry == kEmptySlot) return kNone;
        const auto entry_id = static_cast<std::uint32_t>(entry);
        // Capacity tombstones sit mid-probe-chain; records inserted
        // before the cap was hit can live beyond them, so skip past.
        if (entry_id != kCapacityId && entry_id != kPendingId &&
            (entry & 0xFFFFFFFF00000000ULL) == fragment &&
            std::memcmp(records_[entry_id], words,
                        words_ * sizeof(std::uint64_t)) == 0) {
            return entry_id;
        }
        slot = (slot + 1) & mask;
    }
}

void ConcurrentMarkingStore::reserve(std::size_t needed) {
    if (records_.size() < needed) {
        records_.resize(needed, nullptr);
        hashes_.resize(needed, 0);
    }
    std::size_t want = table_size_;
    while (needed * 10 >= want * 7) want *= 2;
    if (want == table_size_) return;
    auto table = std::make_unique<std::atomic<std::uint64_t>[]>(want);
    for (std::size_t i = 0; i < want; ++i) {
        table[i].store(kEmptySlot, std::memory_order_relaxed);
    }
    const std::size_t mask = want - 1;
    const std::size_t count = count_.load(std::memory_order_acquire);
    for (std::uint32_t id = 0; id < count; ++id) {
        std::size_t slot = static_cast<std::size_t>(hashes_[id]) & mask;
        while (table[slot].load(std::memory_order_relaxed) != kEmptySlot) {
            slot = (slot + 1) & mask;
        }
        table[slot].store(pack(hashes_[id], id), std::memory_order_relaxed);
    }
    table_ = std::move(table);
    table_size_ = want;
}

// -------------------------------------- ParallelReachabilityExplorer --

std::size_t ParallelReachabilityExplorer::resolve_threads(
    std::size_t requested) noexcept {
    if (requested != 0) return std::max<std::size_t>(requested, 1);
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

ParallelReachabilityExplorer::ParallelReachabilityExplorer(
    const Net& net, ReachabilityOptions options)
    : net_(net),
      options_(options),
      owned_(std::in_place, net),
      compiled_(&*owned_),
      threads_(resolve_threads(options.threads)) {}

ParallelReachabilityExplorer::ParallelReachabilityExplorer(
    const CompiledNet& compiled, ReachabilityOptions options)
    : net_(compiled.net()),
      options_(options),
      compiled_(&compiled),
      threads_(resolve_threads(options.threads)) {}

namespace {

/// One exploration pass: all shared state of the layer-synchronous BFS.
/// Workers only write their own WorkerCtx mid-layer; everything else
/// mutates in the barrier's serial completion step or before/after the
/// worker phase.
class ParallelPass {
public:
    ParallelPass(const Net& net, const CompiledNet& compiled,
                 const ReachabilityOptions& options, const MultiQuery& query,
                 std::size_t workers)
        : net_(net),
          compiled_(compiled),
          query_(query),
          cap_(std::max<std::size_t>(options.max_states, 1)),
          mwords_(compiled.marking_words()),
          twords_(compiled.enabled_words()),
          workers_(workers),
          store_(mwords_, twords_, workers),
          resolved_(query.goals.size(), 0),
          witness_id_(query.goals.size(), ConcurrentMarkingStore::kNone),
          ctx_(workers) {
        for (WorkerCtx& ctx : ctx_) {
            ctx.best.assign(query.goals.size(),
                            ConcurrentMarkingStore::kNone);
            ctx.child.assign(std::max<std::size_t>(mwords_, 1), 0);
            ctx.scratch = Marking(net.place_count());
        }
        unresolved_ = query.goals.size();
        can_early_stop_ = options.stop_at_first_match &&
                          !query.collect_deadlocks &&
                          !query.check_persistence && !query.goals.empty();
    }

    MultiResult run();

private:
    struct LocalViolation {
        std::uint32_t state;  ///< id of the marking the pair conflicts at
        std::uint32_t depth;  ///< its BFS depth (trace length)
        TransitionId fired;
        TransitionId disabled;
    };

    /// Per-worker mutable state; cache-line aligned so neighbouring
    /// workers' per-edge counter updates do not false-share.
    struct alignas(64) WorkerCtx {
        std::vector<std::uint32_t> out;  ///< next-layer discoveries
        std::vector<std::uint32_t> best;  ///< per-goal best hit this layer
        std::vector<std::uint32_t> deadlocks;
        std::vector<LocalViolation> violations;
        std::vector<std::uint64_t> child;  ///< successor marking scratch
        Marking scratch;                   ///< predicate evaluation view
        std::size_t edges = 0;
        std::size_t out_edges = 0;  ///< enabled-bit sum of discoveries
    };

    const std::uint64_t* marking_of(std::uint32_t id) const {
        return store_[id];
    }
    const std::uint64_t* enabled_of(std::uint32_t id) const {
        return store_[id] + store_.meta_offset();
    }

    Marking materialize(std::uint32_t id) const {
        Marking m(net_.place_count());
        copy_words(m.word_data(), marking_of(id), m.word_count());
        return m;
    }

    std::size_t enabled_popcount(const std::uint64_t* enabled) const {
        std::size_t n = 0;
        for (std::size_t w = 0; w < twords_; ++w) {
            n += static_cast<std::size_t>(std::popcount(enabled[w]));
        }
        return n;
    }

    bool violation_less(const LocalViolation& a,
                        const LocalViolation& b) const {
        if (a.depth != b.depth) return a.depth < b.depth;
        const std::uint64_t* ma = marking_of(a.state);
        const std::uint64_t* mb = marking_of(b.state);
        if (std::memcmp(ma, mb, mwords_ * sizeof(std::uint64_t)) != 0) {
            return words_less(ma, mb, mwords_);
        }
        if (a.fired != b.fired) return a.fired < b.fired;
        return a.disabled < b.disabled;
    }

    /// Evaluates deadlock collection and pending goals on a freshly
    /// published state — the parallel mirror of the sequential visit().
    void visit(std::uint32_t id, WorkerCtx& ctx) {
        const std::uint64_t* enabled = enabled_of(id);
        bool dead = true;
        for (std::size_t w = 0; w < twords_; ++w) {
            if (enabled[w] != 0) {
                dead = false;
                break;
            }
        }
        if (dead && query_.collect_deadlocks) ctx.deadlocks.push_back(id);
        if (unresolved_ == 0) return;
        bool scratch_ready = false;
        for (std::size_t g = 0; g < query_.goals.size(); ++g) {
            if (resolved_[g]) continue;
            const Predicate& goal = *query_.goals[g];
            bool match = false;
            if (goal.kind() == Predicate::Kind::Deadlock) {
                match = dead;
            } else {
                if (!scratch_ready) {
                    copy_words(ctx.scratch.word_data(), marking_of(id),
                               ctx.scratch.word_count());
                    scratch_ready = true;
                }
                match = goal(net_, ctx.scratch);
            }
            if (!match) continue;
            // Keep the canonical (lexicographically smallest) hit of the
            // layer so witnesses do not depend on worker scheduling.
            if (ctx.best[g] == ConcurrentMarkingStore::kNone ||
                words_less(marking_of(id), marking_of(ctx.best[g]),
                           mwords_)) {
                ctx.best[g] = id;
            }
        }
    }

    void check_persistence_edges(std::uint32_t head, TransitionId fired,
                                 const std::uint64_t* head_enabled,
                                 WorkerCtx& ctx) {
        for (std::uint32_t u : compiled_.affected(fired)) {
            if (u == fired.value) continue;
            if (((head_enabled[u / kWordBits] >> (u % kWordBits)) & 1) ==
                0) {
                continue;  // u was not enabled before `fired` fired
            }
            const TransitionId ut{u};
            if (compiled_.is_enabled(ctx.child.data(), ut)) continue;
            if (query_.persistence_exempt &&
                query_.persistence_exempt(net_, fired, ut)) {
                continue;
            }
            ctx.violations.push_back(
                {head, static_cast<std::uint32_t>(depth_), fired, ut});
        }
        // Bounded collection: each worker only ever needs its own
        // canonically-smallest K (min-K of a union is the min-K of the
        // parts' min-Ks, whatever the edge partition was).
        const std::size_t max = query_.persistence_max_violations;
        if (max != SIZE_MAX &&
            ctx.violations.size() > std::max<std::size_t>(2 * max, 64)) {
            std::sort(ctx.violations.begin(), ctx.violations.end(),
                      [this](const LocalViolation& a,
                             const LocalViolation& b) {
                          return violation_less(a, b);
                      });
            ctx.violations.resize(max);
        }
    }

    void expand(std::uint32_t head, std::size_t w, WorkerCtx& ctx) {
        const std::uint64_t* marking = marking_of(head);
        const std::uint64_t* enabled = enabled_of(head);
        for (std::size_t word = 0; word < twords_; ++word) {
            std::uint64_t bits = enabled[word];
            while (bits != 0) {
                if (abort_now_.load(std::memory_order_relaxed)) return;
                const TransitionId t{static_cast<std::uint32_t>(
                    word * kWordBits +
                    static_cast<std::size_t>(std::countr_zero(bits)))};
                bits &= bits - 1;

                ++ctx.edges;
                copy_words(ctx.child.data(), marking, mwords_);
                compiled_.fire(ctx.child.data(), t);

                if (query_.check_persistence) {
                    check_persistence_edges(head, t, enabled, ctx);
                }

                const auto interned =
                    store_.intern(ctx.child.data(), w, cap_);
                if (interned.id == ConcurrentMarkingStore::kNone) {
                    truncated_.store(true, std::memory_order_relaxed);
                    abort_now_.store(true, std::memory_order_release);
                    return;
                }
                if (!interned.inserted) continue;

                std::uint64_t* record = store_.record_mut(interned.id);
                std::uint64_t* child_enabled =
                    record + store_.meta_offset();
                copy_words(child_enabled, enabled, twords_);
                compiled_.update_enabled(ctx.child.data(), t,
                                         child_enabled);
                ctx.out_edges += enabled_popcount(child_enabled);
                visit(interned.id, ctx);
                ctx.out.push_back(interned.id);
            }
        }
    }

    void process_layer(std::size_t w) {
        WorkerCtx& ctx = ctx_[w];
        for (;;) {
            if (abort_now_.load(std::memory_order_relaxed)) return;
            const std::size_t begin =
                cursor_.fetch_add(chunk_, std::memory_order_relaxed);
            if (begin >= frontier_.size()) return;
            const std::size_t end =
                std::min(begin + chunk_, frontier_.size());
            for (std::size_t i = begin; i < end; ++i) {
                expand(frontier_[i], w, ctx);
            }
        }
    }

    void process_layer_guarded(std::size_t w) noexcept {
        try {
            process_layer(w);
        } catch (...) {
            {
                const std::lock_guard<std::mutex> lock(error_mu_);
                if (!error_) error_ = std::current_exception();
            }
            abort_now_.store(true, std::memory_order_release);
        }
    }

    /// Serial between-layers step, run by the barrier's completion while
    /// every worker is parked: stitches the next frontier, provisions the
    /// store, settles this layer's goal hits, and decides whether the
    /// pass is done.
    void layer_done() noexcept {
        layers_.push_back(std::move(frontier_));
        frontier_ = std::vector<std::uint32_t>();
        std::size_t out_edges = 0;
        std::size_t violations = 0;
        for (WorkerCtx& ctx : ctx_) {
            frontier_.insert(frontier_.end(), ctx.out.begin(),
                             ctx.out.end());
            ctx.out.clear();
            out_edges += ctx.out_edges;
            ctx.out_edges = 0;
            violations += ctx.violations.size();
        }
        ++depth_;  // frontier_ now holds states at depth_ == layers_.size()

        for (std::size_t g = 0; g < resolved_.size(); ++g) {
            if (resolved_[g]) continue;
            std::uint32_t best = ConcurrentMarkingStore::kNone;
            for (WorkerCtx& ctx : ctx_) {
                const std::uint32_t hit = ctx.best[g];
                ctx.best[g] = ConcurrentMarkingStore::kNone;
                if (hit == ConcurrentMarkingStore::kNone) continue;
                if (best == ConcurrentMarkingStore::kNone ||
                    words_less(marking_of(hit), marking_of(best),
                               mwords_)) {
                    best = hit;
                }
            }
            if (best != ConcurrentMarkingStore::kNone) {
                resolved_[g] = 1;
                witness_id_[g] = best;
                --unresolved_;
            }
        }

        if (abort_now_.load(std::memory_order_acquire) ||
            frontier_.empty() || (can_early_stop_ && unresolved_ == 0) ||
            (query_.persistence_stop_at_first && violations != 0)) {
            done_ = true;
            return;
        }

        store_.reserve(std::min(store_.size() + out_edges, cap_));
        cursor_.store(0, std::memory_order_relaxed);
        chunk_ = std::clamp<std::size_t>(
            frontier_.size() / (workers_ * 8), 1, 256);
    }

    /// Builds the canonical BFS tree in one serial sweep over the stored
    /// edge set: each state's parent is the lexicographically-smallest
    /// (predecessor marking, transition) pair among its previous-layer
    /// predecessors. Worker scheduling decided which states exist and
    /// nothing else, so the tree — and every trace walked from it — is
    /// identical across runs and thread counts. O(edges) once, O(depth)
    /// per trace, however many witnesses a pass reports.
    void build_canonical_tree() {
        if (tree_built_) return;
        tree_built_ = true;
        const std::size_t states = store_.size();
        depth_of_.assign(states, 0);
        for (std::size_t d = 0; d < layers_.size(); ++d) {
            for (const std::uint32_t id : layers_[d]) {
                depth_of_[id] = static_cast<std::uint32_t>(d);
            }
        }
        constexpr std::uint64_t kUnset = UINT64_MAX;
        parent_of_.assign(states, kUnset);
        std::vector<std::uint64_t> child(std::max<std::size_t>(mwords_, 1));
        for (std::size_t d = 0; d + 1 < layers_.size(); ++d) {
            for (const std::uint32_t pid : layers_[d]) {
                const std::uint64_t* pm = marking_of(pid);
                const std::uint64_t* enabled = enabled_of(pid);
                for (std::size_t w = 0; w < twords_; ++w) {
                    std::uint64_t bits = enabled[w];
                    while (bits != 0) {
                        const TransitionId t{static_cast<std::uint32_t>(
                            w * kWordBits + static_cast<std::size_t>(
                                                std::countr_zero(bits)))};
                        bits &= bits - 1;
                        copy_words(child.data(), pm, mwords_);
                        compiled_.fire(child.data(), t);
                        const std::uint32_t cid = store_.find(child.data());
                        // Only tree edges qualify: the successor exists
                        // (it may not, in a truncated pass) and sits one
                        // layer deeper (cross and back edges are not
                        // shortest paths).
                        if (cid == ConcurrentMarkingStore::kNone ||
                            depth_of_[cid] != d + 1) {
                            continue;
                        }
                        const std::uint64_t cur = parent_of_[cid];
                        if (cur != kUnset) {
                            const auto cur_parent =
                                static_cast<std::uint32_t>(cur);
                            if (cur_parent == pid) {
                                if (TransitionId{static_cast<std::uint32_t>(
                                        cur >> 32)} <= t) {
                                    continue;
                                }
                            } else if (!words_less(pm,
                                                   marking_of(cur_parent),
                                                   mwords_)) {
                                continue;
                            }
                        }
                        parent_of_[cid] =
                            (std::uint64_t{t.value} << 32) | pid;
                    }
                }
            }
        }
    }

    /// Canonical BFS-shortest trace for a stored state, walked off the
    /// canonical tree.
    Trace reconstruct(std::uint32_t id) {
        build_canonical_tree();
        Trace trace;
        std::uint32_t cursor = id;
        while (parent_of_[cursor] != UINT64_MAX) {
            trace.firings.push_back(TransitionId{
                static_cast<std::uint32_t>(parent_of_[cursor] >> 32)});
            cursor = static_cast<std::uint32_t>(parent_of_[cursor]);
        }
        std::reverse(trace.firings.begin(), trace.firings.end());
        return trace;
    }

    MultiResult assemble();

    const Net& net_;
    const CompiledNet& compiled_;
    const MultiQuery& query_;
    const std::size_t cap_;
    const std::size_t mwords_;
    const std::size_t twords_;
    const std::size_t workers_;

    ConcurrentMarkingStore store_;
    std::vector<std::uint32_t> frontier_;
    std::vector<std::vector<std::uint32_t>> layers_;
    std::size_t depth_ = 0;  ///< BFS depth of the frontier being expanded
    std::atomic<std::size_t> cursor_{0};
    std::size_t chunk_ = 1;

    std::vector<std::uint8_t> resolved_;
    std::vector<std::uint32_t> witness_id_;
    std::size_t unresolved_ = 0;

    bool tree_built_ = false;
    std::vector<std::uint32_t> depth_of_;   ///< id -> BFS depth
    std::vector<std::uint64_t> parent_of_;  ///< id -> via << 32 | parent
    bool can_early_stop_ = false;

    std::atomic<bool> abort_now_{false};
    std::atomic<bool> truncated_{false};
    bool done_ = false;

    std::vector<WorkerCtx> ctx_;
    std::mutex error_mu_;
    std::exception_ptr error_;
};

MultiResult ParallelPass::run() {
    // Root state, interned and evaluated serially (depth 0).
    store_.reserve(std::min<std::size_t>(1, cap_));
    const Marking m0 = net_.initial_marking();
    copy_words(ctx_[0].child.data(), m0.word_data(), m0.word_count());
    const auto root = store_.intern(ctx_[0].child.data(), 0, cap_);
    std::uint64_t* root_enabled =
        store_.record_mut(root.id) + store_.meta_offset();
    compiled_.enabled_set(store_[root.id], root_enabled);
    visit(root.id, ctx_[0]);
    frontier_.push_back(root.id);
    // Settle root hits exactly like a layer boundary would (depth 0, so
    // compensate the depth bump layer_done() applies).
    {
        const std::size_t root_out = enabled_popcount(root_enabled);
        for (std::size_t g = 0; g < resolved_.size(); ++g) {
            const std::uint32_t hit = ctx_[0].best[g];
            ctx_[0].best[g] = ConcurrentMarkingStore::kNone;
            if (hit == ConcurrentMarkingStore::kNone) continue;
            resolved_[g] = 1;
            witness_id_[g] = hit;
            --unresolved_;
        }
        if ((can_early_stop_ && unresolved_ == 0) || root_out == 0) {
            return assemble();  // nothing to explore / nothing left to ask
        }
        store_.reserve(std::min(1 + root_out, cap_));
    }

    auto completion = [this]() noexcept { layer_done(); };
    std::barrier sync(static_cast<std::ptrdiff_t>(workers_), completion);

    auto worker_main = [this, &sync](std::size_t w) {
        for (;;) {
            process_layer_guarded(w);
            sync.arrive_and_wait();
            if (done_) break;
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers_ - 1);
    for (std::size_t w = 1; w < workers_; ++w) {
        pool.emplace_back(worker_main, w);
    }
    worker_main(0);
    for (std::thread& t : pool) t.join();

    if (error_) std::rethrow_exception(error_);
    return assemble();
}

MultiResult ParallelPass::assemble() {
    // Adopt the never-expanded last frontier as the final layer: an
    // early-stopped (or truncated) pass has stored states there, and
    // witness reconstruction needs their depths too.
    if (!frontier_.empty()) {
        layers_.push_back(std::move(frontier_));
        frontier_.clear();
    }

    MultiResult result;
    result.states_explored = store_.size();
    result.truncated = truncated_.load(std::memory_order_acquire);
    for (const WorkerCtx& ctx : ctx_) {
        result.edges_explored += ctx.edges;
    }

    if (query_.collect_deadlocks) {
        std::vector<std::uint32_t> dead;
        for (const WorkerCtx& ctx : ctx_) {
            dead.insert(dead.end(), ctx.deadlocks.begin(),
                        ctx.deadlocks.end());
        }
        std::sort(dead.begin(), dead.end(),
                  [this](std::uint32_t a, std::uint32_t b) {
                      return words_less(marking_of(a), marking_of(b),
                                        mwords_);
                  });
        result.deadlocks.reserve(dead.size());
        for (const std::uint32_t id : dead) {
            result.deadlocks.push_back(materialize(id));
        }
    }

    if (query_.check_persistence) {
        std::vector<LocalViolation> all;
        for (const WorkerCtx& ctx : ctx_) {
            all.insert(all.end(), ctx.violations.begin(),
                       ctx.violations.end());
        }
        std::sort(all.begin(), all.end(),
                  [this](const LocalViolation& a, const LocalViolation& b) {
                      return violation_less(a, b);
                  });
        std::size_t keep = query_.persistence_max_violations;
        if (query_.persistence_stop_at_first) {
            keep = std::min<std::size_t>(keep, 1);
        }
        if (all.size() > keep) all.resize(keep);
        result.persistence_violations.reserve(all.size());
        for (const LocalViolation& v : all) {
            result.persistence_violations.push_back(
                {materialize(v.state), v.fired, v.disabled,
                 reconstruct(v.state)});
        }
    }

    result.goals.resize(query_.goals.size());
    for (std::size_t g = 0; g < query_.goals.size(); ++g) {
        ReachabilityResult& r = result.goals[g];
        r.states_explored = result.states_explored;
        r.edges_explored = result.edges_explored;
        r.truncated = result.truncated;
        if (resolved_[g]) {
            r.witness = materialize(witness_id_[g]);
            r.witness_trace = reconstruct(witness_id_[g]);
        }
    }
    return result;
}

}  // namespace

ReachabilityResult ParallelReachabilityExplorer::find(
    const Predicate& goal) {
    MultiQuery query;
    query.goals = {&goal};
    return std::move(run_query(query).goals[0]);
}

std::vector<ReachabilityResult> ParallelReachabilityExplorer::find_all(
    std::span<const Predicate* const> goals) {
    MultiQuery query;
    query.goals.assign(goals.begin(), goals.end());
    return std::move(run_query(query).goals);
}

ReachabilityResult ParallelReachabilityExplorer::find_deadlocks() {
    const Predicate dead = Predicate::deadlock();
    MultiQuery query;
    query.goals = {&dead};
    query.collect_deadlocks = true;
    auto multi = run_query(query);
    ReachabilityResult result = std::move(multi.goals[0]);
    result.deadlocks = std::move(multi.deadlocks);
    return result;
}

ReachabilityResult ParallelReachabilityExplorer::explore_all() {
    const auto multi = run_query(MultiQuery{});
    ReachabilityResult result;
    result.states_explored = multi.states_explored;
    result.edges_explored = multi.edges_explored;
    result.truncated = multi.truncated;
    return result;
}

std::size_t ParallelReachabilityExplorer::count_states() {
    return explore_all().states_explored;
}

MultiResult ParallelReachabilityExplorer::run_query(
    const MultiQuery& query) {
    if (threads_ <= 1) {
        // The contract for threads == 1: bit-for-bit the sequential
        // engine, including its discovery-order witness selection.
        ReachabilityExplorer sequential(*compiled_, options_);
        return sequential.run_query(query);
    }
    ParallelPass pass(net_, *compiled_, options_, query, threads_);
    return pass.run();
}

}  // namespace rap::petri
