#include "petri/parallel.hpp"

#include <algorithm>
#include <barrier>
#include <bit>
#include <cstring>
#include <exception>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>

#include "petri/checkpoint.hpp"
#include "petri/reuse.hpp"
#include "util/steal_deque.hpp"

namespace rap::petri {

namespace {

constexpr std::size_t kWordBits = util::BitVec::kWordBits;

void copy_words(std::uint64_t* dst, const std::uint64_t* src,
                std::size_t n) {
    if (n != 0) std::memcpy(dst, src, n * sizeof(std::uint64_t));
}

/// Deterministic total order on fixed-width word payloads — the
/// canonical tie-break the parallel engine uses wherever the sequential
/// engine would have used discovery order.
bool words_less(const std::uint64_t* a, const std::uint64_t* b,
                std::size_t n) noexcept {
    for (std::size_t i = 0; i < n; ++i) {
        if (a[i] != b[i]) return a[i] < b[i];
    }
    return false;
}

void spin_pause(unsigned round) noexcept {
    if (round < 64) {
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#endif
    } else {
        std::this_thread::yield();
    }
}

}  // namespace

// ------------------------------------------- ConcurrentMarkingStore --

ConcurrentMarkingStore::ConcurrentMarkingStore(std::size_t marking_words,
                                               std::size_t meta_words,
                                               std::size_t workers,
                                               bool compact)
    : words_(std::max<std::size_t>(marking_words, 1)),
      record_words_(words_ + meta_words),
      compact_(compact),
      table_size_(std::size_t{1} << 12),
      table_(std::make_unique<std::atomic<std::uint64_t>[]>(table_size_)) {
    for (std::size_t i = 0; i < table_size_; ++i) {
        table_[i].store(kEmptySlot, std::memory_order_relaxed);
    }
    if (compact_) {
        // Power-of-two records per block so the id->record map is a
        // shift+mask; ~128K-word blocks, like the legacy arenas.
        const std::size_t rpb = std::bit_floor(std::max<std::size_t>(
            (std::size_t{1} << 14) / record_words_, 1));
        cshift_ = static_cast<std::size_t>(std::bit_width(rpb) - 1);
        cmask_ = static_cast<std::uint32_t>(rpb - 1);
        return;  // no per-worker arenas: ids index the shared blocks
    }
    arenas_.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
        // Mid-sized blocks: N workers each strand ~half a block, so the
        // default 512K-word blocks would cost small models more than
        // the records themselves; 128K keeps the waste a few percent
        // while still amortising allocation at 19M records.
        arenas_.emplace_back(record_words_, std::size_t{1} << 14);
    }
}

void ConcurrentMarkingStore::ensure_workers(std::size_t workers) {
    if (compact_) return;  // workers share the id-indexed blocks
    while (arenas_.size() < workers) {
        arenas_.emplace_back(record_words_, std::size_t{1} << 14);
    }
}

std::size_t ConcurrentMarkingStore::size() const noexcept {
    // Between layers (the only place this is read) capacity losers have
    // repaired the counter, so it equals the number of owned records.
    return count_.load(std::memory_order_acquire);
}

std::uint64_t ConcurrentMarkingStore::hash(const std::uint64_t* words)
    const noexcept {
    return hash_marking_words(words, words_);
}

ConcurrentMarkingStore::InternResult ConcurrentMarkingStore::intern(
    const std::uint64_t* words, std::size_t worker,
    std::size_t capacity_limit, const std::uint64_t* meta_init,
    std::size_t meta_init_words) {
    const std::size_t mask = table_size_ - 1;
    const std::uint64_t h = hash(words);
    const std::uint64_t fragment = h & 0xFFFFFFFF00000000ULL;
    std::size_t slot = static_cast<std::size_t>(h) & mask;
    unsigned spins = 0;
    for (;;) {
        std::uint64_t entry = table_[slot].load(std::memory_order_acquire);
        if (entry == kEmptySlot) {
            if (!table_[slot].compare_exchange_weak(
                    entry, pack(h, kPendingId), std::memory_order_acq_rel,
                    std::memory_order_acquire)) {
                continue;  // lost the claim; re-examine the same slot
            }
            const std::uint32_t id =
                count_.fetch_add(1, std::memory_order_acq_rel);
            if (id >= capacity_limit) {
                // Repair the counter (so size() == capacity exactly) and
                // resolve the claim: the store is full for everyone.
                count_.fetch_sub(1, std::memory_order_acq_rel);
                table_[slot].store(pack(h, kCapacityId),
                                   std::memory_order_release);
                return {kNone, false};
            }
            std::uint64_t* record;
            if (compact_) {
                // The id doubles as the arena position; the block was
                // zero-provisioned by the last serial reserve, so the
                // meta words beyond meta_init start zeroed exactly like
                // a push_zero record.
                record = compact_record(id);
            } else {
                util::WordArena& arena = arenas_[worker];
                record = arena[arena.push_zero()];
            }
            copy_words(record, words, words_);
            // Pre-publication meta (the canonical-min witness link and
            // depth): racing readers that learn the id below must never
            // see it uninitialised.
            copy_words(record + words_, meta_init, meta_init_words);
            if (!compact_) records_[id] = record;
            table_[slot].store(pack(h, id), std::memory_order_release);
            return {id, true};
        }
        const auto entry_id = static_cast<std::uint32_t>(entry);
        if (entry_id == kCapacityId) return {kNone, false};
        if ((entry & 0xFFFFFFFF00000000ULL) == fragment) {
            if (entry_id == kPendingId) {
                // Same fragment, record mid-publication: it may be our
                // marking, so wait for the claimant to resolve the slot.
                spin_pause(spins++);
                continue;
            }
            if (std::memcmp((*this)[entry_id], words,
                            words_ * sizeof(std::uint64_t)) == 0) {
                return {entry_id, false};
            }
        }
        slot = (slot + 1) & mask;
    }
}

std::uint32_t ConcurrentMarkingStore::find(
    const std::uint64_t* words) const noexcept {
    const std::size_t mask = table_size_ - 1;
    const std::uint64_t h = hash(words);
    const std::uint64_t fragment = h & 0xFFFFFFFF00000000ULL;
    std::size_t slot = static_cast<std::size_t>(h) & mask;
    for (;;) {
        const std::uint64_t entry =
            table_[slot].load(std::memory_order_acquire);
        if (entry == kEmptySlot) return kNone;
        const auto entry_id = static_cast<std::uint32_t>(entry);
        // Capacity tombstones sit mid-probe-chain; records inserted
        // before the cap was hit can live beyond them, so skip past.
        if (entry_id != kCapacityId && entry_id != kPendingId &&
            (entry & 0xFFFFFFFF00000000ULL) == fragment &&
            std::memcmp((*this)[entry_id], words,
                        words_ * sizeof(std::uint64_t)) == 0) {
            return entry_id;
        }
        slot = (slot + 1) & mask;
    }
}

void ConcurrentMarkingStore::reserve(std::size_t needed) {
    if (compact_) {
        // Zero-provision blocks covering `needed`: make_unique
        // value-initialises, so a winner's record slot starts zeroed.
        const std::size_t rpb = std::size_t{cmask_} + 1;
        while (creserved_ < needed) {
            cblocks_.push_back(std::make_unique<std::uint64_t[]>(
                rpb * record_words_));
            creserved_ += rpb;
        }
    } else if (records_.size() < needed) {
        records_.resize(needed, nullptr);
    }
    std::size_t want = table_size_;
    if (compact_) {
        // 7/8 ceiling: the probe footprint the compact slots buy back
        // funds a denser table (see the class comment).
        while (needed * 8 >= want * 7) want *= 2;
    } else {
        while (needed * 10 >= want * 7) want *= 2;
    }
    if (want == table_size_) return;
    auto table = std::make_unique<std::atomic<std::uint64_t>[]>(want);
    for (std::size_t i = 0; i < want; ++i) {
        table[i].store(kEmptySlot, std::memory_order_relaxed);
    }
    const std::size_t mask = want - 1;
    const std::size_t count = count_.load(std::memory_order_acquire);
    for (std::uint32_t id = 0; id < count; ++id) {
        const std::uint64_t h = hash((*this)[id]);
        std::size_t slot = static_cast<std::size_t>(h) & mask;
        while (table[slot].load(std::memory_order_relaxed) != kEmptySlot) {
            slot = (slot + 1) & mask;
        }
        table[slot].store(pack(h, id), std::memory_order_relaxed);
    }
    table_ = std::move(table);
    table_size_ = want;
}

std::size_t ConcurrentMarkingStore::record_bytes() const noexcept {
    if (compact_) {
        return cblocks_.size() * (std::size_t{cmask_} + 1) *
               record_words_ * sizeof(std::uint64_t);
    }
    std::size_t bytes = 0;
    for (const util::WordArena& arena : arenas_) {
        bytes += arena.resident_bytes();
    }
    return bytes;
}

std::size_t ConcurrentMarkingStore::resident_bytes() const noexcept {
    return record_bytes() + table_size_ * sizeof(std::uint64_t) +
           records_.capacity() * sizeof(std::uint64_t*) +
           cblocks_.capacity() * sizeof(void*);
}

StoreStats ConcurrentMarkingStore::stats() const noexcept {
    StoreStats s;
    s.compact = compact_;
    s.records = size();
    s.slots = table_size_;
    s.table_bytes = table_size_ * sizeof(std::uint64_t) +
                    records_.capacity() * sizeof(std::uint64_t*);
    s.arena_bytes = record_bytes();
    return s;
}

// -------------------------------------- ParallelReachabilityExplorer --

std::size_t ParallelReachabilityExplorer::resolve_threads(
    std::size_t requested) noexcept {
    if (requested != 0) return std::max<std::size_t>(requested, 1);
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

ParallelReachabilityExplorer::ParallelReachabilityExplorer(
    const Net& net, ReachabilityOptions options)
    : net_(net),
      options_(options),
      owned_(std::in_place, net),
      compiled_(&*owned_),
      threads_(resolve_threads(options.threads)) {}

ParallelReachabilityExplorer::ParallelReachabilityExplorer(
    const CompiledNet& compiled, ReachabilityOptions options)
    : net_(compiled.net()),
      options_(options),
      compiled_(&compiled),
      threads_(resolve_threads(options.threads)) {}

namespace {

/// One exploration pass: all shared state of the layer-synchronous BFS.
/// Workers only write their own WorkerCtx mid-layer; everything else
/// mutates in the barrier's serial completion step or before/after the
/// worker phase.
///
/// Memory layout (the diet that reaches the 19M-state OPE models): a
/// record is marking words plus, in canonical-CAS witness mode, two meta
/// words — the atomic (via << 32 | parent) link and the BFS depth. The
/// enabled bitsets live OUTSIDE the records when
/// options.frontier_enabled_cache is on: each worker keeps two ping-pong
/// arenas of rows, one holding the frontier being expanded, one filling
/// with discoveries, and the barrier's serial step recycles the arena of
/// the layer that just finished — so only ~two BFS layers of enabled
/// words are ever resident instead of all of them.
class ParallelPass {
public:
    ParallelPass(const Net& net, const CompiledNet& compiled,
                 const ReachabilityOptions& options, const MultiQuery& query,
                 std::size_t workers, ReuseStore* reuse)
        : net_(net),
          compiled_(compiled),
          query_(query),
          cap_(std::max<std::size_t>(options.max_states, 1)),
          mwords_(compiled.marking_words()),
          twords_(compiled.enabled_words()),
          workers_(workers),
          cas_tree_(options.witness_tree ==
                    ReachabilityOptions::WitnessTree::kCanonicalCas),
          stop_(options.stop),
          reuse_(reuse),
          diet_(options.frontier_enabled_cache && reuse == nullptr),
          stealing_(options.work_stealing),
          por_(make_por(compiled, options, query)),
          tight_(por_.has_value() && diet_ && !query.check_persistence &&
                 !por_->proviso_needed()),
          wmeta_words_((cas_tree_ || por_.has_value()) ? 2 : 0),
          erec_off_(mwords_ + wmeta_words_),
          store_(reuse != nullptr
                     ? reuse->store()
                     : owned_store_.emplace(
                           mwords_, wmeta_words_ + (diet_ ? 0 : twords_),
                           workers, options.compact_store)),
          checkpoint_path_(options.checkpoint_path),
          save_every_layers_(options.checkpoint_every != 0
                                 ? options.checkpoint_every
                                 : 1),
          resume_(options.resume.get()),
          resolved_(query.goals.size(), 0),
          witness_id_(query.goals.size(), ConcurrentMarkingStore::kNone),
          ctx_(workers),
          deques_(workers) {
        // Reduced passes that never widen (no proviso, no persistence)
        // only ever expand the ample set, so the diet arenas account
        // rows at ample width: each row stores [full | ample], computed
        // once at discovery, and out-edge provisioning counts ample bits
        // — the reserve no longer sizes tables for a frontier the
        // reduction will never fire.
        const std::size_t row_words = twords_ * (tight_ ? 2 : 1);
        for (WorkerCtx& ctx : ctx_) {
            ctx.best.assign(query.goals.size(),
                            ConcurrentMarkingStore::kNone);
            ctx.child.assign(std::max<std::size_t>(mwords_, 1), 0);
            ctx.scratch = Marking(net.place_count());
            if (por_) ctx.ample.assign(twords_, 0);
            if (diet_) {
                // Small blocks: these hold ~one BFS layer per worker and
                // are recycled every other barrier, so the default block
                // size would pin far more than they ever use.
                ctx.earena.reserve(2);
                ctx.earena.emplace_back(row_words, std::size_t{1} << 12);
                ctx.earena.emplace_back(row_words, std::size_t{1} << 12);
            }
        }
        unresolved_ = query.goals.size();
        can_early_stop_ = options.stop_at_first_match &&
                          !query.collect_deadlocks &&
                          !query.check_persistence && !query.goals.empty();
        // The CAS witness link is only worth maintaining when the pass
        // can be asked for a trace; a bare explore/count pays nothing.
        maintain_tree_ =
            cas_tree_ && (!query.goals.empty() || query.check_persistence);
    }

    MultiResult run();

    /// Footprint snapshot for the abort path: whatever was interned and
    /// resident when the pass died. Serial only (workers joined).
    MemoryStats footprint() const {
        MemoryStats stats;
        stats.records = store_.size();
        stats.record_bytes = store_.record_bytes();
        stats.resident_bytes = resident_now();
        stats.peak_bytes = std::max(peak_bytes_, stats.resident_bytes);
        stats.store = store_.stats();
        return stats;
    }

private:
    /// Builds the pass's reduction context, or nullopt when reduction is
    /// off / inactive (so `if (por_)` is the single activity test).
    static std::optional<PorContext> make_por(
        const CompiledNet& compiled, const ReachabilityOptions& options,
        const MultiQuery& query) {
        if (!options.por) return std::nullopt;
        PorRequest request;
        request.goals = query.goals;
        request.check_persistence = query.check_persistence;
        request.persistence_exempt = query.persistence_exempt;
        std::optional<PorContext> por(std::in_place, compiled, request);
        if (!por->active()) por.reset();
        return por;
    }

    struct LocalViolation {
        std::uint32_t state;  ///< id of the marking the pair conflicts at
        std::uint32_t depth;  ///< its BFS depth (trace length)
        TransitionId fired;
        TransitionId disabled;
    };

    /// Per-worker mutable state; cache-line aligned so neighbouring
    /// workers' per-edge counter updates do not false-share.
    struct alignas(64) WorkerCtx {
        std::vector<std::uint32_t> out;  ///< next-layer discoveries
        /// Enabled-set row of each `out` entry (worker arena in diet
        /// mode, record interior otherwise), stitched into
        /// frontier_rows_ at the barrier.
        std::vector<const std::uint64_t*> out_rows;
        std::vector<std::uint32_t> best;  ///< per-goal best hit this layer
        std::vector<std::uint32_t> deadlocks;
        std::vector<LocalViolation> violations;
        std::vector<std::uint64_t> child;  ///< successor marking scratch
        Marking scratch;                   ///< predicate evaluation view
        /// Ping-pong enabled-row arenas (frontier cache mode): [parity]
        /// fills with discoveries while [1 - parity] backs the frontier.
        std::vector<util::WordArena> earena;
        PorContext::Scratch por_scratch;   ///< reduce() working set
        std::vector<std::uint64_t> ample;  ///< stubborn-subset bitset
        PorStats por;                      ///< this worker's share
        std::size_t edges = 0;
        std::size_t out_edges = 0;  ///< enabled-bit sum of discoveries
        std::size_t steals = 0;     ///< chunks taken from other workers
    };

    const std::uint64_t* marking_of(std::uint32_t id) const {
        return store_[id];
    }

    Marking materialize(std::uint32_t id) const {
        Marking m(net_.place_count());
        copy_words(m.word_data(), marking_of(id), m.word_count());
        return m;
    }

    std::size_t enabled_popcount(const std::uint64_t* enabled) const {
        std::size_t n = 0;
        for (std::size_t w = 0; w < twords_; ++w) {
            n += static_cast<std::size_t>(std::popcount(enabled[w]));
        }
        return n;
    }

    bool violation_less(const LocalViolation& a,
                        const LocalViolation& b) const {
        if (a.depth != b.depth) return a.depth < b.depth;
        const std::uint64_t* ma = marking_of(a.state);
        const std::uint64_t* mb = marking_of(b.state);
        if (std::memcmp(ma, mb, mwords_ * sizeof(std::uint64_t)) != 0) {
            return words_less(ma, mb, mwords_);
        }
        if (a.fired != b.fired) return a.fired < b.fired;
        return a.disabled < b.disabled;
    }

    /// Evaluates deadlock collection and pending goals on a freshly
    /// published state — the parallel mirror of the sequential visit().
    void visit(std::uint32_t id, const std::uint64_t* enabled,
               WorkerCtx& ctx) {
        bool dead = true;
        for (std::size_t w = 0; w < twords_; ++w) {
            if (enabled[w] != 0) {
                dead = false;
                break;
            }
        }
        if (dead && query_.collect_deadlocks) ctx.deadlocks.push_back(id);
        if (unresolved_ == 0) return;
        bool scratch_ready = false;
        for (std::size_t g = 0; g < query_.goals.size(); ++g) {
            if (resolved_[g]) continue;
            const Predicate& goal = *query_.goals[g];
            bool match = false;
            if (goal.kind() == Predicate::Kind::Deadlock) {
                match = dead;
            } else {
                if (!scratch_ready) {
                    copy_words(ctx.scratch.word_data(), marking_of(id),
                               ctx.scratch.word_count());
                    scratch_ready = true;
                }
                match = goal(net_, ctx.scratch);
            }
            if (!match) continue;
            // Keep the canonical (lexicographically smallest) hit of the
            // layer so witnesses do not depend on worker scheduling.
            if (ctx.best[g] == ConcurrentMarkingStore::kNone ||
                words_less(marking_of(id), marking_of(ctx.best[g]),
                           mwords_)) {
                ctx.best[g] = id;
            }
        }
    }

    void check_persistence_edges(std::uint32_t head, TransitionId fired,
                                 const std::uint64_t* head_enabled,
                                 WorkerCtx& ctx) {
        for (std::uint32_t u : compiled_.affected(fired)) {
            if (u == fired.value) continue;
            if (((head_enabled[u / kWordBits] >> (u % kWordBits)) & 1) ==
                0) {
                continue;  // u was not enabled before `fired` fired
            }
            const TransitionId ut{u};
            if (compiled_.is_enabled(ctx.child.data(), ut)) continue;
            if (query_.persistence_exempt &&
                query_.persistence_exempt(net_, fired, ut)) {
                continue;
            }
            ctx.violations.push_back(
                {head, static_cast<std::uint32_t>(depth_), fired, ut});
        }
        // Bounded collection: each worker only ever needs its own
        // canonically-smallest K (min-K of a union is the min-K of the
        // parts' min-Ks, whatever the edge partition was).
        const std::size_t max = query_.persistence_max_violations;
        if (max != SIZE_MAX &&
            ctx.violations.size() > std::max<std::size_t>(2 * max, 64)) {
            std::sort(ctx.violations.begin(), ctx.violations.end(),
                      [this](const LocalViolation& a,
                             const LocalViolation& b) {
                          return violation_less(a, b);
                      });
            ctx.violations.resize(max);
        }
    }

    /// Canonical-min maintenance on a same-layer duplicate edge: if the
    /// rediscovered state sits one layer deeper than the expanding
    /// frontier, race the (parent marking, via) pair into its witness
    /// link, keeping the lexicographically smallest. The final value at
    /// the barrier is the min over every fired in-edge — independent of
    /// worker scheduling, so traces stay deterministic across runs and
    /// thread counts.
    void cas_witness_link(std::uint32_t child, std::uint32_t parent,
                          TransitionId via) {
        std::uint64_t* record = store_.record_mut(child);
        // Depth is written before the id is published and never again.
        // Reuse passes track freshness in the claim word instead — their
        // callers only get here for next-layer states.
        if (reuse_ == nullptr && record[mwords_ + 1] != depth_ + 1) return;
        std::atomic_ref<std::uint64_t> link(record[mwords_]);
        const std::uint64_t cand =
            (std::uint64_t{via.value} << 32) | parent;
        const std::uint64_t* pm = marking_of(parent);
        std::uint64_t cur = link.load(std::memory_order_acquire);
        for (;;) {
            const auto cur_parent = static_cast<std::uint32_t>(cur);
            bool smaller;
            if (cur_parent == parent) {
                smaller = via.value < static_cast<std::uint32_t>(cur >> 32);
            } else {
                // Markings are interned: distinct parent ids hold
                // distinct markings, so the order is strict.
                smaller = words_less(pm, marking_of(cur_parent), mwords_);
            }
            if (!smaller) return;
            if (link.compare_exchange_weak(cur, cand,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
                return;
            }
        }
    }

    /// Reuse-mode insert path of expand_edge: the successor is looked up
    /// in the shared cross-pass store and *claimed* for this pass's epoch
    /// — intern's inserted bit no longer distinguishes fresh discoveries
    /// (records resident from earlier passes are physical duplicates but
    /// logically new here). The claim winner consumes one unit of the
    /// max_states budget, writes the witness link, and recomputes the
    /// enabled row only when the cached one is stale for the attached
    /// structure; losers treat the state exactly like a scratch
    /// duplicate. ctx.child holds the successor marking on entry.
    bool reuse_edge(std::uint32_t head, TransitionId t,
                    const std::uint64_t* parent_row, std::size_t w,
                    WorkerCtx& ctx, bool& fresh_seen) {
        const auto interned =
            store_.intern(ctx.child.data(), w, provision_cap_, nullptr, 0);
        if (interned.id == ConcurrentMarkingStore::kNone) {
            // Physical exhaustion: provisioning capped this layer's
            // inserts at the remaining claim budget, and every inserted
            // record's claim completes unconditionally, so the pass ends
            // with exactly max_states claims — the scratch truncation
            // contract.
            truncated_.store(true, std::memory_order_relaxed);
            abort_now_.store(true, std::memory_order_release);
            return false;
        }
        std::atomic<std::uint64_t>& cl = reuse_->claim(interned.id);
        const std::uint64_t pending =
            (epoch_ << 32) | ReuseStore::kPendingDepth;
        std::uint64_t cur = cl.load(std::memory_order_acquire);
        while ((cur >> 32) != epoch_) {
            if (!cl.compare_exchange_weak(cur, pending,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
                continue;
            }
            // Claim won: this worker alone publishes the state this pass.
            // The budget slot is taken after winning so every slot below
            // cap_ maps to a claim that completes.
            const std::uint32_t slot =
                pass_claims_.fetch_add(1, std::memory_order_acq_rel);
            if (slot >= cap_) {
                pass_claims_.fetch_sub(1, std::memory_order_acq_rel);
                cl.store((epoch_ << 32) | ReuseStore::kOverflowDepth,
                         std::memory_order_release);
                truncated_.store(true, std::memory_order_relaxed);
                abort_now_.store(true, std::memory_order_release);
                return false;
            }
            std::uint64_t* record = store_.record_mut(interned.id);
            // Atomic because same-layer losers may CAS the link
            // concurrently once the claim publishes below.
            std::atomic_ref<std::uint64_t>(record[mwords_])
                .store((std::uint64_t{t.value} << 32) | head,
                       std::memory_order_relaxed);
            std::uint64_t* row = record + erec_off_;
            if (!reuse_->row_valid(interned.id)) {
                copy_words(row, parent_row, twords_);
                compiled_.update_enabled(ctx.child.data(), t, row);
                reuse_->set_row_valid(interned.id);
            }
            cl.store((epoch_ << 32) | (depth_ + 1),
                     std::memory_order_release);
            fresh_seen = true;
            ctx.out_edges += enabled_popcount(row);
            visit(interned.id, row, ctx);
            ctx.out.push_back(interned.id);
            ctx.out_rows.push_back(row);
            return true;
        }
        // Already claimed this epoch: a duplicate edge. Wait out a claim
        // mid-publication so the link and row below it are settled.
        std::uint32_t d = static_cast<std::uint32_t>(cur);
        unsigned idle = 0;
        while (d == ReuseStore::kPendingDepth) {
            spin_pause(idle++);
            d = static_cast<std::uint32_t>(
                cl.load(std::memory_order_acquire));
        }
        if (d == ReuseStore::kOverflowDepth) {
            truncated_.store(true, std::memory_order_relaxed);
            abort_now_.store(true, std::memory_order_release);
            return false;
        }
        const bool fresh = d == depth_ + 1;
        if (maintain_tree_ && fresh) cas_witness_link(interned.id, head, t);
        if (por_ && fresh) fresh_seen = true;
        return true;
    }

    void expand(std::uint32_t head, const std::uint64_t* enabled,
                std::size_t w, WorkerCtx& ctx) {
        const std::uint64_t* marking = marking_of(head);

        // Reduction decision first — deterministic in (marking, enabled),
        // so the reduced graph is the same whichever worker expands head.
        const std::uint64_t* bits_src = enabled;
        bool reduced = false;
        std::size_t enabled_count = 0;
        std::size_t ample_count = 0;
        if (tight_) {
            // Tight rows carry [full | ample] with the ample set computed
            // at discovery; stats are still recorded here, at expansion,
            // so early-stopped and truncated passes report exactly what
            // the non-tight engines do.
            const std::uint64_t* ample_row = enabled + twords_;
            enabled_count = enabled_popcount(enabled);
            ample_count = enabled_popcount(ample_row);
            reduced = std::memcmp(ample_row, enabled,
                                  twords_ * sizeof(std::uint64_t)) != 0;
            ++ctx.por.expansions;
            ctx.por.enabled_transitions += enabled_count;
            if (reduced) ++ctx.por.reduced_expansions;
            ctx.por.expanded_transitions +=
                reduced ? ample_count : enabled_count;
            bits_src = ample_row;
        } else if (por_) {
            enabled_count = enabled_popcount(enabled);
            ++ctx.por.expansions;
            ctx.por.enabled_transitions += enabled_count;
            reduced = por_->reduce(marking, enabled, ctx.ample.data(),
                                   ctx.por_scratch);
            if (reduced) {
                ++ctx.por.reduced_expansions;
                ample_count = enabled_popcount(ctx.ample.data());
                ctx.por.expanded_transitions += ample_count;
                bits_src = ctx.ample.data();
            } else {
                ctx.por.expanded_transitions += enabled_count;
            }
        }

        // Persistence is a property of the FULL graph's edges: under
        // reduction, check every enabled transition's edge up front so
        // the verdict never depends on which edges the stubborn set kept.
        const bool prepass = por_.has_value() && query_.check_persistence;
        if (prepass) {
            for (std::size_t word = 0; word < twords_; ++word) {
                std::uint64_t bits = enabled[word];
                while (bits != 0) {
                    if (abort_now_.load(std::memory_order_relaxed)) return;
                    const TransitionId t{static_cast<std::uint32_t>(
                        word * kWordBits +
                        static_cast<std::size_t>(std::countr_zero(bits)))};
                    bits &= bits - 1;
                    copy_words(ctx.child.data(), marking, mwords_);
                    compiled_.fire(ctx.child.data(), t);
                    check_persistence_edges(head, t, enabled, ctx);
                }
            }
        }

        // True once some successor of head sits in the next BFS layer:
        // the reduced expansion then provably makes progress and the
        // ignoring proviso holds without widening.
        bool fresh_seen = false;

        auto expand_edge = [&](TransitionId t, bool check_edges) -> bool {
            // Per-worker edge-counter stop poll: the serial layer poll
            // alone lets one enormous (or heavily reduced) layer blow
            // straight through a sweep deadline.
            if (stop_ && (ctx.edges & 255u) == 0 && stop_()) {
                truncated_.store(true, std::memory_order_relaxed);
                abort_now_.store(true, std::memory_order_release);
                return false;
            }
            ++ctx.edges;
            copy_words(ctx.child.data(), marking, mwords_);
            compiled_.fire(ctx.child.data(), t);

            if (check_edges && query_.check_persistence) {
                check_persistence_edges(head, t, enabled, ctx);
            }

            if (reuse_ != nullptr) {
                return reuse_edge(head, t, enabled, w, ctx, fresh_seen);
            }

            std::uint64_t meta_init[2];
            std::size_t meta_init_words = 0;
            if (wmeta_words_ != 0) {
                meta_init[0] = (std::uint64_t{t.value} << 32) | head;
                meta_init[1] = depth_ + 1;
                meta_init_words = 2;
            }
            const auto interned =
                store_.intern(ctx.child.data(), w, cap_, meta_init,
                              meta_init_words);
            if (interned.id == ConcurrentMarkingStore::kNone) {
                truncated_.store(true, std::memory_order_relaxed);
                abort_now_.store(true, std::memory_order_release);
                return false;
            }
            if (!interned.inserted) {
                if (maintain_tree_) {
                    cas_witness_link(interned.id, head, t);
                }
                // The depth word is written pre-publication and never
                // changes, so this read is race-free. Next-layer
                // duplicates count as progress exactly like the
                // sequential engine's id watermark does.
                if (por_ &&
                    store_[interned.id][mwords_ + 1] == depth_ + 1) {
                    fresh_seen = true;
                }
                return true;
            }
            fresh_seen = true;

            std::uint64_t* child_enabled;
            if (diet_) {
                util::WordArena& arena = ctx.earena[write_parity_];
                child_enabled = arena[arena.push(enabled)];
            } else {
                child_enabled =
                    store_.record_mut(interned.id) + erec_off_;
                copy_words(child_enabled, enabled, twords_);
            }
            compiled_.update_enabled(ctx.child.data(), t, child_enabled);
            if (tight_) {
                // Discovery-time reduction: compute the child's ample
                // set into the row's second half (out-edge accounting
                // and the next layer's expansion both read it there).
                std::uint64_t* ample_row = child_enabled + twords_;
                if (!por_->reduce(ctx.child.data(), child_enabled,
                                  ample_row, ctx.por_scratch)) {
                    copy_words(ample_row, child_enabled, twords_);
                }
                ctx.out_edges += enabled_popcount(ample_row);
            } else {
                ctx.out_edges += enabled_popcount(child_enabled);
            }
            visit(interned.id, child_enabled, ctx);
            ctx.out.push_back(interned.id);
            ctx.out_rows.push_back(child_enabled);
            return true;
        };

        auto expand_bits = [&](const std::uint64_t* src,
                               const std::uint64_t* minus,
                               bool check_edges) -> bool {
            for (std::size_t word = 0; word < twords_; ++word) {
                std::uint64_t bits = src[word];
                if (minus != nullptr) bits &= ~minus[word];
                while (bits != 0) {
                    if (abort_now_.load(std::memory_order_relaxed)) {
                        return false;
                    }
                    const TransitionId t{static_cast<std::uint32_t>(
                        word * kWordBits +
                        static_cast<std::size_t>(std::countr_zero(bits)))};
                    bits &= bits - 1;
                    if (!expand_edge(t, check_edges)) return false;
                }
            }
            return true;
        };

        if (!expand_bits(bits_src, nullptr, /*check_edges=*/!prepass)) {
            return;
        }

        // Ignoring proviso: a reduced expansion none of whose stubborn
        // successors reached the next layer could postpone a visible
        // action forever — widen to the full enabled set. Deadlock-only
        // passes never need this (proviso_needed() is false).
        if (reduced && por_->proviso_needed() && !fresh_seen) {
            ++ctx.por.proviso_expansions;
            ctx.por.expanded_transitions += enabled_count - ample_count;
            expand_bits(enabled, ctx.ample.data(), /*check_edges=*/false);
        }
    }

    void run_chunk(std::uint64_t task, std::size_t w, WorkerCtx& ctx) {
        const auto begin = static_cast<std::size_t>(task >> 32);
        const auto end =
            static_cast<std::size_t>(static_cast<std::uint32_t>(task));
        for (std::size_t i = begin; i < end; ++i) {
            if (abort_now_.load(std::memory_order_relaxed)) return;
            expand(frontier_[i], frontier_rows_[i], w, ctx);
        }
    }

    /// PR-4 baseline scheduling: a shared atomic cursor deals fixed
    /// chunks. Kept selectable (options.work_stealing = false) as the
    /// bench_parallel head-to-head reference.
    void process_layer_cursor(std::size_t w) {
        WorkerCtx& ctx = ctx_[w];
        for (;;) {
            if (abort_now_.load(std::memory_order_relaxed)) return;
            const std::size_t begin =
                cursor_.fetch_add(chunk_, std::memory_order_relaxed);
            if (begin >= frontier_.size()) return;
            const std::size_t end =
                std::min(begin + chunk_, frontier_.size());
            run_chunk((static_cast<std::uint64_t>(begin) << 32) |
                          static_cast<std::uint32_t>(end),
                      w, ctx);
        }
    }

    /// Work-stealing scheduling: drain the own deque, then steal the
    /// oldest chunks of any loaded neighbour. Exiting is exact — chunks
    /// are only pushed by the serial step, so once every deque reads
    /// empty no further intra-layer work can appear.
    void process_layer_stealing(std::size_t w) {
        WorkerCtx& ctx = ctx_[w];
        unsigned idle = 0;
        std::uint64_t task;
        for (;;) {
            if (abort_now_.load(std::memory_order_relaxed)) return;
            if (deques_[w].pop(task)) {
                idle = 0;
                run_chunk(task, w, ctx);
                continue;
            }
            bool ran = false;
            for (std::size_t k = 1; k < workers_; ++k) {
                if (deques_[(w + k) % workers_].steal(task)) {
                    ++ctx.steals;
                    ran = true;
                    run_chunk(task, w, ctx);
                    break;
                }
            }
            if (ran) {
                idle = 0;
                continue;
            }
            bool all_empty = true;
            for (std::size_t v = 0; v < workers_ && all_empty; ++v) {
                all_empty = deques_[v].empty();
            }
            if (all_empty) return;
            spin_pause(idle++);  // transient: a steal race is resolving
        }
    }

    void process_layer(std::size_t w) {
        if (stealing_) {
            process_layer_stealing(w);
        } else {
            process_layer_cursor(w);
        }
    }

    void process_layer_guarded(std::size_t w) noexcept {
        try {
            process_layer(w);
        } catch (...) {
            {
                const std::lock_guard<std::mutex> lock(error_mu_);
                if (!error_) error_ = std::current_exception();
            }
            abort_now_.store(true, std::memory_order_release);
        }
    }

    /// Fills the per-worker deques (or resets the shared cursor) with the
    /// current frontier, dealt as contiguous chunks so the no-steal case
    /// degenerates to a static partition.
    void prepare_frontier_schedule() {
        chunk_ = std::clamp<std::size_t>(
            frontier_.size() / (workers_ * 8), 1, 256);
        if (!stealing_) {
            cursor_.store(0, std::memory_order_relaxed);
            return;
        }
        const std::size_t tasks =
            (frontier_.size() + chunk_ - 1) / chunk_;
        const std::size_t per_worker = (tasks + workers_ - 1) / workers_;
        for (util::StealDeque& deque : deques_) {
            deque.reset_and_reserve(per_worker);
        }
        std::size_t begin = 0;
        for (std::size_t task = 0; begin < frontier_.size(); ++task) {
            const std::size_t end =
                std::min(begin + chunk_, frontier_.size());
            deques_[task / per_worker].push(
                (static_cast<std::uint64_t>(begin) << 32) |
                static_cast<std::uint32_t>(end));
            begin = end;
        }
    }

    /// Bytes resident right now, sampled at layer boundaries for
    /// memory_stats(): records + table + id index, the live enabled-row
    /// arenas, and the frontier bookkeeping (retained layers included,
    /// for the re-sweep mode that keeps them).
    std::size_t resident_now() const {
        std::size_t bytes = store_.resident_bytes();
        for (const WorkerCtx& ctx : ctx_) {
            for (const util::WordArena& arena : ctx.earena) {
                bytes += arena.resident_bytes();
            }
            bytes += ctx.out.capacity() * sizeof(std::uint32_t) +
                     ctx.out_rows.capacity() * sizeof(std::uint64_t*);
        }
        bytes += frontier_.capacity() * sizeof(std::uint32_t) +
                 frontier_rows_.capacity() * sizeof(std::uint64_t*);
        for (const auto& layer : layers_) {
            bytes += layer.capacity() * sizeof(std::uint32_t);
        }
        return bytes;
    }

    /// Serial (barrier completion): snapshots the pass at the layer
    /// boundary layer_done() just stitched — records with their witness
    /// meta in dense id order, the next frontier's ids, every verdict
    /// accumulator. Enabled rows are derived data and stay out; resume
    /// recomputes the frontier's. Throws on IO failure (caught by the
    /// caller and routed through the pass's error path).
    void save_checkpoint() const {
        StoreCheckpoint ckpt;
        ckpt.engine = StoreCheckpoint::Engine::kParallel;
        ckpt.structure_digest = compiled_.structure_digest();
        ckpt.marking_words = static_cast<std::uint32_t>(mwords_);
        ckpt.meta_words = static_cast<std::uint32_t>(wmeta_words_);
        const std::size_t n = store_.size();
        const std::size_t stride = mwords_ + wmeta_words_;
        ckpt.record_count = n;
        ckpt.records.reserve(n * stride);
        for (std::uint32_t id = 0; id < n; ++id) {
            const std::uint64_t* rec = store_[id];
            ckpt.records.insert(ckpt.records.end(), rec, rec + stride);
        }
        ckpt.head = n;
        ckpt.next_layer_begin = n;
        ckpt.depth = depth_;
        ckpt.frontier = frontier_;
        ckpt.goal_hits = witness_id_;
        for (const WorkerCtx& ctx : ctx_) {
            ckpt.edges_explored += ctx.edges;
            ckpt.deadlocks.insert(ckpt.deadlocks.end(),
                                  ctx.deadlocks.begin(),
                                  ctx.deadlocks.end());
            for (const LocalViolation& v : ctx.violations) {
                ckpt.violations.push_back(
                    {v.state, v.depth, v.fired.value, v.disabled.value});
            }
            ckpt.por.merge(ctx.por);
        }
        ckpt.save(checkpoint_path_);
    }

    /// Rebuilds the pass from resume_: re-interns the records in dense
    /// id order (layout-independent), seeds every verdict accumulator
    /// into worker 0's context, and recomputes the frontier's enabled
    /// rows. Returns false when the resumed pass has nothing left to do
    /// (caller assembles immediately). Throws on any mismatch — a resume
    /// point must never silently restart or corrupt an exploration.
    bool seed_from_checkpoint() {
        const StoreCheckpoint& ckpt = *resume_;
        if (ckpt.engine != StoreCheckpoint::Engine::kParallel) {
            throw std::runtime_error(
                "resume: checkpoint was written by the sequential engine");
        }
        if (ckpt.structure_digest != compiled_.structure_digest()) {
            throw std::runtime_error(
                "resume: checkpoint structural digest does not match this "
                "net — the interned ids describe a different structure");
        }
        if (ckpt.marking_words != mwords_ ||
            ckpt.meta_words != wmeta_words_) {
            throw std::runtime_error(
                "resume: checkpoint record geometry does not match");
        }
        if (ckpt.record_count == 0 || ckpt.record_count > cap_) {
            throw std::runtime_error(
                "resume: checkpoint record count is out of range for this "
                "pass's max_states");
        }
        if (ckpt.goal_hits.size() != query_.goals.size()) {
            throw std::runtime_error(
                "resume: checkpoint goal count does not match the query");
        }
        const Marking m0 = net_.initial_marking();
        copy_words(ctx_[0].child.data(), m0.word_data(), m0.word_count());
        if (std::memcmp(ckpt.record(0), ctx_[0].child.data(),
                        mwords_ * sizeof(std::uint64_t)) != 0) {
            throw std::runtime_error(
                "resume: checkpoint root marking differs from this net's "
                "initial marking (reconfigured since the checkpoint?)");
        }
        store_.reserve(static_cast<std::size_t>(ckpt.record_count));
        for (std::uint64_t id = 0; id < ckpt.record_count; ++id) {
            const std::uint64_t* rec = ckpt.record(id);
            const auto interned = store_.intern(rec, 0, cap_, rec + mwords_,
                                                wmeta_words_);
            if (!interned.inserted || interned.id != id) {
                throw std::runtime_error(
                    "resume: checkpoint records are not unique dense-id "
                    "markings — corrupted or foreign checkpoint");
            }
        }
        depth_ = static_cast<std::size_t>(ckpt.depth);
        ctx_[0].edges = static_cast<std::size_t>(ckpt.edges_explored);
        ctx_[0].por = ckpt.por;
        ctx_[0].por.active = false;  // activity is this pass's, not saved
        ctx_[0].deadlocks = ckpt.deadlocks;
        for (const StoreCheckpoint::Violation& v : ckpt.violations) {
            ctx_[0].violations.push_back({v.state, v.depth,
                                          TransitionId{v.fired},
                                          TransitionId{v.disabled}});
        }
        unresolved_ = 0;
        for (std::size_t g = 0; g < query_.goals.size(); ++g) {
            witness_id_[g] = ckpt.goal_hits[g];
            resolved_[g] =
                ckpt.goal_hits[g] != ConcurrentMarkingStore::kNone ? 1 : 0;
            if (!resolved_[g]) ++unresolved_;
        }
        frontier_ = ckpt.frontier;
        if (frontier_.empty() || (can_early_stop_ && unresolved_ == 0)) {
            return false;  // the checkpointed pass was already settled
        }
        // Frontier enabled rows are derived data: recompute them (and the
        // tight layout's ample halves) exactly where discovery would have
        // put them — worker 0's read-parity arena, or the record interior.
        std::size_t out_edges = 0;
        frontier_rows_.reserve(frontier_.size());
        for (const std::uint32_t id : frontier_) {
            if (id >= ckpt.record_count) {
                throw std::runtime_error(
                    "resume: checkpoint frontier references an id beyond "
                    "its own records");
            }
            std::uint64_t* row;
            if (diet_) {
                util::WordArena& arena = ctx_[0].earena[1 - write_parity_];
                row = arena[arena.push_zero()];
            } else {
                row = store_.record_mut(id) + erec_off_;
            }
            compiled_.enabled_set(store_[id], row);
            if (tight_) {
                std::uint64_t* ample_row = row + twords_;
                if (!por_->reduce(store_[id], row, ample_row,
                                  ctx_[0].por_scratch)) {
                    copy_words(ample_row, row, twords_);
                }
                out_edges += enabled_popcount(ample_row);
            } else {
                out_edges += enabled_popcount(row);
            }
            frontier_rows_.push_back(row);
        }
        store_.reserve(
            std::min(store_.size() + out_edges, cap_));
        prepare_frontier_schedule();
        return true;
    }

    /// Serial reuse-mode provisioning: the next layer can insert at most
    /// min(out-edge count, remaining claim budget) new records into the
    /// shared store — capping physical growth at the budget is what makes
    /// physical-exhaustion truncation land on exactly max_states claims.
    void provision_layer(std::size_t out_edges) {
        const std::size_t claimed =
            pass_claims_.load(std::memory_order_relaxed);
        const std::size_t budget_left = cap_ - std::min(cap_, claimed);
        provision_cap_ = store_.size() + std::min(out_edges, budget_left);
        store_.reserve(provision_cap_);
        reuse_->ensure_capacity(provision_cap_);
    }

    /// Serial between-layers step, run by the barrier's completion while
    /// every worker is parked: stitches the next frontier, provisions the
    /// store, settles this layer's goal hits, and decides whether the
    /// pass is done.
    void layer_done() noexcept {
        if (cas_tree_) {
            // Witness links live in the records; the expanded layer's id
            // list is dead weight at 19M-state scale.
            frontier_.clear();
        } else {
            layers_.push_back(std::move(frontier_));
            frontier_ = std::vector<std::uint32_t>();
        }
        frontier_rows_.clear();
        // Recycle the arena that backed the just-expanded frontier: its
        // rows are never read again, the next layer's discoveries
        // overwrite them in place.
        write_parity_ = 1 - write_parity_;
        for (WorkerCtx& ctx : ctx_) {
            if (diet_) ctx.earena[write_parity_].clear();
        }
        std::size_t out_edges = 0;
        std::size_t violations = 0;
        for (WorkerCtx& ctx : ctx_) {
            frontier_.insert(frontier_.end(), ctx.out.begin(),
                             ctx.out.end());
            frontier_rows_.insert(frontier_rows_.end(),
                                  ctx.out_rows.begin(),
                                  ctx.out_rows.end());
            ctx.out.clear();
            ctx.out_rows.clear();
            out_edges += ctx.out_edges;
            ctx.out_edges = 0;
            violations += ctx.violations.size();
        }
        ++depth_;  // frontier_ now holds states at this BFS depth

        for (std::size_t g = 0; g < resolved_.size(); ++g) {
            if (resolved_[g]) continue;
            std::uint32_t best = ConcurrentMarkingStore::kNone;
            for (WorkerCtx& ctx : ctx_) {
                const std::uint32_t hit = ctx.best[g];
                ctx.best[g] = ConcurrentMarkingStore::kNone;
                if (hit == ConcurrentMarkingStore::kNone) continue;
                if (best == ConcurrentMarkingStore::kNone ||
                    words_less(marking_of(hit), marking_of(best),
                               mwords_)) {
                    best = hit;
                }
            }
            if (best != ConcurrentMarkingStore::kNone) {
                resolved_[g] = 1;
                witness_id_[g] = best;
                --unresolved_;
            }
        }

        peak_bytes_ = std::max(peak_bytes_, resident_now());

        if (stop_ && stop_()) {
            // Cooperative stop (sweep cancellation / timeout), polled
            // once per layer while every worker is parked: end the pass
            // and report it truncated.
            truncated_.store(true, std::memory_order_relaxed);
            done_ = true;
            return;
        }

        if (abort_now_.load(std::memory_order_acquire) ||
            frontier_.empty() || (can_early_stop_ && unresolved_ == 0) ||
            (query_.persistence_stop_at_first && violations != 0)) {
            done_ = true;
            return;
        }

        if (!checkpoint_path_.empty() &&
            ++layers_since_save_ >= save_every_layers_) {
            layers_since_save_ = 0;
            try {
                save_checkpoint();
            } catch (...) {
                // IO failure must surface as an aborted pass, not a
                // silently skipped resume point: route it through the
                // same error path a worker exception takes.
                {
                    const std::lock_guard<std::mutex> lock(error_mu_);
                    if (!error_) error_ = std::current_exception();
                }
                abort_now_.store(true, std::memory_order_release);
                done_ = true;
                return;
            }
        }

        if (reuse_ != nullptr) {
            provision_layer(out_edges);
        } else {
            store_.reserve(std::min(store_.size() + out_edges, cap_));
        }
        prepare_frontier_schedule();
    }

    /// Builds the canonical BFS tree in one serial sweep over the stored
    /// edge set: each state's parent is the lexicographically-smallest
    /// (predecessor marking, transition) pair among its previous-layer
    /// predecessors — the kResweep witness mode (the canonical-CAS mode
    /// maintains the identical tree in the records during exploration
    /// and never runs this). O(edges) once, O(depth) per trace.
    void build_canonical_tree() {
        if (tree_built_) return;
        tree_built_ = true;
        const std::size_t states = store_.size();
        depth_of_.assign(states, 0);
        for (std::size_t d = 0; d < layers_.size(); ++d) {
            for (const std::uint32_t id : layers_[d]) {
                depth_of_[id] = static_cast<std::uint32_t>(d);
            }
        }
        constexpr std::uint64_t kUnset = UINT64_MAX;
        parent_of_.assign(states, kUnset);
        std::vector<std::uint64_t> child(std::max<std::size_t>(mwords_, 1));
        std::vector<std::uint64_t> enabled_scratch(twords_);
        for (std::size_t d = 0; d + 1 < layers_.size(); ++d) {
            for (const std::uint32_t pid : layers_[d]) {
                const std::uint64_t* pm = marking_of(pid);
                const std::uint64_t* enabled;
                if (diet_) {
                    // The frontier cache dropped this layer's bitsets;
                    // recompute from the marking.
                    compiled_.enabled_set(pm, enabled_scratch.data());
                    enabled = enabled_scratch.data();
                } else {
                    enabled = store_[pid] + erec_off_;
                }
                for (std::size_t w = 0; w < twords_; ++w) {
                    std::uint64_t bits = enabled[w];
                    while (bits != 0) {
                        const TransitionId t{static_cast<std::uint32_t>(
                            w * kWordBits + static_cast<std::size_t>(
                                                std::countr_zero(bits)))};
                        bits &= bits - 1;
                        copy_words(child.data(), pm, mwords_);
                        compiled_.fire(child.data(), t);
                        const std::uint32_t cid = store_.find(child.data());
                        // Only tree edges qualify: the successor exists
                        // (it may not, in a truncated pass) and sits one
                        // layer deeper (cross and back edges are not
                        // shortest paths).
                        if (cid == ConcurrentMarkingStore::kNone ||
                            depth_of_[cid] != d + 1) {
                            continue;
                        }
                        const std::uint64_t cur = parent_of_[cid];
                        if (cur != kUnset) {
                            const auto cur_parent =
                                static_cast<std::uint32_t>(cur);
                            if (cur_parent == pid) {
                                if (TransitionId{static_cast<std::uint32_t>(
                                        cur >> 32)} <= t) {
                                    continue;
                                }
                            } else if (!words_less(pm,
                                                   marking_of(cur_parent),
                                                   mwords_)) {
                                continue;
                            }
                        }
                        parent_of_[cid] =
                            (std::uint64_t{t.value} << 32) | pid;
                    }
                }
            }
        }
    }

    /// Canonical BFS-shortest trace for a stored state: in CAS mode a
    /// plain walk over the records' witness links (already canonical-min
    /// when the workers joined), otherwise off the re-swept tree.
    Trace reconstruct(std::uint32_t id) {
        Trace trace;
        std::uint32_t cursor = id;
        if (cas_tree_) {
            for (;;) {
                const std::uint64_t link = store_[cursor][mwords_];
                const auto parent = static_cast<std::uint32_t>(link);
                if (parent == ConcurrentMarkingStore::kNone) break;
                trace.firings.push_back(TransitionId{
                    static_cast<std::uint32_t>(link >> 32)});
                cursor = parent;
            }
        } else {
            build_canonical_tree();
            while (parent_of_[cursor] != UINT64_MAX) {
                trace.firings.push_back(TransitionId{
                    static_cast<std::uint32_t>(parent_of_[cursor] >> 32)});
                cursor = static_cast<std::uint32_t>(parent_of_[cursor]);
            }
        }
        std::reverse(trace.firings.begin(), trace.firings.end());
        return trace;
    }

    /// Shared worker-pool loop: runs barrier-synchronized layers until
    /// done_, then assembles (fresh and resumed passes both land here).
    MultiResult run_layers();

    MultiResult assemble();

    const Net& net_;
    const CompiledNet& compiled_;
    const MultiQuery& query_;
    const std::size_t cap_;
    const std::size_t mwords_;
    const std::size_t twords_;
    const std::size_t workers_;
    const bool cas_tree_;   ///< canonical-CAS witness mode (vs re-sweep)
    const std::function<bool()> stop_;  ///< cooperative stop hook
    /// Shared cross-pass store (incremental re-verification), or null
    /// for a scratch pass. Forces diet_ off: rows must live in the
    /// records to survive the pass.
    ReuseStore* const reuse_;
    const bool diet_;       ///< frontier-only enabled-set cache
    const bool stealing_;   ///< deque scheduling (vs atomic cursor)
    /// Stubborn-set reduction of this pass (options.por); absent when off
    /// or fallen back to full exploration. Also forces the two per-record
    /// meta words: the depth word is the freshness test of the ignoring
    /// proviso, mirroring the sequential engine's id watermark.
    const std::optional<PorContext> por_;
    /// Ample-width diet accounting: reduction on, never widened (no
    /// proviso, no persistence) — rows are [full | ample] pairs and
    /// out-edge provisioning counts ample bits only.
    const bool tight_;
    const std::size_t wmeta_words_;  ///< witness meta words per record
    const std::size_t erec_off_;     ///< in-record enabled offset (!diet_)

    /// The pass's private store (scratch mode); reuse passes bind store_
    /// to the ReuseStore's shared one instead.
    std::optional<ConcurrentMarkingStore> owned_store_;
    ConcurrentMarkingStore& store_;
    /// Periodic resume-point persistence (empty = off). Saved in the
    /// barrier's serial step every `save_every_layers_` completed layers,
    /// while every worker is parked — the records are quiescent, so the
    /// snapshot is a consistent layer boundary by construction.
    const std::string checkpoint_path_;
    const std::size_t save_every_layers_;
    const StoreCheckpoint* const resume_;  ///< resume point, or null
    std::size_t layers_since_save_ = 0;
    std::uint64_t epoch_ = 0;  ///< reuse pass epoch (claims' high half)
    /// Records claimed (= states reached) this pass — reuse mode's
    /// states_explored and its truncation budget.
    std::atomic<std::uint32_t> pass_claims_{0};
    /// Physical intern cap for the current layer (reuse mode): resident
    /// records + the layer's insert bound, set serially.
    std::size_t provision_cap_ = 0;
    std::vector<std::uint32_t> frontier_;
    /// Enabled-set row per frontier index, stitched at the barrier.
    std::vector<const std::uint64_t*> frontier_rows_;
    /// Expanded layers' id lists — retained by the re-sweep mode only.
    std::vector<std::vector<std::uint32_t>> layers_;
    std::size_t depth_ = 0;  ///< BFS depth of the frontier being expanded
    int write_parity_ = 1;   ///< worker arena receiving discoveries
    std::atomic<std::size_t> cursor_{0};
    std::size_t chunk_ = 1;
    std::size_t peak_bytes_ = 0;

    std::vector<std::uint8_t> resolved_;
    std::vector<std::uint32_t> witness_id_;
    std::size_t unresolved_ = 0;

    bool tree_built_ = false;
    std::vector<std::uint32_t> depth_of_;   ///< id -> BFS depth
    std::vector<std::uint64_t> parent_of_;  ///< id -> via << 32 | parent
    bool can_early_stop_ = false;
    bool maintain_tree_ = false;  ///< CAS links worth updating this pass

    std::atomic<bool> abort_now_{false};
    std::atomic<bool> truncated_{false};
    bool done_ = false;

    std::vector<WorkerCtx> ctx_;
    std::vector<util::StealDeque> deques_;
    std::mutex error_mu_;
    std::exception_ptr error_;
};

MultiResult ParallelPass::run() {
    if (resume_ != nullptr) {
        if (!seed_from_checkpoint()) return assemble();
        return run_layers();
    }
    // Root state, interned and evaluated serially (depth 0).
    const Marking m0 = net_.initial_marking();
    copy_words(ctx_[0].child.data(), m0.word_data(), m0.word_count());
    std::uint32_t root_id;
    std::uint64_t* root_enabled;
    if (reuse_ != nullptr) {
        epoch_ = reuse_->begin_pass();
        provision_cap_ = store_.size() + 1;
        store_.reserve(provision_cap_);
        reuse_->ensure_capacity(provision_cap_);
        const auto root = store_.intern(ctx_[0].child.data(), 0,
                                        provision_cap_, nullptr, 0);
        root_id = root.id;
        pass_claims_.store(1, std::memory_order_relaxed);
        reuse_->claim(root_id).store(epoch_ << 32,
                                     std::memory_order_relaxed);
        std::uint64_t* record = store_.record_mut(root_id);
        record[mwords_] = std::uint64_t{ConcurrentMarkingStore::kNone};
        root_enabled = record + erec_off_;
        if (!reuse_->row_valid(root_id)) {
            compiled_.enabled_set(record, root_enabled);
            reuse_->set_row_valid(root_id);
        }
    } else {
        store_.reserve(std::min<std::size_t>(1, cap_));
        const std::uint64_t root_meta[2] = {
            std::uint64_t{ConcurrentMarkingStore::kNone}, 0};
        const auto root = store_.intern(ctx_[0].child.data(), 0, cap_,
                                        root_meta, wmeta_words_);
        root_id = root.id;
        if (diet_) {
            util::WordArena& arena = ctx_[0].earena[1 - write_parity_];
            root_enabled = arena[arena.push_zero()];
        } else {
            root_enabled = store_.record_mut(root_id) + erec_off_;
        }
        compiled_.enabled_set(store_[root_id], root_enabled);
        if (tight_) {
            std::uint64_t* ample_row = root_enabled + twords_;
            if (!por_->reduce(store_[root_id], root_enabled, ample_row,
                              ctx_[0].por_scratch)) {
                copy_words(ample_row, root_enabled, twords_);
            }
        }
    }
    visit(root_id, root_enabled, ctx_[0]);
    frontier_.push_back(root_id);
    frontier_rows_.push_back(root_enabled);
    // Settle root hits exactly like a layer boundary would (depth 0, so
    // compensate the depth bump layer_done() applies).
    {
        const std::size_t root_out = enabled_popcount(
            tight_ ? root_enabled + twords_ : root_enabled);
        for (std::size_t g = 0; g < resolved_.size(); ++g) {
            const std::uint32_t hit = ctx_[0].best[g];
            ctx_[0].best[g] = ConcurrentMarkingStore::kNone;
            if (hit == ConcurrentMarkingStore::kNone) continue;
            resolved_[g] = 1;
            witness_id_[g] = hit;
            --unresolved_;
        }
        if ((can_early_stop_ && unresolved_ == 0) || root_out == 0) {
            return assemble();  // nothing to explore / nothing left to ask
        }
        if (reuse_ != nullptr) {
            provision_layer(root_out);
        } else {
            store_.reserve(std::min(1 + root_out, cap_));
        }
        prepare_frontier_schedule();
    }

    return run_layers();
}

MultiResult ParallelPass::run_layers() {
    auto completion = [this]() noexcept { layer_done(); };
    std::barrier sync(static_cast<std::ptrdiff_t>(workers_), completion);

    auto worker_main = [this, &sync](std::size_t w) {
        for (;;) {
            process_layer_guarded(w);
            sync.arrive_and_wait();
            if (done_) break;
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers_ - 1);
    for (std::size_t w = 1; w < workers_; ++w) {
        pool.emplace_back(worker_main, w);
    }
    worker_main(0);
    for (std::thread& t : pool) t.join();

    if (error_) std::rethrow_exception(error_);
    return assemble();
}

MultiResult ParallelPass::assemble() {
    // Adopt the never-expanded last frontier as the final layer: an
    // early-stopped (or truncated) pass has stored states there, and the
    // re-sweep's tree needs their depths too (the CAS tree lives in the
    // records and needs no layer lists).
    if (!cas_tree_ && !frontier_.empty()) {
        layers_.push_back(std::move(frontier_));
        frontier_.clear();
    }

    MultiResult result;
    // Reuse passes count the states *this pass* reached (its claims),
    // not the shared store's resident records — identical to what the
    // scratch pass reports, including exact max_states on truncation.
    result.states_explored =
        reuse_ != nullptr
            ? pass_claims_.load(std::memory_order_acquire)
            : store_.size();
    result.truncated = truncated_.load(std::memory_order_acquire);
    result.por.active = por_.has_value();
    for (const WorkerCtx& ctx : ctx_) {
        result.edges_explored += ctx.edges;
        result.por.merge(ctx.por);
    }
    result.memory.records = store_.size();
    result.memory.record_bytes = store_.record_bytes();
    result.memory.resident_bytes = resident_now();
    result.memory.peak_bytes =
        std::max(peak_bytes_, result.memory.resident_bytes);
    result.memory.store = store_.stats();

    if (query_.collect_deadlocks) {
        std::vector<std::uint32_t> dead;
        for (const WorkerCtx& ctx : ctx_) {
            dead.insert(dead.end(), ctx.deadlocks.begin(),
                        ctx.deadlocks.end());
        }
        std::sort(dead.begin(), dead.end(),
                  [this](std::uint32_t a, std::uint32_t b) {
                      return words_less(marking_of(a), marking_of(b),
                                        mwords_);
                  });
        result.deadlocks.reserve(dead.size());
        for (const std::uint32_t id : dead) {
            result.deadlocks.push_back(materialize(id));
        }
    }

    if (query_.check_persistence) {
        std::vector<LocalViolation> all;
        for (const WorkerCtx& ctx : ctx_) {
            all.insert(all.end(), ctx.violations.begin(),
                       ctx.violations.end());
        }
        std::sort(all.begin(), all.end(),
                  [this](const LocalViolation& a, const LocalViolation& b) {
                      return violation_less(a, b);
                  });
        std::size_t keep = query_.persistence_max_violations;
        if (query_.persistence_stop_at_first) {
            keep = std::min<std::size_t>(keep, 1);
        }
        if (all.size() > keep) all.resize(keep);
        result.persistence_violations.reserve(all.size());
        for (const LocalViolation& v : all) {
            result.persistence_violations.push_back(
                {materialize(v.state), v.fired, v.disabled,
                 reconstruct(v.state)});
        }
    }

    result.goals.resize(query_.goals.size());
    for (std::size_t g = 0; g < query_.goals.size(); ++g) {
        ReachabilityResult& r = result.goals[g];
        r.states_explored = result.states_explored;
        r.edges_explored = result.edges_explored;
        r.truncated = result.truncated;
        r.memory = result.memory;
        r.por = result.por;
        if (resolved_[g]) {
            r.witness = materialize(witness_id_[g]);
            r.witness_trace = reconstruct(witness_id_[g]);
        }
    }
    return result;
}

}  // namespace

ReachabilityResult ParallelReachabilityExplorer::find(
    const Predicate& goal) {
    MultiQuery query;
    query.goals = {&goal};
    return std::move(run_query(query).goals[0]);
}

std::vector<ReachabilityResult> ParallelReachabilityExplorer::find_all(
    std::span<const Predicate* const> goals) {
    MultiQuery query;
    query.goals.assign(goals.begin(), goals.end());
    return std::move(run_query(query).goals);
}

ReachabilityResult ParallelReachabilityExplorer::find_deadlocks() {
    const Predicate dead = Predicate::deadlock();
    MultiQuery query;
    query.goals = {&dead};
    query.collect_deadlocks = true;
    auto multi = run_query(query);
    ReachabilityResult result = std::move(multi.goals[0]);
    result.deadlocks = std::move(multi.deadlocks);
    return result;
}

ReachabilityResult ParallelReachabilityExplorer::explore_all() {
    const auto multi = run_query(MultiQuery{});
    ReachabilityResult result;
    result.states_explored = multi.states_explored;
    result.edges_explored = multi.edges_explored;
    result.truncated = multi.truncated;
    result.memory = multi.memory;
    result.por = multi.por;
    return result;
}

std::size_t ParallelReachabilityExplorer::count_states() {
    return explore_all().states_explored;
}

MultiResult ParallelReachabilityExplorer::run_query(
    const MultiQuery& query) {
    if (threads_ <= 1) {
        // The contract for threads == 1: bit-for-bit the sequential
        // engine, including its discovery-order witness selection.
        ReachabilityExplorer sequential(*compiled_, options_);
        return sequential.run_query(query);
    }
    if (!options_.checkpoint_path.empty() || options_.resume != nullptr) {
        // Checkpoints snapshot the records' witness meta; the re-sweep
        // mode keeps its tree in layer lists that are never serialized,
        // and a shared ReuseStore's records outlive any single pass's
        // resume point. Refuse loudly — a resume point that silently
        // degraded would be worse than none.
        if (options_.witness_tree !=
            ReachabilityOptions::WitnessTree::kCanonicalCas) {
            throw std::runtime_error(
                "checkpoint: the parallel engine checkpoints only the "
                "canonical-CAS witness layout");
        }
        if (options_.reuse != nullptr) {
            throw std::runtime_error(
                "checkpoint: incompatible with a cross-pass ReuseStore");
        }
    }
    // Cross-pass reuse needs the canonical-CAS record layout (witness
    // meta + resident rows); other modes — and a store whose dimensions
    // don't match this net — fall back to a scratch pass.
    ReuseStore* reuse = nullptr;
    if (options_.reuse &&
        options_.witness_tree ==
            ReachabilityOptions::WitnessTree::kCanonicalCas &&
        options_.reuse->attach(*compiled_, threads_)) {
        reuse = options_.reuse.get();
    }
    ParallelPass pass(net_, *compiled_, options_, query, threads_, reuse);
    try {
        MultiResult result = pass.run();
        result.reuse_fallback = options_.reuse != nullptr && reuse == nullptr;
        return result;
    } catch (const ExplorationAborted&) {
        throw;
    } catch (const std::exception& e) {
        // The pass died mid-exploration (goal predicate threw, checkpoint
        // write failed, resume point rejected): attach the interned
        // footprint so accounting survives the abort.
        throw ExplorationAborted(e.what(), pass.footprint());
    }
}

}  // namespace rap::petri
