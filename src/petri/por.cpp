#include "petri/por.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>

namespace rap::petri {

namespace {

constexpr std::size_t kWordBits = 64;

bool test_bit(const std::uint64_t* words, std::uint32_t i) noexcept {
    return (words[i / kWordBits] >> (i % kWordBits)) & 1;
}

void set_bit(std::uint64_t* words, std::uint32_t i) noexcept {
    words[i / kWordBits] |= std::uint64_t{1} << (i % kWordBits);
}

std::vector<std::uint32_t> ids(const std::vector<PlaceId>& places) {
    std::vector<std::uint32_t> out;
    out.reserve(places.size());
    for (PlaceId p : places) out.push_back(p.value);
    return out;
}

}  // namespace

PorContext::Csr PorContext::build_csr(
    std::size_t rows, const std::vector<std::vector<std::uint32_t>>& adj) {
    Csr csr;
    csr.off.resize(rows + 1, 0);
    std::size_t total = 0;
    for (std::size_t i = 0; i < rows; ++i) {
        csr.off[i] = static_cast<std::uint32_t>(total);
        total += adj[i].size();
    }
    csr.off[rows] = static_cast<std::uint32_t>(total);
    csr.items.reserve(total);
    for (std::size_t i = 0; i < rows; ++i) {
        csr.items.insert(csr.items.end(), adj[i].begin(), adj[i].end());
    }
    return csr;
}

void PorContext::mark_togglers_visible(std::uint32_t place) {
    for (std::uint32_t t : producers_.row(place)) visible_[t] = 1;
    for (std::uint32_t t : unmarkers_.row(place)) visible_[t] = 1;
}

void PorContext::mark_enabledness_support_visible(std::uint32_t transition) {
    if (support_marked_[transition]) return;
    support_marked_[transition] = 1;
    for (std::uint32_t p : require_.row(transition)) {
        mark_togglers_visible(p);
    }
    for (std::uint32_t p : forbid_.row(transition)) {
        mark_togglers_visible(p);
    }
}

PorContext::PorContext(const CompiledNet& compiled,
                       const PorRequest& request)
    : net_(&compiled.net()),
      transition_count_(compiled.transition_count()),
      marking_words_(compiled.marking_words()),
      enabled_words_(compiled.enabled_words()) {
    // A pass whose goals include a predicate of unknown support cannot
    // bound that goal's visible transitions; reduction would risk the
    // verdict, so the whole pass falls back to full exploration.
    // (Deadlock goals need no visibility: stubbornness alone preserves
    // every deadlock.) Nets with < 2 transitions have nothing to reduce.
    active_ = transition_count_ >= 2;
    for (const Predicate* goal : request.goals) {
        if (goal == nullptr) continue;
        if (goal->kind() == Predicate::Kind::Deadlock) continue;
        if (!goal->support()) active_ = false;
    }
    if (!active_) return;

    const std::size_t T = transition_count_;
    const std::size_t P = net_->place_count();

    // Per-transition place lists under the compiled "safe enabling"
    // semantics. Note ton(t) = post ∖ pre = forbid(t): producing into p
    // requires p unmarked (contact-freeness), so the produce-only places
    // are exactly the places t can mark.
    std::vector<std::vector<std::uint32_t>> require_adj(T);
    std::vector<std::vector<std::uint32_t>> forbid_adj(T);
    std::vector<std::vector<std::uint32_t>> toff_adj(T);
    for (std::uint32_t t = 0; t < T; ++t) {
        const auto pre = ids(net_->preset(TransitionId{t}));
        const auto post = ids(net_->postset(TransitionId{t}));
        const auto read = ids(net_->readset(TransitionId{t}));
        std::set_union(pre.begin(), pre.end(), read.begin(), read.end(),
                       std::back_inserter(require_adj[t]));
        std::set_difference(post.begin(), post.end(), pre.begin(),
                            pre.end(), std::back_inserter(forbid_adj[t]));
        std::set_difference(pre.begin(), pre.end(), post.begin(),
                            post.end(), std::back_inserter(toff_adj[t]));
    }
    require_ = build_csr(T, require_adj);
    forbid_ = build_csr(T, forbid_adj);

    std::vector<std::vector<std::uint32_t>> producers_adj(P);
    std::vector<std::vector<std::uint32_t>> unmarkers_adj(P);
    std::vector<std::vector<std::uint32_t>> requirers_adj(P);
    for (std::uint32_t t = 0; t < T; ++t) {
        for (std::uint32_t p : forbid_adj[t]) producers_adj[p].push_back(t);
        for (std::uint32_t p : toff_adj[t]) unmarkers_adj[p].push_back(t);
        for (std::uint32_t p : require_adj[t]) {
            requirers_adj[p].push_back(t);
        }
    }
    producers_ = build_csr(P, producers_adj);
    unmarkers_ = build_csr(P, unmarkers_adj);

    // Symmetric disabling dependence. disables(t,u):
    //   toff(t) ∩ require(u) ≠ ∅  (t unmarks a place u needs marked)
    // ∨ ton(t)  ∩ forbid(u)  ≠ ∅  (t marks a place u needs unmarked)
    std::vector<std::vector<std::uint32_t>> dependent_adj(T);
    std::vector<std::uint32_t> buffer;
    for (std::uint32_t t = 0; t < T; ++t) {
        buffer.clear();
        // forward: u that t can disable
        for (std::uint32_t p : toff_adj[t]) {
            buffer.insert(buffer.end(), requirers_adj[p].begin(),
                          requirers_adj[p].end());
        }
        for (std::uint32_t p : forbid_adj[t]) {
            buffer.insert(buffer.end(), producers_adj[p].begin(),
                          producers_adj[p].end());
        }
        // backward: u that can disable t
        for (std::uint32_t p : require_adj[t]) {
            buffer.insert(buffer.end(), unmarkers_adj[p].begin(),
                          unmarkers_adj[p].end());
        }
        for (std::uint32_t p : forbid_adj[t]) {
            buffer.insert(buffer.end(), producers_adj[p].begin(),
                          producers_adj[p].end());
        }
        std::sort(buffer.begin(), buffer.end());
        buffer.erase(std::unique(buffer.begin(), buffer.end()),
                     buffer.end());
        for (std::uint32_t u : buffer) {
            if (u != t) dependent_adj[t].push_back(u);
        }
    }
    dependent_ = build_csr(T, dependent_adj);

    // Visibility. A transition is visible when its firing can change a
    // watched predicate: for goals, the togglers of the declared support
    // places; for persistence, the togglers of the enabledness support
    // (require ∪ forbid) of both members of every non-exempt pair that
    // can statically conflict.
    visible_.assign(T, 0);
    for (const Predicate* goal : request.goals) {
        if (goal == nullptr) continue;
        if (goal->kind() == Predicate::Kind::Deadlock) continue;
        proviso_ = true;
        for (PlaceId p : *goal->support()) {
            mark_togglers_visible(p.value);
        }
    }
    if (request.check_persistence) {
        proviso_ = true;
        support_marked_.assign(T, 0);
        std::vector<std::uint32_t> stamp(T, 0);
        for (std::uint32_t t = 0; t < T; ++t) {
            buffer.clear();
            for (std::uint32_t p : toff_adj[t]) {
                for (std::uint32_t u : requirers_adj[p]) {
                    if (stamp[u] != t + 1) {
                        stamp[u] = t + 1;
                        buffer.push_back(u);
                    }
                }
            }
            for (std::uint32_t p : forbid_adj[t]) {
                for (std::uint32_t u : producers_adj[p]) {
                    if (stamp[u] != t + 1) {
                        stamp[u] = t + 1;
                        buffer.push_back(u);
                    }
                }
            }
            for (std::uint32_t u : buffer) {
                if (u == t) continue;
                if (request.persistence_exempt &&
                    request.persistence_exempt(*net_, TransitionId{t},
                                               TransitionId{u})) {
                    continue;
                }
                mark_enabledness_support_visible(t);
                mark_enabledness_support_visible(u);
            }
        }
    }
}

bool PorContext::reduce(const std::uint64_t* marking,
                        const std::uint64_t* enabled, std::uint64_t* ample,
                        Scratch& s) const {
    std::size_t enabled_count = 0;
    for (std::size_t w = 0; w < enabled_words_; ++w) {
        enabled_count += static_cast<std::size_t>(
            std::popcount(enabled[w]));
    }
    if (enabled_count < 2) return false;

    if (s.stamp.size() != transition_count_) {
        s.stamp.assign(transition_count_, 0);
        s.epoch = 0;
    }
    s.best.resize(enabled_words_);

    std::size_t best_count = enabled_count;
    bool found = false;
    int trials = 0;

    for (std::size_t w = 0; w < enabled_words_ && trials < kSeedTrials;
         ++w) {
        std::uint64_t bits = enabled[w];
        while (bits != 0 && trials < kSeedTrials) {
            const auto seed = static_cast<std::uint32_t>(
                w * kWordBits +
                static_cast<std::size_t>(std::countr_zero(bits)));
            bits &= bits - 1;
            ++trials;

            if (++s.epoch == 0) {
                std::fill(s.stamp.begin(), s.stamp.end(), 0);
                s.epoch = 1;
            }
            s.queue.clear();
            s.stamp[seed] = s.epoch;
            s.queue.push_back(seed);

            std::size_t amp = 0;
            bool aborted = false;
            for (std::size_t qi = 0; qi < s.queue.size(); ++qi) {
                const std::uint32_t u = s.queue[qi];
                if (test_bit(enabled, u)) {
                    // C2: a proper ample set may not fire a visible
                    // transition — and a closure that already matches the
                    // incumbent can't improve on it either way.
                    if ((proviso_ && visible_[u]) || ++amp >= best_count) {
                        aborted = true;
                        break;
                    }
                    for (std::uint32_t v : dependent_.row(u)) {
                        if (s.stamp[v] != s.epoch) {
                            s.stamp[v] = s.epoch;
                            s.queue.push_back(v);
                        }
                    }
                } else {
                    // D2: the necessary enablers of ONE unsatisfied
                    // condition — any sequence enabling u must first fire
                    // one of them. Smallest list wins, scan order breaks
                    // ties, so the choice is deterministic.
                    std::span<const std::uint32_t> chosen;
                    std::size_t chosen_size = SIZE_MAX;
                    for (std::uint32_t p : require_.row(u)) {
                        if (!test_bit(marking, p)) {
                            const auto row = producers_.row(p);
                            if (row.size() < chosen_size) {
                                chosen = row;
                                chosen_size = row.size();
                            }
                        }
                    }
                    for (std::uint32_t p : forbid_.row(u)) {
                        if (test_bit(marking, p)) {
                            const auto row = unmarkers_.row(p);
                            if (row.size() < chosen_size) {
                                chosen = row;
                                chosen_size = row.size();
                            }
                        }
                    }
                    // A disabled transition always has an unsatisfied
                    // condition; the enabled bitsets are maintained
                    // incrementally and proven equal to recomputation.
                    assert(chosen_size != SIZE_MAX);
                    for (std::uint32_t v : chosen) {
                        if (s.stamp[v] != s.epoch) {
                            s.stamp[v] = s.epoch;
                            s.queue.push_back(v);
                        }
                    }
                }
            }
            if (aborted || amp == 0 || amp >= best_count) continue;

            best_count = amp;
            found = true;
            std::fill(s.best.begin(), s.best.end(), 0);
            for (std::uint32_t u : s.queue) {
                if (test_bit(enabled, u)) set_bit(s.best.data(), u);
            }
            if (best_count == 1) break;
        }
        if (found && best_count == 1) break;
    }

    if (!found) return false;
    std::memcpy(ample, s.best.data(),
                enabled_words_ * sizeof(std::uint64_t));
    return true;
}

}  // namespace rap::petri
