#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "petri/por.hpp"

namespace rap::petri {

/// Serialized resume point of one reachability exploration: the interned
/// marking arena (payload + meta words, in dense id order), the BFS
/// cursor/frontier, and every per-pass verdict accumulator — enough that
/// an engine handed this object continues to the exact
/// `(states, edges, verdicts, witnesses)` of the uninterrupted run.
///
/// The on-disk format is versioned, checksummed and mmap-friendly: a
/// fixed-width little-endian header of 64-bit words, the variable-length
/// cursor arrays, then the record payload as one contiguous 8-byte-aligned
/// word run (by far the dominant section at the 100M-state tier — a
/// future reader can map it and hand the engine the mapping directly),
/// closed by an FNV-1a checksum over everything before it. `load` rejects
/// a bad magic/version, a truncated file and a checksum mismatch loudly
/// (std::runtime_error) — a corrupted checkpoint must never resume as a
/// silently wrong exploration.
///
/// What is deliberately NOT serialized: enabled-set rows (recomputed for
/// the frontier on resume — they are derived data and dominate transient
/// memory, not information) and memory statistics (machine-dependent).
class StoreCheckpoint {
public:
    /// Engine kind the checkpoint came from. The two engines' cursors
    /// mean different things (state index vs layer frontier), so a
    /// checkpoint only resumes on its own kind.
    enum class Engine : std::uint64_t {
        kSequential = 0,
        kParallel = 1,
    };

    /// One recorded persistence violation, by state id (materialized
    /// lazily at the end of the resumed pass, like in-pass ones).
    struct Violation {
        std::uint32_t state = 0;
        std::uint32_t depth = 0;  ///< BFS depth (parallel canonical sort)
        std::uint32_t fired = 0;
        std::uint32_t disabled = 0;
    };

    Engine engine = Engine::kSequential;
    /// CompiledNet::structure_digest() of the explored net. Resume
    /// refuses a mismatch: after a structural edit the interned ids mean
    /// nothing (a reconfiguration that only flips initial markings also
    /// changes record 0, caught separately).
    std::uint64_t structure_digest = 0;
    std::uint32_t marking_words = 0;
    std::uint32_t meta_words = 0;

    /// Interned records in dense id order, `marking_words + meta_words`
    /// words each (payload first, then the engine's meta words — witness
    /// links, depth). records.size() == record_count * that stride.
    std::uint64_t record_count = 0;
    std::vector<std::uint64_t> records;

    // -- pass counters / cursor ------------------------------------------
    std::uint64_t edges_explored = 0;
    /// Sequential cursor: next state index to expand, and the POR
    /// freshness watermark that goes with it.
    std::uint64_t head = 0;
    std::uint64_t next_layer_begin = 0;
    /// Parallel cursor: BFS depth of `frontier`, whose ids are the
    /// stitched, deterministic discovery-order frontier of that layer.
    std::uint64_t depth = 0;
    std::vector<std::uint32_t> frontier;

    // -- verdict accumulators --------------------------------------------
    /// Per-goal first-hit state id, UINT32_MAX while unmatched. Sized by
    /// the checkpointed query's goal count; resume refuses a query whose
    /// goal count differs.
    std::vector<std::uint32_t> goal_hits;
    std::vector<std::uint32_t> deadlocks;  ///< deadlocked state ids
    std::vector<Violation> violations;
    PorStats por;

    std::size_t record_stride() const noexcept {
        return static_cast<std::size_t>(marking_words) + meta_words;
    }
    const std::uint64_t* record(std::uint64_t id) const noexcept {
        return records.data() + id * record_stride();
    }

    /// Atomic save: writes `path + ".tmp"` then renames over `path`, so a
    /// crash mid-write leaves the previous checkpoint intact. Throws
    /// std::runtime_error on any IO failure.
    void save(const std::string& path) const;

    /// Loads and fully validates framing (magic, version, section
    /// lengths, trailing checksum). Structural/geometry validation
    /// against a net happens at resume time, where the net is known.
    static StoreCheckpoint load(const std::string& path);
};

}  // namespace rap::petri
