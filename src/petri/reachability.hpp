#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "petri/compiled.hpp"
#include "petri/net.hpp"
#include "petri/por.hpp"
#include "petri/predicate.hpp"

namespace rap::petri {

class ReuseStore;       // petri/reuse.hpp — cross-pass store retention
class StoreCheckpoint;  // petri/checkpoint.hpp — serialized resume point

/// A firing sequence from the initial marking, used as counterexample
/// witness (what MPSAT prints as a violation trace).
struct Trace {
    std::vector<TransitionId> firings;

    std::string to_string(const Net& net) const;
};

struct ReachabilityOptions {
    /// Exploration stops (with `truncated = true`) beyond this many states.
    std::size_t max_states = 2'000'000;
    /// When set, exploration stops at the first marking satisfying the
    /// goal predicate (for multi-goal queries: once every goal matched)
    /// instead of exhausting the state space.
    bool stop_at_first_match = true;
    /// Worker threads for ParallelReachabilityExplorer: 0 = one per
    /// hardware thread, 1 = the sequential engine's exact code path.
    /// ReachabilityExplorer itself is single-threaded and ignores this.
    std::size_t threads = 0;
    /// Frontier-only enabled-set cache (the memory diet that reaches the
    /// 19M-state OPE models): a state's enabled bitset is kept only while
    /// its BFS layer can still be expanded and is dropped once the layer
    /// is done, removing enabled_words() words from every resident record.
    /// Results are bit-identical either way — the bitsets of fully
    /// expanded layers are never read again.
    bool frontier_enabled_cache = true;
    /// Partial-order (stubborn-set) reduction: expand a property-aware
    /// stubborn subset of each state's enabled set instead of all of it
    /// (see petri::PorContext). Verdicts are preserved — deadlock sets
    /// exactly, goal reachability and the persistence verdict through
    /// visibility conditions plus the BFS-queue ignoring proviso — while
    /// the explored state count can shrink by large factors on highly
    /// concurrent nets. Under reduction, witnesses remain genuine firing
    /// sequences but need not be globally shortest, a goal's witness
    /// marking may differ from the full pass's, states_explored/
    /// edges_explored count the *reduced* graph (still deterministic
    /// across engines and thread counts), and collected persistence
    /// violations are a subset of the full pass's (non-emptiness — the
    /// verdict — is preserved). Passes carrying a goal with unknown
    /// support places fall back to full exploration (PorStats::active
    /// reports false).
    bool por = false;
    /// How ParallelReachabilityExplorer builds the canonical witness tree
    /// (ReachabilityExplorer is single-threaded and ignores this).
    enum class WitnessTree {
        /// Maintain a per-record canonical-min (depth, parent, via) meta
        /// word with a CAS on same-layer duplicate edges during
        /// exploration: traces are free at reconstruction time. The
        /// default — measured ~15-20% slower on clean passes that carry
        /// a goal (the maintenance only runs when a trace could be
        /// requested), while violated passes skip the re-sweep's extra
        /// serial O(edges) walk entirely (see bench_parallel).
        kCanonicalCas,
        /// PR-4 behaviour: one serial re-fire-and-probe sweep over the
        /// stored states when the first trace is requested. Clean passes
        /// pay nothing; every violated pass pays roughly one extra
        /// sequential exploration.
        kResweep,
    };
    WitnessTree witness_tree = WitnessTree::kCanonicalCas;
    /// Intra-layer scheduling of ParallelReachabilityExplorer workers:
    /// per-worker Chase-Lev deques with stealing (default), or the PR-4
    /// shared atomic-cursor chunking (kept as the bench baseline).
    bool work_stealing = true;
    /// Cooperative stop hook: polled by the sequential engine every 2048
    /// interned states AND every 256 expanded edges (states alone let a
    /// heavily POR-reduced or wide-state pass run far past a deadline),
    /// and by the parallel engine once per layer (in the barrier's
    /// serial step) plus every 256 edges per worker. Returning true ends
    /// the exploration early with `truncated = true` — the mechanism
    /// behind flow::Sweep cancellation and per-configuration timeouts.
    /// May be invoked concurrently from worker threads, so it must be
    /// thread-safe for const access (reading atomics / the clock, as the
    /// sweep's deadline hook does, is fine). Must not throw. Null (the
    /// default) never stops.
    std::function<bool()> stop;
    /// Cross-pass store retention (incremental re-verification): when
    /// set, the exploration attaches to this shared ReuseStore and
    /// claims resident markings per-pass instead of re-interning them —
    /// see petri/reuse.hpp for the contract. Results are bit-identical
    /// to a scratch pass at the same thread count. Falls back to scratch
    /// when the store's record dimensions don't match the net, or
    /// (parallel engine) when witness_tree != kCanonicalCas — counted in
    /// ReuseStore::fallbacks() and MultiResult::reuse_fallback so a
    /// topology change degrading every "incremental" pass to cold is
    /// visible. Passes sharing one ReuseStore must be externally
    /// sequenced.
    std::shared_ptr<ReuseStore> reuse;
    /// Compact interning layout (the 100M-state capacity tier): an
    /// id-less robin-hood table whose slots carry arena back-references,
    /// dropping the legacy per-id hash/pointer index and a quarter of the
    /// slot head-room (~30% of the non-record overhead; see
    /// MarkingStore/StoreStats). Exploration results are bit-identical to
    /// the default layout at every thread count. Ignored by reused passes
    /// — the attached ReuseStore owns its own (legacy) table.
    bool compact_store = false;
    /// When non-empty, the exploration periodically serializes a
    /// petri::StoreCheckpoint here (atomically: tmp file + rename) so a
    /// killed pass can resume instead of rerunning from t=0. The
    /// sequential engine checkpoints every `checkpoint_every` expanded
    /// states, the parallel engine every `checkpoint_every` completed BFS
    /// layers (in the barrier's serial step; it requires the default
    /// kCanonicalCas witness tree and no attached ReuseStore). A failed
    /// write aborts the pass with ExplorationAborted rather than run a
    /// soak whose "checkpoints" silently don't exist.
    std::string checkpoint_path;
    /// Checkpoint cadence (states for the sequential engine, layers for
    /// the parallel one); 0 picks a default (65536 states / 1 layer).
    std::size_t checkpoint_every = 0;
    /// Resume point: continue a previously checkpointed exploration
    /// instead of starting from the initial marking. The checkpoint must
    /// come from the same engine kind, net structure (structural digest)
    /// and record geometry — anything else throws std::runtime_error.
    /// The continued pass reproduces the uninterrupted run's
    /// (states, edges, verdicts, witnesses) exactly.
    std::shared_ptr<const StoreCheckpoint> resume;
};

/// Memory footprint of one exploration pass, for capacity planning at the
/// 19M-state scale (surfaced as ReachabilityResult/MultiResult::memory
/// and through verify::Verifier / flow::Design).
struct MemoryStats {
    std::size_t records = 0;        ///< interned markings
    std::size_t record_bytes = 0;   ///< arena-resident record payloads
    /// Records + interning table + id index + live enabled-set cache +
    /// frontier bookkeeping, at the end of the pass.
    std::size_t resident_bytes = 0;
    std::size_t peak_bytes = 0;  ///< max resident over the pass
    /// Interning-table geometry (layout, slots, load factor, table vs
    /// arena byte split) — the rap_store_* metrics source.
    StoreStats store;
};

/// Thrown when an exploration dies mid-pass — a goal predicate threw, a
/// checkpoint write failed — after states were already interned. Carries
/// the footprint at the moment of death so callers can still account for
/// partial-pass memory (flow::Sweep's peak-resident aggregation would
/// otherwise under-report exactly the contended runs that die).
class ExplorationAborted : public std::runtime_error {
public:
    ExplorationAborted(const std::string& what, MemoryStats stats)
        : std::runtime_error(what), memory(stats) {}

    MemoryStats memory;
};

struct ReachabilityResult {
    std::size_t states_explored = 0;
    std::size_t edges_explored = 0;
    bool truncated = false;
    MemoryStats memory;
    PorStats por;  ///< reduction statistics (inactive when por was off)

    /// Set when a goal predicate was supplied and matched. Always the
    /// *first* match in BFS order, i.e. a shortest witness, regardless of
    /// stop_at_first_match.
    std::optional<Marking> witness;
    std::optional<Trace> witness_trace;

    /// All deadlocked markings found (populated by find_deadlocks /
    /// explore-with-deadlock-goal).
    std::vector<Marking> deadlocks;

    bool found() const noexcept { return witness.has_value(); }
};

/// A persistence violation: at `marking`, `disabled` was enabled, then
/// firing `fired` withdrew its enabling. In speed-independent circuit
/// terms this is a potential hazard — the paper reports hunting exactly
/// these (plus deadlocks) in the OPE DFS models.
struct PersistenceViolation {
    Marking marking;
    TransitionId fired;
    TransitionId disabled;
    Trace trace_to_marking;

    std::string to_string(const Net& net) const;
};

/// One exploration, many questions: reachability goals, deadlock
/// collection and persistence checking share a single BFS pass instead of
/// re-exploring the state space per property.
struct MultiQuery {
    /// Goal predicates, each answered independently with its first
    /// (BFS-shortest) witness.
    std::vector<const Predicate*> goals;
    /// Collect every deadlocked marking (find_deadlocks semantics).
    bool collect_deadlocks = false;
    /// Check output persistence along every explored edge.
    bool check_persistence = false;
    /// Transition pairs for which mutual disabling is *intended* choice
    /// (see PersistenceOptions::exempt).
    std::function<bool(const Net&, TransitionId, TransitionId)>
        persistence_exempt;
    /// Stop the whole exploration at the first persistence violation.
    bool persistence_stop_at_first = false;
    /// Keep at most this many violations (exploration continues so other
    /// questions still get exact answers).
    std::size_t persistence_max_violations = SIZE_MAX;
};

struct MultiResult {
    std::size_t states_explored = 0;
    std::size_t edges_explored = 0;
    bool truncated = false;
    MemoryStats memory;
    PorStats por;  ///< reduction statistics (inactive when por was off)

    /// One entry per MultiQuery::goals entry, all sharing the pass's
    /// states/edges/truncated counters.
    std::vector<ReachabilityResult> goals;

    std::vector<Marking> deadlocks;
    std::vector<PersistenceViolation> persistence_violations;

    /// True when ReachabilityOptions::reuse was set but this pass ran
    /// scratch anyway (record-dimension mismatch after a topology change,
    /// or — parallel engine — a non-kCanonicalCas witness tree). The
    /// verdicts are still exact; the incremental speed-up silently is
    /// not, which is why verify::Verifier and flow::Sweep count these
    /// into rap_reuse_fallbacks_total.
    bool reuse_fallback = false;
};

/// Explicit-state breadth-first reachability over 1-safe nets, running on
/// a CompiledNet: word-masked enable tests, incremental enabled-set
/// maintenance through the affected-transition index, and an
/// arena-backed interned marking store (no per-state heap allocation on
/// the hot path).
///
/// BFS (rather than DFS) keeps witness traces shortest, which matters for
/// debuggability of DFS model bugs — the paper reports hand-analysing such
/// traces during the OPE design.
class ReachabilityExplorer {
public:
    explicit ReachabilityExplorer(const Net& net,
                                  ReachabilityOptions options = {});

    /// Runs on an externally owned CompiledNet instead of compiling the
    /// net again — the sharing hook behind verify::CompiledModel and
    /// flow::Design: N explorations (or N verifiers) amortise ONE compile.
    /// The artifact must outlive the explorer.
    explicit ReachabilityExplorer(const CompiledNet& compiled,
                                  ReachabilityOptions options = {});

    /// Searches for a marking satisfying `goal`.
    ReachabilityResult find(const Predicate& goal);

    /// Single-pass multi-goal search: one exploration answers every goal.
    /// Returns one result per goal (same order), each carrying the shared
    /// pass's state/edge counts.
    std::vector<ReachabilityResult> find_all(
        std::span<const Predicate* const> goals);

    /// Full control: goals + deadlock collection + persistence checking,
    /// all in one exploration.
    MultiResult run_query(const MultiQuery& query);

    /// Exhaustively explores and collects every deadlocked marking
    /// (respecting max_states).
    ReachabilityResult find_deadlocks();

    /// Exhaustively explores; returns state/edge counts only.
    ReachabilityResult explore_all();

    /// Number of distinct reachable markings (convenience over explore_all).
    std::size_t count_states();

    const CompiledNet& compiled() const noexcept { return *compiled_; }

private:
    static constexpr std::uint32_t kNoParent = UINT32_MAX;

    /// run_query on an attached ReuseStore: claims resident records in
    /// discovery order instead of interning into the private store_, so
    /// every answer (including discovery-ordered deadlock lists and
    /// first-hit witnesses) is bit-identical to the scratch pass.
    MultiResult run_query_reused(const MultiQuery& query, ReuseStore& reuse);

    /// The scratch-path pass body (private store_), factored out so
    /// run_query can convert a mid-pass failure into ExplorationAborted
    /// with the footprint at the moment of death attached.
    MultiResult run_query_scratch(const MultiQuery& query);

    Trace rebuild_trace(std::uint32_t index) const;
    Marking materialize(std::uint32_t id) const;

    const Net& net_;
    ReachabilityOptions options_;
    std::optional<CompiledNet> owned_;  ///< set by the Net constructor only
    const CompiledNet* compiled_;       ///< owned_ or the shared artifact
    /// Each record carries one meta word packing the predecessor link
    /// (parent id | via transition << 32), so witness-trace rebuilding
    /// reads the record itself and is independent of visiting order.
    MarkingStore store_;
};

}  // namespace rap::petri
