#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "petri/net.hpp"
#include "petri/predicate.hpp"

namespace rap::petri {

/// A firing sequence from the initial marking, used as counterexample
/// witness (what MPSAT prints as a violation trace).
struct Trace {
    std::vector<TransitionId> firings;

    std::string to_string(const Net& net) const;
};

struct ReachabilityOptions {
    /// Exploration stops (with `truncated = true`) beyond this many states.
    std::size_t max_states = 2'000'000;
    /// When set, exploration stops at the first marking satisfying the
    /// goal predicate instead of exhausting the state space.
    bool stop_at_first_match = true;
};

struct ReachabilityResult {
    std::size_t states_explored = 0;
    std::size_t edges_explored = 0;
    bool truncated = false;

    /// Set when a goal predicate was supplied and matched.
    std::optional<Marking> witness;
    std::optional<Trace> witness_trace;

    /// All deadlocked markings found (populated by find_deadlocks /
    /// explore-with-deadlock-goal).
    std::vector<Marking> deadlocks;

    bool found() const noexcept { return witness.has_value(); }
};

/// Explicit-state breadth-first reachability over 1-safe nets.
///
/// BFS (rather than DFS) keeps witness traces shortest, which matters for
/// debuggability of DFS model bugs — the paper reports hand-analysing such
/// traces during the OPE design.
class ReachabilityExplorer {
public:
    explicit ReachabilityExplorer(const Net& net,
                                  ReachabilityOptions options = {});

    /// Searches for a marking satisfying `goal`.
    ReachabilityResult find(const Predicate& goal);

    /// Exhaustively explores and collects every deadlocked marking
    /// (respecting max_states).
    ReachabilityResult find_deadlocks();

    /// Exhaustively explores; returns state/edge counts only.
    ReachabilityResult explore_all();

    /// Number of distinct reachable markings (convenience over explore_all).
    std::size_t count_states();

private:
    struct Visit {
        std::int64_t parent;       // index into visit order, -1 for root
        TransitionId via;          // transition fired from parent
    };

    ReachabilityResult run(const Predicate* goal, bool collect_deadlocks);
    Trace rebuild_trace(std::size_t index) const;

    const Net& net_;
    ReachabilityOptions options_;
    std::vector<Marking> order_;
    std::vector<Visit> meta_;
};

}  // namespace rap::petri
