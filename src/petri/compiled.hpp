#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "petri/net.hpp"
#include "util/arena.hpp"

namespace rap::petri {

/// Marking payload hash shared by the sequential and concurrent interning
/// stores: FNV-1a over the words plus a splitmix64 finisher (FNV alone
/// clusters under linear probing).
inline std::uint64_t hash_marking_words(const std::uint64_t* words,
                                        std::size_t count) noexcept {
    std::uint64_t h = 1469598103934665603ULL;
    for (std::size_t i = 0; i < count; ++i) {
        h ^= words[i];
        h *= 1099511628211ULL;
    }
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 27;
    h *= 0x94d049bb133111ebULL;
    h ^= h >> 31;
    return h;
}

/// Flattened, cache-friendly form of a Net for the reachability hot path.
///
/// Construction packs every transition's enabling condition and firing
/// effect into CSR-indexed (word, mask) term arrays over the marking's
/// 64-bit payload words:
///
///   enabled(t) <=> forall (w,m) in require(t): (marking[w] & m) == m
///               && forall (w,m) in forbid(t):  (marking[w] & m) == 0
///   fire(t):       marking[w] = (marking[w] & ~consume(t)) | produce(t)
///
/// `require` covers consume + read arcs, `forbid` the produce-only places
/// (1-safe contact-freeness) — mirroring Net::is_enabled exactly, but in
/// a handful of word ops instead of per-place bit probes.
///
/// An affected-transition index (per transition, the union over the
/// places its firing toggles of each place's dependent transitions)
/// enables incremental enabled-set maintenance: after firing t, only
/// affected(t) can change enabledness, so a successor's enabled set is
/// its parent's with just those bits re-tested.
class CompiledNet {
public:
    explicit CompiledNet(const Net& net);

    /// Delta compilation: compile `net` by patching `parent`'s arrays
    /// instead of packing from scratch. Transitions whose pre/post/read
    /// arcs match the parent's keep their CSR term rows verbatim (for a
    /// reconfiguration that only flips initial markings — the flow::Design
    /// set_depth case — that is *every* row, one bulk copy); changed
    /// transitions are repacked, and the affected-transition index is
    /// recomputed only where a changed arc can reach it. Falls back to a
    /// full build when the place/transition counts differ. The result is
    /// bit-identical to CompiledNet(net). `parent` (and its net) only
    /// needs to stay alive for the duration of this constructor.
    CompiledNet(const Net& net, const CompiledNet& parent);

    const Net& net() const noexcept { return *net_; }

    /// FNV-1a digest of the net's structure — place/transition counts and
    /// every arc, but NOT initial markings. Two nets that differ only in
    /// initial marking (a run-time reconfiguration) share it; it keys
    /// marking-store reuse and parent lookup for delta compilation.
    std::uint64_t structure_digest() const noexcept {
        return structure_digest_;
    }

    /// Structure digest of a net without compiling it.
    static std::uint64_t digest_structure(const Net& net) noexcept;
    std::size_t place_count() const noexcept { return place_count_; }
    std::size_t transition_count() const noexcept {
        return transition_count_;
    }

    /// 64-bit words per marking payload / per transition-enabled bitset.
    std::size_t marking_words() const noexcept { return marking_words_; }
    std::size_t enabled_words() const noexcept { return enabled_words_; }

    bool is_enabled(const std::uint64_t* marking,
                    TransitionId t) const noexcept;

    /// Fires `t` in place. Precondition: is_enabled(marking, t).
    void fire(std::uint64_t* marking, TransitionId t) const noexcept;

    /// Computes the full enabled bitset of `marking` into
    /// `out[0 .. enabled_words())` (bit i <=> transition i enabled).
    void enabled_set(const std::uint64_t* marking,
                     std::uint64_t* out) const noexcept;

    /// Incremental maintenance: given `marking` obtained by firing
    /// `fired`, refreshes in `enabled` (the parent's enabled bitset) the
    /// bits of exactly the transitions firing `fired` can have changed.
    void update_enabled(const std::uint64_t* marking, TransitionId fired,
                        std::uint64_t* enabled) const noexcept;

    /// Transitions whose enabledness can change when `t` fires,
    /// ascending by id.
    std::span<const std::uint32_t> affected(TransitionId t) const noexcept {
        return {affected_.data() + affected_off_[t.value],
                affected_.data() + affected_off_[t.value + 1]};
    }

private:
    struct Term {
        std::uint32_t word;
        std::uint64_t mask;
    };
    struct Effect {
        std::uint32_t word;
        std::uint64_t clear_mask;  // consume-arc places in this word
        std::uint64_t set_mask;    // produce-arc places in this word
    };

    void build_full(const Net& net);

    const Net* net_;
    std::size_t place_count_;
    std::size_t transition_count_;
    std::size_t marking_words_;
    std::size_t enabled_words_;
    std::uint64_t structure_digest_ = 0;

    // Per-transition CSR offsets into the shared term arrays; offsets
    // have transition_count_+1 entries each.
    std::vector<std::uint32_t> require_off_;
    std::vector<std::uint32_t> forbid_off_;
    std::vector<std::uint32_t> effect_off_;
    std::vector<Term> require_;
    std::vector<Term> forbid_;
    std::vector<Effect> effect_;

    std::vector<std::uint32_t> affected_off_;
    std::vector<std::uint32_t> affected_;
};

/// Interning-table geometry of one store, for capacity planning and the
/// rap_store_* metrics: how many slots the dedup table holds, how its
/// bytes split against the record arena, and whether the compact layout
/// is active.
struct StoreStats {
    bool compact = false;       ///< id-less robin-hood layout in use
    std::size_t records = 0;    ///< interned markings
    std::size_t slots = 0;      ///< dedup-table capacity (slots)
    std::size_t table_bytes = 0;  ///< table + any per-id hash index
    std::size_t arena_bytes = 0;  ///< record payload blocks
    double load_factor() const noexcept {
        return slots == 0 ? 0.0
                          : static_cast<double>(records) /
                                static_cast<double>(slots);
    }
};

/// Interned store of markings: fixed-size records in a WordArena, deduped
/// through an open-addressing (linear probing) hash set of record ids.
/// Ids are dense discovery-order indices, so BFS bookkeeping can run on
/// plain arrays. No per-marking heap allocation.
///
/// Two table layouts share this interface (ReachabilityOptions::
/// compact_store picks one; intern results are bit-identical either way
/// because dedup is exact and ids are assigned in discovery order):
///
/// - **Legacy** (default): linear probing at a 0.7 load ceiling plus a
///   per-id 8-byte hash index that makes rehashing table-only.
/// - **Compact**: robin-hood probing at a 7/8 load ceiling with NO per-id
///   index — the slot's arena back-reference doubles as identity, and a
///   rehash recomputes hashes from the records themselves. Saves the
///   whole id-index array and a quarter of the slot head-room (~30% of
///   the non-record overhead), the capacity tier's point.
///
/// Each record optionally carries `meta_words` extra payload words after
/// the marking (zero-initialised on intern, ignored by hashing and
/// dedup). The reachability engines keep per-state bookkeeping that must
/// survive any visiting order — predecessor links for witness traces —
/// directly in the record instead of in side arrays indexed by insertion
/// order.
class MarkingStore {
public:
    static constexpr std::uint32_t kNone = UINT32_MAX;

    explicit MarkingStore(std::size_t marking_words,
                          std::size_t meta_words = 0,
                          bool compact = false);

    std::size_t size() const noexcept { return count_; }
    const std::uint64_t* operator[](std::uint32_t id) const noexcept {
        return arena_[id];
    }

    /// The record's meta area: `meta_words()` words owned by the caller.
    std::uint64_t* meta(std::uint32_t id) noexcept {
        return arena_[id] + words_;
    }
    const std::uint64_t* meta(std::uint32_t id) const noexcept {
        return arena_[id] + words_;
    }
    std::size_t meta_words() const noexcept { return meta_words_; }

    struct InternResult {
        std::uint32_t id = kNone;  ///< kNone when the limit blocked insert
        bool inserted = false;
    };

    /// Looks `words` up; inserts when absent and size() < capacity_limit.
    InternResult intern(const std::uint64_t* words,
                        std::size_t capacity_limit);

    /// Drops every marking, keeping the arena blocks and table storage.
    void clear();

    /// Record payload bytes resident in the arena.
    std::size_t record_bytes() const noexcept {
        return arena_.resident_bytes();
    }

    /// Records + interning table + per-id hash index (empty in compact
    /// mode — that is the layout's saving).
    std::size_t resident_bytes() const noexcept {
        return record_bytes() +
               (table_.capacity() + hashes_.capacity()) *
                   sizeof(std::uint64_t);
    }

    bool compact() const noexcept { return compact_; }

    StoreStats stats() const noexcept {
        StoreStats s;
        s.compact = compact_;
        s.records = count_;
        s.slots = table_.size();
        s.table_bytes = (table_.capacity() + hashes_.capacity()) *
                        sizeof(std::uint64_t);
        s.arena_bytes = record_bytes();
        return s;
    }

private:
    std::uint64_t hash(const std::uint64_t* words) const noexcept;
    void grow();
    InternResult intern_compact(const std::uint64_t* words,
                                std::size_t capacity_limit);
    void insert_displacing(std::uint64_t entry, std::size_t slot,
                           std::size_t dist) noexcept;
    void grow_compact();

    // Table slots pack (hash fragment << 32 | id) so probes reject
    // non-matches without touching the arena or the hashes array. A real
    // entry never equals kEmptySlot: kNone is not a valid id.
    //
    // The two layouts keep different fragments. Legacy keeps the hash's
    // HIGH 32 bits (the home slot comes from the low bits, so the high
    // bits add rejection power). Compact keeps the LOW 32 bits, because
    // robin-hood probing must recover an entry's home slot from the slot
    // value alone (home = fragment & mask) to compute probe distances —
    // sound while the table holds <= 2^32 slots, far past the 100M-state
    // tier at 7/8 load.
    static constexpr std::uint64_t kEmptySlot = UINT64_MAX;
    static std::uint64_t pack(std::uint64_t h, std::uint32_t id) noexcept {
        return (h & 0xFFFFFFFF00000000ULL) | id;
    }
    static std::uint64_t pack_compact(std::uint64_t h,
                                      std::uint32_t id) noexcept {
        return (h << 32) | id;
    }

    std::size_t words_;
    std::size_t meta_words_;
    bool compact_;
    std::size_t count_ = 0;
    util::WordArena arena_;
    std::vector<std::uint64_t> hashes_;  // per id (legacy layout only)
    std::vector<std::uint64_t> table_;
};

}  // namespace rap::petri
