#include "petri/reachability.hpp"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <unordered_map>

#include "util/strings.hpp"

namespace rap::petri {

std::string Trace::to_string(const Net& net) const {
    std::vector<std::string> names;
    names.reserve(firings.size());
    for (TransitionId t : firings) names.push_back(net.transition_name(t));
    return util::join(names, " -> ");
}

ReachabilityExplorer::ReachabilityExplorer(const Net& net,
                                           ReachabilityOptions options)
    : net_(net), options_(options) {}

ReachabilityResult ReachabilityExplorer::find(const Predicate& goal) {
    return run(&goal, /*collect_deadlocks=*/false);
}

ReachabilityResult ReachabilityExplorer::find_deadlocks() {
    return run(nullptr, /*collect_deadlocks=*/true);
}

ReachabilityResult ReachabilityExplorer::explore_all() {
    return run(nullptr, /*collect_deadlocks=*/false);
}

std::size_t ReachabilityExplorer::count_states() {
    return explore_all().states_explored;
}

ReachabilityResult ReachabilityExplorer::run(const Predicate* goal,
                                             bool collect_deadlocks) {
    ReachabilityResult result;
    order_.clear();
    meta_.clear();

    std::unordered_map<Marking, std::size_t, util::BitVecHash> seen;
    std::deque<std::size_t> frontier;

    const Marking m0 = net_.initial_marking();
    order_.push_back(m0);
    meta_.push_back({-1, TransitionId{}});
    seen.emplace(m0, 0);
    frontier.push_back(0);

    auto check = [&](std::size_t index) -> bool {
        const Marking& m = order_[index];
        if (goal && (*goal)(net_, m)) {
            result.witness = m;
            result.witness_trace = rebuild_trace(index);
            return options_.stop_at_first_match;
        }
        if (collect_deadlocks && net_.is_deadlocked(m)) {
            result.deadlocks.push_back(m);
            if (!result.witness) {
                result.witness = m;
                result.witness_trace = rebuild_trace(index);
            }
        }
        return false;
    };

    if (check(0)) {
        result.states_explored = 1;
        return result;
    }

    while (!frontier.empty() && !result.truncated) {
        const std::size_t index = frontier.front();
        frontier.pop_front();
        const Marking current = order_[index];

        for (TransitionId t : net_.enabled_transitions(current)) {
            Marking next = current;
            net_.fire(next, t);
            ++result.edges_explored;
            if (seen.contains(next)) continue;
            if (order_.size() >= options_.max_states) {
                result.truncated = true;
                break;
            }
            seen.emplace(next, order_.size());
            order_.push_back(std::move(next));
            meta_.push_back({static_cast<std::int64_t>(index), t});
            frontier.push_back(order_.size() - 1);
            if (check(order_.size() - 1)) {
                result.states_explored = order_.size();
                return result;
            }
        }
    }

    result.states_explored = order_.size();
    return result;
}

Trace ReachabilityExplorer::rebuild_trace(std::size_t index) const {
    Trace trace;
    std::int64_t cursor = static_cast<std::int64_t>(index);
    while (cursor > 0) {
        const Visit& v = meta_[static_cast<std::size_t>(cursor)];
        trace.firings.push_back(v.via);
        cursor = v.parent;
    }
    std::reverse(trace.firings.begin(), trace.firings.end());
    return trace;
}

}  // namespace rap::petri
