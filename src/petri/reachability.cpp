#include "petri/reachability.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

#include "petri/checkpoint.hpp"
#include "petri/reuse.hpp"
#include "util/arena.hpp"
#include "util/strings.hpp"

namespace rap::petri {

namespace {

constexpr std::size_t kWordBits = util::BitVec::kWordBits;

void copy_words(std::uint64_t* dst, const std::uint64_t* src,
                std::size_t n) {
    if (n != 0) std::memcpy(dst, src, n * sizeof(std::uint64_t));
}

/// Predecessor link packed into the record's meta word: parent id in the
/// low half, the transition fired from it in the high half.
std::uint64_t pack_visit(std::uint32_t parent, std::uint32_t via) {
    return (std::uint64_t{via} << 32) | parent;
}

}  // namespace

std::string Trace::to_string(const Net& net) const {
    std::vector<std::string> names;
    names.reserve(firings.size());
    for (TransitionId t : firings) names.push_back(net.transition_name(t));
    return util::join(names, " -> ");
}

std::string PersistenceViolation::to_string(const Net& net) const {
    return util::format("firing '%s' disables '%s' at %s",
                        net.transition_name(fired).c_str(),
                        net.transition_name(disabled).c_str(),
                        net.describe_marking(marking).c_str());
}

ReachabilityExplorer::ReachabilityExplorer(const Net& net,
                                           ReachabilityOptions options)
    : net_(net),
      options_(options),
      owned_(std::in_place, net),
      compiled_(&*owned_),
      store_(compiled_->marking_words(), /*meta_words=*/1,
             options_.compact_store) {}

ReachabilityExplorer::ReachabilityExplorer(const CompiledNet& compiled,
                                           ReachabilityOptions options)
    : net_(compiled.net()),
      options_(options),
      compiled_(&compiled),
      store_(compiled.marking_words(), /*meta_words=*/1,
             options_.compact_store) {}

ReachabilityResult ReachabilityExplorer::find(const Predicate& goal) {
    MultiQuery query;
    query.goals = {&goal};
    return std::move(run_query(query).goals[0]);
}

std::vector<ReachabilityResult> ReachabilityExplorer::find_all(
    std::span<const Predicate* const> goals) {
    MultiQuery query;
    query.goals.assign(goals.begin(), goals.end());
    return std::move(run_query(query).goals);
}

ReachabilityResult ReachabilityExplorer::find_deadlocks() {
    const Predicate dead = Predicate::deadlock();
    MultiQuery query;
    query.goals = {&dead};
    query.collect_deadlocks = true;
    auto multi = run_query(query);
    ReachabilityResult result = std::move(multi.goals[0]);
    result.deadlocks = std::move(multi.deadlocks);
    return result;
}

ReachabilityResult ReachabilityExplorer::explore_all() {
    const auto multi = run_query(MultiQuery{});
    ReachabilityResult result;
    result.states_explored = multi.states_explored;
    result.edges_explored = multi.edges_explored;
    result.truncated = multi.truncated;
    result.memory = multi.memory;
    result.por = multi.por;
    return result;
}

std::size_t ReachabilityExplorer::count_states() {
    return explore_all().states_explored;
}

MultiResult ReachabilityExplorer::run_query(const MultiQuery& query) {
    if (options_.reuse != nullptr &&
        (!options_.checkpoint_path.empty() ||
         options_.resume != nullptr)) {
        // A shared ReuseStore's records outlive any single pass's resume
        // point; a checkpoint of it would resurrect other passes' states.
        throw std::runtime_error(
            "checkpoint: incompatible with a cross-pass ReuseStore");
    }
    if (options_.reuse && options_.reuse->attach(*compiled_, 1)) {
        try {
            return run_query_reused(query, *options_.reuse);
        } catch (const ExplorationAborted&) {
            throw;
        } catch (const std::exception& e) {
            MemoryStats stats;
            const ConcurrentMarkingStore& s = options_.reuse->store();
            stats.records = s.size();
            stats.record_bytes = s.record_bytes();
            stats.resident_bytes = s.resident_bytes();
            stats.peak_bytes = stats.resident_bytes;
            throw ExplorationAborted(e.what(), stats);
        }
    }
    try {
        MultiResult result = run_query_scratch(query);
        // Scratch although reuse was requested: a dimension-mismatched
        // store after a topology change. Surfaced (not silent) so
        // flow-level counters can see incremental sweeps going cold.
        result.reuse_fallback = options_.reuse != nullptr;
        return result;
    } catch (const ExplorationAborted&) {
        throw;
    } catch (const std::exception& e) {
        // The pass died mid-exploration (a goal predicate threw, a
        // checkpoint write failed). The interned footprint is real and
        // still resident — attach it so accounting survives the abort.
        MemoryStats stats;
        stats.records = store_.size();
        stats.record_bytes = store_.record_bytes();
        stats.resident_bytes = store_.resident_bytes();
        stats.peak_bytes = stats.resident_bytes;
        stats.store = store_.stats();
        throw ExplorationAborted(e.what(), stats);
    }
}

MultiResult ReachabilityExplorer::run_query_scratch(
    const MultiQuery& query) {
    MultiResult result;
    result.goals.resize(query.goals.size());

    const std::size_t mwords = compiled_->marking_words();
    const std::size_t twords = compiled_->enabled_words();
    const std::size_t cap = std::max<std::size_t>(options_.max_states, 1);

    store_.clear();

    // Enabled bitset per state, maintained incrementally: a successor's
    // set is its parent's with only affected(fired) re-tested. Record i
    // belongs to marking id i (both grow in discovery order).
    util::WordArena enabled_store(twords);

    std::vector<std::uint32_t> goal_hit(query.goals.size(), kNoParent);
    std::size_t unmatched = query.goals.size();
    const bool can_early_stop = options_.stop_at_first_match &&
                                !query.collect_deadlocks &&
                                !query.check_persistence &&
                                !query.goals.empty();

    // Verdicts accumulate as state ids and are materialized only at the
    // end of the pass: witness links in the records are immutable once
    // written, so late materialization is bit-identical — and an id list
    // is exactly what a checkpoint can carry.
    std::vector<std::uint32_t> deadlock_ids;
    std::vector<StoreCheckpoint::Violation> violation_ids;

    // Reused scratch buffers — the hot loop performs no heap allocation.
    Marking scratch(net_.place_count());
    const std::size_t scratch_words = scratch.word_count();
    std::vector<std::uint64_t> child(std::max<std::size_t>(mwords, 1), 0);

    // Partial-order reduction context: static dependency/visibility
    // tables for this query's properties. Reset when the pass cannot
    // bound a goal's visible transitions (unknown support) — reduction
    // then silently degrades to full exploration.
    std::optional<PorContext> por;
    PorContext::Scratch por_scratch;
    std::vector<std::uint64_t> ample;
    if (options_.por) {
        PorRequest request;
        request.goals = query.goals;
        request.check_persistence = query.check_persistence;
        request.persistence_exempt = query.persistence_exempt;
        por.emplace(*compiled_, request);
        if (por->active()) {
            ample.resize(twords);
        } else {
            por.reset();
        }
    }
    result.por.active = por.has_value();

    bool stop = false;

    // Discovery-time evaluation: deadlock collection and every pending
    // goal, each recording only its *first* (BFS-shortest) hit.
    auto visit = [&](std::uint32_t id) {
        const std::uint64_t* enabled = enabled_store[id];
        bool dead = true;
        for (std::size_t w = 0; w < twords; ++w) {
            if (enabled[w] != 0) {
                dead = false;
                break;
            }
        }
        if (dead && query.collect_deadlocks) {
            deadlock_ids.push_back(id);
        }
        if (unmatched != 0) {
            bool scratch_ready = false;
            for (std::size_t g = 0; g < query.goals.size(); ++g) {
                if (goal_hit[g] != kNoParent) continue;
                const Predicate& goal = *query.goals[g];
                bool match = false;
                if (goal.kind() == Predicate::Kind::Deadlock) {
                    match = dead;
                } else {
                    if (!scratch_ready) {
                        copy_words(scratch.word_data(), store_[id],
                                   scratch_words);
                        scratch_ready = true;
                    }
                    match = goal(net_, scratch);
                }
                if (match) {
                    goal_hit[g] = id;
                    --unmatched;
                }
            }
        }
        if (can_early_stop && unmatched == 0) stop = true;
    };

    const Marking m0 = net_.initial_marking();
    std::uint32_t start_head = 0;
    std::uint32_t next_layer_begin = 1;
    if (options_.resume == nullptr) {
        copy_words(child.data(), m0.word_data(), m0.word_count());
        const auto root = store_.intern(child.data(), cap);
        store_.meta(root.id)[0] = pack_visit(kNoParent, 0);
        enabled_store.push_zero();
        compiled_->enabled_set(store_[root.id], enabled_store[root.id]);
        visit(root.id);
    } else {
        const StoreCheckpoint& ckpt = *options_.resume;
        if (ckpt.engine != StoreCheckpoint::Engine::kSequential) {
            throw std::runtime_error(
                "resume: checkpoint was written by the parallel engine");
        }
        if (ckpt.structure_digest != compiled_->structure_digest()) {
            throw std::runtime_error(
                "resume: checkpoint structural digest does not match this "
                "net — the interned ids describe a different structure");
        }
        if (ckpt.marking_words != mwords || ckpt.meta_words != 1) {
            throw std::runtime_error(
                "resume: checkpoint record geometry does not match");
        }
        if (ckpt.record_count == 0 || ckpt.record_count > cap ||
            ckpt.head > ckpt.record_count ||
            ckpt.next_layer_begin > ckpt.record_count) {
            throw std::runtime_error(
                "resume: checkpoint cursor is out of range for this "
                "pass's max_states");
        }
        if (ckpt.goal_hits.size() != query.goals.size()) {
            throw std::runtime_error(
                "resume: checkpoint goal count does not match the query");
        }
        copy_words(child.data(), m0.word_data(), m0.word_count());
        if (std::memcmp(ckpt.record(0), child.data(),
                        mwords * sizeof(std::uint64_t)) != 0) {
            throw std::runtime_error(
                "resume: checkpoint root marking differs from this net's "
                "initial marking (reconfigured since the checkpoint?)");
        }
        // Re-intern in id order: dense discovery-order ids make the store
        // rebuild layout-independent — a checkpoint written under either
        // table layout resumes under either.
        for (std::uint64_t id = 0; id < ckpt.record_count; ++id) {
            const std::uint64_t* rec = ckpt.record(id);
            const auto interned = store_.intern(rec, cap);
            if (!interned.inserted || interned.id != id) {
                throw std::runtime_error(
                    "resume: checkpoint records are not unique dense-id "
                    "markings — corrupted or foreign checkpoint");
            }
            store_.meta(interned.id)[0] = rec[mwords];
        }
        start_head = static_cast<std::uint32_t>(ckpt.head);
        next_layer_begin =
            static_cast<std::uint32_t>(ckpt.next_layer_begin);
        result.edges_explored = ckpt.edges_explored;
        const bool por_active = result.por.active;
        result.por = ckpt.por;
        result.por.active = por_active;
        goal_hit = ckpt.goal_hits;
        unmatched = 0;
        for (std::uint32_t hit : goal_hit) {
            if (hit == kNoParent) ++unmatched;
        }
        if (can_early_stop && unmatched == 0) stop = true;
        deadlock_ids = ckpt.deadlocks;
        violation_ids = ckpt.violations;
        // Enabled rows are derived data: skip the (released, never read
        // again) prefix and recompute only the live frontier's rows.
        enabled_store.skip_to(start_head);
        for (std::uint64_t id = start_head; id < ckpt.record_count;
             ++id) {
            enabled_store.push_zero();
            compiled_->enabled_set(store_[id], enabled_store[id]);
        }
    }

    auto resident_now = [&]() {
        return store_.resident_bytes() + enabled_store.resident_bytes();
    };
    std::size_t peak_bytes = resident_now();
    // Peak sampling keys off the allocation geometry, not a head-index
    // stride: the resident footprint only moves when an arena gains a
    // block or the interning table grows, so re-sampling whenever this
    // signature changes captures every spike — including ones between
    // release_before boundaries that stride sampling misses.
    std::size_t geometry_sig =
        enabled_store.allocated_blocks() + store_.resident_bytes();

    const std::size_t save_every = options_.checkpoint_every != 0
                                       ? options_.checkpoint_every
                                       : std::size_t{1} << 16;

    // The BFS frontier is implicit: ids are dense discovery-order
    // indices and the queue is FIFO, so the frontier is exactly the id
    // range [head, store_.size()).
    const std::size_t rpb = enabled_store.records_per_block();
    // POR freshness watermark: ids below `next_layer_begin` belong to
    // the current or an earlier BFS layer (expanded or being expanded),
    // ids at or above it were discovered this layer and will only be
    // expanded in the next one. The parallel engine derives the same
    // predicate from per-record depth words, so both engines accept the
    // same ample sets and explore the identical reduced graph.
    for (std::uint32_t head = start_head; head < store_.size() && !stop;
         ++head) {
        if (options_.stop && (head & 2047u) == 0 && options_.stop()) {
            // Cooperative stop (sweep cancellation / timeout): report the
            // pass as truncated — whatever was explored is inconclusive.
            result.truncated = true;
            break;
        }
        if (!options_.checkpoint_path.empty() && head != start_head &&
            head % save_every == 0) {
            StoreCheckpoint ckpt;
            ckpt.engine = StoreCheckpoint::Engine::kSequential;
            ckpt.structure_digest = compiled_->structure_digest();
            ckpt.marking_words = static_cast<std::uint32_t>(mwords);
            ckpt.meta_words = 1;
            ckpt.record_count = store_.size();
            ckpt.records.reserve(store_.size() * (mwords + 1));
            for (std::uint32_t id = 0; id < store_.size(); ++id) {
                const std::uint64_t* rec = store_[id];
                ckpt.records.insert(ckpt.records.end(), rec,
                                    rec + mwords + 1);
            }
            ckpt.edges_explored = result.edges_explored;
            ckpt.head = head;
            ckpt.next_layer_begin = next_layer_begin;
            ckpt.goal_hits = goal_hit;
            ckpt.deadlocks = deadlock_ids;
            ckpt.violations = violation_ids;
            ckpt.por = result.por;
            ckpt.save(options_.checkpoint_path);
        }
        if (options_.frontier_enabled_cache && head % rpb == 0) {
            // Frontier-only enabled-set cache: every state below `head`
            // is fully expanded and its bitset will never be read again,
            // so whole blocks behind the frontier go back to the
            // allocator (witness traces walk the records' meta words,
            // which stay).
            peak_bytes = std::max(peak_bytes, resident_now());
            enabled_store.release_before(head);
        }
        if (head == next_layer_begin) {
            next_layer_begin = static_cast<std::uint32_t>(store_.size());
        }
        const std::uint64_t* marking = store_[head];
        const std::uint64_t* enabled = enabled_store[head];

        // Persistence under reduction is checked per STATE over the full
        // enabled set (the bitsets are always maintained in full — POR
        // only masks which bits get expanded), so every reduced-reachable
        // state reports exactly the violations the full engine finds
        // there. Without POR the check rides on the expansion edges below.
        const bool persistence_prepass = por && query.check_persistence;
        bool fresh_seen = false;

        auto expand_edge = [&](TransitionId t, bool check_edges) {
            // Edge-counter stop poll: the head poll below fires every
            // 2048 *states*, which a heavily reduced (or truncated-at-
            // capacity) pass may take arbitrarily long to advance by —
            // deadlines must also trip on expansion work itself.
            if (options_.stop && (result.edges_explored & 255u) == 0 &&
                options_.stop()) {
                result.truncated = true;
                stop = true;
                return;
            }
            ++result.edges_explored;
            copy_words(child.data(), marking, mwords);
            compiled_->fire(child.data(), t);

            if (check_edges && query.check_persistence &&
                violation_ids.size() < query.persistence_max_violations) {
                for (std::uint32_t u : compiled_->affected(t)) {
                    if (u == t.value) continue;
                    if (((enabled[u / kWordBits] >> (u % kWordBits)) &
                         1) == 0) {
                        continue;  // u was not enabled before t fired
                    }
                    const TransitionId ut{u};
                    if (compiled_->is_enabled(child.data(), ut)) continue;
                    if (query.persistence_exempt &&
                        query.persistence_exempt(net_, t, ut)) {
                        continue;
                    }
                    violation_ids.push_back({head, 0, t.value, u});
                    if (query.persistence_stop_at_first) {
                        stop = true;
                        return;
                    }
                    if (violation_ids.size() >=
                        query.persistence_max_violations) {
                        break;
                    }
                }
            }

            const auto interned = store_.intern(child.data(), cap);
            if (interned.id == MarkingStore::kNone) {
                // max_states hit mid-expansion: report truncation and
                // stop with states_explored == max_states exactly.
                result.truncated = true;
                stop = true;
                return;
            }
            if (interned.id >= next_layer_begin) fresh_seen = true;
            if (!interned.inserted) return;

            store_.meta(interned.id)[0] = pack_visit(head, t.value);
            enabled_store.push(enabled);
            compiled_->update_enabled(child.data(), t,
                                      enabled_store[interned.id]);
            const std::size_t sig =
                enabled_store.allocated_blocks() + store_.resident_bytes();
            if (sig != geometry_sig) {
                // An arena block or table growth just landed: sample the
                // spike at the boundary where it happens.
                geometry_sig = sig;
                peak_bytes = std::max(peak_bytes, resident_now());
            }
            visit(interned.id);
        };

        auto expand_bits = [&](const std::uint64_t* bits_src,
                               const std::uint64_t* minus,
                               bool check_edges) {
            for (std::size_t w = 0; w < twords && !stop; ++w) {
                std::uint64_t bits = bits_src[w];
                if (minus != nullptr) bits &= ~minus[w];
                while (bits != 0 && !stop) {
                    const TransitionId t{static_cast<std::uint32_t>(
                        w * kWordBits +
                        static_cast<std::size_t>(std::countr_zero(bits)))};
                    bits &= bits - 1;
                    expand_edge(t, check_edges);
                }
            }
        };

        if (persistence_prepass &&
            violation_ids.size() < query.persistence_max_violations) {
            for (std::size_t w = 0; w < twords && !stop; ++w) {
                std::uint64_t bits = enabled[w];
                while (bits != 0 && !stop) {
                    const TransitionId t{static_cast<std::uint32_t>(
                        w * kWordBits +
                        static_cast<std::size_t>(std::countr_zero(bits)))};
                    bits &= bits - 1;
                    copy_words(child.data(), marking, mwords);
                    compiled_->fire(child.data(), t);
                    for (std::uint32_t u : compiled_->affected(t)) {
                        if (u == t.value) continue;
                        if (((enabled[u / kWordBits] >> (u % kWordBits)) &
                             1) == 0) {
                            continue;
                        }
                        const TransitionId ut{u};
                        if (compiled_->is_enabled(child.data(), ut)) {
                            continue;
                        }
                        if (query.persistence_exempt &&
                            query.persistence_exempt(net_, t, ut)) {
                            continue;
                        }
                        violation_ids.push_back({head, 0, t.value, u});
                        if (query.persistence_stop_at_first) {
                            stop = true;
                            break;
                        }
                        if (violation_ids.size() >=
                            query.persistence_max_violations) {
                            break;
                        }
                    }
                    if (violation_ids.size() >=
                        query.persistence_max_violations) {
                        break;
                    }
                }
            }
            if (stop) break;
        }

        bool reduced = false;
        std::size_t enabled_count = 0;
        std::size_t ample_count = 0;
        if (por) {
            for (std::size_t w = 0; w < twords; ++w) {
                enabled_count += static_cast<std::size_t>(
                    std::popcount(enabled[w]));
            }
            reduced = por->reduce(marking, enabled, ample.data(),
                                  por_scratch);
            ++result.por.expansions;
            result.por.enabled_transitions += enabled_count;
            if (reduced) {
                ++result.por.reduced_expansions;
                for (std::size_t w = 0; w < twords; ++w) {
                    ample_count += static_cast<std::size_t>(
                        std::popcount(ample[w]));
                }
            }
            result.por.expanded_transitions +=
                reduced ? ample_count : enabled_count;
        }

        expand_bits(reduced ? ample.data() : enabled, nullptr,
                    /*check_edges=*/!persistence_prepass);

        // Ignoring proviso (BFS-queue flavour): a visibility-sensitive
        // pass may not postpone the ignored transitions forever. If no
        // stubborn successor is fresh — none will be expanded in a later
        // layer — widen this state back to the full enabled set.
        if (reduced && por->proviso_needed() && !fresh_seen && !stop) {
            ++result.por.proviso_expansions;
            result.por.expanded_transitions += enabled_count - ample_count;
            expand_bits(enabled, ample.data(),
                        /*check_edges=*/false);
        }
    }

    result.states_explored = store_.size();
    result.memory.records = store_.size();
    result.memory.record_bytes = store_.record_bytes();
    result.memory.resident_bytes = resident_now();
    result.memory.peak_bytes =
        std::max(peak_bytes, result.memory.resident_bytes);
    result.memory.store = store_.stats();
    result.deadlocks.reserve(deadlock_ids.size());
    for (std::uint32_t id : deadlock_ids) {
        result.deadlocks.push_back(materialize(id));
    }
    result.persistence_violations.reserve(violation_ids.size());
    for (const StoreCheckpoint::Violation& v : violation_ids) {
        result.persistence_violations.push_back(
            {materialize(v.state), TransitionId{v.fired},
             TransitionId{v.disabled}, rebuild_trace(v.state)});
    }
    for (std::size_t g = 0; g < query.goals.size(); ++g) {
        ReachabilityResult& r = result.goals[g];
        r.states_explored = result.states_explored;
        r.edges_explored = result.edges_explored;
        r.truncated = result.truncated;
        r.memory = result.memory;
        r.por = result.por;
        if (goal_hit[g] != kNoParent) {
            r.witness = materialize(goal_hit[g]);
            r.witness_trace = rebuild_trace(goal_hit[g]);
        }
    }
    return result;
}

MultiResult ReachabilityExplorer::run_query_reused(const MultiQuery& query,
                                                   ReuseStore& reuse) {
    MultiResult result;
    result.goals.resize(query.goals.size());

    const std::size_t mwords = compiled_->marking_words();
    const std::size_t twords = compiled_->enabled_words();
    const std::size_t cap = std::max<std::size_t>(options_.max_states, 1);
    ConcurrentMarkingStore& store = reuse.store();
    const std::uint64_t epoch = reuse.begin_pass();
    const std::size_t row_off = mwords + 2;

    // Discovery order of this pass: order[i] is the id claimed i-th.
    // Scratch ids ARE discovery order, so running every per-state loop
    // over `order` positions reproduces the scratch pass bit-for-bit —
    // deadlock lists, goal first-hits, trace shapes — whatever ids the
    // resident store already assigned the markings.
    std::vector<std::uint32_t> order;
    order.reserve(std::min<std::size_t>(cap, 4096));

    std::vector<std::uint32_t> goal_hit(query.goals.size(), kNoParent);
    std::size_t unmatched = query.goals.size();
    const bool can_early_stop = options_.stop_at_first_match &&
                                !query.collect_deadlocks &&
                                !query.check_persistence &&
                                !query.goals.empty();

    Marking scratch(net_.place_count());
    const std::size_t scratch_words = scratch.word_count();
    std::vector<std::uint64_t> child(std::max<std::size_t>(mwords, 1), 0);

    std::optional<PorContext> por;
    PorContext::Scratch por_scratch;
    std::vector<std::uint64_t> ample;
    if (options_.por) {
        PorRequest request;
        request.goals = query.goals;
        request.check_persistence = query.check_persistence;
        request.persistence_exempt = query.persistence_exempt;
        por.emplace(*compiled_, request);
        if (por->active()) {
            ample.resize(twords);
        } else {
            por.reset();
        }
    }
    result.por.active = por.has_value();

    bool stop = false;

    auto materialize_id = [&](std::uint32_t id) {
        Marking m(net_.place_count());
        copy_words(m.word_data(), store[id], m.word_count());
        return m;
    };
    auto trace_of = [&](std::uint32_t id) {
        // Same walk as rebuild_trace, over the shared records' link
        // word: every ancestor was claimed this pass, so every link on
        // the path was (re)written this pass.
        Trace trace;
        std::uint32_t cursor = id;
        for (;;) {
            const std::uint64_t visit = store[cursor][mwords];
            const auto parent = static_cast<std::uint32_t>(visit);
            if (parent == kNoParent) break;
            trace.firings.push_back(
                TransitionId{static_cast<std::uint32_t>(visit >> 32)});
            cursor = parent;
        }
        std::reverse(trace.firings.begin(), trace.firings.end());
        return trace;
    };

    auto visit = [&](std::uint32_t id, const std::uint64_t* enabled) {
        bool dead = true;
        for (std::size_t w = 0; w < twords; ++w) {
            if (enabled[w] != 0) {
                dead = false;
                break;
            }
        }
        if (dead && query.collect_deadlocks) {
            result.deadlocks.push_back(materialize_id(id));
        }
        if (unmatched != 0) {
            bool scratch_ready = false;
            for (std::size_t g = 0; g < query.goals.size(); ++g) {
                if (goal_hit[g] != kNoParent) continue;
                const Predicate& goal = *query.goals[g];
                bool match = false;
                if (goal.kind() == Predicate::Kind::Deadlock) {
                    match = dead;
                } else {
                    if (!scratch_ready) {
                        copy_words(scratch.word_data(), store[id],
                                   scratch_words);
                        scratch_ready = true;
                    }
                    match = goal(net_, scratch);
                }
                if (match) {
                    goal_hit[g] = id;
                    --unmatched;
                }
            }
        }
        if (can_early_stop && unmatched == 0) stop = true;
    };

    // Claims a record this pass (claim word = epoch | discovery index),
    // refreshing its witness link and — when the geometry changed since
    // the row was cached — its enabled row. Single-threaded pass: plain
    // relaxed stores, no CAS.
    auto claim = [&](std::uint32_t id, std::uint64_t link,
                     const std::uint64_t* parent_row, TransitionId via) {
        reuse.ensure_capacity(id + 1);
        reuse.claim(id).store(
            (epoch << 32) | static_cast<std::uint32_t>(order.size()),
            std::memory_order_relaxed);
        std::uint64_t* record = store.record_mut(id);
        record[mwords] = link;
        std::uint64_t* row = record + row_off;
        if (!reuse.row_valid(id)) {
            if (parent_row != nullptr) {
                copy_words(row, parent_row, twords);
                compiled_->update_enabled(child.data(), via, row);
            } else {
                compiled_->enabled_set(record, row);
            }
            reuse.set_row_valid(id);
        }
        order.push_back(id);
        visit(id, row);
    };

    const Marking m0 = net_.initial_marking();
    copy_words(child.data(), m0.word_data(), m0.word_count());
    store.reserve(store.size() + 1);
    const auto root = store.intern(child.data(), 0, store.size() + 1);
    claim(root.id, pack_visit(kNoParent, 0), nullptr, TransitionId{0});

    std::size_t peak_bytes = store.resident_bytes();

    std::uint32_t next_layer_begin = 1;
    for (std::uint32_t head = 0;
         head < static_cast<std::uint32_t>(order.size()) && !stop; ++head) {
        if (options_.stop && (head & 2047u) == 0 && options_.stop()) {
            result.truncated = true;
            break;
        }
        if (head == next_layer_begin) {
            next_layer_begin = static_cast<std::uint32_t>(order.size());
        }
        const std::uint32_t head_id = order[head];
        const std::uint64_t* marking = store[head_id];
        const std::uint64_t* enabled = store[head_id] + row_off;

        const bool persistence_prepass = por && query.check_persistence;
        bool fresh_seen = false;

        auto expand_edge = [&](TransitionId t, bool check_edges) {
            if (options_.stop && (result.edges_explored & 255u) == 0 &&
                options_.stop()) {
                result.truncated = true;
                stop = true;
                return;
            }
            ++result.edges_explored;
            copy_words(child.data(), marking, mwords);
            compiled_->fire(child.data(), t);

            if (check_edges && query.check_persistence &&
                result.persistence_violations.size() <
                    query.persistence_max_violations) {
                for (std::uint32_t u : compiled_->affected(t)) {
                    if (u == t.value) continue;
                    if (((enabled[u / kWordBits] >> (u % kWordBits)) &
                         1) == 0) {
                        continue;
                    }
                    const TransitionId ut{u};
                    if (compiled_->is_enabled(child.data(), ut)) continue;
                    if (query.persistence_exempt &&
                        query.persistence_exempt(net_, t, ut)) {
                        continue;
                    }
                    result.persistence_violations.push_back(
                        {materialize_id(head_id), t, ut,
                         trace_of(head_id)});
                    if (query.persistence_stop_at_first) {
                        stop = true;
                        return;
                    }
                    if (result.persistence_violations.size() >=
                        query.persistence_max_violations) {
                        break;
                    }
                }
            }

            store.reserve(store.size() + 1);
            const auto interned =
                store.intern(child.data(), 0, store.size() + 1);
            reuse.ensure_capacity(interned.id + 1);
            const std::uint64_t cl =
                reuse.claim(interned.id).load(std::memory_order_relaxed);
            if ((cl >> 32) == epoch) {
                // Reached earlier this pass. Next-layer rediscoveries
                // count as POR progress, exactly like the scratch
                // engine's id watermark.
                if (static_cast<std::uint32_t>(cl) >= next_layer_begin) {
                    fresh_seen = true;
                }
                return;
            }
            if (order.size() >= cap) {
                // The scratch pass would have failed this intern on
                // max_states: same truncation point, states_explored ==
                // max_states exactly. (The marking may have been
                // physically interned above — harmless resident
                // pollution a later pass can still claim.)
                result.truncated = true;
                stop = true;
                return;
            }
            fresh_seen = true;
            claim(interned.id, pack_visit(head_id, t.value), enabled, t);
        };

        auto expand_bits = [&](const std::uint64_t* bits_src,
                               const std::uint64_t* minus,
                               bool check_edges) {
            for (std::size_t w = 0; w < twords && !stop; ++w) {
                std::uint64_t bits = bits_src[w];
                if (minus != nullptr) bits &= ~minus[w];
                while (bits != 0 && !stop) {
                    const TransitionId t{static_cast<std::uint32_t>(
                        w * kWordBits +
                        static_cast<std::size_t>(std::countr_zero(bits)))};
                    bits &= bits - 1;
                    expand_edge(t, check_edges);
                }
            }
        };

        if (persistence_prepass &&
            result.persistence_violations.size() <
                query.persistence_max_violations) {
            for (std::size_t w = 0; w < twords && !stop; ++w) {
                std::uint64_t bits = enabled[w];
                while (bits != 0 && !stop) {
                    const TransitionId t{static_cast<std::uint32_t>(
                        w * kWordBits +
                        static_cast<std::size_t>(std::countr_zero(bits)))};
                    bits &= bits - 1;
                    copy_words(child.data(), marking, mwords);
                    compiled_->fire(child.data(), t);
                    for (std::uint32_t u : compiled_->affected(t)) {
                        if (u == t.value) continue;
                        if (((enabled[u / kWordBits] >> (u % kWordBits)) &
                             1) == 0) {
                            continue;
                        }
                        const TransitionId ut{u};
                        if (compiled_->is_enabled(child.data(), ut)) {
                            continue;
                        }
                        if (query.persistence_exempt &&
                            query.persistence_exempt(net_, t, ut)) {
                            continue;
                        }
                        result.persistence_violations.push_back(
                            {materialize_id(head_id), t, ut,
                             trace_of(head_id)});
                        if (query.persistence_stop_at_first) {
                            stop = true;
                            break;
                        }
                        if (result.persistence_violations.size() >=
                            query.persistence_max_violations) {
                            break;
                        }
                    }
                    if (result.persistence_violations.size() >=
                        query.persistence_max_violations) {
                        break;
                    }
                }
            }
            if (stop) break;
        }

        bool reduced = false;
        std::size_t enabled_count = 0;
        std::size_t ample_count = 0;
        if (por) {
            for (std::size_t w = 0; w < twords; ++w) {
                enabled_count +=
                    static_cast<std::size_t>(std::popcount(enabled[w]));
            }
            reduced = por->reduce(marking, enabled, ample.data(),
                                  por_scratch);
            ++result.por.expansions;
            result.por.enabled_transitions += enabled_count;
            if (reduced) {
                ++result.por.reduced_expansions;
                for (std::size_t w = 0; w < twords; ++w) {
                    ample_count += static_cast<std::size_t>(
                        std::popcount(ample[w]));
                }
            }
            result.por.expanded_transitions +=
                reduced ? ample_count : enabled_count;
        }

        expand_bits(reduced ? ample.data() : enabled, nullptr,
                    /*check_edges=*/!persistence_prepass);

        if (reduced && por->proviso_needed() && !fresh_seen && !stop) {
            ++result.por.proviso_expansions;
            result.por.expanded_transitions += enabled_count - ample_count;
            expand_bits(enabled, ample.data(), /*check_edges=*/false);
        }
    }

    result.states_explored = order.size();
    // Memory reports the *shared* store's residency: records accumulated
    // across every pass that reused it, not just this pass's claims.
    result.memory.records = store.size();
    result.memory.record_bytes = store.record_bytes();
    result.memory.resident_bytes = store.resident_bytes();
    result.memory.peak_bytes =
        std::max(peak_bytes, result.memory.resident_bytes);
    result.memory.store = store.stats();
    for (std::size_t g = 0; g < query.goals.size(); ++g) {
        ReachabilityResult& r = result.goals[g];
        r.states_explored = result.states_explored;
        r.edges_explored = result.edges_explored;
        r.truncated = result.truncated;
        r.memory = result.memory;
        r.por = result.por;
        if (goal_hit[g] != kNoParent) {
            r.witness = materialize_id(goal_hit[g]);
            r.witness_trace = trace_of(goal_hit[g]);
        }
    }
    return result;
}

Trace ReachabilityExplorer::rebuild_trace(std::uint32_t index) const {
    // Predecessor links live in the records themselves, so the walk only
    // depends on what each record stores — not on any side array being
    // aligned with the store's insertion order.
    Trace trace;
    std::uint32_t cursor = index;
    for (;;) {
        const std::uint64_t visit = store_.meta(cursor)[0];
        const auto parent = static_cast<std::uint32_t>(visit);
        if (parent == kNoParent) break;
        trace.firings.push_back(TransitionId{
            static_cast<std::uint32_t>(visit >> 32)});
        cursor = parent;
    }
    std::reverse(trace.firings.begin(), trace.firings.end());
    return trace;
}

Marking ReachabilityExplorer::materialize(std::uint32_t id) const {
    Marking m(net_.place_count());
    copy_words(m.word_data(), store_[id], m.word_count());
    return m;
}

}  // namespace rap::petri
