#pragma once

#include <string>

#include "petri/net.hpp"

namespace rap::petri {

/// Renders the net in Graphviz DOT: circles for places (doubled border
/// when initially marked), boxes for transitions, dashed edges for read
/// arcs — the textual analogue of Fig. 3/4 in the paper.
std::string to_dot(const Net& net);

}  // namespace rap::petri
