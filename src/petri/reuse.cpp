#include "petri/reuse.hpp"

#include <algorithm>

namespace rap::petri {

bool ReuseStore::attach(const CompiledNet& compiled, std::size_t workers) {
    const std::size_t mwords = compiled.marking_words();
    const std::size_t twords = compiled.enabled_words();
    const std::size_t want_workers = std::max<std::size_t>(workers, 1);
    if (!store_) {
        mwords_ = mwords;
        twords_ = twords;
        digest_ = compiled.structure_digest();
        // Layout: marking + two witness meta words + the enabled row.
        store_.emplace(mwords_, 2 + twords_, want_workers);
        return true;
    }
    if (mwords != mwords_ || twords != twords_) {
        ++fallbacks_;
        return false;
    }
    store_->ensure_workers(want_workers);
    if (compiled.structure_digest() != digest_) {
        digest_ = compiled.structure_digest();
        ++geometry_rev_;
        ++invalidations_;
    }
    return true;
}

void ReuseStore::ensure_capacity(std::size_t n) {
    if (n <= claim_cap_) return;
    std::size_t cap = std::max<std::size_t>(claim_cap_ * 2, 1024);
    cap = std::max(cap, n);
    // make_unique value-initialises: fresh claims read epoch 0, which
    // begin_pass() never returns — never-claimed is the natural default.
    auto claims = std::make_unique<std::atomic<std::uint64_t>[]>(cap);
    for (std::size_t i = 0; i < claim_cap_; ++i) {
        claims[i].store(claims_[i].load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    }
    claims_ = std::move(claims);
    row_rev_.resize(cap, 0);  // revision 0 is always stale
    claim_cap_ = cap;
}

}  // namespace rap::petri
