#pragma once

#include <string>

#include "petri/net.hpp"

namespace rap::petri {

/// Exports the net in the ASTG/.g format consumed by petrify, punf/MPSAT
/// and Workcraft — the interchange point with the asynchronous-EDA
/// ecosystem the paper's tool-chain plugs into. Read arcs are expanded
/// into consume/produce self-loop pairs (the standard encoding, since .g
/// has no native read arcs); all transitions are emitted as dummies (the
/// net is a behavioural semantics, not a signal transition graph).
std::string to_astg(const Net& net);

}  // namespace rap::petri
