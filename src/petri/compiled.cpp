#include "petri/compiled.hpp"

#include <algorithm>
#include <cstring>

#include "util/bitvec.hpp"

namespace rap::petri {

namespace {

constexpr std::size_t kWordBits = util::BitVec::kWordBits;

/// Collapses a sorted place list into per-word masks, appended to `out`.
template <typename TermT, typename Assign>
void pack_terms(const std::vector<PlaceId>& places, std::vector<TermT>& out,
                std::size_t first, Assign assign) {
    for (PlaceId p : places) {
        const std::uint32_t word =
            static_cast<std::uint32_t>(p.value / kWordBits);
        const std::uint64_t bit = std::uint64_t{1} << (p.value % kWordBits);
        if (out.size() > first && out.back().word == word) {
            assign(out.back(), bit);
        } else {
            TermT term{};
            term.word = word;
            assign(term, bit);
            out.push_back(term);
        }
    }
}

/// FNV-1a over a length-prefixed id list — the structure digest's
/// building block (length prefixes keep adjacent lists unambiguous).
void fold_places(std::uint64_t& h, const std::vector<PlaceId>& places) {
    constexpr std::uint64_t kPrime = 1099511628211ULL;
    h ^= places.size();
    h *= kPrime;
    for (PlaceId p : places) {
        h ^= p.value;
        h *= kPrime;
    }
}

}  // namespace

std::uint64_t CompiledNet::digest_structure(const Net& net) noexcept {
    std::uint64_t h = 14695981039346656037ULL;
    constexpr std::uint64_t kPrime = 1099511628211ULL;
    h ^= net.place_count();
    h *= kPrime;
    h ^= net.transition_count();
    h *= kPrime;
    for (std::uint32_t ti = 0;
         ti < static_cast<std::uint32_t>(net.transition_count()); ++ti) {
        const TransitionId t{ti};
        fold_places(h, net.preset(t));
        fold_places(h, net.postset(t));
        fold_places(h, net.readset(t));
    }
    return h;
}

CompiledNet::CompiledNet(const Net& net)
    : net_(&net),
      place_count_(net.place_count()),
      transition_count_(net.transition_count()),
      marking_words_(util::BitVec::words_for_bits(place_count_)),
      enabled_words_(util::BitVec::words_for_bits(transition_count_)),
      structure_digest_(digest_structure(net)) {
    build_full(net);
}

CompiledNet::CompiledNet(const Net& net, const CompiledNet& parent)
    : net_(&net),
      place_count_(net.place_count()),
      transition_count_(net.transition_count()),
      marking_words_(util::BitVec::words_for_bits(place_count_)),
      enabled_words_(util::BitVec::words_for_bits(transition_count_)),
      structure_digest_(digest_structure(net)) {
    if (place_count_ != parent.place_count_ ||
        transition_count_ != parent.transition_count_) {
        build_full(net);
        return;
    }
    const Net& pnet = parent.net();

    std::vector<bool> changed(transition_count_, false);
    bool any_changed = false;
    for (std::uint32_t ti = 0; ti < transition_count_; ++ti) {
        const TransitionId t{ti};
        if (net.preset(t) != pnet.preset(t) ||
            net.postset(t) != pnet.postset(t) ||
            net.readset(t) != pnet.readset(t)) {
            changed[ti] = true;
            any_changed = true;
        }
    }
    if (!any_changed) {
        // The set_depth fast path: same structure, different initial
        // marking — every compiled array carries over verbatim.
        require_off_ = parent.require_off_;
        forbid_off_ = parent.forbid_off_;
        effect_off_ = parent.effect_off_;
        require_ = parent.require_;
        forbid_ = parent.forbid_;
        effect_ = parent.effect_;
        affected_off_ = parent.affected_off_;
        affected_ = parent.affected_;
        return;
    }

    // Places whose dependent-transition set can differ from the
    // parent's: everything touched by a changed transition's arcs, old
    // or new shape.
    std::vector<bool> changed_place(place_count_, false);
    const auto mark_places = [&](const std::vector<PlaceId>& places) {
        for (PlaceId p : places) changed_place[p.value] = true;
    };
    for (std::uint32_t ti = 0; ti < transition_count_; ++ti) {
        if (!changed[ti]) continue;
        const TransitionId t{ti};
        mark_places(net.preset(t));
        mark_places(net.postset(t));
        mark_places(net.readset(t));
        mark_places(pnet.preset(t));
        mark_places(pnet.postset(t));
        mark_places(pnet.readset(t));
    }

    // Splice the term CSR: unchanged transitions copy their parent rows
    // wholesale, changed ones repack from the new arcs.
    require_off_.reserve(transition_count_ + 1);
    forbid_off_.reserve(transition_count_ + 1);
    effect_off_.reserve(transition_count_ + 1);
    std::vector<std::vector<std::uint32_t>> dependents(place_count_);
    std::vector<PlaceId> require_places;
    std::vector<PlaceId> forbid_places;
    for (std::uint32_t ti = 0; ti < transition_count_; ++ti) {
        const TransitionId t{ti};
        require_off_.push_back(static_cast<std::uint32_t>(require_.size()));
        forbid_off_.push_back(static_cast<std::uint32_t>(forbid_.size()));
        effect_off_.push_back(static_cast<std::uint32_t>(effect_.size()));

        const auto& pre = net.preset(t);
        const auto& post = net.postset(t);
        const auto& read = net.readset(t);
        require_places.clear();
        std::set_union(pre.begin(), pre.end(), read.begin(), read.end(),
                       std::back_inserter(require_places));
        forbid_places.clear();
        std::set_difference(post.begin(), post.end(), pre.begin(),
                            pre.end(), std::back_inserter(forbid_places));

        if (!changed[ti]) {
            require_.insert(
                require_.end(),
                parent.require_.begin() + parent.require_off_[ti],
                parent.require_.begin() + parent.require_off_[ti + 1]);
            forbid_.insert(
                forbid_.end(),
                parent.forbid_.begin() + parent.forbid_off_[ti],
                parent.forbid_.begin() + parent.forbid_off_[ti + 1]);
            effect_.insert(
                effect_.end(),
                parent.effect_.begin() + parent.effect_off_[ti],
                parent.effect_.begin() + parent.effect_off_[ti + 1]);
        } else {
            pack_terms(require_places, require_, require_off_.back(),
                       [](Term& term, std::uint64_t bit) {
                           term.mask |= bit;
                       });
            pack_terms(forbid_places, forbid_, forbid_off_.back(),
                       [](Term& term, std::uint64_t bit) {
                           term.mask |= bit;
                       });
            pack_terms(pre, effect_, effect_off_.back(),
                       [](Effect& e, std::uint64_t bit) {
                           e.clear_mask |= bit;
                       });
            for (PlaceId p : post) {
                const std::uint32_t word =
                    static_cast<std::uint32_t>(p.value / kWordBits);
                const std::uint64_t bit = std::uint64_t{1}
                                          << (p.value % kWordBits);
                auto it = std::find_if(
                    effect_.begin() + effect_off_.back(), effect_.end(),
                    [word](const Effect& e) { return e.word == word; });
                if (it == effect_.end()) {
                    effect_.push_back({word, 0, bit});
                } else {
                    it->set_mask |= bit;
                }
            }
        }

        for (PlaceId p : require_places) dependents[p.value].push_back(ti);
        for (PlaceId p : forbid_places) dependents[p.value].push_back(ti);
    }
    require_off_.push_back(static_cast<std::uint32_t>(require_.size()));
    forbid_off_.push_back(static_cast<std::uint32_t>(forbid_.size()));
    effect_off_.push_back(static_cast<std::uint32_t>(effect_.size()));

    // affected(t) only moves when t itself changed or one of the places
    // it toggles gained/lost a dependent; other rows copy over.
    affected_off_.reserve(transition_count_ + 1);
    std::vector<PlaceId> toggled;
    std::vector<std::uint32_t> scratch;
    for (std::uint32_t ti = 0; ti < transition_count_; ++ti) {
        const TransitionId t{ti};
        const auto& pre = net.preset(t);
        const auto& post = net.postset(t);
        toggled.clear();
        std::set_symmetric_difference(pre.begin(), pre.end(), post.begin(),
                                      post.end(),
                                      std::back_inserter(toggled));
        affected_off_.push_back(static_cast<std::uint32_t>(affected_.size()));
        bool stale = changed[ti];
        for (PlaceId p : toggled) {
            if (changed_place[p.value]) {
                stale = true;
                break;
            }
        }
        if (!stale) {
            affected_.insert(
                affected_.end(),
                parent.affected_.begin() + parent.affected_off_[ti],
                parent.affected_.begin() + parent.affected_off_[ti + 1]);
            continue;
        }
        scratch.clear();
        for (PlaceId p : toggled) {
            scratch.insert(scratch.end(), dependents[p.value].begin(),
                           dependents[p.value].end());
        }
        std::sort(scratch.begin(), scratch.end());
        scratch.erase(std::unique(scratch.begin(), scratch.end()),
                      scratch.end());
        affected_.insert(affected_.end(), scratch.begin(), scratch.end());
    }
    affected_off_.push_back(static_cast<std::uint32_t>(affected_.size()));
}

void CompiledNet::build_full(const Net& net) {
    require_off_.reserve(transition_count_ + 1);
    forbid_off_.reserve(transition_count_ + 1);
    effect_off_.reserve(transition_count_ + 1);

    // Place -> transitions whose enabledness depends on that place's
    // token (consume / read / produce-contact). Built densely first, then
    // flattened per transition into the affected-transition CSR.
    std::vector<std::vector<std::uint32_t>> dependents(place_count_);

    std::vector<PlaceId> require_places;
    std::vector<PlaceId> forbid_places;
    for (std::uint32_t ti = 0; ti < transition_count_; ++ti) {
        const TransitionId t{ti};
        const auto& pre = net.preset(t);
        const auto& post = net.postset(t);
        const auto& read = net.readset(t);

        require_off_.push_back(static_cast<std::uint32_t>(require_.size()));
        forbid_off_.push_back(static_cast<std::uint32_t>(forbid_.size()));
        effect_off_.push_back(static_cast<std::uint32_t>(effect_.size()));

        // require = pre ∪ read (both sorted; merge keeps word order).
        require_places.clear();
        std::set_union(pre.begin(), pre.end(), read.begin(), read.end(),
                       std::back_inserter(require_places));
        pack_terms(require_places, require_, require_off_.back(),
                   [](Term& term, std::uint64_t bit) { term.mask |= bit; });

        // forbid = post ∖ pre (contact-freeness).
        forbid_places.clear();
        std::set_difference(post.begin(), post.end(), pre.begin(),
                            pre.end(), std::back_inserter(forbid_places));
        pack_terms(forbid_places, forbid_, forbid_off_.back(),
                   [](Term& term, std::uint64_t bit) { term.mask |= bit; });

        // Firing effect, word-aligned across consume and produce masks.
        pack_terms(pre, effect_, effect_off_.back(),
                   [](Effect& e, std::uint64_t bit) { e.clear_mask |= bit; });
        for (PlaceId p : post) {
            const std::uint32_t word =
                static_cast<std::uint32_t>(p.value / kWordBits);
            const std::uint64_t bit = std::uint64_t{1}
                                      << (p.value % kWordBits);
            auto it = std::find_if(
                effect_.begin() + effect_off_.back(), effect_.end(),
                [word](const Effect& e) { return e.word == word; });
            if (it == effect_.end()) {
                effect_.push_back({word, 0, bit});
            } else {
                it->set_mask |= bit;
            }
        }

        for (PlaceId p : require_places) dependents[p.value].push_back(ti);
        for (PlaceId p : forbid_places) dependents[p.value].push_back(ti);
    }
    require_off_.push_back(static_cast<std::uint32_t>(require_.size()));
    forbid_off_.push_back(static_cast<std::uint32_t>(forbid_.size()));
    effect_off_.push_back(static_cast<std::uint32_t>(effect_.size()));

    // affected(t) = union of dependents over the places whose marking a
    // firing of t actually toggles: the symmetric difference of pre and
    // post (pre ∩ post places end up marked again).
    affected_off_.reserve(transition_count_ + 1);
    std::vector<PlaceId> toggled;
    std::vector<std::uint32_t> scratch;
    for (std::uint32_t ti = 0; ti < transition_count_; ++ti) {
        const TransitionId t{ti};
        const auto& pre = net.preset(t);
        const auto& post = net.postset(t);
        toggled.clear();
        std::set_symmetric_difference(pre.begin(), pre.end(), post.begin(),
                                      post.end(),
                                      std::back_inserter(toggled));
        scratch.clear();
        for (PlaceId p : toggled) {
            scratch.insert(scratch.end(), dependents[p.value].begin(),
                           dependents[p.value].end());
        }
        std::sort(scratch.begin(), scratch.end());
        scratch.erase(std::unique(scratch.begin(), scratch.end()),
                      scratch.end());
        affected_off_.push_back(static_cast<std::uint32_t>(affected_.size()));
        affected_.insert(affected_.end(), scratch.begin(), scratch.end());
    }
    affected_off_.push_back(static_cast<std::uint32_t>(affected_.size()));
}

bool CompiledNet::is_enabled(const std::uint64_t* marking,
                             TransitionId t) const noexcept {
    for (std::uint32_t i = require_off_[t.value];
         i < require_off_[t.value + 1]; ++i) {
        const Term& term = require_[i];
        if ((marking[term.word] & term.mask) != term.mask) return false;
    }
    for (std::uint32_t i = forbid_off_[t.value]; i < forbid_off_[t.value + 1];
         ++i) {
        const Term& term = forbid_[i];
        if ((marking[term.word] & term.mask) != 0) return false;
    }
    return true;
}

void CompiledNet::fire(std::uint64_t* marking,
                       TransitionId t) const noexcept {
    for (std::uint32_t i = effect_off_[t.value]; i < effect_off_[t.value + 1];
         ++i) {
        const Effect& e = effect_[i];
        marking[e.word] = (marking[e.word] & ~e.clear_mask) | e.set_mask;
    }
}

void CompiledNet::enabled_set(const std::uint64_t* marking,
                              std::uint64_t* out) const noexcept {
    std::memset(out, 0, enabled_words_ * sizeof(std::uint64_t));
    for (std::uint32_t ti = 0; ti < transition_count_; ++ti) {
        if (is_enabled(marking, TransitionId{ti})) {
            out[ti / kWordBits] |= std::uint64_t{1} << (ti % kWordBits);
        }
    }
}

void CompiledNet::update_enabled(const std::uint64_t* marking,
                                 TransitionId fired,
                                 std::uint64_t* enabled) const noexcept {
    for (std::uint32_t ti : affected(fired)) {
        const std::uint64_t bit = std::uint64_t{1} << (ti % kWordBits);
        if (is_enabled(marking, TransitionId{ti})) {
            enabled[ti / kWordBits] |= bit;
        } else {
            enabled[ti / kWordBits] &= ~bit;
        }
    }
}

// ------------------------------------------------------- MarkingStore --

MarkingStore::MarkingStore(std::size_t marking_words,
                           std::size_t meta_words, bool compact)
    : words_(std::max<std::size_t>(marking_words, 1)),
      meta_words_(meta_words),
      compact_(compact),
      arena_(words_ + meta_words_),
      table_(std::size_t{1} << 12, kEmptySlot) {}

std::uint64_t MarkingStore::hash(const std::uint64_t* words)
    const noexcept {
    return hash_marking_words(words, words_);
}

void MarkingStore::grow() {
    // 4x growth keeps rehash counts low; stored hashes make each rehash
    // a table-only operation (no arena reads).
    std::vector<std::uint64_t> table(table_.size() * 4, kEmptySlot);
    const std::size_t mask = table.size() - 1;
    for (std::uint32_t id = 0; id < count_; ++id) {
        std::size_t slot = static_cast<std::size_t>(hashes_[id]) & mask;
        while (table[slot] != kEmptySlot) slot = (slot + 1) & mask;
        table[slot] = pack(hashes_[id], id);
    }
    table_ = std::move(table);
}

// -- compact (robin-hood) layout -----------------------------------------

void MarkingStore::insert_displacing(std::uint64_t entry, std::size_t slot,
                                     std::size_t dist) noexcept {
    // Robin-hood displacement: a probing entry evicts any resident whose
    // own probe distance is shorter, then carries the evictee forward.
    // Probe-length variance stays tiny even at 7/8 load, which is what
    // lets the compact layout drop the legacy head-room.
    const std::size_t mask = table_.size() - 1;
    while (true) {
        const std::uint64_t cur = table_[slot];
        if (cur == kEmptySlot) {
            table_[slot] = entry;
            return;
        }
        const std::size_t cur_home =
            static_cast<std::size_t>(cur >> 32) & mask;
        const std::size_t cur_dist = (slot - cur_home) & mask;
        if (cur_dist < dist) {
            table_[slot] = entry;
            entry = cur;
            dist = cur_dist;
        }
        slot = (slot + 1) & mask;
        ++dist;
    }
}

void MarkingStore::grow_compact() {
    // No per-id hash index to lean on: recompute each record's hash from
    // the arena. 2x growth — rehash cost is paid from the bytes the
    // missing index saves, and the marking arena is never released here,
    // so every record is readable.
    table_.assign(table_.size() * 2, kEmptySlot);
    const std::size_t mask = table_.size() - 1;
    for (std::uint32_t id = 0; id < count_; ++id) {
        const std::uint64_t h = hash(arena_[id]);
        insert_displacing(pack_compact(h, id),
                          static_cast<std::size_t>(h) & mask, 0);
    }
}

MarkingStore::InternResult MarkingStore::intern_compact(
    const std::uint64_t* words, std::size_t capacity_limit) {
    const std::size_t mask = table_.size() - 1;
    const std::uint64_t h = hash(words);
    const auto fragment = static_cast<std::uint32_t>(h);
    std::size_t slot = static_cast<std::size_t>(h) & mask;
    std::size_t dist = 0;
    while (true) {
        const std::uint64_t entry = table_[slot];
        if (entry == kEmptySlot) break;
        const auto efrag = static_cast<std::uint32_t>(entry >> 32);
        const std::size_t edist =
            (slot - (static_cast<std::size_t>(efrag) & mask)) & mask;
        // Invariant slot: every resident past this point sits closer to
        // its home than `words` would — absence is proven without
        // probing to an empty slot.
        if (edist < dist) break;
        if (efrag == fragment) {
            const auto id = static_cast<std::uint32_t>(entry);
            if (std::memcmp(arena_[id], words,
                            words_ * sizeof(std::uint64_t)) == 0) {
                return {id, false};
            }
        }
        slot = (slot + 1) & mask;
        ++dist;
    }
    if (count_ >= capacity_limit) return {kNone, false};
    const auto id = static_cast<std::uint32_t>(arena_.push_zero());
    std::memcpy(arena_[id], words, words_ * sizeof(std::uint64_t));
    insert_displacing(pack_compact(h, id), slot, dist);
    ++count_;
    if (count_ * 8 >= table_.size() * 7) grow_compact();
    return {id, true};
}

MarkingStore::InternResult MarkingStore::intern(
    const std::uint64_t* words, std::size_t capacity_limit) {
    if (compact_) return intern_compact(words, capacity_limit);
    const std::size_t mask = table_.size() - 1;
    const std::uint64_t h = hash(words);
    const std::uint64_t fragment = h & 0xFFFFFFFF00000000ULL;
    std::size_t slot = static_cast<std::size_t>(h) & mask;
    while (table_[slot] != kEmptySlot) {
        const std::uint64_t entry = table_[slot];
        if ((entry & 0xFFFFFFFF00000000ULL) == fragment) {
            const auto id = static_cast<std::uint32_t>(entry);
            if (std::memcmp(arena_[id], words,
                            words_ * sizeof(std::uint64_t)) == 0) {
                return {id, false};
            }
        }
        slot = (slot + 1) & mask;
    }
    if (count_ >= capacity_limit) return {kNone, false};
    // Record = marking payload + zeroed meta area (the arena record is
    // wider than the interned key when meta_words_ > 0).
    const auto id = static_cast<std::uint32_t>(arena_.push_zero());
    std::memcpy(arena_[id], words, words_ * sizeof(std::uint64_t));
    hashes_.push_back(h);
    table_[slot] = pack(h, id);
    ++count_;
    // Keep the load factor below ~0.7 so linear probes stay short.
    if (count_ * 10 >= table_.size() * 7) grow();
    return {id, true};
}

void MarkingStore::clear() {
    arena_.clear();
    hashes_.clear();
    count_ = 0;
    std::fill(table_.begin(), table_.end(), kEmptySlot);
}

}  // namespace rap::petri
