#include "petri/dot.hpp"

#include "util/dot.hpp"

namespace rap::petri {

std::string to_dot(const Net& net) {
    util::DotWriter dot(net.name());
    const Marking m0 = net.initial_marking();
    for (std::uint32_t i = 0; i < net.place_count(); ++i) {
        const PlaceId p{i};
        std::vector<std::string> attrs = {
            "shape=circle",
            "label=" + util::DotWriter::quote(net.place_name(p))};
        if (m0.get(i)) attrs.push_back("peripheries=2");
        dot.add_node("p_" + net.place_name(p), attrs);
    }
    for (std::uint32_t i = 0; i < net.transition_count(); ++i) {
        const TransitionId t{i};
        dot.add_node("t_" + net.transition_name(t),
                     {"shape=box",
                      "label=" + util::DotWriter::quote(
                                     net.transition_name(t))});
        for (PlaceId p : net.preset(t)) {
            dot.add_edge("p_" + net.place_name(p),
                         "t_" + net.transition_name(t));
        }
        for (PlaceId p : net.postset(t)) {
            dot.add_edge("t_" + net.transition_name(t),
                         "p_" + net.place_name(p));
        }
        for (PlaceId p : net.readset(t)) {
            dot.add_edge("p_" + net.place_name(p),
                         "t_" + net.transition_name(t),
                         {"style=dashed", "arrowhead=none"});
        }
    }
    return dot.str();
}

}  // namespace rap::petri
