#include "petri/net.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace rap::petri {

PlaceId Net::add_place(std::string_view name, bool initially_marked) {
    places_.push_back({std::string(name), initially_marked});
    return PlaceId{static_cast<std::uint32_t>(places_.size() - 1)};
}

TransitionId Net::add_transition(std::string_view name) {
    transitions_.push_back({std::string(name), {}, {}, {}});
    return TransitionId{static_cast<std::uint32_t>(transitions_.size() - 1)};
}

namespace {

void insert_sorted(std::vector<PlaceId>& v, PlaceId p) {
    const auto it = std::lower_bound(v.begin(), v.end(), p);
    if (it != v.end() && *it == p) {
        throw std::invalid_argument("duplicate arc in Petri net");
    }
    v.insert(it, p);
}

}  // namespace

void Net::add_input_arc(PlaceId p, TransitionId t) {
    assert(p.value < places_.size() && t.value < transitions_.size());
    insert_sorted(transitions_[t.value].pre, p);
}

void Net::add_output_arc(TransitionId t, PlaceId p) {
    assert(p.value < places_.size() && t.value < transitions_.size());
    insert_sorted(transitions_[t.value].post, p);
}

void Net::add_read_arc(PlaceId p, TransitionId t) {
    assert(p.value < places_.size() && t.value < transitions_.size());
    insert_sorted(transitions_[t.value].read, p);
}

std::size_t Net::arc_count() const noexcept {
    std::size_t n = 0;
    for (const auto& t : transitions_) {
        n += t.pre.size() + t.post.size() + t.read.size();
    }
    return n;
}

const std::string& Net::place_name(PlaceId p) const {
    return places_.at(p.value).name;
}

const std::string& Net::transition_name(TransitionId t) const {
    return transitions_.at(t.value).name;
}

std::optional<PlaceId> Net::find_place(std::string_view name) const {
    for (std::size_t i = 0; i < places_.size(); ++i) {
        if (places_[i].name == name) {
            return PlaceId{static_cast<std::uint32_t>(i)};
        }
    }
    return std::nullopt;
}

std::optional<TransitionId> Net::find_transition(std::string_view name) const {
    for (std::size_t i = 0; i < transitions_.size(); ++i) {
        if (transitions_[i].name == name) {
            return TransitionId{static_cast<std::uint32_t>(i)};
        }
    }
    return std::nullopt;
}

const std::vector<PlaceId>& Net::preset(TransitionId t) const {
    return transitions_.at(t.value).pre;
}

const std::vector<PlaceId>& Net::postset(TransitionId t) const {
    return transitions_.at(t.value).post;
}

const std::vector<PlaceId>& Net::readset(TransitionId t) const {
    return transitions_.at(t.value).read;
}

Marking Net::initial_marking() const {
    Marking m(places_.size());
    for (std::size_t i = 0; i < places_.size(); ++i) {
        if (places_[i].initial) m.set(i, true);
    }
    return m;
}

bool Net::is_enabled(const Marking& m, TransitionId t) const {
    const auto& tr = transitions_[t.value];
    for (PlaceId p : tr.pre) {
        if (!m.get(p.value)) return false;
    }
    for (PlaceId p : tr.read) {
        if (!m.get(p.value)) return false;
    }
    // Contact-freeness for 1-safe semantics: produce-only places must be
    // empty, otherwise the firing would lose the token count.
    for (PlaceId p : tr.post) {
        if (m.get(p.value) &&
            !std::binary_search(tr.pre.begin(), tr.pre.end(), p)) {
            return false;
        }
    }
    return true;
}

void Net::fire(Marking& m, TransitionId t) const {
    assert(is_enabled(m, t));
    const auto& tr = transitions_[t.value];
    for (PlaceId p : tr.pre) m.set(p.value, false);
    for (PlaceId p : tr.post) m.set(p.value, true);
}

std::vector<TransitionId> Net::enabled_transitions(const Marking& m) const {
    std::vector<TransitionId> out;
    for (std::uint32_t i = 0; i < transitions_.size(); ++i) {
        const TransitionId t{i};
        if (is_enabled(m, t)) out.push_back(t);
    }
    return out;
}

bool Net::is_deadlocked(const Marking& m) const {
    for (std::uint32_t i = 0; i < transitions_.size(); ++i) {
        if (is_enabled(m, TransitionId{i})) return false;
    }
    return true;
}

std::string Net::describe_marking(const Marking& m) const {
    std::string out = "{";
    bool first = true;
    for (std::size_t i = 0; i < places_.size(); ++i) {
        if (!m.get(i)) continue;
        if (!first) out += ", ";
        out += places_[i].name;
        first = false;
    }
    out += "}";
    return out;
}

}  // namespace rap::petri
