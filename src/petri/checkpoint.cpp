#include "petri/checkpoint.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "petri/compiled.hpp"
#include "util/strings.hpp"

namespace rap::petri {

namespace {

// "RAPCKPT1" as a little-endian word; a different framing revision bumps
// the trailing digit so stale files fail the magic check, not a parse.
constexpr std::uint64_t kMagic = 0x3154504B43504152ULL;
constexpr std::uint64_t kVersion = 1;

// Fixed header words before the variable sections (magic .. records
// offset, inclusive).
constexpr std::size_t kHeaderWords = 21;

[[noreturn]] void reject(const std::string& path, const char* what) {
    throw std::runtime_error("StoreCheckpoint: '" + path + "' " + what);
}

}  // namespace

void StoreCheckpoint::save(const std::string& path) const {
    const std::size_t stride = record_stride();
    if (records.size() != record_count * stride) {
        throw std::runtime_error(
            "StoreCheckpoint::save: records length does not match "
            "record_count * (marking_words + meta_words)");
    }

    std::vector<std::uint64_t> words;
    words.reserve(kHeaderWords + frontier.size() + goal_hits.size() +
                  deadlocks.size() + violations.size() * 2 +
                  records.size() + 1);
    words.push_back(kMagic);
    words.push_back(kVersion);
    words.push_back(static_cast<std::uint64_t>(engine));
    words.push_back(structure_digest);
    words.push_back((std::uint64_t{marking_words} << 32) | meta_words);
    words.push_back(record_count);
    words.push_back(edges_explored);
    words.push_back(head);
    words.push_back(next_layer_begin);
    words.push_back(depth);
    words.push_back(frontier.size());
    words.push_back(goal_hits.size());
    words.push_back(deadlocks.size());
    words.push_back(violations.size());
    words.push_back(por.active ? 1 : 0);
    words.push_back(por.expansions);
    words.push_back(por.reduced_expansions);
    words.push_back(por.proviso_expansions);
    words.push_back(por.enabled_transitions);
    words.push_back(por.expanded_transitions);
    // Word offset of the records run from the start of the file: the
    // mmap hook — map the file, add this, and the arena payload is one
    // aligned contiguous span.
    words.push_back(kHeaderWords + frontier.size() + goal_hits.size() +
                    deadlocks.size() + violations.size() * 2);

    for (std::uint32_t id : frontier) words.push_back(id);
    for (std::uint32_t id : goal_hits) words.push_back(id);
    for (std::uint32_t id : deadlocks) words.push_back(id);
    for (const Violation& v : violations) {
        words.push_back((std::uint64_t{v.state} << 32) | v.depth);
        words.push_back((std::uint64_t{v.fired} << 32) | v.disabled);
    }
    words.insert(words.end(), records.begin(), records.end());
    words.push_back(hash_marking_words(words.data(), words.size()));

    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) reject(tmp, "cannot be opened for writing");
        out.write(reinterpret_cast<const char*>(words.data()),
                  static_cast<std::streamsize>(words.size() *
                                               sizeof(std::uint64_t)));
        out.flush();
        if (!out) reject(tmp, "write failed");
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        reject(path, "rename from .tmp failed");
    }
}

StoreCheckpoint StoreCheckpoint::load(const std::string& path) {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in) reject(path, "cannot be opened");
    const auto bytes = static_cast<std::size_t>(in.tellg());
    if (bytes % sizeof(std::uint64_t) != 0 ||
        bytes < (kHeaderWords + 1) * sizeof(std::uint64_t)) {
        reject(path, "is truncated (not a whole checkpoint header)");
    }
    std::vector<std::uint64_t> words(bytes / sizeof(std::uint64_t));
    in.seekg(0);
    in.read(reinterpret_cast<char*>(words.data()),
            static_cast<std::streamsize>(bytes));
    if (!in) reject(path, "read failed");

    // Checksum first: any flipped bit anywhere (header included) is
    // reported as corruption, not as whatever the bit happens to mean.
    const std::uint64_t sum =
        hash_marking_words(words.data(), words.size() - 1);
    if (sum != words.back()) reject(path, "failed its checksum");
    if (words[0] != kMagic) reject(path, "is not a RAP checkpoint");
    if (words[1] != kVersion) {
        reject(path, "uses an unsupported checkpoint version");
    }

    StoreCheckpoint c;
    c.engine = static_cast<Engine>(words[2]);
    c.structure_digest = words[3];
    c.marking_words = static_cast<std::uint32_t>(words[4] >> 32);
    c.meta_words = static_cast<std::uint32_t>(words[4]);
    c.record_count = words[5];
    c.edges_explored = words[6];
    c.head = words[7];
    c.next_layer_begin = words[8];
    c.depth = words[9];
    const std::uint64_t frontier_n = words[10];
    const std::uint64_t goals_n = words[11];
    const std::uint64_t deadlocks_n = words[12];
    const std::uint64_t violations_n = words[13];
    c.por.active = words[14] != 0;
    c.por.expansions = words[15];
    c.por.reduced_expansions = words[16];
    c.por.proviso_expansions = words[17];
    c.por.enabled_transitions = words[18];
    c.por.expanded_transitions = words[19];
    const std::uint64_t records_off = words[20];

    const std::uint64_t payload = words.size() - 1;  // minus checksum
    const std::uint64_t expected_off = kHeaderWords + frontier_n +
                                       goals_n + deadlocks_n +
                                       violations_n * 2;
    const std::uint64_t record_words =
        c.record_count * c.record_stride();
    if (records_off != expected_off ||
        payload != expected_off + record_words) {
        reject(path, "has inconsistent section lengths");
    }

    std::size_t at = kHeaderWords;
    auto take_ids = [&](std::uint64_t n) {
        std::vector<std::uint32_t> ids(n);
        for (std::uint64_t i = 0; i < n; ++i) {
            ids[i] = static_cast<std::uint32_t>(words[at++]);
        }
        return ids;
    };
    c.frontier = take_ids(frontier_n);
    c.goal_hits = take_ids(goals_n);
    c.deadlocks = take_ids(deadlocks_n);
    c.violations.resize(violations_n);
    for (Violation& v : c.violations) {
        v.state = static_cast<std::uint32_t>(words[at] >> 32);
        v.depth = static_cast<std::uint32_t>(words[at++]);
        v.fired = static_cast<std::uint32_t>(words[at] >> 32);
        v.disabled = static_cast<std::uint32_t>(words[at++]);
    }
    c.records.assign(words.begin() + static_cast<std::ptrdiff_t>(at),
                     words.end() - 1);
    return c;
}

}  // namespace rap::petri
