#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "petri/compiled.hpp"
#include "petri/net.hpp"
#include "petri/predicate.hpp"
#include "petri/reachability.hpp"
#include "util/arena.hpp"

namespace rap::petri {

/// Concurrent interned store of markings: the parallel engine's
/// replacement for the single-threaded MarkingStore. Records (marking
/// payload + caller-owned meta words) live in per-worker WordArena chunks
/// — no cross-thread allocation contention, pointers stable for the whole
/// pass — behind one shared open-addressing table whose packed
/// (hash fragment | id) slots are claimed by CAS. Ids stay dense
/// (discovery order of the whole pass) via a shared counter, so BFS
/// bookkeeping still runs on plain arrays.
///
/// Concurrency contract: `intern` may run from any worker concurrently;
/// everything else (`reserve`, `clear`, reads of records the caller has
/// not itself published) must be separated from intern calls by an
/// external happens-before edge — the engine's per-layer barrier.
/// Capacity is fixed while workers run: `reserve` must have provisioned
/// at least as many records as the layer can insert (the engine bounds a
/// layer's inserts by the frontier's out-edge count).
///
/// The `compact` layout (ReachabilityOptions::compact_store) drops the
/// id->record pointer index and the per-worker arenas entirely: records
/// live at arena positions derived from their dense id (`record =
/// cblocks[id >> shift] + (id & mask) * record_words`), so the id IS the
/// back-reference and the 8-bytes-per-state pointer index disappears.
/// Blocks are provisioned zeroed by `reserve` (serial, between layers) —
/// a winning intern writes payload + pre-publication meta into its id's
/// slot and publishes the table entry with release ordering, exactly the
/// legacy happens-before shape. Probing stays linear (robin-hood
/// displacement is not lock-free), but the table tolerates a 7/8 load
/// ceiling vs the legacy 0.7 thanks to the denser probe footprint.
class ConcurrentMarkingStore {
public:
    static constexpr std::uint32_t kNone = UINT32_MAX;

    ConcurrentMarkingStore(std::size_t marking_words,
                           std::size_t meta_words, std::size_t workers,
                           bool compact = false);

    /// Records interned so far, clamped to the construction-independent
    /// `capacity_limit` the callers passed (losers of the capacity race
    /// bump the shared counter past the limit without owning a record).
    std::size_t size() const noexcept;

    const std::uint64_t* operator[](std::uint32_t id) const noexcept {
        return compact_ ? compact_record(id) : records_[id];
    }
    std::uint64_t* record_mut(std::uint32_t id) noexcept {
        return compact_ ? compact_record(id) : records_[id];
    }
    std::size_t meta_offset() const noexcept { return words_; }
    bool compact() const noexcept { return compact_; }

    struct InternResult {
        std::uint32_t id = kNone;  ///< kNone when the limit blocked insert
        bool inserted = false;
    };

    /// Thread-safe lookup-or-insert. `worker` picks the arena the record
    /// is appended to; `capacity_limit` is the max_states cap (ids are
    /// only ever allocated below it, so when an insert fails on capacity
    /// exactly `capacity_limit` records exist).
    ///
    /// The first `meta_init_words` words of the record's meta area are
    /// copied from `meta_init` BEFORE the id is published, so concurrent
    /// readers of a freshly interned record always see them initialised
    /// (the canonical-min witness link depends on this). Any remaining
    /// meta words start zeroed and belong to the inserting caller until
    /// the next barrier publishes them.
    InternResult intern(const std::uint64_t* words, std::size_t worker,
                        std::size_t capacity_limit,
                        const std::uint64_t* meta_init = nullptr,
                        std::size_t meta_init_words = 0);

    /// Serial: grows the per-worker arena set so `workers` workers can
    /// intern. Existing arenas (and every record in them) are untouched —
    /// the ReuseStore re-attach hook for a pass wider than the store's
    /// construction.
    void ensure_workers(std::size_t workers);

    /// Serial (between-layers): ensures the table and the id->record
    /// index can absorb `needed` records without any mid-layer growth.
    /// Rehashing recomputes record hashes instead of caching one word
    /// per id — O(records) per doubling, in exchange for 8 fewer resident
    /// bytes per record for the whole pass.
    void reserve(std::size_t needed);

    /// Serial lookup without insertion; kNone when absent. Used by the
    /// post-pass canonical-tree sweep, after all interning is done.
    std::uint32_t find(const std::uint64_t* words) const noexcept;

    /// Record payload bytes resident in the per-worker arenas (legacy)
    /// or the id-indexed block run (compact).
    std::size_t record_bytes() const noexcept;

    /// Records + interning table + id->record index. Serial only.
    std::size_t resident_bytes() const noexcept;

    /// Interning-table geometry for rap_store_* metrics. Serial only.
    StoreStats stats() const noexcept;

private:
    std::uint64_t hash(const std::uint64_t* words) const noexcept;

    std::uint64_t* compact_record(std::uint32_t id) const noexcept {
        return cblocks_[id >> cshift_].get() +
               static_cast<std::size_t>(id & cmask_) * record_words_;
    }

    // Slot states: empty, pending (claimed, record not yet published),
    // or final packed (hash fragment << 32 | id). Pending carries the
    // claimant's hash fragment so probes for other fragments skip past
    // without waiting. kCapacityId resolves a claim that lost the
    // capacity race — every prober treats it as "store full".
    static constexpr std::uint64_t kEmptySlot = UINT64_MAX;
    static constexpr std::uint32_t kPendingId = UINT32_MAX - 1;
    static constexpr std::uint32_t kCapacityId = UINT32_MAX - 2;
    static std::uint64_t pack(std::uint64_t h, std::uint32_t id) noexcept {
        return (h & 0xFFFFFFFF00000000ULL) | id;
    }

    std::size_t words_;         ///< marking payload words (hashed, deduped)
    std::size_t record_words_;  ///< payload + meta words per record
    bool compact_ = false;
    std::atomic<std::uint32_t> count_{0};
    std::size_t table_size_ = 0;  ///< power of two
    std::unique_ptr<std::atomic<std::uint64_t>[]> table_;
    std::vector<std::uint64_t*> records_;  ///< id -> record, set by winner
    std::vector<util::WordArena> arenas_;  ///< one per worker
    // Compact layout: id-indexed zero-provisioned blocks, 2^cshift_
    // records each. Only `reserve` (serial) grows this, so worker reads
    // of cblocks_ race nothing.
    std::size_t cshift_ = 0;
    std::uint32_t cmask_ = 0;
    std::size_t creserved_ = 0;  ///< records covered by compact blocks
    std::vector<std::unique_ptr<std::uint64_t[]>> cblocks_;
};

/// Parallel-frontier breadth-first reachability over 1-safe nets: the
/// layer-synchronous sibling of ReachabilityExplorer, sharding each BFS
/// layer across N worker threads over one shared immutable CompiledNet.
/// Workers intern successors through the ConcurrentMarkingStore, discover
/// the next layer into per-worker lists, and meet at a barrier whose
/// serial completion stitches the frontier, grows the table, and settles
/// per-goal hits — so every answer the sequential engine gives layer by
/// layer is reproduced exactly.
///
/// Result contract relative to ReachabilityExplorer, for identical
/// queries:
///  - states_explored / edges_explored / deadlock sets / persistence
///    violation sets / goal verdicts are identical for exhaustive passes
///    (no early stop, no truncation) — the reachable graph is walked
///    exactly once either way.
///  - witnesses are BFS-shortest: a goal's witness depth (trace length)
///    always equals the sequential engine's. The witness *marking* is the
///    canonical one — lexicographically smallest among the earliest
///    layer's matches — and its trace is rebuilt deterministically, so
///    results are identical across runs and across thread counts (the
///    sequential engine instead keeps its discovery-order first match).
///  - truncation stops with `truncated = true` and states_explored ==
///    max_states exactly (ids are allocated densely below the cap; there
///    is no overshoot slack).
///  - with stop_at_first_match (or persistence_stop_at_first) the pass
///    stops at the end of the layer that resolved it, so states/edges
///    counters may exceed the sequential engine's mid-layer stop. The
///    cooperative stop hook is honoured both at layer granularity and
///    every 256 per-worker edges (so wide or heavily reduced layers
///    cannot postpone a timeout).
///
/// With ReachabilityOptions::reuse set (and witness_tree ==
/// kCanonicalCas; other modes fall back to scratch), the pass runs
/// against the shared ReuseStore instead of a private store: markings,
/// witness links and enabled rows resident from earlier passes are
/// claimed per-epoch rather than re-interned, and every result above is
/// bit-identical to the scratch pass at the same thread count
/// (states_explored counts this pass's reached set, not the store's
/// resident records).
///
/// options.threads == 1 delegates to a ReachabilityExplorer — bit-for-bit
/// today's sequential code path; 0 means one worker per hardware thread.
///
/// Goal predicates and the persistence exemption callback are invoked
/// concurrently from worker threads and must be thread-safe for const
/// access (every predicate built from Predicate atoms/connectives is).
class ParallelReachabilityExplorer {
public:
    explicit ParallelReachabilityExplorer(const Net& net,
                                          ReachabilityOptions options = {});

    /// Runs on an externally owned CompiledNet (the verify::CompiledModel
    /// / flow::Design sharing hook). The artifact must outlive the
    /// explorer; it is never written to, so any number of explorers and
    /// verifiers can share it concurrently.
    explicit ParallelReachabilityExplorer(const CompiledNet& compiled,
                                          ReachabilityOptions options = {});

    ReachabilityResult find(const Predicate& goal);
    std::vector<ReachabilityResult> find_all(
        std::span<const Predicate* const> goals);
    MultiResult run_query(const MultiQuery& query);
    ReachabilityResult find_deadlocks();
    ReachabilityResult explore_all();
    std::size_t count_states();

    const CompiledNet& compiled() const noexcept { return *compiled_; }

    /// Worker threads a pass will use (options.threads resolved).
    std::size_t threads() const noexcept { return threads_; }

    /// 0 -> hardware_concurrency (at least 1), else the request itself.
    static std::size_t resolve_threads(std::size_t requested) noexcept;

private:
    const Net& net_;
    ReachabilityOptions options_;
    std::optional<CompiledNet> owned_;  ///< set by the Net constructor only
    const CompiledNet* compiled_;       ///< owned_ or the shared artifact
    std::size_t threads_;
};

}  // namespace rap::petri
