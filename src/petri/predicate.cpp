#include "petri/predicate.hpp"

#include <stdexcept>

namespace rap::petri {

Predicate Predicate::marked(const Net& net, std::string_view place) {
    const auto id = net.find_place(place);
    if (!id) {
        throw std::invalid_argument("unknown place: " + std::string(place));
    }
    const PlaceId p = *id;
    return Predicate("$P\"" + std::string(place) + "\"",
                     [p](const Net&, const Marking& m) {
                         return m.get(p.value);
                     });
}

Predicate Predicate::enabled(const Net& net, std::string_view transition) {
    const auto id = net.find_transition(transition);
    if (!id) {
        throw std::invalid_argument("unknown transition: " +
                                    std::string(transition));
    }
    const TransitionId t = *id;
    return Predicate("@T\"" + std::string(transition) + "\"",
                     [t](const Net& n, const Marking& m) {
                         return n.is_enabled(m, t);
                     });
}

Predicate Predicate::deadlock() {
    return Predicate(
        "DEADLOCK",
        [](const Net& n, const Marking& m) { return n.is_deadlocked(m); },
        Kind::Deadlock);
}

Predicate Predicate::custom(std::string description, Eval eval) {
    return Predicate(std::move(description), std::move(eval));
}

Predicate Predicate::operator&&(const Predicate& rhs) const {
    auto lhs_eval = eval_;
    auto rhs_eval = rhs.eval_;
    return Predicate("(" + description_ + " & " + rhs.description_ + ")",
                     [lhs_eval, rhs_eval](const Net& n, const Marking& m) {
                         return lhs_eval(n, m) && rhs_eval(n, m);
                     });
}

Predicate Predicate::operator||(const Predicate& rhs) const {
    auto lhs_eval = eval_;
    auto rhs_eval = rhs.eval_;
    return Predicate("(" + description_ + " | " + rhs.description_ + ")",
                     [lhs_eval, rhs_eval](const Net& n, const Marking& m) {
                         return lhs_eval(n, m) || rhs_eval(n, m);
                     });
}

Predicate Predicate::operator!() const {
    auto inner = eval_;
    return Predicate("~" + description_,
                     [inner](const Net& n, const Marking& m) {
                         return !inner(n, m);
                     });
}

}  // namespace rap::petri
