#include "petri/predicate.hpp"

#include <algorithm>
#include <stdexcept>

namespace rap::petri {

std::optional<std::vector<PlaceId>> Predicate::merge_support(
    const std::optional<std::vector<PlaceId>>& lhs,
    const std::optional<std::vector<PlaceId>>& rhs) {
    // Unknown on either side poisons the result: the combined predicate
    // may read whatever the unknown side reads.
    if (!lhs || !rhs) return std::nullopt;
    std::vector<PlaceId> merged;
    merged.reserve(lhs->size() + rhs->size());
    std::set_union(lhs->begin(), lhs->end(), rhs->begin(), rhs->end(),
                   std::back_inserter(merged));
    return merged;
}

Predicate Predicate::marked(const Net& net, std::string_view place) {
    const auto id = net.find_place(place);
    if (!id) {
        throw std::invalid_argument("unknown place: " + std::string(place));
    }
    const PlaceId p = *id;
    Predicate result("$P\"" + std::string(place) + "\"",
                     [p](const Net&, const Marking& m) {
                         return m.get(p.value);
                     });
    result.support_ = std::vector<PlaceId>{p};
    return result;
}

Predicate Predicate::enabled(const Net& net, std::string_view transition) {
    const auto id = net.find_transition(transition);
    if (!id) {
        throw std::invalid_argument("unknown transition: " +
                                    std::string(transition));
    }
    const TransitionId t = *id;
    Predicate result("@T\"" + std::string(transition) + "\"",
                     [t](const Net& n, const Marking& m) {
                         return n.is_enabled(m, t);
                     });
    // Enabledness is a function of the pre, read and produce-only places
    // (pre ∪ read ∪ post covers require ∪ forbid; the over-approximation
    // of pre ∩ post places is sound — extra support only adds visibility).
    std::vector<PlaceId> support;
    for (const auto& arcs :
         {net.preset(t), net.readset(t), net.postset(t)}) {
        support.insert(support.end(), arcs.begin(), arcs.end());
    }
    std::sort(support.begin(), support.end());
    support.erase(std::unique(support.begin(), support.end()),
                  support.end());
    result.support_ = std::move(support);
    return result;
}

Predicate Predicate::deadlock() {
    return Predicate(
        "DEADLOCK",
        [](const Net& n, const Marking& m) { return n.is_deadlocked(m); },
        Kind::Deadlock);
}

Predicate Predicate::custom(std::string description, Eval eval) {
    return Predicate(std::move(description), std::move(eval));
}

Predicate Predicate::custom(std::string description, Eval eval,
                            std::vector<PlaceId> support) {
    Predicate result(std::move(description), std::move(eval));
    std::sort(support.begin(), support.end());
    support.erase(std::unique(support.begin(), support.end()),
                  support.end());
    result.support_ = std::move(support);
    return result;
}

Predicate Predicate::operator&&(const Predicate& rhs) const {
    auto lhs_eval = eval_;
    auto rhs_eval = rhs.eval_;
    Predicate result("(" + description_ + " & " + rhs.description_ + ")",
                     [lhs_eval, rhs_eval](const Net& n, const Marking& m) {
                         return lhs_eval(n, m) && rhs_eval(n, m);
                     });
    result.support_ = merge_support(support_, rhs.support_);
    return result;
}

Predicate Predicate::operator||(const Predicate& rhs) const {
    auto lhs_eval = eval_;
    auto rhs_eval = rhs.eval_;
    Predicate result("(" + description_ + " | " + rhs.description_ + ")",
                     [lhs_eval, rhs_eval](const Net& n, const Marking& m) {
                         return lhs_eval(n, m) || rhs_eval(n, m);
                     });
    result.support_ = merge_support(support_, rhs.support_);
    return result;
}

Predicate Predicate::operator!() const {
    auto inner = eval_;
    Predicate result("~" + description_,
                     [inner](const Net& n, const Marking& m) {
                         return !inner(n, m);
                     });
    result.support_ = support_;
    return result;
}

}  // namespace rap::petri
