#pragma once

#include <functional>
#include <vector>

#include "petri/net.hpp"
#include "petri/reachability.hpp"

namespace rap::petri {

// PersistenceViolation lives in reachability.hpp: the single-pass
// multi-property engine reports violations alongside reachability goals.

struct PersistenceOptions {
    std::size_t max_states = 2'000'000;
    /// Transition pairs for which mutual disabling is *intended* choice
    /// (e.g. the Mt+/Mf+ pair of a control register models an input
    /// choice, not a hazard). Returns true when the pair is exempt.
    std::function<bool(const Net&, TransitionId, TransitionId)> exempt;
    /// Stop at first violation (default) or collect all.
    bool stop_at_first = true;
};

struct PersistenceResult {
    std::size_t states_explored = 0;
    bool truncated = false;
    std::vector<PersistenceViolation> violations;

    bool persistent() const noexcept { return violations.empty(); }
};

/// Exhaustive check of output persistence over the reachable state graph.
/// Runs as a single-property instance of the shared reachability pass
/// (ReachabilityExplorer::run_query with check_persistence set).
PersistenceResult check_persistence(const Net& net,
                                    PersistenceOptions options = {});

}  // namespace rap::petri
