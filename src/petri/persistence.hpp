#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "petri/net.hpp"
#include "petri/reachability.hpp"

namespace rap::petri {

/// A persistence violation: at `marking`, `disabled` was enabled, then
/// firing `fired` withdrew its enabling. In speed-independent circuit
/// terms this is a potential hazard — the paper reports hunting exactly
/// these (plus deadlocks) in the OPE DFS models.
struct PersistenceViolation {
    Marking marking;
    TransitionId fired;
    TransitionId disabled;
    Trace trace_to_marking;

    std::string to_string(const Net& net) const;
};

struct PersistenceOptions {
    std::size_t max_states = 2'000'000;
    /// Transition pairs for which mutual disabling is *intended* choice
    /// (e.g. the Mt+/Mf+ pair of a control register models an input
    /// choice, not a hazard). Returns true when the pair is exempt.
    std::function<bool(const Net&, TransitionId, TransitionId)> exempt;
    /// Stop at first violation (default) or collect all.
    bool stop_at_first = true;
};

struct PersistenceResult {
    std::size_t states_explored = 0;
    bool truncated = false;
    std::vector<PersistenceViolation> violations;

    bool persistent() const noexcept { return violations.empty(); }
};

/// Exhaustive check of output persistence over the reachable state graph.
PersistenceResult check_persistence(const Net& net,
                                    PersistenceOptions options = {});

}  // namespace rap::petri
