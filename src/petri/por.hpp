#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "petri/compiled.hpp"
#include "petri/net.hpp"
#include "petri/predicate.hpp"

namespace rap::petri {

/// Reduction statistics of one exploration pass (ReachabilityResult /
/// MultiResult::por). All counters are deterministic: the reduced state
/// graph depends only on the net and the query, never on scheduling, so
/// the same pass reports the same numbers at every thread count.
struct PorStats {
    /// Reduction actually ran. False when ReachabilityOptions::por was
    /// off or the pass had to fall back to full exploration (a goal
    /// predicate with unknown support places).
    bool active = false;
    std::size_t expansions = 0;  ///< states expanded by the pass
    /// States expanded with a proper stubborn subset of their enabled set.
    std::size_t reduced_expansions = 0;
    /// Reduced expansions widened back to the full enabled set by the
    /// BFS-queue ignoring proviso (no stubborn successor was fresh).
    std::size_t proviso_expansions = 0;
    /// Sum of |enabled| over expanded states (the full-exploration work).
    std::size_t enabled_transitions = 0;
    /// Sum of |expanded| over expanded states (the work actually done);
    /// expanded == ample plus any proviso widening.
    std::size_t expanded_transitions = 0;

    /// Enabled transitions skipped thanks to the reduction.
    std::size_t ignored() const noexcept {
        return enabled_transitions - expanded_transitions;
    }

    void merge(const PorStats& other) noexcept {
        active = active || other.active;
        expansions += other.expansions;
        reduced_expansions += other.reduced_expansions;
        proviso_expansions += other.proviso_expansions;
        enabled_transitions += other.enabled_transitions;
        expanded_transitions += other.expanded_transitions;
    }
};

/// What a pass needs preserved, distilled from MultiQuery by the engines:
/// the goal predicates drive the visibility condition, persistence adds
/// the conflict-pair visibility and the exempt filter.
struct PorRequest {
    std::vector<const Predicate*> goals;
    bool check_persistence = false;
    std::function<bool(const Net&, TransitionId, TransitionId)>
        persistence_exempt;
};

/// Property-aware stubborn-set (ample/persistent-set) reduction for the
/// reachability engines, built on the same "safe enabling" semantics as
/// CompiledNet:
///
///   enabled(t) <=> require(t) = pre ∪ read all marked
///               && forbid(t)  = post ∖ pre all unmarked
///
/// Static tables (construction, one pass each over the net's arcs):
///
/// - toggle sets: ton(t) = post ∖ pre (= forbid(t)), toff(t) = pre ∖ post
/// - per-place producers (p ∈ ton) and unmarkers (p ∈ toff)
/// - a symmetric *disabling* dependence CSR:
///     dependent(t,u) <=> toff(t)∩require(u) ≠ ∅ ∨ ton(t)∩forbid(u) ≠ ∅
///                      ∨ (the same with t and u swapped)
///   Transitions outside dependent(t) can neither disable t nor race its
///   effect: under 1-safe contact-free semantics every shared-toggle case
///   either implies mutual disabling (covered) or the pair can never be
///   co-enabled, so independent firings commute.
///
/// Per state, reduce() closes a seed transition under
///
///   D1  enabled t in the set  -> all of dependent(t) joins
///   D2  disabled t in the set -> the necessary enablers of ONE
///       unsatisfied condition join (producers of an unmarked required
///       place, or unmarkers of a marked forbidden place — the smallest
///       such list, deterministically tie-broken)
///
/// and returns ample = closure ∩ enabled. Every enabled member is a key
/// transition, so all deadlocks of the full graph stay reachable and the
/// reduced deadlock set is *exactly* the full one. Goal reachability and
/// persistence additionally require the visibility condition (a proper
/// ample set contains no transition that can change a watched predicate)
/// and the BFS-queue ignoring proviso, which the engines apply through
/// proviso_needed() and their layer bookkeeping. The choice of ample set
/// depends only on (marking, enabled set, static tables), so the reduced
/// state graph — and every verdict and counter derived from it — is
/// identical across engines and thread counts.
class PorContext {
public:
    PorContext(const CompiledNet& compiled, const PorRequest& request);

    /// False when some goal predicate has unknown support places — the
    /// pass cannot tell which transitions are visible to it, so the
    /// engines must fall back to full exploration.
    bool active() const noexcept { return active_; }

    /// True when a visibility-sensitive property (a non-deadlock goal or
    /// persistence) is present: proper ample sets must then contain no
    /// visible transition and the engines must apply the ignoring
    /// proviso. Deadlock-only passes skip both and reduce harder.
    bool proviso_needed() const noexcept { return proviso_; }

    /// Per-thread scratch for reduce(); reusable across states.
    struct Scratch {
        std::vector<std::uint32_t> stamp;  ///< closure membership, epoched
        std::uint32_t epoch = 0;
        std::vector<std::uint32_t> queue;  ///< closure worklist / members
        std::vector<std::uint64_t> best;   ///< best ample bitset so far
    };

    /// Computes a stubborn subset of `enabled` at `marking` into `ample`
    /// (enabled_words() words). Returns true when ample is a *proper*
    /// subset worth expanding instead of the full enabled set; false
    /// means no admissible reduction was found (expand everything,
    /// `ample` contents are unspecified). Deterministic in its inputs.
    bool reduce(const std::uint64_t* marking, const std::uint64_t* enabled,
                std::uint64_t* ample, Scratch& scratch) const;

private:
    struct Csr {
        std::vector<std::uint32_t> off;    // n + 1 entries
        std::vector<std::uint32_t> items;  // sorted within each row
        std::span<const std::uint32_t> row(std::uint32_t i) const noexcept {
            return {items.data() + off[i], items.data() + off[i + 1]};
        }
    };
    static Csr build_csr(std::size_t rows,
                         const std::vector<std::vector<std::uint32_t>>& adj);
    void mark_togglers_visible(std::uint32_t place);
    void mark_enabledness_support_visible(std::uint32_t transition);

    const Net* net_;
    std::size_t transition_count_;
    std::size_t marking_words_;
    std::size_t enabled_words_;
    bool active_ = true;
    bool proviso_ = false;

    Csr require_;    // transition -> places (pre ∪ read)
    Csr forbid_;     // transition -> places (post ∖ pre)
    Csr producers_;  // place -> transitions with p ∈ ton  (can mark p)
    Csr unmarkers_;  // place -> transitions with p ∈ toff (can unmark p)
    Csr dependent_;  // symmetric disabling dependence
    std::vector<std::uint8_t> visible_;
    std::vector<std::uint8_t> support_marked_;  // memo for persistence viz

    static constexpr int kSeedTrials = 8;
};

}  // namespace rap::petri
