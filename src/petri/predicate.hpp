#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "petri/net.hpp"

namespace rap::petri {

/// Reach-style property language [Khomenko, CS-TR-1140] over markings.
///
/// MPSAT accepts reachability predicates written in the Reach language;
/// our explicit-state engine accepts the same logical shapes as a small
/// combinator tree: marked(p), enabled(t), boolean connectives. A property
/// is *violated* when a reachable marking satisfies the predicate — the
/// checker then reports that marking and a firing trace to it.
class Predicate {
public:
    using Eval = std::function<bool(const Net&, const Marking&)>;

    /// Structural tag so engines can answer recognised shapes without
    /// invoking the closure: the reachability explorer tests Deadlock
    /// goals directly off its incrementally-maintained enabled set.
    enum class Kind {
        Generic,   ///< evaluated through the stored closure
        Deadlock,  ///< "no transition enabled"
    };

    Predicate(std::string description, Eval eval)
        : description_(std::move(description)), eval_(std::move(eval)) {}

    bool operator()(const Net& net, const Marking& m) const {
        return eval_(net, m);
    }

    const std::string& description() const noexcept { return description_; }

    Kind kind() const noexcept { return kind_; }

    /// Support places: a set of places such that the predicate's value is
    /// a function of their marking alone. The partial-order reduction
    /// uses it to decide which transitions are *visible* to a goal;
    /// nullopt ("unknown support" — e.g. a custom closure that inspects
    /// arbitrary state) makes a POR pass carrying this goal fall back to
    /// full exploration rather than risk the verdict. The built-in atoms
    /// fill it in, connectives take the union, Deadlock goals never need
    /// it (deadlock preservation is structural, not visibility-based).
    const std::optional<std::vector<PlaceId>>& support() const noexcept {
        return support_;
    }

    // -- atoms --------------------------------------------------------
    /// True when the named place is marked. Throws if the place is absent.
    static Predicate marked(const Net& net, std::string_view place);

    /// True when the transition is enabled at the marking.
    static Predicate enabled(const Net& net, std::string_view transition);

    /// True when no transition is enabled (deadlock).
    static Predicate deadlock();

    /// Escape hatch for custom atoms (unknown support: POR passes
    /// carrying this goal fall back to full exploration).
    static Predicate custom(std::string description, Eval eval);

    /// Custom atom with declared support places: the caller promises the
    /// predicate reads no marking bits outside `support`.
    static Predicate custom(std::string description, Eval eval,
                            std::vector<PlaceId> support);

    // -- connectives ----------------------------------------------------
    Predicate operator&&(const Predicate& rhs) const;
    Predicate operator||(const Predicate& rhs) const;
    Predicate operator!() const;

private:
    Predicate(std::string description, Eval eval, Kind kind)
        : description_(std::move(description)),
          eval_(std::move(eval)),
          kind_(kind) {}

    static std::optional<std::vector<PlaceId>> merge_support(
        const std::optional<std::vector<PlaceId>>& lhs,
        const std::optional<std::vector<PlaceId>>& rhs);

    std::string description_;
    Eval eval_;
    Kind kind_ = Kind::Generic;
    std::optional<std::vector<PlaceId>> support_;
};

}  // namespace rap::petri
