#pragma once

#include <functional>
#include <memory>
#include <string>

#include "petri/net.hpp"

namespace rap::petri {

/// Reach-style property language [Khomenko, CS-TR-1140] over markings.
///
/// MPSAT accepts reachability predicates written in the Reach language;
/// our explicit-state engine accepts the same logical shapes as a small
/// combinator tree: marked(p), enabled(t), boolean connectives. A property
/// is *violated* when a reachable marking satisfies the predicate — the
/// checker then reports that marking and a firing trace to it.
class Predicate {
public:
    using Eval = std::function<bool(const Net&, const Marking&)>;

    /// Structural tag so engines can answer recognised shapes without
    /// invoking the closure: the reachability explorer tests Deadlock
    /// goals directly off its incrementally-maintained enabled set.
    enum class Kind {
        Generic,   ///< evaluated through the stored closure
        Deadlock,  ///< "no transition enabled"
    };

    Predicate(std::string description, Eval eval)
        : description_(std::move(description)), eval_(std::move(eval)) {}

    bool operator()(const Net& net, const Marking& m) const {
        return eval_(net, m);
    }

    const std::string& description() const noexcept { return description_; }

    Kind kind() const noexcept { return kind_; }

    // -- atoms --------------------------------------------------------
    /// True when the named place is marked. Throws if the place is absent.
    static Predicate marked(const Net& net, std::string_view place);

    /// True when the transition is enabled at the marking.
    static Predicate enabled(const Net& net, std::string_view transition);

    /// True when no transition is enabled (deadlock).
    static Predicate deadlock();

    /// Escape hatch for custom atoms.
    static Predicate custom(std::string description, Eval eval);

    // -- connectives ----------------------------------------------------
    Predicate operator&&(const Predicate& rhs) const;
    Predicate operator||(const Predicate& rhs) const;
    Predicate operator!() const;

private:
    Predicate(std::string description, Eval eval, Kind kind)
        : description_(std::move(description)),
          eval_(std::move(eval)),
          kind_(kind) {}

    std::string description_;
    Eval eval_;
    Kind kind_ = Kind::Generic;
};

}  // namespace rap::petri
