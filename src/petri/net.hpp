#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/bitvec.hpp"

namespace rap::petri {

/// Index-based handles. Strong typedefs keep place/transition spaces apart.
struct PlaceId {
    std::uint32_t value = UINT32_MAX;
    friend bool operator==(PlaceId, PlaceId) = default;
    friend auto operator<=>(PlaceId, PlaceId) = default;
};

struct TransitionId {
    std::uint32_t value = UINT32_MAX;
    friend bool operator==(TransitionId, TransitionId) = default;
    friend auto operator<=>(TransitionId, TransitionId) = default;
};

/// A marking of a 1-safe net: bit i <=> place i holds a token.
using Marking = util::BitVec;

/// 1-safe Petri net with read arcs (Section II-C of the paper relies on
/// the read-arc extension of [10] to express level-sensitive enabling).
///
/// Semantics implemented here ("safe enabling"): a transition is enabled
/// iff all its consume-arcs and read-arcs point at marked places *and* all
/// its produce-only places are unmarked (contact-freeness). The DFS
/// translation produces nets that are structurally safe, and the
/// reachability engine additionally asserts it dynamically.
class Net {
public:
    explicit Net(std::string name = "net") : name_(std::move(name)) {}

    const std::string& name() const noexcept { return name_; }

    // -- construction -----------------------------------------------------
    PlaceId add_place(std::string_view name, bool initially_marked = false);
    TransitionId add_transition(std::string_view name);

    /// Consume arc: place -> transition (token removed on firing).
    void add_input_arc(PlaceId p, TransitionId t);
    /// Produce arc: transition -> place (token added on firing).
    void add_output_arc(TransitionId t, PlaceId p);
    /// Read arc: transition tests the place without consuming.
    void add_read_arc(PlaceId p, TransitionId t);

    // -- introspection ----------------------------------------------------
    std::size_t place_count() const noexcept { return places_.size(); }
    std::size_t transition_count() const noexcept {
        return transitions_.size();
    }
    std::size_t arc_count() const noexcept;

    const std::string& place_name(PlaceId p) const;
    const std::string& transition_name(TransitionId t) const;

    /// Finds a place/transition by exact name; nullopt when absent.
    std::optional<PlaceId> find_place(std::string_view name) const;
    std::optional<TransitionId> find_transition(std::string_view name) const;

    const std::vector<PlaceId>& preset(TransitionId t) const;
    const std::vector<PlaceId>& postset(TransitionId t) const;
    const std::vector<PlaceId>& readset(TransitionId t) const;

    // -- token game ---------------------------------------------------
    Marking initial_marking() const;

    bool is_enabled(const Marking& m, TransitionId t) const;

    /// Fires an enabled transition in place. Precondition: is_enabled().
    void fire(Marking& m, TransitionId t) const;

    /// All transitions enabled at m, ascending by id.
    std::vector<TransitionId> enabled_transitions(const Marking& m) const;

    /// True iff no transition is enabled at m.
    bool is_deadlocked(const Marking& m) const;

    /// Human-readable marking: names of marked places.
    std::string describe_marking(const Marking& m) const;

private:
    struct Place {
        std::string name;
        bool initial = false;
    };
    struct Transition {
        std::string name;
        std::vector<PlaceId> pre;    // consume
        std::vector<PlaceId> post;   // produce
        std::vector<PlaceId> read;   // test
    };

    std::string name_;
    std::vector<Place> places_;
    std::vector<Transition> transitions_;
};

}  // namespace rap::petri
