#include "tech/voltage.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace rap::tech {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

VoltageModel::VoltageModel(ProcessParams params) : params_(params) {
    if (params_.v_nominal <= params_.v_freeze) {
        throw std::invalid_argument("nominal voltage must exceed v_freeze");
    }
    norm_ = std::pow(params_.v_nominal - params_.v_freeze, params_.alpha) /
            params_.v_nominal;
}

double VoltageModel::speed_factor(double v) const {
    if (v <= params_.v_freeze) return 0.0;
    return std::pow(v - params_.v_freeze, params_.alpha) / v / norm_;
}

double VoltageModel::energy_factor(double v) const {
    const double r = v / params_.v_nominal;
    return r * r;
}

double VoltageModel::leakage_power(double v, double gates) const {
    if (v <= 0) return 0.0;
    const double r = v / params_.v_nominal;
    return params_.leakage_per_gate_w * gates * r * r * r;
}

VoltageSchedule VoltageSchedule::constant(double v) {
    VoltageSchedule s;
    s.add_segment(1.0, v);  // the last segment holds forever
    return s;
}

void VoltageSchedule::add_segment(double duration_s, double v) {
    if (duration_s <= 0) {
        throw std::invalid_argument("segment duration must be positive");
    }
    segments_.push_back({cursor_, v});
    cursor_ += duration_s;
}

double VoltageSchedule::voltage_at(double t) const {
    double v = 0.0;
    for (const Segment& s : segments_) {
        if (s.start > t) break;
        v = s.voltage;
    }
    return v;
}

std::vector<std::pair<double, double>> VoltageSchedule::breakpoints() const {
    std::vector<std::pair<double, double>> out;
    out.reserve(segments_.size());
    for (const Segment& s : segments_) out.emplace_back(s.start, s.voltage);
    return out;
}

double VoltageSchedule::finish_time(const VoltageModel& model, double t0,
                                    double work) const {
    if (work <= 0) return t0;
    double remaining = work;
    double t = t0;
    for (std::size_t i = 0; i < segments_.size(); ++i) {
        const double seg_end = (i + 1 < segments_.size())
                                   ? segments_[i + 1].start
                                   : kInf;
        if (seg_end <= t) continue;
        const double rate = model.speed_factor(segments_[i].voltage);
        const double span = seg_end - t;
        if (rate > 0) {
            const double need = remaining / rate;
            if (need <= span) return t + need;
            remaining -= span * rate;
        }
        t = seg_end;
        if (t == kInf) break;
    }
    return kInf;  // frozen in the trailing segment
}

double VoltageSchedule::leakage_energy(const VoltageModel& model,
                                       double gates, double t0,
                                       double t1) const {
    if (t1 <= t0) return 0.0;
    double energy = 0.0;
    for (std::size_t i = 0; i < segments_.size(); ++i) {
        const double seg_start = segments_[i].start;
        const double seg_end =
            (i + 1 < segments_.size()) ? segments_[i + 1].start : kInf;
        const double lo = std::max(seg_start, t0);
        const double hi = std::min(seg_end, t1);
        if (hi <= lo) continue;
        energy += model.leakage_power(segments_[i].voltage, gates) * (hi - lo);
    }
    return energy;
}

}  // namespace rap::tech
