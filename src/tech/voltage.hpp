#pragma once

#include <utility>
#include <vector>

namespace rap::tech {

/// Parameters of the 90nm-like low-power CMOS process model standing in
/// for the paper's TSMC 90nm silicon. The delay model is an alpha-power
/// law anchored at the freeze voltage: the paper observes the chip
/// operating down to 0.34V, freezing there (no progress, leakage only)
/// and recovering when the supply rises — exactly the behaviour
/// speed_factor() reproduces.
struct ProcessParams {
    double v_nominal = 1.2;   ///< nominal supply [V]
    double v_freeze = 0.34;   ///< no forward progress at or below this [V]
    double v_max = 1.6;       ///< absolute maximum rating [V]
    double alpha = 2.0;       ///< alpha-power-law exponent (near-threshold fit)
    /// Leakage power per gate at the nominal voltage [W]; scales ~V^3
    /// (subthreshold + DIBL lump).
    double leakage_per_gate_w = 2.75e-10;
};

/// Voltage-dependent speed/energy/leakage scaling.
class VoltageModel {
public:
    explicit VoltageModel(ProcessParams params = {});

    const ProcessParams& params() const noexcept { return params_; }

    /// Relative logic speed: 1.0 at nominal, 0 at or below v_freeze,
    /// > 1 above nominal. speed = k * (V - v_freeze)^alpha / V.
    double speed_factor(double v) const;

    /// Relative dynamic energy per switching event: (V / v_nominal)^2.
    double energy_factor(double v) const;

    /// Static (leakage) power of `gates` equivalent gates at voltage v.
    double leakage_power(double v, double gates) const;

private:
    ProcessParams params_;
    double norm_;  // normalisation so speed_factor(v_nominal) == 1
};

/// Piecewise-constant supply-voltage schedule, built by appending
/// segments. The last appended segment's voltage holds forever (its
/// duration only positions any further segments); an empty schedule is
/// 0V everywhere (frozen).
class VoltageSchedule {
public:
    /// A flat schedule at voltage v.
    static VoltageSchedule constant(double v);

    /// Appends a segment of `duration_s` seconds at voltage `v` after the
    /// previously appended segments.
    void add_segment(double duration_s, double v);

    double voltage_at(double t) const;

    /// The piecewise-constant breakpoints as (start time, voltage) pairs,
    /// sorted by start. Exposed so overlays (the fault injector's
    /// droop/glitch splicing) can rebuild a schedule without losing the
    /// base supply's own transitions.
    std::vector<std::pair<double, double>> breakpoints() const;

    /// End time of the last appended segment — the horizon after which
    /// the final voltage holds forever.
    double duration() const noexcept { return cursor_; }

    /// Time at which an amount of `work` (expressed in nominal-speed
    /// seconds) completes when started at time t0, integrating the speed
    /// factor across segments. Returns +inf if the supply never recovers
    /// above the freeze voltage for long enough.
    double finish_time(const VoltageModel& model, double t0,
                       double work) const;

    /// Leakage energy dissipated by `gates` between t0 and t1.
    double leakage_energy(const VoltageModel& model, double gates, double t0,
                          double t1) const;

private:
    struct Segment {
        double start;
        double voltage;
    };
    // Sorted by start; first segment (if any) starts at 0.
    std::vector<Segment> segments_;
    double cursor_ = 0.0;  // end time of the last appended segment
};

}  // namespace rap::tech
