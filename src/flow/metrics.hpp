#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rap::flow {

/// A small Prometheus-style metrics registry: named families of counter
/// or gauge samples, each sample optionally labelled, rendered to the
/// text exposition format by metrics::to_prometheus(). Value type, no
/// locks — producers (flow::Sweep::Handle::metrics(), benches) build a
/// snapshot on demand; scraping a snapshot is free of engine state.
class Metrics {
public:
    enum class Type { kCounter, kGauge };

    using Labels = std::vector<std::pair<std::string, std::string>>;

    struct Sample {
        Labels labels;  ///< in registration order, rendered verbatim
        double value = 0.0;
    };

    struct Family {
        std::string name;  ///< e.g. "rap_sweep_configs_done"
        std::string help;
        Type type = Type::kGauge;
        std::vector<Sample> samples;
    };

    /// Adds (or updates) the sample with `labels` in family `name`,
    /// creating the family on first use. Families and samples keep
    /// their registration order, so expositions diff cleanly.
    void set(std::string_view name, std::string_view help, Type type,
             double value, Labels labels = {});

    /// Adds `delta` to the sample (creating it at zero first).
    void add(std::string_view name, std::string_view help, Type type,
             double delta, Labels labels = {});

    const std::vector<Family>& families() const noexcept {
        return families_;
    }

    /// The sample's value, or `fallback` when absent (scrape-side
    /// convenience for tests and benches).
    double value(std::string_view name, const Labels& labels = {},
                 double fallback = 0.0) const;

private:
    Sample& sample(std::string_view name, std::string_view help, Type type,
                   const Labels& labels);

    std::vector<Family> families_;
};

namespace metrics {

/// Renders the registry in the Prometheus text exposition format
/// (version 0.0.4): `# HELP` / `# TYPE` comment pairs per family, one
/// `name{label="value",...} value` line per sample. Label values are
/// escaped (backslash, double-quote, newline) per the spec.
std::string to_prometheus(const Metrics& registry);

}  // namespace metrics

}  // namespace rap::flow
