#include "flow/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "ope/dfs_models.hpp"
#include "util/rng.hpp"
#include "verify/witness.hpp"

namespace rap::flow {

namespace detail {

namespace {

/// FNV-1a over raw bytes — the campaign's reproducibility fingerprint.
/// Frozen: changing it invalidates every recorded campaign checksum.
constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void fnv_bytes(std::uint64_t& h, const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= kFnvPrime;
    }
}

void fnv_u64(std::uint64_t& h, std::uint64_t v) { fnv_bytes(h, &v, 8); }

void fnv_double(std::uint64_t& h, double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, 8);
    fnv_u64(h, bits);
}

/// Seed-space tag separating per-point calibration from the per-run
/// streams (which use plain stream_seed(master, point * runs + run)).
constexpr std::uint64_t kCalibTag = 0x63616c6962ULL;  // "calib"

}  // namespace

/// Everything a running campaign shares between the launching thread,
/// the worker pool and the Handle (mirrors SweepState).
struct CampaignState {
    // -- immutable after launch -----------------------------------------
    Campaign::Factory factory;
    DesignOptions base;
    asim::FaultSpec faults;
    std::vector<CampaignPoint> grid;
    std::size_t runs = 1;
    std::uint64_t seed = 1;
    std::uint64_t items = 1;
    double budget_factor = 8.0;
    bool confirm_hazards = false;
    double knee_fraction = 0.05;
    Campaign::RunCallback callback;
    std::size_t max_in_flight = 1;

    // -- work distribution ----------------------------------------------
    std::atomic<std::size_t> next{0};
    std::atomic<bool> cancelled{false};
    std::vector<std::thread> pool;

    // -- mutable results + aggregates (guarded by mutex) ------------------
    std::mutex mutex;
    std::condition_variable gate;  ///< max_in_flight admission
    std::size_t in_flight = 0;
    std::vector<CampaignAggregate> rows;  ///< slot per grid point
    std::vector<char> row_done;           ///< slot filled by a worker
    std::size_t done = 0;
    std::size_t runs_done = 0;
    std::size_t failures = 0;
    std::size_t hazards = 0;
    std::uint64_t faults_injected = 0;
    std::uint64_t glitch_windows = 0;
    bool joined = false;
};

namespace {

void fold_run(std::uint64_t& h, const CampaignRun& r) {
    fnv_u64(h, r.seed);
    fnv_u64(h, (r.completed ? 1u : 0u) | (r.deadlocked ? 2u : 0u) |
                   (r.frozen ? 4u : 0u) | (r.hazard ? 8u : 0u) |
                   (r.hazard_confirmed ? 16u : 0u));
    fnv_double(h, r.time_s);
    fnv_double(h, r.energy_j);
    fnv_u64(h, r.items);
    fnv_u64(h, r.events);
    fnv_u64(h, r.faults.drops);
    fnv_u64(h, r.faults.duplicates);
    fnv_u64(h, r.faults.stuck_nodes);
    fnv_u64(h, r.glitches);
}

/// Publishes one finished run row: aggregate counters + the streaming
/// callback, both under the state mutex (callback serialised, never
/// after cancel()).
void publish_run(CampaignState& state, const CampaignRun& row) {
    const std::lock_guard<std::mutex> lock(state.mutex);
    ++state.runs_done;
    if (!row.completed) ++state.failures;
    if (row.hazard) ++state.hazards;
    state.faults_injected += row.faults.injected();
    state.glitch_windows += row.glitches;
    if (!state.cancelled.load(std::memory_order_relaxed) &&
        state.callback) {
        state.callback(row);
    }
}

/// Runs one grid point start to finish: calibrate, then `runs` seeded
/// Monte-Carlo runs in run order. Never throws; a factory/build failure
/// reports every run of the point as failed with zero events.
CampaignAggregate process_point(CampaignState& state,
                                const CampaignPoint& point) {
    CampaignAggregate agg;
    agg.point = point;
    agg.runs = state.runs;
    agg.checksum = kFnvOffset;

    std::unique_ptr<Design> design;
    try {
        design = make_design(state.factory(point.depth), state.base);
    } catch (const std::exception&) {
        // Invalid depth for this factory: the whole point is a failure
        // band of the survival curve, deterministically.
        for (std::size_t r = 0; r < state.runs; ++r) {
            CampaignRun row;
            row.point = point.index;
            row.run = r;
            row.seed = util::stream_seed(
                state.seed, point.index * state.runs + r);
            fold_run(agg.checksum, row);
            publish_run(state, row);
        }
        return agg;
    }

    const dfs::Graph& graph = design->graph();
    const dfs::Dynamics& dynamics = design->dynamics();
    const dfs::NodeId out = design->pipeline().out;
    const tech::VoltageModel model(state.base.process);
    // Guard rail against pathological fault configurations that never
    // reach the item target: generous, but finite.
    const std::uint64_t event_cap =
        std::max<std::uint64_t>(1, state.items) * graph.node_count() * 64;

    // Calibrate the point's fault-free run time at the nominal supply;
    // the per-run simulated-time budget scales it by the voltage's
    // speed factor.
    double nominal_s = 0.0;
    {
        asim::TimedSimulator sim = design->timed_sim();
        sim.set_seed(util::stream_seed(state.seed ^ kCalibTag, point.index));
        dfs::State s = dfs::State::initial(graph);
        asim::RunLimits limits;
        limits.target_marks = state.items;
        limits.observe = out;
        limits.max_events = event_cap;
        nominal_s = sim.run(s, limits).time_s;
    }
    const double sf = model.speed_factor(point.voltage);
    const double budget_s =
        state.budget_factor * nominal_s / (sf > 0.0 ? sf : 1.0);

    const asim::FaultSpec spec = state.faults.scaled(point.fault_scale);
    const tech::VoltageSchedule base_schedule =
        tech::VoltageSchedule::constant(point.voltage);

    for (std::size_t r = 0; r < state.runs; ++r) {
        CampaignRun row;
        row.point = point.index;
        row.run = r;
        row.seed =
            util::stream_seed(state.seed, point.index * state.runs + r);

        const asim::GlitchedSchedule glitched = asim::splice_glitches(
            base_schedule, spec.glitch, row.seed, budget_s);
        row.glitches = glitched.glitches();

        asim::TimedSimulator sim = design->timed_sim(glitched.schedule);
        sim.set_seed(row.seed);
        sim.set_faults(spec);
        if (state.confirm_hazards) {
            sim.enable_event_trace(event_cap);
        }

        dfs::State s = dfs::State::initial(graph);
        asim::RunLimits limits;
        limits.target_marks = state.items;
        limits.observe = out;
        limits.max_events = event_cap;
        limits.max_time_s = budget_s;
        const asim::TimedStats stats = sim.run(s, limits);

        row.items = stats.marks_at(out);
        row.completed = row.items >= state.items;
        row.deadlocked = stats.deadlocked;
        row.frozen = stats.frozen;
        row.time_s = stats.time_s;
        row.energy_j = stats.total_energy_j();
        row.events = stats.events;
        row.faults = stats.faults;
        row.hazard = dynamics.control_conflict(s).has_value();
        if (row.hazard && state.confirm_hazards &&
            !stats.events_log_truncated) {
            std::vector<dfs::Event> events;
            events.reserve(stats.events_log.size());
            for (const asim::TimedEvent& te : stats.events_log) {
                events.push_back(te.event);
            }
            const verify::WitnessReplay replay =
                verify::replay_events_on_net(dynamics,
                                             design->translation(), events);
            row.hazard_confirmed = replay.ok && replay.marking_agrees;
        }

        if (row.completed) {
            ++agg.completed;
        } else if (row.deadlocked) {
            ++agg.deadlocks;
        } else if (row.frozen) {
            ++agg.frozen;
        }
        fold_run(agg.checksum, row);
        if (row.hazard) ++agg.hazards;
        if (row.hazard_confirmed) ++agg.hazards_confirmed;
        agg.faults_injected += row.faults.injected();
        agg.glitch_windows += row.glitches;
        if (row.completed) {
            agg.mean_time_s += row.time_s;
            if (row.items > 0) {
                agg.mean_energy_per_item_j += row.energy_j / row.items;
            }
        }
        publish_run(state, row);
    }

    if (agg.completed > 0) {
        agg.mean_time_s /= agg.completed;
        agg.mean_energy_per_item_j /= agg.completed;
    }
    agg.survival =
        agg.runs > 0 ? static_cast<double>(agg.completed) / agg.runs : 0.0;
    return agg;
}

void worker_loop(const std::shared_ptr<CampaignState>& state) {
    for (;;) {
        if (state->cancelled.load(std::memory_order_relaxed)) return;
        const std::size_t index =
            state->next.fetch_add(1, std::memory_order_relaxed);
        if (index >= state->grid.size()) return;

        {
            std::unique_lock<std::mutex> lock(state->mutex);
            state->gate.wait(lock, [&] {
                return state->in_flight < state->max_in_flight ||
                       state->cancelled.load(std::memory_order_relaxed);
            });
            ++state->in_flight;
        }

        CampaignAggregate row = process_point(*state, state->grid[index]);

        {
            const std::lock_guard<std::mutex> lock(state->mutex);
            --state->in_flight;
            state->rows[index] = std::move(row);
            state->row_done[index] = 1;
            ++state->done;
        }
        state->gate.notify_one();
    }
}

void join_pool(CampaignState& state) {
    {
        const std::lock_guard<std::mutex> lock(state.mutex);
        if (state.joined) return;
        state.joined = true;
    }
    for (std::thread& worker : state.pool) {
        if (worker.joinable()) worker.join();
    }
}

Metrics build_metrics(CampaignState& state) {
    Metrics m;
    using Type = Metrics::Type;

    std::size_t done = 0;
    std::size_t in_flight = 0;
    std::size_t runs_done = 0;
    std::size_t failures = 0;
    std::size_t hazards = 0;
    std::uint64_t faults = 0;
    std::uint64_t glitches = 0;
    {
        const std::lock_guard<std::mutex> lock(state.mutex);
        done = state.done;
        in_flight = state.in_flight;
        runs_done = state.runs_done;
        failures = state.failures;
        hazards = state.hazards;
        faults = state.faults_injected;
        glitches = state.glitch_windows;
    }

    m.set("rap_mc_points_total", "Grid points in the campaign",
          Type::kGauge, static_cast<double>(state.grid.size()));
    m.set("rap_mc_points_done", "Grid points completed so far",
          Type::kGauge, static_cast<double>(done));
    m.set("rap_mc_in_flight", "Grid points simulating right now",
          Type::kGauge, static_cast<double>(in_flight));
    m.set("rap_mc_cancelled", "1 once Handle::cancel() was called",
          Type::kGauge,
          state.cancelled.load(std::memory_order_relaxed) ? 1.0 : 0.0);
    m.set("rap_mc_runs_total", "Monte-Carlo runs the grid will execute",
          Type::kGauge,
          static_cast<double>(state.grid.size() * state.runs));
    m.set("rap_mc_runs_done", "Monte-Carlo runs completed so far",
          Type::kCounter, static_cast<double>(runs_done));
    m.set("rap_mc_failures_total",
          "Runs that missed the item target (deadlock, freeze or budget)",
          Type::kCounter, static_cast<double>(failures));
    m.set("rap_mc_hazards_total",
          "Runs ending in a control-token conflict", Type::kCounter,
          static_cast<double>(hazards));
    m.set("rap_mc_faults_injected_total",
          "Event faults injected across all runs (drops, duplicates, "
          "stuck-ats)",
          Type::kCounter, static_cast<double>(faults));
    m.set("rap_mc_glitch_windows_total",
          "Supply-droop windows realised across all runs", Type::kCounter,
          static_cast<double>(glitches));
    m.set("rap_mc_survival",
          "Completed / executed runs so far", Type::kGauge,
          runs_done > 0
              ? static_cast<double>(runs_done - failures) / runs_done
              : 0.0);
    return m;
}

CampaignSummary build_summary(CampaignState& state) {
    CampaignSummary summary;
    summary.checksum = kFnvOffset;
    for (std::size_t i = 0; i < state.rows.size(); ++i) {
        if (!state.row_done[i]) continue;  // cancelled before start
        const CampaignAggregate& row = state.rows[i];
        summary.runs_total += row.runs;
        summary.completed_total += row.completed;
        summary.hazards_total += row.hazards;
        if (row.completed < row.runs) {
            const double failure_fraction =
                row.runs > 0
                    ? static_cast<double>(row.runs - row.completed) /
                          static_cast<double>(row.runs)
                    : 0.0;
            if (failure_fraction >= state.knee_fraction) {
                if (!summary.first_failure_voltage ||
                    row.point.voltage > *summary.first_failure_voltage) {
                    summary.first_failure_voltage = row.point.voltage;
                }
            } else {
                // A statistical blip: failures happened, but too few to
                // call this voltage the knee. Reported separately so the
                // signal is not lost.
                ++summary.blip_points;
                if (!summary.highest_blip_voltage ||
                    row.point.voltage > *summary.highest_blip_voltage) {
                    summary.highest_blip_voltage = row.point.voltage;
                }
            }
        }
        fnv_u64(summary.checksum, row.checksum);
        summary.rows.push_back(row);
    }
    return summary;
}

}  // namespace
}  // namespace detail

// -- Campaign (builder) --------------------------------------------------

Campaign::Campaign(Factory factory, DesignOptions base)
    : factory_(std::move(factory)), base_(std::move(base)) {
    if (!factory_) {
        throw std::invalid_argument(
            "flow::Campaign: the model factory must be callable");
    }
    validate_options(base_);
    voltages_.push_back(base_.process.v_nominal);
}

Campaign Campaign::ope(int stages, DesignOptions base) {
    return Campaign(
        [stages](int depth) {
            return ope::build_reconfigurable_ope_dfs(stages, depth);
        },
        std::move(base));
}

Campaign& Campaign::voltages(std::vector<double> values) {
    if (values.empty()) {
        throw std::invalid_argument("flow::Campaign: empty voltage axis");
    }
    voltages_ = std::move(values);
    return *this;
}

Campaign& Campaign::fault_scales(std::vector<double> values) {
    if (values.empty()) {
        throw std::invalid_argument(
            "flow::Campaign: empty fault-scale axis");
    }
    fault_scales_ = std::move(values);
    return *this;
}

Campaign& Campaign::depths(std::vector<int> values) {
    if (values.empty()) {
        throw std::invalid_argument("flow::Campaign: empty depth axis");
    }
    depths_ = std::move(values);
    return *this;
}

Campaign& Campaign::base_faults(asim::FaultSpec spec) {
    faults_ = spec;
    return *this;
}

Campaign& Campaign::runs(std::size_t per_point) {
    if (per_point == 0) {
        throw std::invalid_argument(
            "flow::Campaign: need at least one run per point");
    }
    runs_ = per_point;
    return *this;
}

Campaign& Campaign::seed(std::uint64_t master) {
    seed_ = master;
    return *this;
}

Campaign& Campaign::items(std::uint64_t count) {
    if (count == 0) {
        throw std::invalid_argument(
            "flow::Campaign: need at least one item per run");
    }
    items_ = count;
    return *this;
}

Campaign& Campaign::time_budget_factor(double factor) {
    if (factor <= 0.0) {
        throw std::invalid_argument(
            "flow::Campaign: time_budget_factor must be positive");
    }
    budget_factor_ = factor;
    return *this;
}

Campaign& Campaign::confirm_hazards(bool enabled) {
    confirm_hazards_ = enabled;
    return *this;
}

Campaign& Campaign::knee_min_failure_fraction(double fraction) {
    if (!(fraction >= 0.0 && fraction <= 1.0)) {
        throw std::invalid_argument(
            "flow::Campaign: knee_min_failure_fraction must be in [0, 1]");
    }
    knee_fraction_ = fraction;
    return *this;
}

Campaign& Campaign::workers(std::size_t count) {
    workers_ = count;
    return *this;
}

Campaign& Campaign::max_in_flight(std::size_t count) {
    max_in_flight_ = count;
    return *this;
}

Campaign& Campaign::on_run(RunCallback callback) {
    callback_ = std::move(callback);
    return *this;
}

std::vector<CampaignPoint> Campaign::grid() const {
    std::vector<CampaignPoint> points;
    points.reserve(depths_.size() * fault_scales_.size() *
                   voltages_.size());
    char label[64];
    for (const int depth : depths_) {
        for (const double scale : fault_scales_) {
            for (const double voltage : voltages_) {
                std::snprintf(label, sizeof(label), "d%d/f%.2f/v%.2f",
                              depth, scale, voltage);
                points.push_back(CampaignPoint{points.size(), depth, scale,
                                               voltage, label});
            }
        }
    }
    return points;
}

// -- Campaign::Handle ----------------------------------------------------

Campaign::Handle::Handle(std::shared_ptr<detail::CampaignState> state)
    : state_(std::move(state)) {}

Campaign::Handle::~Handle() {
    if (state_) detail::join_pool(*state_);
}

void Campaign::Handle::cancel() {
    {
        const std::lock_guard<std::mutex> lock(state_->mutex);
        state_->cancelled.store(true, std::memory_order_relaxed);
    }
    state_->gate.notify_all();
}

bool Campaign::Handle::cancelled() const {
    return state_->cancelled.load(std::memory_order_relaxed);
}

std::size_t Campaign::Handle::done() const {
    const std::lock_guard<std::mutex> lock(state_->mutex);
    return state_->done;
}

std::size_t Campaign::Handle::total() const {
    return state_->grid.size();
}

Metrics Campaign::Handle::metrics() const {
    return detail::build_metrics(*state_);
}

CampaignSummary Campaign::Handle::wait() {
    detail::join_pool(*state_);
    return detail::build_summary(*state_);
}

// -- launch --------------------------------------------------------------

Campaign::Handle Campaign::launch() {
    auto state = std::make_shared<detail::CampaignState>();
    state->factory = factory_;
    state->base = base_;
    state->faults = faults_;
    state->grid = grid();
    state->runs = runs_;
    state->seed = seed_;
    state->items = items_;
    state->budget_factor = budget_factor_;
    state->confirm_hazards = confirm_hazards_;
    state->knee_fraction = knee_fraction_;
    state->callback = callback_;

    std::size_t workers = workers_;
    if (workers == 0) {
        workers = std::max(1u, std::thread::hardware_concurrency());
    }
    workers = std::max<std::size_t>(
        1, std::min(workers, state->grid.size()));
    state->max_in_flight =
        max_in_flight_ > 0 ? std::min(max_in_flight_, workers) : workers;

    state->rows.resize(state->grid.size());
    state->row_done.assign(state->grid.size(), 0);

    state->pool.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
        state->pool.emplace_back(
            [state] { detail::worker_loop(state); });
    }
    return Handle(std::move(state));
}

CampaignSummary Campaign::run() { return launch().wait(); }

}  // namespace rap::flow
