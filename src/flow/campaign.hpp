#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "asim/faults.hpp"
#include "flow/design.hpp"
#include "flow/metrics.hpp"
#include "pipeline/builder.hpp"

namespace rap::flow {

namespace detail {
struct CampaignState;
}

/// One point of a campaign's parameter grid, in stable grid order
/// (depth outermost, then fault scale, then voltage).
struct CampaignPoint {
    std::size_t index = 0;     ///< position in the expanded grid
    int depth = 0;             ///< reconfiguration depth (factory input)
    double fault_scale = 1.0;  ///< multiplier on the base FaultSpec
    double voltage = 0.0;      ///< constant supply voltage [V]
    std::string label;         ///< "d3/f1.50/v0.84"
};

/// One seeded Monte-Carlo run, streamed through on_run as it completes.
/// Bit-reproducible: every field is a pure function of (model content,
/// options, master seed, point index, run index) — never of scheduling.
struct CampaignRun {
    std::size_t point = 0;  ///< CampaignPoint::index
    std::size_t run = 0;    ///< run index within the point
    std::uint64_t seed = 0; ///< the run's derived master seed
    bool completed = false; ///< pushed the full item budget through
    bool deadlocked = false;
    bool frozen = false;    ///< supply never recovered above freeze
    /// The run ended in a control-token conflict (the Section II-B
    /// "disabled node" hazard) — fault injection broke a handshake.
    bool hazard = false;
    /// The hazardous run's event log replayed onto the translated Petri
    /// net (only attempted with confirm_hazards(true)): true means the
    /// trace is PN-reachable, bridging the simulated failure back to the
    /// verifier's semantics.
    bool hazard_confirmed = false;
    double time_s = 0.0;
    double energy_j = 0.0;       ///< dynamic + leakage
    std::uint64_t items = 0;     ///< tokens latched at the output
    std::uint64_t events = 0;
    asim::FaultCounts faults;    ///< faults actually injected
    std::size_t glitches = 0;    ///< supply-droop windows realised
};

/// Survival statistics of one grid point over all its runs.
struct CampaignAggregate {
    CampaignPoint point;
    std::size_t runs = 0;
    std::size_t completed = 0;
    std::size_t deadlocks = 0;
    std::size_t frozen = 0;
    std::size_t hazards = 0;
    std::size_t hazards_confirmed = 0;
    std::uint64_t faults_injected = 0;
    std::uint64_t glitch_windows = 0;
    double survival = 0.0;  ///< completed / runs
    /// Means over *completed* runs (0 when none survived).
    double mean_time_s = 0.0;
    double mean_energy_per_item_j = 0.0;
    /// FNV-1a over every run's raw result bits, in run order — the
    /// reproducibility fingerprint (identical across worker counts).
    std::uint64_t checksum = 0;
};

/// The whole campaign: per-point aggregates in stable grid order plus
/// the campaign-level survival summary.
struct CampaignSummary {
    std::vector<CampaignAggregate> rows;
    std::size_t runs_total = 0;
    std::size_t completed_total = 0;
    std::size_t hazards_total = 0;
    /// Highest supply voltage at which a grid point's failure fraction
    /// reached knee_min_failure_fraction() (the top of the survival
    /// curve's knee); nullopt when no point failed that decisively.
    /// Points with fewer failures are statistical blips and are reported
    /// through highest_blip_voltage instead of moving the knee.
    std::optional<double> first_failure_voltage;
    /// Highest supply voltage at which some runs failed but the point's
    /// failure fraction stayed *below* the knee threshold — the blips
    /// the knee deliberately ignores; nullopt when there were none.
    std::optional<double> highest_blip_voltage;
    /// Grid points counted as blips (failures below the knee threshold).
    std::size_t blip_points = 0;
    /// FNV-1a over the row checksums in grid order — one number that
    /// must match across reruns with the same master seed.
    std::uint64_t checksum = 0;

    double survival() const {
        return runs_total > 0
                   ? static_cast<double>(completed_total) / runs_total
                   : 0.0;
    }
};

/// Seeded fault-injection Monte-Carlo harness over the timed simulator —
/// flow::Sweep's sibling for the measurement bench instead of the model
/// checker. A fluent grid of depth × fault scale × supply voltage fans
/// out to `runs()` seeded timed-sim runs per point over a worker pool,
/// streaming CampaignRun rows and aggregating survival curves:
///
///     auto summary =
///         flow::Campaign::ope(4)            // 4-stage reconfigurable OPE
///             .voltages({1.2, 0.9, 0.6, 0.45})
///             .fault_scales({0.0, 1.0, 4.0})
///             .base_faults(spec)
///             .runs(200)
///             .seed(2024)
///             .run();
///
/// ## Reproducibility contract
///
/// Every run's seed derives from the master seed and the run's (point,
/// run) coordinates alone (util::stream_seed), runs of one point execute
/// sequentially on whichever worker claimed the point, and aggregates
/// are folded in run order — so the full result set, including every
/// checksum, is bit-identical for a given master seed at ANY worker
/// count. The checksums exist to let CI assert exactly that.
class Campaign {
public:
    /// Builds the model at one reconfiguration depth. Throwing marks
    /// every grid point of that depth kInvalid-like: its runs all report
    /// as failed with zero events.
    using Factory = std::function<pipeline::Pipeline(int depth)>;
    using RunCallback = std::function<void(const CampaignRun&)>;

    explicit Campaign(Factory factory, DesignOptions base = {});

    /// Campaign over the paper's reconfigurable OPE pipeline with the
    /// given stage count.
    static Campaign ope(int stages, DesignOptions base = {});

    // -- grid axes (defaults: nominal voltage, scale 1, depth 1) ---------

    Campaign& voltages(std::vector<double> values);
    Campaign& fault_scales(std::vector<double> values);
    Campaign& depths(std::vector<int> values);

    // -- behaviour -------------------------------------------------------

    /// The fault intensities at scale 1.0 (each point applies
    /// spec.scaled(point.fault_scale)).
    Campaign& base_faults(asim::FaultSpec spec);
    /// Seeded runs per grid point (default 32).
    Campaign& runs(std::size_t per_point);
    /// Master seed of the whole campaign (default 1).
    Campaign& seed(std::uint64_t master);
    /// Tokens each run pushes through the pipeline output (default 32).
    Campaign& items(std::uint64_t count);
    /// A run's simulated-time budget, as a multiple of the point's
    /// calibrated fault-free run time (voltage-compensated; default 8).
    /// Runs that exceed it count as failures.
    Campaign& time_budget_factor(double factor);
    /// Replay every hazardous run's event log on the translated Petri
    /// net to confirm PN-reachability (CampaignRun::hazard_confirmed).
    /// Costs an event trace per run; off by default.
    Campaign& confirm_hazards(bool enabled);
    /// Minimum per-point failure fraction for a point to count toward
    /// the survival knee (CampaignSummary::first_failure_voltage).
    /// Default 0.05: a single flaky run out of hundreds at nominal no
    /// longer drags the knee to the top of the voltage axis — such
    /// points are reported as blips (highest_blip_voltage/blip_points)
    /// instead. Pass 0.0 to restore any-failure knee detection; must be
    /// in [0, 1].
    Campaign& knee_min_failure_fraction(double fraction);
    /// Worker pool size; 0 (default) = one per hardware thread, capped
    /// at the grid size. Never affects results.
    Campaign& workers(std::size_t count);
    /// Cap on points simulating at once (default: the worker count).
    Campaign& max_in_flight(std::size_t count);
    /// Streaming sink for per-run rows, invoked from worker threads
    /// (serialised). Rows of one point arrive in run order; must not
    /// call back into the Handle.
    Campaign& on_run(RunCallback callback);

    /// The expanded grid in stable order, without running anything.
    std::vector<CampaignPoint> grid() const;

    /// A launched campaign. Movable handle over shared state; the
    /// destructor waits for the pool (call cancel() first to end early).
    class Handle {
    public:
        Handle(Handle&&) noexcept = default;
        Handle& operator=(Handle&&) noexcept = default;
        Handle(const Handle&) = delete;
        Handle& operator=(const Handle&) = delete;
        ~Handle();

        /// Cooperative cancellation: unstarted points are skipped and
        /// the summary only aggregates completed points (its checksum
        /// is then NOT comparable to a full run's).
        void cancel();
        bool cancelled() const;

        std::size_t done() const;   ///< grid points completed so far
        std::size_t total() const;  ///< grid size

        /// Scrapeable rap_mc_* metrics snapshot (campaign progress, run
        /// and failure counters) — render with metrics::to_prometheus().
        Metrics metrics() const;

        /// Joins the pool and returns the aggregated summary. Call at
        /// most once; the pool is joined either way.
        CampaignSummary wait();

    private:
        friend class Campaign;
        explicit Handle(std::shared_ptr<detail::CampaignState> state);

        std::shared_ptr<detail::CampaignState> state_;
    };

    /// Starts the worker pool and returns immediately.
    Handle launch();

    /// launch() + wait().
    CampaignSummary run();

private:
    Factory factory_;
    DesignOptions base_;
    asim::FaultSpec faults_;
    std::vector<double> voltages_;
    std::vector<double> fault_scales_{1.0};
    std::vector<int> depths_{1};
    std::size_t runs_ = 32;
    std::uint64_t seed_ = 1;
    std::uint64_t items_ = 32;
    double budget_factor_ = 8.0;
    bool confirm_hazards_ = false;
    double knee_fraction_ = 0.05;
    std::size_t workers_ = 0;
    std::size_t max_in_flight_ = 0;
    RunCallback callback_;
};

}  // namespace rap::flow
