#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>

#include "asim/timed_sim.hpp"
#include "dfs/dynamics.hpp"
#include "dfs/model.hpp"
#include "dfs/simulator.hpp"
#include "dfs/state.hpp"
#include "dfs/translate.hpp"
#include "netlist/netlist.hpp"
#include "petri/compiled.hpp"
#include "pipeline/builder.hpp"
#include "tech/voltage.hpp"
#include "verify/artifacts.hpp"
#include "verify/spec.hpp"
#include "verify/verifier.hpp"

namespace rap::flow {

/// Session-wide knobs, fixed at construction: they parameterise how the
/// derived artifacts are built, not what the model is. Validated by the
/// Design constructor (and therefore by make_design and flow::Sweep):
/// inconsistent options — a zero state cap, a process model whose
/// nominal voltage does not clear the freeze voltage, a non-positive
/// alpha exponent — throw std::invalid_argument with a message naming
/// the offending field, instead of surfacing as puzzling downstream
/// failures mid-verification or mid-simulation.
struct DesignOptions {
    verify::VerifyOptions verify{};          ///< state-space cap
    netlist::Library::Options library{};     ///< NCL-D mapping options
    tech::ProcessParams process{};           ///< voltage/leakage model
    /// Incremental re-verification: the session keeps one
    /// petri::ReuseStore across reconfigurations (set_depth /
    /// set_initial / reset_ring), so each verify() after a
    /// reconfiguration re-claims the markings, witness links and enabled
    /// rows already resident from earlier passes instead of re-interning
    /// them. Verdicts, witnesses and counters are bit-identical to
    /// scratch at the same thread count. A structural edit() drops the
    /// store (a different structure must not inherit rows; markings
    /// would survive an attach, but the session conservatively starts
    /// clean). Ignored when verify.reuse is set explicitly — then the
    /// caller owns the store's lifecycle (flow::Sweep's shared-store
    /// mode does this).
    bool incremental = false;
};

/// Throws std::invalid_argument if `options` is inconsistent (see
/// DesignOptions). Called by every Design constructor; exposed so batch
/// drivers can reject a bad configuration before spinning up workers.
void validate_options(const DesignOptions& options);

/// One design session over one DFS model — the paper's flow (dataflow
/// structure → Petri-net verification → direct mapping → silicon) as a
/// single object. The Design owns the model and lazily builds + caches
/// every derived artifact:
///
///   dynamics()        token-game semantics (structure-only)
///   compiled_model()  PN translation + CompiledNet (shared artifact)
///   verifier()        model checker over the shared artifact
///   netlist()         NCL-D direct mapping
///   timing()          per-node delay/energy annotation
///   timed_sim()       event-driven timed simulator over all of the above
///
/// Mutating the model invalidates exactly the artifacts it affects:
/// reconfiguration (set_depth / set_initial / reset_ring) changes only
/// initial markings, so the PN-derived artifacts rebuild on next use
/// while the netlist mapping (structure-only) survives; a structural
/// edit() invalidates everything. Artifact (re)builds are counted —
/// pn_builds() / netlist_builds() — so tests and benches can assert the
/// caching contract.
///
/// ## Pinning contract (the one place it is documented)
///
/// A Design is pinned in place: no copies, no moves. Cached artifacts
/// (dynamics, verifier, netlist, timing) point into the owned graph, and
/// every reference the Design hands out stays valid only while the
/// Design itself stays at its address and alive. Consequences:
///
/// - Anything that needs to *store or move* sessions — containers,
///   `flow::Sweep` workers, hand-rolled pools — holds them through
///   `flow::make_design(...)`, which returns std::unique_ptr<Design>:
///   the pointer moves freely while the session stays pinned.
/// - References obtained from a Design (translation(), netlist(), ...)
///   must not outlive it; copy the data out if it must survive.
///
/// Constructors validate their DesignOptions (see validate_options) and
/// throw std::invalid_argument with a field-naming message on bad input.
class Design {
public:
    explicit Design(dfs::Graph graph, DesignOptions options = {});

    /// Wraps a built pipeline, keeping its stage handles available for
    /// reconfiguration (set_depth / ring access).
    explicit Design(pipeline::Pipeline pipeline, DesignOptions options = {});

    Design(const Design&) = delete;
    Design& operator=(const Design&) = delete;

    const dfs::Graph& graph() const noexcept;
    const std::string& name() const noexcept { return graph().name(); }
    const DesignOptions& options() const noexcept { return options_; }

    bool has_pipeline() const noexcept { return pipeline_.has_value(); }
    /// The wrapped pipeline; throws std::logic_error for graph-backed
    /// designs.
    const pipeline::Pipeline& pipeline() const;

    // -- reconfiguration (initial-marking mutations) --------------------
    // These model writing the chip's `config` input between runs: the
    // structure is untouched, so only the PN-derived artifacts (which
    // encode the initial marking) are invalidated.

    /// pipeline::set_depth on the wrapped pipeline. Throws
    /// std::logic_error ("set_depth needs a pipeline-backed design") for
    /// graph-backed designs, std::invalid_argument for an out-of-range
    /// depth or a bypassed static stage (see pipeline::set_depth). On
    /// any throw the model, the cached artifacts, revision() and the
    /// build counters are all untouched — a failed reconfiguration
    /// leaves the session exactly as it was.
    void set_depth(int depth);

    /// dfs::Graph::set_initial with artifact invalidation.
    void set_initial(dfs::NodeId node, bool marked,
                     dfs::TokenValue token = dfs::TokenValue::True);

    /// pipeline::reset_ring with artifact invalidation (the mis-init
    /// seeding hook of the Section III-A workflow).
    void reset_ring(const pipeline::ControlRing& ring,
                    dfs::TokenValue polarity);

    // -- structural edits ------------------------------------------------

    /// Mutable access to the model for structural edits (adding nodes or
    /// arcs). Invalidates EVERY cached artifact. For pipeline-backed
    /// designs the stage handles keep pointing at the original nodes.
    dfs::Graph& edit();

    // -- cached artifacts ------------------------------------------------

    const dfs::Dynamics& dynamics() const;
    std::shared_ptr<const verify::CompiledModel> compiled_model() const;
    const dfs::Translation& translation() const;
    const petri::CompiledNet& compiled_net() const;
    const verify::Verifier& verifier() const;
    const netlist::Netlist& netlist() const;
    const asim::TimingMap& timing() const;

    // -- verification -----------------------------------------------------

    /// All standard checks (deadlock, control conflict, persistence) in
    /// one exploration.
    verify::Report verify() const;

    /// Exactly the properties `spec` asks for, one exploration.
    verify::Report verify(const verify::Spec& spec) const;

    /// Memory footprint of the most recent verification exploration
    /// (records, resident bytes, peak) — the capacity-planning surface
    /// for the deep OPE configurations. std::nullopt until a verify()
    /// has run in this session (model mutations do not reset it; the
    /// last completed exploration's footprint stays readable).
    std::optional<petri::MemoryStats> memory_stats() const;

    /// Partial-order-reduction statistics of the most recent verification
    /// exploration (inactive unless options.verify.por was on).
    /// std::nullopt until a verify() has run in this session; like
    /// memory_stats(), the last completed exploration's numbers stay
    /// readable across model mutations.
    std::optional<petri::PorStats> por_stats() const;

    /// Verification passes of this session that requested cross-pass
    /// reuse but ran scratch (dimension/witness-mode mismatch after a
    /// topology change). Accumulated across verifier rebuilds, so the
    /// count survives reconfigurations — a session whose "incremental"
    /// sweeps silently went cold shows it here (and in the flow metrics
    /// as rap_reuse_fallbacks_total).
    std::size_t reuse_fallbacks() const noexcept;

    // -- checkpointing ----------------------------------------------------

    /// Points verification checkpointing at `path` (empty disables):
    /// subsequent explorations periodically serialize a
    /// petri::StoreCheckpoint there (`every` = cadence in states
    /// (sequential) or layers (parallel); 0 = engine default). Not a
    /// model mutation — cached artifacts other than the verifier
    /// survive, and revision() does not change.
    void set_checkpoint(std::string path, std::size_t every = 0);

    /// Makes the next exploration resume from a loaded checkpoint
    /// instead of the initial marking (pass nullptr to clear). The
    /// checkpoint must match the session's net structure; the engines
    /// refuse anything else loudly. One-shot in spirit: callers clear or
    /// replace it after the resumed pass completes.
    void set_resume(std::shared_ptr<const petri::StoreCheckpoint> resume);

    /// The checkpoint path explorations currently write to ("" = off).
    const std::string& checkpoint_path() const noexcept {
        return options_.verify.checkpoint_path;
    }

    // -- simulation -------------------------------------------------------

    dfs::State initial_state() const;

    /// Untimed random token game over the cached dynamics.
    dfs::Simulator simulator(std::uint64_t seed = 1) const;

    /// Event-driven timed simulator annotated from the mapped netlist
    /// (delays, energies, leakage gate count) under the given supply
    /// schedule.
    asim::TimedSimulator timed_sim(tech::VoltageSchedule schedule) const;

    /// timed_sim at a constant nominal supply.
    asim::TimedSimulator timed_sim() const;

    // -- exports ----------------------------------------------------------

    std::string to_dot() const;      ///< Graphviz rendering of the model
    std::string to_astg() const;     ///< .g (petrify/Workcraft) of the PN
    std::string to_verilog() const;  ///< Verilog of the mapped netlist

    // -- cache observability ----------------------------------------------

    /// Times the PN translation + CompiledNet artifact was (re)built for
    /// this design. At most one build per model mutation.
    std::size_t pn_builds() const noexcept { return pn_builds_; }

    /// Times the netlist mapping was (re)built for this design.
    std::size_t netlist_builds() const noexcept { return netlist_builds_; }

    /// Bumped on every model mutation (reconfiguration or edit()).
    std::size_t revision() const noexcept { return revision_; }

    /// The session's cross-pass marking store (DesignOptions::
    /// incremental): null until the first verifier() build, and reset to
    /// null by edit(). Exposed so tests and benches can read
    /// interned_markings() / row_invalidations() between passes.
    const std::shared_ptr<petri::ReuseStore>& reuse_store() const noexcept {
        return reuse_;
    }

private:
    dfs::Graph& graph_mut() noexcept;
    void invalidate_marking_artifacts();
    void invalidate_all_artifacts();
    /// Drops the cached verifier after folding its counters and stats
    /// into the session-level accumulators (so nothing observable resets).
    void flush_verifier() const;

    DesignOptions options_;
    /// Exactly one of the two holds the model.
    std::optional<pipeline::Pipeline> pipeline_;
    std::optional<dfs::Graph> graph_;

    mutable std::optional<dfs::Dynamics> dynamics_;
    mutable std::shared_ptr<const verify::CompiledModel> model_;
    mutable std::optional<verify::Verifier> verifier_;
    /// Cross-pass store (DesignOptions::incremental): survives
    /// reconfiguration invalidation, dropped by edit().
    mutable std::shared_ptr<petri::ReuseStore> reuse_;
    mutable std::unique_ptr<netlist::Netlist> netlist_;
    mutable std::optional<asim::TimingMap> timing_;

    mutable std::size_t pn_builds_ = 0;
    mutable std::size_t netlist_builds_ = 0;
    std::size_t revision_ = 0;
    /// Reuse-requested-but-scratch passes folded in from dropped
    /// verifiers; reuse_fallbacks() adds the live verifier's share.
    mutable std::size_t reuse_fallbacks_ = 0;
    /// Footprint of the last completed exploration, surviving verifier
    /// invalidation so memory_stats() keeps answering after reconfigure.
    mutable std::optional<petri::MemoryStats> last_memory_;
    /// Same survival contract for the reduction statistics.
    mutable std::optional<petri::PorStats> last_por_;
};

/// Heap-pinned session factory: the way to own a Design that has to be
/// stored, moved or pooled (Design itself is non-movable — see the
/// pinning contract above). flow::Sweep holds its per-configuration
/// sessions through exactly this.
std::unique_ptr<Design> make_design(dfs::Graph graph,
                                    DesignOptions options = {});
std::unique_ptr<Design> make_design(pipeline::Pipeline pipeline,
                                    DesignOptions options = {});

}  // namespace rap::flow
